// SimEngine-specific behaviour: main-thread vs progress-context timelines,
// noise deferral semantics, compute/sleep, determinism of whole simulations.
#include <gtest/gtest.h>

#include "src/bench/imb.hpp"
#include "src/coll/coll.hpp"
#include "src/coll/topo_tree.hpp"
#include "src/runtime/sim_engine.hpp"
#include "src/topo/presets.hpp"

namespace adapt::runtime {
namespace {

TEST(SimEngine, ComputeOccupiesAndAdvancesVirtualTime) {
  topo::Machine m(topo::cori(1), 2);
  SimEngine engine(m);
  std::vector<TimeNs> marks;
  auto program = [&](Context& ctx) -> sim::Task<> {
    if (ctx.rank() != 0) co_return;
    marks.push_back(ctx.now());
    co_await ctx.compute(microseconds(500));
    marks.push_back(ctx.now());
    co_await ctx.sleep_for(microseconds(250));
    marks.push_back(ctx.now());
  };
  engine.run(program);
  ASSERT_EQ(marks.size(), 3u);
  EXPECT_EQ(marks[1] - marks[0], microseconds(500));
  EXPECT_EQ(marks[2] - marks[1], microseconds(250));
}

TEST(SimEngine, MainThreadWorkSerialises) {
  topo::Machine m(topo::cori(1), 1);
  SimEngine engine(m);
  std::vector<TimeNs> fired;
  auto program = [&](Context& ctx) -> sim::Task<> {
    // Two deferred jobs with CPU cost occupy the main thread back to back.
    ctx.defer(microseconds(10), [&] { fired.push_back(ctx.now()); });
    ctx.defer(microseconds(10), [&] { fired.push_back(ctx.now()); });
    co_await ctx.sleep_for(microseconds(100));
  };
  engine.run(program);
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[1] - fired[0], microseconds(10));
}

TEST(SimEngine, ProgressContextIgnoresNoise) {
  topo::Machine m(topo::cori(1), 1);
  SimEngineOptions options;
  // Constant heavy noise: bursts of up to 50ms at 10Hz.
  options.noise = std::make_shared<noise::UniformBurstNoise>(
      milliseconds(50), 10.0, 123);
  SimEngine engine(m, options);
  TimeNs progress_done = -1;
  auto program = [&](Context& ctx) -> sim::Task<> {
    ctx.defer_progress(microseconds(5),
                       [&] { progress_done = ctx.now(); });
    co_await ctx.sleep_for(milliseconds(400));
  };
  engine.run(program);
  // The progress job never waits for a noise burst to end.
  EXPECT_EQ(progress_done, microseconds(5));
}

TEST(SimEngine, NoiseDefersMainThreadWork) {
  topo::Machine m(topo::cori(1), 1);
  SimEngineOptions options;
  auto noise_model = std::make_shared<noise::UniformBurstNoise>(
      milliseconds(20), 10.0, 77);
  options.noise = noise_model;
  SimEngine engine(m, options);
  // Find a time inside a burst of rank 0 and schedule main work there.
  const auto [burst_start, burst_end] = noise_model->burst(0, 1);
  ASSERT_GT(burst_end, burst_start);  // seed 77 period 1 has a real burst
  TimeNs fired = -1;
  auto program = [&](Context& ctx) -> sim::Task<> {
    co_await ctx.sleep_for(burst_start + (burst_end - burst_start) / 2);
    ctx.defer(0, [&] { fired = ctx.now(); });
    co_await ctx.sleep_for(seconds(1));
  };
  engine.run(program);
  EXPECT_EQ(fired, burst_end);
}

TEST(SimEngine, RunCanBeCalledRepeatedly) {
  topo::Machine m(topo::cori(1), 4);
  SimEngine engine(m);
  auto program = [&](Context& ctx) -> sim::Task<> {
    co_await ctx.compute(microseconds(10));
  };
  const auto first = engine.run(program);
  const auto second = engine.run(program);
  EXPECT_GE(second.total_time, first.total_time);  // time is monotonic
}

TEST(SimEngine, RunResultReportsPerRankFinish) {
  topo::Machine m(topo::cori(1), 4);
  SimEngine engine(m);
  auto program = [&](Context& ctx) -> sim::Task<> {
    co_await ctx.sleep_for(microseconds(100) * (ctx.rank() + 1));
  };
  const auto result = engine.run(program);
  ASSERT_EQ(result.rank_finish.size(), 4u);
  for (int r = 1; r < 4; ++r) {
    EXPECT_GT(result.rank_finish[static_cast<std::size_t>(r)],
              result.rank_finish[static_cast<std::size_t>(r - 1)]);
  }
  EXPECT_EQ(result.total_time, result.rank_finish[3]);
}

// ----------------------------------------------------------- determinism ---

TimeNs run_bcast_sim(std::uint64_t noise_seed) {
  topo::Machine m(topo::cori(2), 64);
  SimEngineOptions options;
  options.noise = noise::paper_noise(5, noise_seed);
  SimEngine engine(m, options);
  const mpi::Comm world = mpi::Comm::world(64);
  const coll::Tree tree = coll::build_topo_tree(m, world, 0);
  auto program = [&](Context& ctx) -> sim::Task<> {
    for (int i = 0; i < 3; ++i) {
      co_await coll::bcast(ctx, world, mpi::MutView{nullptr, mib(1)}, 0, tree,
                           coll::Style::kAdapt,
                           coll::CollOpts{.segment_size = kib(64)});
    }
  };
  return engine.run(program).total_time;
}

TEST(Determinism, SameSeedSameVirtualTrace) {
  const TimeNs a = run_bcast_sim(42);
  const TimeNs b = run_bcast_sim(42);
  EXPECT_EQ(a, b);
}

TEST(Determinism, DifferentSeedsDiverge) {
  EXPECT_NE(run_bcast_sim(1), run_bcast_sim(2));
}

// -------------------------------------------------------------- harness ---

TEST(ImbHarness, MeasuresBarrierSeparatedIterations) {
  topo::Machine m(topo::cori(1), 8);
  SimEngine engine(m);
  const mpi::Comm world = mpi::Comm::world(8);
  auto fn = [&](Context& ctx, int) -> sim::Task<> {
    co_await ctx.compute(microseconds(100));
  };
  const auto result =
      bench::measure(engine, world, fn, {.warmup = 2, .iterations = 5});
  EXPECT_EQ(result.op_ms.count(), 5u);
  EXPECT_NEAR(result.avg_ms(), 0.1, 0.02);
  EXPECT_LE(result.min_ms(), result.max_ms());
}

TEST(ImbHarness, ThroughputLoopAveragesPerRank) {
  topo::Machine m(topo::cori(1), 8);
  SimEngine engine(m);
  const mpi::Comm world = mpi::Comm::world(8);
  auto fn = [&](Context& ctx, int) -> sim::Task<> {
    co_await ctx.compute(microseconds(50));
  };
  const auto result = bench::measure_throughput(
      engine, world, fn, {.warmup = 1, .iterations = 10});
  EXPECT_EQ(result.op_ms.count(), 8u);  // one sample per rank
  EXPECT_NEAR(result.avg_ms(), 0.05, 0.01);
}

TEST(ImbHarness, SubCommunicatorMeasurement) {
  topo::Machine m(topo::cori(1), 8);
  SimEngine engine(m);
  const mpi::Comm sub({0, 2, 4, 6});
  auto fn = [&](Context& ctx, int) -> sim::Task<> {
    co_await coll::barrier(ctx, sub);
  };
  const auto result =
      bench::measure(engine, sub, fn, {.warmup = 0, .iterations = 3});
  EXPECT_EQ(result.op_ms.count(), 3u);
  EXPECT_GT(result.avg_ms(), 0.0);
}

}  // namespace
}  // namespace adapt::runtime
