// Hot-path overhaul tests: the allocation-free event queue (slab + radix
// levels + bounded lazy cancellation), InlineFunction SBO callables, the
// size-classed BufferPool, bucketed matching, the fork-join parallel_for,
// and the two contracts the overhaul must uphold:
//
//  * determinism — same-seed Perfetto traces stay byte-identical to the
//    hashes captured before the overhaul (tests/golden/trace_hashes.txt),
//    and a conformance matrix run reports identically for any --jobs value;
//  * allocation-freedom — a counting global operator new proves the event
//    queue, the buffer pool, and the matcher allocate NOTHING in steady
//    state (after their slabs/free-lists/buckets have warmed up).
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <new>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/mpi/match.hpp"
#include "src/sim/event_queue.hpp"
#include "src/support/buffer_pool.hpp"
#include "src/support/inline_fn.hpp"
#include "src/support/parallel.hpp"
#include "src/verify/conformance.hpp"
#include "tests/trace_trio.hpp"

// ---------------------------------------------------------------------------
// Counting global allocator: every path into the heap (plain, array, and
// aligned forms) bumps one counter. The steady-state tests below snapshot it
// around a measured loop and assert the delta is zero.
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align), n ? n : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t n, std::align_val_t align) {
  return ::operator new(n, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace adapt;

// ------------------------------------------------------------ InlineFunction

TEST(InlineFunction, InvokesInlineCapture) {
  int x = 41;
  InlineFunction<int(), 32> fn = [x] { return x + 1; };
  ASSERT_TRUE(static_cast<bool>(fn));
  EXPECT_EQ(fn(), 42);
}

TEST(InlineFunction, MoveTransfersOwnership) {
  auto token = std::make_shared<int>(7);
  InlineFunction<int(), 32> fn = [token] { return *token; };
  EXPECT_EQ(token.use_count(), 2);
  InlineFunction<int(), 32> moved = std::move(fn);
  EXPECT_FALSE(static_cast<bool>(fn));  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(token.use_count(), 2);      // moved, not copied
  EXPECT_EQ(moved(), 7);
  moved.reset();
  EXPECT_EQ(token.use_count(), 1);  // capture destroyed
}

TEST(InlineFunction, OversizedCaptureTakesBoxedPath) {
  struct Big {
    char bytes[200];
  };
  Big big{};
  big.bytes[0] = 3;
  big.bytes[199] = 4;
  InlineFunction<int(), 32> fn = [big] {
    return big.bytes[0] + big.bytes[199];
  };
  EXPECT_EQ(fn(), 7);
  InlineFunction<int(), 32> moved = std::move(fn);
  EXPECT_EQ(moved(), 7);
}

TEST(InlineFunction, MoveOnlyCapture) {
  auto p = std::make_unique<int>(9);
  InlineFunction<int(), 32> fn = [p = std::move(p)] { return *p; };
  EXPECT_EQ(fn(), 9);
}

TEST(InlineFunction, ResetReleasesCapture) {
  auto token = std::make_shared<int>(0);
  InlineFunction<void(), 64> fn = [token] {};
  EXPECT_EQ(token.use_count(), 2);
  fn.reset();
  EXPECT_FALSE(static_cast<bool>(fn));
  EXPECT_EQ(token.use_count(), 1);
}

// ---------------------------------------------------------------- BufferPool

TEST(BufferPool, SizeClassRounding) {
  using support::BufferPool;
  EXPECT_EQ(BufferPool::class_of(1), 0);
  EXPECT_EQ(BufferPool::class_of(64), 0);
  EXPECT_EQ(BufferPool::class_of(65), 1);
  EXPECT_EQ(BufferPool::class_of(128), 1);
  EXPECT_EQ(BufferPool::class_of(129), 2);
  EXPECT_EQ(BufferPool::capacity_of(0), 64u);
  EXPECT_EQ(BufferPool::capacity_of(3), 512u);
}

TEST(BufferPool, RecyclesFreedBlocks) {
  support::BufferPool pool;
  std::byte* first;
  {
    support::BufferRef ref = pool.acquire(100);
    first = ref.data();
    EXPECT_GE(ref.capacity(), 100u);
  }
  EXPECT_EQ(pool.misses(), 1u);
  EXPECT_EQ(pool.cached_bytes(), support::BufferPool::capacity_of(1));
  support::BufferRef again = pool.acquire(90);  // same class, reused block
  EXPECT_EQ(again.data(), first);
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.cached_bytes(), 0u);
}

TEST(BufferPool, AcquireZeroesRequestedBytes) {
  support::BufferPool pool;
  {
    support::BufferRef dirty = pool.acquire_raw(64);
    for (int i = 0; i < 64; ++i) dirty.data()[i] = std::byte{0xAB};
  }
  support::BufferRef clean = pool.acquire(64);
  for (int i = 0; i < 64; ++i) {
    ASSERT_EQ(clean.data()[i], std::byte{0}) << "byte " << i;
  }
}

TEST(BufferPool, CopiesShareTheBlock) {
  support::BufferPool pool;
  support::BufferRef a = pool.acquire(32);
  a.data()[0] = std::byte{0x5A};
  support::BufferRef b = a;
  EXPECT_EQ(a.data(), b.data());
  a.reset();
  EXPECT_EQ(b.data()[0], std::byte{0x5A});  // b keeps the block alive
  EXPECT_EQ(pool.cached_bytes(), 0u);
  b.reset();
  EXPECT_GT(pool.cached_bytes(), 0u);  // last drop returned it
}

TEST(BufferPool, PoolLessHeapMode) {
  support::BufferRef ref = support::BufferRef::heap(48);
  ASSERT_TRUE(static_cast<bool>(ref));
  for (int i = 0; i < 48; ++i) ASSERT_EQ(ref.data()[i], std::byte{0});
  ref.data()[5] = std::byte{1};
  support::BufferRef copy = ref;
  ref.reset();
  EXPECT_EQ(copy.data()[5], std::byte{1});
}

// ---------------------------------------------------------------- EventQueue

TEST(EventQueue, PopsAcrossWideTimeSpreadInOrder) {
  sim::EventQueue q;
  // Times spanning many radix levels, with deliberate ties; record the push
  // index so tie order (FIFO) is observable.
  const std::vector<TimeNs> times = {5,  1'000'000, 7, 42, 999,
                                     5,  123'456'789, 42, 0, 7};
  std::vector<int> fired;
  for (int i = 0; i < static_cast<int>(times.size()); ++i) {
    q.push(times[i], [&fired, i] { fired.push_back(i); });
  }
  std::vector<TimeNs> popped;
  while (!q.empty()) {
    auto [t, fn] = q.pop();
    popped.push_back(t);
    fn();
  }
  const std::vector<TimeNs> want_times = {0, 5, 5, 7, 7, 42, 42, 999,
                                          1'000'000, 123'456'789};
  EXPECT_EQ(popped, want_times);
  // Ties fire in push order: 5 -> {0,5}, 7 -> {2,9}, 42 -> {3,7}.
  const std::vector<int> want_fired = {8, 0, 5, 2, 9, 3, 7, 4, 1, 6};
  EXPECT_EQ(fired, want_fired);
}

TEST(EventQueue, MonotoneInterleavedPushPop) {
  sim::EventQueue q;
  std::vector<TimeNs> popped;
  q.push(10, [] {});
  q.push(30, [] {});
  popped.push_back(q.pop().first);  // 10
  // New work at or after the current time, including a same-time event.
  q.push(10, [] {});
  q.push(20, [] {});
  q.push(1'000'000'000'000, [] {});
  while (!q.empty()) popped.push_back(q.pop().first);
  EXPECT_EQ(popped, (std::vector<TimeNs>{10, 10, 20, 30, 1'000'000'000'000}));
}

TEST(EventQueue, LiveCountTracksCancellation) {
  sim::EventQueue q;
  std::vector<sim::EventHandle> handles;
  for (int i = 0; i < 4; ++i) {
    handles.push_back(q.push(100 + i, [] {}));
  }
  EXPECT_EQ(q.size(), 4u);
  handles[1].cancel();
  handles[2].cancel();
  handles[2].cancel();  // idempotent
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.depth(), 4u);  // lazy: entries still buried
  EXPECT_FALSE(q.empty());
  EXPECT_EQ(q.next_time(), 100);
  EXPECT_EQ(q.pop().first, 100);
  EXPECT_EQ(q.pop().first, 103);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, EmptyAfterCancellingEverything) {
  sim::EventQueue q;
  std::vector<sim::EventHandle> handles;
  for (int i = 0; i < 8; ++i) handles.push_back(q.push(i * 50, [] {}));
  for (auto& h : handles) h.cancel();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, CompactionBoundsCancelledBacklog) {
  sim::EventQueue q;
  std::vector<sim::EventHandle> handles;
  for (int i = 0; i < 100; ++i) {
    handles.push_back(q.push(1000 + i * 3, [] {}));
  }
  for (int i = 0; i < 60; ++i) handles[static_cast<std::size_t>(i)].cancel();
  EXPECT_EQ(q.depth(), 100u);
  // The next push sees cancelled (60) outnumber live (41) and compacts.
  q.push(5000, [] {});
  EXPECT_EQ(q.size(), 41u);
  EXPECT_EQ(q.depth(), 41u);
  // Survivors still pop in time order.
  TimeNs prev = 0;
  while (!q.empty()) {
    const TimeNs t = q.pop().first;
    EXPECT_GE(t, prev);
    prev = t;
  }
  EXPECT_EQ(prev, 5000);
}

TEST(EventQueue, StaleHandleCannotCancelRecycledSlot) {
  sim::EventQueue q;
  sim::EventHandle stale = q.push(1, [] {});
  q.pop();  // fires; the slot returns to the free list
  bool ran = false;
  q.push(2, [&ran] { ran = true; });  // recycles the slot, new generation
  stale.cancel();                     // must be a no-op
  EXPECT_EQ(q.size(), 1u);
  q.pop().second();
  EXPECT_TRUE(ran);
}

// ------------------------------------------------------------------- Matcher

mpi::PostedRecv make_recv(Rank src, Tag tag) {
  mpi::PostedRecv recv;
  recv.request = std::make_shared<mpi::Request>(mpi::Request::Kind::kRecv,
                                                src, tag, 0);
  recv.src = src;
  recv.tag = tag;
  return recv;
}

mpi::Envelope make_env(Rank src, Tag tag) {
  mpi::Envelope env;
  env.src = src;
  env.dst = 0;
  env.tag = tag;
  return env;
}

TEST(Matcher, SpecificPostedEarlierBeatsWildcard) {
  mpi::Matcher m;
  auto specific = make_recv(1, 7);
  auto wild = make_recv(kAnyRank, 7);
  EXPECT_FALSE(m.post(specific).has_value());
  EXPECT_FALSE(m.post(wild).has_value());
  auto hit = m.arrive(make_env(1, 7));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->request.get(), specific.request.get());
  auto hit2 = m.arrive(make_env(1, 7));
  ASSERT_TRUE(hit2.has_value());
  EXPECT_EQ(hit2->request.get(), wild.request.get());
  EXPECT_FALSE(m.arrive(make_env(1, 7)).has_value());  // now unexpected
  EXPECT_EQ(m.unexpected_count(), 1u);
}

TEST(Matcher, WildcardPostedEarlierBeatsSpecific) {
  mpi::Matcher m;
  auto wild = make_recv(kAnyRank, 7);
  auto specific = make_recv(1, 7);
  EXPECT_FALSE(m.post(wild).has_value());
  EXPECT_FALSE(m.post(specific).has_value());
  auto hit = m.arrive(make_env(1, 7));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->request.get(), wild.request.get());
  auto hit2 = m.arrive(make_env(1, 7));
  ASSERT_TRUE(hit2.has_value());
  EXPECT_EQ(hit2->request.get(), specific.request.get());
}

TEST(Matcher, WildcardPostDrainsUnexpectedInArrivalOrder) {
  mpi::Matcher m;
  EXPECT_FALSE(m.arrive(make_env(1, 7)).has_value());  // stamp 0
  EXPECT_FALSE(m.arrive(make_env(2, 7)).has_value());  // stamp 1
  EXPECT_FALSE(m.arrive(make_env(1, 7)).has_value());  // stamp 2
  EXPECT_EQ(m.unexpected_count(), 3u);
  EXPECT_EQ(m.total_unexpected(), 3u);
  auto a = m.post(make_recv(kAnyRank, 7));
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->src, 1);  // the earliest arrival, across buckets
  auto b = m.post(make_recv(kAnyRank, 7));
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->src, 2);
  auto c = m.post(make_recv(1, 7));
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->src, 1);
  EXPECT_EQ(m.unexpected_count(), 0u);
}

TEST(Matcher, WildcardTagMatches) {
  mpi::Matcher m;
  auto recv = make_recv(3, kAnyTag);
  EXPECT_FALSE(m.post(recv).has_value());
  auto hit = m.arrive(make_env(3, 99));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->request.get(), recv.request.get());
  EXPECT_FALSE(m.arrive(make_env(4, 99)).has_value());  // wrong source
}

TEST(Matcher, ExactBucketsKeepFifoWithinPair) {
  mpi::Matcher m;
  auto r1 = make_recv(5, 2);
  auto r2 = make_recv(5, 2);
  EXPECT_FALSE(m.post(r1).has_value());
  EXPECT_FALSE(m.post(r2).has_value());
  EXPECT_EQ(m.posted_count(), 2u);
  EXPECT_EQ(m.arrive(make_env(5, 2))->request.get(), r1.request.get());
  EXPECT_EQ(m.arrive(make_env(5, 2))->request.get(), r2.request.get());
}

// -------------------------------------------------- steady-state allocation

TEST(AllocationFree, EventQueueSteadyState) {
  sim::EventQueue q;
  struct Capture {
    std::uint64_t a, b;
  };
  // Warm-up: grow the slab, the cohort, and the radix buckets to the depth
  // the measured loop uses.
  TimeNs t = 0;
  const auto churn = [&](int rounds) {
    for (int r = 0; r < rounds; ++r) {
      for (int i = 0; i < 64; ++i) {
        const Capture c{static_cast<std::uint64_t>(r),
                        static_cast<std::uint64_t>(i)};
        q.push(t + 1 + (i * 37) % 1000, [c] { (void)c; });
      }
      while (!q.empty()) {
        auto [time, fn] = q.pop();
        t = time;
        fn();
      }
    }
  };
  // Pre-touch every radix level the measured loop can reach at the loop's
  // full fan-out (advancing time crosses ever-higher power-of-two
  // boundaries, so later rounds land entries in buckets earlier rounds never
  // used — those vectors must have grown before counting starts).
  for (int b = 5; b <= 45; ++b) {
    for (int j = 0; j < 64; ++j) {
      q.push((static_cast<TimeNs>(1) << b) + j * 37, [] {});
    }
  }
  while (!q.empty()) {
    auto [time, fn] = q.pop();
    t = time;
    fn();
  }
  churn(4);
  const std::uint64_t before = g_alloc_count.load();
  churn(50);
  EXPECT_EQ(g_alloc_count.load() - before, 0u)
      << "event scheduling allocated in steady state";
}

TEST(AllocationFree, ShardCohortPreReserve) {
  // The sharded engine sizes each shard's queue for its rank cohort up
  // front (EventQueue(expected_cohort) reserves the cohort vector and every
  // radix level), so after one warm-up fill — slab record chunks are still
  // allocated on demand — keyed pushes across the full radix-level spread
  // allocate nothing. This is the --shards>1 hot path: no queue growth while
  // worker threads run their windows.
  constexpr int kCohort = 512;
  sim::EventQueue q(kCohort);
  std::uint64_t tie = 0;
  TimeNs t = 0;
  const auto churn = [&](int rounds) {
    for (int r = 0; r < rounds; ++r) {
      for (int i = 0; i < kCohort; ++i) {
        // Spread across radix levels 5..45 like the default steady-state
        // test — the ctor's per-level reserve must cover them unwarmed.
        const int level = 5 + (i % 41);
        q.push_keyed(t + (static_cast<TimeNs>(1) << level) + i * 37, tie++,
                     [] {});
      }
      while (!q.empty()) {
        auto [time, fn] = q.pop();
        t = time;
        fn();
      }
    }
  };
  churn(1);  // warm the record slab (one full-cohort chunk set)
  const std::uint64_t before = g_alloc_count.load();
  churn(20);
  EXPECT_EQ(g_alloc_count.load() - before, 0u)
      << "pre-reserved shard cohort allocated in steady state";
}

TEST(AllocationFree, BufferPoolSteadyState) {
  support::BufferPool pool;
  const auto churn = [&] {
    support::BufferRef a = pool.acquire(1000);
    support::BufferRef b = pool.acquire_raw(64);
    support::BufferRef c = pool.acquire(4096);
    support::BufferRef d = a;  // shared drop path
    a.reset();
  };
  churn();  // warm the free lists
  const std::uint64_t before = g_alloc_count.load();
  for (int i = 0; i < 1000; ++i) churn();
  EXPECT_EQ(g_alloc_count.load() - before, 0u)
      << "buffer churn allocated in steady state";
}

TEST(AllocationFree, MatcherSteadyState) {
  mpi::Matcher m;
  // Requests are made once outside the loop: the matcher itself must not
  // allocate when the same (src, tag) working set recurs.
  std::vector<mpi::PostedRecv> recvs;
  for (int src = 0; src < 4; ++src) recvs.push_back(make_recv(src, 11));
  mpi::PostedRecv wild = make_recv(kAnyRank, 11);
  const auto churn = [&] {
    for (int src = 0; src < 4; ++src) {
      (void)m.arrive(make_env(src, 11));  // all unexpected
    }
    for (int src = 0; src < 4; ++src) {
      (void)m.post(recvs[static_cast<std::size_t>(src)]);  // all hits
    }
    (void)m.post(wild);                // parks on the wildcard list
    (void)m.arrive(make_env(2, 11));   // drains it
  };
  for (int i = 0; i < 4; ++i) churn();  // warm buckets and fifos
  const std::uint64_t before = g_alloc_count.load();
  for (int i = 0; i < 1000; ++i) churn();
  EXPECT_EQ(g_alloc_count.load() - before, 0u)
      << "matching allocated in steady state";
}

// -------------------------------------------------------------- parallel_for

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  constexpr int kN = 500;
  std::vector<std::atomic<int>> hits(kN);
  support::parallel_for(8, kN, [&](int i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (int i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, SequentialWhenJobsIsOne) {
  std::vector<int> order;
  support::parallel_for(1, 5, [&](int i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, RethrowsLowestFailingIndex) {
  try {
    support::parallel_for(4, 16, [](int i) {
      if (i == 3 || i == 9) {
        throw std::runtime_error("boom " + std::to_string(i));
      }
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom 3");
  }
}

TEST(ParallelFor, ZeroItemsIsANoOp) {
  support::parallel_for(4, 0, [](int) { FAIL(); });
}

// -------------------------------------------------------- jobs equivalence

// The conformance report must be identical for any jobs value. Run a small
// matrix seeded with the arrival-order fault (so there ARE failures whose
// order, shrink results, and repro lines can disagree if the merge is wrong)
// sequentially and on four workers, and compare everything.
TEST(JobsEquivalence, MatrixReportIsIdenticalAcrossJobCounts) {
  using namespace adapt::verify;
  std::vector<CaseConfig> cases;
  for (const int world : {8, 12}) {
    CaseConfig config;
    config.collective = Collective::kGather;
    config.world = world;
    config.root = 1;
    config.bytes = 600;
    cases.push_back(config);
  }

  const auto run = [&](int jobs) {
    MatrixOptions options;
    options.sim_seeds = 6;
    options.thread_engine = false;
    options.shrink = true;
    options.jobs = jobs;
    options.fault = Fault::kGatherArrivalOrder;
    return run_matrix(cases, options);
  };
  const Report seq = run(1);
  const Report par = run(4);

  EXPECT_EQ(seq.cases, par.cases);
  EXPECT_EQ(seq.runs, par.runs);
  ASSERT_EQ(seq.failures.size(), par.failures.size());
  for (std::size_t i = 0; i < seq.failures.size(); ++i) {
    EXPECT_EQ(seq.failures[i].repro, par.failures[i].repro) << "failure " << i;
    EXPECT_EQ(seq.failures[i].detail, par.failures[i].detail)
        << "failure " << i;
  }
  EXPECT_EQ(seq.summary(), par.summary());
}

// ------------------------------------------------------- trace byte-identity

// Same-seed traces must be byte-identical to the pre-overhaul pin. The trio
// covers bcast/reduce/allreduce at 64 ranks, stable and perturbed; the golden
// hashes were captured before the slab/radix/pool work landed.
TEST(TraceRegression, TrioMatchesGoldenHashes) {
  using namespace adapt::verify;
  std::ifstream golden(std::string(ADAPT_TESTS_DIR) +
                       "/golden/trace_hashes.txt");
  ASSERT_TRUE(golden.is_open()) << "missing tests/golden/trace_hashes.txt";
  std::map<std::string, std::pair<std::string, std::size_t>> want;
  std::string name, mode, hash;
  std::size_t size = 0;
  while (golden >> name >> mode >> hash >> size) {
    want[name + " " + mode] = {hash, size};
  }
  ASSERT_EQ(want.size(), 6u);

  for (const TrioOp op :
       {TrioOp::kBcast, TrioOp::kReduce, TrioOp::kAllreduce}) {
    for (const bool perturbed : {false, true}) {
      const std::string key =
          std::string(trio_name(op)) + (perturbed ? " perturbed" : " stable");
      const std::string trace = trio_trace(op, perturbed);
      char buf[17];
      std::snprintf(buf, sizeof(buf), "%016llx",
                    static_cast<unsigned long long>(fnv1a64(trace)));
      ASSERT_TRUE(want.count(key)) << key;
      EXPECT_EQ(buf, want[key].first) << key << " trace bytes changed";
      EXPECT_EQ(trace.size(), want[key].second) << key << " trace size";
    }
  }
}

}  // namespace
