// Canonical merge of per-shard Recorders into one output Recorder.
//
// The sharded engine gives every shard a private Recorder so the hot path
// never synchronizes on observability, then merges them after the run. The
// merge order is the determinism linchpin: records are sorted by virtual
// time with the owning rank as tiebreak, and same-key records keep their
// per-rank append order (stable sort; every rank's records live in exactly
// one shard, so concatenation order within a key is the rank's own execution
// order — invariant to how ranks were sharded). The merged trace, metrics
// CSV and golden hashes are therefore byte-identical for ANY --shards value,
// including 1: the engine routes even a single shard through this merge.
//
// Metrics: replaying CpuRecs through Recorder::cpu_task reconstructs the
// four per-rank CPU-time counters exactly (records the shard recorder
// skipped are the zero-delta ones), so merge_metrics sums only the
// transport-side counters (sends/recvs/bytes), link bytes, named counters
// and histograms.
#pragma once

#include <vector>

#include "src/obs/trace.hpp"

namespace adapt::obs {

/// Appends every record of `parts` into `out` in canonical order. `out`
/// should be freshly init_ranks()'d; parts are read-only. Transfers not yet
/// done are dropped (exports skip them anyway).
void merge_recorders(const std::vector<const Recorder*>& parts, Recorder& out);

}  // namespace adapt::obs
