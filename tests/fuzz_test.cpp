// Randomised property tests: the collectives must deliver correct data over
// ARBITRARY spanning trees (not just the named builders), arbitrary segment
// sizes, pipeline depths, roots, communicator subsets and machine shapes.
// Each case draws its configuration from a seeded generator, so failures
// reproduce exactly.
#include <gtest/gtest.h>

#include <cstring>

#include "src/coll/coll.hpp"
#include "src/runtime/sim_engine.hpp"
#include "src/support/rng.hpp"
#include "src/topo/presets.hpp"

namespace adapt::coll {
namespace {

using runtime::Context;
using runtime::SimEngine;

/// A uniformly random spanning tree over [0, n) rooted at `root`: nodes are
/// attached in random order to a random already-attached parent.
Tree random_tree(int n, Rank root, Rng& rng) {
  Tree t;
  t.root = root;
  t.parent.assign(static_cast<std::size_t>(n), -1);
  t.children.resize(static_cast<std::size_t>(n));
  std::vector<Rank> order;
  order.reserve(static_cast<std::size_t>(n));
  for (Rank r = 0; r < n; ++r) {
    if (r != root) order.push_back(r);
  }
  // Fisher-Yates shuffle with our deterministic generator.
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.next_below(i)]);
  }
  std::vector<Rank> attached = {root};
  for (Rank r : order) {
    const Rank parent = attached[rng.next_below(attached.size())];
    t.parent[static_cast<std::size_t>(r)] = parent;
    t.children[static_cast<std::size_t>(parent)].push_back(r);
    attached.push_back(r);
  }
  t.validate();
  return t;
}

struct FuzzConfig {
  int nranks;
  Rank root;
  Bytes bytes;
  Bytes segment;
  int n_out;
  int m_out;
  Style style;
  std::uint64_t tree_seed;
};

FuzzConfig draw(Rng& rng) {
  FuzzConfig c;
  c.nranks = static_cast<int>(rng.next_in(2, 40));
  c.root = static_cast<Rank>(rng.next_below(static_cast<std::uint64_t>(c.nranks)));
  c.bytes = rng.next_in(0, 6000);
  c.bytes -= c.bytes % 4;  // int32 payloads
  c.segment = rng.next_in(1, 2048);
  c.segment -= c.segment % 4;
  if (c.segment == 0) c.segment = 4;
  c.n_out = static_cast<int>(rng.next_in(1, 6));
  c.m_out = static_cast<int>(rng.next_in(1, 8));
  const auto s = rng.next_below(3);
  c.style = s == 0 ? Style::kBlocking
                   : (s == 1 ? Style::kNonblocking : Style::kAdapt);
  c.tree_seed = rng.next_u64();
  return c;
}

std::string describe(const FuzzConfig& c) {
  return std::string(style_name(c.style)) + " n=" + std::to_string(c.nranks) +
         " root=" + std::to_string(c.root) +
         " bytes=" + std::to_string(c.bytes) +
         " seg=" + std::to_string(c.segment) +
         " N=" + std::to_string(c.n_out) + " M=" + std::to_string(c.m_out) +
         " tree_seed=" + std::to_string(c.tree_seed);
}

class CollectiveFuzz : public testing::TestWithParam<std::uint64_t> {};

TEST_P(CollectiveFuzz, BcastOnRandomTrees) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 6; ++iter) {
    const FuzzConfig c = draw(rng);
    Rng tree_rng(c.tree_seed);
    const Tree tree = random_tree(c.nranks, c.root, tree_rng);
    topo::Machine m(topo::cori(2), c.nranks);
    SimEngine engine(m);
    const mpi::Comm world = mpi::Comm::world(c.nranks);

    std::vector<std::vector<std::byte>> bufs(
        static_cast<std::size_t>(c.nranks),
        std::vector<std::byte>(static_cast<std::size_t>(c.bytes)));
    for (auto& b : bufs[static_cast<std::size_t>(c.root)]) {
      b = std::byte(rng.next_below(256));
    }
    CollOpts opts;
    opts.segment_size = c.segment;
    opts.outstanding_sends = c.n_out;
    opts.outstanding_recvs = c.m_out;
    auto program = [&](Context& ctx) -> sim::Task<> {
      auto& mine = bufs[static_cast<std::size_t>(ctx.rank())];
      co_await bcast(ctx, world, mpi::MutView{mine.data(), c.bytes}, c.root,
                     tree, c.style, opts);
    };
    ASSERT_NO_THROW(engine.run(program)) << describe(c);
    for (int r = 0; r < c.nranks; ++r) {
      ASSERT_EQ(bufs[static_cast<std::size_t>(r)],
                bufs[static_cast<std::size_t>(c.root)])
          << describe(c) << " rank " << r;
    }
  }
}

TEST_P(CollectiveFuzz, ReduceOnRandomTrees) {
  Rng rng(GetParam() ^ 0x5eed);
  for (int iter = 0; iter < 6; ++iter) {
    const FuzzConfig c = draw(rng);
    Rng tree_rng(c.tree_seed);
    const Tree tree = random_tree(c.nranks, c.root, tree_rng);
    topo::Machine m(topo::cori(2), c.nranks);
    SimEngine engine(m);
    const mpi::Comm world = mpi::Comm::world(c.nranks);

    const std::size_t elems = static_cast<std::size_t>(c.bytes) / 4;
    std::vector<std::vector<std::int32_t>> contrib(
        static_cast<std::size_t>(c.nranks));
    std::vector<std::int32_t> expected(elems, 0);
    for (int r = 0; r < c.nranks; ++r) {
      auto& v = contrib[static_cast<std::size_t>(r)];
      v.resize(elems);
      for (std::size_t i = 0; i < elems; ++i) {
        v[i] = static_cast<std::int32_t>(rng.next_in(-1000, 1000));
        expected[i] += v[i];
      }
    }
    CollOpts opts;
    opts.segment_size = c.segment;
    opts.outstanding_sends = c.n_out;
    opts.outstanding_recvs = c.m_out;
    auto program = [&](Context& ctx) -> sim::Task<> {
      auto& mine = contrib[static_cast<std::size_t>(ctx.rank())];
      co_await reduce(ctx, world,
                      mpi::MutView{reinterpret_cast<std::byte*>(mine.data()),
                                   c.bytes},
                      mpi::ReduceOp::kSum, mpi::Datatype::kInt32, c.root,
                      tree, c.style, opts);
    };
    ASSERT_NO_THROW(engine.run(program)) << describe(c);
    EXPECT_EQ(contrib[static_cast<std::size_t>(c.root)], expected)
        << describe(c);
  }
}

TEST_P(CollectiveFuzz, BcastOnRandomSubCommunicators) {
  Rng rng(GetParam() ^ 0xc0de);
  for (int iter = 0; iter < 4; ++iter) {
    const int world_n = static_cast<int>(rng.next_in(8, 48));
    topo::Machine m(topo::cori(2), world_n);
    // Random subset of at least 2 members.
    std::vector<Rank> members;
    for (Rank r = 0; r < world_n; ++r) {
      if (rng.next_double() < 0.5) members.push_back(r);
    }
    if (members.size() < 2) members = {0, static_cast<Rank>(world_n - 1)};
    const mpi::Comm sub(members);
    const Rank root =
        static_cast<Rank>(rng.next_below(static_cast<std::uint64_t>(sub.size())));
    Rng tree_rng(rng.next_u64());
    const Tree tree = random_tree(sub.size(), root, tree_rng);

    SimEngine engine(m);
    const Bytes bytes = 512;
    std::vector<std::vector<std::byte>> bufs(
        static_cast<std::size_t>(world_n), std::vector<std::byte>(512));
    bufs[static_cast<std::size_t>(sub.global(root))].assign(512,
                                                            std::byte(0x3C));
    auto program = [&](Context& ctx) -> sim::Task<> {
      if (!sub.contains(ctx.rank())) co_return;
      auto& mine = bufs[static_cast<std::size_t>(ctx.rank())];
      co_await bcast(ctx, sub, mpi::MutView{mine.data(), bytes}, root, tree,
                     Style::kAdapt, CollOpts{.segment_size = 128});
    };
    engine.run(program);
    for (Rank g : sub.members()) {
      EXPECT_EQ(bufs[static_cast<std::size_t>(g)][511], std::byte(0x3C));
    }
  }
}

TEST_P(CollectiveFuzz, AdaptBcastUnderPerturbedSchedules) {
  // The fuzzed configurations again, but each run on a randomly perturbed
  // event schedule (seeded tie-shuffling + delivery jitter): payload
  // correctness may not depend on which legal schedule the engine picks.
  Rng rng(GetParam() ^ 0x9e57);
  for (int iter = 0; iter < 4; ++iter) {
    const FuzzConfig c = draw(rng);
    const std::uint64_t perturb_seed = rng.next_u64() | 1;  // never 0
    Rng tree_rng(c.tree_seed);
    const Tree tree = random_tree(c.nranks, c.root, tree_rng);
    topo::Machine m(topo::cori(2), c.nranks);
    runtime::SimEngineOptions engine_opts;
    engine_opts.perturb = sim::PerturbConfig{
        .seed = perturb_seed, .max_jitter = microseconds(5)};
    SimEngine engine(m, engine_opts);
    const mpi::Comm world = mpi::Comm::world(c.nranks);

    std::vector<std::vector<std::byte>> bufs(
        static_cast<std::size_t>(c.nranks),
        std::vector<std::byte>(static_cast<std::size_t>(c.bytes)));
    for (auto& b : bufs[static_cast<std::size_t>(c.root)]) {
      b = std::byte(rng.next_below(256));
    }
    CollOpts opts;
    opts.segment_size = c.segment;
    opts.outstanding_sends = c.n_out;
    opts.outstanding_recvs = c.m_out;
    auto program = [&](Context& ctx) -> sim::Task<> {
      auto& mine = bufs[static_cast<std::size_t>(ctx.rank())];
      co_await bcast(ctx, world, mpi::MutView{mine.data(), c.bytes}, c.root,
                     tree, Style::kAdapt, opts);
    };
    ASSERT_NO_THROW(engine.run(program))
        << describe(c) << " perturb_seed=" << perturb_seed;
    for (int r = 0; r < c.nranks; ++r) {
      ASSERT_EQ(bufs[static_cast<std::size_t>(r)],
                bufs[static_cast<std::size_t>(c.root)])
          << describe(c) << " perturb_seed=" << perturb_seed << " rank " << r;
    }
  }
}

TEST_P(CollectiveFuzz, AdaptReduceUnderPerturbedSchedules) {
  Rng rng(GetParam() ^ 0x7a1e);
  for (int iter = 0; iter < 3; ++iter) {
    const FuzzConfig c = draw(rng);
    const std::uint64_t perturb_seed = rng.next_u64() | 1;
    Rng tree_rng(c.tree_seed);
    const Tree tree = random_tree(c.nranks, c.root, tree_rng);
    topo::Machine m(topo::cori(2), c.nranks);
    runtime::SimEngineOptions engine_opts;
    engine_opts.perturb = sim::PerturbConfig{
        .seed = perturb_seed, .max_jitter = microseconds(5)};
    SimEngine engine(m, engine_opts);
    const mpi::Comm world = mpi::Comm::world(c.nranks);

    const std::size_t elems = static_cast<std::size_t>(c.bytes) / 4;
    std::vector<std::vector<std::int32_t>> contrib(
        static_cast<std::size_t>(c.nranks));
    std::vector<std::int32_t> expected(elems, 0);
    for (int r = 0; r < c.nranks; ++r) {
      auto& v = contrib[static_cast<std::size_t>(r)];
      v.resize(elems);
      for (std::size_t i = 0; i < elems; ++i) {
        v[i] = static_cast<std::int32_t>(rng.next_in(-1000, 1000));
        expected[i] += v[i];
      }
    }
    CollOpts opts;
    opts.segment_size = c.segment;
    opts.outstanding_sends = c.n_out;
    opts.outstanding_recvs = c.m_out;
    auto program = [&](Context& ctx) -> sim::Task<> {
      auto& mine = contrib[static_cast<std::size_t>(ctx.rank())];
      co_await reduce(ctx, world,
                      mpi::MutView{reinterpret_cast<std::byte*>(mine.data()),
                                   c.bytes},
                      mpi::ReduceOp::kSum, mpi::Datatype::kInt32, c.root,
                      tree, Style::kAdapt, opts);
    };
    ASSERT_NO_THROW(engine.run(program))
        << describe(c) << " perturb_seed=" << perturb_seed;
    EXPECT_EQ(contrib[static_cast<std::size_t>(c.root)], expected)
        << describe(c) << " perturb_seed=" << perturb_seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CollectiveFuzz,
                         testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace adapt::coll
