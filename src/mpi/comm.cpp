#include "src/mpi/comm.hpp"

#include <algorithm>
#include <numeric>

namespace adapt::mpi {

Comm Comm::world(int nranks) {
  ADAPT_CHECK(nranks > 0);
  std::vector<Rank> members(static_cast<std::size_t>(nranks));
  std::iota(members.begin(), members.end(), 0);
  return Comm(std::move(members));
}

Comm::Comm(std::vector<Rank> members) : members_(std::move(members)) {
  ADAPT_CHECK(!members_.empty());
  std::vector<Rank> sorted = members_;
  std::sort(sorted.begin(), sorted.end());
  ADAPT_CHECK(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end())
      << "duplicate member rank";
}

Rank Comm::local_of(Rank global_rank) const {
  const auto it = std::find(members_.begin(), members_.end(), global_rank);
  if (it == members_.end()) return kAnyRank;
  return static_cast<Rank>(it - members_.begin());
}

}  // namespace adapt::mpi
