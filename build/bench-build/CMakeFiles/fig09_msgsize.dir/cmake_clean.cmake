file(REMOVE_RECURSE
  "../bench/fig09_msgsize"
  "../bench/fig09_msgsize.pdb"
  "CMakeFiles/fig09_msgsize.dir/fig09_msgsize.cpp.o"
  "CMakeFiles/fig09_msgsize.dir/fig09_msgsize.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_msgsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
