#include "src/sim/simulator.hpp"

#include "src/support/error.hpp"

namespace adapt::sim {

EventHandle Simulator::at(TimeNs t, EventFn fn) {
  ADAPT_CHECK(t >= now_) << "scheduling into the past: t=" << t
                         << " now=" << now_;
  return queue_.push(t, std::move(fn));
}

EventHandle Simulator::after(TimeNs delay, EventFn fn) {
  ADAPT_CHECK(delay >= 0) << "negative delay " << delay;
  return queue_.push(now_ + delay, std::move(fn));
}

TimeNs Simulator::run(TimeNs until) {
  while (!queue_.empty() && queue_.next_time() <= until) {
    auto [t, fn] = queue_.pop();
    now_ = t;
    ++processed_;
    fn();
  }
  return now_;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto [t, fn] = queue_.pop();
  now_ = t;
  ++processed_;
  fn();
  return true;
}

}  // namespace adapt::sim
