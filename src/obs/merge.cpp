#include "src/obs/merge.hpp"

#include <algorithm>
#include <tuple>

namespace adapt::obs {

namespace {

void merge_metrics(const MetricsRegistry& part, MetricsRegistry& out) {
  const auto& ranks = part.ranks();
  for (std::size_t r = 0; r < ranks.size(); ++r) {
    const RankCounters& src = ranks[r];
    RankCounters& dst = out.rank(static_cast<Rank>(r));
    // The CPU-time counters were already rebuilt by the cpu_task replay.
    dst.sends += src.sends;
    dst.send_bytes += src.send_bytes;
    dst.recvs += src.recvs;
    dst.recv_bytes += src.recv_bytes;
  }
  const auto& links = part.links();
  for (std::size_t i = 0; i < links.size(); ++i) {
    out.link_bytes(static_cast<int>(i)) += links[i];
  }
  for (const auto& [name, value] : part.counters()) {
    out.counter(name) += value;
  }
  for (const auto& [name, hist] : part.histograms()) {
    Histogram& dst = out.histogram(name);
    for (std::size_t b = 0; b < hist.buckets.size(); ++b) {
      dst.buckets[b] += hist.buckets[b];
    }
    dst.count += hist.count;
    dst.sum += hist.sum;
    dst.max = std::max(dst.max, hist.max);
  }
}

}  // namespace

void merge_recorders(const std::vector<const Recorder*>& parts,
                     Recorder& out) {
  std::vector<SpanRec> spans;
  std::vector<InstantRec> instants;
  std::vector<CpuRec> cpu;
  std::vector<TransferRec> transfers;
  std::vector<LinkSampleRec> links;
  for (const Recorder* part : parts) {
    spans.insert(spans.end(), part->spans().begin(), part->spans().end());
    instants.insert(instants.end(), part->instants().begin(),
                    part->instants().end());
    cpu.insert(cpu.end(), part->cpu_tasks().begin(), part->cpu_tasks().end());
    transfers.insert(transfers.end(), part->transfers().begin(),
                     part->transfers().end());
    links.insert(links.end(), part->link_samples().begin(),
                 part->link_samples().end());
  }

  std::stable_sort(spans.begin(), spans.end(),
                   [](const SpanRec& a, const SpanRec& b) {
                     return std::tie(a.t0, a.pid, a.tid) <
                            std::tie(b.t0, b.pid, b.tid);
                   });
  std::stable_sort(instants.begin(), instants.end(),
                   [](const InstantRec& a, const InstantRec& b) {
                     return std::tie(a.t, a.pid, a.tid) <
                            std::tie(b.t, b.pid, b.tid);
                   });
  std::stable_sort(cpu.begin(), cpu.end(),
                   [](const CpuRec& a, const CpuRec& b) {
                     return std::tie(a.t_request, a.rank, a.progress) <
                            std::tie(b.t_request, b.rank, b.progress);
                   });
  // A transfer record is always appended by the shard of its `src` rank (the
  // rank whose callback produced it), so (t_post, src, dst, kind) ties are
  // same-rank ties and the stable order is shard-count invariant.
  std::stable_sort(transfers.begin(), transfers.end(),
                   [](const TransferRec& a, const TransferRec& b) {
                     return std::tie(a.t_post, a.src, a.dst, a.kind) <
                            std::tie(b.t_post, b.src, b.dst, b.kind);
                   });
  std::stable_sort(links.begin(), links.end(),
                   [](const LinkSampleRec& a, const LinkSampleRec& b) {
                     return std::tie(a.t, a.link) < std::tie(b.t, b.link);
                   });

  for (const SpanRec& s : spans) {
    out.span(s.pid, s.tid, s.cat, s.name, s.t0, s.t1, s.arg);
  }
  for (const InstantRec& i : instants) {
    out.instant(i.pid, i.tid, i.cat, i.name, i.t, i.arg);
  }
  for (const CpuRec& c : cpu) {
    out.cpu_task(c.rank, c.progress, c.t_request, c.t_ready, c.t_start,
                 c.t_end);
  }
  for (const TransferRec& t : transfers) {
    if (!t.done) continue;
    const std::uint64_t id =
        out.transfer_begin(t.src, t.dst, t.bytes, t.kind, t.t_post);
    if (id == 0) continue;  // out is in flight mode and sampled this one out
    if (t.t_active >= 0) out.transfer_active(id, t.t_active, t.ideal);
    out.transfer_end(id, t.t_end);
    if (!t.delivered) out.transfer_undelivered(id);
  }
  for (const LinkSampleRec& l : links) {
    out.link_sample(l.link, l.t, l.flows);
  }

  for (const Recorder* part : parts) {
    merge_metrics(part->metrics(), out.metrics());
    out.queue_stats().scheduled += part->queue_stats().scheduled;
  }
}

}  // namespace adapt::obs
