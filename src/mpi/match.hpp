// Receiver-side message matching: the posted-receive queue and the
// unexpected-message queue.
//
// Matching is by (source, tag) with MPI-style wildcards; among equally
// matching entries the earliest posted/arrived wins (FIFO). The unexpected
// path is what the paper's M > N discussion (§2.2.1) is about: an unexpected
// message costs an extra buffer allocation and copy when it is finally
// matched, so ADAPT posts more receives (M) than each sender keeps in
// flight (N).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "src/mpi/payload.hpp"
#include "src/mpi/request.hpp"
#include "src/support/units.hpp"

namespace adapt::mpi {

/// A receive that has been posted and not yet matched.
struct PostedRecv {
  RequestPtr request;
  MutView buffer;
  Rank src = kAnyRank;  ///< kAnyRank = wildcard
  Tag tag = kAnyTag;    ///< kAnyTag = wildcard
};

/// In-flight message (eager: data travels with it) or rendezvous
/// ready-to-send notice (grant set: data moves only once a receive matched).
struct Envelope {
  Rank src = kAnyRank;
  Rank dst = kAnyRank;
  Tag tag = kAnyTag;
  Bytes size = 0;
  /// Copy of the sender's bytes; null for synthetic payloads and RTS notices.
  std::shared_ptr<std::vector<std::byte>> data;
  /// Rendezvous grant: invoked exactly once with the matched receive; the
  /// transport then runs CTS + data transfer and finalises both requests.
  std::function<void(PostedRecv)> grant;

  bool rendezvous() const { return static_cast<bool>(grant); }
};

class Matcher {
 public:
  /// Tries to match a newly posted receive against the unexpected queue.
  /// On a hit the envelope is removed and returned; otherwise the receive is
  /// enqueued on the posted list.
  std::optional<Envelope> post(PostedRecv recv);

  /// Tries to match an arriving envelope against the posted list. On a hit
  /// the posted receive is removed and returned; otherwise the envelope is
  /// enqueued on the unexpected list.
  std::optional<PostedRecv> arrive(const Envelope& env);

  std::size_t posted_count() const { return posted_.size(); }
  std::size_t unexpected_count() const { return unexpected_.size(); }
  std::uint64_t total_unexpected() const { return total_unexpected_; }

 private:
  static bool matches(const PostedRecv& recv, const Envelope& env) {
    return (recv.src == kAnyRank || recv.src == env.src) &&
           (recv.tag == kAnyTag || recv.tag == env.tag);
  }

  std::deque<PostedRecv> posted_;
  std::deque<Envelope> unexpected_;
  std::uint64_t total_unexpected_ = 0;
};

}  // namespace adapt::mpi
