// Unit tests for the adaptive decision engine (src/tune): the CostModel's
// closed-form regime, the DecisionTable cache contract, Tuner determinism,
// and the heuristic boundary the tuner replaces (default_segment_size).
#include <gtest/gtest.h>

#include <cmath>

#include "src/coll/han.hpp"
#include "src/coll/library.hpp"
#include "src/coll/tree.hpp"
#include "src/mpi/comm.hpp"
#include "src/topo/hardware.hpp"
#include "src/topo/presets.hpp"
#include "src/tune/cost.hpp"
#include "src/tune/tuner.hpp"

namespace adapt {
namespace {

/// Every rank on its own single-core node, identical lanes, no local
/// overheads, everything eager: Hockney with no contention and no protocol
/// split — the regime where binomial bcast has a closed form.
topo::Machine uniform_machine(int ranks) {
  topo::MachineSpec spec;
  spec.name = "uniform";
  spec.nodes = ranks;
  spec.sockets_per_node = 1;
  spec.cores_per_socket = 1;
  const topo::LinkParams lane{1000, 1.0 / 8.0};  // α = 1 µs, β = 8 GB/s
  spec.intra_socket = spec.inter_socket = spec.inter_node = lane;
  spec.shm_parallel = 1.0;
  spec.memcpy_beta = 0.0;
  spec.unexpected_overhead = 0;
  spec.cpu_overhead = 0;
  spec.eager_threshold = mib(64);  // never rendezvous
  return topo::Machine(spec, ranks);
}

// -- CostModel: closed-form binomial property ---------------------------

// Blocking binomial bcast of one unsegmented message on the uniform machine
// is exactly ceil(log2 P) * (α + β·m): the binomial construction serves the
// largest subtree first, every round is one awaited α + β·m send, and no two
// transfers share a link. P = 2,4,8,16 at m = 32 KiB pins the exact
// nanosecond values.
TEST(CostModel, BinomialBcastClosedForm) {
  const Bytes m = kib(32);  // β·m = 0.125 * 32768 = 4096 ns
  const TimeNs round = 1000 + 4096;
  const struct {
    int ranks;
    TimeNs expect;
  } kTable[] = {
      {2, 1 * round},   // 5096
      {4, 2 * round},   // 10192
      {8, 3 * round},   // 15288
      {16, 4 * round},  // 20384
  };
  for (const auto& row : kTable) {
    const topo::Machine machine = uniform_machine(row.ranks);
    const mpi::Comm comm = mpi::Comm::world(row.ranks);
    const coll::Tree tree =
        coll::build_tree(coll::TreeKind::kBinomial, row.ranks, 0);
    tune::Workload work;
    work.op = tune::Op::kBcast;
    work.style = coll::Style::kBlocking;
    work.bytes = m;
    work.segment = m;  // one segment: no pipelining
    const TimeNs predicted =
        tune::CostModel(machine).predict(work, comm, tree);
    EXPECT_EQ(predicted, row.expect) << "P=" << row.ranks;
  }
}

// Chain bcast under the same conditions is (P-1) rounds — a second closed
// form catching walk bugs the binomial one would mask.
TEST(CostModel, ChainBcastClosedForm) {
  const int ranks = 6;
  const topo::Machine machine = uniform_machine(ranks);
  const mpi::Comm comm = mpi::Comm::world(ranks);
  const coll::Tree tree = coll::build_tree(coll::TreeKind::kChain, ranks, 0);
  tune::Workload work;
  work.op = tune::Op::kBcast;
  work.style = coll::Style::kBlocking;
  work.bytes = kib(32);
  work.segment = kib(32);
  EXPECT_EQ(tune::CostModel(machine).predict(work, comm, tree),
            (ranks - 1) * (1000 + 4096));
}

// -- DecisionTable: cache contract --------------------------------------

tune::Decision sample_decision() {
  tune::Decision d;
  d.topology = tune::Topology::kTopoKnomial;
  d.radix = 4;
  d.segment = kib(32);
  d.predicted = 123456;
  return d;
}

TEST(DecisionTable, CountsHitsAndMisses) {
  tune::DecisionTable table("fp");
  const tune::TableKey key{tune::Op::kBcast, 16, 18};
  EXPECT_FALSE(table.find(key).has_value());
  EXPECT_EQ(table.misses(), 1u);
  EXPECT_EQ(table.hits(), 0u);

  table.insert(key, sample_decision());
  EXPECT_EQ(table.size(), 1);
  const auto found = table.find(key);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, sample_decision());
  EXPECT_EQ(table.hits(), 1u);
  EXPECT_EQ(table.misses(), 1u);

  // A different bucket is a distinct entry, not an eviction.
  EXPECT_FALSE(table.find({tune::Op::kBcast, 16, 19}).has_value());
  EXPECT_TRUE(table.find(key).has_value());
  EXPECT_EQ(table.size(), 1);
}

TEST(DecisionTable, JsonRoundTrip) {
  tune::DecisionTable table("machine-A");
  table.insert({tune::Op::kBcast, 16, 18}, sample_decision());
  tune::Decision other;
  other.topology = tune::Topology::kBinomial;
  other.radix = 2;
  other.segment = 0;  // whole message survives the round-trip
  other.predicted = 77;
  table.insert({tune::Op::kReduce, 8, 20}, other);

  tune::DecisionTable loaded("machine-A");
  std::string error;
  ASSERT_TRUE(loaded.load_json(table.dump_json(), &error)) << error;
  EXPECT_EQ(loaded.size(), 2);
  EXPECT_EQ(loaded.dump_json(), table.dump_json());
  const auto found = loaded.find({tune::Op::kReduce, 8, 20});
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, other);
}

TEST(DecisionTable, RejectsStaleMachine) {
  tune::DecisionTable recorded("machine-A");
  recorded.insert({tune::Op::kBcast, 16, 18}, sample_decision());

  tune::DecisionTable other("machine-B");  // e.g. different α/β
  std::string error;
  EXPECT_FALSE(other.load_json(recorded.dump_json(), &error));
  EXPECT_NE(error.find("different machine"), std::string::npos) << error;
  EXPECT_EQ(other.size(), 0);
}

TEST(DecisionTable, RejectsMalformedJson) {
  tune::DecisionTable table("fp");
  std::string error;
  EXPECT_FALSE(table.load_json("{not json", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(table.load_json("{\"schema\": \"something-else\"}", &error));
  EXPECT_FALSE(error.empty());
}

TEST(Machine, FingerprintSeparatesParameterChanges) {
  const topo::Machine a = uniform_machine(4);
  topo::MachineSpec spec;
  spec.nodes = 4;
  spec.sockets_per_node = 1;
  spec.cores_per_socket = 1;
  spec.intra_socket = spec.inter_socket = {1000, 1.0 / 8.0};
  spec.inter_node = {1000, 1.0 / 4.0};  // half the bandwidth
  spec.shm_parallel = 1.0;
  spec.memcpy_beta = 0.0;
  spec.unexpected_overhead = 0;
  spec.cpu_overhead = 0;
  spec.eager_threshold = mib(64);
  spec.name = "uniform";
  const topo::Machine b(spec, 4);
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(a.fingerprint(), uniform_machine(4).fingerprint());
}

// -- Tuner: determinism and grid consistency ----------------------------

TEST(Tuner, CachesPerBucket) {
  const topo::Machine machine = uniform_machine(8);
  tune::Tuner tuner(machine);
  const tune::Decision first = tuner.choose(tune::Op::kBcast, 8, kib(256));
  EXPECT_EQ(tuner.cache_misses(), 1u);
  EXPECT_EQ(tuner.cache_hits(), 0u);

  // Same bucket (any size in [256K, 512K)) hits the cache.
  const tune::Decision again =
      tuner.choose(tune::Op::kBcast, 8, kib(256) + 1000);
  EXPECT_EQ(again, first);
  EXPECT_EQ(tuner.cache_hits(), 1u);
  EXPECT_EQ(tuner.cache_misses(), 1u);
  EXPECT_EQ(tuner.table_size(), 1);

  // Different op / ranks / bucket all miss.
  tuner.choose(tune::Op::kReduce, 8, kib(256));
  tuner.choose(tune::Op::kBcast, 4, kib(256));
  tuner.choose(tune::Op::kBcast, 8, kib(512));
  EXPECT_EQ(tuner.cache_misses(), 4u);
  EXPECT_EQ(tuner.table_size(), 4);
}

TEST(Tuner, DeterministicAcrossInstances) {
  const topo::Machine machine = uniform_machine(16);
  tune::Tuner a(machine);
  tune::Tuner b(machine);
  for (const tune::Op op : {tune::Op::kBcast, tune::Op::kReduce})
    for (const Bytes bytes : {kib(8), kib(64), kib(512), mib(2)})
      EXPECT_EQ(a.choose(op, 16, bytes), b.choose(op, 16, bytes))
          << tune::op_name(op) << " " << bytes;
  EXPECT_EQ(a.dump_json(), b.dump_json());
}

TEST(Tuner, ChoiceIsArgminOfCandidates) {
  const topo::Machine machine = uniform_machine(8);
  tune::Tuner tuner(machine);
  const tune::Decision chosen = tuner.choose(tune::Op::kReduce, 8, mib(1));
  const auto candidates = tuner.candidates(tune::Op::kReduce, 8, mib(1));
  // Grid: {topo-chain, topo-knomial r2, topo-knomial r4, binomial} ×
  // {16K, 32K, 64K, 128K, whole}.
  EXPECT_EQ(candidates.size(), 20u);
  TimeNs best = candidates.front().predicted;
  bool chosen_in_grid = false;
  for (const tune::Decision& c : candidates) {
    best = std::min(best, c.predicted);
    if (c == chosen) chosen_in_grid = true;
  }
  EXPECT_TRUE(chosen_in_grid);
  EXPECT_EQ(chosen.predicted, best);
}

TEST(Tuner, BucketIsFloorLog2) {
  EXPECT_EQ(tune::Tuner::bucket(0), 0);
  EXPECT_EQ(tune::Tuner::bucket(1), 0);
  EXPECT_EQ(tune::Tuner::bucket(2), 1);
  EXPECT_EQ(tune::Tuner::bucket(3), 1);
  EXPECT_EQ(tune::Tuner::bucket(4), 2);
  EXPECT_EQ(tune::Tuner::bucket(kib(64)), 16);
  EXPECT_EQ(tune::Tuner::bucket(kib(64) + 1), 16);
  EXPECT_EQ(tune::Tuner::bucket(mib(2)), 21);
  EXPECT_EQ(tune::Tuner::bucket_bytes(16), kib(64));
}

TEST(Tuner, TunerJsonRoundTripRestoresDecisions) {
  const topo::Machine machine = uniform_machine(8);
  tune::Tuner a(machine);
  const tune::Decision chosen = a.choose(tune::Op::kBcast, 8, kib(512));

  tune::Tuner b(machine);
  std::string error;
  ASSERT_TRUE(b.load_json(a.dump_json(), &error)) << error;
  EXPECT_EQ(b.table_size(), 1);
  EXPECT_EQ(b.choose(tune::Op::kBcast, 8, kib(512)), chosen);
  EXPECT_EQ(b.cache_hits(), 1u);  // served from the loaded table
  EXPECT_EQ(b.cache_misses(), 0u);
}

TEST(Tuner, DecisionSegmentWholeMessageSentinel) {
  tune::Decision d;
  d.segment = 0;
  EXPECT_EQ(tune::decision_segment(d, kib(256)), kib(256));
  EXPECT_EQ(tune::decision_segment(d, 0), 1);  // Segmenter needs >= 1
  d.segment = kib(32);
  EXPECT_EQ(tune::decision_segment(d, kib(256)), kib(32));
}

// -- The heuristic the tuner replaces -----------------------------------

// Pins coll::default_segment_size exactly: whole message through 64 KB, a
// discontinuous drop to msg/16 clamped to [16 KB, 128 KB] above it. The
// tuned personality must opt out of this table, so freeze what "off" means.
TEST(DefaultSegmentSize, PinsHeuristicTable) {
  const struct {
    Bytes message;
    Bytes expect;
  } kTable[] = {
      {0, 1},                    // degenerate floor
      {1, 1},
      {kib(16), kib(16)},        // whole message below the threshold
      {kib(64), kib(64)},        // boundary: still whole
      {kib(64) + 1, kib(16)},    // discontinuity: msg/16 hits the 16K clamp
      {kib(256), kib(16)},       // 256K/16 = 16K
      {kib(512), kib(32)},
      {mib(1), kib(64)},
      {mib(2), kib(128)},
      {mib(4), kib(128)},        // clamped at 128K
      {mib(64), kib(128)},
  };
  for (const auto& row : kTable)
    EXPECT_EQ(coll::default_segment_size(row.message), row.expect)
        << "message=" << row.message;
}

// -- HAN two-level candidates -------------------------------------------

// Hand-computed two-level bcast on a 2-node × 4-rank han_cluster. The han
// tree is 0→2 over the fabric (binomial over the leaders {0, 2}) plus 0→1
// and 2→3 over each node's SHM channel. With one eager segment and no
// contention (every edge is alone on its links), the kAdapt critical path is
// the remote node's last rank: an activation overhead at the root, the
// inter-node Hockney time, the remote leader's forwarding overhead, and the
// SHM-channel Hockney time.
TEST(CostModel, HanBcastTwoNodeClosedForm) {
  const topo::Machine machine(topo::han_cluster(2, 2), 4);
  const mpi::Comm comm = mpi::Comm::world(4);
  const coll::Tree tree = coll::build_han_tree(machine, comm, /*root=*/0);
  ASSERT_EQ(tree.up(2), 0);  // leader edge crosses the fabric
  ASSERT_EQ(tree.up(1), 0);  // intra-node edges ride the SHM channel
  ASSERT_EQ(tree.up(3), 2);

  const Bytes m = 4096;  // eager
  tune::Workload work;
  work.op = tune::Op::kBcast;
  work.style = coll::Style::kAdapt;
  work.bytes = m;
  work.segment = m;  // one segment
  const topo::MachineSpec& spec = machine.spec();
  const TimeNs inter =
      spec.inter_node.alpha +
      static_cast<TimeNs>(spec.inter_node.beta_ns_per_byte *
                          static_cast<double>(m));
  const TimeNs intra =
      spec.shm_node.alpha +
      static_cast<TimeNs>(spec.shm_node.beta_ns_per_byte *
                          static_cast<double>(m));
  EXPECT_EQ(tune::CostModel(machine).predict(work, comm, tree),
            spec.cpu_overhead + inter + spec.cpu_overhead + intra);
}

// On a multi-node communicator over a machine with the first-class SHM
// channel the grid gains the kHan family (2 radices × 5 segment choices on
// top of the flat 20), and the tuner picks two-level on at least one grid
// point — the crossover the HAN design exists for.
TEST(Tuner, SelectsTwoLevelOnMultiNodeGrid) {
  const topo::Machine machine(topo::han_cluster(16, 8), 128);
  tune::Tuner tuner(machine);
  EXPECT_EQ(tuner.candidates(tune::Op::kBcast, 128, mib(1)).size(), 30u);
  bool chose_han = false;
  for (const int ranks : {32, 64, 128}) {
    for (const Bytes bytes : {kib(64), kib(256), mib(1), mib(4)}) {
      const tune::Decision d = tuner.choose(tune::Op::kBcast, ranks, bytes);
      if (d.topology == tune::Topology::kHan) chose_han = true;
    }
  }
  EXPECT_TRUE(chose_han);
}

// A single-node communicator degenerates the han tree to the flat intra-node
// shape, so the tuner must not even price it there: the grid stays flat and
// the choice is never kHan.
TEST(Tuner, SingleNodeCommStaysFlat) {
  const topo::Machine machine(topo::han_cluster(16, 8), 128);
  tune::Tuner tuner(machine);
  for (const Bytes bytes : {kib(4), kib(64), mib(1)}) {
    for (const tune::Decision& c :
         tuner.candidates(tune::Op::kBcast, /*ranks=*/8, bytes)) {
      EXPECT_NE(c.topology, tune::Topology::kHan);
    }
    const tune::Decision d = tuner.choose(tune::Op::kBcast, 8, bytes);
    EXPECT_NE(d.topology, tune::Topology::kHan);
  }
}

}  // namespace
}  // namespace adapt
