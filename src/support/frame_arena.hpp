// Per-thread coroutine-frame allocator with size-class recycling.
//
// Coroutine frames are the sharded engine's memory ceiling at 10^5+ ranks:
// every rank program is a Task<> whose frame (plus the frames of the
// collective subroutines it awaits) is heap-allocated by the compiler, and
// frames churn — a segment pipeline creates and destroys thousands per rank.
// A FrameArena installed thread-locally (Scope) intercepts those
// allocations: blocks are rounded up to power-of-two size classes and
// recycled through per-class LIFO free lists, so steady-state frame churn is
// allocation-free and frames of one shard stay cache-local to its worker.
//
// Every block carries a 16-byte header naming its owning arena (or null for
// plain heap), so frees route correctly even when they happen under a
// different (or no) installed arena — a Task destroyed on the main thread
// after its shard's round ended still returns its frame to the right place.
// Lifetime contract: an arena must outlive every frame it allocated; engines
// own their arenas and destroy them after all rank state, the same
// declaration-order discipline as BufferPool.
//
// Accounting is always on (it is two integer updates per frame): live bytes,
// peak live bytes, and cumulative allocated bytes. The cumulative figure
// feeds the `sim.rank_state_bytes` gauge — unlike the peak, it is invariant
// to how ranks are partitioned across shards (every frame is allocated
// exactly once whatever the shard count), so the gauge can be byte-compared
// across --shards values. The peak feeds the per-rank memory-budget tests.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace adapt::support {

class FrameArena {
 public:
  FrameArena() = default;
  FrameArena(const FrameArena&) = delete;
  FrameArena& operator=(const FrameArena&) = delete;
  ~FrameArena();

  void* allocate(std::size_t bytes);
  void deallocate(void* p, std::size_t bytes);

  /// Bytes in frames currently alive (header overhead included).
  std::uint64_t live_bytes() const { return live_bytes_; }
  /// High-water mark of live_bytes over the arena's lifetime.
  std::uint64_t peak_bytes() const { return peak_bytes_; }
  /// Cumulative bytes ever allocated (shard-partition invariant; see above).
  std::uint64_t total_bytes() const { return total_bytes_; }
  /// Bytes parked on the free lists (allocated from the system, idle).
  std::uint64_t cached_bytes() const { return cached_bytes_; }

  /// The arena installed on this thread, or null.
  static FrameArena* current();

  /// RAII install/restore of the thread-local arena (nesting-safe).
  class Scope {
   public:
    explicit Scope(FrameArena* arena);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    FrameArena* prev_;
  };

  /// Smallest block handed out; classes double from here.
  static constexpr std::size_t kMinBlock = 64;
  /// Largest pooled class (64 B << 7 = 8 KiB); bigger frames go straight to
  /// the heap (still counted).
  static constexpr int kClasses = 8;

 private:
  std::array<void*, kClasses> free_{};  ///< intrusive LIFO per class
  std::uint64_t live_bytes_ = 0;
  std::uint64_t peak_bytes_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t cached_bytes_ = 0;
};

/// Coroutine-promise allocation hooks (see sim::detail::PromiseBase):
/// route through the installed FrameArena when one is present, plain heap
/// otherwise. Every block is prefixed with a header naming its owner, so
/// frame_free needs no thread-local lookup.
void* frame_alloc(std::size_t bytes);
void frame_free(void* p, std::size_t bytes) noexcept;

}  // namespace adapt::support
