// Contention-aware network model (fluid-flow / progressive filling).
//
// Every in-flight message is a *flow* across a set of shared *links*. Link
// bandwidth is divided among its flows by max–min fairness (each flow further
// bounded by a per-flow cap — the single-stream bandwidth of its lane), and
// rates are recomputed whenever a flow starts or finishes. Per-message latency
// (Hockney α) elapses before the flow enters the bandwidth-sharing phase.
//
// This model is the minimal one that preserves the paper's performance
// arguments: flows on *different* lanes (intra-socket / QPI / NIC / PCIe)
// overlap perfectly, flows on the *same* lane contend proportionally — which
// is exactly the distinction §3.2.2 and §4.1 reason about.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "src/net/fault.hpp"
#include "src/obs/trace.hpp"
#include "src/sim/simulator.hpp"
#include "src/support/units.hpp"

namespace adapt::net {

/// Sharing discipline; kUncontended ignores link capacities entirely (pure
/// Hockney, for the contention ablation).
enum class SharingPolicy { kFairShare, kUncontended };

/// Route + cost parameters of one message.
struct Route {
  std::vector<LinkId> links;       ///< shared resources crossed (may be empty)
  double per_flow_cap = 0.0;       ///< bytes/ns single-stream bound (>0)
  TimeNs alpha = 0;                ///< startup latency before bytes move
  /// Flows sharing a non-negative key serialise FIFO (a NIC's per-peer
  /// transmit queue): concurrent segments between one (src, dst) pair go out
  /// back to back at full stream rate instead of fair-sharing the lane —
  /// keeping per-segment latency flat while the pipe stays busy. Queueing
  /// time counts against alpha.
  std::int64_t serial_key = -1;
  /// Trace-record id from obs::Recorder::transfer_begin (0 = untraced). The
  /// fabric fills in activation and completion times.
  std::uint64_t trace = 0;
};

class Fabric {
 public:
  explicit Fabric(sim::Simulator& simulator,
                  SharingPolicy policy = SharingPolicy::kFairShare);

  /// Registers a shared resource with aggregate capacity in bytes/ns.
  LinkId add_link(double capacity_bytes_per_ns);

  /// Starts a message; `on_complete` runs (once) at the virtual time the last
  /// byte arrives. Zero-byte messages complete after alpha alone. The
  /// callback type matches the event queue's: captures up to EventFn's
  /// capacity (including a boxed std::function) stay inline, so posting a
  /// transfer never heap-allocates — the invariant the persistent-collective
  /// steady state is built on.
  void transfer(const Route& route, Bytes bytes, sim::EventFn on_complete);

  /// Installs (or clears, with nullptr) the fault injector consulted by
  /// transfer_tagged. The fabric does not own the injector.
  void set_fault_injector(const FaultInjector* injector) {
    injector_ = injector;
  }
  const FaultInjector* fault_injector() const { return injector_; }

  /// Installs (or clears) the trace/metrics recorder: traced routes get
  /// their activation/completion times filled in, per-link byte counters
  /// accumulate, and link occupancy samples record contention shares. The
  /// fabric does not own the recorder. Disabled cost: one null test per
  /// flow activation/finish.
  void set_recorder(obs::Recorder* recorder) { recorder_ = recorder; }

  /// Fate-reporting transfer: like transfer(), but consults the fault
  /// injector for this transmission. Dropped/corrupted messages still occupy
  /// the fabric for their full duration ("lost at the far end"); extra fault
  /// delay is folded into the route's alpha. With no injector installed this
  /// is a single branch on top of transfer() — the zero-overhead guarantee
  /// the bench guard measures.
  void transfer_tagged(const Route& route, Bytes bytes, const FaultKey& key,
                       std::function<void(const TransferFate&)> on_complete);

  // -- introspection / stats ---------------------------------------------
  int active_flows() const { return active_count_; }
  std::uint64_t flows_completed() const { return completed_; }
  std::uint64_t peak_active_flows() const { return peak_active_; }
  double link_capacity(LinkId id) const;

 private:
  struct Flow {
    std::vector<LinkId> links;
    double cap = 0.0;              // per-flow rate bound, bytes/ns
    double remaining = 0.0;        // bytes
    double rate = 0.0;             // bytes/ns
    TimeNs settled_at = 0;         // virtual time `remaining` refers to
    std::int64_t serial_key = -1;
    std::uint64_t trace = 0;       // obs record id (0 = untraced)
    Bytes bytes_total = 0;         // original size, for link byte counters
    TimeNs ideal = 0;              // uncontended duration at `cap`
    sim::EventFn on_complete;
    sim::EventHandle completion;
    bool active = false;
  };

  /// A transfer parked behind its pair's busy transmit queue. Lives in a
  /// recycled pool slot; the Route copy-assign reuses the slot's link-vector
  /// capacity, so steady-state queueing is allocation-free.
  struct Pending {
    Route route;
    Bytes bytes = 0;
    TimeNs posted_at = 0;
    sim::EventFn on_complete;
    int next = -1;  ///< intrusive FIFO link within the pair's queue
  };
  void start_flow(const Route& route, Bytes bytes, TimeNs alpha_remaining,
                  sim::EventFn on_complete);
  int allocate_pending();

  void activate(int flow_index);
  void finish(int flow_index);
  /// Recomputes max-min rates within the connected component of flows
  /// reachable from `seed_links` (rates outside it cannot change), settling
  /// and rescheduling only flows whose rate moved.
  void rebalance_component(const std::vector<LinkId>& seed_links);
  void collect_component(const std::vector<LinkId>& seed_links,
                         std::vector<int>& flows_out,
                         std::vector<LinkId>& links_out);
  int allocate_slot();

  sim::Simulator& sim_;
  SharingPolicy policy_;
  const FaultInjector* injector_ = nullptr;
  obs::Recorder* recorder_ = nullptr;
  std::vector<double> capacity_;            // per link
  std::vector<std::vector<int>> link_flows_;  // active flows per link
  std::vector<Flow> flows_;                 // slot-reused
  std::vector<int> free_slots_;
  int active_count_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t peak_active_ = 0;

  // Scratch state reused across rebalances (epoch-marked visit flags).
  std::uint64_t visit_epoch_ = 0;
  std::vector<std::uint64_t> link_seen_;
  std::vector<std::uint64_t> flow_seen_;
  std::vector<int> scratch_flows_;
  std::vector<LinkId> scratch_links_;
  std::vector<LinkId> finish_links_;  // finish(): completed flow's links
  std::vector<LinkId> bfs_queue_;     // collect_component() BFS worklist
  std::vector<double> residual_;
  std::vector<int> unfixed_on_;
  std::vector<double> rates_;

  // Per-serial-key FIFO state: a key is "busy" while one of its flows is
  // queued for activation or active; waiters chain through pending_pool_
  // slots. Map nodes persist once created (bounded by the number of
  // communicating pairs), so steady-state queueing never touches the heap.
  struct SerialQueue {
    bool busy = false;
    int head = -1;
    int tail = -1;
  };
  std::map<std::int64_t, SerialQueue> serial_;
  std::vector<Pending> pending_pool_;
  std::vector<int> pending_free_;
};

}  // namespace adapt::net
