#include "src/support/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "src/support/error.hpp"

namespace adapt {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_quote(const std::string& s) {
  return "\"" + json_escape(s) + "\"";
}

bool JsonValue::as_bool() const {
  ADAPT_CHECK(is_bool()) << "JSON value is not a bool";
  return std::get<bool>(value_);
}

double JsonValue::as_number() const {
  ADAPT_CHECK(is_number()) << "JSON value is not a number";
  return std::get<double>(value_);
}

std::int64_t JsonValue::as_int() const {
  const double d = as_number();
  const auto i = static_cast<std::int64_t>(d);
  ADAPT_CHECK(static_cast<double>(i) == d) << "JSON number " << d
                                           << " is not integral";
  return i;
}

const std::string& JsonValue::as_string() const {
  ADAPT_CHECK(is_string()) << "JSON value is not a string";
  return std::get<std::string>(value_);
}

const JsonValue::Array& JsonValue::as_array() const {
  ADAPT_CHECK(is_array()) << "JSON value is not an array";
  return std::get<Array>(value_);
}

const JsonValue::Object& JsonValue::as_object() const {
  ADAPT_CHECK(is_object()) << "JSON value is not an object";
  return std::get<Object>(value_);
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const Object& obj = as_object();
  const auto it = obj.find(key);
  ADAPT_CHECK(it != obj.end()) << "JSON object has no key \"" << key << "\"";
  return it->second;
}

bool JsonValue::has(const std::string& key) const {
  return is_object() && as_object().count(key) > 0;
}

namespace {

/// Recursive-descent parser over a string; tracks the byte offset so errors
/// point at the offending character.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_ws();
    ADAPT_CHECK(pos_ == text_.size())
        << "trailing garbage in JSON at byte " << pos_;
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    ADAPT_CHECK(pos_ < text_.size()) << "unexpected end of JSON input";
    return text_[pos_];
  }

  void expect(char c) {
    ADAPT_CHECK(peek() == c) << "expected '" << c << "' at byte " << pos_
                             << ", got '" << text_[pos_] << "'";
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue(parse_string());
      case 't':
        ADAPT_CHECK(consume_literal("true")) << "bad literal at byte " << pos_;
        return JsonValue(true);
      case 'f':
        ADAPT_CHECK(consume_literal("false")) << "bad literal at byte " << pos_;
        return JsonValue(false);
      case 'n':
        ADAPT_CHECK(consume_literal("null")) << "bad literal at byte " << pos_;
        return JsonValue(nullptr);
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue::Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(obj));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[std::move(key)] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue(std::move(obj));
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue::Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue(std::move(arr));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      ADAPT_CHECK(pos_ < text_.size()) << "unterminated JSON string";
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      ADAPT_CHECK(pos_ < text_.size()) << "unterminated JSON escape";
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          ADAPT_CHECK(pos_ + 4 <= text_.size()) << "truncated \\u escape";
          const std::string hex = text_.substr(pos_, 4);
          pos_ += 4;
          char* end = nullptr;
          const long code = std::strtol(hex.c_str(), &end, 16);
          ADAPT_CHECK(end == hex.c_str() + 4)
              << "bad \\u escape \"" << hex << "\"";
          // The repo's own artifacts only escape control characters; encode
          // the BMP code point as UTF-8 without surrogate-pair handling.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          ADAPT_CHECK(false) << "bad JSON escape '\\" << esc << "'";
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    ADAPT_CHECK(end == token.c_str() + token.size() && !token.empty())
        << "bad JSON number \"" << token << "\" at byte " << start;
    ADAPT_CHECK(std::isfinite(value)) << "non-finite JSON number";
    return JsonValue(value);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(const std::string& text) {
  return JsonParser(text).parse_document();
}

}  // namespace adapt
