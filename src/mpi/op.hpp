// Predefined reduction operations with real arithmetic.
//
// `apply` folds `src` into `dst` element-wise (dst = dst OP src) — the same
// in-place accumulate MPI implementations use on intermediate tree nodes.
// All predefined ops are associative and commutative, which is what lets
// ADAPT's reduce combine child contributions in arrival order (§2.2.3).
#pragma once

#include <cstddef>

#include "src/mpi/datatype.hpp"
#include "src/support/units.hpp"

namespace adapt::mpi {

enum class ReduceOp {
  kSum,
  kProd,
  kMax,
  kMin,
  kBand,  ///< bitwise and (integer types only)
  kBor,   ///< bitwise or (integer types only)
};

const char* op_name(ReduceOp op);

/// dst[i] = dst[i] OP src[i] over `bytes` worth of `dtype` elements.
/// `bytes` must be a multiple of size_of(dtype); bitwise ops reject floating
/// point dtypes.
void apply(ReduceOp op, Datatype dtype, std::byte* dst, const std::byte* src,
           Bytes bytes);

}  // namespace adapt::mpi
