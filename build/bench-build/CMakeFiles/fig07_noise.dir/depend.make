# Empty dependencies file for fig07_noise.
# This may be replaced when dependencies are built.
