#include <gtest/gtest.h>

#include <cstring>

#include "src/coll/coll.hpp"
#include "src/coll/topo_tree.hpp"
#include "src/mpi/comm.hpp"
#include "src/runtime/sim_engine.hpp"
#include "src/support/rng.hpp"
#include "src/topo/presets.hpp"

namespace adapt::coll {
namespace {

using runtime::Context;
using runtime::SimEngine;

struct Case {
  Style style;
  TreeKind kind;
  int nranks;
  Bytes bytes;
  Bytes seg;
};

std::string case_name(const testing::TestParamInfo<Case>& info) {
  const Case& c = info.param;
  return std::string(style_name(c.style)) + "_" + tree_kind_name(c.kind) +
         "_p" + std::to_string(c.nranks) + "_b" + std::to_string(c.bytes) +
         "_s" + std::to_string(c.seg);
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  for (Style style : {Style::kBlocking, Style::kNonblocking, Style::kAdapt}) {
    for (TreeKind kind : {TreeKind::kChain, TreeKind::kFlat, TreeKind::kBinary,
                          TreeKind::kBinomial, TreeKind::kKNomial}) {
      for (int nranks : {1, 2, 5, 16}) {
        cases.push_back({style, kind, nranks, 4096, 1024});
      }
      // Non-divisible segmentation and sub-segment messages.
      cases.push_back({style, kind, 7, 1000, 384});
      cases.push_back({style, kind, 4, 100, 4096});
      // Zero-byte collective still completes.
      cases.push_back({style, kind, 3, 0, 256});
    }
  }
  return cases;
}

class BcastCorrectness : public testing::TestWithParam<Case> {};

TEST_P(BcastCorrectness, DeliversRootBytesEverywhere) {
  const Case c = GetParam();
  topo::Machine m(topo::cori(4), std::max(c.nranks, 1));
  SimEngine engine(m);
  const mpi::Comm world = mpi::Comm::world(c.nranks);
  const Rank root = c.nranks / 3;
  const Tree tree = build_tree(c.kind, c.nranks, root, 3);

  Rng rng(42);
  std::vector<std::vector<std::byte>> bufs(
      static_cast<std::size_t>(c.nranks));
  for (auto& b : bufs) b.resize(static_cast<std::size_t>(c.bytes));
  for (auto& byte : bufs[static_cast<std::size_t>(root)]) {
    byte = std::byte(rng.next_below(256));
  }

  CollOpts opts;
  opts.segment_size = c.seg;
  auto program = [&](Context& ctx) -> sim::Task<> {
    auto& mine = bufs[static_cast<std::size_t>(ctx.rank())];
    co_await bcast(ctx, world, mpi::MutView{mine.data(), c.bytes}, root, tree,
                   c.style, opts);
  };
  engine.run(program);

  for (int r = 0; r < c.nranks; ++r) {
    ASSERT_EQ(std::memcmp(bufs[static_cast<std::size_t>(r)].data(),
                          bufs[static_cast<std::size_t>(root)].data(),
                          static_cast<std::size_t>(c.bytes)),
              0)
        << "rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(AllStylesTreesSizes, BcastCorrectness,
                         testing::ValuesIn(all_cases()), case_name);

class ReduceCorrectness : public testing::TestWithParam<Case> {};

TEST_P(ReduceCorrectness, MatchesSerialFold) {
  const Case c = GetParam();
  if (c.bytes % 4 != 0) GTEST_SKIP() << "int32 payloads only";
  topo::Machine m(topo::cori(4), std::max(c.nranks, 1));
  SimEngine engine(m);
  const mpi::Comm world = mpi::Comm::world(c.nranks);
  const Rank root = c.nranks / 2;
  const Tree tree = build_tree(c.kind, c.nranks, root, 3);

  const std::size_t n_elems = static_cast<std::size_t>(c.bytes) / 4;
  Rng rng(7);
  std::vector<std::vector<std::int32_t>> contrib(
      static_cast<std::size_t>(c.nranks));
  std::vector<std::int32_t> expected(n_elems, 0);
  for (int r = 0; r < c.nranks; ++r) {
    auto& v = contrib[static_cast<std::size_t>(r)];
    v.resize(n_elems);
    for (std::size_t i = 0; i < n_elems; ++i) {
      v[i] = static_cast<std::int32_t>(rng.next_in(-1000, 1000));
      expected[i] += v[i];
    }
  }

  CollOpts opts;
  opts.segment_size = c.seg;
  auto program = [&](Context& ctx) -> sim::Task<> {
    auto& mine = contrib[static_cast<std::size_t>(ctx.rank())];
    co_await reduce(ctx, world,
                    mpi::MutView{reinterpret_cast<std::byte*>(mine.data()),
                                 c.bytes},
                    mpi::ReduceOp::kSum, mpi::Datatype::kInt32, root, tree,
                    c.style, opts);
  };
  engine.run(program);

  EXPECT_EQ(contrib[static_cast<std::size_t>(root)],
            expected);
}

INSTANTIATE_TEST_SUITE_P(AllStylesTreesSizes, ReduceCorrectness,
                         testing::ValuesIn(all_cases()), case_name);

// --------------------------------------------------------------- extras ---

TEST(Bcast, TopoAwareTreeWorksWithEveryStyle) {
  topo::Machine m(topo::cori(2), 64);
  const mpi::Comm world = mpi::Comm::world(64);
  const Tree tree = build_topo_tree(m, world, 0);
  for (Style style :
       {Style::kBlocking, Style::kNonblocking, Style::kAdapt}) {
    SimEngine engine(m);
    std::vector<std::vector<std::byte>> bufs(64);
    for (auto& b : bufs) b.resize(2048);
    bufs[0].assign(2048, std::byte(0xAB));
    auto program = [&](Context& ctx) -> sim::Task<> {
      auto& mine = bufs[static_cast<std::size_t>(ctx.rank())];
      co_await bcast(ctx, world, mpi::MutView{mine.data(), 2048}, 0, tree,
                     style, CollOpts{.segment_size = 512});
    };
    engine.run(program);
    for (int r = 0; r < 64; ++r) {
      EXPECT_EQ(bufs[static_cast<std::size_t>(r)][2047], std::byte(0xAB))
          << style_name(style) << " rank " << r;
    }
  }
}

TEST(Bcast, SyntheticPayloadTakesSamePath) {
  topo::Machine m(topo::cori(1), 16);
  SimEngine engine(m);
  const mpi::Comm world = mpi::Comm::world(16);
  const Tree tree = chain_tree(16, 0);
  TimeNs finish = 0;
  auto program = [&](Context& ctx) -> sim::Task<> {
    co_await bcast(ctx, world, mpi::MutView{nullptr, mib(1)}, 0, tree,
                   Style::kAdapt, CollOpts{.segment_size = kib(128)});
    finish = std::max(finish, ctx.now());
  };
  engine.run(program);
  EXPECT_GT(finish, 0);
}

TEST(Bcast, SubCommunicator) {
  topo::Machine m(topo::cori(1), 16);
  SimEngine engine(m);
  const mpi::Comm sub({2, 3, 5, 7, 11});
  const Tree tree = binomial_tree(5, 0);
  std::vector<std::vector<std::byte>> bufs(16);
  for (auto& b : bufs) b.assign(128, std::byte(0));
  bufs[2].assign(128, std::byte(0x5C));
  auto program = [&](Context& ctx) -> sim::Task<> {
    if (!sub.contains(ctx.rank())) co_return;
    auto& mine = bufs[static_cast<std::size_t>(ctx.rank())];
    co_await bcast(ctx, sub, mpi::MutView{mine.data(), 128}, 0, tree,
                   Style::kNonblocking, CollOpts{.segment_size = 64});
  };
  engine.run(program);
  for (Rank r : sub.members()) {
    EXPECT_EQ(bufs[static_cast<std::size_t>(r)][100], std::byte(0x5C));
  }
  EXPECT_EQ(bufs[4][100], std::byte(0));  // non-member untouched
}

TEST(Reduce, NonCommutativeSafetyViaMax) {
  topo::Machine m(topo::cori(1), 8);
  SimEngine engine(m);
  const mpi::Comm world = mpi::Comm::world(8);
  const Tree tree = binomial_tree(8, 0);
  std::vector<std::vector<double>> contrib(8);
  for (int r = 0; r < 8; ++r) {
    contrib[static_cast<std::size_t>(r)] = {static_cast<double>(r),
                                            static_cast<double>(-r)};
  }
  auto program = [&](Context& ctx) -> sim::Task<> {
    auto& mine = contrib[static_cast<std::size_t>(ctx.rank())];
    co_await reduce(ctx, world,
                    mpi::MutView{reinterpret_cast<std::byte*>(mine.data()),
                                 16},
                    mpi::ReduceOp::kMax, mpi::Datatype::kDouble, 0, tree,
                    Style::kAdapt, CollOpts{.segment_size = 8});
  };
  engine.run(program);
  EXPECT_DOUBLE_EQ(contrib[0][0], 7.0);
  EXPECT_DOUBLE_EQ(contrib[0][1], 0.0);
}

TEST(Barrier, AllRanksLeaveAfterLastEnters) {
  topo::Machine m(topo::cori(1), 16);
  SimEngine engine(m);
  const mpi::Comm world = mpi::Comm::world(16);
  TimeNs last_enter = 0;
  TimeNs first_leave = std::numeric_limits<TimeNs>::max();
  auto program = [&](Context& ctx) -> sim::Task<> {
    // Stagger entry: rank r arrives at r * 10us.
    co_await ctx.sleep_for(microseconds(10) * ctx.rank());
    last_enter = std::max(last_enter, ctx.now());
    co_await barrier(ctx, world);
    first_leave = std::min(first_leave, ctx.now());
  };
  engine.run(program);
  EXPECT_GE(first_leave, last_enter);
}

TEST(Barrier, SingleRankIsNoop) {
  topo::Machine m(topo::cori(1), 1);
  SimEngine engine(m);
  const mpi::Comm world = mpi::Comm::world(1);
  auto program = [&](Context& ctx) -> sim::Task<> {
    co_await barrier(ctx, world);
  };
  EXPECT_NO_THROW(engine.run(program));
}

TEST(Coll, MismatchedRootAndTreeRejected) {
  topo::Machine m(topo::cori(1), 4);
  SimEngine engine(m);
  const mpi::Comm world = mpi::Comm::world(4);
  const Tree tree = chain_tree(4, 1);
  auto program = [&](Context& ctx) -> sim::Task<> {
    co_await bcast(ctx, world, mpi::MutView{nullptr, 64}, 0, tree,
                   Style::kAdapt, CollOpts{.segment_size = 64});
  };
  EXPECT_THROW(engine.run(program), Error);
}

TEST(Segmenter, CountsAndLengths) {
  const Segmenter s(1000, 384);
  EXPECT_EQ(s.count(), 3);
  EXPECT_EQ(s.offset(0), 0);
  EXPECT_EQ(s.length(0), 384);
  EXPECT_EQ(s.offset(2), 768);
  EXPECT_EQ(s.length(2), 232);
  const Segmenter zero(0, 64);
  EXPECT_EQ(zero.count(), 1);
  EXPECT_EQ(zero.length(0), 0);
  const Segmenter exact(512, 128);
  EXPECT_EQ(exact.count(), 4);
  EXPECT_EQ(exact.length(3), 128);
}

}  // namespace
}  // namespace adapt::coll
