// The adaptive decision engine (paper §5.2.1; MPI Advance-style caching).
//
// A Tuner enumerates a candidate grid — topology × segment size × radix —
// prices every candidate with the analytical CostModel, and caches the
// predicted-best Decision per (collective, communicator size, message-size
// bucket). Decisions depend only on those keys plus the machine, so the
// cache is eviction-free and deterministic, and a filled table is a reusable
// artifact: dump_json()/load_json() persist it together with the machine
// fingerprint, and loading rejects a table recorded on a machine whose α/β/γ
// parameters differ.
//
// Candidate evaluation lays trees over a dense rank prefix of the machine
// (the cache is keyed by communicator SIZE, not membership — the MPI Advance
// compromise); decision_tree() then maps the chosen shape onto the actual
// communicator and root.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/tune/cost.hpp"

namespace adapt::tune {

/// Candidate tree families. kTopoChain is the paper's ADAPT configuration
/// (chains at every hardware level); kTopoKnomial keeps the hardware grouping
/// but uses k-nomial shapes per level; kBinomial/kChain are rank-order shapes;
/// kHan is the two-level HAN tree (binomial over node leaders + k-nomial per
/// node over the SHM channel), priced only on machines with a first-class SHM
/// channel whose communicator spans more than one node.
enum class Topology { kTopoChain, kTopoKnomial, kBinomial, kChain, kHan };

const char* topology_name(Topology t);
bool topology_from_name(const std::string& name, Topology* out);

/// One tuned configuration. segment == 0 means "whole message" (a single
/// pipeline segment at any size in the bucket).
struct Decision {
  Topology topology = Topology::kTopoChain;
  int radix = 4;         ///< used by kTopoKnomial levels
  Bytes segment = 0;     ///< pipeline granularity; 0 = unsegmented
  TimeNs predicted = 0;  ///< model time at the bucket's representative size
  bool operator==(const Decision&) const = default;
};

struct TableKey {
  Op op = Op::kBcast;
  int ranks = 0;   ///< communicator size
  int bucket = 0;  ///< floor(log2(bytes))
  auto operator<=>(const TableKey&) const = default;
};

/// The per-communicator decision cache. Eviction-free (the key space is tiny:
/// ops × comm sizes × ~40 buckets) so lookups are deterministic forever.
class DecisionTable {
 public:
  explicit DecisionTable(std::string machine_fingerprint)
      : machine_(std::move(machine_fingerprint)) {}

  const std::string& machine() const { return machine_; }
  int size() const { return static_cast<int>(map_.size()); }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

  /// Counted lookup: bumps hits or misses.
  std::optional<Decision> find(const TableKey& key);
  void insert(const TableKey& key, const Decision& decision);

  /// Serialises the table (schema "adapt-decision-table-v1"), decisions in
  /// deterministic key order.
  std::string dump_json() const;
  /// Replaces this table's decisions with `text`'s. Fails (false + *error)
  /// on malformed JSON, a wrong schema, or a machine fingerprint that does
  /// not match this table's — a stale table must never steer a different
  /// machine. Counters are reset on success.
  bool load_json(const std::string& text, std::string* error);

 private:
  std::string machine_;
  std::map<TableKey, Decision> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

struct TunerOptions {
  /// Segment-size grid; 0 (whole message) is appended when whole_message.
  std::vector<Bytes> segments{kib(16), kib(32), kib(64), kib(128)};
  bool whole_message = true;
  /// Radix grid for the k-nomial topology family.
  std::vector<int> radices{2, 4};
  /// Style the tuned personality runs (and the model prices).
  coll::Style style = coll::Style::kAdapt;
  double gamma_scale = 1.0;
};

/// Thread-safe decision engine bound to one machine (personalities are
/// invoked concurrently on the ThreadEngine).
class Tuner {
 public:
  explicit Tuner(const topo::Machine& machine, TunerOptions options = {});

  /// Observability out-params for one choose() call: whether the decision
  /// table already held the answer, and how many grid candidates were
  /// priced on a miss (0 on a hit). Call sites feed these to the trace
  /// recorder as kTune events.
  struct ChooseStats {
    bool cache_hit = false;
    int grid_priced = 0;
  };

  /// The tuned configuration for `op` over a `ranks`-member communicator at
  /// message size `bytes`: cached per (op, ranks, bucket(bytes)), computed on
  /// miss by pricing every candidate at the bucket's representative size.
  Decision choose(Op op, int ranks, Bytes bytes, ChooseStats* stats = nullptr);

  /// Every candidate in the grid with its prediction for (op, ranks,
  /// bucket(bytes)) — the guideline harness forces each of these in the
  /// simulator and checks the tuned choice is no worse.
  std::vector<Decision> candidates(Op op, int ranks, Bytes bytes) const;

  /// Model time of one explicit decision at the actual message size.
  TimeNs predict(Op op, int ranks, const Decision& decision, Bytes bytes) const;

  /// Message-size bucket: floor(log2(bytes)), 0 for bytes <= 1.
  static int bucket(Bytes bytes);
  /// The size a bucket's decisions are priced at (2^bucket).
  static Bytes bucket_bytes(int bucket);

  const topo::Machine& machine() const { return machine_; }
  const TunerOptions& options() const { return options_; }

  // Decision-table access (serialised against concurrent choose()).
  std::string dump_json() const;
  bool load_json(const std::string& text, std::string* error);
  std::uint64_t cache_hits() const;
  std::uint64_t cache_misses() const;
  int table_size() const;

 private:
  const topo::Machine& machine_;
  TunerOptions options_;
  CostModel model_;
  mutable std::mutex mutex_;
  DecisionTable table_;
};

/// Maps a decision onto a concrete communicator: the tree coll::bcast/reduce
/// should run. Shared by the tuned personality and the guideline harness.
coll::Tree decision_tree(const topo::Machine& machine, const mpi::Comm& comm,
                         Rank root, const Decision& decision);

/// The CollOpts segment size a decision implies for a concrete message.
Bytes decision_segment(const Decision& decision, Bytes message);

/// Short label for a decision — "topo-chain/s65536" — used as the trace
/// "winner" grouping key by kTune events (see adapt-trace summarize).
std::string decision_label(const Decision& decision);

}  // namespace adapt::tune
