// Observability-layer tests: trace determinism, the zero-event guarantee,
// flight-recorder bounding/sampling, hand-computed critical-path
// attribution, and fault-injection metrics.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>

#include "src/coll/coll.hpp"
#include "src/coll/topo_tree.hpp"
#include "src/coll/tree.hpp"
#include "src/obs/critical_path.hpp"
#include "src/obs/export.hpp"
#include "src/obs/flight.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/runtime/sim_engine.hpp"
#include "src/topo/presets.hpp"
#include "src/verify/chaos.hpp"

namespace {

using namespace adapt;

/// One noisy, perturbed ADAPT broadcast on a 32-rank Cori node with the
/// given recorder attached; returns the recorder after the run.
std::shared_ptr<obs::Recorder> traced_bcast_with(
    std::shared_ptr<obs::Recorder> recorder) {
  topo::Machine machine(topo::cori(1), 32);
  const mpi::Comm world = mpi::Comm::world(32);
  const coll::Tree tree = coll::build_topo_tree(machine, world, 0);

  runtime::SimEngineOptions options;
  options.noise = noise::paper_noise(10, /*seed=*/0x5EED);
  options.perturb = sim::PerturbConfig{7, /*shuffle_ties=*/true,
                                      microseconds(2)};
  options.recorder = std::move(recorder);
  runtime::SimEngine engine(machine, options);
  auto program = [&](runtime::Context& ctx) -> sim::Task<> {
    co_await coll::bcast(ctx, world, mpi::MutView{nullptr, mib(1)}, 0, tree,
                         coll::Style::kAdapt,
                         coll::CollOpts{.segment_size = kib(128)});
  };
  engine.run(program);
  return options.recorder;
}

std::shared_ptr<obs::Recorder> traced_bcast(bool enabled) {
  return traced_bcast_with(std::make_shared<obs::Recorder>(enabled));
}

// Determinism contract: two same-seed runs export byte-identical trace JSON
// and metrics CSV. This is what makes a trace attached to a failure
// reproducer trustworthy — replaying the repro regenerates the exact file.
TEST(ObsTrace, SameSeedRunsExportByteIdenticalTraces) {
  const auto a = traced_bcast(true);
  const auto b = traced_bcast(true);
  ASSERT_GT(a->event_count(), 1000u);  // noise + perturb + 32 ranks of work
  EXPECT_EQ(a->event_count(), b->event_count());

  std::ostringstream trace_a, trace_b, csv_a, csv_b;
  obs::write_trace_json(*a, trace_a);
  obs::write_trace_json(*b, trace_b);
  EXPECT_EQ(trace_a.str(), trace_b.str());
  obs::write_metrics_csv(*a, csv_a);
  obs::write_metrics_csv(*b, csv_b);
  EXPECT_EQ(csv_a.str(), csv_b.str());
}

// Zero-event guarantee: a disabled recorder attached to a run records
// nothing at all — no spans, no transfers, no metrics, no queue stats. The
// engine must not install a single hook.
TEST(ObsTrace, DisabledRecorderRecordsNothing) {
  const auto rec = traced_bcast(false);
  EXPECT_EQ(rec->event_count(), 0u);
  EXPECT_TRUE(rec->metrics().empty());
  EXPECT_EQ(rec->queue_stats().scheduled, 0u);
  std::ostringstream csv;
  obs::write_metrics_csv(*rec, csv);
  std::ostringstream trace;
  obs::write_trace_json(*rec, trace);
  EXPECT_NE(trace.str().find("\"traceEvents\""), std::string::npos);
}

// Flight mode drops high-frequency events (1-in-N sampling of task/p2p
// records) but keeps every collective, protocol, tune, and cache event —
// the records diagnosis hangs off of.
TEST(ObsFlight, SamplingDropsTasksKeepsCollectives) {
  const auto full = traced_bcast(true);
  const auto flight = traced_bcast_with(std::make_shared<obs::FlightRecorder>());
  ASSERT_TRUE(flight->flight());
  EXPECT_GT(flight->dropped(), 0u);
  EXPECT_LT(flight->event_count(), full->event_count());

  const auto count_coll = [](const obs::Recorder& r) {
    int n = 0;
    for (const auto& s : r.spans())
      if (s.cat == obs::Cat::kColl) ++n;
    return n;
  };
  EXPECT_EQ(count_coll(*full), 32);
  EXPECT_EQ(count_coll(*flight), 32);  // kColl is never sampled out
}

// Sampling only thins the TRACE; the metrics registry stays exact. Counters
// and per-rank/link totals from a flight run must be byte-identical to the
// full-trace run's CSV dump.
TEST(ObsFlight, MetricsStayExactUnderSampling) {
  const auto full = traced_bcast(true);
  const auto flight = traced_bcast_with(std::make_shared<obs::FlightRecorder>());
  std::ostringstream csv_full, csv_flight;
  obs::write_metrics_csv(*full, csv_full);
  obs::write_metrics_csv(*flight, csv_flight);
  EXPECT_EQ(csv_full.str(), csv_flight.str());
}

// The bounded window really bounds: with a tiny window the retained record
// count stays at or below the cap no matter how much the run emits, oldest
// records are evicted first, and the export is still well-formed and
// deterministic across same-seed runs.
TEST(ObsFlight, TinyWindowEvictsOldestAndStaysDeterministic) {
  obs::FlightConfig config;
  config.window_per_rank = 8;
  config.min_window = 64;
  config.sample_period = 4;
  const auto a =
      traced_bcast_with(std::make_shared<obs::FlightRecorder>(config));
  const auto b =
      traced_bcast_with(std::make_shared<obs::FlightRecorder>(config));
  const std::size_t cap = 8 * 32;  // window_per_rank × ranks > min_window
  EXPECT_LE(a->spans().size(), cap);
  EXPECT_LE(a->instants().size(), cap);
  EXPECT_LE(a->cpu_tasks().size(), cap);
  EXPECT_LE(a->transfers().size(), cap);
  EXPECT_GT(a->dropped(), 0u);

  // Eviction keeps the most recent window: the run's final collective spans
  // (appended at completion) must survive, so the flight run still covers
  // the same end time as an unbounded recorder.
  const auto latest_span_end = [](const obs::Recorder& r) {
    TimeNs latest = 0;
    for (const auto& s : r.spans()) latest = std::max(latest, s.t1);
    return latest;
  };
  const auto full = traced_bcast(true);
  EXPECT_EQ(latest_span_end(*a), latest_span_end(*full));

  std::ostringstream trace_a, trace_b;
  obs::write_trace_json(*a, trace_a);
  obs::write_trace_json(*b, trace_b);
  EXPECT_EQ(trace_a.str(), trace_b.str());
}

// Per-rank collective spans are exact: the latest span end equals the
// engine's reported completion time.
TEST(ObsTrace, CollSpansCoverCompletionTime) {
  topo::Machine machine(topo::cori(1), 16);
  const mpi::Comm world = mpi::Comm::world(16);
  const coll::Tree tree = coll::build_topo_tree(machine, world, 0);
  runtime::SimEngineOptions options;
  options.recorder = std::make_shared<obs::Recorder>();
  runtime::SimEngine engine(machine, options);
  auto program = [&](runtime::Context& ctx) -> sim::Task<> {
    co_await coll::bcast(ctx, world, mpi::MutView{nullptr, kib(256)}, 0, tree,
                         coll::Style::kAdapt,
                         coll::CollOpts{.segment_size = kib(64)});
  };
  const auto result = engine.run(program);

  TimeNs latest = 0;
  int coll_spans = 0;
  for (const auto& s : options.recorder->spans()) {
    if (s.cat != obs::Cat::kColl) continue;
    ++coll_spans;
    EXPECT_EQ(s.t0, 0);
    latest = std::max(latest, s.t1);
  }
  EXPECT_EQ(coll_spans, 16);  // one bcast span per rank
  EXPECT_EQ(latest, result.total_time);
}

// The hand-computable case: 4 ranks on one socket, α = 1000 ns,
// β = 1 ns/byte, no per-message CPU cost, no copies, one 4096-byte eager
// segment down a binomial tree rooted at 0.
//
//   round 1: 0 → 2           [0, 1000 + 4096 = 5096]
//   round 2: 2 → 3 (and 0→1) [5096, 10192]
//
// Rank 3's completion decomposes exactly into two Hockney terms per hop:
// α = 2 × 1000, β = 2 × 4096, nothing else — and the walk's invariant
// total() == end holds to the nanosecond.
TEST(ObsCriticalPath, HandComputedBinomialBcast) {
  topo::MachineSpec spec;
  spec.name = "hand";
  spec.nodes = 1;
  spec.sockets_per_node = 1;
  spec.cores_per_socket = 4;
  spec.intra_socket = {1000, 1.0};
  spec.memcpy_beta = 0.0;
  topo::Machine machine(spec, 4);
  const mpi::Comm world = mpi::Comm::world(4);
  const coll::Tree tree = coll::binomial_tree(4, 0);

  runtime::SimEngineOptions options;
  options.recorder = std::make_shared<obs::Recorder>();
  runtime::SimEngine engine(machine, options);
  auto program = [&](runtime::Context& ctx) -> sim::Task<> {
    co_await coll::bcast(ctx, world, mpi::MutView{nullptr, 4096}, 0, tree,
                         coll::Style::kBlocking,
                         coll::CollOpts{.segment_size = 4096});
  };
  const auto result = engine.run(program);
  EXPECT_EQ(result.total_time, 10192);

  // Rank 3 is the depth-2 leaf (0 → 2 → 3); its bcast span ends with the run.
  TimeNs rank3_end = -1;
  for (const auto& s : options.recorder->spans()) {
    if (s.cat == obs::Cat::kColl && s.pid == obs::rank_pid(3)) {
      rank3_end = s.t1;
    }
  }
  ASSERT_EQ(rank3_end, 10192);

  const obs::Attribution attr =
      obs::critical_path(*options.recorder, 3, rank3_end);
  EXPECT_EQ(attr.alpha, 2000);
  EXPECT_EQ(attr.beta, 8192);
  EXPECT_EQ(attr.compute, 0);
  EXPECT_EQ(attr.contention, 0);
  EXPECT_EQ(attr.noise, 0);
  EXPECT_EQ(attr.other, 0);
  EXPECT_EQ(attr.hops, 2);
  EXPECT_EQ(attr.total(), attr.end);
}

// The attribution invariant must survive arbitrary schedules too: on a
// noisy, contended run every nanosecond of the slowest rank's completion is
// explained exactly once.
TEST(ObsCriticalPath, AttributionSumsToCompletionUnderNoise) {
  const auto rec = traced_bcast(true);
  TimeNs latest = 0;
  Rank slowest = 0;
  for (const auto& s : rec->spans()) {
    if (s.cat == obs::Cat::kColl && s.t1 > latest) {
      latest = s.t1;
      slowest = s.pid - 1;
    }
  }
  ASSERT_GT(latest, 0);
  const obs::Attribution attr = obs::critical_path(*rec, slowest, latest);
  EXPECT_EQ(attr.total(), attr.end);
  EXPECT_EQ(attr.end, latest);
  EXPECT_GT(attr.alpha + attr.beta, 0);
}

// Metrics under fault injection: the "retransmits" counter is incremented at
// the same site as ReliableChannel::Stats, so the registry total must equal
// the per-channel sum — and a lossy plan must actually produce some.
TEST(ObsMetrics, RetransmitCounterMatchesChannelStats) {
  topo::Machine machine(topo::cori(1), 8);
  const mpi::Comm world = mpi::Comm::world(8);
  const coll::Tree tree = coll::build_topo_tree(machine, world, 0);

  runtime::SimEngineOptions options;
  options.faults.seed = 0xD06;
  options.faults.drop = 0.2;
  options.reliability = verify::chaos_reliability();
  options.recorder = std::make_shared<obs::Recorder>();
  runtime::SimEngine engine(machine, options);
  auto program = [&](runtime::Context& ctx) -> sim::Task<> {
    co_await coll::bcast(ctx, world, mpi::MutView{nullptr, kib(32)}, 0, tree,
                         coll::Style::kAdapt,
                         coll::CollOpts{.segment_size = kib(4)});
  };
  engine.run(program);

  std::uint64_t channel_sum = 0;
  for (Rank r = 0; r < 8; ++r) {
    ASSERT_NE(engine.channel(r), nullptr);
    channel_sum += engine.channel(r)->stats().retransmits;
  }
  EXPECT_GT(channel_sum, 0u);  // a 20% lossy fabric must retransmit
  EXPECT_EQ(options.recorder->metrics().counter_value("retransmits"),
            static_cast<std::int64_t>(channel_sum));
}

}  // namespace
