// Deterministic random number generation.
//
// Reproducibility is a hard requirement: the same seed must yield the same
// virtual-time trace on every platform, so we avoid std:: distribution objects
// (whose algorithms are implementation-defined) and provide our own sampling
// on top of a fixed-algorithm generator.
//
// Per-rank streams are derived by splitting a master seed through SplitMix64,
// which is also the recommended seeding procedure for xoshiro generators.
#pragma once

#include <cstdint>

#include "src/support/units.hpp"

namespace adapt {

/// SplitMix64: tiny, full-period 2^64 generator used for seed derivation.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna) — the library's workhorse generator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  /// Derives an independent stream, e.g. one per rank: Rng(seed).split(rank).
  Rng split(std::uint64_t stream_id) const {
    SplitMix64 sm(state_[0] ^ (0xa0761d6478bd642fULL * (stream_id + 1)));
    return Rng(sm.next());
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1) with 53 bits of precision.
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift (unbiased
  /// enough for simulation purposes; exactness is not required, determinism is).
  std::uint64_t next_below(std::uint64_t bound) {
    if (bound == 0) return 0;
    const unsigned __int128 m =
        static_cast<unsigned __int128>(next_u64()) * bound;
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform duration in [lo, hi).
  TimeNs next_time(TimeNs lo, TimeNs hi) {
    return lo + static_cast<TimeNs>(
                    next_below(static_cast<std::uint64_t>(hi - lo)));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace adapt
