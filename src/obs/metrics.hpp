// Cheap always-on-when-enabled metrics: counters and log2 histograms.
//
// The registry is the numeric half of the observability layer (the trace
// half lives in obs/trace.hpp). Hot-path hooks cache raw pointers to the
// counters they touch, so a metrics update is one pointer increment; name
// lookup happens only once, at hook installation. Per-rank and per-link
// counters are typed vectors (no string lookup at all); everything else is
// a name -> value map with stable addresses.
//
// Deterministic by construction: maps are ordered, vectors are indexed, and
// write_csv emits rows in a fixed order — two same-seed runs produce
// byte-identical dumps.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "src/support/units.hpp"

namespace adapt::obs {

/// Log2-bucketed histogram of non-negative integer samples (queue depths,
/// match-list lengths). Bucket i counts samples with bit_width(v) == i.
struct Histogram {
  std::array<std::uint64_t, 64> buckets{};
  std::uint64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t max = 0;

  void record(std::int64_t v);
  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// Per-rank activity counters, split by execution context (the paper's MAIN
/// vs PROGRESS distinction): how long each CPU was busy, how long noise held
/// the main thread, and the P2P volume this rank sourced/sank.
struct RankCounters {
  std::int64_t cpu_busy_ns = 0;       ///< main-thread busy time
  std::int64_t progress_busy_ns = 0;  ///< progress-context busy time
  std::int64_t noise_wait_ns = 0;     ///< main-thread time lost to noise
  std::int64_t progress_starved_ns = 0;  ///< progress runnable but unserved
  std::int64_t sends = 0;
  std::int64_t send_bytes = 0;
  std::int64_t recvs = 0;
  std::int64_t recv_bytes = 0;
};

class MetricsRegistry {
 public:
  /// Sizes the per-rank table (idempotent; grows only).
  void init_ranks(int nranks);

  RankCounters& rank(Rank r);
  const std::vector<RankCounters>& ranks() const { return ranks_; }

  /// Bytes moved over each fabric link (grows on demand).
  std::int64_t& link_bytes(int link);
  const std::vector<std::int64_t>& links() const { return link_bytes_; }

  /// Named scalar counter; the returned reference is stable for the life of
  /// the registry, so hooks cache it.
  std::int64_t& counter(const std::string& name);
  /// Read-only lookup; 0 when the counter was never touched.
  std::int64_t counter_value(const std::string& name) const;

  /// Named histogram; address stable, cacheable like counter().
  Histogram& histogram(const std::string& name);

  /// Read-only views for report writers (deterministic: ordered maps).
  const std::map<std::string, std::int64_t>& counters() const {
    return counters_;
  }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  bool empty() const;

  /// Deterministic CSV dump: `kind,name,value...` rows, fixed order.
  void write_csv(std::ostream& os) const;

 private:
  std::vector<RankCounters> ranks_;
  std::vector<std::int64_t> link_bytes_;
  std::map<std::string, std::int64_t> counters_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace adapt::obs
