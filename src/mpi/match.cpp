#include "src/mpi/match.hpp"

#include <algorithm>

namespace adapt::mpi {

std::optional<Envelope> Matcher::post(PostedRecv recv) {
  const auto it = std::find_if(
      unexpected_.begin(), unexpected_.end(),
      [&](const Envelope& env) { return matches(recv, env); });
  if (it != unexpected_.end()) {
    Envelope env = std::move(*it);
    unexpected_.erase(it);
    return env;
  }
  posted_.push_back(std::move(recv));
  return std::nullopt;
}

std::optional<PostedRecv> Matcher::arrive(const Envelope& env) {
  const auto it = std::find_if(
      posted_.begin(), posted_.end(),
      [&](const PostedRecv& recv) { return matches(recv, env); });
  if (it != posted_.end()) {
    PostedRecv recv = std::move(*it);
    posted_.erase(it);
    return recv;
  }
  unexpected_.push_back(env);
  ++total_unexpected_;
  return std::nullopt;
}

}  // namespace adapt::mpi
