file(REMOVE_RECURSE
  "../bench/fig11_gpu"
  "../bench/fig11_gpu.pdb"
  "CMakeFiles/fig11_gpu.dir/fig11_gpu.cpp.o"
  "CMakeFiles/fig11_gpu.dir/fig11_gpu.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
