// Measurement accumulators used by the benchmark harness and tests.
#pragma once

#include <cstddef>
#include <vector>

#include "src/support/units.hpp"

namespace adapt {

/// Streaming summary statistics (Welford) over double samples.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double variance() const;  ///< sample variance (n-1 denominator)
  double stddev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Sample-retaining accumulator providing exact quantiles; used where the
/// harness reports medians/percentiles across iterations.
class Samples {
 public:
  void add(double x) { xs_.push_back(x); }
  std::size_t count() const { return xs_.size(); }
  double mean() const;
  double min() const;
  double max() const;
  /// Exact quantile with linear interpolation, q in [0, 1].
  double quantile(double q) const;
  double median() const { return quantile(0.5); }
  const std::vector<double>& values() const { return xs_; }

 private:
  std::vector<double> xs_;
};

}  // namespace adapt
