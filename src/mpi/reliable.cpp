#include "src/mpi/reliable.hpp"

#include <cmath>
#include <utility>

#include "src/obs/trace.hpp"
#include "src/support/error.hpp"

namespace adapt::mpi {

std::uint64_t ReliableChannel::submit(Rank peer, Frame frame,
                                      std::function<void()> on_acked,
                                      std::function<void(ErrCode)> on_failed) {
  ADAPT_CHECK(peer != self_) << "reliable channel does not loop back";
  PeerState& state = peers_[peer];
  const std::uint64_t seq = state.next_seq++;
  Outstanding& entry = state.unacked[seq];
  entry.frame = std::move(frame);
  entry.on_acked = std::move(on_acked);
  entry.on_failed = std::move(on_failed);
  ++stats_.submitted;
  if (!down_) transmit(peer, seq);
  return seq;
}

TimeNs ReliableChannel::timeout_for(const Outstanding& entry) const {
  // Base timeout scaled by frame size (a bulk frame's ack cannot arrive
  // before the bytes do), then backed off exponentially per attempt.
  double timeout = static_cast<double>(
      config_.ack_timeout + config_.per_byte * entry.frame.wire_bytes);
  for (int i = 0; i < entry.attempt; ++i) timeout *= config_.backoff;
  return static_cast<TimeNs>(timeout);
}

void ReliableChannel::transmit(Rank peer, std::uint64_t seq) {
  PeerState& state = peers_[peer];
  auto it = state.unacked.find(seq);
  if (it == state.unacked.end()) return;  // acked while a timer was pending
  Outstanding& entry = it->second;

  WireFrame wire;
  wire.src = self_;
  wire.dst = peer;
  wire.seq = seq;
  wire.attempt = entry.attempt;
  wire.frame = entry.frame;
  send_wire_(wire);

  const std::uint64_t gen = ++timer_gen_counter_;
  entry.timer_gen = gen;
  timer_(timeout_for(entry), [this, peer, seq, gen] {
    if (down_) return;
    PeerState& st = peers_[peer];
    auto entry_it = st.unacked.find(seq);
    if (entry_it == st.unacked.end()) return;       // acked meanwhile
    if (entry_it->second.timer_gen != gen) return;  // superseded timer
    Outstanding& pending = entry_it->second;
    if (pending.attempt >= config_.max_retries) {
      ++stats_.give_ups;
      if (rec_) {
        ++rec_->metrics().counter("give_ups");
        rec_->instant(obs::rank_pid(self_), obs::kTidProgress,
                      obs::Cat::kProto, "give_up", rec_->now(),
                      static_cast<std::int64_t>(seq));
      }
      // Detach the entry before the callbacks: they may re-enter the channel
      // (e.g. an abort flood submitting new frames to this same peer).
      Outstanding dead = std::move(pending);
      st.unacked.erase(entry_it);
      if (dead.on_failed) dead.on_failed(ErrCode::kErrRetryExhausted);
      if (give_up_) give_up_(peer, dead.frame, ErrCode::kErrRetryExhausted);
      return;
    }
    ++pending.attempt;
    ++stats_.retransmits;
    if (rec_) {
      ++rec_->metrics().counter("retransmits");
      rec_->instant(obs::rank_pid(self_), obs::kTidProgress, obs::Cat::kProto,
                    "retransmit", rec_->now(),
                    static_cast<std::int64_t>(seq));
    }
    transmit(peer, seq);
  });
}

void ReliableChannel::on_wire(const WireFrame& wire) {
  if (down_) return;
  ADAPT_CHECK(wire.dst == self_) << "wire frame for rank " << wire.dst
                                 << " reached rank " << self_;

  if (wire.is_ack) {
    // Ack for our frame `seq` sent to `wire.src`.
    PeerState& state = peers_[wire.src];
    auto it = state.unacked.find(wire.seq);
    if (it == state.unacked.end()) {
      ++stats_.stale_acks;  // duplicate or out-of-order ack: ignored
      return;
    }
    Outstanding entry = std::move(it->second);
    state.unacked.erase(it);
    ++stats_.acked;
    if (entry.on_acked) entry.on_acked();
    return;
  }

  // Data frame. A corrupted frame fails its checksum: discard without acking
  // and let the sender's retransmit supply a clean copy.
  if (wire.corrupted) {
    ++stats_.corrupt_discards;
    if (rec_) {
      ++rec_->metrics().counter("corrupt_discards");
      rec_->instant(obs::rank_pid(self_), obs::kTidProgress, obs::Cat::kProto,
                    "corrupt_discard", rec_->now(),
                    static_cast<std::int64_t>(wire.seq));
    }
    return;
  }

  WireFrame ack;
  ack.src = self_;
  ack.dst = wire.src;
  ack.is_ack = true;
  ack.seq = wire.seq;
  ack.attempt = wire.attempt;

  PeerState& state = peers_[wire.src];
  const bool duplicate =
      wire.seq <= state.delivered_floor ||
      state.delivered_above.count(wire.seq) > 0;
  if (duplicate) {
    ++stats_.duplicates;
    if (rec_) ++rec_->metrics().counter("duplicates");
    send_wire_(ack);  // re-ack: the original ack may have been lost
    return;
  }
  state.delivered_above.insert(wire.seq);
  while (state.delivered_above.count(state.delivered_floor + 1)) {
    state.delivered_above.erase(++state.delivered_floor);
  }
  ++stats_.delivered;
  send_wire_(ack);
  deliver_(wire.src, wire.frame);
}

void ReliableChannel::shutdown() {
  down_ = true;
  for (auto& [peer, state] : peers_) state.unacked.clear();
}

int ReliableChannel::outstanding() const {
  int count = 0;
  for (const auto& [peer, state] : peers_)
    count += static_cast<int>(state.unacked.size());
  return count;
}

}  // namespace adapt::mpi
