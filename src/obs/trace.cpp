#include "src/obs/trace.hpp"

#include <algorithm>

#include "src/support/error.hpp"

namespace adapt::obs {

const char* cat_name(Cat cat) {
  switch (cat) {
    case Cat::kColl: return "coll";
    case Cat::kTask: return "task";
    case Cat::kP2p: return "p2p";
    case Cat::kProto: return "proto";
    case Cat::kCpu: return "cpu";
    case Cat::kNoise: return "noise";
    case Cat::kTune: return "tune";
    case Cat::kCache: return "cache";
  }
  return "?";
}

const char* transfer_kind_name(int kind) {
  switch (kind) {
    case 0: return "eager";
    case 1: return "rts";
    case 2: return "cts";
    case 3: return "bulk";
    case 4: return "abort";
    case 5: return "ping";
    case 6: return "fail_notice";
    case 7: return "revoke";
    case 8: return "agree";
    case kXferAck: return "ack";
  }
  return "?";
}

Recorder::Recorder(bool enabled, const FlightConfig& config)
    : enabled_(enabled), flight_(true), config_(config) {
  ADAPT_CHECK(config.sample_period >= 1) << "sample_period must be >= 1";
  window_ = static_cast<std::size_t>(std::max(config.min_window, 1));
}

void Recorder::init_ranks(int nranks) {
  metrics_.init_ranks(nranks);
  if (flight_) {
    const std::int64_t per_rank =
        static_cast<std::int64_t>(config_.window_per_rank) * nranks;
    window_ = static_cast<std::size_t>(
        std::max<std::int64_t>(std::max(config_.min_window, 1), per_rank));
  }
}

template <typename T>
void Recorder::bound(std::vector<T>& v) {
  if (window_ == 0 || v.size() < window_) return;
  const std::size_t evict = v.size() / 2;
  v.erase(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(evict));
  dropped_ += evict;
}

void Recorder::bound_transfers() {
  if (window_ == 0 || transfers_.size() < window_) return;
  const std::size_t evict = transfers_.size() / 2;
  transfers_.erase(transfers_.begin(),
                   transfers_.begin() + static_cast<std::ptrdiff_t>(evict));
  xfer_base_ += evict;
  dropped_ += evict;
}

bool Recorder::sampled_out(std::uint32_t& tick) {
  if (!flight_ || config_.sample_period <= 1) return false;
  if (++tick < config_.sample_period) {
    ++dropped_;
    return true;
  }
  tick = 0;
  return false;
}

void Recorder::span(int pid, int tid, Cat cat, std::string name, TimeNs t0,
                    TimeNs t1, std::int64_t arg) {
  if (high_frequency(cat) && sampled_out(tick_event_)) return;
  bound(spans_);
  spans_.push_back(SpanRec{pid, tid, cat, std::move(name), t0, t1, arg});
}

void Recorder::instant(int pid, int tid, Cat cat, std::string name, TimeNs t,
                       std::int64_t arg) {
  if (high_frequency(cat) && sampled_out(tick_event_)) return;
  bound(instants_);
  instants_.push_back(InstantRec{pid, tid, cat, std::move(name), t, arg});
}

void Recorder::link_sample(int link, TimeNs t, std::int64_t flows) {
  bound(link_samples_);
  link_samples_.push_back(LinkSampleRec{link, t, flows});
}

TransferRec* Recorder::xfer(std::uint64_t id) {
  ADAPT_CHECK(id >= 1 && id <= xfer_base_ + transfers_.size())
      << "bad transfer id " << id;
  if (id <= xfer_base_) return nullptr;  // evicted while in flight
  return &transfers_[static_cast<std::size_t>(id - 1 - xfer_base_)];
}

std::uint64_t Recorder::transfer_begin(Rank src, Rank dst, Bytes bytes,
                                       int kind, TimeNs t_post) {
  if (sampled_out(tick_xfer_)) return 0;  // callers treat 0 as untraced
  bound_transfers();
  TransferRec rec;
  rec.src = src;
  rec.dst = dst;
  rec.bytes = bytes;
  rec.kind = kind;
  rec.t_post = t_post;
  transfers_.push_back(std::move(rec));
  return xfer_base_ + transfers_.size();  // ids are 1-based; 0 = untraced
}

void Recorder::transfer_active(std::uint64_t id, TimeNs t_active,
                               TimeNs ideal) {
  if (TransferRec* rec = xfer(id)) {
    rec->t_active = t_active;
    rec->ideal = ideal;
  }
}

void Recorder::transfer_end(std::uint64_t id, TimeNs t_end) {
  if (TransferRec* rec = xfer(id)) {
    rec->t_end = t_end;
    rec->done = true;
  }
}

void Recorder::transfer_undelivered(std::uint64_t id) {
  if (TransferRec* rec = xfer(id)) rec->delivered = false;
}

void Recorder::transfer_alpha_only(Rank src, Rank dst, int kind, TimeNs t_post,
                                   TimeNs t_end) {
  const std::uint64_t id = transfer_begin(src, dst, 0, kind, t_post);
  if (id == 0) return;  // sampled out in flight mode
  transfer_active(id, t_end, 0);
  transfer_end(id, t_end);
}

void Recorder::cpu_task(Rank r, bool progress, TimeNs t_request,
                        TimeNs t_ready, TimeNs t_start, TimeNs t_end) {
  // Metrics stay exact in every mode; only the timeline below is sampled.
  RankCounters& rc = metrics_.rank(r);
  if (progress) {
    rc.progress_busy_ns += t_end - t_start;
    rc.progress_starved_ns += t_ready - t_request;
  } else {
    rc.cpu_busy_ns += t_end - t_start;
    rc.noise_wait_ns += t_start - t_ready;
  }
  // A record that neither waited nor ran carries no information: skipping it
  // keeps traces sparse and the critical-path walk free of zero-length hops.
  if (t_end == t_request) return;
  if (sampled_out(tick_cpu_)) return;
  bound(cpu_);
  cpu_.push_back(CpuRec{r, progress, t_request, t_ready, t_start, t_end});
}

}  // namespace adapt::obs
