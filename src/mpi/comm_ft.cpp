#include "src/mpi/comm_ft.hpp"

#include <utility>
#include <vector>

#include "src/runtime/recovery.hpp"
#include "src/support/error.hpp"
#include "src/tune/plan_cache.hpp"

namespace adapt::mpi {

namespace {
// Fixed low tags for the fallback agreement (user collective tags start at
// 1 << 20, user P2P traffic conventionally uses small tags — this region is
// reserved here). Sequential agreements on one communicator stay ordered by
// the per-(src, tag) FIFO; concurrent agreements on different communicators
// are safe under the usual collective-ordering contract.
constexpr Tag kAgreeContribTag = 0xF0000;
constexpr Tag kAgreeResultTag = 0xF0001;
}  // namespace

std::uint64_t member_mask(const Comm& comm) {
  std::uint64_t mask = 0;
  for (Rank g : comm.members()) {
    ADAPT_CHECK(g >= 0 && g < 64)
        << "fault-tolerant comm ops track membership in 64-bit masks";
    mask |= 1ull << g;
  }
  return mask;
}

void comm_revoke(runtime::Context& ctx, const Comm& comm) {
  comm.revoke();
  // The weak CommState guard already makes cached plans unusable; eager
  // invalidation also frees their slots.
  if (tune::PlanCache* cache = ctx.plan_cache()) {
    cache->invalidate_comm(comm.fingerprint());
  }
  if (runtime::Recovery* rec = ctx.recovery()) {
    rec->revoke(comm.fingerprint());
  }
}

sim::Task<AgreeResult> comm_agree(runtime::Context& ctx, const Comm& comm,
                                  std::uint64_t flags) {
  if (runtime::Recovery* rec = ctx.recovery()) {
    const runtime::AgreeOutcome out =
        co_await rec->agree(comm.fingerprint(), member_mask(comm), flags);
    co_return AgreeResult{out.flags, out.failed, out.excluded};
  }
  // Failure-free fallback: gather contributions at the lowest member, AND
  // them, broadcast the decision. (Engines without a recovery service have
  // no failure injection either — ThreadEngine, or SimEngine with recovery
  // off — so a plain linear exchange is correct and keeps the protocol
  // identical across engines for the fuzz tests.)
  const Rank me = ctx.rank();
  const Rank coord = comm.global(0);
  std::uint64_t payload[2] = {flags, 0};
  const MutView recv_view{reinterpret_cast<std::byte*>(payload),
                          static_cast<Bytes>(sizeof payload)};
  if (me == coord) {
    std::uint64_t acc_flags = flags;
    std::uint64_t acc_view = 0;
    for (int i = 1; i < comm.size(); ++i) {
      co_await ctx.recv(comm.global(i), kAgreeContribTag, recv_view);
      acc_flags &= payload[0];
      acc_view |= payload[1];
    }
    payload[0] = acc_flags;
    payload[1] = acc_view;
    for (int i = 1; i < comm.size(); ++i) {
      co_await ctx.send(comm.global(i), kAgreeResultTag,
                        recv_view.as_const());
    }
    co_return AgreeResult{acc_flags, acc_view, false};
  }
  co_await ctx.send(coord, kAgreeContribTag, recv_view.as_const());
  co_await ctx.recv(coord, kAgreeResultTag, recv_view);
  co_return AgreeResult{payload[0], payload[1], false};
}

Comm comm_shrink(const Comm& comm, std::uint64_t failed_mask) {
  std::vector<Rank> survivors;
  survivors.reserve(comm.members().size());
  for (Rank g : comm.members()) {
    if (g < 64 && ((failed_mask >> g) & 1u)) continue;
    survivors.push_back(g);
  }
  ADAPT_CHECK(!survivors.empty()) << "comm_shrink left no survivors";
  return Comm(std::move(survivors));
}

}  // namespace adapt::mpi
