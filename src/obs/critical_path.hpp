// Post-run critical-path analysis over a recorded trace.
//
// Walks backward from (rank, completion time) through the typed records:
// a CpuRec explains [t_ready, t_end] on its rank (compute + noise stall)
// and continues at t_ready; a TransferRec ending on the rank explains
// [t_post, t_end] (α = post→active incl. serial queueing, β = the ideal
// uncontended bytes phase, contention = the stretch beyond ideal) and jumps
// to (src, t_post). Gaps no record explains are attributed to `other`
// (program start, zero-cost scheduling hops).
//
// This turns the paper's Fig. 7–10 narratives — "noise stretched the
// critical path", "contention on the shared lane", "the pipeline hid the
// β term" — into checkable numbers: the attribution terms sum exactly to
// the completion time being explained.
#pragma once

#include "src/obs/trace.hpp"

namespace adapt::obs {

struct Attribution {
  TimeNs alpha = 0;       ///< startup latency (post->active, minus queueing)
  TimeNs beta = 0;        ///< ideal byte-transfer time + serial-tx queueing
  TimeNs compute = 0;     ///< CPU busy time on the path
  TimeNs contention = 0;  ///< transfer stretch beyond the ideal rate
  TimeNs noise = 0;       ///< main-thread stalls waiting out noise bursts
  TimeNs other = 0;       ///< unexplained gaps (program start, 0-cost hops)
  TimeNs end = 0;         ///< the completion time being explained
  Rank end_rank = -1;
  int hops = 0;  ///< transfers on the path

  /// Invariant: total() == end (the walk explains every nanosecond once).
  TimeNs total() const {
    return alpha + beta + compute + contention + noise + other;
  }
};

/// Attributes `end_time` on `final_rank` (typically the slowest rank of a
/// collective and its finish time) to the path segments above.
Attribution critical_path(const Recorder& recorder, Rank final_rank,
                          TimeNs end_time);

}  // namespace adapt::obs
