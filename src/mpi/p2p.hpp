// Wait primitives on top of request completion — the synchronisation the
// blocking (Alg. 1) and nonblocking (Alg. 2) baselines rely on, implemented
// over exactly the same completion events ADAPT attaches callbacks to.
//
// A completed request fires in the PROGRESS context; waiters are application
// code, so their coroutines are woken through the owning rank's MAIN-thread
// executor — which is where injected noise can delay them. This is the
// asymmetry of Fig. 7: ADAPT's callback chains never cross this boundary,
// the Wait/Waitall baselines cross it once per synchronisation point.
#pragma once

#include <memory>
#include <vector>

#include "src/mpi/endpoint.hpp"
#include "src/mpi/request.hpp"
#include "src/sim/task.hpp"

namespace adapt::mpi {

namespace detail {

/// Resumes `h` on the request owner's main thread (directly when the request
/// carries no executor, e.g. in unit tests of the matching layer).
inline void wake_on_main(const RequestPtr& request, std::coroutine_handle<> h) {
  if (RankExecutor* exec = request->owner_exec()) {
    exec->post([h] { h.resume(); }, 0);
  } else {
    h.resume();
  }
}

}  // namespace detail

namespace detail {

/// Converts a failed request into an exception at the wait boundary — the
/// error-propagation contract: callbacks observe req.failed() themselves,
/// coroutine code gets a FaultError unwinding the whole collective.
inline void throw_if_failed(const RequestPtr& request) {
  if (!request->failed()) return;
  throw FaultError(request->error(),
                   std::string(request->kind() == Request::Kind::kSend
                                   ? "send to rank "
                                   : "recv from rank ") +
                       std::to_string(request->peer()) + " failed");
}

}  // namespace detail

/// MPI_Wait: suspends until the request completes; throws FaultError if it
/// completed with an error.
inline sim::Task<> wait(RequestPtr request) {
  ADAPT_CHECK(request != nullptr);
  if (!request->complete()) {
    co_await sim::Suspend([&request](std::coroutine_handle<> h) {
      request->done().subscribe(
          [request, h] { detail::wake_on_main(request, h); });
    });
  }
  detail::throw_if_failed(request);
}

/// MPI_Waitall: suspends until every request completes. (Awaiting requests in
/// sequence completes at the same instant all of them are done — this is the
/// synchronisation barrier the paper blames for serialising the baselines.)
inline sim::Task<> wait_all(std::vector<RequestPtr> requests) {
  for (auto& request : requests) {
    if (request) co_await wait(request);
  }
}

/// MPI_Waitany: suspends until at least one request completes; returns the
/// index of a completed request (lowest index among the completed). Throws
/// FaultError if the returned request completed with an error.
sim::Task<std::size_t> wait_any(std::vector<RequestPtr> requests);

}  // namespace adapt::mpi
