#include "src/runtime/sharded_engine.hpp"

#include <algorithm>
#include <limits>

#include "src/mpi/reliable.hpp"
#include "src/obs/merge.hpp"
#include "src/support/error.hpp"

namespace adapt::runtime {

namespace {

constexpr TimeNs kInf = std::numeric_limits<TimeNs>::max();

/// Rank field of the event key occupies the low 20 bits.
constexpr int kRankBits = 20;

TimeNs beta_time(const topo::RouteCost& rc, Bytes bytes) {
  return static_cast<TimeNs>(rc.beta_ns_per_byte *
                             static_cast<double>(bytes));
}

}  // namespace

// -------------------------------------------------------- ShardExecutor ---

class ShardedEngine::ShardExecutor final : public mpi::RankExecutor {
 public:
  ShardExecutor(ShardedEngine& engine, Rank rank)
      : engine_(engine), rank_(rank) {}

  TimeNs now() const override { return engine_.shard_for(rank_).now; }
  void post(std::function<void()> fn, TimeNs cpu_cost) override {
    engine_.run_on(rank_, std::move(fn), cpu_cost);
  }
  void post_progress(std::function<void()> fn, TimeNs cpu_cost) override {
    engine_.run_progress(rank_, std::move(fn), cpu_cost);
  }
  void charge(TimeNs cpu_cost) override { engine_.charge(rank_, cpu_cost); }

 private:
  ShardedEngine& engine_;
  Rank rank_;
};

// -------------------------------------------------------- ShardTransport ---

// One stateless-per-call transport serves every shard: all mutable state it
// touches (tx_free_, shard queues, mailboxes, recorders) is owned by the
// producing rank's shard, so concurrent submits from different shards never
// share data. Delivery, completion and protocol legs are events keyed by the
// producing rank — the rank whose callback is executing at schedule time —
// which is what keeps per-rank sequence draws invariant to sharding.
class ShardedEngine::ShardTransport final : public mpi::Transport {
 public:
  explicit ShardTransport(ShardedEngine& engine) : engine_(engine) {}

  void submit(mpi::Envelope env, MemSpace src_space, MemSpace dst_space,
              std::function<void()> on_sent,
              std::function<void(mpi::ErrCode)> on_failed) override {
    ADAPT_CHECK(src_space == MemSpace::kHost && dst_space == MemSpace::kHost)
        << "the sharded engine is host-only; use SimEngine for GPU runs";
    (void)on_failed;  // no fault injection here: every submit succeeds
    const topo::RouteCost rc = engine_.topo_->route(env.src, env.dst);
    if (env.size <= engine_.machine_.spec().eager_threshold) {
      submit_eager(rc, std::move(env), std::move(on_sent));
    } else {
      submit_rendezvous(rc, std::move(env), std::move(on_sent));
    }
  }

 private:
  /// Eager: data departs immediately after the source's transmit queue
  /// frees, arrives alpha + beta*bytes later, and is buffered at the
  /// receiver if nothing matches. The sender completes at arrival (the
  /// last byte left the wire), as in the SimEngine's raw eager path.
  void submit_eager(const topo::RouteCost& rc, mpi::Envelope env,
                    std::function<void()> on_sent) {
    ShardedEngine& eng = engine_;
    const Rank src = env.src;
    const Rank dst = env.dst;
    const int ss = eng.shard_of(src);
    Shard& sh = *eng.shards_[static_cast<std::size_t>(ss)];
    const TimeNs now = sh.now;
    TimeNs& txf = eng.tx_free_[static_cast<std::size_t>(src)];
    const TimeNs depart = std::max(now, txf);
    const TimeNs serial = beta_time(rc, env.size);
    txf = depart + serial;
    const TimeNs arrive = depart + serial + rc.alpha;
    if (sh.rec) {
      const std::uint64_t id = sh.rec->transfer_begin(
          src, dst, env.size, static_cast<int>(mpi::Frame::Kind::kEager),
          now);
      if (id != 0) {
        sh.rec->transfer_active(id, depart + rc.alpha, serial);
        sh.rec->transfer_end(id, arrive);
      }
    }
    eng.post_at(ss, ss, arrive, eng.next_key(src),
                [&eng, src, on_sent = std::move(on_sent)]() mutable {
                  eng.run_progress(src, std::move(on_sent), 0);
                });
    eng.post_at(ss, eng.shard_of(dst), arrive, eng.next_key(src),
                [&eng, dst, env = std::move(env)]() mutable {
                  eng.endpoint(dst).deliver(std::move(env));
                });
  }

  /// Rendezvous: an alpha-only RTS races ahead; the matched receive grants
  /// on the receiver's shard, an alpha-only CTS returns to the sender, and
  /// only then does the bulk data pay beta (see rendezvous_grant/bulk).
  void submit_rendezvous(const topo::RouteCost& rc, mpi::Envelope env,
                         std::function<void()> on_sent) {
    ShardedEngine& eng = engine_;
    const Rank src = env.src;
    const Rank dst = env.dst;
    const int ss = eng.shard_of(src);
    Shard& sh = *eng.shards_[static_cast<std::size_t>(ss)];
    const TimeNs now = sh.now;
    const TimeNs rts_arrive = now + rc.alpha;
    if (sh.rec) {
      sh.rec->transfer_alpha_only(src, dst,
                                  static_cast<int>(mpi::Frame::Kind::kRts),
                                  now, rts_arrive);
    }
    mpi::Envelope rts;
    rts.src = src;
    rts.dst = dst;
    rts.tag = env.tag;
    rts.size = env.size;
    rts.grant = [&eng, rc, env = std::move(env),
                 on_sent = std::move(on_sent)](mpi::PostedRecv recv) mutable {
      eng.rendezvous_grant(rc, std::move(env), std::move(on_sent),
                           std::move(recv));
    };
    eng.post_at(ss, eng.shard_of(dst), rts_arrive, eng.next_key(src),
                [&eng, dst, rts = std::move(rts)]() mutable {
                  eng.endpoint(dst).deliver(std::move(rts));
                });
  }

  ShardedEngine& engine_;
};

/// A receive matched the RTS: runs on the RECEIVER's shard at match time.
/// The CTS leg back to the sender is keyed by the receiver (the producing
/// rank here), then the bulk leg continues on the sender's shard.
void ShardedEngine::rendezvous_grant(topo::RouteCost rc, mpi::Envelope env,
                                     std::function<void()> on_sent,
                                     mpi::PostedRecv recv) {
  const Rank src = env.src;
  const Rank dst = env.dst;
  const int ds = shard_of(dst);
  Shard& sh = *shards_[static_cast<std::size_t>(ds)];
  const TimeNs now = sh.now;
  const TimeNs cts_arrive = now + rc.alpha;
  if (sh.rec) {
    sh.rec->transfer_alpha_only(dst, src,
                                static_cast<int>(mpi::Frame::Kind::kCts), now,
                                cts_arrive);
  }
  post_at(ds, shard_of(src), cts_arrive, next_key(dst),
          [this, rc, env = std::move(env), on_sent = std::move(on_sent),
           recv = std::move(recv)]() mutable {
            rendezvous_bulk(rc, std::move(env), std::move(on_sent),
                            std::move(recv));
          });
}

/// CTS reached the sender: runs on the SENDER's shard. The bulk transfer
/// pays the serial-transmit queue plus alpha + beta*bytes; completion fires
/// at the sender and finalisation at the receiver, both at arrival time.
void ShardedEngine::rendezvous_bulk(topo::RouteCost rc, mpi::Envelope env,
                                    std::function<void()> on_sent,
                                    mpi::PostedRecv recv) {
  const Rank src = env.src;
  const Rank dst = env.dst;
  const int ss = shard_of(src);
  Shard& sh = *shards_[static_cast<std::size_t>(ss)];
  const TimeNs now = sh.now;
  TimeNs& txf = tx_free_[static_cast<std::size_t>(src)];
  const TimeNs depart = std::max(now, txf);
  const TimeNs serial = beta_time(rc, env.size);
  txf = depart + serial;
  const TimeNs arrive = depart + serial + rc.alpha;
  if (sh.rec) {
    const std::uint64_t id = sh.rec->transfer_begin(
        src, dst, env.size, static_cast<int>(mpi::Frame::Kind::kBulk), now);
    if (id != 0) {
      sh.rec->transfer_active(id, depart + rc.alpha, serial);
      sh.rec->transfer_end(id, arrive);
    }
  }
  post_at(ss, ss, arrive, next_key(src),
          [this, src, on_sent = std::move(on_sent)]() mutable {
            run_progress(src, std::move(on_sent), 0);
          });
  const TimeNs overhead = machine_.spec().cpu_overhead;
  post_at(ss, shard_of(dst), arrive, next_key(src),
          [this, dst, overhead, env = std::move(env),
           recv = std::move(recv)]() mutable {
            run_progress(
                dst,
                [this, dst, env = std::move(env), recv = std::move(recv)] {
                  endpoint(dst).finalize_recv(recv, env);
                },
                overhead);
          });
}

// ---------------------------------------------------------- ShardContext ---

class ShardedEngine::ShardContext final : public Context {
 public:
  ShardContext(ShardedEngine& engine, Rank rank)
      : engine_(engine), rank_(rank) {}

  Rank rank() const override { return rank_; }
  int nranks() const override { return engine_.machine_.nranks(); }
  TimeNs now() const override { return engine_.shard_for(rank_).now; }
  mpi::Endpoint& endpoint() override { return engine_.endpoint(rank_); }
  const topo::Machine& machine() const override { return engine_.machine_; }

  sim::Task<> compute(TimeNs cost) override {
    ADAPT_CHECK(cost >= 0);
    co_await sim::Suspend([this, cost](std::coroutine_handle<> h) {
      engine_.run_on(rank_, [h] { h.resume(); }, cost);
    });
  }

  void defer(TimeNs cpu_cost, std::function<void()> fn) override {
    engine_.run_on(rank_, std::move(fn), cpu_cost);
  }

  void defer_progress(TimeNs cpu_cost, std::function<void()> fn) override {
    engine_.run_progress(rank_, std::move(fn), cpu_cost);
  }

  sim::Task<> sleep_for(TimeNs duration) override {
    ADAPT_CHECK(duration >= 0);
    co_await sim::Suspend([this, duration](std::coroutine_handle<> h) {
      Shard& sh = engine_.shard_for(rank_);
      const int s = engine_.shard_of(rank_);
      engine_.post_at(s, s, sh.now + duration, engine_.next_key(rank_),
                      [h] { h.resume(); });
    });
  }

  support::BufferPool* pool() override { return &engine_.pool_; }
  obs::Recorder* recorder() override {
    return engine_.shard_for(rank_).rec.get();
  }
  // gpu/tuner/plan_cache/recovery stay at the base-class nullptr: those
  // subsystems are single-threaded by design and gated off here.

 private:
  ShardedEngine& engine_;
  Rank rank_;
};

// --------------------------------------------------------- ShardedEngine ---

ShardedEngine::ShardedEngine(const topo::Machine& machine,
                             ShardedEngineOptions options)
    : machine_(machine),
      options_(std::move(options)),
      machine_topo_(machine),
      topo_(options_.topology ? options_.topology : &machine_topo_),
      noise_(options_.noise ? options_.noise
                            : std::make_shared<noise::NoNoise>()) {
  const int n = machine_.nranks();
  ADAPT_CHECK(topo_->nranks() == n)
      << "topology describes " << topo_->nranks() << " ranks but the machine "
      << "places " << n;
  ADAPT_CHECK(n < (1 << kRankBits))
      << "event keys reserve " << kRankBits << " bits for the rank";
  ADAPT_CHECK(options_.shards >= 1);

  map_ = topo::make_shard_map(*topo_, options_.shards);
  lookahead_ = topo_->min_cross_block_alpha();
  ADAPT_CHECK(map_.shards == 1 || lookahead_ > 0)
      << "conservative sharding needs positive cross-block latency";

  shards_.reserve(static_cast<std::size_t>(map_.shards));
  for (int s = 0; s < map_.shards; ++s) {
    // Steady-state bound on the same-time cohort and radix levels: a few
    // in-flight events per local rank plus the historical floor, so shard
    // queues never reallocate mid-run (pinned by the allocation regression
    // test).
    const std::size_t local = map_.ranks[static_cast<std::size_t>(s)].size();
    shards_.push_back(std::make_unique<Shard>(local * 4 + 64));
    shards_.back()->outbox.resize(static_cast<std::size_t>(map_.shards));
  }
  if (map_.shards > 1) {
    workers_ = std::make_unique<support::ShardPool>(map_.shards);
  }

  busy_until_.assign(static_cast<std::size_t>(n), 0);
  progress_busy_until_.assign(static_cast<std::size_t>(n), 0);
  tx_free_.assign(static_cast<std::size_t>(n), 0);
  rank_seq_.assign(static_cast<std::size_t>(n), 0);

  transport_ = std::make_unique<ShardTransport>(*this);
  const mpi::EndpointCosts costs{machine_.spec().cpu_overhead,
                                 machine_.spec().unexpected_overhead,
                                 machine_.spec().memcpy_beta};
  executors_.reserve(static_cast<std::size_t>(n));
  endpoints_.reserve(static_cast<std::size_t>(n));
  contexts_.reserve(static_cast<std::size_t>(n));
  for (Rank r = 0; r < n; ++r) {
    executors_.push_back(std::make_unique<ShardExecutor>(*this, r));
    endpoints_.push_back(std::make_unique<mpi::Endpoint>(
        r, n, *executors_.back(), *transport_, costs));
    endpoints_.back()->set_pool(&pool_);
    contexts_.push_back(std::make_unique<ShardContext>(*this, r));
  }

  if (options_.recorder && options_.recorder->enabled()) {
    options_.recorder->init_ranks(n);
  }
}

ShardedEngine::~ShardedEngine() = default;

mpi::Endpoint& ShardedEngine::endpoint(Rank r) {
  ADAPT_CHECK(r >= 0 && r < machine_.nranks());
  return *endpoints_[static_cast<std::size_t>(r)];
}

Context& ShardedEngine::context(Rank r) {
  ADAPT_CHECK(r >= 0 && r < machine_.nranks());
  return *contexts_[static_cast<std::size_t>(r)];
}

std::uint64_t ShardedEngine::next_key(Rank r) {
  std::uint64_t& seq = rank_seq_[static_cast<std::size_t>(r)];
  ADAPT_CHECK(seq < (1ull << (64 - kRankBits)))
      << "per-rank event sequence overflow";
  return (seq++ << kRankBits) | static_cast<std::uint64_t>(r);
}

void ShardedEngine::post_at(int from, int to, TimeNs t, std::uint64_t tie,
                            sim::EventFn fn) {
  if (from == to) {
    shards_[static_cast<std::size_t>(to)]->queue.push_keyed(t, tie,
                                                            std::move(fn));
    return;
  }
  // Cross-shard: t is at least this window's end (route alpha >= lookahead),
  // so delivery at the next round's drain is never late.
  Shard& sh = *shards_[static_cast<std::size_t>(from)];
  sh.outbox[static_cast<std::size_t>(to)][epoch_ & 1].push_back(
      Msg{t, tie, std::move(fn)});
}

void ShardedEngine::run_on(Rank r, std::function<void()> fn,
                           TimeNs cpu_cost) {
  ADAPT_CHECK(cpu_cost >= 0);
  Shard& sh = shard_for(r);
  TimeNs& busy = busy_until_[static_cast<std::size_t>(r)];
  const TimeNs ready = std::max(sh.now, busy);
  const TimeNs start = noise_->next_free(r, ready);
  busy = start + cpu_cost;
  if (sh.rec) {
    sh.rec->cpu_task(r, /*progress=*/false, sh.now, ready, start, busy);
  }
  sh.queue.push_keyed(busy, next_key(r), std::move(fn));
}

void ShardedEngine::run_progress(Rank r, std::function<void()> fn,
                                 TimeNs cpu_cost) {
  ADAPT_CHECK(cpu_cost >= 0);
  Shard& sh = shard_for(r);
  TimeNs& busy = progress_busy_until_[static_cast<std::size_t>(r)];
  const TimeNs ready = std::max(sh.now, busy);
  busy = ready + cpu_cost;
  if (sh.rec) {
    sh.rec->cpu_task(r, /*progress=*/true, sh.now, ready, ready, busy);
  }
  sh.queue.push_keyed(busy, next_key(r), std::move(fn));
}

void ShardedEngine::charge(Rank r, TimeNs cpu_cost) {
  ADAPT_CHECK(cpu_cost >= 0);
  Shard& sh = shard_for(r);
  TimeNs& busy = busy_until_[static_cast<std::size_t>(r)];
  const TimeNs ready = std::max(sh.now, busy);
  busy = ready + cpu_cost;
  if (sh.rec) {
    sh.rec->cpu_task(r, /*progress=*/false, sh.now, ready, ready, busy);
  }
}

TimeNs ShardedEngine::pending_min(const Shard& sh) const {
  // peek_min_time, not next_time: this is a between-rounds probe, and
  // committing the queue's monotone cursor to a far-future local event would
  // reject legitimate nearer cross-shard messages drained next round.
  TimeNs t = sh.queue.empty() ? kInf : sh.queue.peek_min_time();
  for (const auto& box : sh.outbox) {
    for (const auto& epoch : box) {
      for (const Msg& m : epoch) t = std::min(t, m.time);
    }
  }
  return t;
}

void ShardedEngine::round(int s, TimeNs window) {
  Shard& sh = *shards_[static_cast<std::size_t>(s)];
  try {
    support::FrameArena::Scope frames(&sh.arena);
    // Drain the off-epoch inboxes: everything peers appended last round.
    const std::size_t prev = (epoch_ + 1) & 1;
    for (auto& peer : shards_) {
      auto& box = peer->outbox[static_cast<std::size_t>(s)][prev];
      for (Msg& m : box) sh.queue.push_keyed(m.time, m.tie, std::move(m.fn));
      box.clear();
    }
    // peek_min_time for the guard too: evaluating it on an idle shard must
    // not commit the cursor past messages the next drain will deliver. pop()
    // advances the cursor only to events actually executed (< window).
    while (!sh.queue.empty() && sh.queue.peek_min_time() < window) {
      auto [t, fn] = sh.queue.pop();
      sh.now = t;
      fn();
    }
  } catch (...) {
    sh.fatal = std::current_exception();
  }
}

RunResult ShardedEngine::run(const RankProgram& program) {
  const int n = machine_.nranks();
  const int S = shards();
  obs::Recorder* out = (options_.recorder && options_.recorder->enabled())
                           ? options_.recorder.get()
                           : nullptr;
  std::uint64_t scheduled_before = 0;
  if (out != nullptr) {
    for (auto& sh : shards_) {
      sh->rec = std::make_unique<obs::Recorder>(true);
      sh->rec->init_ranks(n);
      Shard* p = sh.get();
      sh->rec->set_clock([p] { return p->now; });
    }
    for (Rank r = 0; r < n; ++r) {
      endpoint(r).set_recorder(shard_for(r).rec.get());
    }
    scheduled_before = total_scheduled();
  }

  RunResult result;
  result.rank_finish.assign(static_cast<std::size_t>(n), -1);
  // Re-align the shard clocks before reusing the engine: each shard's clock
  // stopped at its OWN last event of the previous run, and the conservative
  // window protocol is only sound when clocks start within the lookahead of
  // each other. The alignment point — the time of the globally last event —
  // is shard-invariant, so back-to-back runs stay byte-identical for any
  // shard count (it is exactly where the single-shard clock already is).
  TimeNs start_time = 0;
  for (const auto& sh : shards_) start_time = std::max(start_time, sh->now);
  for (auto& sh : shards_) {
    sh->now = start_time;
    sh->finished = 0;
    sh->failures.clear();
    sh->fatal = nullptr;
  }

  for (Rank r = 0; r < n; ++r) {
    Shard* sh = &shard_for(r);
    run_on(
        r,
        [this, r, sh, &program, &result] {
          sim::run_detached(
              program(*contexts_[static_cast<std::size_t>(r)]),
              [r, sh, &result](std::exception_ptr ep) {
                result.rank_finish[static_cast<std::size_t>(r)] = sh->now;
                ++sh->finished;
                if (ep) sh->failures.emplace_back(r, ep);
              });
        },
        0);
  }

  if (S == 1) {
    Shard& sh = *shards_[0];
    support::FrameArena::Scope frames(&sh.arena);
    while (!sh.queue.empty()) {
      auto [t, fn] = sh.queue.pop();
      sh.now = t;
      fn();
    }
  } else {
    while (true) {
      TimeNs horizon = kInf;
      for (const auto& sh : shards_) {
        horizon = std::min(horizon, pending_min(*sh));
      }
      if (horizon == kInf) break;
      const TimeNs window =
          horizon > kInf - lookahead_ ? kInf : horizon + lookahead_;
      workers_->run_round([this, window](int s) { round(s, window); });
      ++epoch_;
      for (const auto& sh : shards_) {
        if (sh->fatal) std::rethrow_exception(sh->fatal);
      }
    }
  }

  // Rank-program failures: rethrow the lowest rank's (deterministic for any
  // shard count, unlike discovery order).
  std::exception_ptr failure;
  Rank failed_rank = -1;
  int finished = 0;
  for (const auto& sh : shards_) {
    finished += sh->finished;
    for (const auto& [r, ep] : sh->failures) {
      if (failed_rank < 0 || r < failed_rank) {
        failed_rank = r;
        failure = ep;
      }
    }
  }

  if (out != nullptr) {
    std::vector<const obs::Recorder*> parts;
    parts.reserve(shards_.size());
    for (const auto& sh : shards_) parts.push_back(sh->rec.get());
    obs::merge_recorders(parts, *out);
    out->queue_stats().scheduled += total_scheduled() - scheduled_before;
    // The rank-state gauge and its components: cumulative, shard-invariant
    // quantities only (peaks and pool-cache occupancy are interleaving-
    // dependent and must never reach byte-compared output).
    obs::MetricsRegistry& m = out->metrics();
    m.counter("sim.frame_bytes") = static_cast<std::int64_t>(frame_bytes());
    m.counter("sim.matcher_bytes") =
        static_cast<std::int64_t>(matcher_bytes());
    m.counter("sim.pool_bytes") =
        static_cast<std::int64_t>(pool_.acquired_bytes());
    m.counter("sim.rank_state_bytes") =
        static_cast<std::int64_t>(rank_state_bytes());
    for (Rank r = 0; r < n; ++r) endpoint(r).set_recorder(nullptr);
    for (auto& sh : shards_) sh->rec.reset();
  }

  if (failure) std::rethrow_exception(failure);
  ADAPT_CHECK(finished == n)
      << (n - finished) << " of " << n
      << " ranks never finished: deadlock (blocked on a message that is "
         "never sent)";
  result.total_time =
      *std::max_element(result.rank_finish.begin(), result.rank_finish.end());
  return result;
}

std::uint64_t ShardedEngine::total_scheduled() const {
  std::uint64_t total = 0;
  for (const auto& sh : shards_) total += sh->queue.total_scheduled();
  return total;
}

std::uint64_t ShardedEngine::frame_bytes() const {
  std::uint64_t total = 0;
  for (const auto& sh : shards_) total += sh->arena.total_bytes();
  return total;
}

std::uint64_t ShardedEngine::matcher_bytes() const {
  std::uint64_t total = 0;
  for (const auto& ep : endpoints_) {
    total += static_cast<std::uint64_t>(ep->matcher().footprint_bytes());
  }
  return total;
}

std::uint64_t ShardedEngine::rank_state_bytes() const {
  return frame_bytes() + matcher_bytes() + pool_.acquired_bytes();
}

std::uint64_t ShardedEngine::rank_state_peak_bytes() const {
  std::uint64_t peak = 0;
  for (const auto& sh : shards_) peak += sh->arena.peak_bytes();
  return peak + matcher_bytes() + pool_.cached_bytes();
}

}  // namespace adapt::runtime
