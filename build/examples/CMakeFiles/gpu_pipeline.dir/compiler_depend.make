# Empty compiler generated dependencies file for gpu_pipeline.
# This may be replaced when dependencies are built.
