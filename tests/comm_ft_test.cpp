// ULFM communicator-operation tests (PR 7): agreement AND-semantics across
// engines (recovery service and linear fallback), shrink's dense remap and
// fingerprint identity, revocation flooding + plan-cache invalidation, and
// pinned deterministic agreement outcomes under seeded mid-agreement rank
// death — participant and coordinator. RecoveryFuzz overlaps fault-tolerant
// agreement with in-flight persistent rounds on both the SimEngine and the
// ThreadEngine (the latter exercises the fallback agreement protocol).
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "src/coll/persistent.hpp"
#include "src/mpi/comm.hpp"
#include "src/mpi/comm_ft.hpp"
#include "src/runtime/recovery.hpp"
#include "src/runtime/sim_engine.hpp"
#include "src/runtime/thread_engine.hpp"
#include "src/topo/presets.hpp"
#include "src/verify/chaos.hpp"

namespace adapt::mpi {
namespace {

using runtime::Context;
using runtime::SimEngine;
using runtime::ThreadEngine;

constexpr int kRanks = 8;

topo::Machine test_machine() { return topo::Machine(topo::cori(2), kRanks); }

// Coroutine programs use EXPECT_* only: gtest ASSERT_* expands to a plain
// `return`, which is ill-formed inside a coroutine.

// ----------------------------------------------------------------- agree ----

/// Every member contributes all-ones except one cleared bit; the AND must
/// surface exactly the intersection, identically on every rank. Runs the
/// same program on whichever engine the caller built.
template <typename Engine>
void run_agree_and_program(Engine& engine, const Comm& comm) {
  std::vector<std::uint64_t> flags(kRanks, ~0ull);
  std::vector<std::uint64_t> failed(kRanks, ~0ull);
  auto program = [&](Context& ctx) -> sim::Task<> {
    if (!comm.contains(ctx.rank())) co_return;
    const std::uint64_t mine = 0xFFull ^ (1ull << ctx.rank());
    const AgreeResult first = co_await comm_agree(ctx, comm, mine);
    EXPECT_FALSE(first.excluded);
    // Agreements on one communicator are ordered: a second round must see
    // fresh state, not the first round's frozen decision.
    const AgreeResult second = co_await comm_agree(ctx, comm, 0b11u);
    EXPECT_EQ(second.flags, 0b11u);
    const std::size_t me = static_cast<std::size_t>(ctx.rank());
    flags[me] = first.flags;
    failed[me] = first.failed;
  };
  engine.run(program);

  std::uint64_t expect = ~0ull;
  for (Rank g : comm.members()) expect &= 0xFFull ^ (1ull << g);
  for (Rank g : comm.members()) {
    const std::size_t gi = static_cast<std::size_t>(g);
    EXPECT_EQ(flags[gi], expect) << "rank " << g;
    EXPECT_EQ(failed[gi], 0u) << "rank " << g;
  }
}

TEST(CommFt, AgreeAndsFlagsUnderRecoveryService) {
  topo::Machine machine = test_machine();
  runtime::SimEngineOptions opts;
  opts.reliability = verify::chaos_reliability();
  opts.recovery = runtime::RecoveryOptions{};
  SimEngine engine(machine, opts);
  run_agree_and_program(engine, Comm::world(kRanks));
}

TEST(CommFt, AgreeAndsFlagsViaFallbackOnPlainEngines) {
  topo::Machine machine = test_machine();
  {
    SimEngine engine(machine);  // recovery off: linear gather+bcast path
    run_agree_and_program(engine, Comm::world(kRanks));
  }
  {
    SimEngine engine(machine);  // subset comm: coordinator is global(0) == 1
    run_agree_and_program(engine, Comm(std::vector<Rank>{1, 3, 4, 6}));
  }
  {
    ThreadEngine engine(machine);
    run_agree_and_program(engine, Comm::world(kRanks));
  }
}

// ---------------------------------------------------------------- shrink ----

TEST(CommFt, ShrinkRemapsDenselyAndMatchesFingerprint) {
  const Comm comm(std::vector<Rank>{0, 2, 3, 5, 7});
  const std::uint64_t failed = (1ull << 2) | (1ull << 7);
  const Comm shrunk = comm_shrink(comm, failed);

  ASSERT_EQ(shrunk.size(), 3);
  EXPECT_EQ(shrunk.global(0), 0);  // original order, densely remapped
  EXPECT_EQ(shrunk.global(1), 3);
  EXPECT_EQ(shrunk.global(2), 5);
  EXPECT_EQ(shrunk.local_of(3), 1);
  EXPECT_FALSE(shrunk.contains(2));

  // Same ordered membership ⇒ same fingerprint: survivors that derive the
  // shrunk comm independently (from the agreed mask) share cached plans.
  const Comm direct(std::vector<Rank>{0, 3, 5});
  EXPECT_EQ(shrunk.fingerprint(), direct.fingerprint());
  EXPECT_NE(shrunk.fingerprint(), comm.fingerprint());

  // Shrinking away nothing still yields a usable identical membership.
  const Comm same = comm_shrink(comm, 0);
  EXPECT_EQ(same.members(), comm.members());
}

// ---------------------------------------------------------------- revoke ----

TEST(CommFt, RevokeFloodsJobWideAndDropsCachedPlans) {
  topo::Machine machine = test_machine();
  runtime::SimEngineOptions opts;
  opts.reliability = verify::chaos_reliability();
  opts.recovery = runtime::RecoveryOptions{};
  SimEngine engine(machine, opts);
  const Comm world = Comm::world(kRanks);
  constexpr Bytes kBytes = 1024;
  std::vector<std::vector<std::byte>> bufs(
      kRanks, std::vector<std::byte>(static_cast<std::size_t>(kBytes)));

  auto program = [&](Context& ctx) -> sim::Task<> {
    auto& mine = bufs[static_cast<std::size_t>(ctx.rank())];
    coll::PersistentOpts popts;
    popts.coll.segment_size = 256;
    auto op = coll::bcast_init(ctx, world, MutView{mine.data(), kBytes},
                               /*root=*/0, popts);
    EXPECT_EQ(op->start(), ErrCode::kOk);
    co_await op->wait();

    // Barrier before revoking: the root finishes its round first, and a
    // revoke flood landing on a rank still pumping the bcast would poison
    // its round (that unblocking IS the production behavior — here the pin
    // is the flood + plan-cache semantics on idle ranks).
    co_await comm_agree(ctx, world, 1);
    if (ctx.rank() == 0) comm_revoke(ctx, world);
    // The kRevoke flood needs (virtual) time to reach the other ranks; no
    // rank holds pending requests here, so nobody gets poisoned by it.
    co_await ctx.sleep_for(milliseconds(2));
    EXPECT_TRUE(ctx.recovery() != nullptr);
    EXPECT_TRUE(ctx.recovery()->revoked(world.fingerprint()))
        << "rank " << ctx.rank() << " missed the revocation flood";
    EXPECT_EQ(op->start(), ErrCode::kErrRevoked);
  };
  engine.run(program);
  EXPECT_EQ(engine.plan_cache().size(), 0);
}

// ------------------------------------------------- death during agreement ----

struct AgreeDeathOutcome {
  std::vector<std::uint64_t> flags;
  std::vector<std::uint64_t> failed;
  std::vector<char> excluded;
};

/// One seeded run: `victim` dies at `at` and (having slept past its own
/// death) never effectively contributes; everyone else agrees at t=0 with
/// flags = ~(1 << rank) over the low byte. Survivor outcomes are returned
/// for pinning; the victim self-terminates through its own give-up cascade.
AgreeDeathOutcome run_agree_death(Rank victim, TimeNs at) {
  topo::Machine machine = test_machine();
  runtime::SimEngineOptions opts;
  opts.reliability = verify::chaos_reliability();
  opts.recovery = runtime::RecoveryOptions{};
  net::FaultPlan plan;
  plan.seed = 1;
  plan.deaths.push_back(net::FaultPlan::Death{victim, at});
  opts.faults = plan;
  SimEngine engine(machine, opts);
  const Comm world = Comm::world(kRanks);

  AgreeDeathOutcome out;
  out.flags.assign(kRanks, ~0ull);
  out.failed.assign(kRanks, ~0ull);
  out.excluded.assign(kRanks, 0);
  auto program = [&](Context& ctx) -> sim::Task<> {
    const Rank me = ctx.rank();
    runtime::Recovery* rec = ctx.recovery();
    rec->acquire_heartbeats();
    if (me == victim) {
      // Sleep past the death so the contribution never makes it out: the
      // survivors must detect the silence, not read a contribution.
      co_await ctx.sleep_for(at + microseconds(50));
    }
    const AgreeResult res =
        co_await comm_agree(ctx, world, 0xFFull ^ (1ull << me));
    rec->release_heartbeats();
    const std::size_t mi = static_cast<std::size_t>(me);
    out.flags[mi] = res.flags;
    out.failed[mi] = res.failed;
    out.excluded[mi] = res.excluded ? 1 : 0;
  };
  engine.run(program);
  return out;
}

TEST(CommFt, AgreeSurvivesParticipantDeathWithPinnedOutcome) {
  const Rank victim = 5;
  const AgreeDeathOutcome out = run_agree_death(victim, microseconds(50));
  // AND over the survivors' contributions leaves exactly the victim's bit.
  for (Rank g = 0; g < kRanks; ++g) {
    if (g == victim) continue;
    const std::size_t gi = static_cast<std::size_t>(g);
    EXPECT_EQ(out.flags[gi], 1ull << victim) << "rank " << g;
    EXPECT_EQ(out.failed[gi], 1ull << victim) << "rank " << g;
    EXPECT_EQ(out.excluded[gi], 0) << "rank " << g;
  }
  // Deterministic: the same seed reproduces the identical outcome.
  const AgreeDeathOutcome again = run_agree_death(victim, microseconds(50));
  EXPECT_EQ(out.flags, again.flags);
  EXPECT_EQ(out.failed, again.failed);
  EXPECT_EQ(out.excluded, again.excluded);
}

TEST(CommFt, AgreeSurvivesCoordinatorDeathWithPinnedOutcome) {
  // Rank 0 is the initial coordinator; its death forces the restart path:
  // every survivor re-targets the next-lowest survivor (rank 1), which
  // decides with the victim in the failed set.
  const Rank victim = 0;
  const AgreeDeathOutcome out = run_agree_death(victim, microseconds(50));
  for (Rank g = 1; g < kRanks; ++g) {
    const std::size_t gi = static_cast<std::size_t>(g);
    EXPECT_EQ(out.flags[gi], 1ull << victim) << "rank " << g;
    EXPECT_EQ(out.failed[gi], 1ull << victim) << "rank " << g;
    EXPECT_EQ(out.excluded[gi], 0) << "rank " << g;
  }
  const AgreeDeathOutcome again = run_agree_death(victim, microseconds(50));
  EXPECT_EQ(out.flags, again.flags);
  EXPECT_EQ(out.failed, again.failed);
}

// ----------------------------------------------------------- recovery fuzz ----

/// Persistent rounds in flight on the world communicator while a subset
/// communicator runs agreement + shrink between start() and wait(): the
/// dedicated low agreement tags must never cross-match collective traffic,
/// on either engine. The ThreadEngine leg runs the fallback agreement under
/// real concurrency; the SimEngine legs cross three perturbation seeds.
template <typename Engine>
void run_recovery_fuzz(Engine& engine) {
  const Comm world = Comm::world(kRanks);
  const Comm evens(std::vector<Rank>{0, 2, 4, 6});
  constexpr Bytes kBytes = 2048;
  constexpr int kRounds = 3;
  std::vector<std::vector<std::byte>> bufs(
      kRanks, std::vector<std::byte>(static_cast<std::size_t>(kBytes)));

  auto fill = [](std::vector<std::byte>& buf, int rank, int round) {
    for (std::size_t i = 0; i < buf.size(); ++i) {
      buf[i] =
          static_cast<std::byte>((rank * 131 + round * 17 + i * 7) & 0xff);
    }
  };

  auto program = [&](Context& ctx) -> sim::Task<> {
    const Rank me = ctx.rank();
    auto& mine = bufs[static_cast<std::size_t>(me)];
    coll::PersistentOpts popts;
    popts.coll.segment_size = 256;
    auto op = coll::bcast_init(ctx, world, MutView{mine.data(), kBytes},
                               /*root=*/0, popts);
    for (int round = 0; round < kRounds; ++round) {
      fill(mine, me == 0 ? 0 : static_cast<int>(me) + 100, round);
      EXPECT_EQ(op->start(), ErrCode::kOk);
      if (evens.contains(me)) {
        // Mid-flight agreement + shrink on the overlapping subset comm.
        const AgreeResult res = co_await comm_agree(
            ctx, evens, 0xF0ull | static_cast<std::uint64_t>(round));
        EXPECT_EQ(res.flags, 0xF0ull | static_cast<std::uint64_t>(round));
        EXPECT_EQ(res.failed, 0u);
        const Comm shrunk = comm_shrink(evens, 1ull << 4);
        EXPECT_EQ(shrunk.size(), evens.size() - 1);
        EXPECT_FALSE(shrunk.contains(4));
      }
      co_await op->wait();
      EXPECT_EQ(op->last_error(), ErrCode::kOk);
      // Everyone holds round-r bytes from the root.
      std::vector<std::byte> expect(static_cast<std::size_t>(kBytes));
      fill(expect, 0, round);
      EXPECT_EQ(mine, expect) << "rank " << me << " round " << round;
    }
  };
  engine.run(program);
}

TEST(CommFt, RecoveryFuzzSimEngineAcrossPerturbationSeeds) {
  topo::Machine machine = test_machine();
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    runtime::SimEngineOptions opts;
    if (seed != 0) {
      sim::PerturbConfig perturb;
      perturb.seed = seed;
      perturb.max_jitter = microseconds(2);
      opts.perturb = perturb;
    }
    SimEngine engine(machine, opts);
    run_recovery_fuzz(engine);
  }
}

TEST(CommFt, RecoveryFuzzThreadEngineFallbackAgree) {
  topo::Machine machine = test_machine();
  ThreadEngine engine(machine);
  run_recovery_fuzz(engine);
}

}  // namespace
}  // namespace adapt::mpi
