// The ThreadEngine runs the same rank programs as the SimEngine, but on real
// OS threads with real byte movement — these tests exercise the framework's
// concurrency for real (mailbox hand-off, rank-confined endpoints, coroutine
// resumption on owner threads).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <utility>

#include "src/coll/coll.hpp"
#include "src/coll/library.hpp"
#include "src/coll/topo_tree.hpp"
#include "src/runtime/thread_engine.hpp"
#include "src/support/rng.hpp"
#include "src/topo/presets.hpp"

namespace adapt::runtime {
namespace {

topo::Machine small_machine(int ranks) {
  static topo::MachineSpec spec = topo::cori(2);
  return topo::Machine(spec, ranks);
}

TEST(ThreadEngine, PingPong) {
  topo::Machine m = small_machine(2);
  ThreadEngine engine(m);
  std::vector<std::byte> ping(256), pong(256), got_ping(256), got_pong(256);
  ping.assign(256, std::byte(0x11));
  pong.assign(256, std::byte(0x22));
  auto program = [&](Context& ctx) -> sim::Task<> {
    if (ctx.rank() == 0) {
      co_await ctx.send(1, 1, mpi::ConstView{ping.data(), 256});
      co_await ctx.recv(1, 2, mpi::MutView{got_pong.data(), 256});
    } else {
      co_await ctx.recv(0, 1, mpi::MutView{got_ping.data(), 256});
      co_await ctx.send(0, 2, mpi::ConstView{pong.data(), 256});
    }
  };
  engine.run(program);
  EXPECT_EQ(std::memcmp(got_ping.data(), ping.data(), 256), 0);
  EXPECT_EQ(std::memcmp(got_pong.data(), pong.data(), 256), 0);
}

TEST(ThreadEngine, ManyConcurrentSendsComplete) {
  topo::Machine m = small_machine(8);
  ThreadEngine engine(m);
  std::atomic<int> received{0};
  auto program = [&](Context& ctx) -> sim::Task<> {
    const int kMsgs = 20;
    if (ctx.rank() == 0) {
      std::vector<mpi::RequestPtr> sends;
      for (int i = 0; i < kMsgs; ++i) {
        for (Rank r = 1; r < 8; ++r) {
          sends.push_back(ctx.isend(r, i, mpi::ConstView{nullptr, 64}));
        }
      }
      co_await mpi::wait_all(sends);
    } else {
      std::vector<mpi::RequestPtr> recvs;
      for (int i = 0; i < kMsgs; ++i) {
        recvs.push_back(ctx.irecv(0, i, mpi::MutView{nullptr, 64}));
      }
      co_await mpi::wait_all(recvs);
      received += kMsgs;
    }
  };
  engine.run(program);
  EXPECT_EQ(received.load(), 7 * 20);
}

TEST(ThreadEngine, BarrierSynchronises) {
  topo::Machine m = small_machine(8);
  ThreadEngine engine(m);
  const mpi::Comm world = mpi::Comm::world(8);
  std::atomic<int> entered{0};
  std::atomic<bool> violated{false};
  auto program = [&](Context& ctx) -> sim::Task<> {
    ++entered;
    co_await coll::barrier(ctx, world);
    if (entered.load() != 8) violated = true;
  };
  engine.run(program);
  EXPECT_FALSE(violated.load());
}

class ThreadEngineColl : public testing::TestWithParam<coll::Style> {};

TEST_P(ThreadEngineColl, BcastDeliversRealBytes) {
  const coll::Style style = GetParam();
  const int n = 12;
  topo::Machine m = small_machine(n);
  ThreadEngine engine(m);
  const mpi::Comm world = mpi::Comm::world(n);
  const coll::Tree tree = coll::build_topo_tree(m, world, 0);
  const Bytes bytes = 8192;
  Rng rng(4);
  std::vector<std::vector<std::byte>> bufs(
      static_cast<std::size_t>(n),
      std::vector<std::byte>(static_cast<std::size_t>(bytes)));
  for (auto& b : bufs[0]) b = std::byte(rng.next_below(256));
  auto program = [&](Context& ctx) -> sim::Task<> {
    auto& mine = bufs[static_cast<std::size_t>(ctx.rank())];
    co_await coll::bcast(ctx, world, mpi::MutView{mine.data(), bytes}, 0,
                         tree, style, coll::CollOpts{.segment_size = 1024});
  };
  engine.run(program);
  for (int r = 0; r < n; ++r) {
    ASSERT_EQ(std::memcmp(bufs[static_cast<std::size_t>(r)].data(),
                          bufs[0].data(), static_cast<std::size_t>(bytes)),
              0)
        << "rank " << r;
  }
}

TEST_P(ThreadEngineColl, ReduceMatchesSerialSum) {
  const coll::Style style = GetParam();
  const int n = 9;
  topo::Machine m = small_machine(n);
  ThreadEngine engine(m);
  const mpi::Comm world = mpi::Comm::world(n);
  const coll::Tree tree = coll::binomial_tree(n, 2);
  std::vector<std::vector<std::int64_t>> contrib(static_cast<std::size_t>(n));
  std::vector<std::int64_t> expected(64, 0);
  Rng rng(8);
  for (int r = 0; r < n; ++r) {
    auto& v = contrib[static_cast<std::size_t>(r)];
    v.resize(64);
    for (std::size_t i = 0; i < 64; ++i) {
      v[i] = rng.next_in(-100, 100);
      expected[i] += v[i];
    }
  }
  auto program = [&](Context& ctx) -> sim::Task<> {
    auto& mine = contrib[static_cast<std::size_t>(ctx.rank())];
    co_await coll::reduce(
        ctx, world,
        mpi::MutView{reinterpret_cast<std::byte*>(mine.data()), 512},
        mpi::ReduceOp::kSum, mpi::Datatype::kInt64, 2, tree, style,
        coll::CollOpts{.segment_size = 128});
  };
  engine.run(program);
  EXPECT_EQ(contrib[2], expected);
}

INSTANTIATE_TEST_SUITE_P(AllStyles, ThreadEngineColl,
                         testing::Values(coll::Style::kBlocking,
                                         coll::Style::kNonblocking,
                                         coll::Style::kAdapt),
                         [](const auto& param_info) {
                           return std::string(coll::style_name(param_info.param));
                         });

// ADAPT's event-driven pipelines (Alg. 3) under real threads, across the N/M
// flow-control corners: deep pipelines (many small segments), M > N (the
// intended configuration), and M < N (sends overrun posted receives, forcing
// the unexpected-message path on a live mailbox).
class ThreadEngineAdaptPipeline
    : public testing::TestWithParam<std::pair<int, int>> {};

TEST_P(ThreadEngineAdaptPipeline, DeepPipelineBcast) {
  const auto [n_out, m_out] = GetParam();
  const int n = 12;
  topo::Machine m = small_machine(n);
  ThreadEngine engine(m);
  const mpi::Comm world = mpi::Comm::world(n);
  const coll::Tree tree = coll::build_topo_tree(m, world, 2);
  const Bytes bytes = 16384;
  Rng rng(31);
  std::vector<std::vector<std::byte>> bufs(
      static_cast<std::size_t>(n),
      std::vector<std::byte>(static_cast<std::size_t>(bytes)));
  for (auto& b : bufs[2]) b = std::byte(rng.next_below(256));
  auto program = [&](Context& ctx) -> sim::Task<> {
    auto& mine = bufs[static_cast<std::size_t>(ctx.rank())];
    co_await coll::bcast(ctx, world, mpi::MutView{mine.data(), bytes}, 2,
                         tree, coll::Style::kAdapt,
                         coll::CollOpts{.segment_size = 256,  // 64 segments
                                        .outstanding_sends = n_out,
                                        .outstanding_recvs = m_out});
  };
  engine.run(program);
  for (int r = 0; r < n; ++r) {
    ASSERT_EQ(bufs[static_cast<std::size_t>(r)], bufs[2]) << "rank " << r;
  }
}

TEST_P(ThreadEngineAdaptPipeline, DeepPipelineReduce) {
  const auto [n_out, m_out] = GetParam();
  const int n = 10;
  topo::Machine m = small_machine(n);
  ThreadEngine engine(m);
  const mpi::Comm world = mpi::Comm::world(n);
  const coll::Tree tree = coll::build_topo_tree(m, world, 0);
  const std::size_t elems = 1024;  // 32 segments of 128 B
  std::vector<std::vector<std::int32_t>> contrib(static_cast<std::size_t>(n));
  std::vector<std::int32_t> expected(elems, 0);
  Rng rng(77);
  for (int r = 0; r < n; ++r) {
    auto& v = contrib[static_cast<std::size_t>(r)];
    v.resize(elems);
    for (std::size_t i = 0; i < elems; ++i) {
      v[i] = static_cast<std::int32_t>(rng.next_in(-500, 500));
      expected[i] += v[i];
    }
  }
  auto program = [&](Context& ctx) -> sim::Task<> {
    auto& mine = contrib[static_cast<std::size_t>(ctx.rank())];
    co_await coll::reduce(
        ctx, world,
        mpi::MutView{reinterpret_cast<std::byte*>(mine.data()),
                     static_cast<Bytes>(elems * 4)},
        mpi::ReduceOp::kSum, mpi::Datatype::kInt32, 0, tree,
        coll::Style::kAdapt,
        coll::CollOpts{.segment_size = 128,
                       .outstanding_sends = n_out,
                       .outstanding_recvs = m_out});
  };
  engine.run(program);
  EXPECT_EQ(contrib[0], expected);
}

INSTANTIATE_TEST_SUITE_P(
    FlowControl, ThreadEngineAdaptPipeline,
    testing::Values(std::pair<int, int>{1, 2}, std::pair<int, int>{2, 4},
                    std::pair<int, int>{4, 8}, std::pair<int, int>{3, 2}),
    [](const auto& param_info) {
      return "N" + std::to_string(param_info.param.first) + "M" +
             std::to_string(param_info.param.second);
    });

TEST(ThreadEngine, LibraryPersonalityRunsForReal) {
  const int n = 8;
  topo::Machine m = small_machine(n);
  ThreadEngine engine(m);
  const mpi::Comm world = mpi::Comm::world(n);
  auto lib = coll::make_library("ompi-adapt", m);
  std::vector<std::vector<std::byte>> bufs(
      static_cast<std::size_t>(n), std::vector<std::byte>(4096));
  bufs[3].assign(4096, std::byte(0x7E));
  auto program = [&](Context& ctx) -> sim::Task<> {
    auto& mine = bufs[static_cast<std::size_t>(ctx.rank())];
    co_await lib->bcast(ctx, world, mpi::MutView{mine.data(), 4096}, 3);
  };
  engine.run(program);
  for (int r = 0; r < n; ++r) {
    EXPECT_EQ(bufs[static_cast<std::size_t>(r)][4095], std::byte(0x7E));
  }
}

TEST(ThreadEngine, PropagatesProgramException) {
  topo::Machine m = small_machine(2);
  ThreadEngine engine(m);
  auto program = [&](Context& ctx) -> sim::Task<> {
    if (ctx.rank() == 1) throw Error("rank 1 exploded");
    co_return;
  };
  EXPECT_THROW(engine.run(program), Error);
}

TEST(ThreadEngine, ComputeAdvancesClock) {
  topo::Machine m = small_machine(1);
  ThreadEngine engine(m);
  TimeNs elapsed = 0;
  auto program = [&](Context& ctx) -> sim::Task<> {
    const TimeNs t0 = ctx.now();
    co_await ctx.compute(milliseconds(2));
    elapsed = ctx.now() - t0;
  };
  engine.run(program);
  EXPECT_GE(elapsed, milliseconds(2));
}

}  // namespace
}  // namespace adapt::runtime
