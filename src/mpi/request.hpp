// Communication requests.
//
// A Request tracks one nonblocking P2P operation. Two completion mechanisms
// coexist, mirroring Open MPI's layering as the paper describes (§2.2.1):
//
//  * `set_completion_cb` — the low-level hook "below MPI_Isend/MPI_Irecv"
//    that the ADAPT collectives attach their event callbacks to
//    (set_Isend_cb / set_Irecv_cb in the paper's Figure 4);
//  * `wait()`-style coroutine awaiting (src/mpi/p2p.hpp) — the MPI_Wait /
//    MPI_Waitall semantics the blocking and nonblocking baselines use, built
//    on top of the same completion event.
#pragma once

#include <functional>
#include <memory>

#include "src/mpi/errors.hpp"
#include "src/sim/task.hpp"
#include "src/support/units.hpp"

namespace adapt::mpi {

class Request;
class RankExecutor;  // endpoint.hpp
using RequestPtr = std::shared_ptr<Request>;
using RequestCallback = std::function<void(Request&)>;

class Request {
 public:
  enum class Kind { kSend, kRecv };

  Request(Kind kind, Rank peer, Tag tag, Bytes size,
          RankExecutor* owner_exec = nullptr)
      : kind_(kind), peer_(peer), tag_(tag), size_(size),
        owner_exec_(owner_exec) {}

  /// Executor of the owning rank's main thread; wait() wakes coroutines
  /// through it (completion callbacks fire in the progress context instead).
  RankExecutor* owner_exec() const { return owner_exec_; }

  Kind kind() const { return kind_; }
  Rank peer() const { return peer_; }       ///< dst for sends, src for recvs
  Tag tag() const { return tag_; }
  Bytes size() const { return size_; }
  bool complete() const { return complete_; }

  /// Error code set at completion; kOk for successful operations. A failed
  /// request is complete (callbacks fire, waiters wake) but carries no data.
  ErrCode error() const { return error_; }
  bool failed() const { return error_ != ErrCode::kOk; }

  // Filled in at completion of a receive (meaningful with wildcards).
  Rank actual_src() const { return actual_src_; }
  Tag actual_tag() const { return actual_tag_; }
  Bytes actual_size() const { return actual_size_; }

  /// Attaches the event callback fired at completion. If the request already
  /// completed, the callback runs immediately. At most one callback.
  void set_completion_cb(RequestCallback cb) {
    ADAPT_CHECK(!on_complete_) << "completion callback already set";
    if (complete_) {
      cb(*this);
    } else {
      on_complete_ = std::move(cb);
    }
  }

  /// Awaitable completion event (used by wait/wait_all).
  sim::Trigger& done() { return done_; }

  /// Runtime-internal: marks completion, fires the callback, wakes waiters.
  /// A no-op on a request that already failed (e.g. a transport completion
  /// racing a poison); completing the same request successfully twice is
  /// still a hard error.
  void mark_complete(Rank actual_src = kAnyRank, Tag actual_tag = kAnyTag,
                     Bytes actual_size = -1) {
    if (complete_) {
      ADAPT_CHECK(failed()) << "request completed twice";
      return;
    }
    complete_ = true;
    actual_src_ = actual_src == kAnyRank ? peer_ : actual_src;
    actual_tag_ = actual_tag == kAnyTag ? tag_ : actual_tag;
    actual_size_ = actual_size < 0 ? size_ : actual_size;
    notify();
  }

  /// Runtime-internal: completes the request with an error. Idempotent, and a
  /// no-op on an already-successful request — whichever outcome lands first
  /// wins, mirroring MPI's "completion is final" rule.
  void mark_failed(ErrCode code) {
    ADAPT_CHECK(code != ErrCode::kOk) << "mark_failed needs a nonzero code";
    if (complete_) return;
    complete_ = true;
    error_ = code;
    actual_src_ = peer_;
    actual_tag_ = tag_;
    actual_size_ = 0;
    notify();
  }

 private:
  void notify() {
    if (on_complete_) {
      auto cb = std::move(on_complete_);
      on_complete_ = nullptr;
      cb(*this);
    }
    done_.fire();
  }

  Kind kind_;
  Rank peer_;
  Tag tag_;
  Bytes size_;
  RankExecutor* owner_exec_ = nullptr;
  bool complete_ = false;
  ErrCode error_ = ErrCode::kOk;
  Rank actual_src_ = kAnyRank;
  Tag actual_tag_ = kAnyTag;
  Bytes actual_size_ = 0;
  RequestCallback on_complete_;
  sim::Trigger done_;
};

}  // namespace adapt::mpi
