file(REMOVE_RECURSE
  "../bench/table1_asp"
  "../bench/table1_asp.pdb"
  "CMakeFiles/table1_asp.dir/table1_asp.cpp.o"
  "CMakeFiles/table1_asp.dir/table1_asp.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_asp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
