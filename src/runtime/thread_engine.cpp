#include "src/runtime/thread_engine.hpp"

#include <atomic>
#include <chrono>
#include <functional>

#include "src/support/error.hpp"
#include "src/support/log.hpp"
#include "src/tune/plan_cache.hpp"

namespace adapt::runtime {

using Clock = std::chrono::steady_clock;

// ---------------------------------------------------------------- Mailbox ---

/// Single-consumer work queue: the owning rank thread drains it; any thread
/// may enqueue. Everything a rank does after startup happens through here,
/// which confines Endpoint state to its owner thread.
class ThreadEngine::Mailbox final : public mpi::RankExecutor {
 public:
  explicit Mailbox(const ThreadEngine& engine) : engine_(engine) {}

  TimeNs now() const override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               Clock::now() - engine_.epoch_)
        .count();
  }

  void post(std::function<void()> fn, TimeNs cpu_cost) override {
    enqueue(std::move(fn), cpu_cost);
  }
  void post_progress(std::function<void()> fn, TimeNs cpu_cost) override {
    enqueue(std::move(fn), cpu_cost);
  }
  void charge(TimeNs /*cpu_cost*/) override {}  // real work costs real time

  void enqueue(std::function<void()> fn, TimeNs /*cpu_cost*/) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.push_back(std::move(fn));
    }
    cv_.notify_one();
  }

  /// Drains tasks until `stop` becomes true (checked between tasks).
  void drain_until(const std::atomic<bool>& stop) {
    while (true) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [&] { return !queue_.empty() || stop.load(); });
        if (queue_.empty() && stop.load()) return;
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
    }
  }

  void wake() { cv_.notify_one(); }

 private:
  const ThreadEngine& engine_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
};

// ---------------------------------------------------------- ThreadContext ---

class ThreadEngine::ThreadContext final : public Context {
 public:
  ThreadContext(ThreadEngine& engine, Rank rank, Mailbox& mailbox)
      : engine_(engine), rank_(rank), mailbox_(mailbox) {}

  Rank rank() const override { return rank_; }
  int nranks() const override { return engine_.machine_.nranks(); }
  TimeNs now() const override { return mailbox_.now(); }
  mpi::Endpoint& endpoint() override {
    return *engine_.endpoints_[static_cast<std::size_t>(rank_)];
  }
  const topo::Machine& machine() const override { return engine_.machine_; }
  support::BufferPool* pool() override { return &engine_.pool_; }
  tune::PlanCache* plan_cache() override { return engine_.plan_cache_.get(); }

  sim::Task<> compute(TimeNs cost) override {
    ADAPT_CHECK(cost >= 0);
    // Busy-spin on the rank's own thread: compute really occupies the CPU.
    const TimeNs until = now() + cost;
    while (now() < until) {
    }
    co_return;
  }

  void defer(TimeNs cpu_cost, std::function<void()> fn) override {
    mailbox_.enqueue(
        [this, cpu_cost, fn = std::move(fn)] {
          const TimeNs until = now() + cpu_cost;
          while (now() < until) {
          }
          fn();
        },
        0);
  }

  void defer_progress(TimeNs cpu_cost, std::function<void()> fn) override {
    defer(cpu_cost, std::move(fn));
  }

  sim::Task<> sleep_for(TimeNs duration) override {
    ADAPT_CHECK(duration >= 0);
    std::this_thread::sleep_for(std::chrono::nanoseconds(duration));
    co_return;
  }

 private:
  ThreadEngine& engine_;
  Rank rank_;
  Mailbox& mailbox_;
};

// -------------------------------------------------------- ThreadTransport ---

class ThreadEngine::ThreadTransport final : public mpi::Transport {
 public:
  explicit ThreadTransport(ThreadEngine& engine) : engine_(engine) {}

  void submit(mpi::Envelope env, MemSpace /*src*/, MemSpace /*dst*/,
              std::function<void()> on_sent,
              std::function<void(mpi::ErrCode)> /*on_failed*/) override {
    // In-process hand-off never loses a message, so on_failed never fires.
    const Rank src = env.src;
    const Rank dst = env.dst;
    // Eager hand-off: the receiver's thread matches and copies; the sender
    // completes as soon as the receiver accepted the envelope.
    engine_.mailboxes_[static_cast<std::size_t>(dst)]->enqueue(
        [this, dst, env = std::move(env), src,
         on_sent = std::move(on_sent)]() mutable {
          engine_.endpoints_[static_cast<std::size_t>(dst)]->deliver(
              std::move(env));
          engine_.mailboxes_[static_cast<std::size_t>(src)]->enqueue(
              std::move(on_sent), 0);
        },
        0);
  }

 private:
  ThreadEngine& engine_;
};

// ------------------------------------------------------------ ThreadEngine ---

ThreadEngine::ThreadEngine(const topo::Machine& machine)
    : machine_(machine), epoch_(Clock::now()) {
  const int n = machine_.nranks();
  transport_ = std::make_unique<ThreadTransport>(*this);
  plan_cache_ = std::make_unique<tune::PlanCache>();
  for (Rank r = 0; r < n; ++r) {
    mailboxes_.push_back(std::make_unique<Mailbox>(*this));
    endpoints_.push_back(std::make_unique<mpi::Endpoint>(
        r, n, *mailboxes_.back(), *transport_, mpi::EndpointCosts{}));
    endpoints_.back()->set_pool(&pool_);
    contexts_.push_back(
        std::make_unique<ThreadContext>(*this, r, *mailboxes_.back()));
  }
}

ThreadEngine::~ThreadEngine() = default;

RunResult ThreadEngine::run(const RankProgram& program) {
  const int n = machine_.nranks();
  RunResult result;
  result.rank_finish.assign(static_cast<std::size_t>(n), 0);
  std::vector<std::unique_ptr<std::atomic<bool>>> done;
  done.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    done.push_back(std::make_unique<std::atomic<bool>>(false));
  std::atomic<bool> failed{false};
  std::exception_ptr failure;
  std::mutex failure_mutex;

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  for (Rank r = 0; r < n; ++r) {
    threads.emplace_back([&, r] {
      auto& mailbox = *mailboxes_[static_cast<std::size_t>(r)];
      auto& flag = *done[static_cast<std::size_t>(r)];
      // Everything this rank logs carries its rank + engine-relative time.
      ScopedLogContext log_ctx(
          r,
          [](const void* arg) -> std::int64_t {
            return static_cast<const Mailbox*>(arg)->now();
          },
          &mailbox);
      // Start the rank program from inside the loop thread so the coroutine
      // is owned (and only ever resumed) by this thread.
      mailbox.enqueue(
          [&] {
            sim::run_detached(
                program(*contexts_[static_cast<std::size_t>(r)]),
                [&](std::exception_ptr ep) {
                  if (ep) {
                    std::lock_guard<std::mutex> lock(failure_mutex);
                    if (!failure) failure = ep;
                    failed.store(true);
                  }
                  result.rank_finish[static_cast<std::size_t>(r)] =
                      mailbox.now();
                  flag.store(true);
                  mailbox.wake();
                });
          },
          0);
      mailbox.drain_until(flag);
    });
  }
  for (auto& t : threads) t.join();
  if (failure) std::rethrow_exception(failure);
  result.total_time =
      *std::max_element(result.rank_finish.begin(), result.rank_finish.end());
  return result;
}

}  // namespace adapt::runtime
