// Differential conformance harness (the correctness backstop).
//
// The paper's central claim is that event-driven collectives deliver
// identical results no matter *when* their callbacks fire. This subsystem
// tests exactly that: every collective × algorithm style × library
// personality × datatype/op × communicator subset is run on
//
//   * the SimEngine under its default bit-reproducible schedule,
//   * the SimEngine under many seeded schedule perturbations
//     (sim::PerturbConfig: randomized tie-breaking + bounded delivery
//     jitter — hundreds of distinct-but-legal completion orders), and
//   * the ThreadEngine (real threads, real races),
//
// and every run's payload bytes are diffed against a sequential oracle.
// A mismatch is reported as a one-line reproducer (`repro` field) that
// parse_repro() turns back into the exact failing case + schedule, after
// an automatic shrink pass minimised it.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/coll/coll.hpp"
#include "src/coll/moreops.hpp"
#include "src/mpi/datatype.hpp"
#include "src/mpi/op.hpp"
#include "src/sim/event_queue.hpp"
#include "src/support/units.hpp"

namespace adapt::obs {
class Recorder;
}  // namespace adapt::obs

namespace adapt::verify {

/// Which engine executes a run. kSharded is the conservative-lookahead
/// sharded engine (runtime/sharded_engine.hpp): stable schedule only (its
/// keyed event order is incompatible with perturbation), no chaos, no
/// persistent rows — its job in the matrix is proving the sharded runtime
/// produces byte-identical collective results for any shard count.
enum class EngineKind { kSim, kThread, kSharded };

/// The operations the matrix covers. kLibBcast/kLibReduce run a library
/// personality (CaseConfig::library) end to end instead of a raw style.
enum class Collective {
  kBcast,
  kReduce,
  kAllreduce,
  kScatter,
  kGather,
  kAllgather,
  kBarrier,
  kLibBcast,
  kLibReduce,
};

/// Communicator shapes, derived from the world size: the full world, the
/// even global ranks, or the contiguous middle slice [2, world - 2).
enum class CommKind { kWorld, kEven, kSlice };

/// Tree shapes for the tree-based collectives. kHan is the fused two-level
/// HAN tree (coll/han.hpp) — meaningful on ppn rows, where the machine has a
/// first-class SHM channel for the intra-node level.
enum class TreeChoice { kTopo, kBinomial, kChain, kHan };

/// Rank→core placements for ppn rows. The scrambled maps are the regression
/// shapes two-level designs historically get wrong: kReversed and kStrided
/// both split rank-adjacent pairs across nodes, kRandom draws a seeded
/// Fisher-Yates permutation from the case's data_seed. kDense is the
/// identity placement every non-ppn row implicitly uses.
enum class RankMap { kDense, kReversed, kStrided, kRandom };

/// Deliberately seeded bugs, used to prove the harness catches what it
/// claims to catch (see faulty.hpp). Production runs use kNone.
enum class Fault {
  kNone,
  /// Gather whose root assumes wildcard-source arrivals come in rank order —
  /// true under the stable schedule, false under perturbation.
  kGatherArrivalOrder,
  /// Runs a chaos case with the reliability protocol DISABLED: the seed's
  /// perfect-delivery protocols meet a lossy fabric. The chaos classifier
  /// must catch the result (corrupted payloads delivered as success, hangs,
  /// one-sided errors) — proving it can see a protocol that does not
  /// retransmit. Chaos runs only; ignored without a chaos class.
  kNoRetransmit,
};

/// Fault-schedule intensity class for chaos runs. kSoft draws drop/corrupt/
/// delay probabilities and one link outage from chaos_seed; kKill adds a
/// permanent rank death. kOff = a plain conformance run (the default).
enum class ChaosClass { kOff, kSoft, kKill };

const char* engine_name(EngineKind engine);
const char* collective_name(Collective collective);
const char* comm_name(CommKind comm);
const char* tree_name(TreeChoice tree);
const char* rankmap_name(RankMap map);
const char* fault_name(Fault fault);
const char* chaos_name(ChaosClass chaos);

/// One cell of the conformance matrix, engine-agnostic.
struct CaseConfig {
  Collective collective = Collective::kBcast;
  coll::Style style = coll::Style::kAdapt;  ///< tree collectives only
  std::string library;                      ///< kLibBcast/kLibReduce only
  coll::AllgatherAlgo ag_algo = coll::AllgatherAlgo::kRing;
  mpi::Datatype dtype = mpi::Datatype::kUint8;
  mpi::ReduceOp op = mpi::ReduceOp::kSum;
  int world = 8;                   ///< engine rank count
  CommKind comm = CommKind::kWorld;
  Rank root = 0;                   ///< local rank within the communicator
  /// Message size: total bytes for bcast/reduce/allreduce, per-rank block
  /// for scatter/gather/allgather, ignored for barrier.
  Bytes bytes = 512;
  Bytes segment = 128;             ///< pipeline granularity
  int n_out = 2;                   ///< ADAPT N (outstanding sends per child)
  int m_out = 4;                   ///< ADAPT M (posted receives per parent)
  TreeChoice tree = TreeChoice::kTopo;
  /// > 0: the case runs on a topo::han_cluster machine of
  /// ceil(world / ppn) single-socket nodes × ppn cores — the first-class
  /// SHM channel enabled — with `rankmap` choosing the rank→core placement.
  /// 0 (default): the legacy dual-socket cori(2) machine, dense placement.
  int ppn = 0;
  RankMap rankmap = RankMap::kDense;
  std::uint64_t data_seed = 1;     ///< payload-content seed
  /// Persistent-collective row (bcast/reduce/allreduce/barrier only): the
  /// handle is init'ed ONCE, then start/wait replays `starts` rounds. Round
  /// r refills the bound buffers with payloads drawn from data_seed + r and
  /// is diffed against its own oracle — proving the cached schedule is
  /// correct for every round, not just the first. kTopo rows take the
  /// engine plan-cache path; kBinomial/kChain pin an explicit tree.
  bool persistent = false;
  int starts = 3;      ///< start/wait rounds per persistent run
  /// > 0: partitioned persistent op — every rank declares its round data
  /// ready piece-wise via pready(p) in a seeded (deterministically shuffled,
  /// usually out-of-order) partition order after each start.
  int partitions = 0;
};

/// One schedule of one case. perturb_seed 0 = the default stable schedule
/// (jitter is then ignored); any other seed enables sim::PerturbConfig with
/// that seed. ThreadEngine runs ignore both (its nondeterminism is real).
///
/// chaos != kOff turns the run into a chaos-conformance run (SimEngine
/// only): the fault schedule derived from (chaos, chaos_seed) is injected
/// into the fabric, the fault-tolerant reliability protocol is enabled
/// (unless Fault::kNoRetransmit), and the acceptance criterion widens from
/// "byte-exact" to "byte-exact OR one consistent error code on every live
/// rank before the watchdog" (see run_case).
struct RunSpec {
  EngineKind engine = EngineKind::kSim;
  std::uint64_t perturb_seed = 0;
  TimeNs jitter = 0;
  ChaosClass chaos = ChaosClass::kOff;
  std::uint64_t chaos_seed = 0;
  /// Chaos watchdog cascade (virtual time; chaos runs only). Local
  /// detection fires first: any rank still holding pending requests is
  /// presumed partitioned and initiates a job-wide abort. Quiesce gives
  /// late abort floods time to land before a rank's outcome is judged. The
  /// bomb is the backstop: a rank still unfinished then is stamped
  /// kErrWatchdog, which the classifier always treats as a failure — the
  /// runtime should have detected the fault itself. Recovery rows raise
  /// these (a revoke/agree/shrink/retry cascade legitimately runs past the
  /// fail-stop defaults).
  TimeNs wd_detect = milliseconds(200);
  TimeNs wd_quiesce = milliseconds(300);
  TimeNs wd_bomb = milliseconds(400);
  /// Worker shards for kSharded runs (clamped by the engine to the machine's
  /// block count); ignored by the other engines.
  int shards = 1;
};

/// Members of the case's communicator as global ranks of `world`.
std::vector<Rank> comm_members(CommKind comm, int world);

/// Self-contained one-line reproducer, parseable by parse_repro.
std::string repro_string(const CaseConfig& config, const RunSpec& spec,
                         Fault fault = Fault::kNone);

/// Parses a repro_string line. Returns false (and leaves outputs untouched)
/// on malformed input.
bool parse_repro(const std::string& line, CaseConfig* config, RunSpec* spec,
                 Fault* fault);

/// Runs one case under one schedule and diffs the result against the
/// sequential oracle. Returns nullopt on success, a human-readable mismatch
/// description on failure. Throws only on harness misuse (bad config).
/// A non-null `recorder` observes the run (SimEngine runs only; the
/// ThreadEngine ignores it) — pair with a parsed repro line to attach a
/// full virtual-time trace to any failure.
std::optional<std::string> run_case(
    const CaseConfig& config, const RunSpec& spec, Fault fault = Fault::kNone,
    std::shared_ptr<obs::Recorder> recorder = nullptr);

/// Greedily shrinks a failing case (fewer bytes, coarser pipeline, fewer
/// ranks) while it keeps failing under `spec`; returns the smallest failing
/// config found within a bounded number of re-runs.
CaseConfig shrink_case(const CaseConfig& config, const RunSpec& spec,
                       Fault fault = Fault::kNone);

struct Failure {
  CaseConfig config;   ///< already shrunk when MatrixOptions::shrink is set
  RunSpec spec;
  std::string detail;  ///< first mismatching rank/byte
  std::string repro;   ///< repro_string(config, spec, fault)
  /// Perfetto trace of the shrunken failure, written when the matrix ran
  /// with a trace_dir; empty otherwise (or when the re-run could not be
  /// traced — e.g. a ThreadEngine failure).
  std::string trace_path;
};

struct Report {
  int cases = 0;
  long runs = 0;
  std::vector<Failure> failures;
  bool ok() const { return failures.empty(); }
  std::string summary() const;
};

struct MatrixOptions {
  int sim_seeds = 20;       ///< perturbation seeds per case (plus seed-0 run)
  TimeNs max_jitter = microseconds(5);
  bool thread_engine = true;
  bool shrink = true;       ///< minimise failing cases before reporting
  Fault fault = Fault::kNone;
  /// Worker threads running cases concurrently (1 = sequential). Every case
  /// is an independent deterministic run, so the report is identical for any
  /// jobs value — failures are merged in case order, and shrinking/tracing
  /// replay deterministically. Progress log lines may interleave.
  int jobs = 1;
  /// Progress/failure sink (e.g. stderr); null = silent.
  std::function<void(const std::string&)> log;
  /// Called with the repro line of every run just before it starts — the
  /// driver's wall-clock watchdog publishes this so a hung run can still be
  /// reported with an exact reproducer.
  std::function<void(const std::string&)> on_run;
  /// When non-empty, every (shrunken) failure is re-run once with a trace
  /// recorder and a Perfetto JSON written to this directory (created on
  /// demand); Failure::trace_path names the file.
  std::string trace_dir;
  /// > 0: every eligible case (non-persistent, non-partitioned) also runs on
  /// the sharded engine under the stable schedule, at 1 shard and at this
  /// many shards — certifying that partitioning the event core across
  /// threads cannot change a collective's bytes. 0 (default) adds no
  /// sharded rows.
  int sharded_shards = 0;
};

/// The full conformance matrix: every collective × style × personality ×
/// datatype/op × communicator subset the harness certifies.
std::vector<CaseConfig> full_matrix();

/// Runs every case on the SimEngine (stable schedule + sim_seeds
/// perturbations) and the ThreadEngine, diffing each run against the oracle.
Report run_matrix(const std::vector<CaseConfig>& cases,
                  const MatrixOptions& options);

/// Re-runs one (shrunken) failing case with a trace recorder and writes
/// `failure-<index>.trace.json` under trace_dir (created on demand).
/// Returns the path, or "" when the run cannot be traced (ThreadEngine) or
/// the file cannot be written. Exposed so drivers can trace a parsed
/// --repro line too.
std::string write_failure_trace(const CaseConfig& config, const RunSpec& spec,
                                Fault fault, const std::string& trace_dir,
                                int index);

namespace detail {

/// Shared engine of run_matrix / run_chaos_matrix: runs every case's spec
/// list (first failure per case wins, shrunk when asked), fanning cases
/// across `jobs` workers via support::parallel_for. Failures are collected
/// per case and merged in case order, then traced sequentially — so the
/// Report (order, contents, trace file names) is identical for every jobs
/// value.
struct MatrixDriver {
  int jobs = 1;
  Fault fault = Fault::kNone;
  bool shrink = true;
  std::string trace_dir;
  std::function<void(const std::string&)> log;
  std::function<void(const std::string&)> on_run;
  const char* progress_label = "matrix";
  int progress_every = 20;
};

Report run_case_matrix(
    const std::vector<CaseConfig>& cases,
    const std::function<std::vector<RunSpec>(const CaseConfig&)>& specs_for,
    const MatrixDriver& driver);

}  // namespace detail

}  // namespace adapt::verify
