// Noise study: watch the paper's central claim happen.
//
// Runs the same 4 MB broadcast on a simulated 256-rank cluster with the three
// implementation styles (blocking / nonblocking+Waitall / ADAPT event-driven)
// over the SAME topology-aware tree, sweeping injected noise, and prints how
// much each design amplifies it (§2's analysis, Fig. 7's experiment at
// example scale).
//
//   ./noise_study [--ranks 256] [--msg BYTES] [--iters 12]
#include <iostream>
#include <string>

#include "src/bench/imb.hpp"
#include "src/coll/coll.hpp"
#include "src/coll/topo_tree.hpp"
#include "src/runtime/sim_engine.hpp"
#include "src/support/table.hpp"
#include "src/topo/presets.hpp"

using namespace adapt;

int main(int argc, char** argv) {
  int ranks = 256;
  Bytes msg = mib(4);
  int iters = 64;  // the loop must span several 100 ms noise periods
  for (int i = 1; i + 1 < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--ranks") ranks = std::atoi(argv[i + 1]);
    if (arg == "--msg") msg = std::atoll(argv[i + 1]);
    if (arg == "--iters") iters = std::atoi(argv[i + 1]);
  }

  topo::Machine machine(topo::cori((ranks + 31) / 32), ranks);
  const mpi::Comm world = mpi::Comm::world(ranks);
  const coll::Tree tree = coll::build_topo_tree(machine, world, 0);

  std::cout << "Same tree, same message (" << format_bytes(msg) << ", "
            << ranks << " ranks) — only the synchronisation style differs.\n"
            << "Noise: uniform bursts at 10 Hz on every rank's application "
               "thread.\n\n";

  Table table({"style", "no-noise(ms)", "5%-noise(ms)", "10%-noise(ms)",
               "amplification@10%"});
  for (coll::Style style : {coll::Style::kBlocking, coll::Style::kNonblocking,
                            coll::Style::kAdapt}) {
    double results[3];
    int idx = 0;
    for (int duty : {0, 5, 10}) {
      runtime::SimEngineOptions options;
      options.noise = noise::paper_noise(duty, 0xBEEF + duty);
      runtime::SimEngine engine(machine, options);
      mpi::MutView buffer{nullptr, msg};
      auto fn = [&](runtime::Context& ctx, int) -> sim::Task<> {
        co_await coll::bcast(ctx, world, buffer, 0, tree, style,
                             coll::CollOpts{.segment_size = kib(128)});
      };
      results[idx++] =
          bench::measure_throughput(engine, world, fn,
                                    {.warmup = 1, .iterations = iters})
              .avg_ms();
    }
    char c0[32], c1[32], c2[32], amp[32];
    std::snprintf(c0, sizeof c0, "%.3f", results[0]);
    std::snprintf(c1, sizeof c1, "%.3f", results[1]);
    std::snprintf(c2, sizeof c2, "%.3f", results[2]);
    // Amplification: extra time relative to the injected duty itself.
    std::snprintf(amp, sizeof amp, "%.1fx",
                  (results[2] / results[0] - 1.0) / 0.10);
    table.add_row({coll::style_name(style), c0, c1, c2, amp});
  }
  table.print(std::cout);
  std::cout << "\nAn amplification of 1x means the design only loses the CPU "
               "time the noise actually stole;\nlarger values mean "
               "synchronisation dependencies propagated the delays (§2.1).\n";
  return 0;
}
