#include "src/noise/noise.hpp"

#include "src/support/error.hpp"
#include "src/support/rng.hpp"

namespace adapt::noise {

UniformBurstNoise::UniformBurstNoise(TimeNs max_duration, double freq_hz,
                                     std::uint64_t seed, bool synchronized)
    : max_duration_(max_duration),
      period_(static_cast<TimeNs>(1e9 / freq_hz)),
      seed_(seed),
      synchronized_(synchronized) {
  ADAPT_CHECK(max_duration >= 0);
  ADAPT_CHECK(freq_hz > 0.0);
  // A burst must fit inside its own period (phase <= P/2, duration <= P/2),
  // so bursts of consecutive periods never overlap and next_free needs to
  // examine a single period.
  ADAPT_CHECK(max_duration_ <= period_ / 2)
      << "burst duration " << max_duration_ << " exceeds half period "
      << period_;
}

std::pair<TimeNs, TimeNs> UniformBurstNoise::burst(Rank r, std::int64_t k)
    const {
  if (k < 0) return {0, 0};
  // Stateless derivation: hash (seed, rank, period index); the phase hash
  // drops the rank when bursts are cluster-synchronized.
  SplitMix64 sm(seed_ ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(r + 1)) ^
                (0xd1b54a32d192ed03ULL * static_cast<std::uint64_t>(k + 1)));
  SplitMix64 sm_phase(seed_ ^
                      (0xd1b54a32d192ed03ULL * static_cast<std::uint64_t>(k + 1)));
  const std::uint64_t r1 = sm.next();
  const std::uint64_t h2 = sm.next();
  const std::uint64_t h1 = synchronized_ ? sm_phase.next() : r1;
  const TimeNs phase =
      static_cast<TimeNs>(h1 % static_cast<std::uint64_t>(period_ / 2 + 1));
  const TimeNs duration =
      max_duration_ > 0
          ? static_cast<TimeNs>(h2 % static_cast<std::uint64_t>(max_duration_))
          : 0;
  const TimeNs start = k * period_ + phase;
  return {start, start + duration};
}

TimeNs UniformBurstNoise::next_free(Rank r, TimeNs t) const {
  if (t < 0) t = 0;
  const std::int64_t k = t / period_;
  const auto [start, end] = burst(r, k);
  if (t >= start && t < end) return end;
  return t;
}

double UniformBurstNoise::duty() const {
  // Mean burst duration is max/2 per period.
  return static_cast<double>(max_duration_) / 2.0 /
         static_cast<double>(period_);
}

std::shared_ptr<NoiseModel> paper_noise(int duty_percent, std::uint64_t seed) {
  ADAPT_CHECK(duty_percent >= 0);
  if (duty_percent == 0) return std::make_shared<NoNoise>();
  // duty% at 10 Hz: mean burst = duty% of 100 ms, max = twice the mean.
  // The paper injects independently per process ("randomly ... following a
  // uniform distribution"), so phases are per-rank here.
  const TimeNs max_duration = milliseconds(2.0 * duty_percent);
  return std::make_shared<UniformBurstNoise>(max_duration, 10.0, seed,
                                             /*synchronized=*/false);
}

}  // namespace adapt::noise
