// ULFM-style recovery layer: failure detection, notification, agreement.
//
// PR 2 gave the runtime *clean failure*: retry exhaustion poisons the origin
// endpoint and an unconditional kAbort flood turns one dead rank into a
// job-wide uniform error. This header is the opposite policy, opt-in via
// SimEngineOptions::recovery — failures become *events a program can survive*:
//
//   * detection   — every reliable-channel give-up (collective traffic,
//     protocol frames, heartbeats) reports the unreachable peer as a suspect;
//     ring heartbeats (kPing frames, armed only while a self-healing wrapper
//     holds interest) cover silently-dead ranks nobody happens to send to,
//     e.g. a dead bcast root that only *receives*.
//   * notification — a new suspect is gossiped job-wide as a kFailNotice
//     flood, idempotent per (observer, failed rank). Receipt poisons the local
//     endpoint (kErrProcFailed) so ranks wedged inside a collective whose peer
//     died unwind into their retry wrapper instead of hanging; the recovery
//     wrappers re-arm the endpoint with Endpoint::clear_poison.
//   * agreement   — MPIX_Comm_agree over a communicator's surviving members:
//     the lowest-ranked survivor coordinates, participants contribute
//     (flags, failed-view), the coordinator decides exactly once (AND of
//     flags, OR of views) and answers every contribution — including late
//     ones after it decided — with the frozen result. The protocol is an
//     *engine-level* state machine fed by kAgree frames in the transport, not
//     posted receives: it keeps serving after the rank's coroutine moved on,
//     restarts toward a new coordinator when the current one is declared
//     failed, and self-excludes a rank that finds itself in the failed view.
//   * revocation  — comm_revoke floods kRevoke(fingerprint); receipt is
//     idempotent per (rank, fingerprint) and poisons only a rank with pending
//     requests (kErrRevoked), so idle ranks are untouched.
//
// Determinism: all floods iterate ranks in ascending order, coordinator
// election is "lowest surviving rank", and the decision folds are order-
// insensitive (AND / OR) — the same seed yields the same agreed failure set,
// membership, and trace on every run.
//
// Known limitation (documented in DESIGN.md §13): if a coordinator dies
// *after* delivering its result to a strict subset of survivors, the new
// coordinator may re-decide with a larger failed view than the subset saw.
// Closing that window needs ERA's full two-phase commit; the recovery chaos
// matrix (single early death, detection long before any agreement starts)
// cannot produce it.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "src/mpi/reliable.hpp"
#include "src/sim/task.hpp"
#include "src/support/units.hpp"

namespace adapt::runtime {

class SimEngine;

struct RecoveryOptions {
  /// Ring-heartbeat period while any self-healing wrapper holds interest.
  TimeNs heartbeat_period = microseconds(500);
  /// Collective issues a self-healing wrapper attempts before giving up.
  int max_attempts = 4;
  /// Virtual-time backoff before retry k is backoff_base * backoff^(k-2).
  TimeNs backoff_base = microseconds(200);
  double backoff = 2.0;
  /// Deadline for eventually-consistent collectives: whoever's contribution
  /// arrives within the bound is folded; the rest is dropped.
  TimeNs staleness_bound = milliseconds(30);
};

/// comm_agree outcome (see mpi::comm_agree for the user-facing wrapper).
struct AgreeOutcome {
  std::uint64_t flags = 0;   ///< bitwise AND over live participants
  std::uint64_t failed = 0;  ///< agreed failure set (global-rank bitmask)
  bool excluded = false;     ///< this rank itself was declared failed
};

/// Per-rank recovery facade, reached through Context::recovery() (null when
/// the engine runs without recovery — callers degrade to PR 2 semantics).
class Recovery {
 public:
  virtual ~Recovery() = default;

  virtual const RecoveryOptions& options() const = 0;

  /// This rank's current failed view (global-rank bitmask). Monotonic.
  virtual std::uint64_t failed_mask() const = 0;
  bool is_failed(Rank r) const { return (failed_mask() >> r) & 1u; }

  /// Declares `peer` failed from local evidence; gossips job-wide.
  virtual void report_failure(Rank peer) = 0;

  /// Re-arms this rank's endpoint after a recovery round. Terminal poisons
  /// (kErrWatchdog) stay — only failure/revocation poisons are resettable.
  virtual void clear_poison() = 0;

  /// Heartbeat interest, acquired by self-healing wrappers for the duration
  /// of the guarded operation (RAII: see coll::selfheal). While held, this
  /// rank pings its nearest live ring successor every heartbeat_period.
  virtual void acquire_heartbeats() = 0;
  virtual void release_heartbeats() = 0;

  /// Poison shield: while held, failure notices do NOT poison this rank's
  /// endpoint. Eventually-consistent collectives hold it — their staleness
  /// deadline bounds them, so they want surviving peers' traffic to keep
  /// flowing instead of being unblocked-by-poison like the exact wrappers.
  virtual void acquire_poison_shield() = 0;
  virtual void release_poison_shield() = 0;

  /// Floods a communicator revocation (idempotent per fingerprint).
  virtual void revoke(std::uint64_t fingerprint) = 0;
  virtual bool revoked(std::uint64_t fingerprint) const = 0;

  /// Fault-tolerant agreement over `members` (global-rank bitmask): resolves
  /// when the coordinator's decision arrives, however many participants die
  /// on the way. Every member must call agree() on the same communicator in
  /// the same order (the usual collective-ordering contract).
  virtual sim::Task<AgreeOutcome> agree(std::uint64_t fingerprint,
                                        std::uint64_t members,
                                        std::uint64_t flags) = 0;
};

/// Engine-level service behind the per-rank facades. Owned by SimEngine when
/// SimEngineOptions::recovery is set; the transport feeds it frames, the
/// reliable channels feed it give-ups.
class RecoveryService {
 public:
  RecoveryService(SimEngine& engine, RecoveryOptions options);
  ~RecoveryService();

  const RecoveryOptions& options() const { return options_; }
  Recovery& rank_facade(Rank r);

  // -- transport upcalls (SimTransport::on_frame / channel give-up hook) ----
  void on_give_up(Rank self, Rank peer);
  void on_notice(Rank self, Rank about);
  void on_revoke(Rank self, std::uint64_t fingerprint);
  void on_agree(Rank self, Rank from, const mpi::RecoveryInfo& info);

  // -- per-rank operations (called through the facade) ----------------------
  std::uint64_t failed_mask(Rank self) const { return ranks_[self].failed; }
  void clear_poison(Rank self);
  void acquire(Rank self);
  void release(Rank self);
  void acquire_shield(Rank self) { ++ranks_[self].shield; }
  void release_shield(Rank self) { --ranks_[self].shield; }
  void revoke(Rank self, std::uint64_t fingerprint);
  bool revoked(Rank self, std::uint64_t fingerprint) const {
    return ranks_[self].revoked.count(fingerprint) != 0;
  }
  sim::Task<AgreeOutcome> agree(Rank self, std::uint64_t fingerprint,
                                std::uint64_t members, std::uint64_t flags);

 private:
  class Facade;

  /// One agreement instance on one rank, keyed (fingerprint, per-comm seq).
  /// The state outlives the rank's agree() call so a decided coordinator —
  /// or a done participant that holds the result — keeps answering late
  /// contributions with the frozen decision.
  struct AgreeState {
    std::uint64_t members = 0;  ///< participant bitmask (comm membership)
    std::uint64_t my_flags = 0;
    bool started = false;    ///< local agree() entered
    bool decided = false;    ///< this rank froze the decision as coordinator
    bool done = false;       ///< local outcome delivered
    bool has_result = false; ///< a result frame arrived (possibly pre-start)
    std::uint64_t flags_acc = ~0ull;  ///< AND over received contributions
    std::uint64_t view_acc = 0;       ///< OR over received failed views
    std::uint64_t contributed = 0;    ///< ranks whose contribution arrived
    std::uint64_t result_flags = 0;
    std::uint64_t result_failed = 0;
    Rank sent_contrib_to = -1;  ///< dedup: last coordinator we contributed to
    std::coroutine_handle<> waiter;
    AgreeOutcome outcome;
  };

  struct RankState {
    std::uint64_t failed = 0;  ///< this rank's failed view (monotonic)
    std::set<std::uint64_t> revoked;
    int interest = 0;          ///< heartbeat interest count
    int shield = 0;            ///< poison-shield count (EC collectives)
    std::uint64_t hb_gen = 0;  ///< invalidates stale heartbeat timers
    std::map<std::uint64_t, std::uint32_t> next_agree_seq;
    std::map<std::pair<std::uint64_t, std::uint32_t>, AgreeState> agreements;
  };

  void send_agree(Rank self, Rank to, std::uint64_t fingerprint,
                  std::uint32_t seq, std::uint8_t phase, std::uint64_t flags,
                  std::uint64_t view);
  void step_agreement(Rank self, std::uint64_t fingerprint, std::uint32_t seq);
  void complete(Rank self, AgreeState& st, AgreeOutcome outcome);
  void schedule_heartbeat(Rank self, std::uint64_t gen);
  void proto_instant(Rank self, const char* what, std::int64_t arg);
  /// Metrics hook (no-op without a recorder): recovery.* counters.
  void count(const char* name, std::int64_t by = 1);
  /// Detection-latency accounting on the job-wide first notice of `about`.
  void note_detection(Rank about);

  SimEngine& engine_;
  RecoveryOptions options_;
  std::vector<RankState> ranks_;
  std::vector<std::unique_ptr<Recovery>> facades_;
  std::uint64_t first_noticed_ = 0;  ///< ranks some observer already reported
};

}  // namespace adapt::runtime
