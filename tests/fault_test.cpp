// Tests of the deterministic fault-injection layer (net::FaultInjector +
// Fabric::transfer_tagged): replayability from a single seed, independence
// from virtual time and decision order for the probabilistic faults, outage
// and death windows, and the disabled-plan passthrough.
#include <vector>

#include <gtest/gtest.h>

#include "src/net/fabric.hpp"
#include "src/net/fault.hpp"
#include "src/sim/simulator.hpp"

namespace adapt {
namespace {

using net::FaultInjector;
using net::FaultKey;
using net::FaultPlan;
using net::TransferFate;

FaultPlan lossy_plan() {
  FaultPlan plan;
  plan.seed = 42;
  plan.drop = 0.3;
  plan.corrupt = 0.2;
  plan.max_delay = microseconds(5);
  return plan;
}

TEST(FaultInjector, DisabledPlanIsEnabledFalse) {
  EXPECT_FALSE(FaultPlan{}.enabled());
  EXPECT_TRUE(lossy_plan().enabled());
  FaultPlan death_only;
  death_only.deaths.push_back({0, 0});
  EXPECT_TRUE(death_only.enabled());
}

TEST(FaultInjector, FateIsPureInTheKey) {
  const FaultInjector a(lossy_plan());
  const FaultInjector b(lossy_plan());
  // Same key → same fate, regardless of injector instance, query order, or
  // the virtual time of the probabilistic decision.
  for (std::uint64_t seq = 1; seq <= 200; ++seq) {
    const FaultKey key{/*src=*/3, /*dst=*/5, seq, /*attempt=*/0, /*kind=*/1};
    const TransferFate fa = a.decide(key, {}, /*now=*/0);
    const TransferFate fb = b.decide(key, {}, /*now=*/seconds(99));
    EXPECT_EQ(fa.delivered, fb.delivered);
    EXPECT_EQ(fa.corrupted, fb.corrupted);
    EXPECT_EQ(fa.delay, fb.delay);
    EXPECT_EQ(fa.salt, fb.salt);
  }
  // Interleaving unrelated decisions must not shift the stream either.
  const FaultInjector c(lossy_plan());
  for (std::uint64_t seq = 1; seq <= 50; ++seq) {
    c.decide(FaultKey{0, 1, seq, 0, 0}, {}, 0);
  }
  const FaultKey probe{3, 5, 7, 0, 1};
  const TransferFate after_noise = c.decide(probe, {}, 0);
  const TransferFate fresh = a.decide(probe, {}, 0);
  EXPECT_EQ(after_noise.delivered, fresh.delivered);
  EXPECT_EQ(after_noise.corrupted, fresh.corrupted);
}

TEST(FaultInjector, AttemptAndKindRollIndependentDice) {
  const FaultInjector inj(lossy_plan());
  // Across many sequence numbers, a retransmit (attempt 1) must not share
  // the first attempt's fate wholesale — otherwise retransmitting a dropped
  // frame could never succeed.
  int differs = 0;
  for (std::uint64_t seq = 1; seq <= 300; ++seq) {
    const auto f0 = inj.decide(FaultKey{0, 1, seq, 0, 0}, {}, 0);
    const auto f1 = inj.decide(FaultKey{0, 1, seq, 1, 0}, {}, 0);
    if (f0.delivered != f1.delivered) ++differs;
  }
  EXPECT_GT(differs, 0);
}

TEST(FaultInjector, DropAndCorruptRatesAreRoughlyHonoured) {
  const FaultInjector inj(lossy_plan());
  int drops = 0;
  int corrupts = 0;
  const int n = 4000;
  for (int seq = 1; seq <= n; ++seq) {
    const auto fate = inj.decide(
        FaultKey{0, 1, static_cast<std::uint64_t>(seq), 0, 0}, {}, 0);
    if (!fate.delivered) ++drops;
    if (fate.corrupted) ++corrupts;
    EXPECT_GE(fate.delay, 0);
    EXPECT_LE(fate.delay, microseconds(5));
  }
  EXPECT_NEAR(static_cast<double>(drops) / n, 0.3, 0.05);
  // Corruption is drawn only for delivered transmissions (a dropped frame
  // has no bytes to corrupt), so its unconditional rate is corrupt × (1 −
  // drop); compare the conditional rate instead.
  EXPECT_NEAR(static_cast<double>(corrupts) / (n - drops), 0.2, 0.05);
  EXPECT_EQ(inj.decisions(), static_cast<std::uint64_t>(n));
  EXPECT_EQ(inj.drops(), static_cast<std::uint64_t>(drops));
}

TEST(FaultInjector, OutageWindowDropsThePairBothWays) {
  FaultPlan plan;  // no probabilistic faults: isolate the window logic
  plan.outages.push_back(
      {/*a=*/2, /*b=*/4, /*link=*/-1, milliseconds(1), milliseconds(2)});
  const FaultInjector inj(plan);
  const FaultKey fwd{2, 4, 1, 0, 0};
  const FaultKey rev{4, 2, 1, 0, 0};
  const FaultKey other{2, 3, 1, 0, 0};
  EXPECT_TRUE(inj.decide(fwd, {}, 0).delivered) << "before the window";
  EXPECT_FALSE(inj.decide(fwd, {}, milliseconds(1)).delivered);
  EXPECT_FALSE(inj.decide(rev, {}, milliseconds(1.5)).delivered);
  EXPECT_TRUE(inj.decide(other, {}, milliseconds(1.5)).delivered);
  EXPECT_TRUE(inj.decide(fwd, {}, milliseconds(2)).delivered)
      << "until is exclusive";
}

TEST(FaultInjector, LinkOutageDropsOnlyRoutesCrossingTheLink) {
  FaultPlan plan;
  plan.outages.push_back(
      {/*a=*/-1, /*b=*/-1, /*link=*/7, 0, milliseconds(1)});
  const FaultInjector inj(plan);
  const FaultKey key{0, 1, 1, 0, 0};
  EXPECT_FALSE(inj.decide(key, {3, 7}, 0).delivered);
  EXPECT_TRUE(inj.decide(key, {3, 8}, 0).delivered);
  EXPECT_TRUE(inj.decide(key, {}, 0).delivered);
  EXPECT_TRUE(inj.decide(key, {3, 7}, milliseconds(1)).delivered);
}

TEST(FaultInjector, DeathSilencesTheRankPermanently) {
  FaultPlan plan;
  plan.deaths.push_back({/*rank=*/3, milliseconds(1)});
  const FaultInjector inj(plan);
  EXPECT_FALSE(inj.dead(3, 0));
  EXPECT_TRUE(inj.dead(3, milliseconds(1)));
  EXPECT_TRUE(inj.dead(3, seconds(10)));
  EXPECT_FALSE(inj.dead(2, seconds(10)));
  // Nothing to or from the dead rank is delivered after `at`.
  EXPECT_TRUE(inj.decide(FaultKey{3, 0, 1, 0, 0}, {}, 0).delivered);
  EXPECT_FALSE(inj.decide(FaultKey{3, 0, 1, 0, 0}, {}, milliseconds(1)).delivered);
  EXPECT_FALSE(inj.decide(FaultKey{0, 3, 1, 0, 0}, {}, milliseconds(2)).delivered);
  EXPECT_TRUE(inj.decide(FaultKey{0, 2, 1, 0, 0}, {}, milliseconds(2)).delivered);
}

// ------------------------------------------------------------- the fabric ---

TEST(Fabric, TransferTaggedWithoutInjectorIsPerfect) {
  sim::Simulator sim;
  net::Fabric fabric(sim);
  const net::LinkId lane = fabric.add_link(/*capacity=*/10.0);
  net::Route route;
  route.links = {lane};
  route.per_flow_cap = 10.0;
  route.alpha = 100;

  TransferFate seen;
  bool done = false;
  fabric.transfer_tagged(route, 1000, FaultKey{0, 1, 1, 0, 0},
                         [&](const TransferFate& fate) {
                           seen = fate;
                           done = true;
                         });
  sim.run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(seen.delivered);
  EXPECT_FALSE(seen.corrupted);
  EXPECT_EQ(seen.delay, 0);
}

TEST(Fabric, TransferTaggedReportsTheInjectorFate) {
  sim::Simulator sim;
  net::Fabric fabric(sim);
  const net::LinkId lane = fabric.add_link(10.0);
  net::Route route;
  route.links = {lane};
  route.per_flow_cap = 10.0;
  route.alpha = 100;

  const FaultInjector inj(lossy_plan());
  fabric.set_fault_injector(&inj);

  // Find a seq the plan drops and one it delivers with delay, then check the
  // fabric reports exactly the injector's verdicts at arrival time.
  std::uint64_t dropped_seq = 0;
  std::uint64_t clean_seq = 0;
  for (std::uint64_t seq = 1; seq < 500 && !(dropped_seq && clean_seq); ++seq) {
    const auto fate = inj.decide(FaultKey{0, 1, seq, 0, 0}, route.links, 0);
    if (!fate.delivered && !dropped_seq) dropped_seq = seq;
    if (fate.delivered && !fate.corrupted && !clean_seq) clean_seq = seq;
  }
  ASSERT_NE(dropped_seq, 0u);
  ASSERT_NE(clean_seq, 0u);

  bool clean_done = false;
  bool dropped_done = false;
  TimeNs clean_at = 0;
  fabric.transfer_tagged(route, 1000, FaultKey{0, 1, clean_seq, 0, 0},
                         [&](const TransferFate& fate) {
                           EXPECT_TRUE(fate.delivered);
                           clean_done = true;
                           clean_at = sim.now();
                         });
  sim.run();
  fabric.transfer_tagged(route, 1000, FaultKey{0, 1, dropped_seq, 0, 0},
                         [&](const TransferFate& fate) {
                           EXPECT_FALSE(fate.delivered);
                           dropped_done = true;
                         });
  sim.run();
  ASSERT_TRUE(clean_done);
  ASSERT_TRUE(dropped_done)
      << "dropped transfers still complete (lost at the far end)";
  const auto clean_fate =
      inj.decide(FaultKey{0, 1, clean_seq, 0, 0}, route.links, 0);
  // alpha + injected delay + 1000B / 10B-per-ns.
  EXPECT_EQ(clean_at, 100 + clean_fate.delay + 100);
}

}  // namespace
}  // namespace adapt
