// Trace and metrics exporters.
//
// write_trace_json emits Chrome/Perfetto trace-event JSON (the legacy
// "traceEvents" array format, loadable at ui.perfetto.dev or
// chrome://tracing). Timestamps are virtual nanoseconds printed as exact
// microsecond decimals (ts/dur are µs in the format), so no floating-point
// formatting nondeterminism exists: same-seed runs export byte-identical
// files.
//
// write_metrics_csv emits the MetricsRegistry plus queue stats as a compact
// deterministic CSV (kind,name,value rows).
#pragma once

#include <iosfwd>
#include <string>

#include "src/obs/trace.hpp"

namespace adapt::obs {

void write_trace_json(const Recorder& recorder, std::ostream& os);
void write_metrics_csv(const Recorder& recorder, std::ostream& os);

/// File variants; return false (and write nothing) when the path cannot be
/// opened.
bool write_trace_file(const Recorder& recorder, const std::string& path);
bool write_metrics_file(const Recorder& recorder, const std::string& path);

}  // namespace adapt::obs
