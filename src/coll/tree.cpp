#include "src/coll/tree.hpp"

#include <algorithm>

#include "src/support/error.hpp"

namespace adapt::coll {

int Tree::depth(Rank r) const {
  int d = 0;
  while (parent[static_cast<std::size_t>(r)] != -1) {
    r = parent[static_cast<std::size_t>(r)];
    ++d;
    ADAPT_CHECK(d <= size()) << "cycle in tree";
  }
  return d;
}

int Tree::height() const {
  int h = 0;
  for (Rank r = 0; r < size(); ++r) h = std::max(h, depth(r));
  return h;
}

void Tree::validate() const {
  const int n = size();
  ADAPT_CHECK(n > 0);
  ADAPT_CHECK(static_cast<int>(children.size()) == n);
  ADAPT_CHECK(root >= 0 && root < n);
  ADAPT_CHECK(parent[static_cast<std::size_t>(root)] == -1)
      << "root has a parent";
  int edges = 0;
  for (Rank r = 0; r < n; ++r) {
    const Rank p = parent[static_cast<std::size_t>(r)];
    if (r == root) continue;
    ADAPT_CHECK(p >= 0 && p < n && p != r) << "bad parent of " << r;
    const auto& sibs = children[static_cast<std::size_t>(p)];
    ADAPT_CHECK(std::count(sibs.begin(), sibs.end(), r) == 1)
        << "parent/children mismatch at " << r;
    ++edges;
  }
  for (Rank r = 0; r < n; ++r) {
    for (Rank c : children[static_cast<std::size_t>(r)])
      ADAPT_CHECK(parent[static_cast<std::size_t>(c)] == r)
          << "child " << c << " does not point back to " << r;
  }
  ADAPT_CHECK(edges == n - 1) << "not a spanning tree";
  // Connectivity: every rank reaches the root (depth() throws on cycles).
  for (Rank r = 0; r < n; ++r) (void)depth(r);
}

const char* tree_kind_name(TreeKind kind) {
  switch (kind) {
    case TreeKind::kChain: return "chain";
    case TreeKind::kFlat: return "flat";
    case TreeKind::kBinary: return "binary";
    case TreeKind::kKAry: return "kary";
    case TreeKind::kBinomial: return "binomial";
    case TreeKind::kKNomial: return "knomial";
  }
  return "?";
}

TreeKind tree_kind_from_name(const std::string& name) {
  if (name == "chain") return TreeKind::kChain;
  if (name == "flat") return TreeKind::kFlat;
  if (name == "binary") return TreeKind::kBinary;
  if (name == "kary") return TreeKind::kKAry;
  if (name == "binomial") return TreeKind::kBinomial;
  if (name == "knomial") return TreeKind::kKNomial;
  throw Error("unknown tree kind: " + name);
}

namespace {

Tree empty_tree(int n) {
  Tree t;
  t.parent.assign(static_cast<std::size_t>(n), -1);
  t.children.resize(static_cast<std::size_t>(n));
  return t;
}

void link(Tree& t, Rank parent, Rank child) {
  t.parent[static_cast<std::size_t>(child)] = parent;
  t.children[static_cast<std::size_t>(parent)].push_back(child);
}

/// Builders below construct a tree over [0, n) rooted at 0.
Tree chain0(int n) {
  Tree t = empty_tree(n);
  for (Rank r = 1; r < n; ++r) link(t, r - 1, r);
  return t;
}

Tree flat0(int n) {
  Tree t = empty_tree(n);
  for (Rank r = 1; r < n; ++r) link(t, 0, r);
  return t;
}

Tree kary0(int n, int k) {
  ADAPT_CHECK(k >= 2);
  Tree t = empty_tree(n);
  for (Rank r = 1; r < n; ++r) link(t, (r - 1) / k, r);
  return t;
}

Tree knomial0(int n, int k) {
  ADAPT_CHECK(k >= 2);
  Tree t = empty_tree(n);
  // Children of r are r + m*k^j for every radix position j below r's lowest
  // nonzero digit (descending, so the largest subtree is served first).
  for (Rank r = 0; r < n; ++r) {
    // Lowest nonzero digit position of r in base k (max for r = 0).
    int low = 0;
    if (r == 0) {
      low = 1;
      std::int64_t span = k;
      while (span < n) {
        span *= k;
        ++low;
      }
    } else {
      Rank v = r;
      while (v % k == 0) {
        v /= k;
        ++low;
      }
    }
    std::int64_t stride = 1;
    for (int j = 1; j < low; ++j) stride *= k;
    for (int j = low - 1; j >= 0; --j) {
      for (int m = 1; m <= k - 1; ++m) {
        const std::int64_t c = r + m * stride;
        if (c < n) link(t, r, static_cast<Rank>(c));
      }
      stride /= k;
    }
  }
  return t;
}

Tree build0(TreeKind kind, int n, int radix) {
  switch (kind) {
    case TreeKind::kChain: return chain0(n);
    case TreeKind::kFlat: return flat0(n);
    case TreeKind::kBinary: return kary0(n, 2);
    case TreeKind::kKAry: return kary0(n, radix);
    case TreeKind::kBinomial: return knomial0(n, 2);
    case TreeKind::kKNomial: return knomial0(n, radix);
  }
  ADAPT_UNREACHABLE("bad tree kind");
}

}  // namespace

Tree tree_over(TreeKind kind, const std::vector<Rank>& order, Rank root,
               int radix) {
  const int n = static_cast<int>(order.size());
  ADAPT_CHECK(n > 0);
  const auto it = std::find(order.begin(), order.end(), root);
  ADAPT_CHECK(it != order.end()) << "root " << root << " not in order";
  const int p0 = static_cast<int>(it - order.begin());

  const Tree base = build0(kind, n, radix);
  // Position i of the base tree maps to order[(i + p0) % n]; position 0 is
  // the root.
  auto map = [&](Rank pos) {
    return order[static_cast<std::size_t>((pos + p0) % n)];
  };
  // The result tree is indexed by the maximum rank appearing in `order`+1
  // only when used standalone; collectives index trees by local comm rank,
  // so order must cover [0, n) when used directly. For sub-group gluing the
  // topo builder passes global orders into a larger tree — handled there.
  Rank max_rank = 0;
  for (Rank r : order) max_rank = std::max(max_rank, r);
  Tree t = empty_tree(max_rank + 1);
  t.root = root;
  for (Rank pos = 0; pos < n; ++pos) {
    const Rank self = map(pos);
    for (Rank child_pos : base.children[static_cast<std::size_t>(pos)])
      link(t, self, map(child_pos));
  }
  return t;
}

Tree build_tree(TreeKind kind, int nranks, Rank root, int radix) {
  ADAPT_CHECK(nranks > 0);
  ADAPT_CHECK(root >= 0 && root < nranks);
  std::vector<Rank> order(static_cast<std::size_t>(nranks));
  for (Rank r = 0; r < nranks; ++r) order[static_cast<std::size_t>(r)] = r;
  Tree t = tree_over(kind, order, root, radix);
  t.validate();
  return t;
}

Tree chain_tree(int n, Rank root) { return build_tree(TreeKind::kChain, n, root); }
Tree flat_tree(int n, Rank root) { return build_tree(TreeKind::kFlat, n, root); }
Tree kary_tree(int n, Rank root, int k) {
  return build_tree(TreeKind::kKAry, n, root, k);
}
Tree binomial_tree(int n, Rank root) {
  return build_tree(TreeKind::kBinomial, n, root);
}
Tree knomial_tree(int n, Rank root, int k) {
  return build_tree(TreeKind::kKNomial, n, root, k);
}

}  // namespace adapt::coll
