// adaptsim: general-purpose driver for one-off experiments.
//
// Pick a cluster (preset or custom spec), an MPI library personality, an
// operation, a message-size range and a noise level, and get the measured
// times — everything the figure benches do, but à la carte.
//
//   ./adaptsim --cluster cori --nodes 8 --ranks 256 --lib ompi-adapt
//              --op bcast --min 65536 --max 4194304 --noise 5 --iters 4
//   (single command line; wrapped here for readability)
//   ./adaptsim --spec "nodes=4,sockets=2,cores=8,bw_node=10" --lib cray ...
//
// Observability: --trace=FILE writes a Chrome/Perfetto trace of the final
// message size's run (load at ui.perfetto.dev); --metrics=FILE writes the
// counter/histogram registry as CSV.
//
// Tuning: --tuning switches tunable personalities (ompi-adapt) from their
// built-in heuristics to the src/tune decision engine; --dump-table=FILE
// writes the decision table filled during the run as JSON.
//
// Persistent collectives: --persistent measures the MPI-4-style
// init/start/wait path instead of one-shot calls — each rank builds its
// handle once per message size (planning, tree, tuner decision all happen
// there, cached engine-wide in the plan cache) and every timed iteration
// just replays it.
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "src/bench/cli.hpp"
#include "src/bench/imb.hpp"
#include "src/coll/library.hpp"
#include "src/coll/persistent.hpp"
#include "src/gpu/gpu_coll.hpp"
#include "src/obs/export.hpp"
#include "src/obs/trace.hpp"
#include "src/runtime/sim_engine.hpp"
#include "src/support/table.hpp"
#include "src/topo/presets.hpp"
#include "src/tune/tuner.hpp"

using namespace adapt;

int main(int argc, char** argv) {
  bench::Cli cli(argc, argv);
  const std::string lib_name = cli.get("lib", "ompi-adapt");
  const std::string op = cli.get("op", "bcast");
  const int nodes = static_cast<int>(cli.get_int("nodes", 8));
  const int noise_duty = static_cast<int>(cli.get_int("noise", 0));
  const int iters = static_cast<int>(cli.get_int("iters", 4));
  const Bytes min_msg = cli.get_int("min", kib(64));
  const Bytes max_msg = cli.get_int("max", mib(4));

  topo::MachineSpec spec = cli.has("spec")
                               ? topo::parse_spec(cli.get("spec", ""))
                               : topo::preset(cli.get("cluster", "cori"), nodes);
  if (cli.has("spec")) spec.nodes = std::max(spec.nodes, nodes);
  const bool gpu = spec.gpus_per_socket > 0;
  const int default_ranks =
      gpu ? spec.nodes * spec.gpus_per_node() : spec.nodes * spec.cores_per_node();
  const int ranks = static_cast<int>(cli.get_int("ranks", default_ranks));
  topo::Machine machine(spec, ranks,
                        gpu ? topo::PlacementPolicy::kByGpu
                            : topo::PlacementPolicy::kByCore);
  const mpi::Comm world = mpi::Comm::world(ranks);

  std::shared_ptr<coll::MpiLibrary> lib;
  net::GpuConfig gpu_config;
  if (lib_name.ends_with("-gpu")) {
    auto gpu_lib = gpu::make_gpu_library(lib_name, machine);
    gpu_config = gpu_lib->gpu_config();
    lib = gpu_lib;
  } else {
    lib = coll::make_library(lib_name, machine);
  }

  std::cout << "cluster=" << spec.name << " nodes=" << spec.nodes
            << " ranks=" << ranks << " lib=" << lib_name << " op=" << op
            << " noise=" << noise_duty << "%\n\n";
  std::shared_ptr<tune::Tuner> tuner;
  if (cli.has("tuning") || cli.has("dump-table"))
    tuner = std::make_shared<tune::Tuner>(machine);
  const bool observe = cli.has("trace") || cli.has("metrics");
  std::shared_ptr<obs::Recorder> recorder;
  Bytes traced_msg = 0;
  Table table({"message", "avg(ms)", "min(ms)", "max(ms)"});
  for (Bytes msg = min_msg; msg <= max_msg; msg *= 2) {
    traced_msg = msg;
    runtime::SimEngineOptions options;
    options.gpu = gpu_config;
    options.noise = noise::paper_noise(noise_duty, 0xCAFE + noise_duty);
    options.tuning = tuner;  // shared across sizes: the table fills once
    if (observe) {
      // One recorder observes one engine run; keep the final size's trace.
      recorder = std::make_shared<obs::Recorder>();
      options.recorder = recorder;
    }
    runtime::SimEngine engine(machine, options);
    // Per-rank persistent handles, built lazily on each rank's first
    // iteration of this message size and replayed by every later one.
    // Declared after `engine` so they are destroyed first.
    std::vector<coll::PersistentOpPtr> handles(
        static_cast<std::size_t>(ranks));
    mpi::MutView buffer{nullptr, msg};
    auto fn = [&](runtime::Context& ctx, int) -> sim::Task<> {
      if (cli.has("persistent")) {
        auto& handle = handles[static_cast<std::size_t>(ctx.rank())];
        if (!handle) {
          if (op == "bcast") {
            handle = coll::bcast_init(ctx, world, buffer, 0);
          } else if (op == "reduce") {
            handle = coll::reduce_init(ctx, world, buffer, mpi::ReduceOp::kSum,
                                       mpi::Datatype::kFloat, 0);
          } else {
            throw Error("unknown --op (use bcast or reduce): " + op);
          }
        }
        if (handle->start() != mpi::ErrCode::kOk) {
          throw Error("persistent start() failed");
        }
        co_await handle->wait();
      } else if (op == "bcast") {
        co_await lib->bcast(ctx, world, buffer, 0);
      } else if (op == "reduce") {
        co_await lib->reduce(ctx, world, buffer, mpi::ReduceOp::kSum,
                             mpi::Datatype::kFloat, 0);
      } else {
        throw Error("unknown --op (use bcast or reduce): " + op);
      }
    };
    const auto m =
        noise_duty > 0
            ? bench::measure_throughput(engine, world, fn,
                                        {.warmup = 1, .iterations = iters})
            : bench::measure(engine, world, fn,
                             {.warmup = 1, .iterations = iters});
    table.add_row_numeric(format_bytes(msg),
                          {m.avg_ms(), m.min_ms(), m.max_ms()});
  }
  table.print(std::cout);
  if (recorder) {
    if (cli.has("trace")) {
      const std::string path = cli.get("trace", "adaptsim.trace.json");
      if (!obs::write_trace_file(*recorder, path)) {
        std::cerr << "cannot write --trace file " << path << "\n";
        return 1;
      }
      std::cout << "\ntrace (" << format_bytes(traced_msg)
                << " run): " << path << "  — load at ui.perfetto.dev\n";
    }
    if (cli.has("metrics")) {
      const std::string path = cli.get("metrics", "adaptsim.metrics.csv");
      if (!obs::write_metrics_file(*recorder, path)) {
        std::cerr << "cannot write --metrics file " << path << "\n";
        return 1;
      }
      std::cout << "metrics: " << path << "\n";
    }
  }
  if (tuner && cli.has("dump-table")) {
    const std::string path = cli.get("dump-table", "adaptsim.table.json");
    std::ofstream out(path);
    out << tuner->dump_json() << "\n";
    if (!out) {
      std::cerr << "cannot write --dump-table file " << path << "\n";
      return 1;
    }
    std::cout << "decision table (" << tuner->table_size()
              << " entries): " << path << "\n";
  }
  return 0;
}
