#include "src/mpi/match.hpp"

#include <limits>
#include <utility>

namespace adapt::mpi {

namespace {
constexpr std::uint64_t kNoStamp = std::numeric_limits<std::uint64_t>::max();
}  // namespace

std::optional<Envelope> Matcher::post(PostedRecv recv) {
  // Find the earliest-arrived matching envelope. A concrete receive can only
  // match its own (src, tag) bucket; a wildcard receive must consider the
  // front (earliest) of every bucket whose key it matches.
  Fifo<Envelope>* hit = nullptr;
  std::uint64_t best = kNoStamp;
  if (recv.src != kAnyRank && recv.tag != kAnyTag) {
    const auto it = unexpected_buckets_.find(key_of(recv.src, recv.tag));
    if (it != unexpected_buckets_.end() && !it->second.empty()) {
      hit = &it->second;
      best = it->second.front().stamp;
    }
  } else {
    for (auto& [key, bucket] : unexpected_buckets_) {
      if (bucket.empty()) continue;
      const Envelope& env = bucket.front().value;
      if (!matches(recv, env)) continue;
      if (bucket.front().stamp < best) {
        best = bucket.front().stamp;
        hit = &bucket;
      }
    }
  }
  if (hit != nullptr) {
    Envelope env = std::move(hit->front().value);
    hit->pop_front();
    --unexpected_count_;
    return env;
  }
  const std::uint64_t stamp = next_stamp_++;
  if (recv.src != kAnyRank && recv.tag != kAnyTag) {
    posted_buckets_[key_of(recv.src, recv.tag)].push_back(
        Stamped<PostedRecv>{stamp, std::move(recv)});
  } else {
    posted_wild_.push_back(Stamped<PostedRecv>{stamp, std::move(recv)});
  }
  ++posted_count_;
  return std::nullopt;
}

std::optional<PostedRecv> Matcher::arrive(Envelope&& env) {
  // Two candidates can match: the front of the exact (src, tag) bucket and
  // the earliest matching wildcard. Earliest posted wins overall, so compare
  // stamps — this reproduces the original single-queue FIFO scan exactly.
  Fifo<PostedRecv>* bucket = nullptr;
  std::uint64_t bucket_stamp = kNoStamp;
  const auto it = posted_buckets_.find(key_of(env.src, env.tag));
  if (it != posted_buckets_.end() && !it->second.empty()) {
    bucket = &it->second;
    bucket_stamp = it->second.front().stamp;
  }
  auto wild = posted_wild_.begin();
  for (; wild != posted_wild_.end(); ++wild) {
    if (matches(wild->value, env)) break;
  }
  const std::uint64_t wild_stamp =
      wild != posted_wild_.end() ? wild->stamp : kNoStamp;

  if (bucket_stamp < wild_stamp) {
    PostedRecv recv = std::move(bucket->front().value);
    bucket->pop_front();
    --posted_count_;
    return recv;
  }
  if (wild_stamp != kNoStamp) {
    PostedRecv recv = std::move(wild->value);
    posted_wild_.erase(wild);
    --posted_count_;
    return recv;
  }
  unexpected_buckets_[key_of(env.src, env.tag)].push_back(
      Stamped<Envelope>{next_stamp_++, std::move(env)});
  ++unexpected_count_;
  ++total_unexpected_;
  return std::nullopt;
}

}  // namespace adapt::mpi
