#include "src/support/parallel.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "src/support/error.hpp"

namespace adapt::support {

int hardware_jobs() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void parallel_for(int jobs, int n, const std::function<void(int)>& fn) {
  ADAPT_CHECK(n >= 0);
  if (n == 0) return;
  if (jobs <= 1 || n == 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<int> next{0};
  std::mutex mu;
  int first_failed = n;
  std::exception_ptr error;
  auto worker = [&] {
    for (;;) {
      const int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        if (i < first_failed) {
          first_failed = i;
          error = std::current_exception();
        }
      }
    }
  };

  const int workers = std::min(jobs, n) - 1;  // caller is one of the team
  std::vector<std::thread> team;
  team.reserve(static_cast<std::size_t>(workers));
  for (int t = 0; t < workers; ++t) team.emplace_back(worker);
  worker();
  for (std::thread& t : team) t.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace adapt::support
