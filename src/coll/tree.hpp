// Communication trees (paper §2.2.4, §3.2.1).
//
// A Tree is a rooted spanning tree over the *local* ranks of a communicator:
// parent/children arrays plus the root. ADAPT's collectives are
// tree-agnostic — any Tree plugs into any implementation style — which is
// what makes the topology-aware tree a drop-in (the paper's key composition
// property).
//
// Classic shapes (chain, flat, binary, k-ary, binomial, k-nomial) are built
// for an arbitrary root by relabelling ranks relative to the root. The
// topology-aware builder lives in topo_tree.hpp.
#pragma once

#include <string>
#include <vector>

#include "src/support/units.hpp"

namespace adapt::coll {

struct Tree {
  Rank root = 0;
  std::vector<Rank> parent;                 ///< parent[r]; root's parent = -1
  std::vector<std::vector<Rank>> children;  ///< children[r], send order

  int size() const { return static_cast<int>(parent.size()); }
  bool is_leaf(Rank r) const {
    return children[static_cast<std::size_t>(r)].empty();
  }
  const std::vector<Rank>& kids(Rank r) const {
    return children[static_cast<std::size_t>(r)];
  }
  Rank up(Rank r) const { return parent[static_cast<std::size_t>(r)]; }

  /// Depth of rank r (root = 0).
  int depth(Rank r) const;
  /// Longest root-to-leaf path length.
  int height() const;
  /// Validates spanning-tree invariants (every non-root has one parent,
  /// parent/children consistent, acyclic, connected); throws on violation.
  void validate() const;
};

enum class TreeKind {
  kChain,
  kFlat,      ///< root sends to everyone directly
  kBinary,
  kKAry,      ///< complete k-ary tree (k from radix)
  kBinomial,
  kKNomial,   ///< k-nomial tree (k from radix)
};

const char* tree_kind_name(TreeKind kind);
TreeKind tree_kind_from_name(const std::string& name);

/// Builds a `kind` tree over ranks [0, nranks) rooted at `root`.
/// `radix` applies to kKAry / kKNomial (>= 2).
Tree build_tree(TreeKind kind, int nranks, Rank root, int radix = 2);

// Individual builders (exposed for tests).
Tree chain_tree(int nranks, Rank root);
Tree flat_tree(int nranks, Rank root);
Tree kary_tree(int nranks, Rank root, int k);
Tree binomial_tree(int nranks, Rank root);
Tree knomial_tree(int nranks, Rank root, int k);

/// Builds a tree over an explicit rank ordering: the shape is built over
/// positions [0, n) with the *position* of `root` as tree root, then mapped
/// through `order`. Used by the topology-aware builder to lay shapes over
/// hardware groups.
Tree tree_over(TreeKind kind, const std::vector<Rank>& order, Rank root,
               int radix = 2);

}  // namespace adapt::coll
