#include "src/bench/report.hpp"

#include <fstream>
#include <iostream>
#include <ostream>

#include "src/bench/cli.hpp"
#include "src/support/json.hpp"

namespace adapt::bench {

void JsonReport::set_meta(const std::string& key, std::string value) {
  for (auto& [k, v] : meta_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  meta_.emplace_back(key, std::move(value));
}

void JsonReport::set_meta(const std::string& key, std::int64_t value) {
  set_meta(key, std::to_string(value));
}

void JsonReport::add_table(std::string title, const Table& table) {
  tables_.emplace_back(std::move(title), table);
}

void JsonReport::write(std::ostream& os) const {
  auto emit_list = [&os](const std::vector<std::string>& cells) {
    os << '[';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << json_quote(cells[c]);
    }
    os << ']';
  };
  os << "{\"benchmark\":" << json_quote(benchmark_) << ",\"meta\":{";
  for (std::size_t i = 0; i < meta_.size(); ++i) {
    if (i) os << ',';
    os << json_quote(meta_[i].first) << ':' << json_quote(meta_[i].second);
  }
  os << "},\"tables\":[";
  for (std::size_t i = 0; i < tables_.size(); ++i) {
    const Table& t = tables_[i].second;
    if (i) os << ',';
    os << "{\"title\":" << json_quote(tables_[i].first) << ",\"header\":";
    emit_list(t.header());
    os << ",\"rows\":[";
    for (std::size_t r = 0; r < t.row_data().size(); ++r) {
      if (r) os << ',';
      emit_list(t.row_data()[r]);
    }
    os << "]}";
  }
  os << "]}\n";
}

bool emit_json(const Cli& cli, const JsonReport& report) {
  if (!cli.has("json")) return true;
  const std::string dest = cli.get("json", "1");
  if (dest == "1") {
    report.write(std::cout);
    return true;
  }
  std::ofstream out(dest);
  if (!out) {
    std::cerr << "cannot open --json file " << dest << "\n";
    return false;
  }
  report.write(out);
  return true;
}

}  // namespace adapt::bench
