#!/usr/bin/env python3
"""Perf-CI gate: compare a fresh micro_framework JSON run to a committed
baseline (BENCH_micro.json).

Two checks, in decreasing order of signal:

1. Allocation counters are machine-independent: every benchmark reporting an
   `allocs_per_item` counter must stay at (effectively) zero. A steady-state
   allocation is a code regression no amount of CI noise can excuse.

2. Throughput ratios are machine-DEPENDENT: the committed baseline was
   recorded on one box, CI runs on another. The gate therefore only fails
   when a benchmark's items_per_second (or, failing that, real_time) is
   worse than `--threshold` times the baseline — a catastrophic-regression
   tripwire, not a microbenchmark referee. Tighten the threshold only with a
   pinned runner.

Usage: check_perf.py --baseline BENCH_micro.json --run fresh.json
                     [--threshold 0.4]

Steady-state mode (--steady) gates the persistent-collective issue-rate
benchmark (bench/steady_state --json) instead. Its two checks mirror the
same split: the persistent arm's allocs_per_start and the persistent/percall
speedup are both intra-run numbers — machine-independent ratios the gate can
pin hard — while the optional committed baseline is again only a
catastrophic-regression tripwire on collectives_per_sec.

Usage: check_perf.py --steady --run steady.json [--baseline BENCH_steady.json]
                     [--min-speedup 5] [--max-allocs 0.1] [--threshold 0.4]

Shard-scaling mode (--shard-scaling) gates bench/shard_scaling --json against
BENCH_shard.json. The determinism half is machine-independent and pinned
hard: simulated time and the finish-time hash must match the committed
baseline exactly (the bench itself already exits non-zero if any shard count
disagrees within the run). The speedup half is machine-DEPENDENT: the
wall-clock floor for 8 shards (--min-shard-speedup) is enforced only when the
run's recorded hw_threads >= 8, a reduced floor when >= 4, and skipped with a
notice on smaller runners — a 1-core container cannot parallelise anything.
The baseline's wall clock is only the usual catastrophic tripwire.

Usage: check_perf.py --shard-scaling --run shard.json --baseline BENCH_shard.json
                     [--min-shard-speedup 3.0] [--threshold 0.4]
"""

import argparse
import json
import subprocess
import sys

# (disabled variant, reference) benchmark-name pairs for the intra-run
# disabled-path guard; per-arg suffixes ("/64", "/512") are matched
# automatically.
DISABLED_PAIRS = [
    ("BM_SimulatedBcastFaultsDisabled", "BM_SimulatedBcast"),
    ("BM_SimulatedBcastTraceDisabled", "BM_SimulatedBcast"),
    ("BM_SimulatedBcastRecoveryDisabled", "BM_SimulatedBcast"),
    # The flight recorder is the "always on" configuration: sampling +
    # bounded windows must keep it within the same intra-run bound the
    # genuinely-disabled paths get, or always-on tracing stops being free.
    ("BM_SimulatedBcastFlightRecorder", "BM_SimulatedBcast"),
]


def load_benchmarks(path):
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for b in doc.get("benchmarks", []):
        # With --benchmark_report_aggregates_only the names carry a suffix;
        # prefer medians, fall back to the raw entry.
        name = b["name"]
        if name.endswith(("_mean", "_stddev", "_cv", "_min", "_max")):
            continue
        key = name[: -len("_median")] if name.endswith("_median") else name
        out[key] = b
    return out


def check_steady(args):
    with open(args.run) as f:
        doc = json.load(f)
    arms = doc["arms"]
    persistent, percall = arms["persistent"], arms["percall"]
    failures = []

    allocs = persistent["allocs_per_start"]
    if allocs > args.max_allocs:
        failures.append(
            f"persistent arm allocs_per_start={allocs:.3f} "
            f"(limit {args.max_allocs}) — replay is no longer allocation-free")
    else:
        print(f"persistent allocs_per_start={allocs:.3f} ok")

    speedup = doc["speedup"]
    if speedup < args.min_speedup:
        failures.append(
            f"persistent/percall speedup {speedup:.2f}x below the "
            f"{args.min_speedup}x floor")
    else:
        print(f"persistent/percall speedup={speedup:.2f}x ok "
              f"(floor {args.min_speedup}x)")

    if args.baseline:
        with open(args.baseline) as f:
            base = json.load(f)
        for arm in ("persistent", "percall"):
            ratio = (arms[arm]["collectives_per_sec"] /
                     base["arms"][arm]["collectives_per_sec"])
            marker = "ok" if ratio >= args.threshold else "REGRESSED"
            print(f"{arm}: collectives/s ratio vs baseline = "
                  f"{ratio:.3f} {marker}")
            if ratio < args.threshold:
                failures.append(
                    f"{arm}: collectives/s fell to {ratio:.3f}x of baseline "
                    f"(threshold {args.threshold}x)")

    if failures:
        print("\nPERF GATE FAILED:", file=sys.stderr)
        for f in failures:
            print("  " + f, file=sys.stderr)
        return 1
    print("\nsteady-state perf gate ok")
    return 0


def check_shard_scaling(args):
    with open(args.run) as f:
        meta = json.load(f)["meta"]
    failures = []

    # Determinism pins: virtual time and the finish-time hash are machine-
    # independent, so any drift from the committed baseline is a real change
    # to the sharded schedule (cost model, event ordering, or merge rule).
    if args.baseline:
        with open(args.baseline) as f:
            base = json.load(f)["meta"]
        # iters is part of the shape: the fingerprint run starts where the
        # measured iterations left off in virtual time, so its absolute
        # finish times (and hash) depend on how many iterations preceded it.
        for key in ("ranks", "msg_bytes", "seg_bytes", "iters"):
            if meta.get(key) != base.get(key):
                failures.append(
                    f"{key}: run {meta.get(key)} != baseline {base.get(key)} "
                    f"— not comparing the same experiment")
        for key in ("sim_ms", "finish_hash"):
            if meta.get(key) != base.get(key):
                failures.append(
                    f"{key}: run {meta.get(key)} != baseline {base.get(key)} "
                    f"— the sharded schedule is no longer reproducible")
            else:
                print(f"{key}={meta.get(key)} matches baseline")

    # Speedup floor, conditional on the runner actually having cores. The
    # bench records hw_threads so the gate's decision is auditable from the
    # artifact alone.
    hw = int(meta["hw_threads"])
    w1 = float(meta["wall_ms_1"])
    w4 = float(meta["wall_ms_4"])
    w8 = float(meta["wall_ms_8"])
    print(f"hw_threads={hw} wall_ms: 1={w1:.1f} 4={w4:.1f} 8={w8:.1f} "
          f"(speedup x{w1 / w8:.2f} at 8 shards, x{w1 / w4:.2f} at 4)")
    if hw >= 8:
        if w1 / w8 < args.min_shard_speedup:
            failures.append(
                f"8-shard speedup {w1 / w8:.2f}x below the "
                f"{args.min_shard_speedup}x floor on a {hw}-thread runner")
        else:
            print(f"8-shard speedup ok (floor {args.min_shard_speedup}x)")
    elif hw >= 4:
        floor = 1.8
        if w1 / w4 < floor:
            failures.append(
                f"4-shard speedup {w1 / w4:.2f}x below the {floor}x floor "
                f"on a {hw}-thread runner")
        else:
            print(f"4-shard speedup ok (reduced floor {floor}x, {hw} threads)")
    else:
        print(f"speedup floor skipped: runner has {hw} hardware thread(s); "
              f"parallel shards cannot beat the single-shard fast path here")

    # Cross-machine wall-clock tripwire (same generosity as the other modes).
    if args.baseline and "wall_ms_1" in base:
        ratio = float(base["wall_ms_1"]) / w1
        marker = "ok" if ratio >= args.threshold else "REGRESSED"
        print(f"single-shard wall clock ratio vs baseline = "
              f"{ratio:.3f} {marker}")
        if ratio < args.threshold:
            failures.append(
                f"single-shard wall clock fell to {ratio:.3f}x of baseline "
                f"(threshold {args.threshold}x)")

    if failures:
        print("\nPERF GATE FAILED:", file=sys.stderr)
        for f in failures:
            print("  " + f, file=sys.stderr)
        return 1
    print("\nshard-scaling perf gate ok")
    return 0


def run_trace_diff(args):
    """On gate failure, attribute the regression: run `adapt-trace diff`
    between the committed trace baseline and the fresh run's trace, print
    the per-collective alpha/beta/compute/contention/noise breakdown, and
    (optionally) save it where CI can upload it as an artifact.

    Best-effort by design: the gate's verdict never depends on the diff
    succeeding — a missing binary or trace only costs the attribution."""
    if not (args.adapt_trace and args.trace_baseline and args.trace_run):
        return
    cmd = [args.adapt_trace, "diff", args.trace_baseline, args.trace_run]
    try:
        res = subprocess.run(cmd, capture_output=True, text=True, timeout=300)
    except OSError as e:
        print(f"\n(adapt-trace diff unavailable: {e})", file=sys.stderr)
        return
    report = res.stdout + (res.stderr if res.returncode != 0 else "")
    print("\n=== adapt-trace diff (regression attribution) ===",
          file=sys.stderr)
    print(report, file=sys.stderr)
    if args.trace_report:
        with open(args.trace_report, "w") as f:
            f.write(report)
        print(f"attribution report written to {args.trace_report}",
              file=sys.stderr)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--baseline")
    ap.add_argument("--run", required=True)
    ap.add_argument("--steady", action="store_true",
                    help="gate a bench/steady_state --json report instead of "
                         "a google-benchmark one")
    ap.add_argument("--min-speedup", type=float, default=5.0,
                    help="steady mode: persistent/percall speedup floor")
    ap.add_argument("--shard-scaling", action="store_true",
                    help="gate a bench/shard_scaling --json report")
    ap.add_argument("--min-shard-speedup", type=float, default=3.0,
                    help="shard mode: 8-shard wall-clock speedup floor, "
                         "enforced only when the run's hw_threads >= 8")
    ap.add_argument("--threshold", type=float, default=0.4,
                    help="fail when fresh throughput < threshold * baseline")
    ap.add_argument("--disabled-ratio", type=float, default=0.8,
                    help="intra-run floor for each XDisabled benchmark vs "
                         "its reference (same machine, same process)")
    ap.add_argument("--max-allocs", type=float, default=None,
                    help="allocation-counter ceiling (default 0.001 for "
                         "micro mode, 0.1 for steady mode)")
    ap.add_argument("--adapt-trace",
                    help="path to the adapt-trace binary; with "
                         "--trace-baseline/--trace-run, a failing gate "
                         "auto-runs `adapt-trace diff` to attribute the "
                         "regression")
    ap.add_argument("--trace-baseline",
                    help="virtual-time trace baseline (gunzipped "
                         "BENCH_fig10.trace.json.gz)")
    ap.add_argument("--trace-run",
                    help="fresh trace from this build (fig10_scaling_cpu "
                         "--trace)")
    ap.add_argument("--trace-report",
                    help="also write the diff output here (CI artifact)")
    args = ap.parse_args()
    if args.max_allocs is None:
        args.max_allocs = 0.1 if args.steady else 0.001

    if args.steady:
        return check_steady(args)
    if args.shard_scaling:
        return check_shard_scaling(args)

    if not args.baseline:
        ap.error("--baseline is required outside --steady mode")
    baseline = load_benchmarks(args.baseline)
    fresh = load_benchmarks(args.run)
    failures = []

    for name, b in sorted(fresh.items()):
        allocs = b.get("allocs_per_item")
        if allocs is not None and allocs > args.max_allocs:
            failures.append(
                f"{name}: allocs_per_item={allocs:.6f} "
                f"(limit {args.max_allocs}) — steady state allocated")
        else:
            if allocs is not None:
                print(f"{name}: allocs_per_item={allocs:.6f} ok")

    # Disabled-path guards: each "...Disabled" variant runs in the same
    # process on the same machine as its reference benchmark, so the ratio
    # is machine-independent and can be pinned far tighter than the
    # cross-machine baseline tripwire. A disabled subsystem (fault injection,
    # tracing, recovery) must cost nothing but a null-pointer test.
    for disabled, reference in DISABLED_PAIRS:
        for name, run in sorted(fresh.items()):
            if not name.startswith(disabled + "/"):
                continue
            ref = fresh.get(reference + name[len(disabled):])
            if ref is None:
                continue
            ratio = ref["real_time"] / run["real_time"]
            marker = "ok" if ratio >= args.disabled_ratio else "REGRESSED"
            print(f"{name}: time ratio vs {reference} (same run) = "
                  f"{ratio:.3f} {marker}")
            if ratio < args.disabled_ratio:
                failures.append(
                    f"{name}: {1 / ratio:.3f}x slower than {reference} in "
                    f"the same run (floor {args.disabled_ratio}) — the "
                    f"disabled path is no longer free")

    common = sorted(set(baseline) & set(fresh))
    if not common:
        failures.append("no benchmark names in common with the baseline")
    for name in common:
        base, run = baseline[name], fresh[name]
        if "items_per_second" in base and "items_per_second" in run:
            ratio = run["items_per_second"] / base["items_per_second"]
            kind = "items/s"
        else:
            # Lower is better for time; invert so ratio > 1 still means
            # "fresh run is faster".
            ratio = base["real_time"] / run["real_time"]
            kind = "time"
        marker = "ok" if ratio >= args.threshold else "REGRESSED"
        print(f"{name}: {kind} ratio vs baseline = {ratio:.3f} {marker}")
        if ratio < args.threshold:
            failures.append(
                f"{name}: {kind} fell to {ratio:.3f}x of baseline "
                f"(threshold {args.threshold}x)")

    if failures:
        print("\nPERF GATE FAILED:", file=sys.stderr)
        for f in failures:
            print("  " + f, file=sys.stderr)
        run_trace_diff(args)
        return 1
    print(f"\nperf gate ok: {len(common)} benchmarks compared")
    return 0


if __name__ == "__main__":
    sys.exit(main())
