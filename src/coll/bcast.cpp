// Broadcast in the three implementation styles the paper analyses (§2).
#include <memory>

#include "src/coll/detail.hpp"
#include "src/gpu/device.hpp"
#include "src/support/error.hpp"

namespace adapt::coll {

const char* style_name(Style style) {
  switch (style) {
    case Style::kBlocking: return "blocking";
    case Style::kNonblocking: return "nonblocking";
    case Style::kAdapt: return "adapt";
  }
  return "?";
}

Segmenter::Segmenter(Bytes total, Bytes segment_size)
    : total_(total), seg_(segment_size) {
  ADAPT_CHECK(total >= 0);
  ADAPT_CHECK(segment_size > 0);
  count_ = total == 0
               ? 1
               : static_cast<int>((total + segment_size - 1) / segment_size);
}

Bytes Segmenter::offset(int i) const {
  ADAPT_CHECK(i >= 0 && i < count_);
  return static_cast<Bytes>(i) * seg_;
}

Bytes Segmenter::length(int i) const {
  ADAPT_CHECK(i >= 0 && i < count_);
  return std::min(seg_, total_ - offset(i));
}

namespace {

using detail::Edges;

// ---------------------------------------------------------------------------
// Algorithm 1 (Fig. 1): blocking P2P. Every operation is ordered behind the
// previous one — data AND synchronisation dependencies everywhere.
// ---------------------------------------------------------------------------
sim::Task<> bcast_blocking(runtime::Context& ctx, const Edges& e,
                           mpi::MutView buffer, const Segmenter& segs,
                           const CollOpts& opts, Tag base_tag) {
  for (int s = 0; s < segs.count(); ++s) {
    mpi::MutView piece = buffer.slice(segs.offset(s), segs.length(s));
    if (!e.is_root) {
      co_await ctx.recv(e.parent_global, base_tag + s, piece);
    }
    for (Rank child : e.kids_global) {
      co_await ctx.send(child, base_tag + s, piece.as_const(),
                        opts.spaces(ctx.rank(), child));
    }
  }
}

// ---------------------------------------------------------------------------
// Algorithm 2 (Fig. 3): nonblocking P2P with Waitall. Children of one segment
// progress concurrently, but the Waitall forces them to finish together, and
// two pre-posted receives cover out-of-order arrival.
// ---------------------------------------------------------------------------
sim::Task<> bcast_nonblocking(runtime::Context& ctx, const Edges& e,
                              mpi::MutView buffer, const Segmenter& segs,
                              const CollOpts& opts, Tag base_tag) {
  const int S = segs.count();
  auto piece = [&](int s) {
    return buffer.slice(segs.offset(s), segs.length(s));
  };
  auto send_segment = [&](int s) {
    std::vector<mpi::RequestPtr> sends;
    sends.reserve(e.kids_global.size());
    for (Rank child : e.kids_global) {
      sends.push_back(ctx.isend(child, base_tag + s, piece(s).as_const(),
                                opts.spaces(ctx.rank(), child)));
    }
    return sends;
  };

  if (e.is_root) {
    for (int s = 0; s < S; ++s) {
      co_await mpi::wait_all(send_segment(s));
    }
    co_return;
  }

  std::vector<mpi::RequestPtr> recvs(static_cast<std::size_t>(S));
  for (int s = 0; s < std::min(S, 2); ++s) {
    recvs[static_cast<std::size_t>(s)] =
        ctx.irecv(e.parent_global, base_tag + s, piece(s));
  }
  for (int s = 0; s < S; ++s) {
    co_await mpi::wait(recvs[static_cast<std::size_t>(s)]);
    if (s + 2 < S) {
      recvs[static_cast<std::size_t>(s + 2)] =
          ctx.irecv(e.parent_global, base_tag + s + 2, piece(s + 2));
    }
    if (!e.kids_global.empty()) {
      co_await mpi::wait_all(send_segment(s));
    }
  }
}

// ---------------------------------------------------------------------------
// Algorithm 3 (Fig. 4): ADAPT event-driven broadcast. No Waitall anywhere;
// each child's pipeline advances independently on Isend-completion events
// (child independence) and M posted receives keep segments flowing in any
// arrival order (segment independence).
// ---------------------------------------------------------------------------
struct AdaptBcastState {
  runtime::Context* ctx = nullptr;
  Edges edges;
  mpi::MutView buffer;
  Segmenter segs{0, 1};
  CollOpts opts;
  Tag base_tag = 0;

  std::vector<char> received;    // per segment: arrived (in primary space)
  std::vector<char> alt_ready;   // per segment: staged into the other space
  std::vector<int> next_send;    // per child: next segment index to send
  std::vector<int> inflight;     // per child: outstanding isends (<= N)
  std::vector<char> child_needs_alt;  // child edge sources the staged space
  bool flushes = false;          // §4.1 per-segment staging copy required
  MemSpace stage_dst = MemSpace::kDevice;  // flush direction (src is other)
  int next_recv_post = 0;        // next segment to post an irecv for
  mpi::ErrCode error = mpi::ErrCode::kOk;  // first failure wins
  sim::Countdown done{0};

  mpi::MutView piece(int s) {
    return buffer.slice(segs.offset(s), segs.length(s));
  }

  /// A request failed: record the first cause, stop pumping, wake the
  /// awaiter. Late callbacks from the remaining requests land in the guards
  /// below and do nothing.
  void fail(mpi::ErrCode code) {
    if (error != mpi::ErrCode::kOk) return;
    error = code;
    done.force();
  }

  void post_next_recv(const std::shared_ptr<AdaptBcastState>& self) {
    if (error != mpi::ErrCode::kOk) return;
    if (next_recv_post >= segs.count()) return;
    const int s = next_recv_post++;
    auto req = ctx->irecv(edges.parent_global, base_tag + s, piece(s));
    req->set_completion_cb([self, s](mpi::Request& r) {
      if (r.failed()) return self->fail(r.error());
      self->on_recv(self, s);
    });
  }

  void on_recv(const std::shared_ptr<AdaptBcastState>& self, int s) {
    if (error != mpi::ErrCode::kOk) return;
    detail::segment_event(*ctx, "seg_recv", s);
    received[static_cast<std::size_t>(s)] = 1;
    done.signal();
    post_next_recv(self);
    if (flushes) stage(self, s);
    for (std::size_t c = 0; c < edges.kids_global.size(); ++c)
      pump_child(self, c);
  }

  // Explicit CPU buffer (§4.1): stage the segment into the other memory
  // space with an async stream copy, overlapped with everything else; child
  // edges sourcing that space gate on it.
  void stage(const std::shared_ptr<AdaptBcastState>& self, int s) {
    gpu::Device* dev = ctx->gpu();
    const MemSpace src = stage_dst == MemSpace::kDevice ? MemSpace::kHost
                                                        : MemSpace::kDevice;
    dev->stream(s % dev->num_streams())
        .memcpy_async(stage_dst, src, segs.length(s), [self, s] {
          self->alt_ready[static_cast<std::size_t>(s)] = 1;
          self->done.signal();
          for (std::size_t c = 0; c < self->edges.kids_global.size(); ++c) {
            if (self->child_needs_alt[c]) self->pump_child(self, c);
          }
        });
  }

  bool sendable(std::size_t c, int s) const {
    if (flushes && child_needs_alt[c])
      return alt_ready[static_cast<std::size_t>(s)] != 0;
    return received[static_cast<std::size_t>(s)] != 0;
  }

  // The Isend_cb loop: keep <= N sends in flight per child, advancing through
  // segments in order as they become locally available.
  void pump_child(const std::shared_ptr<AdaptBcastState>& self,
                  std::size_t c) {
    while (error == mpi::ErrCode::kOk &&
           inflight[c] < opts.outstanding_sends &&
           next_send[c] < segs.count() && sendable(c, next_send[c])) {
      const int s = next_send[c]++;
      ++inflight[c];
      detail::segment_event(*ctx, "seg_send", s);
      auto req = ctx->isend(edges.kids_global[c], base_tag + s,
                            piece(s).as_const(),
                            opts.spaces(ctx->rank(), edges.kids_global[c]));
      req->set_completion_cb([self, c](mpi::Request& r) {
        if (r.failed()) return self->fail(r.error());
        --self->inflight[c];
        self->done.signal();
        self->pump_child(self, c);
      });
    }
  }
};

sim::Task<> bcast_adapt(runtime::Context& ctx, const Edges& e,
                        mpi::MutView buffer, const Segmenter& segs,
                        const CollOpts& opts, Tag base_tag) {
  ADAPT_CHECK(opts.outstanding_sends >= 1);
  ADAPT_CHECK(opts.outstanding_recvs >= 1);
  const int S = segs.count();
  auto st = std::make_shared<AdaptBcastState>();
  st->ctx = &ctx;
  st->edges = e;
  st->buffer = buffer;
  st->segs = segs;
  st->opts = opts;
  st->base_tag = base_tag;
  st->received.assign(static_cast<std::size_t>(S), e.is_root ? 1 : 0);
  st->next_send.assign(e.kids_global.size(), 0);
  st->inflight.assign(e.kids_global.size(), 0);

  // §4.1 host-cache bookkeeping. A non-root rank whose parent edge lands in
  // HOST memory keeps the cache as its primary space and flushes each segment
  // down to its GPU; the root's data starts on the GPU, so it pulls each
  // segment UP into the cache. Child edges sourcing the staged space gate on
  // the corresponding copy.
  st->child_needs_alt.assign(e.kids_global.size(), 0);
  if (opts.gpu_host_cache) {
    if (e.is_root) {
      st->flushes = true;
      st->stage_dst = MemSpace::kHost;
    } else {
      const mpi::SendOpts in = opts.spaces(e.parent_global, ctx.rank());
      st->flushes = in.dst_space == MemSpace::kHost;
      st->stage_dst = MemSpace::kDevice;
    }
  }
  if (st->flushes) {
    ADAPT_CHECK(ctx.gpu() != nullptr) << "gpu_host_cache on a non-GPU rank";
    st->alt_ready.assign(static_cast<std::size_t>(S), 0);
    for (std::size_t c = 0; c < e.kids_global.size(); ++c) {
      st->child_needs_alt[c] =
          opts.spaces(ctx.rank(), e.kids_global[c]).src_space == st->stage_dst;
    }
  }

  const int recv_events = e.is_root ? 0 : S;
  const int send_events = static_cast<int>(e.kids_global.size()) * S;
  const int flush_events = st->flushes ? S : 0;
  st->done = sim::Countdown(recv_events + send_events + flush_events);

  if (!e.is_root) {
    const int prepost = std::min(S, opts.outstanding_recvs);
    for (int i = 0; i < prepost; ++i) st->post_next_recv(st);
  } else {
    if (st->flushes) {
      for (int s = 0; s < S; ++s) st->stage(st, s);
    }
    for (std::size_t c = 0; c < e.kids_global.size(); ++c)
      st->pump_child(st, c);
  }
  co_await st->done;
  // The callback chain above ran entirely in the progress context; marking
  // the collective request complete is observed by the application thread.
  co_await ctx.compute(0);
  if (st->error != mpi::ErrCode::kOk) {
    throw mpi::FaultError(st->error, "adapt bcast failed");
  }
}

}  // namespace

sim::Task<> bcast_tagged(runtime::Context& ctx, const mpi::Comm& comm,
                         mpi::MutView buffer, Rank root, const Tree& tree,
                         Style style, const CollOpts& opts, Tag base_tag) {
  ADAPT_CHECK(tree.root == root)
      << "tree rooted at " << tree.root << ", bcast root " << root;
  const Edges e = detail::resolve(ctx, comm, tree);
  const Segmenter segs(buffer.size, opts.segment_size);
  detail::CollSpan span(ctx, "bcast", style_name(style), buffer.size);
  switch (style) {
    case Style::kBlocking:
      co_await bcast_blocking(ctx, e, buffer, segs, opts, base_tag);
      co_return;
    case Style::kNonblocking:
      co_await bcast_nonblocking(ctx, e, buffer, segs, opts, base_tag);
      co_return;
    case Style::kAdapt:
      co_await bcast_adapt(ctx, e, buffer, segs, opts, base_tag);
      co_return;
  }
  ADAPT_UNREACHABLE("bad style");
}

sim::Task<> bcast(runtime::Context& ctx, const mpi::Comm& comm,
                  mpi::MutView buffer, Rank root, const Tree& tree,
                  Style style, const CollOpts& opts) {
  const Segmenter segs(buffer.size, opts.segment_size);
  const Tag base_tag = ctx.alloc_tags(segs.count());
  co_await bcast_tagged(ctx, comm, buffer, root, tree, style, opts, base_tag);
}

}  // namespace adapt::coll
