#include "src/mpi/comm.hpp"

#include <algorithm>
#include <map>
#include <numeric>

namespace adapt::mpi {

namespace {

std::uint64_t members_fingerprint(const std::vector<Rank>& members) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a 64
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  mix(static_cast<std::uint64_t>(members.size()));
  for (const Rank r : members) mix(static_cast<std::uint64_t>(r));
  return h;
}

}  // namespace

Comm Comm::world(int nranks) {
  ADAPT_CHECK(nranks > 0);
  std::vector<Rank> members(static_cast<std::size_t>(nranks));
  std::iota(members.begin(), members.end(), 0);
  return Comm(std::move(members));
}

Comm::Comm(std::vector<Rank> members) {
  ADAPT_CHECK(!members.empty());
  std::vector<Rank> sorted = members;
  std::sort(sorted.begin(), sorted.end());
  ADAPT_CHECK(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end())
      << "duplicate member rank";
  state_ = std::make_shared<CommState>();
  state_->members = std::move(members);
  state_->fingerprint = members_fingerprint(state_->members);
  cstate_ = state_;
}

std::vector<Comm> Comm::split_by(const std::function<int(Rank)>& color) const {
  std::map<int, std::vector<Rank>> groups;  // color -> members, comm order
  for (const Rank g : members()) groups[color(g)].push_back(g);
  std::vector<Comm> out;
  out.reserve(groups.size());
  for (auto& [c, group] : groups) out.emplace_back(std::move(group));
  return out;
}

Rank Comm::local_of(Rank global_rank) const {
  const auto& m = members();
  const auto it = std::find(m.begin(), m.end(), global_rank);
  if (it == m.end()) return kAnyRank;
  return static_cast<Rank>(it - m.begin());
}

}  // namespace adapt::mpi
