#include "src/coll/topo_tree.hpp"

#include <algorithm>
#include <map>

#include "src/support/error.hpp"

namespace adapt::coll {

namespace {

/// Leader of a group: the root when present, otherwise the first member.
Rank leader_of(const std::vector<Rank>& group, Rank root) {
  ADAPT_CHECK(!group.empty());
  if (std::find(group.begin(), group.end(), root) != group.end()) return root;
  return group.front();
}

void merge_edges(Tree& final_tree, const Tree& group_tree) {
  for (Rank r = 0; r < group_tree.size(); ++r) {
    for (Rank c : group_tree.kids(r)) {
      ADAPT_CHECK(final_tree.parent[static_cast<std::size_t>(c)] == -1)
          << "rank " << c << " acquired two parents";
      final_tree.parent[static_cast<std::size_t>(c)] = r;
      final_tree.children[static_cast<std::size_t>(r)].push_back(c);
    }
  }
}

}  // namespace

Tree build_topo_tree(const topo::Machine& machine, const mpi::Comm& comm,
                     Rank root, const TopoTreeSpec& spec) {
  const int n = comm.size();
  ADAPT_CHECK(root >= 0 && root < n);

  // Group local ranks by global socket, remembering each socket's node.
  std::map<int, std::vector<Rank>> socket_groups;  // socket id -> local ranks
  std::map<int, int> socket_node;                  // socket id -> node id
  for (Rank local = 0; local < n; ++local) {
    const Rank global = comm.global(local);
    const int sock = machine.socket_id(global);
    socket_groups[sock].push_back(local);
    socket_node[sock] = machine.node_of(global);
  }

  // Socket leaders grouped by node.
  std::map<int, std::vector<Rank>> node_groups;  // node id -> socket leaders
  for (const auto& [sock, members] : socket_groups)
    node_groups[socket_node.at(sock)].push_back(leader_of(members, root));

  // Node leaders, rooted at the root's node leader (== root, since the root
  // leads its socket and node by construction).
  std::vector<Rank> node_leaders;
  node_leaders.reserve(node_groups.size());
  for (const auto& [node, socket_leaders] : node_groups)
    node_leaders.push_back(leader_of(socket_leaders, root));

  Tree result;
  result.root = root;
  result.parent.assign(static_cast<std::size_t>(n), -1);
  result.children.resize(static_cast<std::size_t>(n));

  // Merge order = upper level first, so leaders' child lists start with
  // their slow-lane (inter-node, then inter-socket) children.
  if (node_leaders.size() > 1) {
    merge_edges(result,
                tree_over(spec.node_level, node_leaders, root, spec.radix));
  }
  for (const auto& [node, socket_leaders] : node_groups) {
    if (socket_leaders.size() > 1) {
      merge_edges(result, tree_over(spec.socket_level, socket_leaders,
                                    leader_of(socket_leaders, root),
                                    spec.radix));
    }
  }
  for (const auto& [sock, members] : socket_groups) {
    if (members.size() > 1) {
      merge_edges(result, tree_over(spec.core_level, members,
                                    leader_of(members, root), spec.radix));
    }
  }

  result.validate();
  return result;
}

}  // namespace adapt::coll
