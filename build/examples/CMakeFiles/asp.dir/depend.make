# Empty dependencies file for asp.
# This may be replaced when dependencies are built.
