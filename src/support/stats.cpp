#include "src/support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "src/support/error.hpp"

namespace adapt {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Samples::mean() const {
  if (xs_.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs_) s += x;
  return s / static_cast<double>(xs_.size());
}

double Samples::min() const {
  ADAPT_CHECK(!xs_.empty());
  return *std::min_element(xs_.begin(), xs_.end());
}

double Samples::max() const {
  ADAPT_CHECK(!xs_.empty());
  return *std::max_element(xs_.begin(), xs_.end());
}

double Samples::quantile(double q) const {
  ADAPT_CHECK(!xs_.empty());
  ADAPT_CHECK(q >= 0.0 && q <= 1.0) << "q=" << q;
  std::vector<double> sorted = xs_;
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace adapt
