// BlockArena: a size-classed free-list allocator for small, frequently
// recycled runtime objects (Requests, pending-transfer records).
//
// The steady-state contract (persistent collectives, PR 6) is "zero heap
// allocations per start after warm-up". std::make_shared<Request> was the
// last stubborn allocation on the P2P hot path: one control-block+object
// heap round trip per isend/irecv. Routing those through an arena turns
// them into a free-list pop/push — the heap is touched only while a size
// class grows, i.e. during warm-up.
//
// Thread safety: a mutex guards the free lists. On the SimEngine this is an
// uncontended lock per op; on the ThreadEngine requests allocated by one
// rank thread may be released by another (the last RequestPtr can die
// anywhere), so the lock is load-bearing there.
//
// Lifetime: allocators hand out blocks that must return to the SAME arena.
// ArenaAllocator holds a shared_ptr to the arena, and std::allocate_shared
// stores a copy of the allocator inside the control block — so an arena
// outlives every object allocated from it even if the owning Endpoint (and
// its engine) are long gone while user code still holds a RequestPtr.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <new>
#include <vector>

#include "src/support/error.hpp"

namespace adapt::support {

class BlockArena {
 public:
  BlockArena() = default;
  BlockArena(const BlockArena&) = delete;
  BlockArena& operator=(const BlockArena&) = delete;
  ~BlockArena() {
    for (auto& list : free_) {
      for (void* p : list) ::operator delete(p);
    }
  }

  void* allocate(std::size_t bytes) {
    const std::size_t cls = class_of(bytes);
    if (cls == kSpill) return ::operator new(bytes);  // oversized: no reuse
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto& list = free_[cls];
      if (!list.empty()) {
        void* p = list.back();
        list.pop_back();
        ++hits_;
        return p;
      }
      ++misses_;
    }
    return ::operator new(class_bytes(cls));
  }

  void deallocate(void* p, std::size_t bytes) {
    const std::size_t cls = class_of(bytes);
    if (cls == kSpill) {
      ::operator delete(p);
      return;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    free_[cls].push_back(p);
  }

  std::uint64_t hits() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
  }
  std::uint64_t misses() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
  }

 private:
  // Classes are 64-byte steps up to 1 KiB; anything larger is a spill
  // (plain new/delete, no recycling — the arena serves the runtime's small
  // uniform object populations, not arbitrary buffers).
  static constexpr std::size_t kStep = 64;
  static constexpr std::size_t kClasses = 16;  // 64B, 128B, .. 1KiB
  static constexpr std::size_t kSpill = kClasses;

  static std::size_t class_of(std::size_t bytes) {
    if (bytes == 0) return 0;
    const std::size_t cls = (bytes - 1) / kStep;  // 1..64 -> 0, 65..128 -> 1
    return cls < kClasses ? cls : kSpill;
  }
  static std::size_t class_bytes(std::size_t cls) {
    return (cls + 1) * kStep;
  }

  mutable std::mutex mutex_;
  std::vector<void*> free_[kClasses];
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// Minimal C++ Allocator over a shared BlockArena, for allocate_shared:
/// the control block carries a copy (keeping the arena alive past the
/// engine) and every allocation/deallocation is a free-list hit in steady
/// state.
template <typename T>
struct ArenaAllocator {
  using value_type = T;

  explicit ArenaAllocator(std::shared_ptr<BlockArena> arena)
      : arena_(std::move(arena)) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other)  // NOLINT(google-explicit-*)
      : arena_(other.arena_) {}

  T* allocate(std::size_t n) {
    ADAPT_CHECK(n == 1) << "BlockArena serves single objects";
    return static_cast<T*>(arena_->allocate(sizeof(T)));
  }
  void deallocate(T* p, std::size_t /*n*/) {
    arena_->deallocate(p, sizeof(T));
  }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& other) const {
    return arena_ == other.arena_;
  }

  std::shared_ptr<BlockArena> arena_;
};

}  // namespace adapt::support
