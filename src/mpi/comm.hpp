// Communicators: ordered process groups with local<->global rank translation.
//
// ADAPT's topology-aware collectives run on a *single* communicator (§3.2);
// the multi-level-communicator baseline (§3.1) splits the world by node and
// socket, which `split_by` supports.
#pragma once

#include <vector>

#include "src/support/error.hpp"
#include "src/support/units.hpp"

namespace adapt::mpi {

class Comm {
 public:
  /// World communicator over ranks [0, nranks).
  static Comm world(int nranks);

  /// Communicator over an explicit ordered member list (global ranks).
  explicit Comm(std::vector<Rank> members);

  int size() const { return static_cast<int>(members_.size()); }
  Rank global(Rank local) const {
    ADAPT_CHECK(local >= 0 && local < size());
    return members_[static_cast<std::size_t>(local)];
  }
  /// Local rank of a global rank, or kAnyRank when not a member.
  Rank local_of(Rank global_rank) const;
  bool contains(Rank global_rank) const {
    return local_of(global_rank) != kAnyRank;
  }
  const std::vector<Rank>& members() const { return members_; }

 private:
  std::vector<Rank> members_;
};

}  // namespace adapt::mpi
