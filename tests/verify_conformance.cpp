// Standalone conformance driver (registered with ctest as `verify_conformance`).
//
// Default run, in order:
//   1. the full matrix — every collective × style × library × datatype/op ×
//      communicator subset, each on the stable SimEngine schedule, on
//      --seeds perturbed schedules, and on the ThreadEngine, diffed against
//      the sequential oracle;
//   2. a harness self-test — the same machinery pointed at a deliberately
//      buggy gather (wildcard-source arrival-order assumption) MUST report a
//      failure with a reproducer seed, proving the perturbation matrix
//      catches what it claims to catch.
//
// A reported failure line is replayable:  verify_conformance --repro '<line>'.
#include <cstring>
#include <iostream>
#include <string>

#include "src/verify/conformance.hpp"

namespace {

using namespace adapt;
using namespace adapt::verify;

int usage() {
  std::cerr
      << "usage: verify_conformance [--seeds=K] [--jitter=NS] [--no-thread]\n"
         "                          [--no-shrink] [--no-selftest]\n"
         "                          [--repro '<failure line>']\n";
  return 2;
}

int replay(const std::string& line) {
  CaseConfig config;
  RunSpec spec;
  Fault fault = Fault::kNone;
  if (!parse_repro(line, &config, &spec, &fault)) {
    std::cerr << "unparseable repro line: " << line << "\n";
    return 2;
  }
  std::cout << "replaying: " << repro_string(config, spec, fault) << "\n";
  if (auto mismatch = run_case(config, spec, fault)) {
    std::cout << "REPRODUCED: " << *mismatch << "\n";
    return 1;
  }
  std::cout << "case passed (bug not reproduced)\n";
  return 0;
}

/// The seeded-fault self-test: the faulty gather must slip through the stable
/// schedule's rank-order arrivals but be caught by some perturbation seed.
bool selftest(int seeds, TimeNs jitter) {
  CaseConfig config;
  config.collective = Collective::kGather;
  config.world = 12;
  config.comm = CommKind::kWorld;
  config.root = 1;
  config.bytes = 1000;

  MatrixOptions options;
  options.sim_seeds = seeds;
  options.max_jitter = jitter;
  options.thread_engine = false;  // keep the self-test deterministic
  options.fault = Fault::kGatherArrivalOrder;
  Report report = run_matrix({config}, options);
  if (report.ok()) {
    std::cout << "SELF-TEST FAILED: no perturbation seed caught the seeded "
                 "arrival-order fault ("
              << report.runs << " runs)\n";
    return false;
  }
  const Failure& failure = report.failures.front();
  std::cout << "self-test: harness caught the seeded fault under "
               "perturbation seed "
            << failure.spec.perturb_seed << "\n  repro: " << failure.repro
            << "\n  " << failure.detail << "\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  int seeds = 20;
  TimeNs jitter = microseconds(5);
  bool thread_engine = true;
  bool shrink = true;
  bool run_selftest = true;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--seeds=", 0) == 0) {
      seeds = std::stoi(arg.substr(8));
    } else if (arg.rfind("--jitter=", 0) == 0) {
      jitter = std::stoll(arg.substr(9));
    } else if (arg == "--no-thread") {
      thread_engine = false;
    } else if (arg == "--no-shrink") {
      shrink = false;
    } else if (arg == "--no-selftest") {
      run_selftest = false;
    } else if (arg == "--repro" && i + 1 < argc) {
      return replay(argv[++i]);
    } else {
      return usage();
    }
  }

  MatrixOptions options;
  options.sim_seeds = seeds;
  options.max_jitter = jitter;
  options.thread_engine = thread_engine;
  options.shrink = shrink;
  options.log = [](const std::string& line) { std::cerr << line << "\n"; };

  const std::vector<CaseConfig> cases = full_matrix();
  std::cout << "conformance matrix: " << cases.size() << " cases × (1 stable + "
            << seeds << " perturbed" << (thread_engine ? " + 1 thread" : "")
            << ") runs\n";
  const Report report = run_matrix(cases, options);
  std::cout << report.summary() << "\n";
  if (!report.ok()) {
    std::cout << "replay any line with: verify_conformance --repro '<line>'\n";
    return 1;
  }

  if (run_selftest && !selftest(seeds, jitter)) return 1;

  std::cout << "OK\n";
  return 0;
}

// The self-test's fault lives in src/verify/faulty.cpp; this deliberate
// selftest wiring keeps the ctest target self-certifying: a green run proves
// both "all collectives conform" and "the harness can actually see a bug".
