// Eventually-consistent collectives (Iakymchuk et al.: trade byte-exactness
// for progress under churn).
//
// Instead of a schedule that every member must execute, each rank runs a
// flat, direct exchange bounded by a *staleness deadline*: whatever reached
// it by the deadline is folded (in rank order — deterministic and
// order-insensitive for commutative ops), the rest is dropped, and the op
// reports exactly which members contributed. A dead or slow peer costs its
// contribution, never progress: every live rank completes within the
// staleness bound, unconditionally.
//
// The conformance contract is therefore *bounded staleness*, not
// byte-exactness: `result == fold(contributions of result.contributors)`,
// finish_time - start_time <= staleness (+ scheduling slack), and
// contributors always includes the caller. Under no churn the exchange
// normally completes early with every member contributing (complete = true).
//
// The ops hold the recovery layer's poison shield while running: failure
// notices must not wipe out a deadline-bounded exchange that can absorb the
// loss by itself.
#pragma once

#include <cstdint>

#include "src/coll/coll.hpp"

namespace adapt::coll {

struct EcOpts {
  /// Staleness deadline; 0 = RecoveryOptions::staleness_bound (or 30 ms
  /// without a recovery service).
  TimeNs staleness = 0;
};

struct EcResult {
  /// Global-rank mask of members whose contribution is folded into the
  /// result (always includes the caller; for bcast: the root when its
  /// payload arrived in time).
  std::uint64_t contributors = 0;
  bool complete = false;  ///< every member contributed before the deadline
};

/// Eventually-consistent allreduce: fold of whoever's contribution arrives
/// within the staleness bound. `op` should be commutative+associative (the
/// fold order is the member order).
sim::Task<EcResult> ec_allreduce(runtime::Context& ctx, const mpi::Comm& comm,
                                 mpi::MutView accum, mpi::ReduceOp op,
                                 mpi::Datatype dtype, const EcOpts& opts = {});

/// Eventually-consistent broadcast from global rank `root`: non-root members
/// either receive the payload within the bound (complete = true, buffer
/// overwritten) or time out (complete = false, buffer untouched).
sim::Task<EcResult> ec_bcast(runtime::Context& ctx, const mpi::Comm& comm,
                             mpi::MutView buffer, Rank root,
                             const EcOpts& opts = {});

}  // namespace adapt::coll
