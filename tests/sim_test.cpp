#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <optional>
#include <vector>

#include "src/sim/event_queue.hpp"
#include "src/sim/simulator.hpp"
#include "src/sim/task.hpp"
#include "src/support/error.hpp"

namespace adapt::sim {
namespace {

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  std::vector<int> fired;
  q.push(30, [&] { fired.push_back(3); });
  q.push(10, [&] { fired.push_back(1); });
  q.push(20, [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, StableAtEqualTimes) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 8; ++i) q.push(5, [&fired, i] { fired.push_back(i); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(EventQueue, CancelSkipsEvent) {
  EventQueue q;
  int fired = 0;
  auto h = q.push(1, [&] { ++fired; });
  q.push(2, [&] { ++fired; });
  h.cancel();
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelAllLeavesEmpty) {
  EventQueue q;
  auto a = q.push(1, [] {});
  auto b = q.push(2, [] {});
  a.cancel();
  b.cancel();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  auto a = q.push(1, [] {});
  q.push(7, [] {});
  a.cancel();
  EXPECT_EQ(q.next_time(), 7);
}

TEST(Simulator, AdvancesTime) {
  Simulator s;
  TimeNs seen = -1;
  s.after(100, [&] { seen = s.now(); });
  s.run();
  EXPECT_EQ(seen, 100);
  EXPECT_EQ(s.now(), 100);
  EXPECT_EQ(s.events_processed(), 1u);
}

TEST(Simulator, NestedScheduling) {
  Simulator s;
  std::vector<TimeNs> times;
  s.after(10, [&] {
    times.push_back(s.now());
    s.after(5, [&] { times.push_back(s.now()); });
  });
  s.run();
  EXPECT_EQ(times, (std::vector<TimeNs>{10, 15}));
}

TEST(Simulator, RunUntilStopsEarly) {
  Simulator s;
  int fired = 0;
  s.after(10, [&] { ++fired; });
  s.after(100, [&] { ++fired; });
  s.run(50);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(s.idle());
  s.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RejectsSchedulingIntoPast) {
  Simulator s;
  s.after(10, [] {});
  s.run();
  EXPECT_THROW(s.at(5, [] {}), Error);
  EXPECT_THROW(s.after(-1, [] {}), Error);
}

TEST(Simulator, StepExecutesOne) {
  Simulator s;
  int fired = 0;
  s.after(1, [&] { ++fired; });
  s.after(2, [&] { ++fired; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

// ---------------------------------------------------------------- Tasks ---

Task<int> make_value(int v) { co_return v; }

Task<int> add_two(int v) {
  const int a = co_await make_value(v);
  const int b = co_await make_value(1);
  co_return a + b + 1;
}

TEST(Task, ChainsValues) {
  int result = 0;
  auto body = [&]() -> Task<> { result = co_await add_two(5); };
  run_detached(body(), [](std::exception_ptr ep) { EXPECT_FALSE(ep); });
  EXPECT_EQ(result, 7);
}

TEST(Task, PropagatesExceptions) {
  auto boom = []() -> Task<> {
    throw Error("boom");
    co_return;
  };
  bool caught = false;
  auto body = [&]() -> Task<> {
    try {
      co_await boom();
    } catch (const Error&) {
      caught = true;
    }
  };
  run_detached(body(), [](std::exception_ptr) {});
  EXPECT_TRUE(caught);
}

TEST(Task, DetachedReportsException) {
  auto boom = []() -> Task<> {
    throw Error("boom");
    co_return;
  };
  std::exception_ptr seen;
  run_detached(boom(), [&](std::exception_ptr ep) { seen = ep; });
  EXPECT_TRUE(seen);
}

TEST(Task, SuspendResumesThroughSimulator) {
  Simulator s;
  std::vector<TimeNs> trace;
  auto prog = [&]() -> Task<> {
    trace.push_back(s.now());
    co_await Suspend([&](std::coroutine_handle<> h) {
      s.after(25, [h] { h.resume(); });
    });
    trace.push_back(s.now());
  };
  bool done = false;
  s.after(0, [&] {
    run_detached(prog(), [&](std::exception_ptr) { done = true; });
  });
  s.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(trace, (std::vector<TimeNs>{0, 25}));
}

TEST(Trigger, FireResumesAllWaiters) {
  Trigger t;
  int woke = 0;
  auto waiter = [&]() -> Task<> {
    co_await t;
    ++woke;
  };
  run_detached(waiter(), [](std::exception_ptr) {});
  run_detached(waiter(), [](std::exception_ptr) {});
  EXPECT_EQ(woke, 0);
  t.fire();
  EXPECT_EQ(woke, 2);
}

TEST(Trigger, AwaitAfterFireDoesNotSuspend) {
  Trigger t;
  t.fire();
  int woke = 0;
  auto body = [&]() -> Task<> {
    co_await t;
    ++woke;
  };
  run_detached(body(), [](std::exception_ptr) {});
  EXPECT_EQ(woke, 1);
}

TEST(Trigger, SubscribeBeforeAndAfterFire) {
  Trigger t;
  int calls = 0;
  t.subscribe([&] { ++calls; });
  t.fire();
  EXPECT_EQ(calls, 1);
  t.subscribe([&] { ++calls; });
  EXPECT_EQ(calls, 2);
  t.fire();  // idempotent
  EXPECT_EQ(calls, 2);
}

TEST(Countdown, FiresAtZero) {
  Countdown c(3);
  int woke = 0;
  // Named closure: the coroutine frame references the closure object, which
  // must outlive the suspension (a temporary here is a use-after-scope).
  auto body = [&]() -> Task<> {
    co_await c;
    ++woke;
  };
  run_detached(body(), [](std::exception_ptr) {});
  c.signal();
  c.signal();
  EXPECT_EQ(woke, 0);
  c.signal();
  EXPECT_EQ(woke, 1);
  EXPECT_THROW(c.signal(), Error);
}

TEST(Countdown, ZeroBornFired) {
  Countdown c(0);
  int woke = 0;
  auto body = [&]() -> Task<> {
    co_await c;
    ++woke;
  };
  run_detached(body(), [](std::exception_ptr) {});
  EXPECT_EQ(woke, 1);
}

// -- schedule perturbation (src/verify's engine hook) ----------------------

TEST(EventQueuePerturb, ShufflesTiesButKeepsAllEvents) {
  EventQueue q;
  q.set_perturbation(PerturbConfig{.seed = 99, .shuffle_ties = true});
  std::vector<int> fired;
  for (int i = 0; i < 16; ++i) q.push(5, [&fired, i] { fired.push_back(i); });
  while (!q.empty()) q.pop().second();
  std::vector<int> sorted = fired;
  std::sort(sorted.begin(), sorted.end());
  std::vector<int> identity(16);
  for (int i = 0; i < 16; ++i) identity[static_cast<std::size_t>(i)] = i;
  EXPECT_EQ(sorted, identity);   // nothing lost or duplicated
  EXPECT_NE(fired, identity);    // and the FIFO tie order is actually broken
}

TEST(EventQueuePerturb, SameSeedSameOrder) {
  auto run = [](std::uint64_t seed) {
    EventQueue q;
    q.set_perturbation(PerturbConfig{.seed = seed, .max_jitter = 50});
    std::vector<int> fired;
    for (int i = 0; i < 12; ++i) {
      q.push(10 * (i % 3), [&fired, i] { fired.push_back(i); });
    }
    while (!q.empty()) q.pop().second();
    return fired;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(EventQueuePerturb, JitterIsBoundedAndNeverEarly) {
  EventQueue q;
  const TimeNs jitter = 100;
  q.set_perturbation(PerturbConfig{.seed = 3, .max_jitter = jitter});
  const TimeNs scheduled[] = {0, 10, 10, 500, 500, 500, 1000};
  for (TimeNs t : scheduled) q.push(t, [] {});
  // Pop times are nondecreasing and each lies in [t, t + jitter] for SOME
  // scheduled t — never before any event's own schedule time (causality).
  TimeNs prev = -1;
  std::size_t popped = 0;
  while (!q.empty()) {
    const TimeNs t = q.pop().first;
    EXPECT_GE(t, prev);
    prev = t;
    bool legal = false;
    for (TimeNs s : scheduled) legal = legal || (t >= s && t <= s + jitter);
    EXPECT_TRUE(legal) << "pop time " << t;
    ++popped;
  }
  EXPECT_EQ(popped, std::size(scheduled));
}

TEST(EventQueuePerturb, DisablingRestoresFifo) {
  EventQueue q;
  q.set_perturbation(PerturbConfig{.seed = 4});
  q.set_perturbation(std::nullopt);
  std::vector<int> fired;
  for (int i = 0; i < 8; ++i) q.push(5, [&fired, i] { fired.push_back(i); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
  EXPECT_FALSE(q.perturbed());
}

}  // namespace
}  // namespace adapt::sim
