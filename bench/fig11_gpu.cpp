// Figure 11: broadcast and reduce on GPU data, PSG-like cluster (4 K40-class
// GPUs per node, FDR IB, one rank per GPU).
//   a) message-size sweep 1-32 MB on 8 nodes / 32 GPUs
//   b) strong scaling at 32 MB from 1 node (4 GPUs) to 8 nodes (32 GPUs)
//
//   fig11_gpu [--iters N] [--nodes N] [--json [FILE]]
#include <iostream>

#include "src/bench/cli.hpp"
#include "src/bench/imb.hpp"
#include "src/bench/report.hpp"
#include "src/topo/presets.hpp"
#include "src/gpu/gpu_coll.hpp"
#include "src/runtime/sim_engine.hpp"
#include "src/support/table.hpp"

namespace {

using namespace adapt;

double run_one(int nodes, const std::string& lib_name, bool is_bcast,
               Bytes msg, int iters) {
  topo::Machine machine(topo::psg(nodes), nodes * 4,
                        topo::PlacementPolicy::kByGpu);
  const mpi::Comm world = mpi::Comm::world(machine.nranks());
  auto lib = gpu::make_gpu_library(lib_name, machine);
  runtime::SimEngineOptions options;
  options.gpu = lib->gpu_config();
  runtime::SimEngine engine(machine, options);
  mpi::MutView buffer{nullptr, msg};
  auto fn = [&](runtime::Context& ctx, int) -> sim::Task<> {
    if (is_bcast) {
      co_await lib->bcast(ctx, world, buffer, 0);
    } else {
      co_await lib->reduce(ctx, world, buffer, mpi::ReduceOp::kSum,
                           mpi::Datatype::kFloat, 0);
    }
  };
  return bench::measure(engine, world, fn, {.warmup = 1, .iterations = iters})
      .avg_ms();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace adapt;
  bench::Cli cli(argc, argv);
  const int iters = static_cast<int>(cli.get_int("iters", 3));
  const int max_nodes = static_cast<int>(cli.get_int("nodes", 8));
  bench::JsonReport report("fig11_gpu");
  report.set_meta("iters", iters);
  report.set_meta("nodes", max_nodes);

  std::cout << "== Figure 11a: GPU broadcast/reduce vs message size on "
            << max_nodes << " nodes (" << max_nodes * 4 << " GPUs) ==\n\n";
  const std::vector<Bytes> sizes = {mib(1), mib(2), mib(4),
                                    mib(8), mib(16), mib(32)};
  for (const char* op : {"Broadcast", "Reduce"}) {
    const bool is_bcast = std::string(op) == "Broadcast";
    std::cout << "Performance of " << op
              << " with GPU data varies by MSG size, time in ms\n";
    std::vector<std::string> header = {"library"};
    for (Bytes s : sizes) header.push_back(format_bytes(s));
    Table table(header);
    for (const std::string& name : gpu::gpu_libraries()) {
      std::vector<double> row;
      for (Bytes msg : sizes) {
        row.push_back(run_one(max_nodes, name, is_bcast, msg, iters));
      }
      table.add_row_numeric(name, row);
    }
    table.print(std::cout);
    std::cout << "\n";
    report.add_table(std::string("GPU ") + op + " vs message size (ms)",
                     table);
  }

  std::cout << "== Figure 11b: GPU strong scaling, MSG=32MB ==\n\n";
  for (const char* op : {"Broadcast", "Reduce"}) {
    const bool is_bcast = std::string(op) == "Broadcast";
    std::cout << "Strong Scalability of " << op
              << " with GPU data, nodes:GPUs from 1:4 to " << max_nodes << ":"
              << max_nodes * 4 << ", time in ms\n";
    std::vector<std::string> header = {"library"};
    for (int n = 1; n <= max_nodes; n *= 2) {
      header.push_back(std::to_string(n) + ":" + std::to_string(4 * n));
    }
    Table table(header);
    for (const std::string& name : gpu::gpu_libraries()) {
      std::vector<double> row;
      for (int n = 1; n <= max_nodes; n *= 2) {
        row.push_back(run_one(n, name, is_bcast, mib(32), iters));
      }
      table.add_row_numeric(name, row);
    }
    table.print(std::cout);
    std::cout << "\n";
    report.add_table(std::string("GPU ") + op + " strong scaling (ms)",
                     table);
  }
  return bench::emit_json(cli, report) ? 0 : 1;
}
