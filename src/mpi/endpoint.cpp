#include "src/mpi/endpoint.hpp"

#include <cstring>

#include "src/support/error.hpp"

namespace adapt::mpi {

RequestPtr Endpoint::isend(Rank dst, Tag tag, ConstView data, SendOpts opts) {
  ADAPT_CHECK(dst >= 0) << "isend to wildcard";
  ADAPT_CHECK(dst != rank_) << "self-send not supported; copy locally";
  auto req = std::make_shared<Request>(Request::Kind::kSend, dst, tag,
                                       data.size, &exec_);
  ++sends_;
  exec_.charge(costs_.cpu_overhead);

  Envelope env;
  env.src = rank_;
  env.dst = dst;
  env.tag = tag;
  env.size = data.size;
  if (!data.synthetic() && data.size > 0) {
    // The payload is captured at post time, so the sender's buffer is
    // immediately reusable (for rendezvous the transport keeps this copy
    // until the grant; semantically equivalent, since the request only
    // completes at transfer end).
    env.data = std::make_shared<std::vector<std::byte>>(
        data.data, data.data + data.size);
  }
  transport_.submit(std::move(env), opts.src_space, opts.dst_space,
                    [req] { req->mark_complete(); });
  return req;
}

RequestPtr Endpoint::irecv(Rank src, Tag tag, MutView buffer) {
  auto req = std::make_shared<Request>(Request::Kind::kRecv, src, tag,
                                       buffer.size, &exec_);
  exec_.charge(costs_.cpu_overhead);

  PostedRecv posted{req, buffer, src, tag};
  if (auto env = matcher_.post(posted)) {
    if (env->rendezvous()) {
      // Late software match of a queued RTS: hand the receive back to the
      // transport, which runs CTS + data. No extra copy — rendezvous's point.
      env->grant(posted);
    } else {
      // Eager unexpected hit: the data already sits in a temporary buffer;
      // pay the allocation/copy penalty before completing (paper §2.2.1 —
      // the cost ADAPT's M > N rule exists to avoid).
      const TimeNs copy_cost =
          costs_.unexpected_overhead +
          static_cast<TimeNs>(costs_.memcpy_beta *
                              static_cast<double>(env->size));
      const Envelope captured = std::move(*env);
      const PostedRecv recv = posted;
      exec_.post_progress(
          [this, recv, captured] { finalize_recv(recv, captured); },
          copy_cost);
    }
  }
  return req;
}

void Endpoint::deliver(Envelope env) {
  // Runs at arrival time WITHOUT the receiver's CPU: matching against
  // pre-posted receives is NIC-offloaded (Aries/Portals-style). Anything that
  // does need the CPU (completion callbacks, unexpected copies, software
  // rendezvous matches) is deferred through the executor by the paths below.
  if (auto recv = matcher_.arrive(env)) {
    if (env.rendezvous()) {
      env.grant(*recv);
    } else {
      exec_.post_progress(
          [this, recv = *recv, env] { finalize_recv(recv, env); },
          costs_.cpu_overhead);
    }
  }
  // Otherwise queued as unexpected (an eager payload or an RTS); a later
  // irecv picks it up.
}

void Endpoint::finalize_recv(const PostedRecv& recv, const Envelope& env) {
  ADAPT_CHECK(env.size <= recv.buffer.size)
      << "message of " << env.size << "B overflows a " << recv.buffer.size
      << "B receive buffer (src=" << env.src << " tag=" << env.tag << ")";
  if (env.data && !recv.buffer.synthetic()) {
    std::memcpy(recv.buffer.data, env.data->data(),
                static_cast<std::size_t>(env.size));
  }
  ++recvs_done_;
  recv.request->mark_complete(env.src, env.tag, env.size);
}

}  // namespace adapt::mpi
