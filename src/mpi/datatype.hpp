// Predefined datatypes, mirroring the MPI basic types the collectives and
// reduction operations work over.
#pragma once

#include <cstddef>
#include <string>

#include "src/support/units.hpp"

namespace adapt::mpi {

enum class Datatype {
  kUint8,
  kInt32,
  kInt64,
  kFloat,
  kDouble,
};

/// Size in bytes of one element.
Bytes size_of(Datatype dtype);

const char* datatype_name(Datatype dtype);

}  // namespace adapt::mpi
