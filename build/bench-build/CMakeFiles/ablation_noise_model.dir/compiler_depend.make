# Empty compiler generated dependencies file for ablation_noise_model.
# This may be replaced when dependencies are built.
