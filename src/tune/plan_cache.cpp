#include "src/tune/plan_cache.hpp"

#include "src/mpi/comm.hpp"
#include "src/obs/trace.hpp"

namespace adapt::tune {

const char* plan_op_name(PlanOp op) {
  switch (op) {
    case PlanOp::kBcast: return "bcast";
    case PlanOp::kReduce: return "reduce";
    case PlanOp::kAllreduce: return "allreduce";
    case PlanOp::kBarrier: return "barrier";
  }
  return "unknown";
}

namespace {

bool plan_live(const CachedPlan& plan) {
  const auto state = plan.comm.lock();
  return state && state->alive();
}

void bump(std::int64_t* counter, std::int64_t by = 1) {
  if (counter != nullptr) *counter += by;
}

}  // namespace

void PlanCache::set_recorder(obs::Recorder* recorder) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (recorder == nullptr) {
    m_hits_ = m_misses_ = m_evictions_ = m_invalidations_ = nullptr;
    return;
  }
  obs::MetricsRegistry& m = recorder->metrics();
  m_hits_ = &m.counter("plan_cache.hits");
  m_misses_ = &m.counter("plan_cache.misses");
  m_evictions_ = &m.counter("plan_cache.evictions");
  m_invalidations_ = &m.counter("plan_cache.invalidations");
}

std::shared_ptr<const CachedPlan> PlanCache::find(const PlanKey& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    bump(m_misses_);
    return nullptr;
  }
  if (!plan_live(*it->second)) {
    // Lazy invalidation: the communicator died since this plan was cached.
    map_.erase(it);
    ++misses_;
    bump(m_misses_);
    bump(m_evictions_);
    return nullptr;
  }
  ++hits_;
  bump(m_hits_);
  return it->second;
}

std::shared_ptr<const CachedPlan> PlanCache::insert(const PlanKey& key,
                                                    CachedPlan plan) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = map_[key];
  // First writer wins: concurrent ranks race to init the same plan and the
  // inputs are deterministic, so any winner's plan is every rank's plan.
  if (!slot || !plan_live(*slot)) {
    slot = std::make_shared<const CachedPlan>(std::move(plan));
  }
  return slot;
}

void PlanCache::invalidate_comm(std::uint64_t comm_fingerprint) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::int64_t erased = 0;
  for (auto it = map_.begin(); it != map_.end();) {
    if (it->first.comm_fingerprint == comm_fingerprint) {
      it = map_.erase(it);
      ++erased;
    } else {
      ++it;
    }
  }
  bump(m_invalidations_, erased);
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  map_.clear();
}

int PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(map_.size());
}

std::uint64_t PlanCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t PlanCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

}  // namespace adapt::tune
