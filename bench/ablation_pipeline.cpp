// Ablations over ADAPT's own design knobs (the choices DESIGN.md calls out):
//   1. segment size — the pipeline trade-off of §5.2.1's Hockney analysis
//      (too small: alpha-dominated; too large: no pipelining);
//   2. N outstanding sends / M posted receives — §2.2.1's M > N rule (M < N
//      forces unexpected messages and their copy penalty);
//   3. per-level tree shape — chains vs binomial at each topo level;
//   4. network contention model — fair sharing vs uncontended Hockney
//      (what the fluid-flow model adds over a naive simulator).
//
//   ablation_pipeline [--ranks 256] [--msg BYTES] [--iters N]
#include <iostream>

#include "src/bench/cli.hpp"
#include "src/bench/imb.hpp"
#include "src/coll/coll.hpp"
#include "src/coll/topo_tree.hpp"
#include "src/topo/presets.hpp"
#include "src/runtime/sim_engine.hpp"
#include "src/support/table.hpp"

namespace {

using namespace adapt;

double run_adapt(const topo::Machine& machine, const mpi::Comm& world,
                 const coll::Tree& tree, Bytes msg, const coll::CollOpts& opts,
                 net::SharingPolicy sharing, int iters) {
  runtime::SimEngineOptions options;
  options.sharing = sharing;
  runtime::SimEngine engine(machine, options);
  mpi::MutView buffer{nullptr, msg};
  auto fn = [&](runtime::Context& ctx, int) -> sim::Task<> {
    co_await coll::bcast(ctx, world, buffer, 0, tree, coll::Style::kAdapt,
                         opts);
  };
  return bench::measure(engine, world, fn, {.warmup = 1, .iterations = iters})
      .avg_ms();
}

}  // namespace

int main(int argc, char** argv) {
  bench::Cli cli(argc, argv);
  const int ranks = static_cast<int>(cli.get_int("ranks", 256));
  const Bytes msg = cli.get_int("msg", mib(4));
  const int iters = static_cast<int>(cli.get_int("iters", 2));
  topo::Machine machine(topo::cori((ranks + 31) / 32), ranks);
  const mpi::Comm world = mpi::Comm::world(ranks);
  const coll::Tree chain_tree = coll::build_topo_tree(machine, world, 0);

  std::cout << "== Ablations: ADAPT broadcast, " << ranks << " ranks, "
            << format_bytes(msg) << " ==\n\n";

  {
    std::cout << "1) Segment size (pipeline granularity)\n";
    Table t({"segment", "time(ms)"});
    for (Bytes seg : {kib(8), kib(32), kib(128), kib(512), mib(4)}) {
      coll::CollOpts opts{.segment_size = seg};
      t.add_row_numeric(format_bytes(seg),
                        {run_adapt(machine, world, chain_tree, msg, opts,
                                   net::SharingPolicy::kFairShare, iters)});
    }
    t.print(std::cout);
    std::cout << "\n";
  }
  {
    std::cout << "2) Outstanding sends N / posted receives M (§2.2.1: keep "
                 "M > N)\n";
    Table t({"N", "M", "time(ms)"});
    for (auto [n, m] : {std::pair{1, 1}, {1, 2}, {2, 1}, {2, 4}, {4, 2},
                        {4, 8}, {8, 16}}) {
      coll::CollOpts opts{.segment_size = kib(128),
                          .outstanding_sends = n,
                          .outstanding_recvs = m};
      char ms[32];
      std::snprintf(ms, sizeof ms, "%.3f",
                    run_adapt(machine, world, chain_tree, msg, opts,
                              net::SharingPolicy::kFairShare, iters));
      t.add_row({std::to_string(n), std::to_string(m), ms});
    }
    t.print(std::cout);
    std::cout << "\n";
  }
  {
    std::cout << "3) Per-level tree shape\n";
    Table t({"levels (node/socket/core)", "time(ms)"});
    using coll::TreeKind;
    const std::pair<const char*, coll::TopoTreeSpec> variants[] = {
        {"chain/chain/chain", {}},
        {"binomial/chain/chain",
         {TreeKind::kChain, TreeKind::kChain, TreeKind::kBinomial, 4}},
        {"binomial/binomial/binomial",
         {TreeKind::kBinomial, TreeKind::kBinomial, TreeKind::kBinomial, 4}},
        {"flat/flat/flat",
         {TreeKind::kFlat, TreeKind::kFlat, TreeKind::kFlat, 4}},
    };
    for (const auto& [label, spec] : variants) {
      const coll::Tree tree = coll::build_topo_tree(machine, world, 0, spec);
      coll::CollOpts opts{.segment_size = kib(128)};
      t.add_row_numeric(label,
                        {run_adapt(machine, world, tree, msg, opts,
                                   net::SharingPolicy::kFairShare, iters)});
    }
    t.print(std::cout);
    std::cout << "\n";
  }
  {
    std::cout << "4) Network model: fair-share contention vs uncontended "
                 "Hockney\n";
    Table t({"model", "time(ms)"});
    coll::CollOpts opts{.segment_size = kib(128)};
    t.add_row_numeric("fair-share (default)",
                      {run_adapt(machine, world, chain_tree, msg, opts,
                                 net::SharingPolicy::kFairShare, iters)});
    t.add_row_numeric("uncontended",
                      {run_adapt(machine, world, chain_tree, msg, opts,
                                 net::SharingPolicy::kUncontended, iters)});
    t.print(std::cout);
    std::cout << "\nAn uncontended model under-reports intra-socket chain "
                 "time (all hops at full\nbandwidth simultaneously) — the "
                 "contention model is what makes tree and\nsegment choices "
                 "matter.\n";
  }
  return 0;
}
