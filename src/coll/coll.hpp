// Public collective-operation API.
//
// Three implementation styles reproduce the paper's comparison axis:
//   kBlocking     — Algorithm 1: blocking P2P, fully ordered (MPICH-style);
//   kNonblocking  — Algorithm 2: Isend/Irecv + Waitall per pipeline step
//                   (Open MPI "tuned"-style);
//   kAdapt        — Algorithm 3: event-driven callbacks, no Waitall; N
//                   outstanding sends per child, M posted receives (Fig. 4).
//
// All styles are tree-agnostic: pass any Tree (including the topology-aware
// one). All ranks of the communicator must call the collective with
// consistent arguments, like MPI.
#pragma once

#include <functional>

#include "src/coll/tree.hpp"
#include "src/mpi/comm.hpp"
#include "src/mpi/op.hpp"
#include "src/mpi/payload.hpp"
#include "src/runtime/context.hpp"
#include "src/sim/task.hpp"

namespace adapt::coll {

enum class Style { kBlocking, kNonblocking, kAdapt };

const char* style_name(Style style);

struct CollOpts {
  Bytes segment_size = kib(128);  ///< pipeline granularity
  int outstanding_sends = 2;      ///< N: concurrent sends per child (ADAPT)
  int outstanding_recvs = 4;      ///< M: posted receives per parent (ADAPT);
                                  ///< keep M > N to avoid unexpected messages
  double gamma_scale = 1.0;       ///< reduction cost multiplier (vectorised
                                  ///< baselines use < 1)
  bool gpu_reduce = false;        ///< offload accumulation to the GPU (§4.2)
  mpi::SendOpts send;             ///< memory spaces for the data movement

  /// Per-edge memory spaces (global src rank, global dst rank); overrides
  /// `send` when set. The §4.1 GPU protocol uses this: inter-node edges move
  /// host-cache to host-cache, inter-socket host-cache to device, and
  /// intra-socket device to device over peer DMA.
  std::function<mpi::SendOpts(Rank src, Rank dst)> edge_spaces;

  /// §4.1 explicit CPU buffer: ranks whose parent edge delivers into HOST
  /// memory flush each segment to their GPU with an async stream copy, and
  /// device-sourced child edges wait for that flush. Requires a GPU rank.
  bool gpu_host_cache = false;

  mpi::SendOpts spaces(Rank src, Rank dst) const {
    return edge_spaces ? edge_spaces(src, dst) : send;
  }
};

/// Splits a message into pipeline segments. A zero-byte message yields one
/// empty segment so every algorithm still performs its hand-shake pattern.
class Segmenter {
 public:
  Segmenter(Bytes total, Bytes segment_size);
  int count() const { return count_; }
  Bytes offset(int i) const;
  Bytes length(int i) const;

 private:
  Bytes total_;
  Bytes seg_;
  int count_;
};

/// Broadcast: the root's `buffer` contents reach every rank's `buffer`.
/// `root` and the Tree are in local (communicator) ranks.
sim::Task<> bcast(runtime::Context& ctx, const mpi::Comm& comm,
                  mpi::MutView buffer, Rank root, const Tree& tree,
                  Style style, const CollOpts& opts = {});

/// Reduce: on entry every rank's `accum` holds its contribution; on exit the
/// root's `accum` holds the element-wise reduction over all ranks (other
/// ranks' buffers are clobbered). Intermediate accumulations cost
/// γ·bytes·gamma_scale of CPU time (or run on the GPU with gpu_reduce).
sim::Task<> reduce(runtime::Context& ctx, const mpi::Comm& comm,
                   mpi::MutView accum, mpi::ReduceOp op, mpi::Datatype dtype,
                   Rank root, const Tree& tree, Style style,
                   const CollOpts& opts = {});

/// Dissemination barrier over the communicator.
sim::Task<> barrier(runtime::Context& ctx, const mpi::Comm& comm);

// -- explicit-tag variants ----------------------------------------------
// The convenience overloads above draw tags from ctx.alloc_tags(), which
// requires EVERY rank of the context to execute the same collective sequence.
// Orchestrators that run sub-collectives on subsets (the hierarchical
// multi-communicator baseline, §3.1) must allocate tags on all ranks and pass
// them explicitly here.
sim::Task<> bcast_tagged(runtime::Context& ctx, const mpi::Comm& comm,
                         mpi::MutView buffer, Rank root, const Tree& tree,
                         Style style, const CollOpts& opts, Tag base_tag);
sim::Task<> reduce_tagged(runtime::Context& ctx, const mpi::Comm& comm,
                          mpi::MutView accum, mpi::ReduceOp op,
                          mpi::Datatype dtype, Rank root, const Tree& tree,
                          Style style, const CollOpts& opts, Tag base_tag);

}  // namespace adapt::coll
