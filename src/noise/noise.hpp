// System-noise injection (paper §5.1.1).
//
// Noise is modelled as per-rank CPU busy bursts: work that needs the rank's
// CPU (posting P2Ps, matching, callbacks, reduction compute) is deferred past
// any burst covering its start time; in-flight transfers (DMA) are never
// touched. This is the semantics that lets event-driven designs absorb noise
// while synchronising designs propagate it.
//
// The standard model follows the paper's methodology (after Beckman et al.):
// one burst per rank per period at a fixed frequency (10 Hz), with duration
// uniform in [0, max) — max 10 ms gives ~5% average noise, 20 ms gives ~10%.
// Everything is derived deterministically from (seed, rank, period index).
#pragma once

#include <cstdint>
#include <memory>

#include "src/support/units.hpp"

namespace adapt::noise {

class NoiseModel {
 public:
  virtual ~NoiseModel() = default;
  /// Earliest time >= t at which rank r's CPU is not noise-busy.
  virtual TimeNs next_free(Rank r, TimeNs t) const = 0;
  /// Mean fraction of CPU time consumed by noise (for reporting).
  virtual double duty() const = 0;
};

/// The no-noise model: next_free is the identity.
class NoNoise final : public NoiseModel {
 public:
  TimeNs next_free(Rank /*r*/, TimeNs t) const override { return t; }
  double duty() const override { return 0.0; }
};

/// Uniform burst noise at a fixed frequency.
///
/// One burst per rank per period (1/freq_hz), starting at a random phase in
/// the first half of the period and lasting uniform [0, max_duration). With
/// `synchronized` (the default, modelling daemon/OS activity that wakes
/// cluster-wide on the same tick — the Beckman-style injection the paper
/// cites), every rank's period-k burst STARTS together while durations stay
/// per-rank random: collectives then amplify the per-rank *skew*, which is
/// precisely the effect §2 analyses. With synchronized=false each rank also
/// draws its own phase (fully independent noise; kept for ablations).
class UniformBurstNoise final : public NoiseModel {
 public:
  UniformBurstNoise(TimeNs max_duration, double freq_hz, std::uint64_t seed,
                    bool synchronized = true);

  TimeNs next_free(Rank r, TimeNs t) const override;
  double duty() const override;

  /// The burst interval [start, end) of rank r's k-th period.
  std::pair<TimeNs, TimeNs> burst(Rank r, std::int64_t k) const;

 private:
  TimeNs max_duration_;
  TimeNs period_;
  std::uint64_t seed_;
  bool synchronized_;
};

/// Convenience: the paper's "5%" (0-10 ms) and "10%" (0-20 ms) @ 10 Hz
/// settings by duty percentage (0 returns NoNoise).
std::shared_ptr<NoiseModel> paper_noise(int duty_percent, std::uint64_t seed);

}  // namespace adapt::noise
