#include "src/verify/conformance.hpp"

#include <atomic>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <sstream>

#include "src/coll/han.hpp"
#include "src/coll/library.hpp"
#include "src/coll/persistent.hpp"
#include "src/obs/export.hpp"
#include "src/obs/trace.hpp"
#include "src/coll/topo_tree.hpp"
#include "src/coll/tree.hpp"
#include "src/mpi/errors.hpp"
#include "src/runtime/sharded_engine.hpp"
#include "src/runtime/sim_engine.hpp"
#include "src/runtime/thread_engine.hpp"
#include "src/support/error.hpp"
#include "src/support/parallel.hpp"
#include "src/support/rng.hpp"
#include "src/topo/presets.hpp"
#include "src/verify/chaos.hpp"
#include "src/verify/faulty.hpp"
#include "src/verify/oracle.hpp"

namespace adapt::verify {

// ------------------------------------------------------------------ names ---

const char* engine_name(EngineKind engine) {
  switch (engine) {
    case EngineKind::kSim: return "sim";
    case EngineKind::kThread: return "thread";
    case EngineKind::kSharded: return "sharded";
  }
  return "?";
}

const char* collective_name(Collective collective) {
  switch (collective) {
    case Collective::kBcast: return "bcast";
    case Collective::kReduce: return "reduce";
    case Collective::kAllreduce: return "allreduce";
    case Collective::kScatter: return "scatter";
    case Collective::kGather: return "gather";
    case Collective::kAllgather: return "allgather";
    case Collective::kBarrier: return "barrier";
    case Collective::kLibBcast: return "lib_bcast";
    case Collective::kLibReduce: return "lib_reduce";
  }
  return "?";
}

const char* comm_name(CommKind comm) {
  switch (comm) {
    case CommKind::kWorld: return "world";
    case CommKind::kEven: return "even";
    case CommKind::kSlice: return "slice";
  }
  return "?";
}

const char* tree_name(TreeChoice tree) {
  switch (tree) {
    case TreeChoice::kTopo: return "topo";
    case TreeChoice::kBinomial: return "binomial";
    case TreeChoice::kChain: return "chain";
    case TreeChoice::kHan: return "han";
  }
  return "?";
}

const char* rankmap_name(RankMap map) {
  switch (map) {
    case RankMap::kDense: return "dense";
    case RankMap::kReversed: return "reversed";
    case RankMap::kStrided: return "strided";
    case RankMap::kRandom: return "random";
  }
  return "?";
}

const char* fault_name(Fault fault) {
  switch (fault) {
    case Fault::kNone: return "none";
    case Fault::kGatherArrivalOrder: return "gather_arrival_order";
    case Fault::kNoRetransmit: return "no_retransmit";
  }
  return "?";
}

const char* chaos_name(ChaosClass chaos) {
  switch (chaos) {
    case ChaosClass::kOff: return "off";
    case ChaosClass::kSoft: return "soft";
    case ChaosClass::kKill: return "kill";
  }
  return "?";
}

namespace {

const char* ag_name(coll::AllgatherAlgo algo) {
  return algo == coll::AllgatherAlgo::kRing ? "ring" : "recdbl";
}

/// Generic reverse lookup over a small enum range via its name function.
template <typename E, typename NameFn>
bool enum_from_name(const std::string& name, int count, NameFn name_of,
                    E* out) {
  for (int i = 0; i < count; ++i) {
    const E candidate = static_cast<E>(i);
    if (name == name_of(candidate)) {
      *out = candidate;
      return true;
    }
  }
  return false;
}

}  // namespace

// ----------------------------------------------------------- repro strings ---

std::vector<Rank> comm_members(CommKind comm, int world) {
  ADAPT_CHECK(world >= 2) << "conformance world of " << world << " ranks";
  std::vector<Rank> members;
  switch (comm) {
    case CommKind::kWorld:
      for (Rank r = 0; r < world; ++r) members.push_back(r);
      break;
    case CommKind::kEven:
      for (Rank r = 0; r < world; r += 2) members.push_back(r);
      break;
    case CommKind::kSlice:
      for (Rank r = 2; r < world - 2; ++r) members.push_back(r);
      break;
  }
  ADAPT_CHECK(members.size() >= 2)
      << comm_name(comm) << " communicator of world " << world
      << " has fewer than 2 members";
  return members;
}

std::string repro_string(const CaseConfig& config, const RunSpec& spec,
                         Fault fault) {
  std::ostringstream out;
  out << "collective=" << collective_name(config.collective)
      << " style=" << coll::style_name(config.style)
      << " lib=" << (config.library.empty() ? "-" : config.library)
      << " ag=" << ag_name(config.ag_algo)
      << " dtype=" << mpi::datatype_name(config.dtype)
      << " op=" << mpi::op_name(config.op) << " world=" << config.world
      << " comm=" << comm_name(config.comm) << " root=" << config.root
      << " bytes=" << config.bytes << " seg=" << config.segment
      << " N=" << config.n_out << " M=" << config.m_out
      << " tree=" << tree_name(config.tree)
      << " ppn=" << config.ppn
      << " rankmap=" << rankmap_name(config.rankmap)
      << " data_seed=" << config.data_seed
      << " persistent=" << (config.persistent ? 1 : 0)
      << " starts=" << config.starts << " parts=" << config.partitions
      << " engine=" << engine_name(spec.engine)
      << " perturb_seed=" << spec.perturb_seed << " jitter=" << spec.jitter
      << " chaos=" << chaos_name(spec.chaos)
      << " chaos_seed=" << spec.chaos_seed
      << " wd_detect=" << spec.wd_detect
      << " wd_quiesce=" << spec.wd_quiesce << " wd_bomb=" << spec.wd_bomb
      << " shards=" << spec.shards << " fault=" << fault_name(fault);
  return out.str();
}

bool parse_repro(const std::string& line, CaseConfig* config, RunSpec* spec,
                 Fault* fault) {
  CaseConfig cfg;
  RunSpec run;
  Fault flt = Fault::kNone;
  bool saw_collective = false;

  std::istringstream in(line);
  std::string token;
  while (in >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) return false;
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    auto as_int = [&](auto* out) {
      try {
        *out = static_cast<std::remove_pointer_t<decltype(out)>>(
            std::stoll(value));
      } catch (...) {
        return false;
      }
      return true;
    };
    auto as_u64 = [&](std::uint64_t* out) {
      try {
        *out = std::stoull(value);
      } catch (...) {
        return false;
      }
      return true;
    };
    bool ok = true;
    if (key == "collective") {
      ok = enum_from_name(value, 9, collective_name, &cfg.collective);
      saw_collective = ok;
    } else if (key == "style") {
      ok = enum_from_name(value, 3, coll::style_name, &cfg.style);
    } else if (key == "lib") {
      cfg.library = value == "-" ? "" : value;
    } else if (key == "ag") {
      if (value == "ring") {
        cfg.ag_algo = coll::AllgatherAlgo::kRing;
      } else if (value == "recdbl") {
        cfg.ag_algo = coll::AllgatherAlgo::kRecursiveDoubling;
      } else {
        ok = false;
      }
    } else if (key == "dtype") {
      ok = enum_from_name(value, 5, mpi::datatype_name, &cfg.dtype);
    } else if (key == "op") {
      ok = enum_from_name(value, 6, mpi::op_name, &cfg.op);
    } else if (key == "world") {
      ok = as_int(&cfg.world);
    } else if (key == "comm") {
      ok = enum_from_name(value, 3, comm_name, &cfg.comm);
    } else if (key == "root") {
      ok = as_int(&cfg.root);
    } else if (key == "bytes") {
      ok = as_int(&cfg.bytes);
    } else if (key == "seg") {
      ok = as_int(&cfg.segment);
    } else if (key == "N") {
      ok = as_int(&cfg.n_out);
    } else if (key == "M") {
      ok = as_int(&cfg.m_out);
    } else if (key == "tree") {
      ok = enum_from_name(value, 4, tree_name, &cfg.tree);
    } else if (key == "ppn") {
      // Absent on pre-HAN repro lines; those parse to the default machine.
      ok = as_int(&cfg.ppn) && cfg.ppn >= 0;
    } else if (key == "rankmap") {
      ok = enum_from_name(value, 4, rankmap_name, &cfg.rankmap);
    } else if (key == "data_seed") {
      ok = as_u64(&cfg.data_seed);
    } else if (key == "persistent") {
      // Absent on pre-persistent repro lines; those parse to the default.
      int flag = 0;
      ok = as_int(&flag) && (flag == 0 || flag == 1);
      cfg.persistent = flag == 1;
    } else if (key == "starts") {
      ok = as_int(&cfg.starts);
    } else if (key == "parts") {
      ok = as_int(&cfg.partitions);
    } else if (key == "engine") {
      ok = enum_from_name(value, 3, engine_name, &run.engine);
    } else if (key == "perturb_seed") {
      ok = as_u64(&run.perturb_seed);
    } else if (key == "jitter") {
      ok = as_int(&run.jitter);
    } else if (key == "chaos") {
      ok = enum_from_name(value, 3, chaos_name, &run.chaos);
    } else if (key == "chaos_seed") {
      ok = as_u64(&run.chaos_seed);
    } else if (key == "wd_detect") {
      ok = as_int(&run.wd_detect) && run.wd_detect > 0;
    } else if (key == "wd_quiesce") {
      ok = as_int(&run.wd_quiesce) && run.wd_quiesce > 0;
    } else if (key == "wd_bomb") {
      ok = as_int(&run.wd_bomb) && run.wd_bomb > 0;
    } else if (key == "shards") {
      // Absent on pre-sharded repro lines; those parse to the default.
      ok = as_int(&run.shards) && run.shards >= 1;
    } else if (key == "fault") {
      ok = enum_from_name(value, 3, fault_name, &flt);
    } else {
      ok = false;
    }
    if (!ok) return false;
  }
  if (!saw_collective) return false;
  *config = cfg;
  *spec = run;
  if (fault) *fault = flt;
  return true;
}

// -------------------------------------------------------------- one case ----

namespace {

bool tree_based(Collective c) {
  return c == Collective::kBcast || c == Collective::kReduce ||
         c == Collective::kAllreduce;
}

coll::Tree make_tree(const CaseConfig& config, const topo::Machine& machine,
                     const mpi::Comm& comm, Rank root) {
  switch (config.tree) {
    case TreeChoice::kTopo:
      return coll::build_topo_tree(machine, comm, root);
    case TreeChoice::kBinomial:
      return coll::binomial_tree(comm.size(), root);
    case TreeChoice::kChain:
      return coll::chain_tree(comm.size(), root);
    case TreeChoice::kHan:
      return coll::build_han_tree(machine, comm, root);
  }
  ADAPT_UNREACHABLE("bad tree choice");
}

/// Core slots realising a ppn row's rank→core placement over `total`
/// (= nodes × ppn) dense slots. Every map is injective, so the Machine
/// constructor's occupancy check cannot fire.
std::vector<int> case_slots(RankMap map, int world, int nodes, int ppn,
                            std::uint64_t seed) {
  const int total = nodes * ppn;
  std::vector<int> slots(static_cast<std::size_t>(world));
  switch (map) {
    case RankMap::kDense:
      for (int r = 0; r < world; ++r) slots[static_cast<std::size_t>(r)] = r;
      break;
    case RankMap::kReversed:
      for (int r = 0; r < world; ++r)
        slots[static_cast<std::size_t>(r)] = total - 1 - r;
      break;
    case RankMap::kStrided:
      // Round-robin across nodes: consecutive ranks always land on
      // different nodes, the inverse of the dense blocked placement.
      for (int r = 0; r < world; ++r)
        slots[static_cast<std::size_t>(r)] = (r % nodes) * ppn + r / nodes;
      break;
    case RankMap::kRandom: {
      std::vector<int> all(static_cast<std::size_t>(total));
      for (int s = 0; s < total; ++s) all[static_cast<std::size_t>(s)] = s;
      Rng rng(SplitMix64(seed * 0x9E37 + 0xC0FFEE).next());
      for (std::size_t i = all.size(); i > 1; --i) {
        std::swap(all[i - 1], all[rng.next_below(i)]);
      }
      for (int r = 0; r < world; ++r)
        slots[static_cast<std::size_t>(r)] = all[static_cast<std::size_t>(r)];
      break;
    }
  }
  return slots;
}

/// The engine machine for a case: the legacy dual-socket cori pair, or (ppn
/// rows) a han_cluster with the case's rank→core placement.
topo::Machine case_machine(const CaseConfig& config) {
  if (config.ppn <= 0) return topo::Machine(topo::cori(2), config.world);
  const int nodes = (config.world + config.ppn - 1) / config.ppn;
  const topo::MachineSpec spec = topo::han_cluster(nodes, config.ppn);
  if (config.rankmap == RankMap::kDense) {
    return topo::Machine(spec, config.world);
  }
  return topo::Machine(spec, case_slots(config.rankmap, config.world, nodes,
                                        config.ppn, config.data_seed));
}

/// Diffs every local rank's observable buffer against the oracle;
/// `skip_local` (chaos runs) marks dead ranks whose buffers are unspecified.
std::string diff_buffers(const CaseIo& io,
                         const std::vector<std::vector<std::byte>>& observed,
                         const mpi::Comm& comm,
                         const std::vector<char>* skip_local = nullptr) {
  for (std::size_t i = 0; i < io.expected.size(); ++i) {
    if (!io.expected[i]) continue;
    if (skip_local && (*skip_local)[i]) continue;
    const auto& want = *io.expected[i];
    const auto& got = observed[i];
    if (got.size() != want.size()) {
      std::ostringstream out;
      out << "local rank " << i << " (global " << comm.global(static_cast<Rank>(i))
          << "): buffer is " << got.size() << "B, want " << want.size() << "B";
      return out.str();
    }
    for (std::size_t b = 0; b < want.size(); ++b) {
      if (got[b] != want[b]) {
        std::ostringstream out;
        out << "local rank " << i << " (global "
            << comm.global(static_cast<Rank>(i)) << ") differs at byte " << b
            << " of " << want.size() << ": got 0x" << std::hex
            << static_cast<int>(got[b]) << ", want 0x"
            << static_cast<int>(want[b]);
        return out.str();
      }
    }
  }
  return {};
}

}  // namespace

std::optional<std::string> run_case(const CaseConfig& config,
                                    const RunSpec& spec, Fault fault,
                                    std::shared_ptr<obs::Recorder> recorder) {
  const std::vector<Rank> members = comm_members(config.comm, config.world);
  const int p = static_cast<int>(members.size());
  ADAPT_CHECK(config.root >= 0 && config.root < p)
      << "root " << config.root << " outside communicator of " << p;

  const bool chaos = spec.chaos != ChaosClass::kOff;
  ADAPT_CHECK(!chaos || spec.engine == EngineKind::kSim)
      << "chaos runs require the sim engine";
  net::FaultPlan plan;
  if (chaos) {
    plan = make_chaos_plan(spec.chaos, spec.chaos_seed, members, config.world);
  }

  const CaseIo io = make_io(config);
  const topo::Machine machine = case_machine(config);
  const mpi::Comm comm(members);

  // Working buffers: in-place collectives mutate `work`; scatter/gather
  // deliver into `out` (poisoned so untouched bytes are visible in diffs).
  std::vector<std::vector<std::byte>> work = io.inputs;
  std::vector<std::vector<std::byte>> out(static_cast<std::size_t>(p));
  const bool uses_out = config.collective == Collective::kScatter ||
                        config.collective == Collective::kGather;
  if (config.collective == Collective::kScatter) {
    for (auto& o : out)
      o.assign(static_cast<std::size_t>(config.bytes), std::byte(0xCD));
  } else if (config.collective == Collective::kGather) {
    out[static_cast<std::size_t>(config.root)].assign(
        static_cast<std::size_t>(config.bytes) * static_cast<std::size_t>(p),
        std::byte(0xCD));
  }

  // Persistent rows: one handle init, `starts` start/wait rounds. Round r
  // runs on payloads drawn from data_seed + r and is diffed against its own
  // oracle, so a schedule that is only right once (stale pipeline counters,
  // unreset gating state, cross-round tag matches) cannot pass.
  const int rounds = config.persistent ? std::max(1, config.starts) : 1;
  std::vector<CaseIo> round_io;
  std::vector<std::vector<std::vector<std::byte>>> round_observed;
  std::vector<int> clean_rounds(static_cast<std::size_t>(config.world), 0);
  if (config.persistent) {
    ADAPT_CHECK(tree_based(config.collective) ||
                config.collective == Collective::kBarrier)
        << "persistent rows cover bcast/reduce/allreduce/barrier";
    ADAPT_CHECK(config.partitions == 0 || tree_based(config.collective))
        << "partitioned persistent rows need a data-carrying collective";
    round_io.push_back(io);
    for (int r = 1; r < rounds; ++r) {
      CaseConfig c = config;
      c.data_seed += static_cast<std::uint64_t>(r);
      round_io.push_back(make_io(c));
    }
    round_observed.assign(
        static_cast<std::size_t>(rounds),
        std::vector<std::vector<std::byte>>(static_cast<std::size_t>(p)));
  }

  // Allreduce composes reduce-to-0 + bcast-from-0, so its trees are rooted
  // at local rank 0 regardless of config.root.
  const Rank tree_root =
      config.collective == Collective::kAllreduce ? 0 : config.root;
  coll::Tree tree;
  if (tree_based(config.collective)) {
    tree = make_tree(config, machine, comm, tree_root);
  }
  std::shared_ptr<coll::MpiLibrary> library;
  if (config.collective == Collective::kLibBcast ||
      config.collective == Collective::kLibReduce) {
    ADAPT_CHECK(!config.library.empty()) << "library case without a library";
    library = coll::make_library(config.library, machine);
  }

  coll::CollOpts opts;
  opts.segment_size = config.segment;
  opts.outstanding_sends = config.n_out;
  opts.outstanding_recvs = config.m_out;

  std::atomic<int> entered{0};
  std::atomic<bool> barrier_violated{false};

  const auto program = [&](runtime::Context& ctx) -> sim::Task<> {
    const Rank g = ctx.rank();
    if (!comm.contains(g)) co_return;
    const Rank me = comm.local_of(g);
    const std::size_t mi = static_cast<std::size_t>(me);
    auto view = [&](std::vector<std::byte>& buf) {
      return mpi::MutView{buf.data(), static_cast<Bytes>(buf.size())};
    };
    switch (config.collective) {
      case Collective::kBcast:
        co_await coll::bcast(ctx, comm, view(work[mi]), config.root, tree,
                             config.style, opts);
        break;
      case Collective::kReduce:
        co_await coll::reduce(ctx, comm, view(work[mi]), config.op,
                              config.dtype, config.root, tree, config.style,
                              opts);
        break;
      case Collective::kAllreduce:
        co_await coll::allreduce(ctx, comm, view(work[mi]), config.op,
                                 config.dtype, tree, tree, config.style, opts);
        break;
      case Collective::kScatter:
        co_await coll::scatter(ctx, comm, view(work[mi]).as_const(),
                               view(out[mi]), config.bytes, config.root);
        break;
      case Collective::kGather:
        if (fault == Fault::kGatherArrivalOrder) {
          co_await faulty_gather_arrival_order(
              ctx, comm, view(work[mi]).as_const(), view(out[mi]),
              config.bytes, config.root);
        } else {
          co_await coll::gather(ctx, comm, view(work[mi]).as_const(),
                                view(out[mi]), config.bytes, config.root);
        }
        break;
      case Collective::kAllgather:
        co_await coll::allgather(ctx, comm, view(work[mi]), config.bytes,
                                 config.ag_algo);
        break;
      case Collective::kBarrier:
        entered.fetch_add(1);
        co_await coll::barrier(ctx, comm);
        if (entered.load() < p) barrier_violated.store(true);
        break;
      case Collective::kLibBcast:
        co_await library->bcast(ctx, comm, view(work[mi]), config.root);
        break;
      case Collective::kLibReduce:
        co_await library->reduce(ctx, comm, view(work[mi]), config.op,
                                 config.dtype, config.root);
        break;
    }
  };

  const auto persistent_program = [&](runtime::Context& ctx) -> sim::Task<> {
    const Rank g = ctx.rank();
    if (!comm.contains(g)) co_return;
    const Rank me = comm.local_of(g);
    const std::size_t mi = static_cast<std::size_t>(me);
    auto& buf = work[mi];
    const mpi::MutView bound{buf.data(), static_cast<Bytes>(buf.size())};

    coll::PersistentOpts popts;
    popts.coll = opts;
    popts.partitions = config.partitions;
    // kTopo rows exercise the engine plan cache (one plan shared by every
    // rank); the explicit tree shapes pin a private, uncached plan.
    if (config.tree != TreeChoice::kTopo && config.collective != Collective::kBarrier) {
      popts.tree = &tree;
    }
    coll::PersistentOpPtr op;
    switch (config.collective) {
      case Collective::kBcast:
        op = coll::bcast_init(ctx, comm, bound, config.root, popts);
        break;
      case Collective::kReduce:
        op = coll::reduce_init(ctx, comm, bound, config.op, config.dtype,
                               config.root, popts);
        break;
      case Collective::kAllreduce:
        op = coll::allreduce_init(ctx, comm, bound, config.op, config.dtype,
                                  popts);
        break;
      case Collective::kBarrier:
        op = coll::barrier_init(ctx, comm, popts);
        break;
      default:
        ADAPT_UNREACHABLE("persistent row on a non-persistent collective");
    }

    for (int r = 0; r < rounds; ++r) {
      const std::size_t ri = static_cast<std::size_t>(r);
      // MPI-4 persistent semantics: the buffer BINDING is fixed at init;
      // only its contents change — refill with this round's payload.
      const auto& input = round_io[ri].inputs[mi];
      if (!input.empty()) std::memcpy(buf.data(), input.data(), input.size());
      const mpi::ErrCode rc = op->start();
      ADAPT_CHECK(rc == mpi::ErrCode::kOk) << mpi::err_name(rc);
      if (config.partitions > 0) {
        // Seeded out-of-order pready: a deterministic shuffle per
        // (rank, round), so ranks ready partitions in clashing orders and
        // the result must not care.
        std::vector<int> order(static_cast<std::size_t>(config.partitions));
        for (int i = 0; i < config.partitions; ++i)
          order[static_cast<std::size_t>(i)] = i;
        Rng rng(SplitMix64(config.data_seed * 7919 +
                           static_cast<std::uint64_t>(g) * 131 +
                           static_cast<std::uint64_t>(r))
                    .next());
        for (std::size_t i = order.size(); i > 1; --i) {
          std::swap(order[i - 1], order[rng.next_below(i)]);
        }
        for (const int part : order) {
          const mpi::ErrCode pc = op->pready(part);
          ADAPT_CHECK(pc == mpi::ErrCode::kOk) << mpi::err_name(pc);
        }
      }
      co_await op->wait();
      round_observed[ri][mi] = buf;  // snapshot before the next refill
      clean_rounds[static_cast<std::size_t>(g)] = r + 1;
    }
  };

  // Everything downstream (the chaos wrapper, both engines) runs `body`.
  const auto body = [&](runtime::Context& ctx) -> sim::Task<> {
    if (config.persistent) {
      co_await persistent_program(ctx);
    } else {
      co_await program(ctx);
    }
  };

  // Per-global-rank chaos outcome: the error each rank's collective call
  // surfaced (kOk = completed clean), and whether the rank's wrapper ran to
  // the end (unfinished at the bomb = undetected hang).
  std::vector<mpi::ErrCode> outcome(static_cast<std::size_t>(config.world),
                                    mpi::ErrCode::kOk);
  std::vector<char> finished(static_cast<std::size_t>(config.world), 0);

  try {
    if (spec.engine == EngineKind::kSim) {
      runtime::SimEngineOptions engine_opts;
      engine_opts.recorder = std::move(recorder);
      if (spec.perturb_seed != 0) {
        engine_opts.perturb = sim::PerturbConfig{
            spec.perturb_seed, /*shuffle_ties=*/true, spec.jitter};
      }
      if (chaos) {
        engine_opts.faults = plan;
        // kNoRetransmit is the chaos self-test: the lossy fabric meets the
        // seed's perfect-delivery protocols and the classifier must notice.
        if (fault != Fault::kNoRetransmit) {
          engine_opts.reliability = chaos_reliability();
        }
      }
      runtime::SimEngine engine(machine, engine_opts);
      if (!chaos) {
        engine.run(body);
      } else {
        const auto chaos_program = [&](runtime::Context& ctx) -> sim::Task<> {
          const Rank g = ctx.rank();
          if (!comm.contains(g)) co_return;
          const std::size_t gi = static_cast<std::size_t>(g);
          try {
            co_await body(ctx);
          } catch (const mpi::FaultError& e) {
            outcome[gi] = e.code();
          }
          // Quiesce: an abort flood may still be in flight toward a rank
          // that finished clean; give it time to land before judging.
          if (ctx.now() < spec.wd_quiesce) {
            co_await ctx.sleep_for(spec.wd_quiesce - ctx.now());
          }
          if (outcome[gi] == mpi::ErrCode::kOk && ctx.endpoint().poisoned()) {
            outcome[gi] = ctx.endpoint().poison_code();
          }
          finished[gi] = 1;
        };
        engine.simulator().at(spec.wd_detect, [&] {
          for (Rank g : members) {
            mpi::Endpoint& ep = engine.endpoint(g);
            if (!ep.poisoned() && ep.has_pending()) {
              engine.initiate_abort(g, mpi::ErrCode::kErrProcFailed);
            }
          }
        });
        engine.simulator().at(spec.wd_bomb, [&] {
          for (Rank g : members) {
            if (!finished[static_cast<std::size_t>(g)]) {
              engine.poison_rank(g, mpi::ErrCode::kErrWatchdog);
            }
          }
        });
        engine.run(chaos_program);
      }
    } else if (spec.engine == EngineKind::kSharded) {
      ADAPT_CHECK(spec.perturb_seed == 0)
          << "the sharded engine's keyed event order is incompatible with "
             "schedule perturbation";
      ADAPT_CHECK(!config.persistent)
          << "persistent rows need the SimEngine plan cache";
      runtime::ShardedEngineOptions engine_opts;
      engine_opts.shards = spec.shards;
      engine_opts.recorder = std::move(recorder);
      runtime::ShardedEngine engine(machine, engine_opts);
      engine.run(body);
    } else {
      runtime::ThreadEngine engine(machine);
      engine.run(body);
    }
  } catch (const std::exception& e) {
    return std::string("engine run failed: ") + e.what();
  }

  // Chaos classification: every live rank must either finish clean (then
  // all payloads are diffed byte-for-byte below) or report the same error
  // code. Anything else — disagreement, or a hang only the bomb caught —
  // is a conformance failure.
  std::vector<char> dead_local;
  if (chaos) {
    const auto dead_global = [&](Rank g) {
      for (const auto& d : plan.deaths) {
        if (d.rank == g) return true;
      }
      return false;
    };
    std::optional<mpi::ErrCode> agreed;
    bool mixed = false;
    std::ostringstream codes;
    for (Rank g : members) {
      if (dead_global(g)) continue;
      mpi::ErrCode code = outcome[static_cast<std::size_t>(g)];
      // Retry exhaustion is the *detection*; the job-wide verdict it
      // escalates to is "a process failed".
      if (code == mpi::ErrCode::kErrRetryExhausted) {
        code = mpi::ErrCode::kErrProcFailed;
      }
      codes << " rank" << g << "=" << mpi::err_name(code);
      if (!agreed) {
        agreed = code;
      } else if (*agreed != code) {
        mixed = true;
      }
    }
    ADAPT_CHECK(agreed.has_value()) << "chaos case with no live ranks";
    if (mixed) {
      return "chaos: live ranks disagree on the outcome:" + codes.str();
    }
    if (*agreed == mpi::ErrCode::kErrWatchdog) {
      return "chaos: watchdog bomb fired — the runtime never detected the "
             "failure:" +
             codes.str();
    }
    if (*agreed != mpi::ErrCode::kOk && !config.persistent) {
      return std::nullopt;  // a uniform, clean error is an accepted outcome
    }
    // Persistent + uniform error: the failing start surfaced one consistent
    // code, which is accepted — but every round the whole job completed
    // BEFORE it must still be byte-exact, so fall through to the diff.
    dead_local.assign(static_cast<std::size_t>(p), 0);
    for (Rank i = 0; i < p; ++i) {
      if (dead_global(comm.global(i))) {
        dead_local[static_cast<std::size_t>(i)] = 1;
      }
    }
  }

  if (config.collective == Collective::kBarrier) {
    // Persistent barrier rounds have no entered-counter instrumentation;
    // their correctness is round completion + the chaos uniformity gate.
    if (!config.persistent && barrier_violated.load()) {
      return std::string("barrier: a rank exited before all ") +
             std::to_string(p) + " members entered";
    }
    return std::nullopt;
  }
  if (config.persistent) {
    // Per-round byte-exactness. Judge only rounds every live rank finished
    // cleanly: on a clean run that is all of them; under a chaos error it
    // is every round before the (uniformly reported) failing one.
    int judge = rounds;
    for (Rank i = 0; i < static_cast<Rank>(p); ++i) {
      if (!dead_local.empty() && dead_local[static_cast<std::size_t>(i)]) {
        continue;
      }
      const Rank g = comm.global(i);
      judge = std::min(judge, clean_rounds[static_cast<std::size_t>(g)]);
    }
    for (int r = 0; r < judge; ++r) {
      const std::size_t ri = static_cast<std::size_t>(r);
      const std::string diff =
          diff_buffers(round_io[ri], round_observed[ri], comm,
                       dead_local.empty() ? nullptr : &dead_local);
      if (!diff.empty()) {
        return "persistent round " + std::to_string(r) + " of " +
               std::to_string(rounds) + ": " + diff;
      }
    }
    return std::nullopt;
  }
  const std::string diff =
      diff_buffers(io, uses_out ? out : work, comm,
                   dead_local.empty() ? nullptr : &dead_local);
  if (!diff.empty()) return diff;
  return std::nullopt;
}

// ----------------------------------------------------------------- shrink ---

CaseConfig shrink_case(const CaseConfig& config, const RunSpec& spec,
                       Fault fault) {
  const auto still_fails = [&](const CaseConfig& candidate) {
    return run_case(candidate, spec, fault).has_value();
  };
  const Bytes elem = mpi::size_of(config.dtype);
  const auto min_world = [&](CommKind comm) {
    switch (comm) {
      case CommKind::kWorld: return 2;
      case CommKind::kEven: return 3;   // {0, 2}
      case CommKind::kSlice: return 6;  // [2, 4) needs world 6 for 2 members
    }
    return 2;
  };

  CaseConfig current = config;
  int budget = 48;  // bounded number of verification re-runs
  bool progress = true;
  while (progress && budget > 0) {
    progress = false;
    std::vector<CaseConfig> candidates;
    if (current.bytes > elem) {
      CaseConfig c = current;
      c.bytes = std::max(elem, c.bytes / 2 - (c.bytes / 2) % elem);
      candidates.push_back(c);
    }
    if (current.segment > elem) {
      CaseConfig c = current;
      c.segment = std::max(elem, c.segment / 2);
      candidates.push_back(c);
    }
    if (current.world > min_world(current.comm)) {
      CaseConfig c = current;
      c.world = std::max(min_world(c.comm), c.world / 2);
      const int p = static_cast<int>(comm_members(c.comm, c.world).size());
      c.root = std::min(c.root, static_cast<Rank>(p - 1));
      candidates.push_back(c);
      CaseConfig d = current;
      d.world = current.world - 1;
      if (d.world >= min_world(d.comm)) {
        const int dp = static_cast<int>(comm_members(d.comm, d.world).size());
        d.root = std::min(d.root, static_cast<Rank>(dp - 1));
        candidates.push_back(d);
      }
    }
    for (const CaseConfig& candidate : candidates) {
      if (--budget < 0) break;
      if (still_fails(candidate)) {
        current = candidate;
        progress = true;
        break;
      }
    }
  }
  return current;
}

// ----------------------------------------------------------------- matrix ---

std::vector<CaseConfig> full_matrix() {
  std::vector<CaseConfig> cases;
  std::uint64_t seed = 1;
  const auto add = [&](CaseConfig c) {
    c.data_seed = seed++;
    cases.push_back(std::move(c));
  };
  const coll::Style styles[] = {coll::Style::kBlocking,
                                coll::Style::kNonblocking,
                                coll::Style::kAdapt};
  const CommKind comms[] = {CommKind::kWorld, CommKind::kEven,
                            CommKind::kSlice};
  const Rank roots[] = {1, 0, 2};  // per comm kind above

  // Broadcast: style × comm on the topo tree (pipelined small payload), the
  // rendezvous-sized payload on the world comm, and the chain/binomial tree
  // shapes. One ADAPT variant runs M < N to exercise the unexpected path.
  for (const auto style : styles) {
    for (int ci = 0; ci < 3; ++ci) {
      CaseConfig c;
      c.collective = Collective::kBcast;
      c.style = style;
      c.world = 12;
      c.comm = comms[ci];
      c.root = roots[ci];
      c.bytes = 3000;
      c.segment = 256;
      add(c);
    }
    CaseConfig big;
    big.collective = Collective::kBcast;
    big.style = style;
    big.world = 12;
    big.comm = CommKind::kWorld;
    big.root = 1;
    big.bytes = kib(192);   // two 96 KB segments: both rendezvous
    big.segment = kib(96);
    add(big);
    for (const auto tree : {TreeChoice::kChain, TreeChoice::kBinomial}) {
      CaseConfig c;
      c.collective = Collective::kBcast;
      c.style = style;
      c.world = 12;
      c.comm = CommKind::kWorld;
      c.root = 3;
      c.bytes = 4096;
      c.segment = 512;
      c.tree = tree;
      add(c);
    }
  }
  {
    CaseConfig c;  // ADAPT with more in-flight sends than posted receives
    c.collective = Collective::kBcast;
    c.style = coll::Style::kAdapt;
    c.world = 12;
    c.comm = CommKind::kWorld;
    c.root = 0;
    c.bytes = 8192;
    c.segment = 256;
    c.n_out = 3;
    c.m_out = 2;
    add(c);
  }

  // Reduce: style × datatype/op × {world, even}, plus a rendezvous-sized
  // case and the slice comm.
  const std::pair<mpi::Datatype, mpi::ReduceOp> dtype_ops[] = {
      {mpi::Datatype::kInt32, mpi::ReduceOp::kSum},
      {mpi::Datatype::kInt64, mpi::ReduceOp::kMax},
      {mpi::Datatype::kUint8, mpi::ReduceOp::kBor},
      {mpi::Datatype::kDouble, mpi::ReduceOp::kSum},
      {mpi::Datatype::kFloat, mpi::ReduceOp::kProd},
  };
  for (const auto style : styles) {
    for (const auto& [dtype, op] : dtype_ops) {
      for (int ci = 0; ci < 2; ++ci) {
        CaseConfig c;
        c.collective = Collective::kReduce;
        c.style = style;
        c.dtype = dtype;
        c.op = op;
        c.world = 12;
        c.comm = comms[ci];
        c.root = roots[ci];
        c.bytes = 4096;
        c.segment = 512;
        add(c);
      }
    }
    CaseConfig big;
    big.collective = Collective::kReduce;
    big.style = style;
    big.dtype = mpi::Datatype::kInt32;
    big.op = mpi::ReduceOp::kSum;
    big.world = 12;
    big.comm = CommKind::kWorld;
    big.root = 1;
    big.bytes = kib(192);
    big.segment = kib(96);
    add(big);
    CaseConfig slice;
    slice.collective = Collective::kReduce;
    slice.style = style;
    slice.dtype = mpi::Datatype::kInt64;
    slice.op = mpi::ReduceOp::kMin;
    slice.world = 12;
    slice.comm = CommKind::kSlice;
    slice.root = 2;
    slice.bytes = 2048;
    slice.segment = 256;
    add(slice);
  }

  // Allreduce (reduce-to-0 + bcast): style × dtype × {world, slice}.
  for (const auto style : styles) {
    for (const auto dtype : {mpi::Datatype::kInt32, mpi::Datatype::kDouble}) {
      for (const auto comm : {CommKind::kWorld, CommKind::kSlice}) {
        CaseConfig c;
        c.collective = Collective::kAllreduce;
        c.style = style;
        c.dtype = dtype;
        c.op = mpi::ReduceOp::kSum;
        c.world = 12;
        c.comm = comm;
        c.root = 0;
        c.bytes = 2048;
        c.segment = 256;
        add(c);
      }
    }
  }

  // Scatter / gather / barrier over every comm shape.
  for (int ci = 0; ci < 3; ++ci) {
    for (const auto collective :
         {Collective::kScatter, Collective::kGather, Collective::kBarrier}) {
      CaseConfig c;
      c.collective = collective;
      c.world = 12;
      c.comm = comms[ci];
      c.root = roots[ci];
      c.bytes = 1000;  // per-rank block
      add(c);
    }
  }

  // Allgather: ring everywhere, recursive doubling on power-of-two comms.
  for (int ci = 0; ci < 3; ++ci) {
    CaseConfig c;
    c.collective = Collective::kAllgather;
    c.world = 12;
    c.comm = comms[ci];
    c.root = 0;
    c.bytes = 600;
    c.ag_algo = coll::AllgatherAlgo::kRing;
    add(c);
  }
  for (const auto& [world, comm] :
       {std::pair<int, CommKind>{8, CommKind::kWorld},
        std::pair<int, CommKind>{16, CommKind::kEven}}) {
    CaseConfig c;
    c.collective = Collective::kAllgather;
    c.world = world;
    c.comm = comm;
    c.root = 0;
    c.bytes = 600;
    c.ag_algo = coll::AllgatherAlgo::kRecursiveDoubling;
    add(c);
  }

  // Library personalities end to end (bcast + reduce). ompi-adapt-tuned runs
  // the src/tune decision engine, so the matrix also certifies that tuned
  // schedules deliver byte-exact results under perturbation.
  for (const char* lib : {"ompi-adapt", "ompi-adapt-tuned", "ompi-default",
                          "cray", "mvapich", "intel"}) {
    CaseConfig b;
    b.collective = Collective::kLibBcast;
    b.library = lib;
    b.world = 12;
    b.comm = CommKind::kWorld;
    b.root = 1;
    b.bytes = kib(160);  // crosses the personalities' decision rules
    add(b);
    CaseConfig r;
    r.collective = Collective::kLibReduce;
    r.library = lib;
    r.dtype = mpi::Datatype::kInt32;
    r.op = mpi::ReduceOp::kSum;
    r.world = 12;
    r.comm = CommKind::kWorld;
    r.root = 1;
    r.bytes = 4096;
    add(r);
  }

  // HAN two-level rows (ppn > 0): the fused leader tree over a han_cluster
  // machine whose intra-node level rides the first-class SHM channel.
  // world 12 × ppn 4 = 3 nodes. Every row runs a deliberately scrambled
  // rank→core placement — reversed, strided, and seeded-random all split
  // rank-adjacent pairs across nodes, so a schedule keyed on rank index
  // instead of the machine's node_of() mapping cannot stay byte-exact.
  const RankMap scrambles[] = {RankMap::kReversed, RankMap::kStrided,
                               RankMap::kRandom};
  for (const auto style : styles) {  // bcast: style × comm × placement
    for (int ci = 0; ci < 3; ++ci) {
      CaseConfig c;
      c.collective = Collective::kBcast;
      c.style = style;
      c.world = 12;
      c.ppn = 4;
      c.rankmap = scrambles[ci];
      c.comm = comms[ci];
      c.root = roots[ci];
      c.bytes = 3000;
      c.segment = 256;
      c.tree = TreeChoice::kHan;
      add(c);
    }
  }
  for (const auto style : styles) {  // reduce: every dtype/op, cycling
    for (int di = 0; di < 5; ++di) {  // comm shape and placement
      CaseConfig c;
      c.collective = Collective::kReduce;
      c.style = style;
      c.dtype = dtype_ops[di].first;
      c.op = dtype_ops[di].second;
      c.world = 12;
      c.ppn = 4;
      c.rankmap = scrambles[di % 3];
      c.comm = comms[di % 3];
      c.root = roots[di % 3];
      c.bytes = 4096;
      c.segment = 512;
      c.tree = TreeChoice::kHan;
      add(c);
    }
  }
  for (int si = 0; si < 3; ++si) {  // allreduce through the han tree pair
    CaseConfig c;
    c.collective = Collective::kAllreduce;
    c.style = styles[si];
    c.dtype = mpi::Datatype::kInt32;
    c.op = mpi::ReduceOp::kSum;
    c.world = 12;
    c.ppn = 4;
    c.rankmap = scrambles[si];
    c.comm = CommKind::kWorld;
    c.root = 0;
    c.bytes = 2048;
    c.segment = 256;
    c.tree = TreeChoice::kHan;
    add(c);
  }
  {
    CaseConfig c;  // dense placement + rendezvous-sized segments
    c.collective = Collective::kBcast;
    c.style = coll::Style::kAdapt;
    c.world = 12;
    c.ppn = 4;
    c.comm = CommKind::kWorld;
    c.root = 1;
    c.bytes = kib(192);
    c.segment = kib(96);
    c.tree = TreeChoice::kHan;
    add(c);
  }
  // The ompi-han personality end to end, dense and every scrambled map.
  for (int mi = 0; mi < 4; ++mi) {
    const RankMap map = mi == 0 ? RankMap::kDense : scrambles[mi - 1];
    CaseConfig b;
    b.collective = Collective::kLibBcast;
    b.library = "ompi-han";
    b.world = 12;
    b.ppn = 4;
    b.rankmap = map;
    b.comm = CommKind::kWorld;
    b.root = 1;
    b.bytes = kib(160);
    add(b);
    CaseConfig r;
    r.collective = Collective::kLibReduce;
    r.library = "ompi-han";
    r.dtype = mpi::Datatype::kInt32;
    r.op = mpi::ReduceOp::kSum;
    r.world = 12;
    r.ppn = 4;
    r.rankmap = map;
    r.comm = CommKind::kWorld;
    r.root = 1;
    r.bytes = 4096;
    add(r);
  }

  // Persistent rows: one init, three start/wait rounds with fresh payloads
  // each round (CaseConfig::persistent). kTopo rows run through the engine
  // plan cache; the explicit tree shapes pin a private plan. Partitioned
  // rows (parts > 0) gate every rank's round data behind seeded
  // out-of-order pready calls.
  for (int ci = 0; ci < 3; ++ci) {  // bcast × every comm shape
    CaseConfig c;
    c.collective = Collective::kBcast;
    c.persistent = true;
    c.world = 12;
    c.comm = comms[ci];
    c.root = roots[ci];
    c.bytes = 3000;
    c.segment = 256;
    add(c);
  }
  {
    const std::pair<mpi::Datatype, mpi::ReduceOp> pdtypes[] = {
        {mpi::Datatype::kInt32, mpi::ReduceOp::kSum},
        {mpi::Datatype::kDouble, mpi::ReduceOp::kSum},
        {mpi::Datatype::kInt64, mpi::ReduceOp::kMax},
    };
    for (int ci = 0; ci < 3; ++ci) {  // reduce × comm shape × dtype/op
      CaseConfig c;
      c.collective = Collective::kReduce;
      c.persistent = true;
      c.dtype = pdtypes[ci].first;
      c.op = pdtypes[ci].second;
      c.world = 12;
      c.comm = comms[ci];
      c.root = roots[ci];
      c.bytes = 4096;
      c.segment = 512;
      add(c);
    }
  }
  for (const auto comm : {CommKind::kWorld, CommKind::kSlice}) {  // allreduce
    CaseConfig c;
    c.collective = Collective::kAllreduce;
    c.persistent = true;
    c.dtype = mpi::Datatype::kInt32;
    c.op = mpi::ReduceOp::kSum;
    c.world = 12;
    c.comm = comm;
    c.root = 0;
    c.bytes = 2048;
    c.segment = 256;
    add(c);
  }
  for (int ci = 0; ci < 3; ++ci) {  // barrier × every comm shape
    CaseConfig c;
    c.collective = Collective::kBarrier;
    c.persistent = true;
    c.starts = 4;  // dissemination rounds reuse tag blocks round-robin
    c.world = 12;
    c.comm = comms[ci];
    c.root = roots[ci];
    add(c);
  }
  {
    CaseConfig c;  // rendezvous-sized persistent bcast: bulk-path replay
    c.collective = Collective::kBcast;
    c.persistent = true;
    c.world = 12;
    c.comm = CommKind::kWorld;
    c.root = 1;
    c.bytes = kib(192);
    c.segment = kib(96);
    add(c);
  }
  {
    CaseConfig c;  // rendezvous-sized persistent reduce
    c.collective = Collective::kReduce;
    c.persistent = true;
    c.dtype = mpi::Datatype::kInt32;
    c.op = mpi::ReduceOp::kSum;
    c.world = 12;
    c.comm = CommKind::kWorld;
    c.root = 1;
    c.bytes = kib(192);
    c.segment = kib(96);
    add(c);
  }
  for (const auto tree : {TreeChoice::kChain, TreeChoice::kBinomial}) {
    CaseConfig c;  // explicit (uncached) tree shapes
    c.collective = Collective::kBcast;
    c.persistent = true;
    c.world = 12;
    c.comm = CommKind::kWorld;
    c.root = 3;
    c.bytes = 4096;
    c.segment = 512;
    c.tree = tree;
    add(c);
  }
  {
    CaseConfig c;  // more in-flight sends than posted receives, 5 rounds
    c.collective = Collective::kBcast;
    c.persistent = true;
    c.starts = 5;
    c.world = 12;
    c.comm = CommKind::kWorld;
    c.root = 0;
    c.bytes = 8192;
    c.segment = 256;
    c.n_out = 3;
    c.m_out = 2;
    add(c);
  }
  {
    CaseConfig c;  // partitioned bcast: root's sends gated on pready
    c.collective = Collective::kBcast;
    c.persistent = true;
    c.partitions = 4;
    c.world = 12;
    c.comm = CommKind::kWorld;
    c.root = 1;
    c.bytes = 4096;
    c.segment = 256;
    add(c);
  }
  {
    CaseConfig c;  // partitioned reduce: every contribution pready-gated
    c.collective = Collective::kReduce;
    c.persistent = true;
    c.partitions = 4;
    c.dtype = mpi::Datatype::kInt32;
    c.op = mpi::ReduceOp::kSum;
    c.world = 12;
    c.comm = CommKind::kWorld;
    c.root = 2;
    c.bytes = 4096;
    c.segment = 256;
    add(c);
  }
  {
    CaseConfig c;  // partitioned allreduce; partitions don't divide segments
    c.collective = Collective::kAllreduce;
    c.persistent = true;
    c.partitions = 3;
    c.dtype = mpi::Datatype::kInt32;
    c.op = mpi::ReduceOp::kSum;
    c.world = 12;
    c.comm = CommKind::kEven;
    c.root = 0;
    c.bytes = 2048;
    c.segment = 256;
    add(c);
  }
  {
    CaseConfig c;  // partitioned reduce on the slice comm, double payloads
    c.collective = Collective::kReduce;
    c.persistent = true;
    c.partitions = 2;
    c.dtype = mpi::Datatype::kDouble;
    c.op = mpi::ReduceOp::kSum;
    c.world = 12;
    c.comm = CommKind::kSlice;
    c.root = 2;
    c.bytes = 2048;
    c.segment = 256;
    add(c);
  }

  return cases;
}

std::string write_failure_trace(const CaseConfig& config, const RunSpec& spec,
                                Fault fault, const std::string& trace_dir,
                                int index) {
  // Recorder needs virtual time — the ThreadEngine cannot be traced.
  if (spec.engine == EngineKind::kThread) return "";
  auto recorder = std::make_shared<obs::Recorder>();
  run_case(config, spec, fault, recorder);  // deterministic replay
  std::error_code ec;
  std::filesystem::create_directories(trace_dir, ec);
  const std::string path =
      trace_dir + "/failure-" + std::to_string(index) + ".trace.json";
  if (!obs::write_trace_file(*recorder, path)) return "";
  // The numeric half rides along: retransmit/give-up/recovery counters next
  // to the trace make "was the protocol involved?" a one-file answer.
  obs::write_metrics_file(*recorder,
                          trace_dir + "/failure-" + std::to_string(index) +
                              ".metrics.csv");
  return path;
}

namespace detail {

Report run_case_matrix(
    const std::vector<CaseConfig>& cases,
    const std::function<std::vector<RunSpec>(const CaseConfig&)>& specs_for,
    const MatrixDriver& driver) {
  Report report;
  report.cases = static_cast<int>(cases.size());
  const std::size_t n = cases.size();
  std::vector<std::optional<Failure>> case_failure(n);
  std::vector<long> case_runs(n, 0);
  std::atomic<int> done{0};
  std::atomic<long> failed{0};
  std::mutex log_mu;
  const auto log = [&](const std::string& line) {
    if (!driver.log) return;
    std::lock_guard<std::mutex> lock(log_mu);
    driver.log(line);
  };

  support::parallel_for(
      driver.jobs, static_cast<int>(n), [&](int index) {
        const CaseConfig& config = cases[static_cast<std::size_t>(index)];
        for (const RunSpec& spec : specs_for(config)) {
          ++case_runs[static_cast<std::size_t>(index)];
          if (driver.on_run) {
            std::lock_guard<std::mutex> lock(log_mu);
            driver.on_run(repro_string(config, spec, driver.fault));
          }
          auto mismatch = run_case(config, spec, driver.fault);
          if (!mismatch) continue;
          CaseConfig reported = config;
          if (driver.shrink) {
            reported = shrink_case(config, spec, driver.fault);
            if (auto shrunk = run_case(reported, spec, driver.fault)) {
              mismatch = shrunk;
            }
          }
          Failure failure;
          failure.config = reported;
          failure.spec = spec;
          failure.detail = *mismatch;
          failure.repro = repro_string(reported, spec, driver.fault);
          log("FAIL " + failure.repro + "\n     " + failure.detail);
          case_failure[static_cast<std::size_t>(index)] = std::move(failure);
          failed.fetch_add(1, std::memory_order_relaxed);
          break;  // one schedule failure per case is enough to report
        }
        const int d = done.fetch_add(1, std::memory_order_relaxed) + 1;
        if (d % driver.progress_every == 0) {
          log(std::string(driver.progress_label) + ": " + std::to_string(d) +
              "/" + std::to_string(report.cases) + " cases, " +
              std::to_string(failed.load(std::memory_order_relaxed)) +
              " failures");
        }
      });

  // Deterministic merge: case order, not completion order. Failure traces
  // replay sequentially here so file names/indices match a jobs=1 run.
  for (std::size_t i = 0; i < n; ++i) {
    report.runs += case_runs[i];
    if (!case_failure[i]) continue;
    Failure failure = std::move(*case_failure[i]);
    if (!driver.trace_dir.empty()) {
      failure.trace_path = write_failure_trace(
          failure.config, failure.spec, driver.fault, driver.trace_dir,
          static_cast<int>(report.failures.size()));
      if (!failure.trace_path.empty()) {
        log("     trace: " + failure.trace_path + " (" + failure.repro + ")");
      }
    }
    report.failures.push_back(std::move(failure));
  }
  return report;
}

}  // namespace detail

Report run_matrix(const std::vector<CaseConfig>& cases,
                  const MatrixOptions& options) {
  detail::MatrixDriver driver;
  driver.jobs = options.jobs;
  driver.fault = options.fault;
  driver.shrink = options.shrink;
  driver.trace_dir = options.trace_dir;
  driver.log = options.log;
  driver.on_run = options.on_run;
  driver.progress_label = "conformance";
  driver.progress_every = 20;
  return detail::run_case_matrix(
      cases,
      [&](const CaseConfig& config) {
        std::vector<RunSpec> specs;
        specs.push_back(RunSpec{EngineKind::kSim, 0, 0});
        for (int s = 1; s <= options.sim_seeds; ++s) {
          specs.push_back(RunSpec{EngineKind::kSim,
                                  static_cast<std::uint64_t>(s),
                                  options.max_jitter});
        }
        if (options.thread_engine) {
          specs.push_back(RunSpec{EngineKind::kThread, 0, 0});
        }
        if (options.sharded_shards > 0 && !config.persistent &&
            config.partitions == 0) {
          RunSpec sharded;
          sharded.engine = EngineKind::kSharded;
          sharded.shards = 1;
          specs.push_back(sharded);
          if (options.sharded_shards > 1) {
            sharded.shards = options.sharded_shards;
            specs.push_back(sharded);
          }
        }
        return specs;
      },
      driver);
}

std::string Report::summary() const {
  std::ostringstream out;
  out << cases << " cases, " << runs << " runs, " << failures.size()
      << " failures";
  for (const Failure& f : failures) {
    out << "\n  " << f.repro << "\n    " << f.detail;
    if (!f.trace_path.empty()) out << "\n    trace: " << f.trace_path;
  }
  return out.str();
}

}  // namespace adapt::verify
