// Unit tests of the retransmit machinery (mpi::ReliableChannel), driven by a
// scripted lossy wire on a bare simulator — no engine, no fabric — plus
// engine-level checks that retry exhaustion surfaces as error codes on BOTH
// endpoints of a partitioned send/recv.
#include <functional>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/mpi/errors.hpp"
#include "src/mpi/p2p.hpp"
#include "src/mpi/reliable.hpp"
#include "src/runtime/sim_engine.hpp"
#include "src/sim/simulator.hpp"
#include "src/topo/presets.hpp"

namespace adapt {
namespace {

using mpi::ErrCode;
using mpi::Frame;
using mpi::ReliableChannel;
using mpi::WireFrame;

/// Two channels joined by a scripted wire: tests decide per wire frame
/// whether it is dropped or corrupted en route.
class WirePair {
 public:
  WirePair() {
    config_.ack_timeout = microseconds(10);
    config_.per_byte = 0;
    config_.backoff = 2.0;
    config_.max_retries = 3;
    for (Rank r = 0; r < 2; ++r) chan_[r] = make(r);
  }

  sim::Simulator& sim() { return sim_; }
  ReliableChannel& chan(Rank r) {
    return *chan_[static_cast<std::size_t>(r)];
  }
  const mpi::ReliabilityConfig& config() const { return config_; }

  /// Scripted fault hooks, keyed on the full wire identity.
  std::function<bool(const WireFrame&)> drop;
  std::function<bool(const WireFrame&)> corrupt;

  std::vector<std::pair<Rank, Frame>> delivered[2];
  std::vector<ErrCode> give_ups[2];

 private:
  std::unique_ptr<ReliableChannel> make(Rank self) {
    const std::size_t si = static_cast<std::size_t>(self);
    return std::make_unique<ReliableChannel>(
        self, config_,
        [this](const WireFrame& w) { send(w); },
        [this](TimeNs delay, std::function<void()> fn) {
          sim_.after(delay, std::move(fn));
        },
        [this, si](Rank src, const Frame& frame) {
          delivered[si].push_back({src, frame});
        },
        [this, si](Rank /*peer*/, const Frame&, ErrCode code) {
          give_ups[si].push_back(code);
        });
  }

  void send(const WireFrame& w) {
    if (drop && drop(w)) return;
    WireFrame copy = w;
    if (corrupt && corrupt(w)) copy.corrupted = true;
    sim_.after(/*latency=*/100, [this, copy] {
      chan_[static_cast<std::size_t>(copy.dst)]->on_wire(copy);
    });
  }

  sim::Simulator sim_;
  mpi::ReliabilityConfig config_;
  std::unique_ptr<ReliableChannel> chan_[2];
};

Frame eager_frame(Bytes bytes) {
  Frame frame;
  frame.kind = Frame::Kind::kEager;
  frame.wire_bytes = bytes;
  return frame;
}

TEST(ReliableChannel, DeliversAndAcksOnCleanWire) {
  WirePair net;
  bool acked = false;
  net.chan(0).submit(1, eager_frame(64), [&] { acked = true; });
  net.sim().run();
  EXPECT_TRUE(acked);
  ASSERT_EQ(net.delivered[1].size(), 1u);
  EXPECT_EQ(net.delivered[1][0].first, 0);
  EXPECT_EQ(net.chan(0).stats().retransmits, 0u);
  EXPECT_EQ(net.chan(0).outstanding(), 0);
}

TEST(ReliableChannel, RetransmitHealsDroppedData) {
  WirePair net;
  net.drop = [](const WireFrame& w) { return !w.is_ack && w.attempt == 0; };
  bool acked = false;
  net.chan(0).submit(1, eager_frame(64), [&] { acked = true; });
  net.sim().run();
  EXPECT_TRUE(acked);
  ASSERT_EQ(net.delivered[1].size(), 1u) << "delivered exactly once";
  EXPECT_EQ(net.chan(0).stats().retransmits, 1u);
  EXPECT_TRUE(net.give_ups[0].empty());
}

TEST(ReliableChannel, DuplicateFromLostAckSuppressed) {
  WirePair net;
  // The data frame arrives; its first ack is lost, so the sender
  // retransmits and the receiver sees a duplicate. It must re-ack without
  // re-delivering.
  int acks_dropped = 0;
  net.drop = [&](const WireFrame& w) {
    if (w.is_ack && acks_dropped == 0) {
      ++acks_dropped;
      return true;
    }
    return false;
  };
  bool acked = false;
  net.chan(0).submit(1, eager_frame(64), [&] { acked = true; });
  net.sim().run();
  EXPECT_TRUE(acked) << "the re-acked duplicate completes the sender";
  ASSERT_EQ(net.delivered[1].size(), 1u) << "duplicate must not re-deliver";
  EXPECT_GE(net.chan(1).stats().duplicates, 1u);
  EXPECT_EQ(net.chan(0).stats().retransmits, 1u);
}

TEST(ReliableChannel, StaleAndUnknownAcksIgnored) {
  WirePair net;
  bool acked = false;
  net.chan(0).submit(1, eager_frame(64), [&] { acked = true; });
  net.sim().run();
  ASSERT_TRUE(acked);

  // An ack for a sequence number that was never outstanding, and a repeat
  // of the ack that already completed seq 1: both must be counted and
  // otherwise ignored.
  WireFrame unknown;
  unknown.src = 1;
  unknown.dst = 0;
  unknown.is_ack = true;
  unknown.seq = 99;
  net.chan(0).on_wire(unknown);
  WireFrame repeat = unknown;
  repeat.seq = 1;
  net.chan(0).on_wire(repeat);
  EXPECT_EQ(net.chan(0).stats().stale_acks, 2u);
  EXPECT_EQ(net.chan(0).outstanding(), 0);
  EXPECT_TRUE(net.give_ups[0].empty());
}

TEST(ReliableChannel, CorruptionDiscardedThenHealedByRetransmit) {
  WirePair net;
  net.corrupt = [](const WireFrame& w) { return !w.is_ack && w.attempt == 0; };
  bool acked = false;
  net.chan(0).submit(1, eager_frame(64), [&] { acked = true; });
  net.sim().run();
  EXPECT_TRUE(acked);
  ASSERT_EQ(net.delivered[1].size(), 1u);
  EXPECT_EQ(net.chan(1).stats().corrupt_discards, 1u);
  EXPECT_EQ(net.chan(0).stats().retransmits, 1u);
}

TEST(ReliableChannel, RetryExhaustionFailsTheFrame) {
  WirePair net;
  net.drop = [](const WireFrame& w) { return !w.is_ack; };  // total blackout
  bool acked = false;
  ErrCode failed = ErrCode::kOk;
  net.chan(0).submit(
      1, eager_frame(64), [&] { acked = true; },
      [&](ErrCode code) { failed = code; });
  net.sim().run();
  EXPECT_FALSE(acked);
  EXPECT_EQ(failed, ErrCode::kErrRetryExhausted);
  ASSERT_EQ(net.give_ups[0].size(), 1u);
  EXPECT_EQ(net.give_ups[0][0], ErrCode::kErrRetryExhausted);
  EXPECT_EQ(net.chan(0).outstanding(), 0);
  EXPECT_TRUE(net.delivered[1].empty());
  // max_retries transmissions beyond the first.
  EXPECT_EQ(net.chan(0).stats().retransmits,
            static_cast<std::uint64_t>(net.config().max_retries));
}

TEST(ReliableChannel, BackoffSpacesRetransmits) {
  WirePair net;
  std::vector<TimeNs> attempts;
  net.drop = [&](const WireFrame& w) {
    if (!w.is_ack) attempts.push_back(net.sim().now());
    return !w.is_ack;
  };
  net.chan(0).submit(1, eager_frame(0), nullptr, [](ErrCode) {});
  net.sim().run();
  ASSERT_EQ(attempts.size(), 4u);  // original + 3 retries
  // Exponential backoff: each gap doubles (ack_timeout * backoff^attempt).
  const TimeNs g1 = attempts[1] - attempts[0];
  const TimeNs g2 = attempts[2] - attempts[1];
  const TimeNs g3 = attempts[3] - attempts[2];
  EXPECT_EQ(g2, 2 * g1);
  EXPECT_EQ(g3, 2 * g2);
}

// ---------------------------------------------------------- engine level ---

/// An outage between ranks 0 and 1 that outlasts the data frame's whole
/// retry budget (give-up lands at ~51ms) but not the abort flood sent right
/// after: the failure must surface as an error code on BOTH endpoints — the
/// sender via give-up, the receiver via the abort flood — never as a hang.
TEST(ReliableEngine, RetryExhaustionSurfacesOnBothEndpoints) {
  const topo::Machine machine(topo::cori(1), 2);
  runtime::SimEngineOptions options;
  options.faults.outages.push_back(
      {/*a=*/0, /*b=*/1, /*link=*/-1, /*from=*/0, /*until=*/milliseconds(30)});
  options.reliability = mpi::ReliabilityConfig{};
  runtime::SimEngine engine(machine, options);

  std::vector<ErrCode> codes(2, ErrCode::kOk);
  const auto program = [&](runtime::Context& ctx) -> sim::Task<> {
    std::vector<std::byte> buf(1024);
    try {
      if (ctx.rank() == 0) {
        co_await ctx.send(1, /*tag=*/7,
                          mpi::ConstView{buf.data(), (Bytes)buf.size()});
      } else {
        co_await ctx.recv(0, /*tag=*/7,
                          mpi::MutView{buf.data(), (Bytes)buf.size()});
      }
    } catch (const mpi::FaultError& e) {
      codes[static_cast<std::size_t>(ctx.rank())] = e.code();
    }
  };
  engine.run(program);

  EXPECT_EQ(codes[0], ErrCode::kErrRetryExhausted) << "sender-side give-up";
  EXPECT_EQ(codes[1], ErrCode::kErrProcFailed)
      << "receiver learns through the abort flood";
  EXPECT_TRUE(engine.endpoint(1).poisoned());
}

/// Same outage, rendezvous-sized payload: the RTS never gets through, the
/// sender's give-up escalates job-wide, and the posted receive fails too.
TEST(ReliableEngine, RendezvousPartitionFailsBothRequests) {
  const topo::Machine machine(topo::cori(1), 2);
  runtime::SimEngineOptions options;
  options.faults.outages.push_back(
      {/*a=*/0, /*b=*/1, /*link=*/-1, /*from=*/0, /*until=*/milliseconds(30)});
  options.reliability = mpi::ReliabilityConfig{};
  runtime::SimEngine engine(machine, options);

  const Bytes big = kib(256);  // above the eager threshold
  std::vector<ErrCode> codes(2, ErrCode::kOk);
  const auto program = [&](runtime::Context& ctx) -> sim::Task<> {
    std::vector<std::byte> buf(static_cast<std::size_t>(big));
    try {
      if (ctx.rank() == 0) {
        co_await ctx.send(1, /*tag=*/9, mpi::ConstView{buf.data(), big});
      } else {
        co_await ctx.recv(0, /*tag=*/9, mpi::MutView{buf.data(), big});
      }
    } catch (const mpi::FaultError& e) {
      codes[static_cast<std::size_t>(ctx.rank())] = e.code();
    }
  };
  engine.run(program);

  EXPECT_EQ(codes[0], ErrCode::kErrRetryExhausted);
  EXPECT_EQ(codes[1], ErrCode::kErrProcFailed);
}

}  // namespace
}  // namespace adapt
