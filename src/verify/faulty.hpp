// Deliberately buggy collectives, used ONLY to validate the conformance
// harness itself: each encodes a bug class that survives the default stable
// schedule (so a spot-check benchmark or a single deterministic test passes)
// but breaks under legal schedule reorderings — exactly what the
// perturbation matrix exists to expose.
#pragma once

#include "src/coll/coll.hpp"
#include "src/mpi/comm.hpp"
#include "src/runtime/context.hpp"
#include "src/sim/task.hpp"

namespace adapt::verify {

/// Flat gather with a classic wildcard-source bug: the root posts
/// MPI_ANY_SOURCE receives into arrival-order staging slots and then copies
/// slot k into the block of the k-th sender *by rank order* — silently
/// assuming arrival order equals rank order. Under the stable SimEngine
/// schedule equal-cost same-link transfers complete in posting (= rank)
/// order, so the bug is invisible; randomized tie-breaking or delivery
/// jitter reorders the arrivals and scrambles the gathered blocks.
/// Same contract as coll::gather.
sim::Task<> faulty_gather_arrival_order(runtime::Context& ctx,
                                        const mpi::Comm& comm,
                                        mpi::ConstView sendblock,
                                        mpi::MutView recvbuf, Bytes block,
                                        Rank root);

}  // namespace adapt::verify
