#include <gtest/gtest.h>

#include "src/support/error.hpp"
#include "src/topo/hardware.hpp"
#include "src/topo/presets.hpp"

namespace adapt::topo {
namespace {

TEST(LinkParams, HockneyTime) {
  LinkParams p{1000, 0.5};
  EXPECT_EQ(p.time(0), 1000);
  EXPECT_EQ(p.time(2000), 2000);
  EXPECT_DOUBLE_EQ(p.bandwidth_gbs(), 2.0);
}

TEST(Machine, ByCorePlacement) {
  MachineSpec spec = cori(2);  // 2 nodes x 2 sockets x 16 cores
  Machine m(spec, 64);
  EXPECT_EQ(m.nranks(), 64);
  EXPECT_EQ(m.loc(0), (Loc{0, 0, 0, -1}));
  EXPECT_EQ(m.loc(15), (Loc{0, 0, 15, -1}));
  EXPECT_EQ(m.loc(16), (Loc{0, 1, 0, -1}));
  EXPECT_EQ(m.loc(32), (Loc{1, 0, 0, -1}));
  EXPECT_EQ(m.loc(63), (Loc{1, 1, 15, -1}));
}

TEST(Machine, RejectsOversubscription) {
  EXPECT_THROW(Machine(cori(1), 33), Error);
}

TEST(Machine, LevelClassification) {
  Machine m(cori(2), 64);
  EXPECT_EQ(m.level_between(3, 3), Level::kSelf);
  EXPECT_EQ(m.level_between(0, 5), Level::kIntraSocket);
  EXPECT_EQ(m.level_between(0, 16), Level::kInterSocket);
  EXPECT_EQ(m.level_between(0, 32), Level::kInterNode);
  EXPECT_EQ(m.level_between(33, 35), Level::kIntraSocket);
}

TEST(Machine, SocketIds) {
  Machine m(cori(2), 64);
  EXPECT_EQ(m.socket_id(0), 0);
  EXPECT_EQ(m.socket_id(16), 1);
  EXPECT_EQ(m.socket_id(32), 2);
  EXPECT_EQ(m.socket_id(48), 3);
}

TEST(Machine, GroupsByNodeAndSocket) {
  Machine m(cori(2), 48);  // node 0 full (32), node 1 half (16)
  const auto nodes = m.ranks_by_node();
  ASSERT_EQ(nodes.size(), 2u);
  EXPECT_EQ(nodes[0].size(), 32u);
  EXPECT_EQ(nodes[1].size(), 16u);
  const auto sockets = m.ranks_by_socket();
  ASSERT_EQ(sockets.size(), 3u);  // node 1 socket 1 is empty
  EXPECT_EQ(sockets[0].size(), 16u);
  EXPECT_EQ(sockets[2].front(), 32);
}

TEST(Machine, ByGpuPlacement) {
  Machine m(psg(2), 8, PlacementPolicy::kByGpu);  // 4 GPUs per node
  EXPECT_EQ(m.loc(0), (Loc{0, 0, 0, 0}));
  EXPECT_EQ(m.loc(1), (Loc{0, 0, 1, 1}));
  EXPECT_EQ(m.loc(2), (Loc{0, 1, 0, 0}));
  EXPECT_EQ(m.loc(4), (Loc{1, 0, 0, 0}));
  EXPECT_EQ(m.level_between(0, 1), Level::kIntraSocket);
  EXPECT_EQ(m.level_between(0, 2), Level::kInterSocket);
  EXPECT_EQ(m.level_between(0, 4), Level::kInterNode);
}

TEST(Machine, ByGpuRequiresGpus) {
  EXPECT_THROW(Machine(cori(1), 4, PlacementPolicy::kByGpu), Error);
}

TEST(Machine, LaneSelection) {
  Machine m(cori(1), 32);
  EXPECT_EQ(m.lane(Level::kIntraSocket).alpha, m.spec().intra_socket.alpha);
  EXPECT_EQ(m.lane(Level::kInterNode).alpha, m.spec().inter_node.alpha);
}

TEST(Presets, PaperScales) {
  // The paper's configurations: 1024 ranks on Cori, 1536 on Stampede2.
  Machine cori32(cori(32), 1024);
  EXPECT_EQ(cori32.node_of(1023), 31);
  Machine stampede32(stampede2(32), 1536);
  EXPECT_EQ(stampede32.node_of(1535), 31);
  // PSG: 8 nodes, 32 GPUs.
  Machine psg8(psg(8), 32, PlacementPolicy::kByGpu);
  EXPECT_EQ(psg8.node_of(31), 7);
}

TEST(Presets, LookupByName) {
  EXPECT_EQ(preset("cori", 4).name, "cori");
  EXPECT_EQ(preset("stampede2", 4).cores_per_socket, 24);
  EXPECT_EQ(preset("psg", 4).gpus_per_socket, 2);
  EXPECT_THROW(preset("titan", 4), Error);
}

TEST(Presets, ParseSpec) {
  const MachineSpec m =
      parse_spec("nodes=4,sockets=1,cores=8,bw_node=10,alpha_node=2000");
  EXPECT_EQ(m.nodes, 4);
  EXPECT_EQ(m.sockets_per_node, 1);
  EXPECT_EQ(m.cores_per_socket, 8);
  EXPECT_EQ(m.inter_node.alpha, 2000);
  EXPECT_DOUBLE_EQ(m.inter_node.beta_ns_per_byte, 0.1);
}

TEST(Presets, ParseSpecRejectsUnknownKey) {
  EXPECT_THROW(parse_spec("warp=9"), Error);
  EXPECT_THROW(parse_spec("nodes"), Error);
}

TEST(LevelName, AllNamed) {
  EXPECT_STREQ(level_name(Level::kIntraSocket), "intra-socket");
  EXPECT_STREQ(level_name(Level::kInterNode), "inter-node");
}

}  // namespace
}  // namespace adapt::topo
