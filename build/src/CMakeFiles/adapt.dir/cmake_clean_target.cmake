file(REMOVE_RECURSE
  "libadapt.a"
)
