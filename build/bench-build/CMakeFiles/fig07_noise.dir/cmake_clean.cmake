file(REMOVE_RECURSE
  "../bench/fig07_noise"
  "../bench/fig07_noise.pdb"
  "CMakeFiles/fig07_noise.dir/fig07_noise.cpp.o"
  "CMakeFiles/fig07_noise.dir/fig07_noise.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
