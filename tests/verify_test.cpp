// Tests of the conformance harness itself: the reproducer round-trip, the
// perturbation runs' determinism, the shrinker, and — most importantly — the
// proof that the harness catches a schedule-dependent bug a deterministic
// test cannot see (the whole reason src/verify exists).
#include <gtest/gtest.h>

#include <cstring>

#include "src/verify/conformance.hpp"
#include "src/verify/oracle.hpp"

namespace adapt::verify {
namespace {

TEST(Conformance, CommMembers) {
  EXPECT_EQ(comm_members(CommKind::kWorld, 4),
            (std::vector<Rank>{0, 1, 2, 3}));
  EXPECT_EQ(comm_members(CommKind::kEven, 8), (std::vector<Rank>{0, 2, 4, 6}));
  EXPECT_EQ(comm_members(CommKind::kSlice, 8),
            (std::vector<Rank>{2, 3, 4, 5}));
}

TEST(Conformance, ReproRoundTrip) {
  CaseConfig config;
  config.collective = Collective::kReduce;
  config.style = coll::Style::kAdapt;
  config.dtype = mpi::Datatype::kDouble;
  config.op = mpi::ReduceOp::kSum;
  config.world = 10;
  config.comm = CommKind::kEven;
  config.root = 3;
  config.bytes = 4096;
  config.segment = 512;
  config.n_out = 3;
  config.m_out = 5;
  config.tree = TreeChoice::kBinomial;
  config.data_seed = 42;
  RunSpec spec{EngineKind::kSim, 17, microseconds(2)};

  const std::string line =
      repro_string(config, spec, Fault::kGatherArrivalOrder);
  CaseConfig parsed_config;
  RunSpec parsed_spec;
  Fault parsed_fault = Fault::kNone;
  ASSERT_TRUE(parse_repro(line, &parsed_config, &parsed_spec, &parsed_fault));
  EXPECT_EQ(repro_string(parsed_config, parsed_spec, parsed_fault), line);
  EXPECT_EQ(parsed_config.collective, Collective::kReduce);
  EXPECT_EQ(parsed_config.dtype, mpi::Datatype::kDouble);
  EXPECT_EQ(parsed_config.world, 10);
  EXPECT_EQ(parsed_spec.perturb_seed, 17u);
  EXPECT_EQ(parsed_fault, Fault::kGatherArrivalOrder);
}

TEST(Conformance, ParseRejectsGarbage) {
  CaseConfig config;
  RunSpec spec;
  EXPECT_FALSE(parse_repro("collective=bcast bogus_key=1", &config, &spec,
                           nullptr));
  EXPECT_FALSE(parse_repro("style=adapt", &config, &spec, nullptr));
  EXPECT_FALSE(parse_repro("collective=no_such_op", &config, &spec, nullptr));
  EXPECT_FALSE(parse_repro("collective=bcast world=notanumber", &config,
                           &spec, nullptr));
}

TEST(Conformance, OracleReduceMatchesHandComputedSum) {
  CaseConfig config;
  config.collective = Collective::kReduce;
  config.dtype = mpi::Datatype::kInt32;
  config.op = mpi::ReduceOp::kSum;
  config.world = 4;
  config.bytes = 8;  // two int32 elements
  config.root = 0;
  const CaseIo io = make_io(config);
  ASSERT_TRUE(io.expected[0].has_value());
  std::int32_t expect[2];
  std::memcpy(expect, io.expected[0]->data(), sizeof expect);
  std::int32_t sum[2] = {0, 0};
  for (const auto& input : io.inputs) {
    std::int32_t v[2];
    std::memcpy(v, input.data(), sizeof v);
    sum[0] += v[0];
    sum[1] += v[1];
  }
  EXPECT_EQ(sum[0], expect[0]);
  EXPECT_EQ(sum[1], expect[1]);
}

TEST(Conformance, CleanCasePassesOnBothEnginesAndUnderPerturbation) {
  CaseConfig config;
  config.collective = Collective::kBcast;
  config.style = coll::Style::kAdapt;
  config.world = 8;
  config.root = 1;
  config.bytes = 2048;
  config.segment = 256;
  EXPECT_EQ(run_case(config, RunSpec{EngineKind::kSim, 0, 0}), std::nullopt);
  EXPECT_EQ(run_case(config,
                     RunSpec{EngineKind::kSim, 7, microseconds(5)}),
            std::nullopt);
  EXPECT_EQ(run_case(config, RunSpec{EngineKind::kThread, 0, 0}),
            std::nullopt);
}

TEST(Conformance, PerturbedRunsAreDeterministicPerSeed) {
  CaseConfig config;
  config.collective = Collective::kReduce;
  config.style = coll::Style::kAdapt;
  config.dtype = mpi::Datatype::kInt32;
  config.op = mpi::ReduceOp::kSum;
  config.world = 8;
  config.bytes = 1024;
  config.segment = 128;
  const RunSpec spec{EngineKind::kSim, 1234, microseconds(5)};
  // Same seed, same case: the outcome (here: success) must be identical on
  // every invocation — that is what makes a printed repro replayable.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(run_case(config, spec), std::nullopt) << "iteration " << i;
  }
}

// The headline property: a bug invisible to the deterministic schedule is
// caught by schedule perturbation, and the reported reproducer seed replays
// the failure exactly.
TEST(Conformance, SeededFaultIsCaughtAndReproSeedReplays) {
  CaseConfig config;
  config.collective = Collective::kGather;
  config.world = 12;
  config.comm = CommKind::kWorld;
  config.root = 1;
  config.bytes = 1000;

  MatrixOptions options;
  options.sim_seeds = 20;
  options.max_jitter = microseconds(5);
  options.thread_engine = false;
  options.shrink = false;
  options.fault = Fault::kGatherArrivalOrder;
  const Report report = run_matrix({config}, options);
  ASSERT_FALSE(report.ok())
      << "no perturbation seed exposed the arrival-order fault";
  const Failure& failure = report.failures.front();
  EXPECT_NE(failure.spec.perturb_seed, 0u)
      << "fault fired on the stable schedule; it should only be visible "
         "under perturbation";

  // The printed repro line parses back and still fails.
  CaseConfig parsed_config;
  RunSpec parsed_spec;
  Fault parsed_fault = Fault::kNone;
  ASSERT_TRUE(
      parse_repro(failure.repro, &parsed_config, &parsed_spec, &parsed_fault));
  EXPECT_EQ(parsed_fault, Fault::kGatherArrivalOrder);
  EXPECT_TRUE(run_case(parsed_config, parsed_spec, parsed_fault).has_value());
}

TEST(Conformance, FaultyGatherPassesOnStableSchedule) {
  // Documents WHY the harness is needed: the stable schedule delivers
  // same-cost arrivals in rank order, so the bug hides from it.
  CaseConfig config;
  config.collective = Collective::kGather;
  config.world = 12;
  config.comm = CommKind::kWorld;
  config.root = 1;
  config.bytes = 1000;
  EXPECT_EQ(run_case(config, RunSpec{EngineKind::kSim, 0, 0},
                     Fault::kGatherArrivalOrder),
            std::nullopt);
}

TEST(Conformance, ShrinkProducesSmallerStillFailingCase) {
  CaseConfig config;
  config.collective = Collective::kGather;
  config.world = 12;
  config.comm = CommKind::kWorld;
  config.root = 1;
  config.bytes = 1000;
  // Find a failing seed first.
  RunSpec failing{EngineKind::kSim, 0, microseconds(5)};
  for (std::uint64_t s = 1; s <= 64; ++s) {
    failing.perturb_seed = s;
    if (run_case(config, failing, Fault::kGatherArrivalOrder)) break;
  }
  ASSERT_TRUE(
      run_case(config, failing, Fault::kGatherArrivalOrder).has_value());

  const CaseConfig small =
      shrink_case(config, failing, Fault::kGatherArrivalOrder);
  EXPECT_TRUE(
      run_case(small, failing, Fault::kGatherArrivalOrder).has_value())
      << "shrunk case no longer fails";
  EXPECT_LE(small.bytes, config.bytes);
  EXPECT_LE(small.world, config.world);
}

}  // namespace
}  // namespace adapt::verify
