file(REMOVE_RECURSE
  "../bench/ablation_noise_model"
  "../bench/ablation_noise_model.pdb"
  "CMakeFiles/ablation_noise_model.dir/ablation_noise_model.cpp.o"
  "CMakeFiles/ablation_noise_model.dir/ablation_noise_model.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_noise_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
