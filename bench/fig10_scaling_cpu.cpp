// Figure 10: strong scalability of broadcast and reduce with CPU data on
// Cori — 4 MB message, 8 to 32 nodes (128-1024 ranks at the paper's
// placement density for this experiment: the paper varies nodes with ranks
// 128/256/512/1024).
//
// ADAPT uses chains at every topo level; with enough segments the chain cost
// ns*(alpha+beta*m) is independent of P (§5.2.1), so its curve should be
// flat while rank-order trees grow.
//
// Every (op, library, ranks) point is an independent SimEngine run, so the
// sweep fans points across --jobs worker threads; simulated times are
// bit-identical for any jobs value (results land in per-point slots and the
// tables are assembled in point order). Per-point host wall clock is also
// recorded — that is the simulator-performance number BENCH_fig10.json
// tracks, and it is only meaningful with --jobs 1.
//
//   fig10_scaling_cpu [--iters N] [--msg BYTES] [--jobs N] [--json [FILE]]
//                     [--trace FILE [--trace-lib NAME] [--trace-ranks N]]
//
// --trace writes the Chrome/Perfetto trace of one designated point (default
// ompi-adapt broadcast at 128 ranks) for adapt-trace summarize/diff — the
// trace is virtual-time only, so it is byte-identical across hosts and
// --jobs values and serves as the perf gate's attribution baseline.
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "src/bench/cli.hpp"
#include "src/bench/imb.hpp"
#include "src/bench/report.hpp"
#include "src/coll/library.hpp"
#include "src/obs/export.hpp"
#include "src/obs/trace.hpp"
#include "src/runtime/sim_engine.hpp"
#include "src/support/parallel.hpp"
#include "src/support/table.hpp"

int main(int argc, char** argv) {
  using namespace adapt;
  bench::Cli cli(argc, argv);
  const int iters = static_cast<int>(cli.get_int("iters", 3));
  const Bytes msg = cli.get_int("msg", mib(4));
  int jobs = static_cast<int>(cli.get_int("jobs", 1));
  if (jobs <= 0) jobs = support::hardware_jobs();
  const std::vector<int> rank_counts = {128, 256, 512, 1024};
  const std::vector<std::string> libraries =
      coll::end_to_end_libraries("cori");

  struct Point {
    bool is_bcast;
    std::string library;
    int ranks;
  };
  std::vector<Point> points;
  for (const bool is_bcast : {true, false}) {
    for (const std::string& name : libraries) {
      for (int ranks : rank_counts) {
        points.push_back(Point{is_bcast, name, ranks});
      }
    }
  }

  std::cout << "== Figure 10: strong scalability on Cori, MSG="
            << format_bytes(msg) << " ==\n\n";

  // One designated point may carry a trace recorder; exactly one point
  // matches, so the shared_ptr is written by at most one worker.
  const bool tracing = cli.has("trace");
  const std::string trace_lib = cli.get("trace-lib", "ompi-adapt");
  const int trace_ranks = static_cast<int>(cli.get_int("trace-ranks", 128));
  std::shared_ptr<obs::Recorder> trace_recorder;

  std::vector<double> sim_ms(points.size());
  std::vector<double> wall_ms(points.size());
  support::parallel_for(
      jobs, static_cast<int>(points.size()), [&](int i) {
        const Point& p = points[static_cast<std::size_t>(i)];
        const auto start = std::chrono::steady_clock::now();
        const int nodes = (p.ranks + 31) / 32;
        const auto setup = bench::make_cluster("cori", nodes, p.ranks);
        const mpi::Comm world = mpi::Comm::world(p.ranks);
        auto lib = coll::make_library(p.library, setup.machine);
        runtime::SimEngineOptions options;
        if (tracing && p.is_bcast && p.library == trace_lib &&
            p.ranks == trace_ranks) {
          trace_recorder = std::make_shared<obs::Recorder>();
          options.recorder = trace_recorder;
        }
        runtime::SimEngine engine(setup.machine, options);
        mpi::MutView buffer{nullptr, msg};
        auto fn = [&](runtime::Context& ctx, int) -> sim::Task<> {
          if (p.is_bcast) {
            co_await lib->bcast(ctx, world, buffer, 0);
          } else {
            co_await lib->reduce(ctx, world, buffer, mpi::ReduceOp::kSum,
                                 mpi::Datatype::kFloat, 0);
          }
        };
        sim_ms[static_cast<std::size_t>(i)] =
            bench::measure(engine, world, fn,
                           {.warmup = 1, .iterations = iters})
                .avg_ms();
        wall_ms[static_cast<std::size_t>(i)] =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - start)
                .count();
      });

  bench::JsonReport report("fig10_scaling_cpu");
  report.set_meta("iters", iters);
  report.set_meta("msg_bytes", msg);
  report.set_meta("jobs", jobs);
  std::size_t next = 0;
  for (const char* op : {"Broadcast", "Reduce"}) {
    std::cout << "Strong Scalability of " << op
              << " with CPU data, NB nodes from 8 to 32, time in ms\n";
    std::vector<std::string> header = {"library"};
    for (int r : rank_counts) header.push_back(std::to_string(r));
    Table table(header);
    Table wall_table(header);
    for (const std::string& name : libraries) {
      std::vector<double> row;
      std::vector<double> wall_row;
      for (std::size_t k = 0; k < rank_counts.size(); ++k) {
        row.push_back(sim_ms[next]);
        wall_row.push_back(wall_ms[next]);
        ++next;
      }
      table.add_row_numeric(name, row);
      wall_table.add_row_numeric(name, wall_row);
    }
    table.print(std::cout);
    std::cout << "\n";
    report.add_table(std::string(op) + " strong scaling time (ms)", table);
    report.add_table(std::string(op) + " host wall clock per point (ms)",
                     wall_table);
  }
  if (tracing) {
    const std::string path = cli.get("trace", "fig10.trace.json");
    if (!trace_recorder) {
      std::cerr << "--trace point " << trace_lib << "/bcast/" << trace_ranks
                << " is not in the sweep\n";
      return 1;
    }
    if (!obs::write_trace_file(*trace_recorder, path)) {
      std::cerr << "cannot write --trace file " << path << "\n";
      return 1;
    }
    std::cout << "trace (" << trace_lib << " bcast, " << trace_ranks
              << " ranks): " << path << "\n";
  }
  return bench::emit_json(cli, report) ? 0 : 1;
}
