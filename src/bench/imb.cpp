#include "src/bench/imb.hpp"

#include <mutex>
#include <vector>

#include "src/coll/coll.hpp"
#include "src/support/error.hpp"

namespace adapt::bench {

Measurement measure(runtime::Engine& engine, const mpi::Comm& comm,
                    const CollectiveFn& fn, const MeasureOpts& opts) {
  ADAPT_CHECK(opts.warmup >= 0);
  ADAPT_CHECK(opts.iterations > 0);
  const int total = opts.warmup + opts.iterations;
  const std::size_t nranks = static_cast<std::size_t>(comm.size());

  // rank x iteration op durations; written by rank programs. The SimEngine is
  // single-threaded; the ThreadEngine writes disjoint rows, so a mutex is
  // only needed for allocation-free safety of the shared matrix — rows are
  // pre-sized, making writes race-free by construction.
  std::vector<std::vector<TimeNs>> durations(
      nranks, std::vector<TimeNs>(static_cast<std::size_t>(total), 0));

  auto program = [&](runtime::Context& ctx) -> sim::Task<> {
    const Rank local = comm.local_of(ctx.rank());
    if (local == kAnyRank) co_return;  // engine rank outside the comm
    for (int it = 0; it < total; ++it) {
      if (opts.gap > 0) co_await ctx.sleep_for(opts.gap);
      co_await coll::barrier(ctx, comm);
      const TimeNs start = ctx.now();
      co_await fn(ctx, it);
      durations[static_cast<std::size_t>(local)]
               [static_cast<std::size_t>(it)] = ctx.now() - start;
    }
  };
  engine.run(program);

  Measurement m;
  for (int it = opts.warmup; it < total; ++it) {
    TimeNs worst = 0;
    for (std::size_t r = 0; r < nranks; ++r) {
      worst = std::max(worst, durations[r][static_cast<std::size_t>(it)]);
    }
    m.op_ms.add(to_ms(worst));
  }
  return m;
}

Measurement measure_throughput(runtime::Engine& engine, const mpi::Comm& comm,
                               const CollectiveFn& fn,
                               const MeasureOpts& opts) {
  ADAPT_CHECK(opts.warmup >= 0);
  ADAPT_CHECK(opts.iterations > 0);
  const std::size_t nranks = static_cast<std::size_t>(comm.size());
  std::vector<TimeNs> loop_time(nranks, 0);

  auto program = [&](runtime::Context& ctx) -> sim::Task<> {
    const Rank local = comm.local_of(ctx.rank());
    if (local == kAnyRank) co_return;
    for (int it = 0; it < opts.warmup; ++it) {
      co_await coll::barrier(ctx, comm);
      co_await fn(ctx, it);
    }
    co_await coll::barrier(ctx, comm);
    if (opts.gap > 0) co_await ctx.sleep_for(opts.gap);
    const TimeNs start = ctx.now();
    for (int it = 0; it < opts.iterations; ++it) {
      co_await fn(ctx, opts.warmup + it);
    }
    loop_time[static_cast<std::size_t>(local)] = ctx.now() - start;
  };
  engine.run(program);

  Measurement m;
  for (std::size_t r = 0; r < nranks; ++r) {
    m.op_ms.add(to_ms(loop_time[r]) / opts.iterations);
  }
  return m;
}

}  // namespace adapt::bench
