// Machine-readable output for the figure/table benchmarks.
//
// Every bench binary accepts `--json [FILE]`: it still prints its human
// tables, then additionally dumps one JSON document (to FILE, or to stdout
// for a bare `--json`) of the shape
//
//   {
//     "benchmark": "fig09_msgsize",
//     "meta": {"cluster": "cori", "ranks": "1024", ...},
//     "tables": [
//       {"title": "...", "header": [...], "rows": [[...], ...]}, ...
//     ]
//   }
//
// Cell values stay strings (exactly the cells the text table shows), so the
// document validates against one fixed schema regardless of benchmark.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "src/support/table.hpp"

namespace adapt::bench {

class Cli;

class JsonReport {
 public:
  explicit JsonReport(std::string benchmark)
      : benchmark_(std::move(benchmark)) {}

  void set_meta(const std::string& key, std::string value);
  void set_meta(const std::string& key, std::int64_t value);
  void add_table(std::string title, const Table& table);

  void write(std::ostream& os) const;

 private:
  std::string benchmark_;
  std::vector<std::pair<std::string, std::string>> meta_;  // insertion order
  std::vector<std::pair<std::string, Table>> tables_;
};

/// Honors `--json [FILE]`: no-op without the flag, writes to stdout for a
/// bare `--json`, else to FILE. Returns false (after printing an error) only
/// when FILE cannot be opened.
bool emit_json(const Cli& cli, const JsonReport& report);

}  // namespace adapt::bench
