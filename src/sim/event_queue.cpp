#include "src/sim/event_queue.hpp"

#include "src/support/error.hpp"

namespace adapt::sim {

EventHandle EventQueue::push(TimeNs time, std::function<void()> fn) {
  auto state = std::make_shared<EventHandle::State>();
  state->fn = std::move(fn);
  heap_.push(Entry{time, seq_++, state});
  return EventHandle(std::move(state));
}

void EventQueue::drop_cancelled() const {
  while (!heap_.empty() && heap_.top().state->cancelled) heap_.pop();
}

bool EventQueue::empty() const {
  drop_cancelled();
  return heap_.empty();
}

TimeNs EventQueue::next_time() const {
  drop_cancelled();
  ADAPT_CHECK(!heap_.empty()) << "next_time on empty event queue";
  return heap_.top().time;
}

std::pair<TimeNs, std::function<void()>> EventQueue::pop() {
  drop_cancelled();
  ADAPT_CHECK(!heap_.empty()) << "pop on empty event queue";
  Entry top = heap_.top();
  heap_.pop();
  return {top.time, std::move(top.state->fn)};
}

}  // namespace adapt::sim
