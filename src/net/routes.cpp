#include "src/net/routes.hpp"

#include <algorithm>

#include "src/support/error.hpp"

namespace adapt::net {

ClusterNet::ClusterNet(sim::Simulator& simulator, const topo::Machine& machine,
                       SharingPolicy policy, GpuConfig gpu)
    : machine_(machine), fabric_(simulator, policy), gpu_(gpu) {
  const topo::MachineSpec& spec = machine.spec();
  const int nodes = spec.nodes;
  const int sockets = nodes * spec.sockets_per_node;

  shm_.reserve(static_cast<std::size_t>(sockets));
  for (int s = 0; s < sockets; ++s)
    shm_.push_back(fabric_.add_link(spec.shm_parallel /
                                    spec.intra_socket.beta_ns_per_byte));
  if (spec.has_shm_channel()) {
    // One node-local memory-bandwidth resource: every same-node pair shares
    // it, capacity shm_node_parallel × the single-pair rate.
    shm_node_.reserve(static_cast<std::size_t>(nodes));
    for (int n = 0; n < nodes; ++n)
      shm_node_.push_back(fabric_.add_link(spec.shm_node_parallel /
                                           spec.shm_node.beta_ns_per_byte));
  }
  qpi_.reserve(static_cast<std::size_t>(nodes));
  nic_tx_.reserve(static_cast<std::size_t>(nodes));
  nic_rx_.reserve(static_cast<std::size_t>(nodes));
  for (int n = 0; n < nodes; ++n) {
    qpi_.push_back(fabric_.add_link(1.0 / spec.inter_socket.beta_ns_per_byte));
    nic_tx_.push_back(fabric_.add_link(1.0 / spec.inter_node.beta_ns_per_byte));
    nic_rx_.push_back(fabric_.add_link(1.0 / spec.inter_node.beta_ns_per_byte));
  }
  if (spec.gpus_per_socket > 0) {
    ADAPT_CHECK(spec.pcie.beta_ns_per_byte > 0.0) << "GPU machine needs PCIe";
    ADAPT_CHECK(spec.nic_bus.beta_ns_per_byte > 0.0);
    for (int s = 0; s < sockets; ++s) {
      pcie_up_.push_back(fabric_.add_link(1.0 / spec.pcie.beta_ns_per_byte));
      pcie_down_.push_back(fabric_.add_link(1.0 / spec.pcie.beta_ns_per_byte));
      gpu_peer_.push_back(fabric_.add_link(1.0 / spec.pcie.beta_ns_per_byte));
    }
    for (int n = 0; n < nodes; ++n)
      nic_bus_.push_back(fabric_.add_link(1.0 / spec.nic_bus.beta_ns_per_byte));
  }
}

Route ClusterNet::route(Rank src, Rank dst) const {
  ADAPT_CHECK(src != dst) << "route to self";
  const topo::Level level = machine_.level_between(src, dst);
  const topo::LinkParams& lane = machine_.lane(level);
  Route r;
  r.alpha = lane.alpha;
  r.per_flow_cap = 1.0 / lane.beta_ns_per_byte;
  // First-class SHM channel: ALL same-node traffic rides the node-local
  // memory link and never touches the socket/QPI wires (lane() already
  // returned the SHM alpha/beta for these levels).
  if (machine_.spec().has_shm_channel() && level != topo::Level::kInterNode) {
    ADAPT_CHECK(level != topo::Level::kSelf) << "self route";
    r.links = {shm_node(machine_.node_of(src))};
    return r;
  }
  switch (level) {
    case topo::Level::kIntraSocket:
      r.links = {shm(machine_.socket_id(src))};
      break;
    case topo::Level::kInterSocket:
      r.links = {qpi(machine_.node_of(src))};
      break;
    case topo::Level::kInterNode:
      r.links = {nic_tx(machine_.node_of(src)), nic_rx(machine_.node_of(dst))};
      break;
    case topo::Level::kSelf:
      ADAPT_UNREACHABLE("self route");
  }
  return r;
}

Route ClusterNet::route_mem(Rank src, MemSpace src_space, Rank dst,
                            MemSpace dst_space) const {
  const topo::MachineSpec& spec = machine_.spec();
  const bool src_dev = src_space == MemSpace::kDevice;
  const bool dst_dev = dst_space == MemSpace::kDevice;
  if (!src_dev && !dst_dev) return route(src, dst);

  ADAPT_CHECK(spec.gpus_per_socket > 0) << "device endpoint without GPUs";
  const int src_sock = machine_.socket_id(src);
  const int dst_sock = machine_.socket_id(dst);
  const topo::Level level = machine_.level_between(src, dst);

  // Same-socket GPU<->GPU: peer DMA stays on the switch-local lane; otherwise
  // the copy bounces through the root port (up then down), contending with
  // every other GPU transfer of this socket — the paper's Fig. 6a/b regime.
  if (level != topo::Level::kInterNode && src_sock == dst_sock && src_dev &&
      dst_dev) {
    Route r;
    r.alpha = spec.pcie.alpha;
    r.per_flow_cap = 1.0 / spec.pcie.beta_ns_per_byte;
    if (gpu_.peer_dma) {
      r.links = {gpu_peer(src_sock)};
    } else {
      r.links = {pcie_up(src_sock), pcie_down(src_sock)};
    }
    return r;
  }

  // General case: base route between the hosts, plus PCIe crossings for each
  // device endpoint. Per-flow cap is the slowest lane crossed.
  Route r = (level == topo::Level::kSelf) ? Route{} : route(src, dst);
  if (level == topo::Level::kSelf) {
    // Host<->device copy local to one rank.
    r.alpha = 0;
    r.per_flow_cap = 1.0 / spec.pcie.beta_ns_per_byte;
  }
  const double pcie_cap = 1.0 / spec.pcie.beta_ns_per_byte;
  if (src_dev) {
    r.links.insert(r.links.begin(), pcie_up(src_sock));
    r.alpha += spec.pcie.alpha;
    r.per_flow_cap = std::min(r.per_flow_cap, pcie_cap);
  }
  if (dst_dev) {
    r.links.push_back(pcie_down(dst_sock));
    r.alpha += spec.pcie.alpha;
    r.per_flow_cap = std::min(r.per_flow_cap, pcie_cap);
  }
  // Without GPUDirect, inter-node device traffic is staged through implicit
  // host buffers (Fig. 6b): extra copy latency on each side, the staging
  // copies cross the NIC's own PCIe attachment, and store-and-forward through
  // per-message buffers halves the achievable streaming rate.
  if (level == topo::Level::kInterNode && (src_dev || dst_dev) &&
      !gpu_.gpudirect) {
    r.alpha += 2 * spec.pcie.alpha;
    if (src_dev) r.links.push_back(nic_bus(machine_.node_of(src)));
    if (dst_dev) r.links.push_back(nic_bus(machine_.node_of(dst)));
    r.per_flow_cap *= 0.5;
  }
  return r;
}

}  // namespace adapt::net
