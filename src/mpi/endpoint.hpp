// Per-rank communication endpoint: isend/irecv, matching, completion.
//
// The Endpoint is execution-engine agnostic. It talks to the world through
// two small interfaces:
//   * Transport — moves envelopes between ranks and decides when the send
//     completes (the engine models/performs the actual data movement);
//   * RankExecutor — runs closures on this rank's CPU, charging CPU time so
//     that noise and rank-side overheads defer exactly the work that needs
//     the CPU (matching, callbacks), never in-flight transfers.
//
// All Endpoint methods must be invoked from the owning rank's execution
// context (simulator event loop / the rank's own thread).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/mpi/datatype.hpp"
#include "src/mpi/errors.hpp"
#include "src/mpi/match.hpp"
#include "src/mpi/payload.hpp"
#include "src/mpi/request.hpp"
#include "src/support/arena.hpp"
#include "src/support/units.hpp"

namespace adapt::obs {
class Recorder;  // src/obs/trace.hpp; hooks fire only when installed
}

namespace adapt::mpi {

/// Engine service: CPU scheduling for one rank, on two execution contexts.
///
/// The MAIN context is the application thread: collective control flow,
/// blocking-call returns, compute. System noise preempts it. The PROGRESS
/// context is the communication engine (async progress thread + NIC offload,
/// where Open MPI completes requests and fires ADAPT's callbacks): it keeps
/// running while the main thread is preempted. This split is the paper's
/// §2.2.1 architecture and the mechanism behind Fig. 7 — event-driven
/// collectives live almost entirely on the progress context, so noise finds
/// very little of their critical path to stretch.
class RankExecutor {
 public:
  virtual ~RankExecutor() = default;
  virtual TimeNs now() const = 0;
  /// Runs `fn` on the main thread once it is free (noise applies), after
  /// occupying it for `cpu_cost`.
  virtual void post(std::function<void()> fn, TimeNs cpu_cost) = 0;
  /// Runs `fn` on the progress context (noise does not apply).
  virtual void post_progress(std::function<void()> fn, TimeNs cpu_cost) = 0;
  /// Synchronously occupies the main thread (extends its busy window).
  virtual void charge(TimeNs cpu_cost) = 0;
};

/// Engine service: data movement.
class Transport {
 public:
  virtual ~Transport() = default;
  /// Ships `env` to env.dst. `on_sent` fires on the SENDER's context when the
  /// send is complete; delivery to the destination endpoint is the
  /// transport's job. Spaces select GPU-aware paths. `on_failed` (optional)
  /// fires instead of `on_sent` if the transport gives up on the message —
  /// only fault-tolerant transports ever do.
  virtual void submit(Envelope env, MemSpace src_space, MemSpace dst_space,
                      std::function<void()> on_sent,
                      std::function<void(ErrCode)> on_failed = nullptr) = 0;
};

/// Per-P2P options; defaults describe plain host-to-host messages of raw
/// bytes (kUint8 never fails the extent check).
struct SendOpts {
  MemSpace src_space = MemSpace::kHost;
  MemSpace dst_space = MemSpace::kHost;
  Datatype dtype = Datatype::kUint8;
};

/// Local cost parameters (from the MachineSpec).
struct EndpointCosts {
  TimeNs cpu_overhead = 0;        ///< post/progress cost per P2P
  TimeNs unexpected_overhead = 0; ///< extra latency to match an unexpected msg
  double memcpy_beta = 0.0;       ///< ns/B for the unexpected-buffer copy
};

class Endpoint {
 public:
  /// `nranks` bounds peer validation; pass 0 for "unknown" (validation of
  /// the upper bound is skipped — unit tests of the matching layer).
  Endpoint(Rank rank, int nranks, RankExecutor& exec, Transport& transport,
           EndpointCosts costs)
      : rank_(rank), nranks_(nranks), exec_(exec), transport_(transport),
        costs_(costs) {}

  Rank rank() const { return rank_; }
  int nranks() const { return nranks_; }

  /// Nonblocking send. The returned request completes when the transport
  /// reports the message sent; attach callbacks via set_completion_cb.
  /// Invalid arguments (rank out of range, negative count, size not a
  /// multiple of the datatype extent) return an already-failed request
  /// carrying the matching ErrCode — never UB, never a hang.
  RequestPtr isend(Rank dst, Tag tag, ConstView data, SendOpts opts = {});

  /// Nonblocking receive (wildcards allowed). Argument validation as isend.
  RequestPtr irecv(Rank src, Tag tag, MutView buffer,
                   Datatype dtype = Datatype::kUint8);

  /// Transport upcall: an envelope (eager data or rendezvous RTS) reached
  /// this rank. Invoked at arrival time; pre-posted matching is modelled as
  /// NIC-offloaded, so this does not wait for the rank's CPU — CPU-bound
  /// follow-ups (callbacks, unexpected copies) are deferred internally.
  void deliver(Envelope env);

  /// Copies `env`'s payload into the matched receive and completes it.
  /// Must run on this rank's execution context (transports call it through
  /// the executor after a rendezvous data transfer).
  void finalize_recv(const PostedRecv& recv, const Envelope& env);

  /// Fails every pending request and every future isend/irecv with `code`.
  /// Called when this rank's current operation is declared failed (local
  /// retry exhaustion, a peer's abort notice, or a harness watchdog). In-
  /// flight deliveries to a poisoned endpoint are dropped.
  void poison(ErrCode code);
  bool poisoned() const { return poisoned_ != ErrCode::kOk; }
  ErrCode poison_code() const { return poisoned_; }

  /// Re-arms a poisoned endpoint (recovery layer only): every pending request
  /// at poison time already failed — that is final — but *future* isend/irecv
  /// succeed again. A self-healing retry wrapper clears the poison before
  /// re-issuing its collective on the survivor communicator; without recovery
  /// poison stays terminal, exactly the PR 2 contract.
  void clear_poison() { poisoned_ = ErrCode::kOk; }

  /// True while any issued request is incomplete (failure-detector probe).
  bool has_pending() const;

  const Matcher& matcher() const { return matcher_; }
  std::uint64_t sends_started() const { return sends_; }
  std::uint64_t recvs_completed() const { return recvs_done_; }

  /// Installs (or clears) the trace/metrics recorder: per-rank send/recv
  /// counters, match-queue depth histograms, unexpected-hit instants.
  void set_recorder(obs::Recorder* rec) { rec_ = rec; }

  /// Installs the engine's buffer pool: eager send copies recycle through it
  /// instead of allocating. Null (the default) falls back to heap blocks.
  void set_pool(support::BufferPool* pool) { pool_ = pool; }

 private:
  /// Immediately-failed request for invalid arguments or a poisoned endpoint.
  RequestPtr failed_request(Request::Kind kind, Rank peer, Tag tag,
                            ErrCode code);
  void track(const RequestPtr& request);

  /// Arena-backed request construction: a free-list hit in steady state
  /// (std::make_shared was the last per-P2P heap allocation on the hot path).
  RequestPtr make_request(Request::Kind kind, Rank peer, Tag tag, Bytes size);

  // Slot pools: per-message transport state parked in recycled slots so the
  // callbacks handed to the transport / executor capture only {this, slot}
  // — small enough for std::function's inline storage, which keeps the
  // steady-state path free of callback boxing.
  std::uint32_t acquire_send_slot(RequestPtr request);
  void finish_send(std::uint32_t slot, ErrCode code);
  std::uint32_t acquire_finalize_slot(PostedRecv recv, Envelope env);
  void run_finalize_slot(std::uint32_t slot);

  Rank rank_;
  int nranks_;
  RankExecutor& exec_;
  Transport& transport_;
  EndpointCosts costs_;
  Matcher matcher_;
  obs::Recorder* rec_ = nullptr;
  support::BufferPool* pool_ = nullptr;
  ErrCode poisoned_ = ErrCode::kOk;
  /// Weak so completed requests die with their owners; compacted on growth.
  std::vector<std::weak_ptr<Request>> pending_;
  std::uint64_t sends_ = 0;
  std::uint64_t recvs_done_ = 0;

  std::shared_ptr<support::BlockArena> arena_ =
      std::make_shared<support::BlockArena>();
  /// In-flight sends: the slot owns the request until the transport reports
  /// the outcome (exactly one of on_sent/on_failed fires per submit).
  std::vector<RequestPtr> send_slots_;
  std::vector<std::uint32_t> send_free_;
  /// Matched receives queued for CPU-side finalisation.
  struct PendingFinalize {
    PostedRecv recv;
    Envelope env;
  };
  std::vector<PendingFinalize> finalize_slots_;
  std::vector<std::uint32_t> finalize_free_;
};

}  // namespace adapt::mpi
