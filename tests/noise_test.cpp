#include <gtest/gtest.h>

#include "src/noise/noise.hpp"
#include "src/support/error.hpp"

namespace adapt::noise {
namespace {

TEST(NoNoise, Identity) {
  NoNoise n;
  EXPECT_EQ(n.next_free(0, 12345), 12345);
  EXPECT_EQ(n.next_free(99, 0), 0);
  EXPECT_DOUBLE_EQ(n.duty(), 0.0);
}

TEST(UniformBurstNoise, Deterministic) {
  UniformBurstNoise a(milliseconds(10), 10.0, 42);
  UniformBurstNoise b(milliseconds(10), 10.0, 42);
  for (Rank r = 0; r < 8; ++r) {
    for (std::int64_t k = 0; k < 20; ++k) {
      EXPECT_EQ(a.burst(r, k), b.burst(r, k));
    }
  }
}

TEST(UniformBurstNoise, SeedsDiffer) {
  UniformBurstNoise a(milliseconds(10), 10.0, 1);
  UniformBurstNoise b(milliseconds(10), 10.0, 2);
  int same = 0;
  for (std::int64_t k = 0; k < 50; ++k) same += a.burst(0, k) == b.burst(0, k);
  EXPECT_LT(same, 5);
}

TEST(UniformBurstNoise, BurstsFitInsidePeriod) {
  const TimeNs period = seconds(1) / 10;
  UniformBurstNoise n(milliseconds(20), 10.0, 7, /*synchronized=*/false);
  for (Rank r = 0; r < 16; ++r) {
    for (std::int64_t k = 0; k < 100; ++k) {
      const auto [start, end] = n.burst(r, k);
      EXPECT_GE(start, k * period);
      EXPECT_LT(end, (k + 1) * period);
      EXPECT_LE(end - start, milliseconds(20));
    }
  }
}

TEST(UniformBurstNoise, NextFreeSkipsBurst) {
  UniformBurstNoise n(milliseconds(10), 10.0, 3);
  const auto [start, end] = n.burst(5, 2);
  if (end > start) {
    EXPECT_EQ(n.next_free(5, start), end);
    EXPECT_EQ(n.next_free(5, (start + end) / 2), end);
  }
  EXPECT_EQ(n.next_free(5, end), end);
  if (start > 0) {
    EXPECT_EQ(n.next_free(5, start - 1), start - 1);
  }
}

TEST(UniformBurstNoise, NegativeTimeClamped) {
  UniformBurstNoise n(milliseconds(10), 10.0, 3);
  EXPECT_GE(n.next_free(0, -5), 0);
}

TEST(UniformBurstNoise, SynchronizedSharesOnsets) {
  UniformBurstNoise n(milliseconds(10), 10.0, 11, /*synchronized=*/true);
  for (std::int64_t k = 0; k < 30; ++k) {
    const auto [s0, e0] = n.burst(0, k);
    for (Rank r = 1; r < 16; ++r) {
      const auto [sr, er] = n.burst(r, k);
      (void)er;
      (void)e0;
      EXPECT_EQ(sr, s0) << "onset differs at rank " << r << " period " << k;
    }
  }
}

TEST(UniformBurstNoise, IndependentPhasesVary) {
  UniformBurstNoise n(milliseconds(10), 10.0, 11, /*synchronized=*/false);
  int distinct = 0;
  const auto [s0, e0] = n.burst(0, 4);
  (void)e0;
  for (Rank r = 1; r < 32; ++r) {
    if (n.burst(r, 4).first != s0) ++distinct;
  }
  EXPECT_GT(distinct, 20);
}

TEST(UniformBurstNoise, DutyEstimate) {
  // max 10ms at 10Hz: mean burst 5ms per 100ms = 5%.
  UniformBurstNoise n(milliseconds(10), 10.0, 1);
  EXPECT_NEAR(n.duty(), 0.05, 1e-9);
  // Empirical check: fraction of sampled instants inside bursts.
  std::int64_t busy = 0, total = 0;
  const TimeNs step = microseconds(50);
  for (TimeNs t = 0; t < seconds(10); t += step) {
    for (Rank r = 0; r < 4; ++r) {
      ++total;
      if (n.next_free(r, t) != t) ++busy;
    }
  }
  EXPECT_NEAR(static_cast<double>(busy) / static_cast<double>(total), 0.05,
              0.01);
}

TEST(UniformBurstNoise, RejectsOversizedBursts) {
  // A 60ms burst cannot fit in half a 100ms period.
  EXPECT_THROW(UniformBurstNoise(milliseconds(60), 10.0, 1), Error);
}

TEST(PaperNoise, Presets) {
  EXPECT_DOUBLE_EQ(paper_noise(0, 1)->duty(), 0.0);
  EXPECT_NEAR(paper_noise(5, 1)->duty(), 0.05, 1e-9);
  EXPECT_NEAR(paper_noise(10, 1)->duty(), 0.10, 1e-9);
  EXPECT_THROW(paper_noise(-1, 1), Error);
}

}  // namespace
}  // namespace adapt::noise
