// Standalone recovery-conformance driver (ctest target `verify_recovery`).
//
// Runs the recovery matrix: resilient_bcast / resilient_allreduce and the
// eventually-consistent ec_bcast / ec_allreduce under seeded fault schedules
// with and without a rank death. Resilient rows must complete on the
// survivor communicator with bytes equal to the failure-free oracle over its
// members (or report a dead root uniformly); EC rows must finish within the
// staleness bound with a result that is exactly the fold over the
// contributors they report. Every case is run twice and must be
// deterministic down to the trace hash.
//
// A wall-clock watchdog turns a hung run into a failed, replayable report
// instead of a CI timeout.
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>

#include "src/verify/recovery.hpp"

namespace {

using namespace adapt;
using namespace adapt::verify;

int usage() {
  std::cerr << "usage: verify_recovery [--seeds=K] [--watchdog=SECONDS]"
               " [--trace-dir=DIR]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  int seeds = 4;
  long watchdog_seconds = 120;
  std::string trace_dir;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--seeds=", 0) == 0) {
      seeds = std::stoi(arg.substr(8));
    } else if (arg.rfind("--watchdog=", 0) == 0) {
      watchdog_seconds = std::stol(arg.substr(11));
    } else if (arg.rfind("--trace-dir=", 0) == 0) {
      trace_dir = arg.substr(12);
    } else {
      return usage();
    }
  }

  // Deadman switch: every engine run is virtual-time-bounded by the case's
  // wd_bomb, so wall-clock progress only stops on an engine deadlock.
  std::atomic<bool> stop{false};
  std::mutex mutex;
  std::string current = "<none started>";
  auto last = std::chrono::steady_clock::now();
  std::thread watchdog;
  if (watchdog_seconds > 0) {
    watchdog = std::thread([&] {
      while (!stop.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
        std::lock_guard<std::mutex> lock(mutex);
        if (std::chrono::steady_clock::now() - last >
            std::chrono::seconds(watchdog_seconds)) {
          std::cerr << "WATCHDOG: a recovery run exceeded " << watchdog_seconds
                    << "s of wall clock; likely deadlocked.\n  case: "
                    << current << "\n";
          std::_Exit(3);
        }
      }
    });
  }

  RecoveryMatrixOptions options;
  options.seeds = seeds;
  options.trace_dir = trace_dir;
  options.log = [&](const std::string& line) { std::cerr << line << "\n"; };
  options.on_case = [&](const std::string& repro) {
    std::lock_guard<std::mutex> lock(mutex);
    current = repro;
    last = std::chrono::steady_clock::now();
  };

  const std::size_t n = recovery_matrix(seeds).size();
  std::cout << "recovery matrix: " << n << " cases × 2 determinism runs\n";
  const RecoveryReport report = run_recovery_matrix(options);
  stop.store(true);
  if (watchdog.joinable()) watchdog.join();
  std::cout << report.summary() << "\n";
  if (!report.ok()) return 1;
  std::cout << "OK\n";
  return 0;
}
