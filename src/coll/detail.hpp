// Internal helpers shared by the collective implementations.
#pragma once

#include <string>

#include "src/coll/coll.hpp"
#include "src/obs/trace.hpp"

namespace adapt::coll::detail {

/// A rank's resolved position in a tree: its local rank and the *global*
/// ranks of its parent and children (what the endpoint addresses).
struct Edges {
  Rank me_local = -1;
  Rank parent_global = -1;  ///< -1 at the root
  std::vector<Rank> kids_global;
  bool is_root = false;
};

Edges resolve(const runtime::Context& ctx, const mpi::Comm& comm,
              const Tree& tree);

/// CPU (or GPU) time to fold `len` bytes into an accumulator.
TimeNs reduce_cost(const runtime::Context& ctx, const CollOpts& opts,
                   Bytes len);

/// Element-wise dst = dst OP src when both views are real; no-op for
/// synthetic payloads (the cost model is charged by the caller either way).
void apply_if_real(mpi::MutView dst, mpi::ConstView src, mpi::ReduceOp op,
                   mpi::Datatype dtype, Bytes len);

/// RAII whole-collective span on this rank's MAIN track: records
/// "op/style" from construction to destruction (coroutine frame scope, so
/// the span closes when the collective returns OR throws). Free when no
/// recorder is attached.
class CollSpan {
 public:
  CollSpan(runtime::Context& ctx, const char* op, const char* style,
           Bytes bytes);
  CollSpan(const CollSpan&) = delete;
  CollSpan& operator=(const CollSpan&) = delete;
  ~CollSpan();

 private:
  obs::Recorder* rec_;
  int pid_ = 0;
  std::string name_;
  TimeNs t0_ = 0;
  std::int64_t bytes_ = 0;
};

/// ADAPT task-segment instant ("seg_recv"/"seg_send"/"seg_ready" with the
/// segment index) on the rank's PROGRESS track — one null test when off.
inline void segment_event(runtime::Context& ctx, const char* what, int s) {
  if (obs::Recorder* rec = ctx.recorder()) {
    rec->instant(obs::rank_pid(ctx.rank()), obs::kTidProgress, obs::Cat::kTask,
                 what, rec->now(), s);
  }
}

}  // namespace adapt::coll::detail
