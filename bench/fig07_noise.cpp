// Figure 7: noise impact on broadcast and reduce at 4 MB.
//
// Reproduces the paper's §5.1.1 experiment: uniform bursts at 10 Hz, 0-10 ms
// ("5%") and 0-20 ms ("10%"), injected on every rank's CPU. Reported per
// library: absolute time without noise and the slowdown percentage under each
// injection level — the numbers printed above the bars in Fig. 7.
//
//   fig07_noise [--cluster cori|stampede2|both] [--iters N] [--msg BYTES]
//               [--json [FILE]]
#include <iostream>

#include "src/bench/cli.hpp"
#include "src/bench/imb.hpp"
#include "src/bench/report.hpp"
#include "src/coll/library.hpp"
#include "src/runtime/sim_engine.hpp"
#include "src/support/table.hpp"

namespace {

using namespace adapt;

double run_one(const topo::Machine& machine, const mpi::Comm& world,
               const std::string& lib_name, bool is_bcast, Bytes msg,
               int duty_percent, int iters) {
  runtime::SimEngineOptions options;
  options.noise = noise::paper_noise(duty_percent, /*seed=*/0xADA57 + duty_percent);
  runtime::SimEngine engine(machine, options);
  auto lib = coll::make_library(lib_name, machine);
  mpi::MutView buffer{nullptr, msg};
  // IMB rotates the operation root round-robin across iterations; rotate over
  // a small prefix so tree construction stays cheap while successive
  // iterations still depend on each other the way IMB runs do.
  auto fn = [&](runtime::Context& ctx, int iteration) -> sim::Task<> {
    const Rank root = (iteration * 37) % std::min(world.size(), 8);
    if (is_bcast) {
      co_await lib->bcast(ctx, world, buffer, root);
    } else {
      co_await lib->reduce(ctx, world, buffer, mpi::ReduceOp::kSum,
                           mpi::Datatype::kFloat, root);
    }
  };
  // IMB timing: back-to-back iterations, per-rank loop average. The gap just
  // de-correlates the loop start from the warm-up's noise alignment.
  return bench::measure_throughput(engine, world, fn,
                                   {.warmup = 1, .iterations = iters,
                                    .gap = milliseconds(17)})
      .avg_ms();
}

void run_cluster(const std::string& cluster, int nodes, int ranks, Bytes msg,
                 int iters, bench::JsonReport& report) {
  const auto setup = bench::make_cluster(cluster, nodes, ranks);
  const mpi::Comm world = mpi::Comm::world(setup.ranks);
  for (const char* op : {"Broadcast", "Reduce"}) {
    const bool is_bcast = std::string(op) == "Broadcast";
    std::cout << "Performance of " << op
              << " with CPU data varies by noise injection, MSG="
              << format_bytes(msg) << " (" << cluster << ", " << setup.ranks
              << " ranks)\n";
    Table table({"library", "no-noise(ms)", "5%-noise(ms)", "10%-noise(ms)",
                 "slowdown@5%", "slowdown@10%"});
    for (const std::string& name : coll::end_to_end_libraries(cluster)) {
      const double base =
          run_one(setup.machine, world, name, is_bcast, msg, 0, iters);
      const double at5 =
          run_one(setup.machine, world, name, is_bcast, msg, 5, iters);
      const double at10 =
          run_one(setup.machine, world, name, is_bcast, msg, 10, iters);
      char b1[32], b2[32], b3[32], s1[32], s2[32];
      std::snprintf(b1, sizeof b1, "%.3f", base);
      std::snprintf(b2, sizeof b2, "%.3f", at5);
      std::snprintf(b3, sizeof b3, "%.3f", at10);
      std::snprintf(s1, sizeof s1, "%.0f%%", (at5 / base - 1.0) * 100.0);
      std::snprintf(s2, sizeof s2, "%.0f%%", (at10 / base - 1.0) * 100.0);
      table.add_row({name, b1, b2, b3, s1, s2});
    }
    table.print(std::cout);
    std::cout << "\n";
    report.add_table(std::string(op) + " under noise on " + cluster, table);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::Cli cli(argc, argv);
  const std::string which = cli.get("cluster", "both");
  const int iters = static_cast<int>(cli.get_int("iters", 16));
  const Bytes msg = cli.get_int("msg", mib(4));
  std::cout << "== Figure 7: noise impact on broadcast/reduce ==\n\n";
  bench::JsonReport report("fig07_noise");
  report.set_meta("cluster", which);
  report.set_meta("iters", iters);
  report.set_meta("msg_bytes", msg);
  if (which == "cori" || which == "both") {
    run_cluster("cori", static_cast<int>(cli.get_int("nodes", 32)),
                static_cast<int>(cli.get_int("ranks", 1024)), msg, iters,
                report);
  }
  if (which == "stampede2" || which == "both") {
    run_cluster("stampede2", static_cast<int>(cli.get_int("nodes", 32)),
                static_cast<int>(cli.get_int("ranks", 1536)), msg, iters,
                report);
  }
  return bench::emit_json(cli, report) ? 0 : 1;
}
