// Error handling policy: programming errors and violated invariants throw
// adapt::Error carrying a formatted message with source location. The macros
// are used for preconditions on public APIs and internal invariants; they are
// always on (the simulator's correctness depends on them, and the cost is
// negligible next to event dispatch).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace adapt {

/// Exception type thrown for all precondition and invariant failures.
class Error : public std::runtime_error {
 public:
  explicit Error(std::string what) : std::runtime_error(std::move(what)) {}
};

namespace detail {

[[noreturn]] void throw_check_failure(const char* expr, const char* file,
                                      int line, const std::string& message);

}  // namespace detail

}  // namespace adapt

/// Precondition / invariant check: throws adapt::Error when `expr` is false.
/// Additional stream-style context may follow:
///   ADAPT_CHECK(rank < size) << "rank=" << rank;
#define ADAPT_CHECK(expr)                                                   \
  if (expr) {                                                               \
  } else                                                                    \
    ::adapt::detail::CheckStream(#expr, __FILE__, __LINE__).stream()

/// Unreachable-code marker.
#define ADAPT_UNREACHABLE(msg) \
  ::adapt::detail::throw_check_failure("unreachable", __FILE__, __LINE__, msg)

namespace adapt::detail {

/// Collects streamed context then throws from its destructor-like terminator.
class CheckStream {
 public:
  CheckStream(const char* expr, const char* file, int line)
      : expr_(expr), file_(file), line_(line) {}
  [[noreturn]] ~CheckStream() noexcept(false) {
    throw_check_failure(expr_, file_, line_, ss_.str());
  }
  std::ostream& stream() { return ss_; }

 private:
  const char* expr_;
  const char* file_;
  int line_;
  std::ostringstream ss_;
};

}  // namespace adapt::detail
