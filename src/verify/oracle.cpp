#include "src/verify/oracle.hpp"

#include <cstring>

#include "src/support/error.hpp"
#include "src/support/rng.hpp"

namespace adapt::verify {

namespace {

bool floating(mpi::Datatype dtype) {
  return dtype == mpi::Datatype::kFloat || dtype == mpi::Datatype::kDouble;
}

void store_element(std::byte* dst, mpi::Datatype dtype, std::int64_t value) {
  switch (dtype) {
    case mpi::Datatype::kUint8: {
      const std::uint8_t v = static_cast<std::uint8_t>(value);
      std::memcpy(dst, &v, sizeof v);
      return;
    }
    case mpi::Datatype::kInt32: {
      const std::int32_t v = static_cast<std::int32_t>(value);
      std::memcpy(dst, &v, sizeof v);
      return;
    }
    case mpi::Datatype::kInt64: {
      std::memcpy(dst, &value, sizeof value);
      return;
    }
    case mpi::Datatype::kFloat: {
      const float v = static_cast<float>(value);
      std::memcpy(dst, &v, sizeof v);
      return;
    }
    case mpi::Datatype::kDouble: {
      const double v = static_cast<double>(value);
      std::memcpy(dst, &v, sizeof v);
      return;
    }
  }
}

std::vector<std::byte> random_bytes(Bytes size, Rng& rng) {
  std::vector<std::byte> buf(static_cast<std::size_t>(size));
  for (auto& b : buf) b = std::byte(rng.next_below(256));
  return buf;
}

}  // namespace

void fill_reduce_operand(std::vector<std::byte>& buf, mpi::Datatype dtype,
                         mpi::ReduceOp op, Rng& rng) {
  const Bytes elem = mpi::size_of(dtype);
  ADAPT_CHECK(static_cast<Bytes>(buf.size()) % elem == 0)
      << "operand size " << buf.size() << " not a multiple of " << elem;
  const bool bitwise =
      op == mpi::ReduceOp::kBand || op == mpi::ReduceOp::kBor;
  ADAPT_CHECK(!(bitwise && floating(dtype)))
      << "bitwise reduction over a floating datatype";
  auto draw = [&]() -> std::int64_t {
    switch (op) {
      case mpi::ReduceOp::kSum:
        return rng.next_in(-100, 100);
      case mpi::ReduceOp::kProd:
        return rng.next_in(1, 2);
      case mpi::ReduceOp::kMax:
      case mpi::ReduceOp::kMin:
        return rng.next_in(-1000, 1000);
      case mpi::ReduceOp::kBand:
      case mpi::ReduceOp::kBor:
        return static_cast<std::int64_t>(rng.next_u64());
    }
    return 0;
  };
  for (std::size_t off = 0; off < buf.size();
       off += static_cast<std::size_t>(elem)) {
    store_element(buf.data() + off, dtype, draw());
  }
}

CaseIo make_io(const CaseConfig& config) {
  const std::vector<Rank> members = comm_members(config.comm, config.world);
  const int p = static_cast<int>(members.size());
  ADAPT_CHECK(config.root >= 0 && config.root < p)
      << "root " << config.root << " outside communicator of size " << p;
  const std::size_t root = static_cast<std::size_t>(config.root);
  const Rng base(config.data_seed);

  CaseIo io;
  io.inputs.resize(static_cast<std::size_t>(p));
  io.expected.resize(static_cast<std::size_t>(p));

  switch (config.collective) {
    case Collective::kBcast:
    case Collective::kLibBcast: {
      for (int i = 0; i < p; ++i) {
        Rng rng = base.split(static_cast<std::uint64_t>(i));
        io.inputs[static_cast<std::size_t>(i)] =
            static_cast<std::size_t>(i) == root
                ? random_bytes(config.bytes, rng)
                : std::vector<std::byte>(static_cast<std::size_t>(config.bytes));
      }
      for (int i = 0; i < p; ++i) io.expected[static_cast<std::size_t>(i)] = io.inputs[root];
      break;
    }
    case Collective::kReduce:
    case Collective::kLibReduce:
    case Collective::kAllreduce: {
      const Bytes elem = mpi::size_of(config.dtype);
      const Bytes bytes = config.bytes - config.bytes % elem;
      ADAPT_CHECK(bytes > 0) << "reduce payload smaller than one element";
      for (int i = 0; i < p; ++i) {
        Rng rng = base.split(static_cast<std::uint64_t>(i));
        auto& buf = io.inputs[static_cast<std::size_t>(i)];
        buf.resize(static_cast<std::size_t>(bytes));
        fill_reduce_operand(buf, config.dtype, config.op, rng);
      }
      // The reference fold: rank order, the exact arithmetic of mpi::apply.
      std::vector<std::byte> fold = io.inputs[0];
      for (int i = 1; i < p; ++i) {
        mpi::apply(config.op, config.dtype, fold.data(),
                   io.inputs[static_cast<std::size_t>(i)].data(), bytes);
      }
      if (config.collective == Collective::kAllreduce) {
        for (int i = 0; i < p; ++i) io.expected[static_cast<std::size_t>(i)] = fold;
      } else {
        io.expected[root] = std::move(fold);
      }
      break;
    }
    case Collective::kScatter: {
      Rng rng = base.split(root);
      io.inputs[root] = random_bytes(config.bytes * p, rng);
      for (int i = 0; i < p; ++i) {
        const auto* src = io.inputs[root].data() +
                          static_cast<std::size_t>(i * config.bytes);
        io.expected[static_cast<std::size_t>(i)] = std::vector<std::byte>(
            src, src + static_cast<std::size_t>(config.bytes));
      }
      break;
    }
    case Collective::kGather: {
      std::vector<std::byte> all;
      for (int i = 0; i < p; ++i) {
        Rng rng = base.split(static_cast<std::uint64_t>(i));
        io.inputs[static_cast<std::size_t>(i)] = random_bytes(config.bytes, rng);
        all.insert(all.end(), io.inputs[static_cast<std::size_t>(i)].begin(),
                   io.inputs[static_cast<std::size_t>(i)].end());
      }
      io.expected[root] = std::move(all);
      break;
    }
    case Collective::kAllgather: {
      std::vector<std::byte> all;
      std::vector<std::vector<std::byte>> blocks(static_cast<std::size_t>(p));
      for (int i = 0; i < p; ++i) {
        Rng rng = base.split(static_cast<std::uint64_t>(i));
        blocks[static_cast<std::size_t>(i)] = random_bytes(config.bytes, rng);
        all.insert(all.end(), blocks[static_cast<std::size_t>(i)].begin(),
                   blocks[static_cast<std::size_t>(i)].end());
      }
      for (int i = 0; i < p; ++i) {
        // Each rank starts with only its own block in place.
        auto& buf = io.inputs[static_cast<std::size_t>(i)];
        buf.assign(static_cast<std::size_t>(config.bytes) *
                       static_cast<std::size_t>(p),
                   std::byte(0));
        std::memcpy(buf.data() + static_cast<std::size_t>(i * config.bytes),
                    blocks[static_cast<std::size_t>(i)].data(),
                    static_cast<std::size_t>(config.bytes));
        io.expected[static_cast<std::size_t>(i)] = all;
      }
      break;
    }
    case Collective::kBarrier:
      // No payload: the runner checks the entered-before-exit invariant.
      break;
  }
  return io;
}

}  // namespace adapt::verify
