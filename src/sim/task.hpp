// C++20 coroutine support for rank programs.
//
// Every rank in either engine runs a `Task<>` coroutine. Tasks are lazy and
// chain via symmetric transfer, so `co_await subroutine(ctx)` composes
// collective phases without touching the event loop. The primitives here are
// engine-agnostic; the single concurrency contract is that a coroutine is
// only ever resumed from its owning execution context (the simulator's event
// loop, or the rank's own thread in the thread engine).
#pragma once

#include <coroutine>
#include <exception>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "src/support/error.hpp"
#include "src/support/frame_arena.hpp"

namespace adapt::sim {

template <typename T = void>
class Task;

namespace detail {

struct PromiseBase {
  // Frame allocation routes through the thread-local FrameArena when one is
  // installed (sharded engine workers: size-class recycling + accounting for
  // the rank-state gauge) and the plain heap otherwise. Inherited by every
  // Task promise; operator new lookup finds it in the promise class scope.
  static void* operator new(std::size_t bytes) {
    return support::frame_alloc(bytes);
  }
  static void operator delete(void* p, std::size_t bytes) noexcept {
    support::frame_free(p, bytes);
  }

  std::coroutine_handle<> continuation;
  std::exception_ptr exception;

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) const noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept { exception = std::current_exception(); }
};

template <typename T>
struct Promise : PromiseBase {
  std::optional<T> value;

  Task<T> get_return_object();
  void return_value(T v) { value.emplace(std::move(v)); }
};

template <>
struct Promise<void> : PromiseBase {
  Task<void> get_return_object();
  void return_void() {}
};

}  // namespace detail

/// Lazy coroutine task. Move-only; owns its coroutine frame. Awaiting a task
/// starts it; its completion resumes the awaiter (symmetric transfer).
template <typename T>
class Task {
 public:
  using promise_type = detail::Promise<T>;

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return handle_ != nullptr; }
  bool done() const { return handle_ && handle_.done(); }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> handle;
      bool await_ready() const noexcept { return !handle || handle.done(); }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> cont) noexcept {
        handle.promise().continuation = cont;
        return handle;
      }
      T await_resume() {
        auto& p = handle.promise();
        if (p.exception) std::rethrow_exception(p.exception);
        if constexpr (!std::is_void_v<T>) {
          ADAPT_CHECK(p.value.has_value()) << "task finished without a value";
          return std::move(*p.value);
        }
      }
    };
    return Awaiter{handle_};
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }
  std::coroutine_handle<promise_type> handle_;
};

namespace detail {

template <typename T>
Task<T> Promise<T>::get_return_object() {
  return Task<T>(std::coroutine_handle<Promise<T>>::from_promise(*this));
}

inline Task<void> Promise<void>::get_return_object() {
  return Task<void>(std::coroutine_handle<Promise<void>>::from_promise(*this));
}

}  // namespace detail

/// Eager fire-and-forget coroutine used to drive a top-level Task. Its frame
/// self-destructs at completion.
struct Detached {
  struct promise_type {
    static void* operator new(std::size_t bytes) {
      return support::frame_alloc(bytes);
    }
    static void operator delete(void* p, std::size_t bytes) noexcept {
      support::frame_free(p, bytes);
    }

    Detached get_return_object() noexcept { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() noexcept { std::terminate(); }
  };
};

/// Starts `t` immediately; invokes `on_done` (with the captured exception, or
/// nullptr on success) when the task finishes. The task's lifetime is managed
/// by the detached frame.
inline Detached run_detached(Task<> t,
                             std::function<void(std::exception_ptr)> on_done) {
  std::exception_ptr ep;
  try {
    co_await std::move(t);
  } catch (...) {
    ep = std::current_exception();
  }
  on_done(ep);
}

/// The bridge between coroutines and the event-driven runtime: awaiting a
/// Suspend hands the coroutine's handle to `arm`, which stores it wherever the
/// completion will come from (an event callback, a request, a mailbox). The
/// handle must be resumed exactly once, from the owning execution context.
class Suspend {
 public:
  using Arm = std::function<void(std::coroutine_handle<>)>;
  explicit Suspend(Arm arm) : arm_(std::move(arm)) {}

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) { arm_(h); }
  void await_resume() const noexcept {}

 private:
  Arm arm_;
};

/// One-shot event with any number of coroutine waiters. Firing resumes all
/// waiters inline; awaiting an already-fired trigger does not suspend.
class Trigger {
 public:
  bool fired() const { return fired_; }

  void fire() {
    if (fired_) return;
    fired_ = true;
    auto subscribers = std::move(subscribers_);
    subscribers_.clear();
    for (auto& fn : subscribers) fn();
    auto waiters = std::move(waiters_);
    waiters_.clear();
    for (auto h : waiters) h.resume();
  }

  /// Plain-callback subscription; runs at fire time (immediately if already
  /// fired). Used by wait_any-style multiplexing.
  void subscribe(std::function<void()> fn) {
    if (fired_) {
      fn();
    } else {
      subscribers_.push_back(std::move(fn));
    }
  }

  auto operator co_await() noexcept {
    struct Awaiter {
      Trigger* t;
      bool await_ready() const noexcept { return t->fired_; }
      void await_suspend(std::coroutine_handle<> h) {
        t->waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

 private:
  bool fired_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
  std::vector<std::function<void()>> subscribers_;
};

/// Countdown latch: fires once `signal()` has been called `count` times.
/// A zero-count latch is born fired.
class Countdown {
 public:
  explicit Countdown(int count) : remaining_(count) {
    ADAPT_CHECK(count >= 0);
    if (remaining_ == 0) trigger_.fire();
  }

  void signal() {
    if (forced_) return;  // late completions after an error-path force()
    ADAPT_CHECK(remaining_ > 0) << "countdown signalled below zero";
    if (--remaining_ == 0) trigger_.fire();
  }

  /// Error path: fires the trigger now regardless of the remaining count and
  /// turns later signal()s into no-ops. Used by callback state machines that
  /// must wake their awaiter once an operation has failed.
  void force() {
    forced_ = true;
    remaining_ = 0;
    trigger_.fire();
  }

  int remaining() const { return remaining_; }
  auto operator co_await() noexcept { return trigger_.operator co_await(); }

 private:
  int remaining_;
  bool forced_ = false;
  Trigger trigger_;
};

}  // namespace adapt::sim
