#include "src/topo/procedural.hpp"

#include <algorithm>

#include "src/support/error.hpp"

namespace adapt::topo {

namespace {

LinkParams link(TimeNs alpha_ns, double bw_gbs) {
  return LinkParams{alpha_ns, 1.0 / bw_gbs};
}

double max3(double a, double b, double c) {
  return std::max(a, std::max(b, c));
}

}  // namespace

// ---------------------------------------------------------------------------
// Dragonfly

Dragonfly::Dragonfly(int groups, int routers_per_group, int ranks_per_router,
                     LinkParams inject, LinkParams local, LinkParams global)
    : groups_(groups),
      routers_per_group_(routers_per_group),
      ranks_per_router_(ranks_per_router),
      nranks_(groups * routers_per_group * ranks_per_router),
      inject_(inject),
      local_(local),
      global_(global) {
  ADAPT_CHECK(groups_ >= 1 && routers_per_group_ >= 1 &&
              ranks_per_router_ >= 1)
      << "degenerate dragonfly shape";
}

RouteCost Dragonfly::route(Rank src, Rank dst) const {
  if (src == dst) return {};
  const int rs = router_of(src);
  const int rd = router_of(dst);
  // Both endpoints always pay their injection lane.
  RouteCost cost{2 * inject_.alpha, inject_.beta_ns_per_byte};
  if (rs == rd) return cost;
  const int gs = rs / routers_per_group_;
  const int gd = rd / routers_per_group_;
  if (gs == gd) {
    // One local hop between routers of the same group (all-to-all intra
    // group).
    cost.alpha += local_.alpha;
    cost.beta_ns_per_byte =
        std::max(cost.beta_ns_per_byte, local_.beta_ns_per_byte);
    return cost;
  }
  // Minimal inter-group route: local hop to the router owning the global
  // link, the global hop, and a local hop inside the destination group.
  cost.alpha += 2 * local_.alpha + global_.alpha;
  cost.beta_ns_per_byte = max3(cost.beta_ns_per_byte, local_.beta_ns_per_byte,
                               global_.beta_ns_per_byte);
  return cost;
}

TimeNs Dragonfly::min_cross_block_alpha() const {
  return 2 * inject_.alpha + 2 * local_.alpha + global_.alpha;
}

std::string Dragonfly::name() const {
  return "dragonfly(g=" + std::to_string(groups_) +
         ",a=" + std::to_string(routers_per_group_) +
         ",p=" + std::to_string(ranks_per_router_) + ")";
}

// ---------------------------------------------------------------------------
// FatTree

FatTree::FatTree(int k, LinkParams host_edge, LinkParams edge_agg,
                 LinkParams agg_core)
    : k_(k),
      nranks_(k * k * k / 4),
      host_edge_(host_edge),
      edge_agg_(edge_agg),
      agg_core_(agg_core) {
  ADAPT_CHECK(k_ >= 2 && k_ % 2 == 0) << "fat-tree arity must be even";
}

RouteCost FatTree::route(Rank src, Rank dst) const {
  if (src == dst) return {};
  RouteCost cost{2 * host_edge_.alpha, host_edge_.beta_ns_per_byte};
  const int es = edge_of(src);
  const int ed = edge_of(dst);
  if (es == ed) return cost;
  // Up to an aggregation switch and back down.
  cost.alpha += 2 * edge_agg_.alpha;
  cost.beta_ns_per_byte =
      std::max(cost.beta_ns_per_byte, edge_agg_.beta_ns_per_byte);
  if (es / (k_ / 2) == ed / (k_ / 2)) return cost;
  // Different pods: continue up to a core switch and back down.
  cost.alpha += 2 * agg_core_.alpha;
  cost.beta_ns_per_byte =
      std::max(cost.beta_ns_per_byte, agg_core_.beta_ns_per_byte);
  return cost;
}

TimeNs FatTree::min_cross_block_alpha() const {
  return 2 * host_edge_.alpha + 2 * edge_agg_.alpha + 2 * agg_core_.alpha;
}

std::string FatTree::name() const {
  return "fat_tree(k=" + std::to_string(k_) + ")";
}

// ---------------------------------------------------------------------------
// MachineTopology

MachineTopology::MachineTopology(const Machine& machine) : machine_(&machine) {
  int max_node = 0;
  for (Rank r = 0; r < machine.nranks(); ++r) {
    max_node = std::max(max_node, machine.node_of(r));
  }
  blocks_ = max_node + 1;
}

RouteCost MachineTopology::route(Rank src, Rank dst) const {
  const Level level = machine_->level_between(src, dst);
  if (level == Level::kSelf) return {};
  const LinkParams& lane = machine_->lane(level);
  return {lane.alpha, lane.beta_ns_per_byte};
}

std::string MachineTopology::name() const {
  return "machine(" + machine_->spec().name + ")";
}

// ---------------------------------------------------------------------------
// Presets

namespace presets {

std::unique_ptr<Dragonfly> dragonfly(int min_ranks) {
  ADAPT_CHECK(min_ranks >= 1);
  // Balanced dragonfly: a routers/group, p = a ranks/router, g = a + 1
  // groups (one global link per router) -> a^2 * (a + 1) ranks.
  int a = 1;
  while (a * a * (a + 1) < min_ranks) ++a;
  return std::make_unique<Dragonfly>(a + 1, a, a,
                                     /*inject=*/link(500, 16.0),
                                     /*local=*/link(300, 14.0),
                                     /*global=*/link(1100, 12.0));
}

std::unique_ptr<FatTree> fat_tree(int min_ranks) {
  ADAPT_CHECK(min_ranks >= 1);
  int k = 2;
  while (k * k * k / 4 < min_ranks) k += 2;
  return std::make_unique<FatTree>(k,
                                   /*host_edge=*/link(600, 12.5),
                                   /*edge_agg=*/link(450, 12.5),
                                   /*agg_core=*/link(450, 12.5));
}

}  // namespace presets

// ---------------------------------------------------------------------------
// ShardMap

ShardMap make_shard_map(const ProcTopology& topo, int shards) {
  const int nranks = topo.nranks();
  ADAPT_CHECK(shards >= 1);
  ShardMap map;
  map.shards = std::min({shards, topo.blocks(), nranks});
  map.shard_of.assign(static_cast<std::size_t>(nranks), 0);
  map.ranks.resize(static_cast<std::size_t>(map.shards));

  // Ranks per block, in block order. Blocks are contiguous for every
  // generator above, but the mapper only relies on block_of().
  std::vector<std::vector<Rank>> by_block(
      static_cast<std::size_t>(topo.blocks()));
  for (Rank r = 0; r < nranks; ++r) {
    const int b = topo.block_of(r);
    ADAPT_CHECK(b >= 0 && b < topo.blocks());
    by_block[static_cast<std::size_t>(b)].push_back(r);
  }

  // Deal whole blocks to shards, closing a shard once it reaches its fair
  // share of what is left — keeps shard populations within one block of
  // each other without ever splitting a block.
  int shard = 0;
  int assigned = 0;
  for (const auto& block : by_block) {
    if (block.empty()) continue;
    auto& members = map.ranks[static_cast<std::size_t>(shard)];
    for (Rank r : block) {
      map.shard_of[static_cast<std::size_t>(r)] = shard;
      members.push_back(r);
    }
    assigned += static_cast<int>(block.size());
    const int remaining_shards = map.shards - shard - 1;
    if (remaining_shards > 0) {
      const int remaining_ranks = nranks - assigned;
      const int fair = (remaining_ranks + remaining_shards - 1) /
                       remaining_shards;
      if (static_cast<int>(members.size()) >= fair ||
          static_cast<int>(members.size()) >=
              (nranks + map.shards - 1) / map.shards) {
        ++shard;
      }
    }
  }
  for (auto& members : map.ranks) std::sort(members.begin(), members.end());
  return map;
}

}  // namespace adapt::topo
