#include "src/support/error.hpp"

namespace adapt::detail {

void throw_check_failure(const char* expr, const char* file, int line,
                         const std::string& message) {
  std::ostringstream ss;
  ss << "check failed: (" << expr << ") at " << file << ":" << line;
  if (!message.empty()) ss << " — " << message;
  throw Error(ss.str());
}

}  // namespace adapt::detail
