#include "src/gpu/device.hpp"

#include <algorithm>

#include "src/support/error.hpp"

namespace adapt::gpu {

// ---------------------------------------------------------------- Stream ---

void Stream::enqueue(Op op) {
  ++pending_;
  queue_.push_back(std::move(op));
  if (!running_) run_next();
}

void Stream::run_next() {
  if (queue_.empty()) {
    running_ = false;
    return;
  }
  running_ = true;
  Op op = std::move(queue_.front());
  queue_.pop_front();
  op.start([this, on_done = std::move(op.on_done)] {
    --pending_;
    if (on_done) on_done();
    run_next();
  });
}

void Stream::launch(TimeNs cost, std::function<void()> on_done) {
  ADAPT_CHECK(cost >= 0);
  enqueue(Op{[this, cost](std::function<void()> done) {
               device_.execute_kernel(cost, std::move(done));
             },
             std::move(on_done)});
}

void Stream::memcpy_async(MemSpace dst_space, MemSpace src_space, Bytes bytes,
                          std::function<void()> on_done) {
  ADAPT_CHECK(bytes >= 0);
  const Rank r = device_.owner();
  enqueue(Op{[this, r, dst_space, src_space, bytes](std::function<void()> done) {
               auto& net = device_.runtime().net();
               const net::Route route =
                   net.route_mem(r, src_space, r, dst_space);
               net.transfer(route, bytes, std::move(done));
             },
             std::move(on_done)});
}

sim::Task<> Stream::synchronize() {
  if (pending_ == 0) co_return;
  // A zero-cost marker kernel completes only after everything ahead of it.
  auto trigger = std::make_shared<sim::Trigger>();
  launch(0, [trigger] { trigger->fire(); });
  co_await *trigger;
}

// ---------------------------------------------------------------- Device ---

Device::Device(GpuRuntime& runtime, Rank owner, int socket_id, int num_streams)
    : runtime_(runtime), owner_(owner), socket_id_(socket_id) {
  ADAPT_CHECK(num_streams > 0);
  streams_.reserve(static_cast<std::size_t>(num_streams));
  for (int i = 0; i < num_streams; ++i)
    streams_.push_back(std::make_unique<Stream>(*this, i));
}

Stream& Device::stream(int i) {
  ADAPT_CHECK(i >= 0 && i < num_streams());
  return *streams_[static_cast<std::size_t>(i)];
}

TimeNs Device::reduce_cost(Bytes bytes) const {
  const topo::MachineSpec& spec = runtime_.spec();
  return spec.gpu_kernel_launch +
         static_cast<TimeNs>(spec.gpu_reduce_gamma *
                             static_cast<double>(bytes));
}

void Device::execute_kernel(TimeNs cost, std::function<void()> on_done) {
  sim::Simulator& sim = runtime_.simulator();
  const TimeNs start = std::max(sim.now(), engine_busy_until_);
  engine_busy_until_ = start + cost;
  sim.at(engine_busy_until_, std::move(on_done));
}

// ------------------------------------------------------------ GpuRuntime ---

GpuRuntime::GpuRuntime(sim::Simulator& simulator, net::ClusterNet& net,
                       const topo::Machine& machine)
    : sim_(simulator), net_(net), machine_(machine) {
  devices_.resize(static_cast<std::size_t>(machine.nranks()));
  for (Rank r = 0; r < machine.nranks(); ++r) {
    if (machine.loc(r).gpu >= 0) {
      devices_[static_cast<std::size_t>(r)] =
          std::make_unique<Device>(*this, r, machine.socket_id(r));
    }
  }
}

Device* GpuRuntime::device_for(Rank r) {
  ADAPT_CHECK(r >= 0 && r < static_cast<Rank>(devices_.size()));
  return devices_[static_cast<std::size_t>(r)].get();
}

}  // namespace adapt::gpu
