// MPI-style error codes for requests and operations.
//
// The seed runtime had no failure surface at all: a lost message hung the
// simulator and a bad argument was UB. This header is the error-propagation
// contract: every request carries an ErrCode, completion callbacks observe it,
// and wait()-style primitives convert a failed request into a FaultError so
// coroutine collectives unwind cleanly instead of deadlocking.
#pragma once

#include <string>

#include "src/support/error.hpp"

namespace adapt::mpi {

enum class ErrCode : int {
  kOk = 0,
  // Argument validation (detected locally, never floods the job).
  kErrRank,      ///< peer rank out of range (or self-send)
  kErrCount,     ///< negative byte count
  kErrType,      ///< buffer size not a multiple of the datatype extent
  kErrTruncate,  ///< matched message overflows the posted receive buffer
  // Fault-tolerance (detected by the reliability layer / failure detectors).
  kErrRetryExhausted,  ///< retransmit budget spent without an ack
  kErrProcFailed,      ///< a peer (or the whole operation) was declared failed
  kErrWatchdog,        ///< the harness watchdog poisoned a wedged run
  kErrRevoked,         ///< the communicator was revoked (ULFM recovery)
  // Persistent-collective lifecycle (detected locally, never floods the job).
  kErrPending,    ///< start() on a handle whose previous round isn't waited
  kErrCommFreed,  ///< start() after the communicator was freed (stale plan)
  kErrPartition,  ///< pready misuse: bad index, duplicate, inactive handle
};

inline const char* err_name(ErrCode code) {
  switch (code) {
    case ErrCode::kOk: return "ok";
    case ErrCode::kErrRank: return "err_rank";
    case ErrCode::kErrCount: return "err_count";
    case ErrCode::kErrType: return "err_type";
    case ErrCode::kErrTruncate: return "err_truncate";
    case ErrCode::kErrRetryExhausted: return "err_retry_exhausted";
    case ErrCode::kErrProcFailed: return "err_proc_failed";
    case ErrCode::kErrWatchdog: return "err_watchdog";
    case ErrCode::kErrRevoked: return "err_revoked";
    case ErrCode::kErrPending: return "err_pending";
    case ErrCode::kErrCommFreed: return "err_comm_freed";
    case ErrCode::kErrPartition: return "err_partition";
  }
  return "err_unknown";
}

/// Thrown by wait()/wait_all()/wait_any() (and rethrown out of collectives)
/// when a request completes with a nonzero error code. Carrying the code lets
/// the chaos harness assert that every surviving rank failed the *same* way.
class FaultError : public Error {
 public:
  explicit FaultError(ErrCode code, const std::string& what)
      : Error(std::string(err_name(code)) + ": " + what), code_(code) {}

  ErrCode code() const { return code_; }

 private:
  ErrCode code_;
};

}  // namespace adapt::mpi
