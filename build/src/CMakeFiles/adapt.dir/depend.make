# Empty dependencies file for adapt.
# This may be replaced when dependencies are built.
