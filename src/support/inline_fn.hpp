// InlineFunction: a move-only type-erased callable with small-buffer
// optimisation, built for the simulator's hot paths.
//
// `std::function` heap-allocates any capture larger than (typically) two
// pointers; the event loop schedules millions of lambdas capturing
// [this, env, handler] — well past that limit — so every scheduled event paid
// a malloc/free round trip. InlineFunction stores captures up to `Capacity`
// bytes inline (no allocation at all) and falls back to the heap only for
// oversized or throwing-move captures. The dispatch table is a single static
// pointer per erased type: one indirect call to invoke, one to relocate, one
// to destroy.
//
// Move-only on purpose: the event queue is the sole owner of a scheduled
// callback (cancellation goes through generation-stamped EventHandles, not
// shared ownership), and move-only admits lambdas capturing move-only state.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace adapt {

template <typename Signature, std::size_t Capacity = 96>
class InlineFunction;  // undefined; see the R(Args...) specialisation

template <typename R, typename... Args, std::size_t Capacity>
class InlineFunction<R(Args...), Capacity> {
 public:
  InlineFunction() = default;
  InlineFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, InlineFunction> &&
                std::is_invocable_r_v<R, D&, Args...>>>
  InlineFunction(F&& fn) {  // NOLINT(google-explicit-constructor)
    constexpr bool kInline = sizeof(D) <= Capacity &&
                             alignof(D) <= alignof(void*) &&
                             std::is_nothrow_move_constructible_v<D>;
    if constexpr (kInline) {
      ::new (storage()) D(std::forward<F>(fn));
      ops_ = &kOps<D, /*boxed=*/false>;
    } else {
      ::new (storage()) D*(new D(std::forward<F>(fn)));
      ops_ = &kOps<D, /*boxed=*/true>;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { take(other); }
  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      take(other);
    }
    return *this;
  }
  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;
  ~InlineFunction() { reset(); }

  R operator()(Args... args) {
    return ops_->invoke(storage(), std::forward<Args>(args)...);
  }

  explicit operator bool() const { return ops_ != nullptr; }

  void reset() {
    if (ops_) {
      if (!ops_->trivial_dtor) ops_->destroy(storage());
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    R (*invoke)(void*, Args&&...);
    void (*relocate)(void* from, void* to);  ///< move-construct + destroy from
    void (*destroy)(void*);
    /// >0: relocation is a memcpy of this many bytes and the source needs no
    /// destruction afterwards (trivially copyable capture, or the boxed
    /// pointer itself). Lets moves of the common captures skip the indirect
    /// call entirely.
    std::uint32_t memcpy_bytes;
    /// Trivially destructible capture: reset() can skip the destroy call.
    bool trivial_dtor;
  };

  template <typename D, bool Boxed>
  static constexpr Ops kOps = {
      /*invoke=*/[](void* s, Args&&... args) -> R {
        if constexpr (Boxed) {
          return (**static_cast<D**>(s))(std::forward<Args>(args)...);
        } else {
          return (*static_cast<D*>(s))(std::forward<Args>(args)...);
        }
      },
      /*relocate=*/[](void* from, void* to) {
        if constexpr (Boxed) {
          ::new (to) D*(*static_cast<D**>(from));
        } else {
          D* src = static_cast<D*>(from);
          ::new (to) D(std::move(*src));
          src->~D();
        }
      },
      /*destroy=*/[](void* s) {
        if constexpr (Boxed) {
          delete *static_cast<D**>(s);
        } else {
          static_cast<D*>(s)->~D();
        }
      },
      /*memcpy_bytes=*/
      Boxed ? sizeof(D*)
            : (std::is_trivially_copyable_v<D> ? sizeof(D) : 0),
      /*trivial_dtor=*/!Boxed && std::is_trivially_destructible_v<D>,
  };

  void take(InlineFunction& other) noexcept {
    ops_ = other.ops_;
    if (ops_) {
      if (const std::uint32_t n = ops_->memcpy_bytes) {
        std::memcpy(storage(), other.storage(), n);
      } else {
        ops_->relocate(other.storage(), storage());
      }
      other.ops_ = nullptr;
    }
  }

  void* storage() { return static_cast<void*>(&storage_); }

  // Pointer alignment only (over-aligned captures take the boxed path):
  // keeps sizeof(InlineFunction) == 8 + Capacity so event records pack into
  // exact cache lines.
  const Ops* ops_ = nullptr;
  alignas(alignof(void*)) std::byte storage_[Capacity];
};

}  // namespace adapt
