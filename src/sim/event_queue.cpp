#include "src/sim/event_queue.hpp"

#include <algorithm>

#include "src/support/error.hpp"

namespace adapt::sim {

EventHandle EventQueue::push(TimeNs time, std::function<void()> fn) {
  auto state = std::make_shared<EventHandle::State>();
  state->fn = std::move(fn);
  TimeNs fire_time = time;
  std::uint64_t tie = seq_;
  if (perturb_) {
    if (perturb_->max_jitter > 0) {
      fire_time += static_cast<TimeNs>(perturb_rng_.next_below(
          static_cast<std::uint64_t>(perturb_->max_jitter) + 1));
    }
    if (perturb_->shuffle_ties) tie = perturb_rng_.next_u64();
  }
  heap_.push(Entry{fire_time, tie, seq_++, state});
  if (stats_) {
    ++stats_->scheduled;
    stats_->max_depth = std::max<std::uint64_t>(stats_->max_depth,
                                                heap_.size());
  }
  return EventHandle(std::move(state));
}

void EventQueue::set_perturbation(std::optional<PerturbConfig> config) {
  if (config) {
    ADAPT_CHECK(config->max_jitter >= 0)
        << "negative jitter bound " << config->max_jitter;
    perturb_rng_ = Rng(config->seed);
  }
  perturb_ = std::move(config);
}

void EventQueue::drop_cancelled() const {
  while (!heap_.empty() && heap_.top().state->cancelled) heap_.pop();
}

bool EventQueue::empty() const {
  drop_cancelled();
  return heap_.empty();
}

TimeNs EventQueue::next_time() const {
  drop_cancelled();
  ADAPT_CHECK(!heap_.empty()) << "next_time on empty event queue";
  return heap_.top().time;
}

std::pair<TimeNs, std::function<void()>> EventQueue::pop() {
  drop_cancelled();
  ADAPT_CHECK(!heap_.empty()) << "pop on empty event queue";
  Entry top = heap_.top();
  heap_.pop();
  return {top.time, std::move(top.state->fn)};
}

}  // namespace adapt::sim
