// Shared scenario for the trace byte-identity regression test: a 64-rank
// bcast/reduce/allreduce trio on Cori, with real payloads, run stable and
// under a perturbed schedule, each exporting its Perfetto trace JSON.
//
// The exported bytes are hashed (FNV-1a 64) and pinned against
// tests/golden/trace_hashes.txt, which was captured from the tree BEFORE the
// hot-path overhaul (slab-pooled events, pooled payloads). Any change to
// event ordering, RNG draw order, matching order, or export formatting moves
// a hash and fails the pin — this is the determinism contract the pooling
// work must uphold.
#pragma once

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/coll/coll.hpp"
#include "src/coll/moreops.hpp"
#include "src/coll/topo_tree.hpp"
#include "src/mpi/payload.hpp"
#include "src/obs/export.hpp"
#include "src/obs/trace.hpp"
#include "src/runtime/sim_engine.hpp"
#include "src/topo/presets.hpp"

namespace adapt::verify {

inline std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

enum class TrioOp { kBcast, kReduce, kAllreduce };

inline const char* trio_name(TrioOp op) {
  switch (op) {
    case TrioOp::kBcast: return "bcast";
    case TrioOp::kReduce: return "reduce";
    case TrioOp::kAllreduce: return "allreduce";
  }
  return "?";
}

/// Runs one collective of the trio at 64 ranks with real, deterministically
/// filled payloads and returns the full Perfetto trace JSON export.
inline std::string trio_trace(TrioOp op, bool perturbed) {
  constexpr int kRanks = 64;
  topo::Machine machine(topo::cori(2), kRanks);
  const mpi::Comm world = mpi::Comm::world(kRanks);
  const coll::Tree tree = coll::build_topo_tree(machine, world, 0);

  runtime::SimEngineOptions options;
  if (perturbed) {
    options.perturb =
        sim::PerturbConfig{11, /*shuffle_ties=*/true, microseconds(5)};
  }
  options.recorder = std::make_shared<obs::Recorder>();
  runtime::SimEngine engine(machine, options);

  const Bytes size = kib(256);
  std::vector<mpi::Payload> buffers;
  buffers.reserve(kRanks);
  for (int r = 0; r < kRanks; ++r) {
    buffers.push_back(mpi::Payload::real(size));
    mpi::MutView view = buffers.back().view();
    for (Bytes i = 0; i < size; i += 61) {
      view.data[i] = static_cast<std::byte>((r * 131 + i * 7) & 0xff);
    }
  }

  const coll::CollOpts opts{.segment_size = kib(32)};
  auto program = [&](runtime::Context& ctx) -> sim::Task<> {
    mpi::MutView buf = buffers[ctx.rank()].view();
    switch (op) {
      case TrioOp::kBcast:
        co_await coll::bcast(ctx, world, buf, 0, tree, coll::Style::kAdapt,
                             opts);
        break;
      case TrioOp::kReduce:
        co_await coll::reduce(ctx, world, buf, mpi::ReduceOp::kSum,
                              mpi::Datatype::kFloat, 0, tree,
                              coll::Style::kAdapt, opts);
        break;
      case TrioOp::kAllreduce:
        co_await coll::allreduce(ctx, world, buf, mpi::ReduceOp::kSum,
                                 mpi::Datatype::kFloat, tree, tree,
                                 coll::Style::kAdapt, opts);
        break;
    }
  };
  engine.run(program);

  std::ostringstream os;
  obs::write_trace_json(*options.recorder, os);
  return os.str();
}

}  // namespace adapt::verify
