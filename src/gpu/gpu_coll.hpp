// GPU-aware collective personalities for the paper's §5.2.2 comparison
// (Fig. 11): broadcast and reduce over GPU-resident data on the PSG-like
// cluster, one MPI rank per GPU.
//
//   mvapich-gpu       device-direct k-nomial, CUDA IPC (peer DMA) and
//                     GPUDirect enabled, CPU-side reduction
//   ompi-default-gpu  decision tree not tuned for GPUs: rank-order binomial,
//                     no peer DMA, no GPUDirect — every transfer bounces
//                     through the socket's PCIe root port (Fig. 6b)
//   ompi-adapt-gpu    ADAPT event-driven on the topo tree, explicit CPU
//                     buffer at node leaders (§4.1) and reductions offloaded
//                     to GPU streams (§4.2)
//
// Each personality also prescribes the engine-level GpuConfig (routing) it
// assumes; benchmarks construct the SimEngine with it.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/coll/library.hpp"
#include "src/net/routes.hpp"

namespace adapt::gpu {

class GpuLibrary : public coll::MpiLibrary {
 public:
  /// Engine routing configuration this personality assumes.
  virtual net::GpuConfig gpu_config() const = 0;
};

std::shared_ptr<GpuLibrary> make_gpu_library(const std::string& name,
                                             const topo::Machine& machine);

std::vector<std::string> gpu_libraries();

}  // namespace adapt::gpu
