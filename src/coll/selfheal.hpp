// Self-healing collective wrappers (ULFM-style retry loop).
//
// On an engine with recovery enabled (SimEngineOptions::recovery), a
// resilient collective survives rank death:
//
//   attempt:  clear endpoint poison, (re)build the schedule on the current
//             communicator, issue the collective;
//   agree:    fault-tolerant agreement on "did everyone complete?" plus the
//             union of failure views (mpi::comm_agree — itself survives
//             participant death);
//   recover:  on failure, revoke the stale communicator (plan-cache entries
//             die with it via the weak CommState guard), shrink to the agreed
//             survivors, restore the caller's buffer to its pre-attempt
//             bytes, back off exponentially in virtual time, and retry —
//             bounded by the attempt budget.
//
// The result is *byte-exact on the survivor communicator*: a successful
// attempt ran entirely on `result.comm`, so the bytes equal the failure-free
// oracle over exactly that membership. A dead bcast root is unrecoverable —
// the data source is gone — and reports a uniform kErrProcFailed instead.
//
// Without recovery (ThreadEngine, or recovery off) the wrappers degrade to a
// single attempt whose error code is returned instead of thrown.
#pragma once

#include <cstdint>

#include "src/coll/coll.hpp"
#include "src/mpi/comm_ft.hpp"

namespace adapt::coll {

struct ResilientOpts {
  CollOpts coll;
  Style style = Style::kAdapt;
  int max_attempts = 0;     ///< 0 = RecoveryOptions::max_attempts
  TimeNs backoff_base = 0;  ///< 0 = RecoveryOptions::backoff_base
  double backoff = 0.0;     ///< 0 = RecoveryOptions::backoff
};

struct ResilientResult {
  mpi::ErrCode code = mpi::ErrCode::kOk;
  /// The communicator the final attempt ran on: the original when attempt 1
  /// succeeded, the shrunk survivor communicator after recovery. On success
  /// the buffer holds the failure-free result over exactly these members.
  mpi::Comm comm = mpi::Comm::world(1);
  int attempts = 0;          ///< collective issues (>= 1)
  std::uint64_t failed = 0;  ///< cumulative agreed failure set (global ranks)
};

/// Self-healing broadcast from global rank `root`. If the root itself is in
/// the agreed failure set, every survivor returns kErrProcFailed uniformly.
sim::Task<ResilientResult> resilient_bcast(runtime::Context& ctx,
                                           const mpi::Comm& comm,
                                           mpi::MutView buffer, Rank root,
                                           const ResilientOpts& opts = {});

/// Self-healing allreduce (reduce to the lowest survivor + bcast back, one
/// topology-aware tree). On success every survivor holds the reduction over
/// exactly `result.comm`'s members' original contributions.
sim::Task<ResilientResult> resilient_allreduce(runtime::Context& ctx,
                                               const mpi::Comm& comm,
                                               mpi::MutView accum,
                                               mpi::ReduceOp op,
                                               mpi::Datatype dtype,
                                               const ResilientOpts& opts = {});

}  // namespace adapt::coll
