// Communicators: ordered process groups with local<->global rank translation.
//
// ADAPT's topology-aware collectives run on a *single* communicator (§3.2);
// the multi-level-communicator baseline (§3.1) splits the world by node and
// socket, which `split_by` supports.
//
// A Comm is a cheap value type: copies share one immutable membership state.
// That shared state also carries the communicator's *lifecycle*, added for
// persistent collectives (PR 6): a membership fingerprint that keys the plan
// cache, and a freed flag set by free(). Persistent handles keep a weak
// reference to the state — once any copy is freed, start() fails with
// kErrCommFreed and cached plans bound to the state are invalidated, so a
// freed or re-split communicator can never serve a stale schedule.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/support/error.hpp"
#include "src/support/units.hpp"

namespace adapt::mpi {

/// Shared, mostly-immutable communicator state. `freed` and `revoked` are
/// the only mutable members; each flips once (Comm::free / Comm::revoke) and
/// is only ever read afterwards.
struct CommState {
  std::vector<Rank> members;
  std::uint64_t fingerprint = 0;  ///< FNV-1a over the ordered member list
  bool freed = false;
  bool revoked = false;  ///< ULFM revocation: schedules on it are stale

  bool alive() const { return !freed && !revoked; }
};

class Comm {
 public:
  /// World communicator over ranks [0, nranks).
  static Comm world(int nranks);

  /// Communicator over an explicit ordered member list (global ranks).
  explicit Comm(std::vector<Rank> members);

  int size() const { return static_cast<int>(members().size()); }
  Rank global(Rank local) const {
    ADAPT_CHECK(local >= 0 && local < size());
    return members()[static_cast<std::size_t>(local)];
  }
  /// Local rank of a global rank, or kAnyRank when not a member.
  Rank local_of(Rank global_rank) const;
  bool contains(Rank global_rank) const {
    return local_of(global_rank) != kAnyRank;
  }
  const std::vector<Rank>& members() const { return state_->members; }

  /// Deterministic hash of the ordered membership; two communicators over
  /// the same ordered ranks share a fingerprint (and may share cached
  /// plans — the plan depends only on membership and machine).
  std::uint64_t fingerprint() const { return state_->fingerprint; }

  /// MPI_Comm_split: partitions the members by `color` (evaluated on global
  /// ranks) into one sub-communicator per distinct color, returned in
  /// ascending color order. Each sub-communicator keeps this communicator's
  /// member order, so every rank computes identical groups — the two-level
  /// (HAN) collectives split by node this way.
  std::vector<Comm> split_by(const std::function<int(Rank)>& color) const;

  /// MPI_Comm_free: marks every copy of this communicator freed. Collectives
  /// already in flight are unaffected; new persistent start()s fail with
  /// kErrCommFreed, and plan-cache entries guarded by this state go stale.
  void free() const { state_->freed = true; }
  bool alive() const { return state_->alive(); }

  /// ULFM MPI_Comm_revoke, local half: marks every copy revoked so cached
  /// plans guarded by this state go stale and persistent start()s fail with
  /// kErrRevoked. Propagation to other ranks is the recovery layer's job
  /// (mpi::comm_revoke floods a kRevoke frame).
  void revoke() const { state_->revoked = true; }
  bool revoked() const { return state_->revoked; }

  /// The shared lifecycle state, for weak guards (plan cache, persistent
  /// handles). Never null.
  const std::shared_ptr<const CommState>& state() const {
    // The state is logically const except for the freed flag, which free()
    // flips through the non-const alias kept privately.
    return cstate_;
  }

 private:
  std::shared_ptr<CommState> state_;
  std::shared_ptr<const CommState> cstate_;  ///< same object, const view
};

}  // namespace adapt::mpi
