file(REMOVE_RECURSE
  "CMakeFiles/gpu_pipeline.dir/gpu_pipeline.cpp.o"
  "CMakeFiles/gpu_pipeline.dir/gpu_pipeline.cpp.o.d"
  "gpu_pipeline"
  "gpu_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
