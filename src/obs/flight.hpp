// Always-on flight recorder: a Recorder with bounded memory.
//
// The plain Recorder keeps every record, which is right for post-mortem
// analysis of a bounded run but wrong for an always-on deployment: a long
// simulation accumulates traces without limit. FlightRecorder turns on the
// Recorder's flight mode, which adds two mechanisms:
//
//   * Bounded windows. Every record vector is capped at
//     max(min_window, window_per_rank * nranks) entries; when a vector
//     fills, the oldest half is evicted in one move (amortised O(1) per
//     append — each retained record moves at most once per half-window).
//     Transfers keep stable 1-based ids across eviction: updates to an
//     evicted in-flight transfer become no-ops.
//
//   * Event-class sampling. High-frequency classes — ADAPT task events,
//     P2P instants, the CPU timeline, and data transfers — keep one record
//     in `sample_period`. Low-frequency, high-information classes
//     (collective spans, protocol/recovery, tuner and plan-cache events,
//     noise stalls) are always kept, so `adapt-trace summarize` and `diff`
//     still see every collective and every decision.
//
// The MetricsRegistry is exact in flight mode: counters are bumped before
// the sampling decision. Only the timeline is thinned; dropped() counts
// exactly how many records were sampled out or evicted.
//
// Determinism: sampling is a pure function of the append sequence, so two
// same-seed runs still export byte-identical traces. Overhead is guarded by
// BM_SimulatedBcastFlightRecorder against the existing disabled-path ratio.
#pragma once

#include "src/obs/trace.hpp"

namespace adapt::obs {

class FlightRecorder : public Recorder {
 public:
  explicit FlightRecorder(const FlightConfig& config = FlightConfig{})
      : Recorder(true, config) {}
};

}  // namespace adapt::obs
