#include "src/topo/hardware.hpp"

#include <functional>
#include <map>

#include "src/support/error.hpp"

namespace adapt::topo {

const char* level_name(Level level) {
  switch (level) {
    case Level::kSelf: return "self";
    case Level::kIntraSocket: return "intra-socket";
    case Level::kInterSocket: return "inter-socket";
    case Level::kInterNode: return "inter-node";
  }
  return "?";
}

Machine::Machine(MachineSpec spec, int nranks, PlacementPolicy policy)
    : spec_(std::move(spec)), policy_(policy) {
  ADAPT_CHECK(nranks > 0);
  ADAPT_CHECK(spec_.nodes > 0 && spec_.sockets_per_node > 0 &&
              spec_.cores_per_socket > 0);
  locs_.reserve(static_cast<std::size_t>(nranks));

  if (policy == PlacementPolicy::kByCore) {
    const int capacity = spec_.nodes * spec_.cores_per_node();
    ADAPT_CHECK(nranks <= capacity)
        << "nranks=" << nranks << " exceeds " << capacity << " cores on "
        << spec_.name;
    for (int r = 0; r < nranks; ++r) {
      const int node = r / spec_.cores_per_node();
      const int within = r % spec_.cores_per_node();
      locs_.push_back(Loc{node, within / spec_.cores_per_socket,
                          within % spec_.cores_per_socket, -1});
    }
  } else {
    ADAPT_CHECK(spec_.gpus_per_socket > 0)
        << "by-GPU placement on a machine without GPUs";
    const int capacity = spec_.nodes * spec_.gpus_per_node();
    ADAPT_CHECK(nranks <= capacity)
        << "nranks=" << nranks << " exceeds " << capacity << " GPUs on "
        << spec_.name;
    for (int r = 0; r < nranks; ++r) {
      const int node = r / spec_.gpus_per_node();
      const int within = r % spec_.gpus_per_node();
      const int socket = within / spec_.gpus_per_socket;
      const int gpu = within % spec_.gpus_per_socket;
      // One rank per GPU; the rank's CPU core is the gpu-th core of the socket.
      locs_.push_back(Loc{node, socket, gpu, gpu});
    }
  }
}

Machine::Machine(MachineSpec spec, std::vector<int> slots)
    : spec_(std::move(spec)), policy_(PlacementPolicy::kByCore) {
  ADAPT_CHECK(!slots.empty());
  ADAPT_CHECK(spec_.nodes > 0 && spec_.sockets_per_node > 0 &&
              spec_.cores_per_socket > 0);
  const int capacity = spec_.nodes * spec_.cores_per_node();
  std::vector<char> used(static_cast<std::size_t>(capacity), 0);
  locs_.reserve(slots.size());
  bool dense = true;
  for (std::size_t r = 0; r < slots.size(); ++r) {
    const int slot = slots[r];
    ADAPT_CHECK(slot >= 0 && slot < capacity)
        << "slot " << slot << " outside " << capacity << " cores on "
        << spec_.name;
    ADAPT_CHECK(!used[static_cast<std::size_t>(slot)])
        << "slot " << slot << " assigned twice";
    used[static_cast<std::size_t>(slot)] = 1;
    const int node = slot / spec_.cores_per_node();
    const int within = slot % spec_.cores_per_node();
    locs_.push_back(Loc{node, within / spec_.cores_per_socket,
                        within % spec_.cores_per_socket, -1});
    dense = dense && slot == static_cast<int>(r);
  }
  if (!dense) {
    // FNV-1a over the slot sequence: distinguishes placements in the
    // fingerprint so tuner tables recorded under one mapping are not replayed
    // under another.
    std::uint64_t h = 1469598103934665603ull;
    for (const int slot : slots) {
      h ^= static_cast<std::uint64_t>(slot);
      h *= 1099511628211ull;
    }
    placement_hash_ = h != 0 ? h : 1;
  }
}

const Loc& Machine::loc(Rank r) const {
  ADAPT_CHECK(r >= 0 && r < nranks()) << "rank " << r << " of " << nranks();
  return locs_[static_cast<std::size_t>(r)];
}

Level Machine::level_between(Rank a, Rank b) const {
  const Loc& la = loc(a);
  const Loc& lb = loc(b);
  if (a == b) return Level::kSelf;
  if (la.node != lb.node) return Level::kInterNode;
  if (la.socket != lb.socket) return Level::kInterSocket;
  return Level::kIntraSocket;
}

const LinkParams& Machine::lane(Level level) const {
  switch (level) {
    case Level::kIntraSocket:
      return spec_.has_shm_channel() ? spec_.shm_node : spec_.intra_socket;
    case Level::kInterSocket:
      return spec_.has_shm_channel() ? spec_.shm_node : spec_.inter_socket;
    case Level::kInterNode: return spec_.inter_node;
    case Level::kSelf: break;
  }
  ADAPT_UNREACHABLE("no lane for Level::kSelf");
}

int Machine::socket_id(Rank r) const {
  const Loc& l = loc(r);
  return l.node * spec_.sockets_per_node + l.socket;
}

namespace {

std::vector<std::vector<Rank>> group_by(
    int nranks, const std::function<int(Rank)>& key) {
  std::map<int, std::vector<Rank>> groups;
  for (Rank r = 0; r < nranks; ++r) groups[key(r)].push_back(r);
  std::vector<std::vector<Rank>> out;
  out.reserve(groups.size());
  for (auto& [k, v] : groups) out.push_back(std::move(v));
  return out;
}

}  // namespace

std::vector<std::vector<Rank>> Machine::ranks_by_node() const {
  return group_by(nranks(), [this](Rank r) { return node_of(r); });
}

std::vector<std::vector<Rank>> Machine::ranks_by_socket() const {
  return group_by(nranks(), [this](Rank r) { return socket_id(r); });
}

std::string Machine::fingerprint() const {
  char buf[512];
  const auto lane_sig = [](const LinkParams& l) {
    char s[64];
    std::snprintf(s, sizeof(s), "%lld/%.9g", static_cast<long long>(l.alpha),
                  l.beta_ns_per_byte);
    return std::string(s);
  };
  std::snprintf(
      buf, sizeof(buf),
      "%s n%dx%dx%dg%d r%dp%d shm=%s qpi=%s nic=%s par=%.9g "
      "memcpy=%.9g unexp=%lld eager=%lld gamma=%.9g cpu=%lld",
      spec_.name.c_str(), spec_.nodes, spec_.sockets_per_node,
      spec_.cores_per_socket, spec_.gpus_per_socket, nranks(),
      static_cast<int>(policy_), lane_sig(spec_.intra_socket).c_str(),
      lane_sig(spec_.inter_socket).c_str(), lane_sig(spec_.inter_node).c_str(),
      spec_.shm_parallel, spec_.memcpy_beta,
      static_cast<long long>(spec_.unexpected_overhead),
      static_cast<long long>(spec_.eager_threshold), spec_.reduce_gamma,
      static_cast<long long>(spec_.cpu_overhead));
  std::string out = buf;
  // Appended only when non-default so every pre-existing machine keeps its
  // exact fingerprint (persisted decision tables stay loadable).
  if (spec_.has_shm_channel()) {
    std::snprintf(buf, sizeof(buf), " shmnode=%s/%.9g",
                  lane_sig(spec_.shm_node).c_str(), spec_.shm_node_parallel);
    out += buf;
  }
  if (placement_hash_ != 0) {
    std::snprintf(buf, sizeof(buf), " perm=%llx",
                  static_cast<unsigned long long>(placement_hash_));
    out += buf;
  }
  return out;
}

}  // namespace adapt::topo
