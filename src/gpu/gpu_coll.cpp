#include "src/gpu/gpu_coll.hpp"

#include <algorithm>
#include <map>

#include "src/coll/topo_tree.hpp"
#include "src/support/error.hpp"

namespace adapt::gpu {

namespace {

using coll::CollOpts;
using coll::Style;
using coll::Tree;

Bytes gpu_segment(Bytes msg) {
  // GPU messages are 1-32 MB; 1 MB segments keep PCIe transfers efficient
  // while still filling the pipeline.
  return std::clamp<Bytes>(msg / 8, kib(256), mib(1));
}

class BaseGpuLibrary : public GpuLibrary {
 public:
  BaseGpuLibrary(std::string name, const topo::Machine& machine)
      : name_(std::move(name)), machine_(machine) {}
  std::string name() const override { return name_; }

 protected:
  const Tree& tree_for(const mpi::Comm& comm, Rank root, bool topo) {
    const auto key = std::pair<Rank, bool>(root, topo);
    auto it = trees_.find(key);
    if (it == trees_.end()) {
      coll::TopoTreeSpec chains;  // chain at every level (§5.2.1)
      Tree t = topo ? coll::build_topo_tree(machine_, comm, root, chains)
                    : coll::build_tree(coll::TreeKind::kKNomial, comm.size(), root,
                                       4);
      it = trees_.emplace(key, std::move(t)).first;
    }
    return it->second;
  }

  std::string name_;
  const topo::Machine& machine_;
  std::map<std::pair<Rank, bool>, Tree> trees_;
};

/// MVAPICH2-like: device-direct transfers over IPC/GPUDirect, k-nomial tree,
/// Waitall pipeline, reduction on the CPU (the state of practice §4.2 calls
/// out: no GPU offload).
class MvapichGpu final : public BaseGpuLibrary {
 public:
  using BaseGpuLibrary::BaseGpuLibrary;
  net::GpuConfig gpu_config() const override { return {true, true}; }

  sim::Task<> bcast(runtime::Context& ctx, const mpi::Comm& comm,
                    mpi::MutView buffer, Rank root) override {
    CollOpts opts;
    opts.segment_size = gpu_segment(buffer.size);
    opts.send = {MemSpace::kDevice, MemSpace::kDevice};
    co_await coll::bcast(ctx, comm, buffer, root,
                         tree_for(comm, root, false), Style::kNonblocking,
                         opts);
  }

  sim::Task<> reduce(runtime::Context& ctx, const mpi::Comm& comm,
                     mpi::MutView accum, mpi::ReduceOp op, mpi::Datatype dtype,
                     Rank root) override {
    CollOpts opts;
    opts.segment_size = gpu_segment(accum.size);
    opts.send = {MemSpace::kDevice, MemSpace::kDevice};
    opts.gpu_reduce = false;  // CPU reduction on staged data
    // Folding device-resident data on the CPU drags every byte across PCIe
    // and back around the fold; fold cost ~ gamma + 2/bw_pcie per byte.
    opts.gamma_scale = 1.7;
    co_await coll::reduce(ctx, comm, accum, op, dtype, root,
                          tree_for(comm, root, false), Style::kNonblocking,
                          opts);
  }
};

/// Open MPI default: the tuned decision tree was never taught about GPUs
/// (§5.2.2), so it picks a rank-order binomial even where a chain is optimal,
/// and the runtime stages everything through the root port.
class DefaultGpu final : public BaseGpuLibrary {
 public:
  using BaseGpuLibrary::BaseGpuLibrary;
  net::GpuConfig gpu_config() const override { return {false, false}; }

  sim::Task<> bcast(runtime::Context& ctx, const mpi::Comm& comm,
                    mpi::MutView buffer, Rank root) override {
    CollOpts opts;
    opts.segment_size = gpu_segment(buffer.size);
    opts.send = {MemSpace::kDevice, MemSpace::kDevice};
    Tree t = coll::build_tree(coll::TreeKind::kBinomial, comm.size(), root);
    co_await coll::bcast(ctx, comm, buffer, root, t, Style::kNonblocking,
                         opts);
  }

  sim::Task<> reduce(runtime::Context& ctx, const mpi::Comm& comm,
                     mpi::MutView accum, mpi::ReduceOp op, mpi::Datatype dtype,
                     Rank root) override {
    CollOpts opts;
    opts.segment_size = gpu_segment(accum.size);
    opts.send = {MemSpace::kDevice, MemSpace::kDevice};
    opts.gamma_scale = 1.7;  // CPU fold of device data (see MvapichGpu)
    Tree t = coll::build_tree(coll::TreeKind::kBinomial, comm.size(), root);
    co_await coll::reduce(ctx, comm, accum, op, dtype, root, t,
                          Style::kNonblocking, opts);
  }
};

/// ADAPT on GPUs: topo-aware chain tree, event-driven, explicit CPU buffer at
/// node leaders so NIC traffic, cache->GPU flushes and GPU-peer copies ride
/// different PCIe lanes (§4.1), and reductions offloaded to streams (§4.2).
class AdaptGpu final : public BaseGpuLibrary {
 public:
  using BaseGpuLibrary::BaseGpuLibrary;
  net::GpuConfig gpu_config() const override { return {true, true}; }

  CollOpts adapt_opts(Bytes msg) const {
    CollOpts opts;
    opts.segment_size = gpu_segment(msg);
    opts.gpu_host_cache = true;
    const topo::Machine& m = machine_;
    opts.edge_spaces = [&m](Rank src, Rank dst) -> mpi::SendOpts {
      switch (m.level_between(src, dst)) {
        case topo::Level::kInterNode:
          // leader host cache -> leader host cache over the NIC's own lanes
          return {MemSpace::kHost, MemSpace::kHost};
        case topo::Level::kInterSocket:
          // host cache -> socket leader's GPU (QPI + pcie_down)
          return {MemSpace::kHost, MemSpace::kDevice};
        default:
          // switch-local GPU peer DMA
          return {MemSpace::kDevice, MemSpace::kDevice};
      }
    };
    return opts;
  }

  sim::Task<> bcast(runtime::Context& ctx, const mpi::Comm& comm,
                    mpi::MutView buffer, Rank root) override {
    co_await coll::bcast(ctx, comm, buffer, root, tree_for(comm, root, true),
                         Style::kAdapt, adapt_opts(buffer.size));
  }

  sim::Task<> reduce(runtime::Context& ctx, const mpi::Comm& comm,
                     mpi::MutView accum, mpi::ReduceOp op, mpi::Datatype dtype,
                     Rank root) override {
    CollOpts opts;
    opts.segment_size = gpu_segment(accum.size);
    opts.send = {MemSpace::kDevice, MemSpace::kDevice};
    opts.gpu_reduce = true;  // §4.2: asynchronous reduction on streams
    co_await coll::reduce(ctx, comm, accum, op, dtype, root,
                          tree_for(comm, root, true), Style::kAdapt, opts);
  }
};

}  // namespace

std::shared_ptr<GpuLibrary> make_gpu_library(const std::string& name,
                                             const topo::Machine& machine) {
  ADAPT_CHECK(machine.spec().gpus_per_socket > 0)
      << "GPU personality on a machine without GPUs";
  if (name == "mvapich-gpu")
    return std::make_shared<MvapichGpu>(name, machine);
  if (name == "ompi-default-gpu")
    return std::make_shared<DefaultGpu>(name, machine);
  if (name == "ompi-adapt-gpu")
    return std::make_shared<AdaptGpu>(name, machine);
  throw Error("unknown GPU library personality: " + name);
}

std::vector<std::string> gpu_libraries() {
  return {"mvapich-gpu", "ompi-default-gpu", "ompi-adapt-gpu"};
}

}  // namespace adapt::gpu
