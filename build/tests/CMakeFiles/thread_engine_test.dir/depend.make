# Empty dependencies file for thread_engine_test.
# This may be replaced when dependencies are built.
