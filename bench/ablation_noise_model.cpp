// Ablation over the noise-injection model itself: per-rank independent burst
// phases (the default, matching the paper's "randomly inject" wording)
// versus cluster-synchronized onsets with per-rank random durations (daemons
// that wake on a global tick — the injection style of Beckman et al., where
// collectives amplify the per-rank duration SKEW).
//
//   ablation_noise_model [--ranks 256] [--iters N]
#include <iostream>

#include "src/bench/cli.hpp"
#include "src/bench/imb.hpp"
#include "src/coll/coll.hpp"
#include "src/coll/topo_tree.hpp"
#include "src/topo/presets.hpp"
#include "src/runtime/sim_engine.hpp"
#include "src/support/table.hpp"

int main(int argc, char** argv) {
  using namespace adapt;
  bench::Cli cli(argc, argv);
  const int ranks = static_cast<int>(cli.get_int("ranks", 256));
  const int iters = static_cast<int>(cli.get_int("iters", 40));
  const Bytes msg = mib(4);
  topo::Machine machine(topo::cori((ranks + 31) / 32), ranks);
  const mpi::Comm world = mpi::Comm::world(ranks);
  const coll::Tree tree = coll::build_topo_tree(machine, world, 0);

  std::cout << "== Ablation: noise-injection model (ADAPT vs blocking bcast, "
            << ranks << " ranks, " << format_bytes(msg) << ", 10% duty) ==\n\n";
  Table t({"noise model", "style", "time(ms)", "slowdown"});
  for (bool synchronized : {false, true}) {
    for (coll::Style style : {coll::Style::kAdapt, coll::Style::kBlocking}) {
      double base = 0, noisy = 0;
      for (int pass = 0; pass < 2; ++pass) {
        runtime::SimEngineOptions options;
        if (pass == 1) {
          options.noise = std::make_shared<noise::UniformBurstNoise>(
              milliseconds(20), 10.0, 0xF00D, synchronized);
        }
        runtime::SimEngine engine(machine, options);
        mpi::MutView buffer{nullptr, msg};
        auto fn = [&](runtime::Context& ctx, int) -> sim::Task<> {
          co_await coll::bcast(ctx, world, buffer, 0, tree, style,
                               coll::CollOpts{.segment_size = kib(128)});
        };
        const double ms =
            bench::measure_throughput(engine, world, fn,
                                      {.warmup = 1, .iterations = iters})
                .avg_ms();
        (pass == 0 ? base : noisy) = ms;
      }
      char time_s[32], slow[32];
      std::snprintf(time_s, sizeof time_s, "%.3f", noisy);
      std::snprintf(slow, sizeof slow, "%.0f%%", (noisy / base - 1.0) * 100);
      t.add_row({synchronized ? "synchronized onsets" : "independent phases",
                 coll::style_name(style), time_s, slow});
    }
  }
  t.print(std::cout);
  std::cout << "\nUnder both models the blocking design amplifies noise more "
               "than the\nevent-driven one; synchronized onsets isolate the "
               "skew-amplification effect.\n";
  return 0;
}
