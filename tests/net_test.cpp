#include <gtest/gtest.h>

#include "src/net/fabric.hpp"
#include "src/net/routes.hpp"
#include "src/obs/trace.hpp"
#include "src/sim/simulator.hpp"
#include "src/support/error.hpp"
#include "src/topo/presets.hpp"

namespace adapt::net {
namespace {

TEST(Fabric, SingleFlowHockneyExact) {
  sim::Simulator sim;
  Fabric fabric(sim);
  const LinkId l = fabric.add_link(2.0);  // 2 B/ns
  TimeNs done = -1;
  fabric.transfer(Route{{l}, 2.0, 100}, 2000, [&] { done = sim.now(); });
  sim.run();
  // alpha 100 + 2000 B / 2 B/ns = 1100.
  EXPECT_EQ(done, 1100);
  EXPECT_EQ(fabric.flows_completed(), 1u);
}

TEST(Fabric, ZeroBytesCostAlphaOnly) {
  sim::Simulator sim;
  Fabric fabric(sim);
  const LinkId l = fabric.add_link(1.0);
  TimeNs done = -1;
  fabric.transfer(Route{{l}, 1.0, 700}, 0, [&] { done = sim.now(); });
  sim.run();
  EXPECT_EQ(done, 700);
}

TEST(Fabric, TwoFlowsShareOneLink) {
  sim::Simulator sim;
  Fabric fabric(sim);
  const LinkId l = fabric.add_link(1.0);
  std::vector<TimeNs> done;
  for (int i = 0; i < 2; ++i) {
    fabric.transfer(Route{{l}, 1.0, 0}, 1000,
                    [&] { done.push_back(sim.now()); });
  }
  sim.run();
  // Fair sharing: both progress at 0.5 B/ns, both finish at 2000.
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], 2000);
  EXPECT_EQ(done[1], 2000);
}

TEST(Fabric, FlowsOnDifferentLinksDoNotInteract) {
  sim::Simulator sim;
  Fabric fabric(sim);
  const LinkId a = fabric.add_link(1.0);
  const LinkId b = fabric.add_link(1.0);
  std::vector<TimeNs> done(2, -1);
  fabric.transfer(Route{{a}, 1.0, 0}, 1000, [&] { done[0] = sim.now(); });
  fabric.transfer(Route{{b}, 1.0, 0}, 1000, [&] { done[1] = sim.now(); });
  sim.run();
  EXPECT_EQ(done[0], 1000);
  EXPECT_EQ(done[1], 1000);
}

TEST(Fabric, PerFlowCapBindsBelowFairShare) {
  sim::Simulator sim;
  Fabric fabric(sim);
  const LinkId l = fabric.add_link(10.0);  // plenty of capacity
  TimeNs done = -1;
  fabric.transfer(Route{{l}, 2.0, 0}, 2000, [&] { done = sim.now(); });
  sim.run();
  EXPECT_EQ(done, 1000);  // capped at 2 B/ns, not 10
}

TEST(Fabric, LateFlowSlowsEarlyFlow) {
  sim::Simulator sim;
  Fabric fabric(sim);
  const LinkId l = fabric.add_link(1.0);
  TimeNs done_a = -1, done_b = -1;
  fabric.transfer(Route{{l}, 1.0, 0}, 1000, [&] { done_a = sim.now(); });
  sim.after(500, [&] {
    fabric.transfer(Route{{l}, 1.0, 0}, 1000, [&] { done_b = sim.now(); });
  });
  sim.run();
  // A runs alone for 500 (500 B left), then shares: 500 B at 0.5 = 1000 more.
  EXPECT_EQ(done_a, 1500);
  // B: 500 B at 0.5 while A lives (until 1500 -> 500 B done), then 500 B at 1.
  EXPECT_EQ(done_b, 2000);
}

TEST(Fabric, BottleneckAndCapInteraction) {
  sim::Simulator sim;
  Fabric fabric(sim);
  const LinkId l = fabric.add_link(3.0);
  // Flow 1 capped at 0.5; flows 2 and 3 uncapped share the rest (1.25 each).
  std::vector<TimeNs> done(3, -1);
  fabric.transfer(Route{{l}, 0.5, 0}, 500, [&] { done[0] = sim.now(); });
  fabric.transfer(Route{{l}, 5.0, 0}, 1250, [&] { done[1] = sim.now(); });
  fabric.transfer(Route{{l}, 5.0, 0}, 1250, [&] { done[2] = sim.now(); });
  sim.run();
  EXPECT_EQ(done[0], 1000);
  EXPECT_EQ(done[1], 1000);
  EXPECT_EQ(done[2], 1000);
}

TEST(Fabric, MultiHopLimitedByTightestLink) {
  sim::Simulator sim;
  Fabric fabric(sim);
  const LinkId wide = fabric.add_link(10.0);
  const LinkId narrow = fabric.add_link(1.0);
  TimeNs done = -1;
  fabric.transfer(Route{{wide, narrow}, 10.0, 0}, 1000,
                  [&] { done = sim.now(); });
  sim.run();
  EXPECT_EQ(done, 1000);
}

TEST(Fabric, UncontendedPolicyIgnoresSharing) {
  sim::Simulator sim;
  Fabric fabric(sim, SharingPolicy::kUncontended);
  const LinkId l = fabric.add_link(1.0);
  std::vector<TimeNs> done;
  for (int i = 0; i < 4; ++i) {
    fabric.transfer(Route{{l}, 1.0, 0}, 1000,
                    [&] { done.push_back(sim.now()); });
  }
  sim.run();
  for (TimeNs t : done) EXPECT_EQ(t, 1000);
}

TEST(Fabric, ManyFlowsConserveCapacity) {
  sim::Simulator sim;
  Fabric fabric(sim);
  const LinkId l = fabric.add_link(4.0);
  const int kFlows = 16;
  TimeNs last = 0;
  int completed = 0;
  for (int i = 0; i < kFlows; ++i) {
    fabric.transfer(Route{{l}, 10.0, 0}, 1000, [&] {
      ++completed;
      last = sim.now();
    });
  }
  sim.run();
  EXPECT_EQ(completed, kFlows);
  // 16 kB over a 4 B/ns link: exactly 4000 ns if capacity is conserved.
  EXPECT_EQ(last, 4000);
}

TEST(Fabric, RejectsBadRoutes) {
  sim::Simulator sim;
  Fabric fabric(sim);
  EXPECT_THROW(fabric.transfer(Route{{}, 0.0, 0}, 10, [] {}), adapt::Error);
  EXPECT_THROW(fabric.transfer(Route{{99}, 1.0, 0}, 10, [] {}), adapt::Error);
}

// ------------------------------------------------------------ ClusterNet ---

TEST(ClusterNet, CpuRouteLevels) {
  sim::Simulator sim;
  topo::Machine m(topo::cori(2), 64);
  ClusterNet net(sim, m);
  const Route same_socket = net.route(0, 1);
  EXPECT_EQ(same_socket.links.size(), 1u);
  EXPECT_EQ(same_socket.alpha, m.spec().intra_socket.alpha);
  const Route cross_socket = net.route(0, 16);
  EXPECT_EQ(cross_socket.links, std::vector<LinkId>{net.qpi(0)});
  const Route cross_node = net.route(0, 32);
  EXPECT_EQ(cross_node.links,
            (std::vector<LinkId>{net.nic_tx(0), net.nic_rx(1)}));
  EXPECT_EQ(cross_node.alpha, m.spec().inter_node.alpha);
}

TEST(ClusterNet, RouteToSelfRejected) {
  sim::Simulator sim;
  topo::Machine m(topo::cori(1), 4);
  ClusterNet net(sim, m);
  EXPECT_THROW(net.route(2, 2), adapt::Error);
}

TEST(ClusterNet, InterNodeFlowsContendOnNic) {
  sim::Simulator sim;
  topo::Machine m(topo::cori(3), 96);
  ClusterNet net(sim, m);
  // Two flows out of node 0 to different nodes share nic_tx(0).
  std::vector<TimeNs> done(2, -1);
  const Bytes bytes = 1000000;
  net.transfer(net.route(0, 32), bytes, [&] { done[0] = sim.now(); });
  net.transfer(net.route(1, 64), bytes, [&] { done[1] = sim.now(); });
  sim.run();
  const TimeNs solo = m.spec().inter_node.time(bytes);
  EXPECT_GT(done[0], solo + solo / 2);  // roughly halved bandwidth
  EXPECT_EQ(done[0], done[1]);
}

TEST(ClusterNet, DifferentLanesOverlapPerfectly) {
  sim::Simulator sim;
  topo::Machine m(topo::cori(2), 64);
  ClusterNet net(sim, m);
  // The paper's three-Isend example (§3.2.2): intra-socket, inter-socket and
  // inter-node transfers progress at full speed simultaneously.
  const Bytes bytes = 1000000;
  std::vector<TimeNs> done(3, -1);
  net.transfer(net.route(0, 1), bytes, [&] { done[0] = sim.now(); });
  net.transfer(net.route(0, 16), bytes, [&] { done[1] = sim.now(); });
  net.transfer(net.route(0, 32), bytes, [&] { done[2] = sim.now(); });
  sim.run();
  // Within the ceil-to-nanosecond rounding of flow completion.
  EXPECT_NEAR(done[0], m.spec().intra_socket.time(bytes), 2);
  EXPECT_NEAR(done[1], m.spec().inter_socket.time(bytes), 2);
  EXPECT_NEAR(done[2], m.spec().inter_node.time(bytes), 2);
}

TEST(ClusterNet, GpuPeerDmaVsRootPortBounce) {
  sim::Simulator sim;
  topo::Machine m(topo::psg(1), 4, topo::PlacementPolicy::kByGpu);
  GpuConfig direct{false, true};
  GpuConfig bounce{false, false};
  ClusterNet net_direct(sim, m, SharingPolicy::kFairShare, direct);
  ClusterNet net_bounce(sim, m, SharingPolicy::kFairShare, bounce);
  const Route rd = net_direct.route_mem(0, MemSpace::kDevice, 1,
                                        MemSpace::kDevice);
  EXPECT_EQ(rd.links, std::vector<LinkId>{net_direct.gpu_peer(0)});
  const Route rb = net_bounce.route_mem(0, MemSpace::kDevice, 1,
                                        MemSpace::kDevice);
  EXPECT_EQ(rb.links, (std::vector<LinkId>{net_bounce.pcie_up(0),
                                           net_bounce.pcie_down(0)}));
}

TEST(ClusterNet, GpuInterNodeCrossesNicAndPcie) {
  sim::Simulator sim;
  topo::Machine m(topo::psg(2), 8, topo::PlacementPolicy::kByGpu);
  ClusterNet net(sim, m, SharingPolicy::kFairShare, GpuConfig{true, true});
  const Route r =
      net.route_mem(0, MemSpace::kDevice, 4, MemSpace::kDevice);
  EXPECT_EQ(r.links, (std::vector<LinkId>{net.pcie_up(0), net.nic_tx(0),
                                          net.nic_rx(1), net.pcie_down(2)}));
}

TEST(ClusterNet, NoGpuDirectAddsStagingLatency) {
  sim::Simulator sim;
  topo::Machine m(topo::psg(2), 8, topo::PlacementPolicy::kByGpu);
  ClusterNet with(sim, m, SharingPolicy::kFairShare, GpuConfig{true, false});
  ClusterNet without(sim, m, SharingPolicy::kFairShare,
                     GpuConfig{false, false});
  const Route a = with.route_mem(0, MemSpace::kDevice, 4, MemSpace::kDevice);
  const Route b =
      without.route_mem(0, MemSpace::kDevice, 4, MemSpace::kDevice);
  EXPECT_GT(b.alpha, a.alpha);
}

// ------------------------------------------------------ SHM node channel ---

TEST(ClusterNet, ShmChannelRoutesSameNodePairs) {
  sim::Simulator sim;
  topo::Machine m(topo::han_cluster(2, 4), 8);
  ClusterNet net(sim, m);
  // Every same-node pair rides the per-node SHM link; cross-node pairs still
  // cross the NICs with the fabric's alpha.
  const Route same = net.route(0, 1);
  EXPECT_EQ(same.links, std::vector<LinkId>{net.shm_node(0)});
  EXPECT_EQ(same.alpha, m.spec().shm_node.alpha);
  const Route far = net.route(1, 5);
  EXPECT_EQ(far.links, (std::vector<LinkId>{net.nic_tx(0), net.nic_rx(1)}));
  EXPECT_EQ(far.alpha, m.spec().inter_node.alpha);
}

TEST(ClusterNet, ShmChannelTimingPinsFromAlphaBeta) {
  sim::Simulator sim;
  topo::Machine m(topo::han_cluster(1, 4), 4);
  ClusterNet net(sim, m);
  // A single stream below the node memory system's aggregate capacity moves
  // at exactly the channel's Hockney time.
  const Bytes bytes = 1000000;
  TimeNs done = -1;
  net.transfer(net.route(1, 3), bytes, [&] { done = sim.now(); });
  sim.run();
  EXPECT_NEAR(done, m.spec().shm_node.time(bytes), 2);
}

TEST(ClusterNet, SameNodeTrafficNeverTouchesFabricLinks) {
  sim::Simulator sim;
  topo::Machine m(topo::han_cluster(2, 4), 8);
  ClusterNet net(sim, m);
  obs::Recorder rec;
  net.fabric().set_recorder(&rec);
  // All-pairs traffic within node 0: the per-link byte counters must show
  // every byte on node 0's SHM channel and none on the QPI or NIC lanes —
  // same-node traffic is invisible to the fabric.
  Bytes sent = 0;
  for (Rank a = 0; a < 4; ++a) {
    for (Rank b = 0; b < 4; ++b) {
      if (a == b) continue;
      net.transfer(net.route(a, b), 10000, [] {});
      sent += 10000;
    }
  }
  sim.run();
  EXPECT_EQ(rec.metrics().link_bytes(net.shm_node(0)), sent);
  EXPECT_EQ(rec.metrics().link_bytes(net.shm_node(1)), 0);
  for (int node = 0; node < 2; ++node) {
    EXPECT_EQ(rec.metrics().link_bytes(net.qpi(node)), 0);
    EXPECT_EQ(rec.metrics().link_bytes(net.nic_tx(node)), 0);
    EXPECT_EQ(rec.metrics().link_bytes(net.nic_rx(node)), 0);
  }
}

TEST(ClusterNet, ShmBandwidthContendsAmongOnNodePairs) {
  sim::Simulator sim;
  topo::Machine m(topo::han_cluster(1, 16), 16);
  ClusterNet net(sim, m);
  // Eight disjoint on-node pairs stream at once. Each flow is capped at the
  // single-stream rate 1/beta = 10 B/ns, but the node memory system only
  // supplies shm_node_parallel/beta = 60 B/ns in aggregate, so the fair
  // share is 7.5 B/ns per flow — node memory bandwidth is a real, shared
  // resource, not eight private wires.
  const Bytes bytes = 1 << 20;
  int completed = 0;
  TimeNs last = 0;
  for (Rank p = 0; p < 8; ++p) {
    net.transfer(net.route(2 * p, 2 * p + 1), bytes, [&] {
      ++completed;
      last = sim.now();
    });
  }
  sim.run();
  EXPECT_EQ(completed, 8);
  const auto& spec = m.spec();
  const double share =
      spec.shm_node_parallel / spec.shm_node.beta_ns_per_byte / 8.0;
  const TimeNs expected =
      spec.shm_node.alpha +
      static_cast<TimeNs>(static_cast<double>(bytes) / share);
  EXPECT_NEAR(last, expected, 3);
  EXPECT_GT(last, spec.shm_node.time(bytes));  // slower than a solo stream
}

TEST(ClusterNet, HostLocalDeviceCopyUsesPcie) {
  sim::Simulator sim;
  topo::Machine m(topo::psg(1), 4, topo::PlacementPolicy::kByGpu);
  ClusterNet net(sim, m);
  const Route r = net.route_mem(2, MemSpace::kHost, 2, MemSpace::kDevice);
  EXPECT_EQ(r.links, std::vector<LinkId>{net.pcie_down(1)});
}

}  // namespace
}  // namespace adapt::net
