// Frame-level reliability: sequence numbers, acks, retransmit, dedup.
//
// When the fabric can drop, corrupt, or delay, every control and data message
// of the eager/rendezvous protocols becomes a *frame* on a ReliableChannel:
//
//   sender                               receiver
//   submit(frame) ──seq n, attempt a──►  on_wire: dedup, ack, deliver
//        ▲                                   │
//        └───────────── ack(n) ──────────────┘
//
// Unacked frames are retransmitted after a per-frame timeout with exponential
// backoff; after `max_retries` retransmissions the channel gives up and fails
// the frame with kErrRetryExhausted. The receiver suppresses duplicates (a
// frame is delivered at most once, re-acking copies) and discards corrupted
// frames without acking — the checksum-failure model — so corruption turns
// into loss and is healed by the same retransmit path.
//
// The channel is transport-agnostic: wire I/O, timers, upward delivery and
// give-up handling are injected, so unit tests drive it with a scripted lossy
// wire and the SimEngine drives it with the fault-injecting fabric.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>

#include "src/mpi/errors.hpp"
#include "src/mpi/match.hpp"
#include "src/support/units.hpp"

namespace adapt::obs {
class Recorder;  // src/obs/trace.hpp; hooks fire only when installed
}

namespace adapt::mpi {

struct ReliabilityConfig {
  TimeNs ack_timeout = microseconds(100);  ///< base retransmit timeout
  TimeNs per_byte = 2;   ///< timeout grows with frame size (ns per wire byte)
  double backoff = 2.0;  ///< timeout multiplier per attempt
  int max_retries = 8;   ///< retransmissions before giving up
};

/// Recovery-protocol payload, meaningful only for the kFailNotice / kRevoke /
/// kAgree frame kinds (see runtime::RecoveryService). Kept inline in the
/// Frame: the recovery kinds are control frames (wire_bytes = 0), so the
/// extra bytes never touch the data path and are copied only when recovery
/// frames actually flow.
struct RecoveryInfo {
  Rank about = -1;               ///< kFailNotice: the rank declared failed
  std::uint64_t fingerprint = 0; ///< kRevoke/kAgree: communicator identity
  std::uint32_t seq = 0;         ///< kAgree: per-comm agreement instance
  std::uint8_t phase = 0;        ///< kAgree: 0 = contribution, 1 = result
  std::uint64_t flags = 0;       ///< kAgree: contribution / decided flags
  std::uint64_t view = 0;        ///< kAgree: sender's failed-rank bitmask
};

/// One protocol message. kEager carries a full envelope; kRts carries the
/// envelope metadata only (no payload, no grant — the receiving transport
/// synthesises the grant); kCts/kBulk reference their rendezvous by the RTS
/// frame's sequence number; kAbort broadcasts an operation failure. The
/// recovery kinds (ULFM-style layer, PR 7) are alpha-only control frames:
/// kPing is a heartbeat probe whose retry exhaustion *is* the failure
/// detector, kFailNotice gossips a detected failure, kRevoke floods a
/// communicator revocation, and kAgree carries the fault-tolerant agreement
/// protocol (contributions up to the coordinator, decided results back).
struct Frame {
  enum class Kind {
    kEager, kRts, kCts, kBulk, kAbort, kPing, kFailNotice, kRevoke, kAgree
  };
  Kind kind = Kind::kEager;
  Envelope env;
  std::uint64_t rdvz = 0;
  ErrCode code = ErrCode::kOk;
  Bytes wire_bytes = 0;  ///< bytes the fabric charges for this frame
  MemSpace src_space = MemSpace::kHost;
  MemSpace dst_space = MemSpace::kHost;
  RecoveryInfo rec;      ///< recovery kinds only; defaulted otherwise
};

inline const char* frame_kind_name(Frame::Kind kind) {
  switch (kind) {
    case Frame::Kind::kEager: return "eager";
    case Frame::Kind::kRts: return "rts";
    case Frame::Kind::kCts: return "cts";
    case Frame::Kind::kBulk: return "bulk";
    case Frame::Kind::kAbort: return "abort";
    case Frame::Kind::kPing: return "ping";
    case Frame::Kind::kFailNotice: return "fail_notice";
    case Frame::Kind::kRevoke: return "revoke";
    case Frame::Kind::kAgree: return "agree";
  }
  return "?";
}

/// What actually crosses the fabric: a data frame or an ack, stamped with the
/// (seq, attempt) identity the fault injector keys its decisions on.
struct WireFrame {
  Rank src = -1;
  Rank dst = -1;
  bool is_ack = false;
  std::uint64_t seq = 0;
  int attempt = 0;
  bool corrupted = false;  ///< set by the fabric en route
  Frame frame;             ///< meaningless for acks
};

class ReliableChannel {
 public:
  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t delivered = 0;        ///< frames handed upward (post-dedup)
    std::uint64_t acked = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t duplicates = 0;       ///< received again after delivery
    std::uint64_t stale_acks = 0;       ///< acks for frames no longer pending
    std::uint64_t corrupt_discards = 0;
    std::uint64_t give_ups = 0;
  };

  /// Puts a wire frame on the fabric toward w.dst.
  using SendWire = std::function<void(const WireFrame&)>;
  /// Schedules `fn` after a virtual-time delay.
  using Timer = std::function<void(TimeNs, std::function<void()>)>;
  /// Hands a deduplicated, uncorrupted frame up to the transport.
  using Deliver = std::function<void(Rank src, const Frame&)>;
  /// Reports a frame whose retry budget is exhausted.
  using GiveUp = std::function<void(Rank peer, const Frame&, ErrCode)>;

  ReliableChannel(Rank self, ReliabilityConfig config, SendWire send_wire,
                  Timer timer, Deliver deliver, GiveUp give_up)
      : self_(self), config_(config), send_wire_(std::move(send_wire)),
        timer_(std::move(timer)), deliver_(std::move(deliver)),
        give_up_(std::move(give_up)) {}

  /// Reliably sends `frame` to `peer`; returns its sequence number.
  /// `on_acked` fires when the peer acknowledges it, `on_failed` when the
  /// retry budget is exhausted (exactly one of the two, unless shutdown()).
  std::uint64_t submit(Rank peer, Frame frame,
                       std::function<void()> on_acked = nullptr,
                       std::function<void(ErrCode)> on_failed = nullptr);

  /// Receiver entry point for everything addressed to this rank.
  void on_wire(const WireFrame& wire);

  /// Stops retransmitting and drops all pending frames without callbacks
  /// (the rank is being torn down; nothing is waiting on these any more).
  void shutdown();

  bool down() const { return down_; }
  int outstanding() const;
  const Stats& stats() const { return stats_; }

  /// Installs (or clears) the trace/metrics recorder: protocol instants
  /// (retransmits, give-ups, corrupt discards, duplicates) + counters.
  void set_recorder(obs::Recorder* rec) { rec_ = rec; }

 private:
  struct Outstanding {
    Frame frame;
    int attempt = 0;           ///< transmissions so far, minus one
    std::uint64_t timer_gen = 0;
    std::function<void()> on_acked;
    std::function<void(ErrCode)> on_failed;
  };

  /// Per-peer state. Sender side: next sequence number + unacked frames.
  /// Receiver side: delivered floor + sparse set above it (all seq <= floor
  /// have been delivered), giving O(1) dedup with bounded memory.
  struct PeerState {
    std::uint64_t next_seq = 1;
    std::map<std::uint64_t, Outstanding> unacked;
    std::uint64_t delivered_floor = 0;
    std::set<std::uint64_t> delivered_above;
  };

  void transmit(Rank peer, std::uint64_t seq);
  TimeNs timeout_for(const Outstanding& entry) const;

  Rank self_;
  ReliabilityConfig config_;
  SendWire send_wire_;
  Timer timer_;
  Deliver deliver_;
  GiveUp give_up_;
  std::map<Rank, PeerState> peers_;
  std::uint64_t timer_gen_counter_ = 0;
  bool down_ = false;
  Stats stats_;
  obs::Recorder* rec_ = nullptr;
};

}  // namespace adapt::mpi
