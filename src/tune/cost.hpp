// Analytical cost prediction for candidate collective schedules (paper
// §5.2.1: ADAPT picks its configuration from a Hockney-model estimate).
//
// The CostModel walks a concrete schedule — a Tree over a communicator, a
// pipeline segment size, an implementation style — and returns the predicted
// virtual completion time using the very parameters adapt::net simulates:
// per-lane α/β from topo::MachineSpec, the eager/rendezvous protocol split,
// per-message CPU overheads, and γ for reductions. It is a static model, not
// a simulation: per-edge FIFO transmit ports mirror the fabric's per-pair
// serialisation, and a max–min water-filling pass over the shared links
// (shm / QPI / NIC) estimates steady-state contention. verify_guidelines
// pins how far this estimate may drift from the simulator.
#pragma once

#include "src/coll/coll.hpp"
#include "src/coll/tree.hpp"
#include "src/mpi/comm.hpp"
#include "src/topo/hardware.hpp"

namespace adapt::tune {

/// The collectives the decision engine tunes.
enum class Op { kBcast, kReduce };

const char* op_name(Op op);
bool op_from_name(const std::string& name, Op* out);

/// One candidate schedule to price.
struct Workload {
  Op op = Op::kBcast;
  coll::Style style = coll::Style::kAdapt;
  Bytes bytes = 0;
  Bytes segment = kib(64);     ///< pipeline granularity (>= 1)
  double gamma_scale = 1.0;    ///< reduction cost multiplier
};

class CostModel {
 public:
  explicit CostModel(const topo::Machine& machine) : machine_(machine) {}

  /// Predicted completion time of `work` run over `tree` (local ranks of
  /// `comm`, like coll::bcast/reduce take it). Deterministic, no engine.
  TimeNs predict(const Workload& work, const mpi::Comm& comm,
                 const coll::Tree& tree) const;

  const topo::Machine& machine() const { return machine_; }

 private:
  const topo::Machine& machine_;
};

}  // namespace adapt::tune
