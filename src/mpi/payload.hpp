// Payload views: the unit of data the runtime moves.
//
// A view is either *real* (points at actual bytes, which the transport copies
// end-to-end so correctness is testable) or *synthetic* (size-only; used at
// paper scale where materialising 1.5k ranks × 4 MB is pointless — the timing
// model only ever reads sizes). Real and synthetic payloads follow identical
// code paths; only the final memcpy/arithmetic is skipped for synthetic ones.
#pragma once

#include <cstddef>
#include <vector>

#include "src/support/error.hpp"
#include "src/support/units.hpp"

namespace adapt::mpi {

/// Read-only view of send data.
struct ConstView {
  const std::byte* data = nullptr;  ///< null for synthetic views
  Bytes size = 0;

  bool synthetic() const { return data == nullptr; }
  ConstView slice(Bytes offset, Bytes len) const {
    ADAPT_CHECK(offset >= 0 && len >= 0 && offset + len <= size);
    return ConstView{data ? data + offset : nullptr, len};
  }
};

/// Writable view of receive space.
struct MutView {
  std::byte* data = nullptr;  ///< null for synthetic views
  Bytes size = 0;

  bool synthetic() const { return data == nullptr; }
  MutView slice(Bytes offset, Bytes len) const {
    ADAPT_CHECK(offset >= 0 && len >= 0 && offset + len <= size);
    return MutView{data ? data + offset : nullptr, len};
  }
  ConstView as_const() const { return ConstView{data, size}; }
};

/// Owning buffer with view accessors; `Payload::synthetic(n)` produces a
/// size-only payload that never allocates.
class Payload {
 public:
  Payload() = default;

  static Payload real(Bytes size) {
    Payload p;
    p.size_ = size;
    p.bytes_.resize(static_cast<std::size_t>(size));
    return p;
  }
  static Payload synthetic(Bytes size) {
    Payload p;
    p.size_ = size;
    return p;
  }

  Bytes size() const { return size_; }
  bool is_real() const { return !bytes_.empty() || size_ == 0; }

  MutView view() { return MutView{bytes_.empty() ? nullptr : bytes_.data(), size_}; }
  ConstView cview() const {
    return ConstView{bytes_.empty() ? nullptr : bytes_.data(), size_};
  }
  std::byte* data() { return bytes_.data(); }
  const std::byte* data() const { return bytes_.data(); }

 private:
  Bytes size_ = 0;
  std::vector<std::byte> bytes_;
};

}  // namespace adapt::mpi
