# Empty dependencies file for fig09_msgsize.
# This may be replaced when dependencies are built.
