// Quickstart: the smallest complete ADAPT program.
//
// Eight ranks (real OS threads) broadcast a message with the event-driven
// ADAPT algorithm over a topology-aware tree, then reduce a vector back to
// rank 0 — the two collectives the paper evaluates. Swap ThreadEngine for
// SimEngine and the identical program runs at cluster scale in virtual time.
//
//   ./quickstart [--ranks N]
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "src/coll/coll.hpp"
#include "src/coll/topo_tree.hpp"
#include "src/runtime/thread_engine.hpp"
#include "src/topo/presets.hpp"

using namespace adapt;

int main(int argc, char** argv) {
  int ranks = 8;
  for (int i = 1; i + 1 < argc + 1; ++i) {
    if (std::string(argv[i]) == "--ranks" && i + 1 < argc)
      ranks = std::atoi(argv[i + 1]);
  }

  // Describe the hardware (here: one dual-socket node) and place the ranks.
  topo::Machine machine(topo::cori(/*nodes=*/1), ranks);
  runtime::ThreadEngine engine(machine);
  const mpi::Comm world = mpi::Comm::world(ranks);

  // A topology-aware communication tree, chains at every level (§3.2).
  const coll::Tree tree = coll::build_topo_tree(machine, world, /*root=*/0);

  const std::string message = "hello from the ADAPT event-driven broadcast";
  std::vector<std::vector<char>> inbox(static_cast<std::size_t>(ranks),
                                       std::vector<char>(message.size()));
  std::copy(message.begin(), message.end(), inbox[0].begin());

  std::vector<std::vector<double>> contrib(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    contrib[static_cast<std::size_t>(r)] = {1.0 * r, 0.5};
  }

  auto program = [&](runtime::Context& ctx) -> sim::Task<> {
    const auto me = static_cast<std::size_t>(ctx.rank());

    // Event-driven broadcast (Algorithm 3): callbacks below Isend/Irecv keep
    // N sends per child and M receives in flight, no Waitall anywhere.
    co_await coll::bcast(
        ctx, world,
        mpi::MutView{reinterpret_cast<std::byte*>(inbox[me].data()),
                     static_cast<Bytes>(message.size())},
        /*root=*/0, tree, coll::Style::kAdapt,
        coll::CollOpts{.segment_size = 16});

    // Event-driven reduce: segments flow up the same tree as soon as every
    // child contributed, independently of one another.
    co_await coll::reduce(
        ctx, world,
        mpi::MutView{reinterpret_cast<std::byte*>(contrib[me].data()), 16},
        mpi::ReduceOp::kSum, mpi::Datatype::kDouble, /*root=*/0, tree,
        coll::Style::kAdapt, coll::CollOpts{.segment_size = 16});
  };

  engine.run(program);

  for (int r = 0; r < ranks; ++r) {
    std::cout << "rank " << r << " received: \""
              << std::string(inbox[static_cast<std::size_t>(r)].begin(),
                             inbox[static_cast<std::size_t>(r)].end())
              << "\"\n";
  }
  std::cout << "reduce(sum) at root: [" << contrib[0][0] << ", "
            << contrib[0][1] << "]  (expected ["
            << ranks * (ranks - 1) / 2.0 << ", " << ranks * 0.5 << "])\n";
  return 0;
}
