#include "src/coll/eventual.hpp"

#include <cstring>
#include <memory>
#include <vector>

#include "src/coll/detail.hpp"
#include "src/mpi/comm_ft.hpp"
#include "src/runtime/recovery.hpp"

namespace adapt::coll {

namespace {

/// Shared state between the op, the per-request completion callbacks, and
/// the detached deadline coroutine. shared_ptr-owned so a contribution that
/// arrives *after* the op returned (or never) still has valid scratch to
/// land in — nothing dangles, it is simply not folded.
struct EcShared {
  sim::Trigger wake;  ///< fired by the deadline or by the last completion
  int finished = 0;
  int expected = 0;
  std::vector<mpi::Payload> scratch;
  std::vector<mpi::RequestPtr> reqs;
};

sim::Task<> ec_deadline(runtime::Context& ctx, TimeNs staleness,
                        std::shared_ptr<EcShared> sh) {
  co_await ctx.sleep_for(staleness);
  sh->wake.fire();
}

/// RAII poison shield + pre-op re-arm (see header).
struct ShieldGuard {
  runtime::Recovery* rec;
  explicit ShieldGuard(runtime::Recovery* r) : rec(r) {
    if (rec) {
      rec->clear_poison();
      rec->acquire_poison_shield();
    }
  }
  ShieldGuard(const ShieldGuard&) = delete;
  ShieldGuard& operator=(const ShieldGuard&) = delete;
  ~ShieldGuard() {
    if (rec) rec->release_poison_shield();
  }
};

TimeNs resolve_staleness(runtime::Recovery* rec, const EcOpts& opts) {
  if (opts.staleness > 0) return opts.staleness;
  return rec ? rec->options().staleness_bound : milliseconds(30);
}

/// Wait for the wake trigger, then hop back to this rank's MAIN context —
/// the trigger may fire inline on the progress context (last completion) or
/// on the raw timer (deadline), and the caller's control flow belongs on the
/// application thread.
sim::Task<> await_wake(runtime::Context& ctx, std::shared_ptr<EcShared> sh) {
  if (sh->expected > 0 && sh->finished < sh->expected) co_await sh->wake;
  co_await sim::Suspend([&ctx](std::coroutine_handle<> h) {
    ctx.defer(0, [h] { h.resume(); });
  });
}

}  // namespace

sim::Task<EcResult> ec_allreduce(runtime::Context& ctx, const mpi::Comm& comm,
                                 mpi::MutView accum, mpi::ReduceOp op,
                                 mpi::Datatype dtype, const EcOpts& opts) {
  const Rank me = ctx.rank();
  ADAPT_CHECK(comm.contains(me));
  detail::CollSpan span(ctx, "ec_allreduce", "eventual", accum.size);
  runtime::Recovery* rec = ctx.recovery();
  const ShieldGuard shield(rec);
  const TimeNs staleness = resolve_staleness(rec, opts);
  const std::uint64_t known_failed = rec ? rec->failed_mask() : 0;
  const Tag tag = ctx.alloc_tags(1);
  const int n = comm.size();

  auto sh = std::make_shared<EcShared>();
  sh->scratch.resize(static_cast<std::size_t>(n));
  sh->reqs.resize(static_cast<std::size_t>(n));
  // Pre-post one receive per live peer (scratch-backed: a late frame lands
  // in the scratch, never in the caller's buffer), then fire the sends.
  for (int i = 0; i < n; ++i) {
    const Rank peer = comm.global(i);
    if (peer == me || ((known_failed >> peer) & 1u)) continue;
    sh->scratch[static_cast<std::size_t>(i)] =
        mpi::Payload::scratch(ctx.pool(), accum.size, accum.synthetic());
    auto req = ctx.irecv(peer, tag,
                         sh->scratch[static_cast<std::size_t>(i)].view());
    sh->reqs[static_cast<std::size_t>(i)] = req;
    ++sh->expected;
    req->set_completion_cb([sh](mpi::Request&) {
      if (++sh->finished == sh->expected) sh->wake.fire();
    });
  }
  for (int i = 0; i < n; ++i) {
    const Rank peer = comm.global(i);
    if (peer == me || ((known_failed >> peer) & 1u)) continue;
    ctx.isend(peer, tag, accum.as_const());  // fire-and-forget
  }
  sim::run_detached(ec_deadline(ctx, staleness, sh), [](std::exception_ptr) {});
  co_await await_wake(ctx, sh);

  // Fold whatever arrived, in member order — deterministic, and independent
  // of arrival order for commutative ops.
  EcResult res;
  res.contributors = 1ull << me;
  for (int i = 0; i < n; ++i) {
    const mpi::RequestPtr& req = sh->reqs[static_cast<std::size_t>(i)];
    if (!req || !req->complete() || req->failed()) continue;
    detail::apply_if_real(accum,
                          sh->scratch[static_cast<std::size_t>(i)].cview(), op,
                          dtype, accum.size);
    res.contributors |= 1ull << comm.global(i);
  }
  res.complete = res.contributors == mpi::member_mask(comm);
  co_return res;
}

sim::Task<EcResult> ec_bcast(runtime::Context& ctx, const mpi::Comm& comm,
                             mpi::MutView buffer, Rank root,
                             const EcOpts& opts) {
  const Rank me = ctx.rank();
  ADAPT_CHECK(comm.contains(me));
  ADAPT_CHECK(comm.contains(root));
  detail::CollSpan span(ctx, "ec_bcast", "eventual", buffer.size);
  runtime::Recovery* rec = ctx.recovery();
  const ShieldGuard shield(rec);
  const TimeNs staleness = resolve_staleness(rec, opts);
  const std::uint64_t known_failed = rec ? rec->failed_mask() : 0;
  const Tag tag = ctx.alloc_tags(1);

  EcResult res;
  res.contributors = 1ull << me;
  if (me == root) {
    // The root has the payload by definition; its sends are fire-and-forget
    // (a dead receiver costs nothing but a retry chain that gives up).
    for (int i = 0; i < comm.size(); ++i) {
      const Rank peer = comm.global(i);
      if (peer == me || ((known_failed >> peer) & 1u)) continue;
      ctx.isend(peer, tag, buffer.as_const());
    }
    res.complete = true;
    co_return res;
  }
  if ((known_failed >> root) & 1u) {
    co_return res;  // known-dead source: nothing will ever arrive
  }
  auto sh = std::make_shared<EcShared>();
  sh->scratch.resize(1);
  sh->reqs.resize(1);
  sh->scratch[0] =
      mpi::Payload::scratch(ctx.pool(), buffer.size, buffer.synthetic());
  auto req = ctx.irecv(root, tag, sh->scratch[0].view());
  sh->reqs[0] = req;
  sh->expected = 1;
  req->set_completion_cb([sh](mpi::Request&) {
    if (++sh->finished == sh->expected) sh->wake.fire();
  });
  sim::run_detached(ec_deadline(ctx, staleness, sh), [](std::exception_ptr) {});
  co_await await_wake(ctx, sh);

  if (req->complete() && !req->failed()) {
    if (!buffer.synthetic() && buffer.size > 0) {
      std::memcpy(buffer.data, sh->scratch[0].data(),
                  static_cast<std::size_t>(buffer.size));
    }
    res.contributors |= 1ull << root;
    res.complete = true;
  }
  co_return res;
}

}  // namespace adapt::coll
