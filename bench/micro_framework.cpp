// Micro-benchmarks of the framework's hot internals (google-benchmark):
// event-queue throughput, fluid-flow rebalancing, matching, tree builders and
// the end-to-end simulated-message rate. These guard the simulator's own
// performance, which bounds how large a cluster the figure benches can model.
#include <benchmark/benchmark.h>

#include "src/coll/coll.hpp"
#include "src/coll/topo_tree.hpp"
#include "src/mpi/match.hpp"
#include "src/net/fabric.hpp"
#include "src/obs/trace.hpp"
#include "src/runtime/sim_engine.hpp"
#include "src/sim/simulator.hpp"
#include "src/support/rng.hpp"
#include "src/topo/presets.hpp"

namespace {

using namespace adapt;

void BM_EventQueuePushPop(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  for (auto _ : state) {
    sim::EventQueue q;
    for (int i = 0; i < n; ++i) {
      q.push(static_cast<TimeNs>(rng.next_below(1 << 20)), [] {});
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop().second);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1024)->Arg(16384);

void BM_FabricContendedFlows(benchmark::State& state) {
  const int flows = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    net::Fabric fabric(sim);
    const net::LinkId link = fabric.add_link(8.0);
    for (int i = 0; i < flows; ++i) {
      fabric.transfer(net::Route{{link}, 1.0, 100}, 100000, [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(fabric.flows_completed());
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_FabricContendedFlows)->Arg(16)->Arg(256);

void BM_MatcherThroughput(benchmark::State& state) {
  const int msgs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    mpi::Matcher matcher;
    for (int i = 0; i < msgs; ++i) {
      mpi::PostedRecv recv{nullptr, mpi::MutView{}, 0, i};
      matcher.post(std::move(recv));
    }
    for (int i = msgs - 1; i >= 0; --i) {
      mpi::Envelope env;
      env.src = 0;
      env.tag = i;
      benchmark::DoNotOptimize(matcher.arrive(env));
    }
  }
  state.SetItemsProcessed(state.iterations() * msgs);
}
BENCHMARK(BM_MatcherThroughput)->Arg(64)->Arg(512);

void BM_TopoTreeBuild(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  topo::Machine machine(topo::cori((ranks + 31) / 32), ranks);
  const mpi::Comm world = mpi::Comm::world(ranks);
  for (auto _ : state) {
    benchmark::DoNotOptimize(coll::build_topo_tree(machine, world, 0));
  }
}
BENCHMARK(BM_TopoTreeBuild)->Arg(128)->Arg(1024);

void BM_SimulatedBcast(benchmark::State& state) {
  // End-to-end simulator rate: one ADAPT broadcast per iteration.
  const int ranks = static_cast<int>(state.range(0));
  topo::Machine machine(topo::cori((ranks + 31) / 32), ranks);
  const mpi::Comm world = mpi::Comm::world(ranks);
  const coll::Tree tree = coll::build_topo_tree(machine, world, 0);
  for (auto _ : state) {
    runtime::SimEngine engine(machine);
    auto program = [&](runtime::Context& ctx) -> sim::Task<> {
      co_await coll::bcast(ctx, world, mpi::MutView{nullptr, mib(1)}, 0, tree,
                           coll::Style::kAdapt,
                           coll::CollOpts{.segment_size = kib(128)});
    };
    engine.run(program);
    benchmark::DoNotOptimize(engine.simulator().events_processed());
  }
}
BENCHMARK(BM_SimulatedBcast)->Arg(64)->Arg(512)->Unit(benchmark::kMillisecond);

// Zero-overhead guard for the fault-injection layer: the same end-to-end
// broadcast with fault injection DISABLED (the default-constructed plan) and
// with a lossless-but-enabled injector. Compare against BM_SimulatedBcast —
// the disabled variant must be indistinguishable from it (the hot path is
// one null-pointer branch in Fabric::transfer_tagged), while the enabled
// variant bounds the price of turning chaos on.
void BM_SimulatedBcastFaultsDisabled(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  topo::Machine machine(topo::cori((ranks + 31) / 32), ranks);
  const mpi::Comm world = mpi::Comm::world(ranks);
  const coll::Tree tree = coll::build_topo_tree(machine, world, 0);
  for (auto _ : state) {
    runtime::SimEngineOptions options;  // options.faults stays disabled
    runtime::SimEngine engine(machine, options);
    auto program = [&](runtime::Context& ctx) -> sim::Task<> {
      co_await coll::bcast(ctx, world, mpi::MutView{nullptr, mib(1)}, 0, tree,
                           coll::Style::kAdapt,
                           coll::CollOpts{.segment_size = kib(128)});
    };
    engine.run(program);
    benchmark::DoNotOptimize(engine.simulator().events_processed());
  }
}
BENCHMARK(BM_SimulatedBcastFaultsDisabled)
    ->Arg(64)
    ->Arg(512)
    ->Unit(benchmark::kMillisecond);

void BM_SimulatedBcastFaultsLossless(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  topo::Machine machine(topo::cori((ranks + 31) / 32), ranks);
  const mpi::Comm world = mpi::Comm::world(ranks);
  const coll::Tree tree = coll::build_topo_tree(machine, world, 0);
  for (auto _ : state) {
    runtime::SimEngineOptions options;
    // Enabled injector (an outage in the far future) that never actually
    // drops anything: measures the per-transmission decision cost alone.
    options.faults.outages.push_back(
        {0, 1, -1, seconds(1e6), seconds(1e6) + 1});
    runtime::SimEngine engine(machine, options);
    auto program = [&](runtime::Context& ctx) -> sim::Task<> {
      co_await coll::bcast(ctx, world, mpi::MutView{nullptr, mib(1)}, 0, tree,
                           coll::Style::kAdapt,
                           coll::CollOpts{.segment_size = kib(128)});
    };
    engine.run(program);
    benchmark::DoNotOptimize(engine.simulator().events_processed());
  }
}
BENCHMARK(BM_SimulatedBcastFaultsLossless)
    ->Arg(64)
    ->Arg(512)
    ->Unit(benchmark::kMillisecond);

// Zero-overhead guard for the observability layer, mirroring the fault
// guards above: with a DISABLED recorder attached the engine installs no
// hooks at all, so the run must be indistinguishable from BM_SimulatedBcast
// (each hot path pays exactly one null-pointer test). The enabled variant
// bounds the full price of tracing everything.
void BM_SimulatedBcastTraceDisabled(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  topo::Machine machine(topo::cori((ranks + 31) / 32), ranks);
  const mpi::Comm world = mpi::Comm::world(ranks);
  const coll::Tree tree = coll::build_topo_tree(machine, world, 0);
  for (auto _ : state) {
    runtime::SimEngineOptions options;
    options.recorder = std::make_shared<obs::Recorder>(/*enabled=*/false);
    runtime::SimEngine engine(machine, options);
    auto program = [&](runtime::Context& ctx) -> sim::Task<> {
      co_await coll::bcast(ctx, world, mpi::MutView{nullptr, mib(1)}, 0, tree,
                           coll::Style::kAdapt,
                           coll::CollOpts{.segment_size = kib(128)});
    };
    engine.run(program);
    benchmark::DoNotOptimize(engine.simulator().events_processed());
  }
}
BENCHMARK(BM_SimulatedBcastTraceDisabled)
    ->Arg(64)
    ->Arg(512)
    ->Unit(benchmark::kMillisecond);

void BM_SimulatedBcastTraceEnabled(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  topo::Machine machine(topo::cori((ranks + 31) / 32), ranks);
  const mpi::Comm world = mpi::Comm::world(ranks);
  const coll::Tree tree = coll::build_topo_tree(machine, world, 0);
  for (auto _ : state) {
    runtime::SimEngineOptions options;
    options.recorder = std::make_shared<obs::Recorder>();
    runtime::SimEngine engine(machine, options);
    auto program = [&](runtime::Context& ctx) -> sim::Task<> {
      co_await coll::bcast(ctx, world, mpi::MutView{nullptr, mib(1)}, 0, tree,
                           coll::Style::kAdapt,
                           coll::CollOpts{.segment_size = kib(128)});
    };
    engine.run(program);
    benchmark::DoNotOptimize(options.recorder->event_count());
  }
}
BENCHMARK(BM_SimulatedBcastTraceEnabled)
    ->Arg(64)
    ->Arg(512)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
