// Guideline verification for the adaptive decision engine (src/tune).
//
// Hunold-style self-consistency checking (PAPERS.md: "Tuning MPI Collectives
// by Verifying Performance Guidelines"): instead of trusting the tuner's
// analytical model, every guideline below is verified MECHANICALLY against
// simulated virtual times across a sweep of machines, ranks and message
// sizes:
//
//   model-sim      the model's prediction for the tuned choice is within
//                  GuidelineOptions::model_tolerance of the simulated time
//                  (the model may abstract, it may not mislead);
//   tuned-best     the tuned choice, simulated, is no worse than every
//                  forced candidate in its grid (within sim_tolerance);
//   segmentation   above the pipeline threshold the tuned choice never
//                  loses to the unsegmented (whole-message) candidate;
//   composition    tuned bcast(m) <= scatter(m) + allgather(m) composed
//                  (the classic MPI performance guideline);
//   monotone       tuned time is non-decreasing in message size
//                  (T(m/2) <= (1 + tol) * T(m)).
//
// Failures carry shrinking one-line reproducers in the src/verify house
// style: `verify_guidelines --repro '<line>'` replays exactly one check.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/topo/hardware.hpp"
#include "src/tune/tuner.hpp"

namespace adapt::verify {

enum class Guideline {
  kModelSim,
  kTunedBest,
  kSegmentation,
  kComposition,
  kMonotone,
};

const char* guideline_name(Guideline g);
bool guideline_from_name(const std::string& name, Guideline* out);

/// One sweep point. `cluster` is a topo::preset name or "uniform" (every
/// rank on its own single-core node, identical lanes — the closed-form
/// regime); for "uniform" the node count follows `ranks`.
struct GuidelineCase {
  std::string cluster = "cori";
  int nodes = 2;
  int ranks = 16;
  tune::Op op = tune::Op::kBcast;
  Bytes bytes = kib(256);
};

/// The machine a case runs on (placement kByCore, nranks == case.ranks).
topo::Machine guideline_machine(const GuidelineCase& config);

std::string guideline_repro(const GuidelineCase& config, Guideline g);
bool parse_guideline_repro(const std::string& line, GuidelineCase* config,
                           Guideline* g);

struct GuidelineFailure {
  GuidelineCase config;  ///< already shrunk when GuidelineOptions::shrink
  Guideline guideline = Guideline::kModelSim;
  std::string detail;
  std::string repro;
};

struct GuidelineReport {
  int cases = 0;
  int checks = 0;     ///< guideline checks executed
  long sim_runs = 0;  ///< SimEngine runs spent on them
  std::vector<GuidelineFailure> failures;
  bool ok() const { return failures.empty(); }
  std::string summary() const;
};

struct GuidelineOptions {
  /// Maximum relative model-vs-simulation error |pred - sim| / sim for the
  /// model-sim guideline. Calibrated against the default sweep (worst
  /// observed drift 0.44, on small multi-child bcasts where the static
  /// all-edges-active contention pass is pessimistic); rationale in
  /// DESIGN.md §11.
  double model_tolerance = 0.5;
  /// Slack for sim-vs-sim comparisons (tuned-best, segmentation,
  /// composition, monotone): tuned <= (1 + sim_tolerance) * bound. Worst
  /// observed: tuned-best 1.145 (model mis-ranking), composition 1.232
  /// (the candidate grid has no scatter+allgather family); DESIGN.md §11.
  double sim_tolerance = 0.25;
  bool shrink = true;  ///< minimise failing cases before reporting
  int jobs = 1;        ///< worker threads over cases (report is jobs-invariant)
  std::function<void(const std::string&)> log;
  /// Called with each check's repro line just before it runs (watchdog hook).
  std::function<void(const std::string&)> on_run;
};

/// The default sweep: {cori, stampede2, uniform} x ranks x {bcast, reduce}
/// x message sizes from 64 KiB to 2 MiB.
std::vector<GuidelineCase> guideline_sweep();

/// Runs one guideline check, self-contained (builds machine + tuner, runs
/// the simulations). Returns nullopt on pass, a detail string on violation.
/// `sim_runs`, when non-null, is incremented by the number of engine runs.
std::optional<std::string> check_guideline(const GuidelineCase& config,
                                           Guideline g,
                                           const GuidelineOptions& options,
                                           long* sim_runs = nullptr);

/// Every applicable guideline for every case, fanned across options.jobs
/// workers (merged in case order — the report is identical for any jobs).
GuidelineReport run_guidelines(const std::vector<GuidelineCase>& cases,
                               const GuidelineOptions& options);

/// Simulated virtual completion time of one explicit tuned configuration —
/// exposed for unit tests and --repro replays.
TimeNs simulate_decision(const topo::Machine& machine, tune::Op op, int ranks,
                         const tune::Decision& decision, Bytes bytes);

/// The sweep's decision tables (one per distinct machine, JSON) — the
/// artifact CI uploads next to any failure reproducers.
std::string dump_decision_tables(const std::vector<GuidelineCase>& cases);

}  // namespace adapt::verify
