#include "src/support/frame_arena.hpp"

#include <algorithm>
#include <bit>
#include <new>

namespace adapt::support {

namespace {

/// Block prefix: the owning arena (null = plain heap) and the block's
/// rounded capacity. 16 bytes keeps the frame max_align_t-aligned.
struct alignas(std::max_align_t) FrameHeader {
  FrameArena* arena;
  std::uint64_t capacity;  ///< rounded block size, header included
};
static_assert(sizeof(FrameHeader) == 16);

thread_local FrameArena* t_arena = nullptr;

int class_of(std::size_t bytes) {
  if (bytes <= FrameArena::kMinBlock) return 0;
  return std::bit_width(bytes - 1) -
         std::bit_width(FrameArena::kMinBlock - 1);
}

std::size_t capacity_of(int size_class) {
  return FrameArena::kMinBlock << size_class;
}

}  // namespace

FrameArena::~FrameArena() {
  for (int c = 0; c < kClasses; ++c) {
    void* p = free_[c];
    while (p != nullptr) {
      void* next = *static_cast<void**>(p);
      ::operator delete(p);
      p = next;
    }
  }
}

void* FrameArena::allocate(std::size_t bytes) {
  const int c = class_of(bytes);
  std::size_t capacity = bytes;
  void* block = nullptr;
  if (c < kClasses) {
    capacity = capacity_of(c);
    block = free_[c];
    if (block != nullptr) {
      free_[c] = *static_cast<void**>(block);
      cached_bytes_ -= capacity;
    }
  }
  if (block == nullptr) block = ::operator new(capacity);
  live_bytes_ += capacity;
  peak_bytes_ = std::max(peak_bytes_, live_bytes_);
  total_bytes_ += capacity;
  return block;
}

void FrameArena::deallocate(void* p, std::size_t bytes) {
  const int c = class_of(bytes);
  std::size_t capacity = bytes;
  if (c < kClasses) {
    capacity = capacity_of(c);
    *static_cast<void**>(p) = free_[c];
    free_[c] = p;
    cached_bytes_ += capacity;
  } else {
    ::operator delete(p);
  }
  live_bytes_ -= capacity;
}

FrameArena* FrameArena::current() { return t_arena; }

FrameArena::Scope::Scope(FrameArena* arena) : prev_(t_arena) {
  t_arena = arena;
}

FrameArena::Scope::~Scope() { t_arena = prev_; }

void* frame_alloc(std::size_t bytes) {
  const std::size_t total = bytes + sizeof(FrameHeader);
  FrameArena* arena = t_arena;
  void* raw = arena ? arena->allocate(total) : ::operator new(total);
  auto* header = static_cast<FrameHeader*>(raw);
  header->arena = arena;
  header->capacity = total;
  return header + 1;
}

void frame_free(void* p, std::size_t /*bytes*/) noexcept {
  auto* header = static_cast<FrameHeader*>(p) - 1;
  if (header->arena != nullptr) {
    header->arena->deallocate(header, header->capacity);
  } else {
    ::operator delete(header);
  }
}

}  // namespace adapt::support
