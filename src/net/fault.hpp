// Deterministic fault injection for the network fabric.
//
// A FaultPlan describes a fault schedule: per-message drop / corrupt / extra
// delay probabilities, link-down intervals, and permanent rank deaths. A
// FaultInjector evaluates the plan for one wire transmission at a time.
//
// Determinism contract: the fate of a transmission is a pure function of
// (plan seed, src, dst, seq, attempt, kind) — it does NOT depend on virtual
// time, on event order, or on how many other decisions were made before it.
// That makes fault schedules replayable from a single seed *and* independent
// of PR 1's schedule perturbation: perturbing the event queue reorders
// deliveries but never changes which transmissions are dropped, so a chaos
// reproducer line stays a reproducer under any jitter seed. (Outages and
// deaths are the deliberate exception — they are windows in virtual time.)
#pragma once

#include <cstdint>
#include <vector>

#include "src/support/units.hpp"

namespace adapt::net {

using LinkId = int;

/// Identity of one wire transmission; `attempt` distinguishes retransmits of
/// the same frame, `kind` separates frame classes (data/ack/...) so an ack
/// and its data frame roll independent dice.
struct FaultKey {
  Rank src = -1;
  Rank dst = -1;
  std::uint64_t seq = 0;
  int attempt = 0;
  int kind = 0;
};

/// Outcome of one transmission. Dropped and corrupted transmissions still
/// traverse the fabric (they occupy bandwidth); the fate only tells the
/// caller what arrives at the far end.
struct TransferFate {
  bool delivered = true;
  bool corrupted = false;
  TimeNs delay = 0;         ///< extra latency added on top of route alpha
  std::uint64_t salt = 0;   ///< deterministic per-message entropy (corruption)
};

struct FaultPlan {
  std::uint64_t seed = 1;

  double drop = 0.0;     ///< per-transmission loss probability
  double corrupt = 0.0;  ///< per-transmission payload-corruption probability
  TimeNs max_delay = 0;  ///< extra delay drawn uniformly from [0, max_delay]

  /// A link-down interval: while now ∈ [from, until), every transmission
  /// between the rank pair {a, b} (either direction), or crossing `link` if
  /// a is negative, is dropped.
  struct Outage {
    Rank a = -1, b = -1;
    LinkId link = -1;
    TimeNs from = 0;
    TimeNs until = 0;
  };
  std::vector<Outage> outages;

  /// Permanent rank death: from `at` onward nothing is delivered to or from
  /// the rank. The dead rank's program keeps running — it discovers the
  /// partition the same way its peers do, through timeouts.
  struct Death {
    Rank rank = -1;
    TimeNs at = 0;
  };
  std::vector<Death> deaths;

  bool enabled() const {
    return drop > 0 || corrupt > 0 || max_delay > 0 || !outages.empty() ||
           !deaths.empty();
  }
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

  /// Decides the fate of one transmission crossing `links` at virtual time
  /// `now`. Pure in the key (see the determinism contract above).
  TransferFate decide(const FaultKey& key, const std::vector<LinkId>& links,
                      TimeNs now) const;

  /// True once `rank` has permanently died by time `now`.
  bool dead(Rank rank, TimeNs now) const;

  const FaultPlan& plan() const { return plan_; }

  // -- stats (for tests and chaos-run summaries) --------------------------
  std::uint64_t decisions() const { return decisions_; }
  std::uint64_t drops() const { return drops_; }
  std::uint64_t corruptions() const { return corruptions_; }

 private:
  FaultPlan plan_;
  mutable std::uint64_t decisions_ = 0;
  mutable std::uint64_t drops_ = 0;
  mutable std::uint64_t corruptions_ = 0;
};

}  // namespace adapt::net
