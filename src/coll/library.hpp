// MPI "library personalities": the algorithm + synchronisation structures of
// the libraries the paper compares against, expressed in this framework.
//
// The real comparators are closed source; what the paper observes about them
// (and what drives every figure) is WHICH algorithm family and HOW much
// synchronisation each uses. Each personality here pins those two choices:
//
//   ompi-adapt          ADAPT event-driven + single-comm topo tree (chains);
//                       consults the run's tuner (Context::tuner()) instead
//                       of the heuristics when SimEngineOptions::tuning is set
//   ompi-adapt-tuned    ompi-adapt with its own always-on decision engine
//                       (src/tune): topology/segment/radix from the Hockney
//                       cost model, cached per (op, comm size, size bucket)
//   ompi-han            HAN-style two-level: one fused tree (binomial over
//                       node leaders + k-nomial per node over the SHM
//                       channel) under the event-driven style, levels
//                       overlapping at segment granularity
//   ompi-default        Open MPI "tuned": nonblocking + Waitall, rank-order
//                       trees, message-size decision rules
//   ompi-default-topo   tuned's nonblocking style on ADAPT's topo tree
//                       (isolates the Waitall penalty, Fig. 8)
//   cray                topology-aware but blocking-P2P pipelines
//   mvapich             blocking k-nomial, rank-order
//   intel               hierarchical multi-communicator (SHM-based k-nomial),
//                       sequential levels, vectorised reduction
//   intel-topo-*        the Fig. 8 Intel algorithm variants
//
// Tuning constants (segment sizes, radices, γ scales) are this model's
// honest knobs; EXPERIMENTS.md records them next to the results.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/coll/coll.hpp"
#include "src/topo/hardware.hpp"

namespace adapt::coll {

class MpiLibrary {
 public:
  virtual ~MpiLibrary() = default;
  virtual std::string name() const = 0;
  virtual sim::Task<> bcast(runtime::Context& ctx, const mpi::Comm& comm,
                            mpi::MutView buffer, Rank root) = 0;
  virtual sim::Task<> reduce(runtime::Context& ctx, const mpi::Comm& comm,
                             mpi::MutView accum, mpi::ReduceOp op,
                             mpi::Datatype dtype, Rank root) = 0;
};

/// Instantiates a personality bound to a machine. Known names: the four
/// end-to-end libraries above plus every Fig. 8 variant (see
/// intel_topo_bcast_variants / intel_topo_reduce_variants).
std::shared_ptr<MpiLibrary> make_library(const std::string& name,
                                         const topo::Machine& machine);

/// End-to-end comparison sets (Figs. 7, 9, 10).
std::vector<std::string> end_to_end_libraries(const std::string& cluster);

/// The Fig. 8 legend entries.
std::vector<std::string> intel_topo_bcast_variants();
std::vector<std::string> intel_topo_reduce_variants();

/// Pipeline segment size the personalities use for a message (shared by
/// ADAPT and the topo-aware baselines): whole message below 64 KB, then
/// msg/16 clamped to [16 KB, 128 KB] so pipelines have enough segments.
Bytes default_segment_size(Bytes message);

}  // namespace adapt::coll
