// Figure 10: strong scalability of broadcast and reduce with CPU data on
// Cori — 4 MB message, 8 to 32 nodes (128-1024 ranks at the paper's
// placement density for this experiment: the paper varies nodes with ranks
// 128/256/512/1024).
//
// ADAPT uses chains at every topo level; with enough segments the chain cost
// ns*(alpha+beta*m) is independent of P (§5.2.1), so its curve should be
// flat while rank-order trees grow.
//
//   fig10_scaling_cpu [--iters N] [--msg BYTES] [--json [FILE]]
#include <iostream>

#include "src/bench/cli.hpp"
#include "src/bench/imb.hpp"
#include "src/bench/report.hpp"
#include "src/coll/library.hpp"
#include "src/runtime/sim_engine.hpp"
#include "src/support/table.hpp"

int main(int argc, char** argv) {
  using namespace adapt;
  bench::Cli cli(argc, argv);
  const int iters = static_cast<int>(cli.get_int("iters", 3));
  const Bytes msg = cli.get_int("msg", mib(4));
  const std::vector<int> rank_counts = {128, 256, 512, 1024};

  std::cout << "== Figure 10: strong scalability on Cori, MSG="
            << format_bytes(msg) << " ==\n\n";
  bench::JsonReport report("fig10_scaling_cpu");
  report.set_meta("iters", iters);
  report.set_meta("msg_bytes", msg);
  for (const char* op : {"Broadcast", "Reduce"}) {
    const bool is_bcast = std::string(op) == "Broadcast";
    std::cout << "Strong Scalability of " << op
              << " with CPU data, NB nodes from 8 to 32, time in ms\n";
    std::vector<std::string> header = {"library"};
    for (int r : rank_counts) header.push_back(std::to_string(r));
    Table table(header);
    for (const std::string& name : coll::end_to_end_libraries("cori")) {
      std::vector<double> row;
      for (int ranks : rank_counts) {
        const int nodes = (ranks + 31) / 32;
        const auto setup = bench::make_cluster("cori", nodes, ranks);
        const mpi::Comm world = mpi::Comm::world(ranks);
        auto lib = coll::make_library(name, setup.machine);
        runtime::SimEngine engine(setup.machine);
        mpi::MutView buffer{nullptr, msg};
        auto fn = [&](runtime::Context& ctx, int) -> sim::Task<> {
          if (is_bcast) {
            co_await lib->bcast(ctx, world, buffer, 0);
          } else {
            co_await lib->reduce(ctx, world, buffer, mpi::ReduceOp::kSum,
                                 mpi::Datatype::kFloat, 0);
          }
        };
        row.push_back(bench::measure(engine, world, fn,
                                     {.warmup = 1, .iterations = iters})
                          .avg_ms());
      }
      table.add_row_numeric(name, row);
    }
    table.print(std::cout);
    std::cout << "\n";
    report.add_table(std::string(op) + " strong scaling time (ms)", table);
  }
  return bench::emit_json(cli, report) ? 0 : 1;
}
