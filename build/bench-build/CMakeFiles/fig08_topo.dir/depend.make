# Empty dependencies file for fig08_topo.
# This may be replaced when dependencies are built.
