// Transport-protocol semantics on the SimEngine: the eager/rendezvous split,
// NIC-offloaded matching of pre-posted receives, per-pair FIFO ordering, and
// the sender-receiver coupling that drives the paper's noise analysis.
#include <gtest/gtest.h>

#include "src/net/fabric.hpp"
#include "src/runtime/sim_engine.hpp"
#include "src/topo/presets.hpp"

namespace adapt::runtime {
namespace {

topo::Machine two_ranks() { return topo::Machine(topo::cori(1), 2); }

TEST(Protocol, EagerSenderCompletesWithoutReceiver) {
  // Below the eager threshold the sender finishes even though the receiver
  // never posts a receive until much later.
  topo::Machine m = two_ranks();
  ASSERT_LE(kib(32), m.spec().eager_threshold);
  SimEngine engine(m);
  TimeNs send_done = -1;
  auto program = [&](Context& ctx) -> sim::Task<> {
    if (ctx.rank() == 0) {
      auto req = ctx.isend(1, 1, mpi::ConstView{nullptr, kib(32)});
      co_await mpi::wait(req);
      send_done = ctx.now();
    } else {
      co_await ctx.sleep_for(milliseconds(50));
      co_await ctx.recv(0, 1, mpi::MutView{nullptr, kib(32)});
    }
  };
  engine.run(program);
  EXPECT_GE(send_done, 0);
  EXPECT_LT(send_done, milliseconds(1));
}

TEST(Protocol, RendezvousSenderWaitsForLateReceiver) {
  // Above the threshold the data (and hence the send completion) is gated on
  // the receiver posting a matching receive.
  topo::Machine m = two_ranks();
  const Bytes big = m.spec().eager_threshold * 4;
  SimEngine engine(m);
  TimeNs send_done = -1;
  const TimeNs delay = milliseconds(5);
  auto program = [&](Context& ctx) -> sim::Task<> {
    if (ctx.rank() == 0) {
      auto req = ctx.isend(1, 1, mpi::ConstView{nullptr, big});
      co_await mpi::wait(req);
      send_done = ctx.now();
    } else {
      co_await ctx.sleep_for(delay);
      co_await ctx.recv(0, 1, mpi::MutView{nullptr, big});
    }
  };
  engine.run(program);
  EXPECT_GE(send_done, delay);
}

TEST(Protocol, RendezvousPrepostedIsNotGated) {
  // A pre-posted receive grants at RTS arrival (hardware matching): the
  // transfer time matches the eager-style wire time plus handshake alphas.
  topo::Machine m = two_ranks();
  const Bytes big = m.spec().eager_threshold * 4;
  SimEngine engine(m);
  TimeNs recv_done = -1;
  auto program = [&](Context& ctx) -> sim::Task<> {
    if (ctx.rank() == 1) {
      auto req = ctx.irecv(0, 1, mpi::MutView{nullptr, big});
      co_await mpi::wait(req);
      recv_done = ctx.now();
    } else {
      co_await ctx.send(1, 1, mpi::ConstView{nullptr, big});
    }
  };
  engine.run(program);
  const topo::LinkParams& lane = m.spec().intra_socket;
  // 3 alphas (RTS, CTS, data) + wire time, plus small CPU overheads.
  EXPECT_GE(recv_done, 2 * lane.alpha + lane.time(big));
  EXPECT_LE(recv_done, 4 * lane.alpha + lane.time(big) + microseconds(10));
}

TEST(Protocol, RendezvousPreservesRealData) {
  topo::Machine m = two_ranks();
  const Bytes big = m.spec().eager_threshold * 2;
  SimEngine engine(m);
  std::vector<std::byte> out(static_cast<std::size_t>(big)),
      in(static_cast<std::size_t>(big));
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = std::byte(i * 13);
  auto program = [&](Context& ctx) -> sim::Task<> {
    if (ctx.rank() == 0) {
      co_await ctx.send(1, 7, mpi::ConstView{out.data(), big});
    } else {
      co_await ctx.sleep_for(microseconds(500));  // force the queued-RTS path
      co_await ctx.recv(0, 7, mpi::MutView{in.data(), big});
    }
  };
  engine.run(program);
  EXPECT_EQ(in, out);
}

TEST(Protocol, SamePairMessagesSerialiseFifo) {
  // Two equal eager messages to the same peer: the second completes roughly
  // one wire-time after the first (transmit-queue FIFO), not simultaneously
  // (fair sharing).
  topo::Machine m = two_ranks();
  const Bytes sz = kib(64);
  SimEngine engine(m);
  std::vector<TimeNs> arrivals;
  auto program = [&](Context& ctx) -> sim::Task<> {
    if (ctx.rank() == 0) {
      std::vector<mpi::RequestPtr> sends;
      sends.push_back(ctx.isend(1, 1, mpi::ConstView{nullptr, sz}));
      sends.push_back(ctx.isend(1, 2, mpi::ConstView{nullptr, sz}));
      co_await mpi::wait_all(sends);
    } else {
      auto ra = ctx.irecv(0, 1, mpi::MutView{nullptr, sz});
      auto rb = ctx.irecv(0, 2, mpi::MutView{nullptr, sz});
      co_await mpi::wait(ra);
      arrivals.push_back(ctx.now());
      co_await mpi::wait(rb);
      arrivals.push_back(ctx.now());
    }
  };
  engine.run(program);
  ASSERT_EQ(arrivals.size(), 2u);
  const TimeNs wire = m.spec().intra_socket.time(sz) - m.spec().intra_socket.alpha;
  EXPECT_GE(arrivals[1] - arrivals[0], wire / 2);
}

TEST(Protocol, DifferentPairsStillShareFairly) {
  // Messages from two different senders to two different receivers on the
  // same socket share the shm aggregate but not a serial queue: both finish
  // at the same time.
  topo::Machine m(topo::cori(1), 4);
  SimEngine engine(m);
  const Bytes sz = mib(1);
  std::vector<TimeNs> done(2, -1);
  auto program = [&](Context& ctx) -> sim::Task<> {
    if (ctx.rank() == 0) {
      co_await ctx.send(2, 1, mpi::ConstView{nullptr, sz});
    } else if (ctx.rank() == 1) {
      co_await ctx.send(3, 1, mpi::ConstView{nullptr, sz});
    } else {
      co_await ctx.recv(ctx.rank() - 2, 1, mpi::MutView{nullptr, sz});
      done[static_cast<std::size_t>(ctx.rank() - 2)] = ctx.now();
    }
  };
  engine.run(program);
  EXPECT_EQ(done[0], done[1]);
}

TEST(Protocol, QueuedTransferCreditsWaitAgainstAlpha) {
  // Fabric-level: a message queued behind a same-key predecessor for longer
  // than its own alpha starts immediately on dequeue.
  sim::Simulator sim;
  net::Fabric fabric(sim);
  const net::LinkId l = fabric.add_link(1.0);
  std::vector<TimeNs> done;
  net::Route r{{l}, 1.0, /*alpha=*/500, /*serial_key=*/7};
  fabric.transfer(r, 10000, [&] { done.push_back(sim.now()); });
  fabric.transfer(r, 10000, [&] { done.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], 10500);
  // Second waited 10500 >> alpha: starts instantly, pure wire time.
  EXPECT_EQ(done[1], 20500);
}

TEST(Protocol, SerialKeysDoNotCoupleDistinctKeys) {
  sim::Simulator sim;
  net::Fabric fabric(sim);
  const net::LinkId a = fabric.add_link(1.0);
  const net::LinkId b = fabric.add_link(1.0);
  std::vector<TimeNs> done(2, -1);
  fabric.transfer(net::Route{{a}, 1.0, 0, 1}, 1000,
                  [&] { done[0] = sim.now(); });
  fabric.transfer(net::Route{{b}, 1.0, 0, 2}, 1000,
                  [&] { done[1] = sim.now(); });
  sim.run();
  EXPECT_EQ(done[0], 1000);
  EXPECT_EQ(done[1], 1000);
}

TEST(Protocol, EagerThresholdBoundary) {
  // Exactly at the threshold: still eager (sender completes early).
  topo::Machine m = two_ranks();
  const Bytes at = m.spec().eager_threshold;
  SimEngine engine(m);
  TimeNs send_done = -1;
  auto program = [&](Context& ctx) -> sim::Task<> {
    if (ctx.rank() == 0) {
      auto req = ctx.isend(1, 1, mpi::ConstView{nullptr, at});
      co_await mpi::wait(req);
      send_done = ctx.now();
    } else {
      co_await ctx.sleep_for(milliseconds(20));
      co_await ctx.recv(0, 1, mpi::MutView{nullptr, at});
    }
  };
  engine.run(program);
  EXPECT_LT(send_done, milliseconds(20));
}

TEST(Protocol, OneByteOverThresholdIsRendezvous) {
  // The other side of the boundary: threshold + 1 switches protocols, so the
  // send completion is gated on the receiver showing up.
  topo::Machine m = two_ranks();
  const Bytes just_over = m.spec().eager_threshold + 1;
  SimEngine engine(m);
  TimeNs send_done = -1;
  const TimeNs delay = milliseconds(20);
  std::vector<std::byte> out(static_cast<std::size_t>(just_over)),
      in(static_cast<std::size_t>(just_over));
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = std::byte(i * 7);
  auto program = [&](Context& ctx) -> sim::Task<> {
    if (ctx.rank() == 0) {
      auto req = ctx.isend(1, 1, mpi::ConstView{out.data(), just_over});
      co_await mpi::wait(req);
      send_done = ctx.now();
    } else {
      co_await ctx.sleep_for(delay);
      co_await ctx.recv(0, 1, mpi::MutView{in.data(), just_over});
    }
  };
  engine.run(program);
  EXPECT_GE(send_done, delay);  // rendezvous: waited for the receiver
  EXPECT_EQ(in, out);           // and the odd-sized payload survived intact
}

TEST(Protocol, UnexpectedMessageBuffersAndDeliversIntact) {
  // Eager message arrives before any matching receive is posted: it must park
  // on the unexpected queue (observable via the matcher counters) and still
  // deliver the right bytes once the late receive matches it.
  topo::Machine m = two_ranks();
  const Bytes sz = kib(4);
  SimEngine engine(m);
  std::vector<std::byte> out(static_cast<std::size_t>(sz)),
      in(static_cast<std::size_t>(sz));
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = std::byte(251 * i);
  std::uint64_t unexpected_seen = 0;
  auto program = [&](Context& ctx) -> sim::Task<> {
    if (ctx.rank() == 0) {
      co_await ctx.send(1, 5, mpi::ConstView{out.data(), sz});
    } else {
      co_await ctx.sleep_for(milliseconds(2));  // message long since arrived
      unexpected_seen = ctx.endpoint().matcher().total_unexpected();
      co_await ctx.recv(0, 5, mpi::MutView{in.data(), sz});
    }
  };
  engine.run(program);
  EXPECT_EQ(unexpected_seen, 1u);  // it really took the unexpected path
  EXPECT_EQ(in, out);
}

TEST(Protocol, WildcardSourceObservesActualSender) {
  // Wildcard receives under perturbed schedules: across many seeds the
  // arrival order of two equal-cost senders varies, but every completion must
  // report a truthful actual_src and deliver that sender's bytes.
  bool saw_either_order[2] = {false, false};
  for (std::uint64_t seed = 0; seed < 24; ++seed) {
    topo::Machine m(topo::cori(1), 3);
    SimEngineOptions opts;
    if (seed != 0) {
      opts.perturb = sim::PerturbConfig{.seed = seed,
                                        .max_jitter = microseconds(5)};
    }
    SimEngine engine(m, opts);
    std::vector<std::byte> payload[2] = {
        std::vector<std::byte>(64, std::byte(0xA1)),
        std::vector<std::byte>(64, std::byte(0xB2))};
    std::vector<Rank> arrival_srcs;
    auto program = [&](Context& ctx) -> sim::Task<> {
      if (ctx.rank() == 2) {
        for (int k = 0; k < 2; ++k) {
          std::vector<std::byte> got(64);
          auto req = ctx.irecv(kAnyRank, 9, mpi::MutView{got.data(), 64});
          co_await mpi::wait(req);
          const Rank src = req->actual_src();
          EXPECT_TRUE(src == 0 || src == 1);
          if (src == 0 || src == 1) {
            // The bytes must be the ones that sender actually sent.
            EXPECT_EQ(got, payload[src]);
            arrival_srcs.push_back(src);
          }
        }
      } else {
        co_await ctx.send(
            2, 9,
            mpi::ConstView{payload[static_cast<std::size_t>(ctx.rank())].data(),
                           64});
      }
    };
    engine.run(program);
    ASSERT_EQ(arrival_srcs.size(), 2u);
    EXPECT_NE(arrival_srcs[0], arrival_srcs[1]);
    saw_either_order[arrival_srcs[0] == 0 ? 0 : 1] = true;
  }
  // The perturbation sweep must have produced both arrival orders — that is
  // the nondeterminism the conformance harness leans on.
  EXPECT_TRUE(saw_either_order[0]);
  EXPECT_TRUE(saw_either_order[1]);
}

}  // namespace
}  // namespace adapt::runtime
