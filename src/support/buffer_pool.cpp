#include "src/support/buffer_pool.hpp"

#include <cstring>
#include <new>

#include "src/support/error.hpp"

namespace adapt::support {

namespace {

detail::BufHeader* allocate_block(BufferPool* pool, int size_class) {
  const std::size_t bytes =
      sizeof(detail::BufHeader) +
      static_cast<std::size_t>(BufferPool::capacity_of(size_class));
  auto* h = static_cast<detail::BufHeader*>(
      ::operator new(bytes, std::align_val_t{alignof(detail::BufHeader)}));
  h->pool = pool;
  h->size_class = static_cast<std::uint32_t>(size_class);
  h->refs.store(1, std::memory_order_relaxed);
  return h;
}

void free_block(detail::BufHeader* h) {
  ::operator delete(h, std::align_val_t{alignof(detail::BufHeader)});
}

}  // namespace

void BufferRef::release() {
  if (h_ == nullptr) return;
  detail::BufHeader* h = h_;
  h_ = nullptr;
  if (h->refs.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
  if (h->pool != nullptr) {
    h->pool->put_back(h);
  } else {
    free_block(h);
  }
}

BufferRef BufferRef::heap(Bytes n) {
  BufferRef ref = heap_raw(n);
  std::memset(ref.data(), 0, static_cast<std::size_t>(n));
  return ref;
}

BufferRef BufferRef::heap_raw(Bytes n) {
  ADAPT_CHECK(n >= 0);
  return BufferRef(allocate_block(nullptr, BufferPool::class_of(n)));
}

BufferPool::~BufferPool() {
  for (auto& list : free_) {
    for (detail::BufHeader* h : list) free_block(h);
  }
}

BufferRef BufferPool::acquire_raw(Bytes n) {
  ADAPT_CHECK(n >= 0);
  const int cls = class_of(n);
  ADAPT_CHECK(cls < kClasses) << "oversized pool request of " << n << " bytes";
  {
    std::lock_guard<std::mutex> lock(mu_);
    acquired_bytes_ += static_cast<std::uint64_t>(capacity_of(cls));
    auto& list = free_[cls];
    if (!list.empty()) {
      detail::BufHeader* h = list.back();
      list.pop_back();
      ++hits_;
      cached_bytes_ -= static_cast<std::uint64_t>(capacity_of(cls));
      h->refs.store(1, std::memory_order_relaxed);
      return BufferRef(h);
    }
    ++misses_;
  }
  return BufferRef(allocate_block(this, cls));
}

BufferRef BufferPool::acquire(Bytes n) {
  BufferRef ref = acquire_raw(n);
  std::memset(ref.data(), 0, static_cast<std::size_t>(n));
  return ref;
}

void BufferPool::reserve(Bytes n, int count) {
  ADAPT_CHECK(n >= 0 && count >= 0);
  const int cls = class_of(n);
  ADAPT_CHECK(cls < kClasses) << "oversized pool request of " << n << " bytes";
  std::lock_guard<std::mutex> lock(mu_);
  auto& list = free_[cls];
  // Grow the vector past the target too, so put_back never reallocates it.
  list.reserve(static_cast<std::size_t>(count) * 2);
  while (list.size() < static_cast<std::size_t>(count)) {
    detail::BufHeader* h = allocate_block(this, cls);
    h->refs.store(0, std::memory_order_relaxed);
    list.push_back(h);
    cached_bytes_ += static_cast<std::uint64_t>(capacity_of(cls));
  }
}

void BufferPool::put_back(detail::BufHeader* h) {
  std::lock_guard<std::mutex> lock(mu_);
  free_[h->size_class].push_back(h);
  cached_bytes_ +=
      static_cast<std::uint64_t>(capacity_of(static_cast<int>(h->size_class)));
}

}  // namespace adapt::support
