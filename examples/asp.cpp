// ASP: the All-pairs Shortest Path application the paper evaluates (§5.3,
// Table 1, after Plaat et al.).
//
// Parallel Floyd–Warshall: the N×N weight matrix is distributed by rows; in
// iteration k the owner of row k broadcasts it and every rank relaxes its own
// rows. Communication (N broadcasts) dominates, which is why the collective
// implementation dictates the application's runtime.
//
// This example runs a REAL instance on the ThreadEngine (real threads, real
// data) and verifies the distributed result against serial Floyd–Warshall.
// bench/table1_asp runs the same pattern at the paper's scale on the
// simulator.
//
//   ./asp [--n 96] [--ranks 8] [--lib ompi-adapt]
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "src/coll/library.hpp"
#include "src/runtime/thread_engine.hpp"
#include "src/support/rng.hpp"
#include "src/topo/presets.hpp"

using namespace adapt;

namespace {

constexpr std::int32_t kInf = 1 << 29;

std::vector<std::int32_t> random_weights(int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int32_t> w(static_cast<std::size_t>(n) * n, kInf);
  for (int i = 0; i < n; ++i) {
    w[static_cast<std::size_t>(i) * n + i] = 0;
    for (int j = 0; j < n; ++j) {
      if (i != j && rng.next_double() < 0.25) {
        w[static_cast<std::size_t>(i) * n + j] =
            static_cast<std::int32_t>(rng.next_in(1, 100));
      }
    }
  }
  return w;
}

void serial_floyd_warshall(std::vector<std::int32_t>& d, int n) {
  for (int k = 0; k < n; ++k) {
    for (int i = 0; i < n; ++i) {
      const std::int32_t dik = d[static_cast<std::size_t>(i) * n + k];
      if (dik >= kInf) continue;
      for (int j = 0; j < n; ++j) {
        const std::int32_t cand = dik + d[static_cast<std::size_t>(k) * n + j];
        auto& dij = d[static_cast<std::size_t>(i) * n + j];
        if (cand < dij) dij = cand;
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  int n = 96;
  int ranks = 8;
  std::string lib_name = "ompi-adapt";
  for (int i = 1; i + 1 < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--n") n = std::atoi(argv[i + 1]);
    if (arg == "--ranks") ranks = std::atoi(argv[i + 1]);
    if (arg == "--lib") lib_name = argv[i + 1];
  }
  if (n % ranks != 0) n = (n / ranks + 1) * ranks;  // even row blocks
  const int rows_per_rank = n / ranks;

  topo::Machine machine(topo::cori(1), ranks);
  runtime::ThreadEngine engine(machine);
  const mpi::Comm world = mpi::Comm::world(ranks);
  auto lib = coll::make_library(lib_name, machine);

  // Golden serial solution.
  const std::vector<std::int32_t> weights = random_weights(n, 42);
  std::vector<std::int32_t> golden = weights;
  serial_floyd_warshall(golden, n);

  // Distributed state: each rank owns rows [rank*rpr, (rank+1)*rpr).
  std::vector<std::vector<std::int32_t>> block(
      static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    block[static_cast<std::size_t>(r)].assign(
        weights.begin() + static_cast<std::ptrdiff_t>(r) * rows_per_rank * n,
        weights.begin() +
            static_cast<std::ptrdiff_t>(r + 1) * rows_per_rank * n);
  }

  std::vector<TimeNs> comm_time(static_cast<std::size_t>(ranks), 0);

  auto program = [&](runtime::Context& ctx) -> sim::Task<> {
    const int me = ctx.rank();
    auto& mine = block[static_cast<std::size_t>(me)];
    std::vector<std::int32_t> row_k(static_cast<std::size_t>(n));

    for (int k = 0; k < n; ++k) {
      const int owner = k / rows_per_rank;
      if (me == owner) {
        std::memcpy(row_k.data(),
                    mine.data() + static_cast<std::size_t>(k % rows_per_rank) * n,
                    static_cast<std::size_t>(n) * 4);
      }
      const TimeNs t0 = ctx.now();
      co_await lib->bcast(
          ctx, world,
          mpi::MutView{reinterpret_cast<std::byte*>(row_k.data()),
                       static_cast<Bytes>(n) * 4},
          owner);
      comm_time[static_cast<std::size_t>(me)] += ctx.now() - t0;

      // Relax this rank's rows against row k.
      for (int i = 0; i < rows_per_rank; ++i) {
        const std::int32_t dik = mine[static_cast<std::size_t>(i) * n + k];
        if (dik >= kInf) continue;
        for (int j = 0; j < n; ++j) {
          const std::int32_t cand = dik + row_k[static_cast<std::size_t>(j)];
          auto& dij = mine[static_cast<std::size_t>(i) * n + j];
          if (cand < dij) dij = cand;
        }
      }
    }
  };

  const auto result = engine.run(program);

  // Verify against the serial solution.
  std::size_t mismatches = 0;
  for (int r = 0; r < ranks; ++r) {
    const auto& mine = block[static_cast<std::size_t>(r)];
    for (std::size_t i = 0; i < mine.size(); ++i) {
      if (mine[i] !=
          golden[static_cast<std::size_t>(r) * rows_per_rank * n + i]) {
        ++mismatches;
      }
    }
  }

  TimeNs total_comm = 0;
  for (TimeNs t : comm_time) total_comm += t;
  std::cout << "ASP " << n << "x" << n << " on " << ranks
            << " ranks using " << lib_name << "\n"
            << "  total runtime:      " << format_time(result.total_time)
            << "\n"
            << "  avg comm time/rank: "
            << format_time(total_comm / ranks) << "\n"
            << "  verification:       "
            << (mismatches == 0 ? "OK (matches serial Floyd-Warshall)"
                                : "FAILED")
            << "\n";
  return mismatches == 0 ? 0 : 1;
}
