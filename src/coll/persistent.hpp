// Persistent & partitioned collectives (PR 6; MPI-4 init/start semantics,
// MPI Advance-style schedule caching on top of ADAPT's event machines).
//
// A PersistentOp is a per-rank handle created once by bcast_init /
// reduce_init / allreduce_init / barrier_init. Init does all the planning a
// per-call collective repeats every invocation: resolve the topology tree
// and this rank's edges, pin the tuner decision (recorded in the engine's
// DecisionTable AND the engine-wide tune::PlanCache, keyed by (op, comm
// fingerprint, size bucket, root)), size the segment pipeline, pre-allocate
// every piece of round state (scratch payloads, pipeline counters, pending
// queues) and warm the engine's BufferPool for the round's worst-case eager
// footprint. start()/wait() then replay the schedule allocation-free: every
// callback the round posts captures {this, packed-ints} — small and
// trivially copyable, so std::function keeps it in inline storage.
//
// Lifecycle (MPI-4 shaped, error codes instead of UB):
//   * start() on a handle whose previous round has not been waited returns
//     kErrPending; start() after the communicator was freed returns
//     kErrCommFreed (the plan-cache entry is invalidated too — a stale plan
//     is never replayed).
//   * wait() is an awaitable; it resumes once the round fully drains (every
//     posted callback retired, success or failure) and throws FaultError on
//     a failed round — the same uniform-error contract as the per-call
//     collectives under chaos.
//   * Overlapping start()s of *independent* handles pipeline: each handle
//     owns a private block of kTagRounds x per-round tags used round-robin,
//     so concurrent rounds can never cross-match.
//
// Partitioned operations (partitions > 0): the round's data is declared
// ready piece-wise with pready(p). Partition p maps to the contiguous
// segment range [p*S/P, (p+1)*S/P); a readied partition feeds its segments
// straight into ADAPT's pipeline (root sends for bcast, local contributions
// for reduce/allreduce). pready on a bad index, a duplicate partition, or an
// inactive handle returns kErrPartition.
#pragma once

#include <coroutine>
#include <memory>
#include <vector>

#include "src/coll/coll.hpp"
#include "src/tune/plan_cache.hpp"

namespace adapt::coll {

struct PersistentOpts {
  CollOpts coll;       ///< pipeline knobs; segment may be overridden by plan
  int partitions = 0;  ///< > 0: partitioned operation, data gated on pready
  /// Explicit tree override (copied). Bypasses the plan cache — the cache
  /// key cannot see an arbitrary caller tree. Null: the plan comes from the
  /// tuner when the engine has one, else the paper's topology-aware chain.
  const Tree* tree = nullptr;
};

class PersistentOp {
 public:
  enum class Kind { kBcast, kReduce, kAllreduce, kBarrier };

  ~PersistentOp();
  PersistentOp(const PersistentOp&) = delete;
  PersistentOp& operator=(const PersistentOp&) = delete;

  /// Begins one replay of the cached schedule. kErrPending if the previous
  /// round was not waited; kErrCommFreed if the communicator was freed.
  mpi::ErrCode start();

  /// Declares partition `p`'s data ready for the active round.
  mpi::ErrCode pready(int p);

  /// Queries whether partition `p`'s *incoming* data has fully arrived at
  /// this rank for the active round (MPI_Parrived shape): for bcast and the
  /// bcast stage of allreduce every segment of the partition has been
  /// received; for reduce every child contribution for the partition has
  /// been folded into the local accumulator (a leaf's partition arrives when
  /// its own pready lands). Validation mirrors pready: an inactive handle, a
  /// non-partitioned op, or an out-of-range index is kErrPartition. A round
  /// that already failed reports false without error.
  mpi::ErrCode parrived(int p, bool* flag) const;

  /// Awaitable round completion; throws mpi::FaultError on a failed round.
  struct [[nodiscard]] Awaiter {
    PersistentOp* op;
    bool await_ready() const noexcept { return !op->in_flight_; }
    void await_suspend(std::coroutine_handle<> h) noexcept {
      op->waiter_ = h;
    }
    void await_resume() const;
  };
  Awaiter wait() { return Awaiter{this}; }

  bool in_flight() const { return in_flight_; }
  Kind kind() const { return kind_; }
  int segments() const { return segs_.count(); }
  int partitions() const { return partitions_; }
  /// Completed start/wait cycles (successful or failed).
  int rounds_completed() const { return rounds_completed_; }
  /// The immutable plan this handle replays (shared via the engine cache
  /// unless an explicit tree was supplied).
  const tune::CachedPlan& plan() const { return *plan_; }
  /// Error code the active/last round finished with (kOk while healthy).
  mpi::ErrCode last_error() const { return error_; }

 private:
  friend std::unique_ptr<PersistentOp> bcast_init(runtime::Context&,
                                                  const mpi::Comm&,
                                                  mpi::MutView, Rank,
                                                  const PersistentOpts&);
  friend std::unique_ptr<PersistentOp> reduce_init(runtime::Context&,
                                                   const mpi::Comm&,
                                                   mpi::MutView, mpi::ReduceOp,
                                                   mpi::Datatype, Rank,
                                                   const PersistentOpts&);
  friend std::unique_ptr<PersistentOp> allreduce_init(runtime::Context&,
                                                      const mpi::Comm&,
                                                      mpi::MutView,
                                                      mpi::ReduceOp,
                                                      mpi::Datatype,
                                                      const PersistentOpts&);
  friend std::unique_ptr<PersistentOp> barrier_init(runtime::Context&,
                                                    const mpi::Comm&,
                                                    const PersistentOpts&);

  PersistentOp() = default;

  struct Edges {
    Rank me_local = -1;
    Rank parent_global = -1;
    std::vector<Rank> kids_global;
    bool is_root = false;
  };

  void init_common(runtime::Context& ctx, const mpi::Comm& comm, Kind kind,
                   Bytes bytes, Rank root, const PersistentOpts& opts);
  void reset_round();
  Tag round_tag(int block_offset, int s) const;
  mpi::MutView piece(int s);
  mpi::MutView scratch_view(std::size_t c, int window, Bytes len);

  void fail(mpi::ErrCode code);
  void cb_exit();            ///< retire one posted callback, maybe finish
  void check_round_done();

  // Broadcast machine (also the second stage of allreduce).
  void start_bcast();
  void post_next_bcast_recv();
  void on_bcast_recv(int s);
  bool bcast_root() const;
  void pump_child(std::size_t c);

  // Reduce machine (also the first stage of allreduce).
  void start_reduce();
  void post_reduce_recv(std::size_t c, int window);
  void on_reduce_recv(std::size_t c, int s, int window);
  void schedule_fold(std::size_t c, int s, int window);
  void run_fold(std::size_t c, int s, int window);
  void reduce_segment_ready(int s);
  void pump_parent();

  // Barrier machine.
  void start_barrier();
  void on_barrier_recv(int round);

  // -- plan (immutable after init) ----------------------------------------
  runtime::Context* ctx_ = nullptr;
  mpi::Comm comm_ = mpi::Comm::world(1);  ///< keeps CommState alive
  std::shared_ptr<const tune::CachedPlan> plan_;
  Edges edges_;
  Segmenter segs_{0, 1};
  CollOpts opts_;
  Kind kind_ = Kind::kBcast;
  mpi::MutView buffer_;  ///< bcast buffer / reduce+allreduce accumulator
  mpi::ReduceOp rop_{};
  mpi::Datatype dtype_{};
  Tag base_tag_ = 0;
  int per_round_tags_ = 0;
  int partitions_ = 0;
  int bar_rounds_ = 0;  ///< barrier: dissemination round count
  std::vector<mpi::Payload> scratch_;  ///< reduce: per (child, window)

  // -- round state (reset by start, no allocation) -------------------------
  bool in_flight_ = false;
  mpi::ErrCode error_ = mpi::ErrCode::kOk;
  int remaining_ = 0;    ///< success signals still expected this round
  int outstanding_ = 0;  ///< posted callbacks not yet retired
  int rounds_completed_ = 0;
  std::coroutine_handle<> waiter_;
  std::vector<char> part_ready_;   // per partition: pready seen
  std::vector<char> local_ready_;  // per segment: local data available
  // bcast
  std::vector<char> received_;
  std::vector<int> next_send_;  // per child
  std::vector<int> inflight_;   // per child
  int next_recv_post_ = 0;
  // reduce
  std::vector<int> contributed_;  // per segment
  std::vector<int> next_recv_;    // per child
  std::vector<std::vector<std::uint64_t>> pending_folds_;  // per segment
  std::vector<int> ready_q_;  // ring of segments ready to send up
  int ready_head_ = 0;
  int ready_tail_ = 0;
  int inflight_up_ = 0;
};

using PersistentOpPtr = std::unique_ptr<PersistentOp>;

/// Persistent broadcast: the root's `buffer` contents reach every rank's
/// `buffer` on each start/wait round. Buffer binding is fixed at init
/// (MPI-4 persistent semantics) — mutate contents between rounds, not the
/// binding.
PersistentOpPtr bcast_init(runtime::Context& ctx, const mpi::Comm& comm,
                           mpi::MutView buffer, Rank root,
                           const PersistentOpts& opts = {});

/// Persistent reduce: each round folds every rank's `accum` into the root's.
/// Non-root accumulators are clobbered (same contract as coll::reduce), so
/// refill them between rounds.
PersistentOpPtr reduce_init(runtime::Context& ctx, const mpi::Comm& comm,
                            mpi::MutView accum, mpi::ReduceOp op,
                            mpi::Datatype dtype, Rank root,
                            const PersistentOpts& opts = {});

/// Persistent allreduce: reduce-to-0 chained into bcast-from-0 over one
/// tree; every rank's `accum` holds the full reduction after wait().
PersistentOpPtr allreduce_init(runtime::Context& ctx, const mpi::Comm& comm,
                               mpi::MutView accum, mpi::ReduceOp op,
                               mpi::Datatype dtype,
                               const PersistentOpts& opts = {});

/// Persistent dissemination barrier.
PersistentOpPtr barrier_init(runtime::Context& ctx, const mpi::Comm& comm,
                             const PersistentOpts& opts = {});

/// MPI_Comm_free for plan-cache users: marks the communicator freed AND
/// eagerly drops its plan-cache entries (the weak CommState guard would
/// catch them lazily anyway — this keeps the cache tidy and the
/// invalidation observable).
void free_comm(runtime::Context& ctx, const mpi::Comm& comm);

}  // namespace adapt::coll
