#include "src/sim/event_queue.hpp"

#include <algorithm>
#include <bit>

#include "src/support/error.hpp"

namespace adapt::sim {

EventQueue::EventQueue(std::size_t expected_cohort)
    : slab_(std::make_unique<detail::EventSlab>()) {
  // Pre-size the cohort heap and every radix level once, up front. Level
  // vectors keep their capacity forever, but a level is first *touched* only
  // when some event is scheduled across that power-of-two virtual-time
  // boundary — which can happen arbitrarily late (a busy-until timer
  // straddling 2^k ns deep into a run). Reserving here moves that one-time
  // growth to construction, so bounded-fan-out steady states are genuinely
  // allocation-free — the invariant the persistent-collective zero-alloc
  // regression test pins down. The historical constant (64 entries per
  // level) under-reserved for sharded queues, where the cohort scales with
  // the shard's rank count: callers now pass their expected shard-local
  // cohort, the cohort heap reserves it in full, and each radix level
  // reserves it up to kLevelReserveCap (default: 64 levels x 64 x 32 B =
  // 128 KiB, unchanged).
  const std::size_t expect = std::max(expected_cohort, kDefaultReserve);
  cohort_.reserve(expect);
  const std::size_t per_level = std::min(expect, kLevelReserveCap);
  for (std::vector<Entry>& level : buckets_) {
    level.reserve(per_level);
  }
}

std::uint32_t EventQueue::acquire_slot() {
  if (!slab_->free_slots.empty()) {
    const std::uint32_t slot = slab_->free_slots.back();
    slab_->free_slots.pop_back();
    return slot;
  }
  if ((slab_->next_slot & (detail::EventSlab::kChunkSize - 1)) == 0) {
    // Default-init, not make_unique: value-initialising would zero every
    // record's inline storage (57 KB per chunk) for nothing.
    slab_->chunks.emplace_back(
        new detail::EventRecord[detail::EventSlab::kChunkSize]);
  }
  return slab_->next_slot++;
}

void EventQueue::release_slot(std::uint32_t slot) const {
  detail::EventRecord& rec = slab_->record(slot);
  ++rec.gen;  // invalidate outstanding handles before the slot is reused
  rec.cancelled = false;
  rec.fn.reset();
  slab_->free_slots.push_back(slot);
}

int EventQueue::level_of(std::uint64_t diff) {
  return 63 - std::countl_zero(diff);
}

void EventQueue::sift_up(std::size_t i) const {
  const Entry e = cohort_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 1;
    if (!earlier(e, cohort_[parent])) break;
    cohort_[i] = cohort_[parent];
    i = parent;
  }
  cohort_[i] = e;
}

void EventQueue::sift_down(std::size_t i) const {
  const std::size_t n = cohort_.size();
  const Entry e = cohort_[i];
  for (;;) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && earlier(cohort_[child + 1], cohort_[child])) ++child;
    if (!earlier(cohort_[child], e)) break;
    cohort_[i] = cohort_[child];
    i = child;
  }
  cohort_[i] = e;
}

void EventQueue::pop_top() const {
  const std::size_t n = cohort_.size() - 1;
  const Entry last = cohort_[n];
  cohort_.pop_back();
  if (n == 0) return;
  // Bottom-up replacement (one comparison per level instead of two): pull
  // the min-child chain up into the root hole all the way to a leaf, then
  // bubble the displaced last element back up — it came from the bottom, so
  // it almost never rises more than a step or two.
  std::size_t hole = 0;
  std::size_t child;
  while ((child = 2 * hole + 1) < n) {
    if (child + 1 < n && earlier(cohort_[child + 1], cohort_[child])) ++child;
    cohort_[hole] = cohort_[child];
    hole = child;
  }
  while (hole > 0) {
    const std::size_t parent = (hole - 1) >> 1;
    if (!earlier(last, cohort_[parent])) break;
    cohort_[hole] = cohort_[parent];
    hole = parent;
  }
  cohort_[hole] = last;
}

EventHandle EventQueue::push(TimeNs time, EventFn fn) {
  TimeNs fire_time = time;
  std::uint64_t tie = seq_;
  if (perturb_) {
    if (perturb_->max_jitter > 0) {
      fire_time += static_cast<TimeNs>(perturb_rng_.next_below(
          static_cast<std::uint64_t>(perturb_->max_jitter) + 1));
    }
    if (perturb_->shuffle_ties) tie = perturb_rng_.next_u64();
  }
  return emplace(fire_time, tie, std::move(fn));
}

EventHandle EventQueue::push_keyed(TimeNs time, std::uint64_t tie,
                                   EventFn fn) {
  // Perturbation draws would desynchronise the caller's canonical keys from
  // the actual schedule; the sharded engine rejects perturbed runs upstream.
  ADAPT_CHECK(!perturb_)
      << "push_keyed is incompatible with schedule perturbation";
  return emplace(time, tie, std::move(fn));
}

EventHandle EventQueue::emplace(TimeNs fire_time, std::uint64_t tie,
                                EventFn fn) {
  ADAPT_CHECK(fire_time >= last_)
      << "event scheduled at " << fire_time
      << " is before the queue's current time " << last_
      << " (simulated time is monotone)";
  const std::uint32_t slot = acquire_slot();
  detail::EventRecord& rec = slab_->record(slot);
  rec.fn = std::move(fn);
  const Entry e{fire_time, tie, seq_++, slot, rec.gen};
  const std::uint64_t diff = static_cast<std::uint64_t>(fire_time) ^
                             static_cast<std::uint64_t>(last_);
  if (diff == 0) {
    cohort_.push_back(e);
    sift_up(cohort_.size() - 1);
  } else {
    const int level = level_of(diff);
    buckets_[static_cast<std::size_t>(level)].push_back(e);
    bucket_mask_ |= 1ull << level;
  }
  ++count_;
  if (stats_) {
    ++stats_->scheduled;
    stats_->max_depth = std::max<std::uint64_t>(stats_->max_depth, count_);
  }
  // Lazy cancellation, bounded: once cancelled entries outnumber live ones,
  // sweep them out so mass cancel/reschedule churn cannot grow the queue.
  if (slab_->cancelled_in_heap * 2 > count_) compact();
  return EventHandle(slab_.get(), slot, rec.gen);
}

void EventQueue::set_perturbation(std::optional<PerturbConfig> config) {
  if (config) {
    ADAPT_CHECK(config->max_jitter >= 0)
        << "negative jitter bound " << config->max_jitter;
    perturb_rng_ = Rng(config->seed);
  }
  perturb_ = std::move(config);
}

void EventQueue::refill() const {
  // The lowest non-empty bucket holds the queue's minimum remaining time:
  // find it with one linear scan, advance last_, and redistribute. Every
  // entry lands in a strictly lower bucket (it agreed with the old last_
  // above the bucket's bit and differs from the new minimum below it), so
  // each entry is reshuffled at most once per level — amortised O(64).
  while (cohort_.empty()) {
    const int level = std::countr_zero(bucket_mask_);
    std::vector<Entry>& bucket = buckets_[static_cast<std::size_t>(level)];
    const Entry* min = &bucket.front();
    for (const Entry& e : bucket) {
      if (earlier(e, *min)) min = &e;
    }
    last_ = min->time;
    for (const Entry& e : bucket) {
      const std::uint64_t diff = static_cast<std::uint64_t>(e.time) ^
                                 static_cast<std::uint64_t>(last_);
      if (diff == 0) {
        cohort_.push_back(e);
      } else {
        const int nl = level_of(diff);
        buckets_[static_cast<std::size_t>(nl)].push_back(e);
        bucket_mask_ |= 1ull << nl;
      }
    }
    bucket.clear();
    bucket_mask_ &= ~(1ull << level);
    for (std::size_t i = cohort_.size() / 2; i-- > 0;) sift_down(i);
  }
}

void EventQueue::settle() const {
  for (;;) {
    if (cohort_.empty()) {
      refill();
      continue;
    }
    const Entry& top = cohort_.front();
    if (!slab_->record(top.slot).cancelled) return;
    release_slot(top.slot);
    --slab_->cancelled_in_heap;
    --count_;
    pop_top();
  }
}

void EventQueue::compact() {
  // An in-queue entry's slot always carries the entry's own gen (slots are
  // released only when their entry leaves the queue), so `cancelled` alone
  // identifies dead entries.
  auto sweep = [this](std::vector<Entry>& level) {
    auto kept = level.begin();
    for (Entry& e : level) {
      if (slab_->record(e.slot).cancelled) {
        release_slot(e.slot);
        --count_;
      } else {
        *kept++ = e;
      }
    }
    level.erase(kept, level.end());
  };
  sweep(cohort_);
  for (std::size_t i = cohort_.size() / 2; i-- > 0;) sift_down(i);
  std::uint64_t mask = bucket_mask_;
  while (mask != 0) {
    const int level = std::countr_zero(mask);
    mask &= mask - 1;
    std::vector<Entry>& bucket = buckets_[static_cast<std::size_t>(level)];
    sweep(bucket);
    if (bucket.empty()) bucket_mask_ &= ~(1ull << level);
  }
  slab_->cancelled_in_heap = 0;
}

TimeNs EventQueue::next_time() const {
  ADAPT_CHECK(!empty()) << "next_time on empty event queue";
  settle();
  return cohort_.front().time;
}

TimeNs EventQueue::peek_min_time() const {
  ADAPT_CHECK(!empty()) << "peek_min_time on empty event queue";
  // Collect dead cohort-top entries as settle() would, but never refill():
  // refill is what commits the cursor.
  while (!cohort_.empty()) {
    const Entry& top = cohort_.front();
    if (!slab_->record(top.slot).cancelled) return top.time;
    release_slot(top.slot);
    --slab_->cancelled_in_heap;
    --count_;
    pop_top();
  }
  // Cohort drained: the minimum lives in the lowest non-empty bucket (every
  // entry in a higher bucket differs from last_ in a higher bit, hence fires
  // later). Sweep cancelled entries out of the buckets scanned so they can
  // neither pin a stale minimum nor be rescanned.
  for (;;) {
    const int level = std::countr_zero(bucket_mask_);
    std::vector<Entry>& bucket = buckets_[static_cast<std::size_t>(level)];
    auto kept = bucket.begin();
    for (Entry& e : bucket) {
      if (slab_->record(e.slot).cancelled) {
        release_slot(e.slot);
        --slab_->cancelled_in_heap;
        --count_;
      } else {
        *kept++ = e;
      }
    }
    bucket.erase(kept, bucket.end());
    if (bucket.empty()) {
      bucket_mask_ &= ~(1ull << level);
      continue;  // empty() precondition guarantees a live entry remains
    }
    TimeNs min = bucket.front().time;
    for (const Entry& e : bucket) min = std::min(min, e.time);
    return min;
  }
}

std::pair<TimeNs, EventFn> EventQueue::pop() {
  ADAPT_CHECK(!empty()) << "pop on empty event queue";
  settle();
  const Entry top = cohort_.front();
  pop_top();
  --count_;
  // The next pop's record is a data-dependent load the caller's event
  // dispatch can hide — start it now.
  if (!cohort_.empty()) {
    __builtin_prefetch(&slab_->record(cohort_.front().slot));
  }
  std::pair<TimeNs, EventFn> out{top.time,
                                 std::move(slab_->record(top.slot).fn)};
  release_slot(top.slot);
  return out;
}

}  // namespace adapt::sim
