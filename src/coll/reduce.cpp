// Reduce in the three implementation styles (§2.2.3 applied to all-to-one),
// with segment-wise accumulation on the CPU (γ per byte, occupying the rank)
// or offloaded to the rank's GPU (§4.2, overlapping with communication).
#include <deque>
#include <memory>

#include "src/coll/detail.hpp"
#include "src/gpu/device.hpp"
#include "src/support/error.hpp"

namespace adapt::coll {

namespace {

using detail::Edges;

/// Scratch space for one in-flight child contribution; real iff the
/// accumulator is real, pooled when the engine has a pool.
mpi::Payload make_scratch(runtime::Context& ctx, const mpi::MutView& accum,
                          Bytes len) {
  return mpi::Payload::scratch(ctx.pool(), len, accum.synthetic());
}

/// Suspending accumulate used by the blocking/nonblocking styles: charges the
/// rank's CPU (or the GPU engine) and performs the arithmetic.
sim::Task<> accumulate(runtime::Context& ctx, const CollOpts& opts,
                       mpi::MutView dst, mpi::ConstView src, mpi::ReduceOp op,
                       mpi::Datatype dtype, Bytes len) {
  if (opts.gpu_reduce) {
    gpu::Device* dev = ctx.gpu();
    ADAPT_CHECK(dev != nullptr) << "gpu_reduce on a rank without a GPU";
    auto trigger = std::make_shared<sim::Trigger>();
    dev->stream(0).launch(dev->reduce_cost(len), [trigger] { trigger->fire(); });
    detail::apply_if_real(dst, src, op, dtype, len);
    co_await *trigger;
  } else {
    detail::apply_if_real(dst, src, op, dtype, len);
    co_await ctx.compute(detail::reduce_cost(ctx, opts, len));
  }
}

// ---------------------------------------------------------------------------
// Blocking: children drained strictly in order, segment after segment.
// ---------------------------------------------------------------------------
sim::Task<> reduce_blocking(runtime::Context& ctx, const Edges& e,
                            mpi::MutView accum, mpi::ReduceOp op,
                            mpi::Datatype dtype, const Segmenter& segs,
                            const CollOpts& opts, Tag base_tag) {
  mpi::Payload scratch = make_scratch(ctx, accum, opts.segment_size);
  for (int s = 0; s < segs.count(); ++s) {
    const Bytes len = segs.length(s);
    mpi::MutView piece = accum.slice(segs.offset(s), len);
    for (Rank child : e.kids_global) {
      co_await ctx.recv(child, base_tag + s, scratch.view().slice(0, len));
      co_await accumulate(ctx, opts, piece, scratch.cview().slice(0, len), op,
                          dtype, len);
    }
    if (!e.is_root) {
      co_await ctx.send(e.parent_global, base_tag + s, piece.as_const(),
                        opts.spaces(ctx.rank(), e.parent_global));
    }
  }
}

// ---------------------------------------------------------------------------
// Nonblocking: per segment, receives from all children progress concurrently
// but a Waitall gates the accumulate, and the send up is waited before the
// next segment completes — Algorithm 2's synchronisation structure.
// ---------------------------------------------------------------------------
sim::Task<> reduce_nonblocking(runtime::Context& ctx, const Edges& e,
                               mpi::MutView accum, mpi::ReduceOp op,
                               mpi::Datatype dtype, const Segmenter& segs,
                               const CollOpts& opts, Tag base_tag) {
  const int S = segs.count();
  const std::size_t nkids = e.kids_global.size();
  // Double-buffered per-child scratch: segment s lives in window s % 2.
  std::vector<mpi::Payload> scratch;
  scratch.reserve(nkids * 2);
  for (std::size_t i = 0; i < nkids * 2; ++i)
    scratch.push_back(make_scratch(ctx, accum, opts.segment_size));
  auto scratch_view = [&](std::size_t c, int s, Bytes len) {
    return scratch[c * 2 + static_cast<std::size_t>(s % 2)].view().slice(0,
                                                                         len);
  };

  std::vector<std::vector<mpi::RequestPtr>> recvs(
      static_cast<std::size_t>(S));
  auto post_recvs = [&](int s) {
    auto& rs = recvs[static_cast<std::size_t>(s)];
    rs.reserve(nkids);
    for (std::size_t c = 0; c < nkids; ++c) {
      rs.push_back(ctx.irecv(e.kids_global[c], base_tag + s,
                             scratch_view(c, s, segs.length(s))));
    }
  };

  for (int s = 0; s < std::min(S, 2); ++s) post_recvs(s);
  mpi::RequestPtr pending_send;
  for (int s = 0; s < S; ++s) {
    const Bytes len = segs.length(s);
    mpi::MutView piece = accum.slice(segs.offset(s), len);
    co_await mpi::wait_all(recvs[static_cast<std::size_t>(s)]);
    for (std::size_t c = 0; c < nkids; ++c) {
      co_await accumulate(ctx, opts, piece,
                          scratch_view(c, s, len).as_const(), op, dtype, len);
    }
    if (s + 2 < S) post_recvs(s + 2);
    if (!e.is_root) {
      if (pending_send) co_await mpi::wait(pending_send);
      pending_send = ctx.isend(e.parent_global, base_tag + s,
                               piece.as_const(),
                               opts.spaces(ctx.rank(), e.parent_global));
    }
  }
  if (pending_send) co_await mpi::wait(pending_send);
}

// ---------------------------------------------------------------------------
// ADAPT event-driven reduce: per-child receive pipelines of depth M, deferred
// accumulations, and a segment is forwarded up the moment every child has
// contributed to it — independent of every other segment and child.
// ---------------------------------------------------------------------------
struct AdaptReduceState {
  runtime::Context* ctx = nullptr;
  Edges edges;
  mpi::MutView accum;
  mpi::ReduceOp op{};
  mpi::Datatype dtype{};
  Segmenter segs{0, 1};
  CollOpts opts;
  Tag base_tag = 0;

  std::vector<int> contributed;          // per segment: children folded in
  std::vector<int> next_recv;            // per child: next segment to post
  std::vector<mpi::Payload> scratch;     // per (child, window) buffers
  std::deque<int> ready;                 // segments ready to send up
  int inflight_up = 0;
  mpi::ErrCode error = mpi::ErrCode::kOk;  // first failure wins
  sim::Countdown done{0};

  std::size_t nkids() const { return edges.kids_global.size(); }
  /// Scratch buffers are identified by an explicit per-child window: a window
  /// is reposted for the next segment only after its fold ran, so a slot is
  /// never overwritten while the accumulation still reads it (folds may
  /// complete out of segment order).
  mpi::MutView scratch_view(std::size_t c, int window, Bytes len) {
    return scratch[c * static_cast<std::size_t>(opts.outstanding_recvs) +
                   static_cast<std::size_t>(window)]
        .view()
        .slice(0, len);
  }
  mpi::MutView piece(int s) {
    return accum.slice(segs.offset(s), segs.length(s));
  }

  /// A request failed: record the first cause, stop pumping, wake the
  /// awaiter (see AdaptBcastState::fail).
  void fail(mpi::ErrCode code) {
    if (error != mpi::ErrCode::kOk) return;
    error = code;
    done.force();
  }

  void post_recv(const std::shared_ptr<AdaptReduceState>& self, std::size_t c,
                 int window) {
    if (error != mpi::ErrCode::kOk) return;
    if (next_recv[c] >= segs.count()) return;
    const int s = next_recv[c]++;
    auto req = ctx->irecv(edges.kids_global[c], base_tag + s,
                          scratch_view(c, window, segs.length(s)));
    req->set_completion_cb([self, c, s, window](mpi::Request& r) {
      if (r.failed()) return self->fail(r.error());
      self->on_recv(self, c, s, window);
    });
  }

  void on_recv(const std::shared_ptr<AdaptReduceState>& self, std::size_t c,
               int s, int window) {
    if (error != mpi::ErrCode::kOk) return;
    detail::segment_event(*ctx, "seg_recv", s);
    const Bytes len = segs.length(s);
    auto fold = [self, c, s, window, len] {
      if (self->error != mpi::ErrCode::kOk) return;
      detail::apply_if_real(self->piece(s),
                            self->scratch_view(c, window, len).as_const(),
                            self->op, self->dtype, len);
      self->post_recv(self, c, window);
      if (++self->contributed[static_cast<std::size_t>(s)] ==
          static_cast<int>(self->nkids())) {
        self->segment_ready(self, s);
      }
    };
    if (opts.gpu_reduce) {
      gpu::Device* dev = ctx->gpu();
      ADAPT_CHECK(dev != nullptr) << "gpu_reduce on a rank without a GPU";
      // Round-robin streams so independent segments overlap on the device.
      dev->stream(s % dev->num_streams())
          .launch(dev->reduce_cost(len), std::move(fold));
    } else {
      // ADAPT folds run inside the event callbacks (progress context).
      ctx->defer_progress(detail::reduce_cost(*ctx, opts, len),
                          std::move(fold));
    }
  }

  void segment_ready(const std::shared_ptr<AdaptReduceState>& self, int s) {
    detail::segment_event(*ctx, "seg_ready", s);
    if (edges.is_root) {
      done.signal();
      return;
    }
    ready.push_back(s);
    pump_parent(self);
  }

  void pump_parent(const std::shared_ptr<AdaptReduceState>& self) {
    while (error == mpi::ErrCode::kOk &&
           inflight_up < opts.outstanding_sends && !ready.empty()) {
      const int s = ready.front();
      ready.pop_front();
      ++inflight_up;
      detail::segment_event(*ctx, "seg_send", s);
      auto req = ctx->isend(edges.parent_global, base_tag + s,
                            piece(s).as_const(),
                            opts.spaces(ctx->rank(), edges.parent_global));
      req->set_completion_cb([self](mpi::Request& r) {
        if (r.failed()) return self->fail(r.error());
        --self->inflight_up;
        self->done.signal();
        self->pump_parent(self);
      });
    }
  }
};

sim::Task<> reduce_adapt(runtime::Context& ctx, const Edges& e,
                         mpi::MutView accum, mpi::ReduceOp op,
                         mpi::Datatype dtype, const Segmenter& segs,
                         const CollOpts& opts, Tag base_tag) {
  ADAPT_CHECK(opts.outstanding_sends >= 1);
  ADAPT_CHECK(opts.outstanding_recvs >= 1);
  const int S = segs.count();
  auto st = std::make_shared<AdaptReduceState>();
  st->ctx = &ctx;
  st->edges = e;
  st->accum = accum;
  st->op = op;
  st->dtype = dtype;
  st->segs = segs;
  st->opts = opts;
  st->base_tag = base_tag;
  st->contributed.assign(static_cast<std::size_t>(S), 0);
  st->next_recv.assign(st->nkids(), 0);
  const std::size_t windows =
      st->nkids() * static_cast<std::size_t>(opts.outstanding_recvs);
  st->scratch.reserve(windows);
  for (std::size_t i = 0; i < windows; ++i)
    st->scratch.push_back(make_scratch(ctx, accum, opts.segment_size));

  // Root finishes when all segments are fully reduced; everyone else when all
  // segments have been sent up.
  st->done = sim::Countdown(S);

  if (st->nkids() == 0) {
    // Leaf: every segment is ready immediately; the N-outstanding pipeline to
    // the parent takes over.
    for (int s = 0; s < S; ++s) st->segment_ready(st, s);
  } else {
    for (std::size_t c = 0; c < st->nkids(); ++c) {
      const int prepost = std::min(S, opts.outstanding_recvs);
      for (int window = 0; window < prepost; ++window)
        st->post_recv(st, c, window);
    }
  }
  co_await st->done;
  // Land back on the application thread (see bcast_adapt).
  co_await ctx.compute(0);
  if (st->error != mpi::ErrCode::kOk)
    throw mpi::FaultError(st->error, "adapt reduce failed");
}

}  // namespace

sim::Task<> reduce_tagged(runtime::Context& ctx, const mpi::Comm& comm,
                          mpi::MutView accum, mpi::ReduceOp op,
                          mpi::Datatype dtype, Rank root, const Tree& tree,
                          Style style, const CollOpts& opts, Tag base_tag) {
  ADAPT_CHECK(tree.root == root)
      << "tree rooted at " << tree.root << ", reduce root " << root;
  const Edges e = detail::resolve(ctx, comm, tree);
  const Segmenter segs(accum.size, opts.segment_size);
  detail::CollSpan span(ctx, "reduce", style_name(style), accum.size);
  switch (style) {
    case Style::kBlocking:
      co_await reduce_blocking(ctx, e, accum, op, dtype, segs, opts, base_tag);
      co_return;
    case Style::kNonblocking:
      co_await reduce_nonblocking(ctx, e, accum, op, dtype, segs, opts,
                                  base_tag);
      co_return;
    case Style::kAdapt:
      co_await reduce_adapt(ctx, e, accum, op, dtype, segs, opts, base_tag);
      co_return;
  }
  ADAPT_UNREACHABLE("bad style");
}

sim::Task<> reduce(runtime::Context& ctx, const mpi::Comm& comm,
                   mpi::MutView accum, mpi::ReduceOp op, mpi::Datatype dtype,
                   Rank root, const Tree& tree, Style style,
                   const CollOpts& opts) {
  const Segmenter segs(accum.size, opts.segment_size);
  const Tag base_tag = ctx.alloc_tags(segs.count());
  co_await reduce_tagged(ctx, comm, accum, op, dtype, root, tree, style, opts,
                         base_tag);
}

}  // namespace adapt::coll
