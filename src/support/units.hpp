// Fundamental quantities used throughout the library.
//
// Virtual (and wall) time is carried as a signed 64-bit nanosecond count:
// cheap to copy, exact, and wide enough for ~292 years of simulation. Sizes
// are byte counts. Both get thin helpers instead of heavyweight unit types so
// arithmetic stays transparent in performance-sensitive simulator code.
#pragma once

#include <cstdint>
#include <string>

namespace adapt {

/// Nanoseconds, the library-wide time unit (virtual time in the simulator,
/// steady-clock time in the thread engine).
using TimeNs = std::int64_t;

/// Byte counts for message/payload sizes.
using Bytes = std::int64_t;

/// Process identifier inside a communicator (dense, 0-based).
using Rank = std::int32_t;

/// Message tag, MPI-style.
using Tag = std::int32_t;

inline constexpr Rank kAnyRank = -1;  ///< wildcard source for receives
inline constexpr Tag kAnyTag = -1;    ///< wildcard tag for receives

/// Which memory a message endpoint lives in (GPU-aware paths, paper §4).
enum class MemSpace { kHost, kDevice };

// -- time construction helpers ------------------------------------------------
constexpr TimeNs nanoseconds(std::int64_t v) { return v; }
constexpr TimeNs microseconds(double v) { return static_cast<TimeNs>(v * 1e3); }
constexpr TimeNs milliseconds(double v) { return static_cast<TimeNs>(v * 1e6); }
constexpr TimeNs seconds(double v) { return static_cast<TimeNs>(v * 1e9); }

constexpr double to_us(TimeNs t) { return static_cast<double>(t) / 1e3; }
constexpr double to_ms(TimeNs t) { return static_cast<double>(t) / 1e6; }
constexpr double to_sec(TimeNs t) { return static_cast<double>(t) / 1e9; }

// -- size construction helpers ------------------------------------------------
constexpr Bytes kib(std::int64_t v) { return v * 1024; }
constexpr Bytes mib(std::int64_t v) { return v * 1024 * 1024; }
constexpr Bytes gib(std::int64_t v) { return v * 1024 * 1024 * 1024; }

/// "4.0MB", "64KB", "973B" — compact human-readable size used in reports.
std::string format_bytes(Bytes b);

/// "12.34ms", "567.8us", "1.234s" — compact human-readable duration.
std::string format_time(TimeNs t);

/// Gb/s given bytes moved over a duration (0 duration -> 0).
double gbps(Bytes bytes, TimeNs duration);

}  // namespace adapt
