// IMB-style measurement harness (the paper measures with the Intel MPI
// Benchmark): warm-up iterations, barrier-separated timed iterations, per-op
// time = max over ranks, reported as min/avg/max across iterations.
#pragma once

#include <functional>
#include <string>

#include "src/mpi/comm.hpp"
#include "src/runtime/context.hpp"
#include "src/support/stats.hpp"

namespace adapt::bench {

/// One timed operation; invoked once per iteration on every rank.
/// `iteration` counts from 0 including warm-up.
using CollectiveFn =
    std::function<sim::Task<>(runtime::Context& ctx, int iteration)>;

struct MeasureOpts {
  int warmup = 1;
  int iterations = 5;
  /// Idle time inserted between iterations. Under injected noise this makes
  /// successive iterations sample different alignments against the burst
  /// period (virtual-time sleeps are free on the SimEngine).
  TimeNs gap = 0;
};

struct Measurement {
  Samples op_ms;  ///< per-iteration op time (max over ranks), milliseconds
  double avg_ms() const { return op_ms.mean(); }
  double min_ms() const { return op_ms.min(); }
  double max_ms() const { return op_ms.max(); }
};

/// Runs `fn` under the IMB discipline on `engine` over `comm`: every
/// iteration is barrier-separated and timed individually (per-op time = max
/// over ranks). Best for deterministic, noise-free comparisons.
Measurement measure(runtime::Engine& engine, const mpi::Comm& comm,
                    const CollectiveFn& fn, const MeasureOpts& opts = {});

/// IMB's actual timing loop: after warm-up, iterations run BACK-TO-BACK with
/// no intervening barrier, and each rank reports (loop end - loop start) /
/// iterations; the op time is the average over ranks. Under injected noise
/// this is the measurement the paper's Fig. 7 uses — back-to-back pipelined
/// iterations let asynchronous designs absorb bursts, while synchronising
/// designs stall the loop on every delayed rank.
Measurement measure_throughput(runtime::Engine& engine, const mpi::Comm& comm,
                               const CollectiveFn& fn,
                               const MeasureOpts& opts = {});

}  // namespace adapt::bench
