// Properties specific to the ADAPT event-driven implementations (§2.2):
// the N-outstanding-sends bound, the M-pre-posted-receives rule and its
// unexpected-message consequences, segment/child independence, and the
// performance relations the paper's analysis predicts (asserted with
// generous margins so they are robust to model tuning).
#include <gtest/gtest.h>

#include <map>

#include "src/coll/coll.hpp"
#include "src/coll/topo_tree.hpp"
#include "src/runtime/sim_engine.hpp"
#include "src/topo/presets.hpp"

namespace adapt::coll {
namespace {

using runtime::Context;
using runtime::SimEngine;

TimeNs time_bcast(SimEngine& engine, const mpi::Comm& world, const Tree& tree,
                  Bytes msg, Style style, const CollOpts& opts) {
  TimeNs worst = 0;
  auto program = [&](Context& ctx) -> sim::Task<> {
    const TimeNs t0 = ctx.now();
    co_await bcast(ctx, world, mpi::MutView{nullptr, msg}, tree.root, tree,
                   style, opts);
    worst = std::max(worst, ctx.now() - t0);
  };
  engine.run(program);
  return worst;
}

TEST(AdaptInvariants, NoUnexpectedMessagesWhenMExceedsN) {
  // With M > N, every segment finds a pre-posted receive (§2.2.1).
  topo::Machine m(topo::cori(2), 64);
  SimEngine engine(m);
  const mpi::Comm world = mpi::Comm::world(64);
  const Tree tree = build_topo_tree(m, world, 0);
  auto program = [&](Context& ctx) -> sim::Task<> {
    co_await bcast(ctx, world, mpi::MutView{nullptr, mib(2)}, 0, tree,
                   Style::kAdapt,
                   CollOpts{.segment_size = kib(64),
                            .outstanding_sends = 2,
                            .outstanding_recvs = 6});
  };
  engine.run(program);
  for (Rank r = 0; r < 64; ++r) {
    EXPECT_EQ(engine.context(r).endpoint().matcher().total_unexpected(), 0u)
        << "rank " << r;
  }
}

TEST(AdaptInvariants, MBelowNCausesUnexpectedEagerMessages) {
  // Inverting the rule floods the receiver: in an event-driven reduce the
  // re-post of a scratch window waits for the fold, so with M = 1 and many
  // eager segments in flight per child, arrivals overtake the posted
  // receives and land in the unexpected queue (the §2.2.1 cost).
  topo::Machine m(topo::cori(1), 8);
  SimEngine engine(m);
  const mpi::Comm world = mpi::Comm::world(8);
  const Tree tree = flat_tree(8, 0);
  auto program = [&](Context& ctx) -> sim::Task<> {
    co_await reduce(ctx, world, mpi::MutView{nullptr, kib(512)},
                    mpi::ReduceOp::kSum, mpi::Datatype::kFloat, 0, tree,
                    Style::kAdapt,
                    CollOpts{.segment_size = kib(16),  // eager-sized
                             .outstanding_sends = 8,
                             .outstanding_recvs = 1});
  };
  engine.run(program);
  EXPECT_GT(engine.context(0).endpoint().matcher().total_unexpected(), 0u);
}

TEST(AdaptInvariants, DeeperPipelineNeverSlower) {
  // More outstanding sends/receives cannot hurt a quiet network (and helps
  // saturate long chains).
  topo::Machine m(topo::cori(2), 64);
  const mpi::Comm world = mpi::Comm::world(64);
  const Tree tree = build_topo_tree(m, world, 0);
  SimEngine shallow(m), deep(m);
  const TimeNs t_shallow =
      time_bcast(shallow, world, tree, mib(4), Style::kAdapt,
                 CollOpts{.segment_size = kib(128),
                          .outstanding_sends = 1,
                          .outstanding_recvs = 2});
  const TimeNs t_deep =
      time_bcast(deep, world, tree, mib(4), Style::kAdapt,
                 CollOpts{.segment_size = kib(128),
                          .outstanding_sends = 4,
                          .outstanding_recvs = 8});
  EXPECT_LE(t_deep, t_shallow + t_shallow / 10);
}

TEST(AdaptInvariants, AdaptAtLeastAsFastAsWaitallOnSameTree) {
  // §3.2.2: removing the Waitall can only help; on a heterogeneous tree the
  // gain is the point of the design.
  topo::Machine m(topo::cori(4), 128);
  const mpi::Comm world = mpi::Comm::world(128);
  const Tree tree = build_topo_tree(m, world, 0);
  const CollOpts opts{.segment_size = kib(128)};
  SimEngine e1(m), e2(m);
  const TimeNs adapt_t =
      time_bcast(e1, world, tree, mib(4), Style::kAdapt, opts);
  const TimeNs waitall_t =
      time_bcast(e2, world, tree, mib(4), Style::kNonblocking, opts);
  EXPECT_LE(adapt_t, waitall_t + waitall_t / 20);
}

TEST(AdaptInvariants, BlockingSlowestStyleOnFlatTree) {
  // A flat tree maximises the per-child serialisation of Algorithm 1.
  topo::Machine m(topo::cori(1), 16);
  const mpi::Comm world = mpi::Comm::world(16);
  const Tree tree = flat_tree(16, 0);
  const CollOpts opts{.segment_size = kib(64)};
  std::map<Style, TimeNs> times;
  for (Style style :
       {Style::kBlocking, Style::kNonblocking, Style::kAdapt}) {
    SimEngine engine(m);
    times[style] = time_bcast(engine, world, tree, mib(1), style, opts);
  }
  EXPECT_GT(times[Style::kBlocking], times[Style::kAdapt]);
  EXPECT_GE(times[Style::kBlocking], times[Style::kNonblocking]);
}

TEST(AdaptInvariants, NoiseSlowdownOrdering) {
  // The paper's Fig. 7 relation at example scale: under injected noise the
  // event-driven style suffers least, blocking suffers most.
  topo::Machine m(topo::cori(2), 64);
  const mpi::Comm world = mpi::Comm::world(64);
  const Tree tree = build_topo_tree(m, world, 0);
  const CollOpts opts{.segment_size = kib(128)};
  std::map<Style, double> slowdown;
  for (Style style : {Style::kBlocking, Style::kAdapt}) {
    TimeNs base = 0, noisy = 0;
    for (int pass = 0; pass < 2; ++pass) {
      runtime::SimEngineOptions options;
      if (pass == 1) options.noise = noise::paper_noise(10, 99);
      SimEngine engine(m, options);
      TimeNs total = 0;
      auto program = [&](Context& ctx) -> sim::Task<> {
        co_await barrier(ctx, world);
        const TimeNs t0 = ctx.now();
        for (int i = 0; i < 8; ++i) {
          co_await bcast(ctx, world, mpi::MutView{nullptr, mib(4)}, 0, tree,
                         style, opts);
        }
        if (ctx.rank() == 0) total = ctx.now() - t0;
      };
      engine.run(program);
      (pass == 0 ? base : noisy) = total;
    }
    slowdown[style] =
        static_cast<double>(noisy) / static_cast<double>(base);
  }
  EXPECT_LT(slowdown[Style::kAdapt], slowdown[Style::kBlocking]);
}

TEST(AdaptInvariants, StrongScalingChainIsFlat) {
  // §5.2.1: with enough segments the chain's cost is ~independent of P.
  const CollOpts opts{.segment_size = kib(128)};
  std::vector<TimeNs> times;
  for (int ranks : {128, 256, 512}) {
    topo::Machine m(topo::cori((ranks + 31) / 32), ranks);
    const mpi::Comm world = mpi::Comm::world(ranks);
    const Tree tree = build_topo_tree(m, world, 0);
    SimEngine engine(m);
    times.push_back(
        time_bcast(engine, world, tree, mib(4), Style::kAdapt, opts));
  }
  // Quadrupling the ranks costs < 60% extra time.
  EXPECT_LT(times[2], times[0] + times[0] * 6 / 10);
}

TEST(AdaptInvariants, SegmentsArriveInAnyOrderCorrectly) {
  // Force wild reordering: tiny N with large M and non-uniform segment
  // cost — data correctness must be unaffected (unique tags per segment).
  topo::Machine m(topo::cori(1), 4);
  SimEngine engine(m);
  const mpi::Comm world = mpi::Comm::world(4);
  const Tree tree = flat_tree(4, 0);
  std::vector<std::vector<std::byte>> bufs(4, std::vector<std::byte>(3000));
  for (std::size_t i = 0; i < 3000; ++i) bufs[0][i] = std::byte(i % 251);
  auto program = [&](Context& ctx) -> sim::Task<> {
    auto& mine = bufs[static_cast<std::size_t>(ctx.rank())];
    co_await bcast(ctx, world, mpi::MutView{mine.data(), 3000}, 0, tree,
                   Style::kAdapt,
                   CollOpts{.segment_size = 700,
                            .outstanding_sends = 5,
                            .outstanding_recvs = 7});
  };
  engine.run(program);
  for (int r = 1; r < 4; ++r) {
    EXPECT_EQ(bufs[static_cast<std::size_t>(r)], bufs[0]) << "rank " << r;
  }
}

}  // namespace
}  // namespace adapt::coll
