file(REMOVE_RECURSE
  "../bench/fig10_scaling_cpu"
  "../bench/fig10_scaling_cpu.pdb"
  "CMakeFiles/fig10_scaling_cpu.dir/fig10_scaling_cpu.cpp.o"
  "CMakeFiles/fig10_scaling_cpu.dir/fig10_scaling_cpu.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_scaling_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
