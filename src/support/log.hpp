// Minimal leveled logger. Off by default (benchmarks must stay quiet); tests
// and examples can raise the level. Fully thread-safe: the level is atomic
// and the sink (formatting + output) runs under one mutex, so concurrent
// lines from the thread engine's rank threads never interleave.
#pragma once

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>

namespace adapt {

enum class LogLevel { kOff = 0, kError, kWarn, kInfo, kDebug, kTrace };

/// Global log threshold; messages above it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Redirects formatted log lines (tests capture output; null restores the
/// default stderr sink). The sink is invoked under the logger's mutex.
using LogSink = std::function<void(const std::string& line)>;
void set_log_sink(LogSink sink);

/// Per-thread runtime context: while one is active, every line carries a
/// `t=<now>ns r=<rank>` prefix — virtual time on the SimEngine, steady-clock
/// time on the ThreadEngine. Engines install it around rank callbacks.
class ScopedLogContext {
 public:
  ScopedLogContext(int rank, std::int64_t (*now)(const void*),
                   const void* arg);
  ScopedLogContext(const ScopedLogContext&) = delete;
  ScopedLogContext& operator=(const ScopedLogContext&) = delete;
  ~ScopedLogContext();
};

namespace detail {
void log_line(LogLevel level, const std::string& line);
}

/// Stream-style logging: ADAPT_LOG(kInfo) << "rank " << r << " done";
#define ADAPT_LOG(level)                                              \
  if (::adapt::LogLevel::level > ::adapt::log_level()) {              \
  } else                                                              \
    ::adapt::detail::LogStream(::adapt::LogLevel::level).stream()

namespace detail {

class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, ss_.str()); }
  std::ostream& stream() { return ss_; }

 private:
  LogLevel level_;
  std::ostringstream ss_;
};

}  // namespace detail
}  // namespace adapt
