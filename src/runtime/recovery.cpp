// Engine-level recovery service: see recovery.hpp for the protocol overview.
#include "src/runtime/recovery.hpp"

#include <bit>

#include "src/obs/trace.hpp"
#include "src/runtime/sim_engine.hpp"
#include "src/support/error.hpp"

namespace adapt::runtime {

// -- per-rank facade ----------------------------------------------------------

class RecoveryService::Facade final : public Recovery {
 public:
  Facade(RecoveryService& svc, Rank rank) : svc_(svc), rank_(rank) {}

  const RecoveryOptions& options() const override { return svc_.options_; }
  std::uint64_t failed_mask() const override {
    return svc_.failed_mask(rank_);
  }
  void report_failure(Rank peer) override { svc_.on_notice(rank_, peer); }
  void clear_poison() override { svc_.clear_poison(rank_); }
  void acquire_heartbeats() override { svc_.acquire(rank_); }
  void release_heartbeats() override { svc_.release(rank_); }
  void acquire_poison_shield() override { svc_.acquire_shield(rank_); }
  void release_poison_shield() override { svc_.release_shield(rank_); }
  void revoke(std::uint64_t fingerprint) override {
    svc_.revoke(rank_, fingerprint);
  }
  bool revoked(std::uint64_t fingerprint) const override {
    return svc_.revoked(rank_, fingerprint);
  }
  sim::Task<AgreeOutcome> agree(std::uint64_t fingerprint,
                                std::uint64_t members,
                                std::uint64_t flags) override {
    return svc_.agree(rank_, fingerprint, members, flags);
  }

 private:
  RecoveryService& svc_;
  Rank rank_;
};

// -- service ------------------------------------------------------------------

RecoveryService::RecoveryService(SimEngine& engine, RecoveryOptions options)
    : engine_(engine), options_(options) {
  const int n = engine.nranks();
  ADAPT_CHECK(n <= 64)
      << "recovery mode tracks membership in 64-bit masks (nranks = " << n
      << ")";
  ranks_.resize(static_cast<std::size_t>(n));
  facades_.reserve(static_cast<std::size_t>(n));
  for (Rank r = 0; r < n; ++r) {
    facades_.push_back(std::make_unique<Facade>(*this, r));
  }
}

RecoveryService::~RecoveryService() = default;

Recovery& RecoveryService::rank_facade(Rank r) {
  ADAPT_CHECK(r >= 0 && r < static_cast<Rank>(facades_.size()));
  return *facades_[static_cast<std::size_t>(r)];
}

void RecoveryService::proto_instant(Rank self, const char* what,
                                    std::int64_t arg) {
  if (obs::Recorder* rec = engine_.recorder()) {
    rec->instant(obs::rank_pid(self), obs::kTidProgress, obs::Cat::kProto,
                 what, rec->now(), arg);
  }
}

void RecoveryService::count(const char* name, std::int64_t by) {
  if (obs::Recorder* rec = engine_.recorder()) {
    rec->metrics().counter(name) += by;
  }
}

void RecoveryService::note_detection(Rank about) {
  const std::uint64_t bit = 1ull << about;
  if (first_noticed_ & bit) return;
  first_noticed_ |= bit;
  obs::Recorder* rec = engine_.recorder();
  if (rec == nullptr) return;
  const TimeNs death = engine_.death_time(about);
  if (death < 0 || rec->now() < death) return;  // not a planned death
  const TimeNs latency = rec->now() - death;
  rec->metrics().histogram("recovery.detect_latency_ns").record(latency);
}

// -- detection & notification -------------------------------------------------

void RecoveryService::on_give_up(Rank self, Rank peer) {
  if (peer < 0 || peer >= static_cast<Rank>(ranks_.size()) || peer == self) {
    return;
  }
  on_notice(self, peer);
}

void RecoveryService::on_notice(Rank self, Rank about) {
  if (about < 0 || about >= static_cast<Rank>(ranks_.size())) return;
  RankState& rs = ranks_[static_cast<std::size_t>(self)];
  const std::uint64_t bit = 1ull << about;
  if (rs.failed & bit) return;  // idempotent per (observer, failed rank)
  rs.failed |= bit;
  proto_instant(self, "fail_notice", about);
  count("recovery.fail_notices");
  note_detection(about);
  // Gossip: reliably flood the suspect to every rank not itself in our failed
  // view (ascending order — determinism). Receivers re-flood once, so a
  // notice reaches everyone even if the original observer dies.
  if (mpi::ReliableChannel* ch = engine_.channel(self)) {
    for (Rank r = 0; r < static_cast<Rank>(ranks_.size()); ++r) {
      if (r == self || ((rs.failed >> r) & 1u)) continue;
      mpi::Frame f;
      f.kind = mpi::Frame::Kind::kFailNotice;
      f.rec.about = about;
      ch->submit(r, f);
    }
  }
  // Unblock: fail this rank's pending (and near-future) requests so a
  // coroutine wedged inside a collective whose peer died unwinds into its
  // retry wrapper. The wrapper re-arms the endpoint via clear_poison before
  // the next attempt; EC collectives shield themselves instead.
  if (rs.shield == 0 && !engine_.endpoint(self).poisoned()) {
    engine_.poison_rank(self, mpi::ErrCode::kErrProcFailed);
  }
  // A view change can re-elect a coordinator, complete an agreement with
  // fewer needed contributions, or exclude us — drive every instance.
  for (auto& [key, st] : rs.agreements) {
    (void)st;
    step_agreement(self, key.first, key.second);
  }
}

// -- revocation ---------------------------------------------------------------

void RecoveryService::revoke(Rank self, std::uint64_t fingerprint) {
  RankState& rs = ranks_[static_cast<std::size_t>(self)];
  if (!rs.revoked.insert(fingerprint).second) return;
  proto_instant(self, "revoke", static_cast<std::int64_t>(fingerprint));
  count("recovery.revokes");
  if (mpi::ReliableChannel* ch = engine_.channel(self)) {
    std::int64_t fanout = 0;
    for (Rank r = 0; r < static_cast<Rank>(ranks_.size()); ++r) {
      if (r == self || ((rs.failed >> r) & 1u)) continue;
      mpi::Frame f;
      f.kind = mpi::Frame::Kind::kRevoke;
      f.rec.fingerprint = fingerprint;
      ch->submit(r, f);
      ++fanout;
    }
    count("recovery.revoke_frames", fanout);
  }
}

void RecoveryService::on_revoke(Rank self, std::uint64_t fingerprint) {
  RankState& rs = ranks_[static_cast<std::size_t>(self)];
  if (rs.revoked.count(fingerprint) != 0) return;  // idempotent
  proto_instant(self, "revoked", static_cast<std::int64_t>(fingerprint));
  revoke(self, fingerprint);  // mark + forward the flood
  // A revoked communicator means some rank already failed its collective and
  // moved on to recovery — unblock anyone still pumping data on it. Idle
  // ranks (nothing pending) are untouched.
  if (rs.shield == 0 && !engine_.endpoint(self).poisoned() &&
      engine_.endpoint(self).has_pending()) {
    engine_.poison_rank(self, mpi::ErrCode::kErrRevoked);
  }
}

// -- endpoint re-arm ----------------------------------------------------------

void RecoveryService::clear_poison(Rank self) {
  mpi::Endpoint& ep = engine_.endpoint(self);
  if (!ep.poisoned()) return;
  // Watchdog poison is the harness declaring the run wedged — terminal.
  if (ep.poison_code() == mpi::ErrCode::kErrWatchdog) return;
  ep.clear_poison();
}

// -- ring heartbeats ----------------------------------------------------------

void RecoveryService::acquire(Rank self) {
  RankState& rs = ranks_[static_cast<std::size_t>(self)];
  if (++rs.interest == 1) {
    // New generation invalidates any timer chain left from a previous
    // interest window, so exactly one chain runs per rank.
    schedule_heartbeat(self, ++rs.hb_gen);
  }
}

void RecoveryService::release(Rank self) {
  RankState& rs = ranks_[static_cast<std::size_t>(self)];
  ADAPT_CHECK(rs.interest > 0) << "heartbeat release without acquire";
  --rs.interest;  // the pending timer sees interest == 0 and stops
}

void RecoveryService::schedule_heartbeat(Rank self, std::uint64_t gen) {
  engine_.simulator().after(options_.heartbeat_period, [this, self, gen] {
    RankState& rs = ranks_[static_cast<std::size_t>(self)];
    if (rs.hb_gen != gen || rs.interest <= 0) return;
    // Ping the nearest ring successor not already in the failed view. The
    // ping's retry exhaustion (channel give-up) IS the detection signal —
    // this is what notices a dead rank nobody happens to send data to,
    // e.g. a bcast root that only receives contributions in reduce.
    const int n = static_cast<int>(ranks_.size());
    for (int d = 1; d < n; ++d) {
      const Rank succ = static_cast<Rank>((self + d) % n);
      if ((rs.failed >> succ) & 1u) continue;
      if (mpi::ReliableChannel* ch = engine_.channel(self)) {
        mpi::Frame f;
        f.kind = mpi::Frame::Kind::kPing;
        ch->submit(succ, f);
      }
      break;
    }
    schedule_heartbeat(self, gen);
  });
}

// -- agreement ----------------------------------------------------------------

void RecoveryService::send_agree(Rank self, Rank to, std::uint64_t fingerprint,
                                 std::uint32_t seq, std::uint8_t phase,
                                 std::uint64_t flags, std::uint64_t view) {
  mpi::ReliableChannel* ch = engine_.channel(self);
  if (!ch) return;
  mpi::Frame f;
  f.kind = mpi::Frame::Kind::kAgree;
  f.rec.fingerprint = fingerprint;
  f.rec.seq = seq;
  f.rec.phase = phase;
  f.rec.flags = flags;
  f.rec.view = view;
  ch->submit(to, f);
  proto_instant(self, phase == 0 ? "agree_contrib" : "agree_result", to);
  count("recovery.agree_frames");
}

void RecoveryService::complete(Rank self, AgreeState& st,
                               AgreeOutcome outcome) {
  if (st.done) return;
  st.outcome = outcome;
  st.done = true;
  proto_instant(self, "agree_done",
                static_cast<std::int64_t>(outcome.failed));
  if (st.waiter) {
    auto h = st.waiter;
    st.waiter = {};
    engine_.run_on(self, [h] { h.resume(); }, 0);
  }
}

void RecoveryService::step_agreement(Rank self, std::uint64_t fingerprint,
                                     std::uint32_t seq) {
  RankState& rs = ranks_[static_cast<std::size_t>(self)];
  auto it = rs.agreements.find({fingerprint, seq});
  if (it == rs.agreements.end()) return;
  AgreeState& st = it->second;
  // Passive state created by frames that outran the local agree() call:
  // contributions are already folded; agree() drives the first step.
  if (!st.started) return;
  const std::uint64_t view = rs.failed & st.members;
  const std::uint64_t survivors = st.members & ~view;
  if (st.done) {
    // Late-phase service: if the membership changed under a completed
    // agreement, resend our contribution so a newly elected coordinator can
    // still converge (it answers us with its frozen result; we ignore it).
    if (((view >> self) & 1u) || survivors == 0) return;
    const Rank coord = static_cast<Rank>(std::countr_zero(survivors));
    if (coord != self && st.sent_contrib_to != coord) {
      st.sent_contrib_to = coord;
      send_agree(self, coord, fingerprint, seq, 0, st.my_flags, view);
    }
    return;
  }
  if ((view >> self) & 1u) {
    // We appear in the failed view: some survivor's detector declared us
    // dead. Self-exclude — the survivors will shrink us away.
    complete(self, st, AgreeOutcome{0, view, true});
    return;
  }
  if (st.has_result) {
    complete(self, st, AgreeOutcome{st.result_flags, st.result_failed, false});
    return;
  }
  ADAPT_CHECK(survivors != 0);
  const Rank coord = static_cast<Rank>(std::countr_zero(survivors));
  if (coord == self) {
    const std::uint64_t needed = survivors & ~(1ull << self);
    if ((st.contributed & needed) != needed) return;  // still gathering
    if (!st.decided) {
      // Decide exactly once: AND of everyone's flags, OR of everyone's
      // failed views, confined to the membership. The decision is frozen —
      // later view changes re-send it, never re-derive it.
      st.decided = true;
      st.result_flags = st.flags_acc & st.my_flags;
      st.result_failed = (st.view_acc | view) & st.members;
      proto_instant(self, "agree_decided",
                    static_cast<std::int64_t>(st.result_failed));
      count("recovery.agree_decided");
    }
    for (Rank r = 0; r < static_cast<Rank>(ranks_.size()); ++r) {
      if ((needed >> r) & 1u) {
        send_agree(self, r, fingerprint, seq, 1, st.result_flags,
                   st.result_failed);
      }
    }
    complete(self, st, AgreeOutcome{st.result_flags, st.result_failed, false});
    return;
  }
  // Participant: (re)contribute whenever the coordinator changes.
  if (st.sent_contrib_to != coord) {
    st.sent_contrib_to = coord;
    send_agree(self, coord, fingerprint, seq, 0, st.my_flags, view);
  }
}

void RecoveryService::on_agree(Rank self, Rank from,
                               const mpi::RecoveryInfo& info) {
  RankState& rs = ranks_[static_cast<std::size_t>(self)];
  const auto key = std::make_pair(info.fingerprint, info.seq);
  AgreeState& st = rs.agreements[key];
  if (info.phase == 0) {
    // A contribution: fold it (AND/OR are idempotent, so retransmissions and
    // re-elections fold safely) and mark the sender.
    st.contributed |= 1ull << from;
    st.flags_acc &= info.flags;
    st.view_acc |= info.view;
    if (st.done) {
      // Frozen-decision service: the sender elected us coordinator after we
      // completed. Answer with the decision we hold — our own if we decided,
      // the one we received otherwise — so late restarts converge on it.
      send_agree(self, from, info.fingerprint, info.seq, 1,
                 st.decided ? st.result_flags : st.outcome.flags,
                 st.decided ? st.result_failed : st.outcome.failed);
      return;
    }
    step_agreement(self, info.fingerprint, info.seq);
  } else {
    if (st.done) return;
    st.has_result = true;
    st.result_flags = info.flags;
    st.result_failed = info.view;
    if (st.started) {
      complete(self, st, AgreeOutcome{info.flags, info.view, false});
    }
  }
}

sim::Task<AgreeOutcome> RecoveryService::agree(Rank self,
                                               std::uint64_t fingerprint,
                                               std::uint64_t members,
                                               std::uint64_t flags) {
  RankState& rs = ranks_[static_cast<std::size_t>(self)];
  ADAPT_CHECK((members >> self) & 1u)
      << "rank " << self << " called agree() on a communicator it is not in";
  const std::uint32_t seq = rs.next_agree_seq[fingerprint]++;
  const auto key = std::make_pair(fingerprint, seq);
  AgreeState& st = rs.agreements[key];  // may hold early-arrived frames
  st.members = members;
  st.my_flags = flags;
  st.started = true;
  proto_instant(self, "agree_start", static_cast<std::int64_t>(seq));
  count("recovery.agreements");
  obs::Recorder* rec = engine_.recorder();
  const TimeNs t0 = rec != nullptr ? rec->now() : 0;
  step_agreement(self, fingerprint, seq);
  if (!st.done) {
    co_await sim::Suspend([&st](std::coroutine_handle<> h) { st.waiter = h; });
  }
  if (rec != nullptr) {
    rec->span(obs::rank_pid(self), obs::kTidMain, obs::Cat::kProto, "agree",
              t0, rec->now(), static_cast<std::int64_t>(seq));
  }
  co_return st.outcome;
}

}  // namespace adapt::runtime
