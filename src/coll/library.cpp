#include "src/coll/library.hpp"

#include <map>
#include <mutex>
#include <optional>
#include <sstream>
#include <tuple>

#include "src/coll/han.hpp"
#include "src/coll/hierarchical.hpp"
#include "src/coll/moreops.hpp"
#include "src/coll/topo_tree.hpp"
#include "src/obs/trace.hpp"
#include "src/support/error.hpp"
#include "src/tune/tuner.hpp"

namespace adapt::coll {

Bytes default_segment_size(Bytes message) {
  if (message <= kib(64)) return std::max<Bytes>(1, message);
  return std::clamp<Bytes>(message / 16, kib(16), kib(128));
}

namespace {

/// How a personality picks the communication tree.
struct TreeChoice {
  bool topo = false;        ///< ADAPT-style single-comm topology-aware tree
  TreeKind kind = TreeKind::kBinomial;  ///< rank-order shape when !topo
  int radix = 4;
  TopoTreeSpec topo_spec;   ///< per-level shapes when topo
};

/// One collective's execution recipe for a given message size.
struct Plan {
  enum class Algo { kTree, kHier, kHan, kScatterAllgather, kRabenseifner };
  Algo algo = Algo::kTree;
  Style style = Style::kNonblocking;
  TreeChoice tree;
  HierSpec hier;
  HanSpec han;
  AllgatherAlgo ag = AllgatherAlgo::kRing;
  Bytes segment = kib(128);
  int outstanding_sends = 2;
  int outstanding_recvs = 4;
  double gamma_scale = 1.0;
};

using PlanFn = std::function<Plan(Bytes message)>;

/// Caches built trees; keyed so sub-communicators of equal size but different
/// membership don't collide.
class TreeCache {
 public:
  explicit TreeCache(const topo::Machine& machine) : machine_(machine) {}

  const Tree& get(const mpi::Comm& comm, Rank root, const TreeChoice& c) {
    const Key key{comm.size(), comm.global(0), root, c.topo,
                  static_cast<int>(c.kind), c.radix,
                  static_cast<int>(c.topo_spec.core_level)};
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = cache_.find(key);
    if (it == cache_.end()) {
      Tree t = c.topo ? build_topo_tree(machine_, comm, root, c.topo_spec)
                      : build_tree(c.kind, comm.size(), root, c.radix);
      it = cache_.emplace(key, std::move(t)).first;
    }
    return it->second;
  }

 private:
  using Key = std::tuple<int, Rank, Rank, bool, int, int, int>;
  const topo::Machine& machine_;
  std::mutex mutex_;
  std::map<Key, Tree> cache_;
};

/// Emits the "tuned <winner>" instant carrying the simulated collective
/// time when the coroutine frame unwinds — the counterpart of the
/// "tune <winner>" prediction instant, so model error is measurable from
/// the trace alone (adapt-trace summarize pairs the two).
class TunedProbe {
 public:
  TunedProbe() = default;
  TunedProbe(runtime::Context& ctx, const std::string& winner)
      : rec_(ctx.recorder()) {
    if (rec_ == nullptr) return;
    pid_ = obs::rank_pid(ctx.rank());
    name_ = "tuned " + winner;
    t0_ = rec_->now();
  }
  TunedProbe(const TunedProbe&) = delete;
  TunedProbe& operator=(const TunedProbe&) = delete;
  ~TunedProbe() {
    if (rec_ != nullptr) {
      rec_->instant(pid_, obs::kTidMain, obs::Cat::kTune, std::move(name_),
                    rec_->now(), rec_->now() - t0_);
    }
  }

 private:
  obs::Recorder* rec_ = nullptr;
  int pid_ = 0;
  std::string name_;
  TimeNs t0_ = 0;
};

/// Translates a tuned Decision into the Plan vocabulary. The TreeCache key
/// distinguishes the tuned shapes via (topo, kind, radix, core_level), so
/// tuned and heuristic trees coexist in one cache.
///
/// With a recorder attached this is also the decision engine's trace hook:
/// it bumps tuner.{hits,misses} and the tuner.bucket histogram, and emits a
/// kTune "tune <winner>" instant carrying the model prediction at the
/// actual message size (plus "tune_grid" with the candidate count when the
/// decision table missed and the grid was priced).
Plan tuned_plan(runtime::Context& ctx, tune::Tuner& tuner, tune::Op op,
                int ranks, Bytes msg, std::string* winner_out = nullptr) {
  tune::Tuner::ChooseStats stats;
  const tune::Decision d = tuner.choose(op, ranks, msg, &stats);
  if (obs::Recorder* rec = ctx.recorder()) {
    const std::string winner = tune::decision_label(d);
    obs::MetricsRegistry& m = rec->metrics();
    m.counter(stats.cache_hit ? "tuner.hits" : "tuner.misses") += 1;
    m.histogram("tuner.bucket").record(tune::Tuner::bucket(msg));
    const int pid = obs::rank_pid(ctx.rank());
    if (stats.grid_priced > 0) {
      rec->instant(pid, obs::kTidMain, obs::Cat::kTune, "tune_grid",
                   rec->now(), stats.grid_priced);
    }
    rec->instant(pid, obs::kTidMain, obs::Cat::kTune, "tune " + winner,
                 rec->now(), tuner.predict(op, ranks, d, msg));
    if (winner_out != nullptr) *winner_out = winner;
  }
  Plan p;
  p.style = tuner.options().style;
  p.segment = tune::decision_segment(d, msg);
  switch (d.topology) {
    case tune::Topology::kTopoChain: p.tree.topo = true; break;
    case tune::Topology::kTopoKnomial:
      p.tree.topo = true;
      p.tree.kind = TreeKind::kKNomial;
      p.tree.radix = d.radix;
      p.tree.topo_spec.core_level = TreeKind::kKNomial;
      p.tree.topo_spec.socket_level = TreeKind::kKNomial;
      p.tree.topo_spec.node_level = TreeKind::kKNomial;
      p.tree.topo_spec.radix = d.radix;
      break;
    case tune::Topology::kBinomial: p.tree.kind = TreeKind::kBinomial; break;
    case tune::Topology::kChain: p.tree.kind = TreeKind::kChain; break;
    case tune::Topology::kHan:
      p.algo = Plan::Algo::kHan;
      p.han.radix = d.radix;
      break;
  }
  return p;
}

class PlanLibrary final : public MpiLibrary {
 public:
  /// `own_tuner` (the "-tuned" personality) makes tuning unconditional;
  /// `engine_tunable` consults the engine's Context::tuner() when the run
  /// opted in via SimEngineOptions::tuning and falls back to the heuristic
  /// PlanFns otherwise.
  PlanLibrary(std::string name, const topo::Machine& machine, PlanFn bcast_fn,
              PlanFn reduce_fn,
              std::shared_ptr<tune::Tuner> own_tuner = nullptr,
              bool engine_tunable = false)
      : name_(std::move(name)),
        machine_(machine),
        cache_(machine),
        bcast_fn_(std::move(bcast_fn)),
        reduce_fn_(std::move(reduce_fn)),
        own_tuner_(std::move(own_tuner)),
        engine_tunable_(engine_tunable) {}

  std::string name() const override { return name_; }

  sim::Task<> bcast(runtime::Context& ctx, const mpi::Comm& comm,
                    mpi::MutView buffer, Rank root) override {
    tune::Tuner* tuner = active_tuner(ctx);
    ADAPT_CHECK(tuner != nullptr || bcast_fn_ != nullptr)
        << name_ << " has no broadcast algorithm";
    std::string winner;
    const Plan p = tuner ? tuned_plan(ctx, *tuner, tune::Op::kBcast,
                                      comm.size(), buffer.size, &winner)
                         : bcast_fn_(buffer.size);
    std::optional<TunedProbe> probe;
    if (!winner.empty()) probe.emplace(ctx, winner);
    const CollOpts opts = make_opts(p);
    switch (p.algo) {
      case Plan::Algo::kTree:
        co_await coll::bcast(ctx, comm, buffer, root,
                             cache_.get(comm, root, p.tree), p.style, opts);
        co_return;
      case Plan::Algo::kHier: {
        HierSpec spec = p.hier;
        spec.style = p.style;
        spec.opts = opts;
        co_await hier_bcast(ctx, comm, buffer, root, machine_, spec);
        co_return;
      }
      case Plan::Algo::kHan: {
        HanSpec spec = p.han;
        spec.style = p.style;
        spec.opts = opts;
        co_await han_bcast(ctx, comm, buffer, root, machine_, spec);
        co_return;
      }
      case Plan::Algo::kScatterAllgather:
        co_await bcast_scatter_allgather(ctx, comm, buffer, root, p.ag);
        co_return;
      case Plan::Algo::kRabenseifner:
        break;
    }
    ADAPT_UNREACHABLE("bad broadcast plan");
  }

  sim::Task<> reduce(runtime::Context& ctx, const mpi::Comm& comm,
                     mpi::MutView accum, mpi::ReduceOp op,
                     mpi::Datatype dtype, Rank root) override {
    tune::Tuner* tuner = active_tuner(ctx);
    ADAPT_CHECK(tuner != nullptr || reduce_fn_ != nullptr)
        << name_ << " has no reduce algorithm";
    std::string winner;
    const Plan p = tuner ? tuned_plan(ctx, *tuner, tune::Op::kReduce,
                                      comm.size(), accum.size, &winner)
                         : reduce_fn_(accum.size);
    std::optional<TunedProbe> probe;
    if (!winner.empty()) probe.emplace(ctx, winner);
    const CollOpts opts = make_opts(p);
    switch (p.algo) {
      case Plan::Algo::kTree:
        co_await coll::reduce(ctx, comm, accum, op, dtype, root,
                              cache_.get(comm, root, p.tree), p.style, opts);
        co_return;
      case Plan::Algo::kHier: {
        HierSpec spec = p.hier;
        spec.style = p.style;
        spec.opts = opts;
        co_await hier_reduce(ctx, comm, accum, op, dtype, root, machine_,
                             spec);
        co_return;
      }
      case Plan::Algo::kHan: {
        HanSpec spec = p.han;
        spec.style = p.style;
        spec.opts = opts;
        co_await han_reduce(ctx, comm, accum, op, dtype, root, machine_,
                            spec);
        co_return;
      }
      case Plan::Algo::kRabenseifner:
        co_await reduce_rabenseifner(ctx, comm, accum, op, dtype, root, opts);
        co_return;
      case Plan::Algo::kScatterAllgather:
        break;
    }
    ADAPT_UNREACHABLE("bad reduce plan");
  }

 private:
  static CollOpts make_opts(const Plan& p) {
    CollOpts opts;
    opts.segment_size = p.segment;
    opts.outstanding_sends = p.outstanding_sends;
    opts.outstanding_recvs = p.outstanding_recvs;
    opts.gamma_scale = p.gamma_scale;
    return opts;
  }

  tune::Tuner* active_tuner(runtime::Context& ctx) const {
    if (own_tuner_) return own_tuner_.get();
    return engine_tunable_ ? ctx.tuner() : nullptr;
  }

  std::string name_;
  const topo::Machine& machine_;
  TreeCache cache_;
  PlanFn bcast_fn_;
  PlanFn reduce_fn_;
  std::shared_ptr<tune::Tuner> own_tuner_;
  bool engine_tunable_ = false;
};

// ------------------------------------------------------- personalities ---

TreeChoice topo_chains() {
  TreeChoice c;
  c.topo = true;  // chains at every level: the paper's ADAPT configuration
  return c;
}

TreeChoice rank_order(TreeKind kind, int radix = 4) {
  TreeChoice c;
  c.kind = kind;
  c.radix = radix;
  return c;
}

Plan adapt_plan(Bytes msg) {
  Plan p;
  p.style = Style::kAdapt;
  p.tree = topo_chains();
  p.segment = default_segment_size(msg);
  return p;
}

Plan default_tuned_bcast(Bytes msg) {
  // The tuned decision rule: binomial below the switch point seen in Fig. 9a,
  // then a pipelined rank-order binary tree.
  Plan p;
  p.style = Style::kNonblocking;
  if (msg < kib(256)) {
    p.tree = rank_order(TreeKind::kBinomial);
    p.segment = std::max<Bytes>(1, msg);
  } else {
    p.tree = rank_order(TreeKind::kBinary);
    p.segment = kib(128);
  }
  return p;
}

Plan default_tuned_reduce(Bytes msg) {
  Plan p = default_tuned_bcast(msg);
  p.tree = rank_order(TreeKind::kBinomial);
  return p;
}

Plan default_topo_plan(Bytes msg) {
  // ADAPT's tree, Algorithm-2 synchronisation: isolates the Waitall cost.
  Plan p;
  p.style = Style::kNonblocking;
  p.tree = topo_chains();
  p.segment = default_segment_size(msg);
  return p;
}

Plan cray_plan(Bytes msg) {
  // Topology-aware pipelines but blocking P2P underneath: fast when quiet,
  // fragile under noise (Fig. 7a).
  Plan p;
  p.style = Style::kBlocking;
  p.tree = topo_chains();
  p.segment = default_segment_size(msg);
  p.gamma_scale = 0.6;  // vendor-vectorised reduction
  return p;
}

Plan mvapich_plan(Bytes msg) {
  Plan p;
  p.style = Style::kBlocking;
  p.tree = rank_order(TreeKind::kKNomial, 4);
  // Rendezvous-sized segments: every blocking hop couples sender to receiver
  // (the paper's worst noise amplifier, Fig. 7b).
  p.segment = msg < kib(128) ? std::max<Bytes>(1, msg) : kib(128);
  return p;
}

Plan han_plan(Bytes msg) {
  // HAN: one fused two-level tree (binomial over node leaders, k-nomial
  // within each node over the SHM channel) under the event-driven style, so
  // the levels overlap at segment granularity — the ADAPT answer to the
  // sequential intel/hier design.
  Plan p;
  p.algo = Plan::Algo::kHan;
  p.style = Style::kAdapt;
  p.segment = default_segment_size(msg);
  return p;
}

Plan intel_plan_bcast(Bytes msg) {
  Plan p;
  p.algo = Plan::Algo::kHier;
  p.style = Style::kNonblocking;
  p.hier.inter_node = TreeKind::kBinomial;
  p.hier.intra_node = TreeKind::kKNomial;
  p.hier.radix = 4;
  p.segment = default_segment_size(msg);
  return p;
}

Plan intel_plan_reduce(Bytes msg) {
  Plan p = intel_plan_bcast(msg);
  p.gamma_scale = 0.5;  // vectorised reduction kernels
  return p;
}

Plan hier_variant(TreeKind intra, double gamma, Bytes msg) {
  Plan p;
  p.algo = Plan::Algo::kHier;
  p.style = Style::kNonblocking;
  p.hier.inter_node = TreeKind::kBinomial;
  p.hier.intra_node = intra;
  p.hier.radix = 4;
  p.segment = default_segment_size(msg);
  p.gamma_scale = gamma;
  return p;
}

Plan flat_variant(TreeKind kind, double gamma, Bytes seg_or_zero, Bytes msg) {
  Plan p;
  p.style = Style::kNonblocking;
  p.tree = rank_order(kind);
  p.segment = seg_or_zero > 0 ? seg_or_zero : default_segment_size(msg);
  p.gamma_scale = gamma;
  return p;
}

Plan sag_variant(AllgatherAlgo algo) {
  Plan p;
  p.algo = Plan::Algo::kScatterAllgather;
  p.ag = algo;
  return p;
}

}  // namespace

std::shared_ptr<MpiLibrary> make_library(const std::string& name,
                                         const topo::Machine& machine) {
  auto lib = [&](PlanFn b, PlanFn r) {
    return std::make_shared<PlanLibrary>(name, machine, std::move(b),
                                         std::move(r));
  };
  if (name == "ompi-adapt")
    // Engine-tunable: uses the heuristic adapt_plan unless the run installs
    // a Tuner via SimEngineOptions::tuning.
    return std::make_shared<PlanLibrary>(name, machine, adapt_plan, adapt_plan,
                                         nullptr, /*engine_tunable=*/true);
  if (name == "ompi-adapt-tuned")
    // Self-contained tuned variant: owns its Tuner, so it tunes on every
    // engine (including the ThreadEngine, which has no SimEngineOptions).
    return std::make_shared<PlanLibrary>(
        name, machine, adapt_plan, adapt_plan,
        std::make_shared<tune::Tuner>(machine), false);
  if (name == "ompi-default")
    return lib(default_tuned_bcast, default_tuned_reduce);
  if (name == "ompi-default-topo")
    return lib(default_topo_plan, default_topo_plan);
  if (name == "ompi-han") return lib(han_plan, han_plan);
  if (name == "cray") return lib(cray_plan, cray_plan);
  if (name == "mvapich") return lib(mvapich_plan, mvapich_plan);
  if (name == "intel") return lib(intel_plan_bcast, intel_plan_reduce);

  // Fig. 8 Intel algorithm variants.
  if (name == "intel-topo-binomial")
    return lib([](Bytes m) { return flat_variant(TreeKind::kBinomial, 0.5, 0, m); },
               [](Bytes m) { return flat_variant(TreeKind::kBinomial, 0.5, 0, m); });
  if (name == "intel-topo-recdbl")
    return lib([](Bytes) { return sag_variant(AllgatherAlgo::kRecursiveDoubling); },
               nullptr);
  if (name == "intel-topo-ring")
    return lib([](Bytes) { return sag_variant(AllgatherAlgo::kRing); }, nullptr);
  if (name == "intel-topo-shm-flat")
    return lib([](Bytes m) { return hier_variant(TreeKind::kFlat, 0.5, m); },
               [](Bytes m) { return hier_variant(TreeKind::kFlat, 0.5, m); });
  if (name == "intel-topo-shm-knomial")
    return lib([](Bytes m) { return hier_variant(TreeKind::kKNomial, 0.5, m); },
               [](Bytes m) { return hier_variant(TreeKind::kKNomial, 0.5, m); });
  if (name == "intel-topo-shm-knary")
    return lib([](Bytes m) { return hier_variant(TreeKind::kKAry, 0.5, m); },
               [](Bytes m) { return hier_variant(TreeKind::kKAry, 0.5, m); });
  if (name == "intel-topo-shm-binomial")
    return lib(nullptr,
               [](Bytes m) { return hier_variant(TreeKind::kBinomial, 0.5, m); });
  if (name == "intel-topo-shumilin")
    return lib(nullptr, [](Bytes m) {
      // Shumilin's reduce: strongly vectorised segmented pipeline over a
      // binomial tree with deep segmentation — the variant that beats ADAPT's
      // unvectorised reduction on Omni-Path (paper §5.1.2).
      return flat_variant(TreeKind::kBinomial, 0.35, kib(64), m);
    });
  if (name == "intel-topo-rabenseifner")
    return lib(nullptr, [](Bytes m) {
      Plan p;
      p.algo = Plan::Algo::kRabenseifner;
      p.gamma_scale = 0.5;
      p.segment = default_segment_size(m);
      return p;
    });
  throw Error("unknown MPI library personality: " + name);
}

std::vector<std::string> end_to_end_libraries(const std::string& cluster) {
  if (cluster == "cori")
    return {"intel", "cray", "ompi-default", "ompi-adapt"};
  if (cluster == "stampede2")
    return {"intel", "mvapich", "ompi-default", "ompi-adapt"};
  return {"intel", "cray", "mvapich", "ompi-default", "ompi-adapt"};
}

std::vector<std::string> intel_topo_bcast_variants() {
  return {"intel-topo-binomial",    "intel-topo-recdbl",
          "intel-topo-ring",        "intel-topo-shm-flat",
          "intel-topo-shm-knomial", "intel-topo-shm-knary"};
}

std::vector<std::string> intel_topo_reduce_variants() {
  return {"intel-topo-shumilin",    "intel-topo-binomial",
          "intel-topo-rabenseifner", "intel-topo-shm-flat",
          "intel-topo-shm-knomial", "intel-topo-shm-knary",
          "intel-topo-shm-binomial"};
}

}  // namespace adapt::coll
