#include <gtest/gtest.h>

#include <numeric>

#include "src/coll/topo_tree.hpp"
#include "src/coll/tree.hpp"
#include "src/topo/presets.hpp"

namespace adapt::coll {
namespace {

TEST(Tree, ChainShape) {
  const Tree t = chain_tree(5, 0);
  EXPECT_EQ(t.root, 0);
  EXPECT_EQ(t.up(0), -1);
  for (Rank r = 1; r < 5; ++r) EXPECT_EQ(t.up(r), r - 1);
  EXPECT_EQ(t.height(), 4);
  EXPECT_TRUE(t.is_leaf(4));
}

TEST(Tree, ChainNonZeroRoot) {
  const Tree t = chain_tree(5, 2);
  EXPECT_EQ(t.root, 2);
  EXPECT_EQ(t.up(3), 2);
  EXPECT_EQ(t.up(4), 3);
  EXPECT_EQ(t.up(0), 4);  // wraps
  EXPECT_EQ(t.up(1), 0);
  t.validate();
}

TEST(Tree, FlatShape) {
  const Tree t = flat_tree(6, 1);
  EXPECT_EQ(t.kids(1).size(), 5u);
  EXPECT_EQ(t.height(), 1);
}

TEST(Tree, BinaryShape) {
  const Tree t = build_tree(TreeKind::kBinary, 7, 0);
  EXPECT_EQ(t.kids(0), (std::vector<Rank>{1, 2}));
  EXPECT_EQ(t.kids(1), (std::vector<Rank>{3, 4}));
  EXPECT_EQ(t.kids(2), (std::vector<Rank>{5, 6}));
  EXPECT_EQ(t.height(), 2);
}

TEST(Tree, BinomialShape) {
  const Tree t = binomial_tree(8, 0);
  // Children of the root are 4, 2, 1 (largest subtree first).
  EXPECT_EQ(t.kids(0), (std::vector<Rank>{4, 2, 1}));
  EXPECT_EQ(t.kids(4), (std::vector<Rank>{6, 5}));
  EXPECT_EQ(t.kids(6), (std::vector<Rank>{7}));
  EXPECT_EQ(t.height(), 3);
}

TEST(Tree, KnomialRadix4) {
  const Tree t = knomial_tree(16, 0, 4);
  // Root reaches 4, 8, 12 at stride 4 and 1, 2, 3 at stride 1.
  EXPECT_EQ(t.kids(0), (std::vector<Rank>{4, 8, 12, 1, 2, 3}));
  EXPECT_EQ(t.kids(4), (std::vector<Rank>{5, 6, 7}));
  EXPECT_EQ(t.height(), 2);
}

TEST(Tree, KnomialMatchesBinomialAtRadix2) {
  for (int n : {1, 2, 3, 7, 8, 13, 32}) {
    const Tree a = binomial_tree(n, 0);
    const Tree b = knomial_tree(n, 0, 2);
    EXPECT_EQ(a.parent, b.parent) << "n=" << n;
  }
}

TEST(Tree, AllKindsValidateAcrossSizesAndRoots) {
  for (TreeKind kind : {TreeKind::kChain, TreeKind::kFlat, TreeKind::kBinary,
                        TreeKind::kKAry, TreeKind::kBinomial,
                        TreeKind::kKNomial}) {
    for (int n : {1, 2, 3, 5, 8, 17, 64}) {
      for (Rank root : {0, n / 2, n - 1}) {
        const Tree t = build_tree(kind, n, root, 3);
        EXPECT_EQ(t.root, root);
        EXPECT_NO_THROW(t.validate()) << tree_kind_name(kind) << " n=" << n;
      }
    }
  }
}

TEST(Tree, DepthOfRootIsZero) {
  const Tree t = binomial_tree(16, 5);
  EXPECT_EQ(t.depth(5), 0);
}

TEST(Tree, KindNamesRoundTrip) {
  for (TreeKind kind : {TreeKind::kChain, TreeKind::kFlat, TreeKind::kBinary,
                        TreeKind::kKAry, TreeKind::kBinomial,
                        TreeKind::kKNomial}) {
    EXPECT_EQ(tree_kind_from_name(tree_kind_name(kind)), kind);
  }
  EXPECT_THROW(tree_kind_from_name("spanning"), Error);
}

// --------------------------------------------------------------- topo ---

TEST(TopoTree, LeadersGlueLevels) {
  // 2 nodes x 2 sockets x 4 cores, 16 ranks.
  topo::MachineSpec spec = topo::cori(2);
  spec.cores_per_socket = 4;
  topo::Machine m(spec, 16);
  const mpi::Comm world = mpi::Comm::world(16);
  const Tree t = build_topo_tree(m, world, 0);
  t.validate();
  // Rank 0 leads its socket, its node and the node-leader group.
  EXPECT_EQ(t.root, 0);
  // Node 1's leader is rank 8; its parent must be a rank on node 0 or another
  // node leader — with a chain of two nodes, it is rank 0.
  EXPECT_EQ(t.up(8), 0);
  // Socket leaders: rank 4 (node 0 socket 1) hangs off rank 0's socket chain
  // at node level.
  EXPECT_EQ(t.up(4), 0);
  // Within a socket, a chain: 1 <- 0, 2 <- 1, 3 <- 2.
  EXPECT_EQ(t.up(1), 0);
  EXPECT_EQ(t.up(2), 1);
  EXPECT_EQ(t.up(3), 2);
  // Leader child lists put inter-node children before intra-socket ones.
  EXPECT_EQ(t.kids(0).front(), 8);
}

TEST(TopoTree, EveryEdgeRespectsHierarchy) {
  // A topo tree must never connect two ranks whose common ancestor group
  // never linked them: a child is either in the parent's socket, or a socket
  // leader in the parent's node, or a node leader.
  topo::Machine m(topo::cori(4), 128);
  const mpi::Comm world = mpi::Comm::world(128);
  for (Rank root : {0, 37, 127}) {
    const Tree t = build_topo_tree(m, world, root);
    t.validate();
    for (Rank r = 0; r < t.size(); ++r) {
      const Rank p = t.up(r);
      if (p == -1) continue;
      const auto level = m.level_between(p, r);
      if (level == topo::Level::kInterNode) {
        // Both must be node leaders (they lead their own socket groups).
        EXPECT_EQ(t.up(r), p);
      } else if (level == topo::Level::kInterSocket) {
        // The child must be a socket leader.
        const int child_sock = m.socket_id(r);
        for (Rank other = 0; other < t.size(); ++other) {
          if (other != r && m.socket_id(other) == child_sock) {
            EXPECT_NE(t.up(other), -1);
          }
        }
      }
    }
  }
}

TEST(TopoTree, NonZeroRootBecomesGlobalRoot) {
  topo::Machine m(topo::cori(2), 64);
  const mpi::Comm world = mpi::Comm::world(64);
  const Tree t = build_topo_tree(m, world, 40);
  t.validate();
  EXPECT_EQ(t.root, 40);
  EXPECT_EQ(t.up(40), -1);
}

TEST(TopoTree, SingleNodeDegeneratesGracefully) {
  topo::Machine m(topo::cori(1), 8);
  const Tree t = build_topo_tree(m, mpi::Comm::world(8), 0);
  t.validate();
  EXPECT_EQ(t.root, 0);
}

TEST(TopoTree, SelectablePerLevelShapes) {
  topo::Machine m(topo::cori(4), 128);
  TopoTreeSpec spec;
  spec.node_level = TreeKind::kBinomial;
  spec.socket_level = TreeKind::kFlat;
  spec.core_level = TreeKind::kBinary;
  const Tree t = build_topo_tree(m, mpi::Comm::world(128), 0, spec);
  t.validate();
  // Binomial over 4 node leaders: root gets 2 node-leader children.
  int inter_node_kids = 0;
  for (Rank c : t.kids(0)) {
    if (m.level_between(0, c) == topo::Level::kInterNode) ++inter_node_kids;
  }
  EXPECT_EQ(inter_node_kids, 2);
}

TEST(TopoTree, SubCommunicator) {
  topo::Machine m(topo::cori(2), 64);
  // Every fourth rank only.
  std::vector<Rank> members;
  for (Rank r = 0; r < 64; r += 4) members.push_back(r);
  const mpi::Comm comm(std::move(members));
  const Tree t = build_topo_tree(m, comm, 0);
  t.validate();
  EXPECT_EQ(t.size(), 16);
}

}  // namespace
}  // namespace adapt::coll
