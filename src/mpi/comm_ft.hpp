// ULFM-style fault-tolerant communicator operations.
//
//   comm_revoke  — MPI_Comm_revoke: marks the communicator stale everywhere
//                  (local flag + plan-cache invalidation + kRevoke flood).
//   comm_agree   — MPIX_Comm_agree: fault-tolerant agreement on a flag word
//                  AND the failure set, surviving participant death
//                  mid-protocol (see runtime::RecoveryService). On engines
//                  without a recovery service (ThreadEngine, recovery off) it
//                  degrades to a plain failure-free gather+bcast over
//                  dedicated low tags.
//   comm_shrink  — MPIX_Comm_shrink: a fresh communicator over the survivors
//                  in original rank order (ranks remap densely).
#pragma once

#include <cstdint>

#include "src/mpi/comm.hpp"
#include "src/runtime/context.hpp"
#include "src/sim/task.hpp"

namespace adapt::mpi {

/// Agreement outcome (mirrors runtime::AgreeOutcome for callers that only
/// include this header).
struct AgreeResult {
  std::uint64_t flags = 0;   ///< bitwise AND over live participants' flags
  std::uint64_t failed = 0;  ///< agreed failure set (global-rank bitmask)
  bool excluded = false;     ///< this rank itself was declared failed
};

/// Global-rank membership bitmask; recovery mode caps worlds at 64 ranks.
std::uint64_t member_mask(const Comm& comm);

/// Revokes `comm`: every copy's schedules go stale (plan-cache entries
/// guarded by the shared CommState are invalidated eagerly as well), and —
/// when a recovery service is present — a kRevoke flood tells every other
/// rank, unblocking any of them still pumping data on the dead topology.
/// Idempotent.
void comm_revoke(runtime::Context& ctx, const Comm& comm);

/// Agreement over `comm`'s membership. Every member must call it in the same
/// collective order. `flags` contributes to a bitwise AND across live
/// participants; the result also carries the agreed failure set. Without a
/// recovery service this is a plain gather+bcast through the lowest member
/// (no failures can occur there by construction).
sim::Task<AgreeResult> comm_agree(runtime::Context& ctx, const Comm& comm,
                                  std::uint64_t flags);

/// New communicator over `comm`'s members minus `failed_mask`, in original
/// order. Pure local construction — every rank that feeds it the same agreed
/// mask derives the same membership (and fingerprint).
Comm comm_shrink(const Comm& comm, std::uint64_t failed_mask);

}  // namespace adapt::mpi
