// Payload views: the unit of data the runtime moves.
//
// A view is either *real* (points at actual bytes, which the transport copies
// end-to-end so correctness is testable) or *synthetic* (size-only; used at
// paper scale where materialising 1.5k ranks × 4 MB is pointless — the timing
// model only ever reads sizes). Real and synthetic payloads follow identical
// code paths; only the final memcpy/arithmetic is skipped for synthetic ones.
//
// Real payloads are backed by pooled BufferRefs: engine-internal staging
// buffers (segment scratch, eager copies) come from the engine's BufferPool
// and recycle across segments and collectives; engine-free payloads (unit
// tests, user buffers) fall back to plain heap blocks. Either way the first
// `size` bytes start zeroed, exactly as the vector-backed payloads did.
#pragma once

#include <cstddef>
#include <vector>

#include "src/support/buffer_pool.hpp"
#include "src/support/error.hpp"
#include "src/support/units.hpp"

namespace adapt::mpi {

/// Read-only view of send data.
struct ConstView {
  const std::byte* data = nullptr;  ///< null for synthetic views
  Bytes size = 0;

  bool synthetic() const { return data == nullptr; }
  ConstView slice(Bytes offset, Bytes len) const {
    ADAPT_CHECK(offset >= 0 && len >= 0 && offset + len <= size);
    return ConstView{data ? data + offset : nullptr, len};
  }
};

/// Writable view of receive space.
struct MutView {
  std::byte* data = nullptr;  ///< null for synthetic views
  Bytes size = 0;

  bool synthetic() const { return data == nullptr; }
  MutView slice(Bytes offset, Bytes len) const {
    ADAPT_CHECK(offset >= 0 && len >= 0 && offset + len <= size);
    return MutView{data ? data + offset : nullptr, len};
  }
  ConstView as_const() const { return ConstView{data, size}; }
};

/// Owning buffer with view accessors; `Payload::synthetic(n)` produces a
/// size-only payload that never allocates.
class Payload {
 public:
  Payload() = default;

  static Payload real(Bytes size) {
    Payload p;
    p.size_ = size;
    if (size > 0) p.buf_ = support::BufferRef::heap(size);
    return p;
  }
  /// Pool-backed payload: the block returns to `pool` when the payload (and
  /// any copies) die. Zero-filled like real().
  static Payload pooled(support::BufferPool& pool, Bytes size) {
    Payload p;
    p.size_ = size;
    if (size > 0) p.buf_ = pool.acquire(size);
    return p;
  }
  static Payload synthetic(Bytes size) {
    Payload p;
    p.size_ = size;
    return p;
  }
  /// Staging-buffer helper for the collectives: synthetic mirrors a
  /// synthetic user buffer; otherwise pooled when an engine pool is at hand,
  /// plain heap when not (engine-free unit tests).
  static Payload scratch(support::BufferPool* pool, Bytes size,
                         bool synthetic) {
    if (synthetic) return Payload::synthetic(size);
    return pool ? Payload::pooled(*pool, size) : Payload::real(size);
  }

  Bytes size() const { return size_; }
  bool is_real() const { return static_cast<bool>(buf_) || size_ == 0; }

  MutView view() { return MutView{buf_ ? buf_.data() : nullptr, size_}; }
  ConstView cview() const {
    return ConstView{buf_ ? buf_.data() : nullptr, size_};
  }
  std::byte* data() { return buf_ ? buf_.data() : nullptr; }
  const std::byte* data() const { return buf_ ? buf_.data() : nullptr; }

 private:
  Bytes size_ = 0;
  support::BufferRef buf_;
};

}  // namespace adapt::mpi
