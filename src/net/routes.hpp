// Route construction: turns a Machine description into a concrete link
// inventory on the Fabric and builds per-message routes between endpoints.
//
// CPU lanes (per the paper's hierarchy): one shared-memory resource per
// socket, one QPI resource per node, directional NIC injection/ejection
// resources per node (full-duplex fabric core assumed uncongested — the usual
// fat-network simplification; NICs are the inter-node bottleneck).
//
// GPU lanes (paper §4, Fig. 6): directional host<->GPU PCIe lanes per socket
// (pcie_up reads GPU memory, pcie_down writes it), a switch-local GPU-peer
// lane per socket (only used when peer DMA is enabled — the §4.1 optimised
// flow), and the NIC's own PCIe attachment (nic_bus) so host-staged NIC
// traffic does not consume the GPUs' root-port lanes.
#pragma once

#include "src/net/fabric.hpp"
#include "src/topo/hardware.hpp"

namespace adapt::net {

using adapt::MemSpace;

/// GPU transfer behaviour of the underlying runtime (per-library knobs the
/// baselines and ADAPT set differently).
struct GpuConfig {
  bool gpudirect = false;  ///< NIC reads/writes GPU memory directly
  bool peer_dma = false;   ///< same-socket GPU<->GPU via switch-local DMA
};

class ClusterNet {
 public:
  ClusterNet(sim::Simulator& simulator, const topo::Machine& machine,
             SharingPolicy policy = SharingPolicy::kFairShare,
             GpuConfig gpu = {});

  Fabric& fabric() { return fabric_; }
  const topo::Machine& machine() const { return machine_; }
  const GpuConfig& gpu_config() const { return gpu_; }

  /// Host-to-host route between two CPU ranks.
  Route route(Rank src, Rank dst) const;

  /// Route between arbitrary endpoints (host or device memory of a rank),
  /// honouring the GpuConfig.
  Route route_mem(Rank src, MemSpace src_space, Rank dst,
                  MemSpace dst_space) const;

  /// Starts a transfer along a route (convenience passthrough).
  void transfer(const Route& route, Bytes bytes, sim::EventFn on_complete) {
    fabric_.transfer(route, bytes, std::move(on_complete));
  }

  // Named links, exposed for the GPU collective optimisations that compose
  // their own routes (e.g. explicit CPU-buffer staging).
  LinkId shm(int socket_id) const { return shm_.at(socket_id); }
  /// Per-node shared-memory channel; only present when the machine enables
  /// it (spec().has_shm_channel()).
  LinkId shm_node(int node) const { return shm_node_.at(node); }
  LinkId qpi(int node) const { return qpi_.at(node); }
  LinkId nic_tx(int node) const { return nic_tx_.at(node); }
  LinkId nic_rx(int node) const { return nic_rx_.at(node); }
  LinkId nic_bus(int node) const { return nic_bus_.at(node); }
  LinkId pcie_up(int socket_id) const { return pcie_up_.at(socket_id); }
  LinkId pcie_down(int socket_id) const { return pcie_down_.at(socket_id); }
  LinkId gpu_peer(int socket_id) const { return gpu_peer_.at(socket_id); }

 private:
  const topo::Machine& machine_;
  Fabric fabric_;
  GpuConfig gpu_;
  std::vector<LinkId> shm_;       // per global socket
  std::vector<LinkId> shm_node_;  // per node (SHM-channel machines only)
  std::vector<LinkId> qpi_;       // per node
  std::vector<LinkId> nic_tx_;    // per node
  std::vector<LinkId> nic_rx_;    // per node
  std::vector<LinkId> nic_bus_;   // per node (GPU machines only)
  std::vector<LinkId> pcie_up_;   // per global socket (GPU machines only)
  std::vector<LinkId> pcie_down_; // per global socket (GPU machines only)
  std::vector<LinkId> gpu_peer_;  // per global socket (GPU machines only)
};

}  // namespace adapt::net
