file(REMOVE_RECURSE
  "../bench/micro_framework"
  "../bench/micro_framework.pdb"
  "CMakeFiles/micro_framework.dir/micro_framework.cpp.o"
  "CMakeFiles/micro_framework.dir/micro_framework.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_framework.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
