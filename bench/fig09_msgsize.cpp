// Figure 9: end-to-end broadcast and reduce time vs message size (64 KB-4 MB)
// on Cori (1K ranks) and Stampede2 (1.5K ranks), comparing the four MPI
// library personalities relevant to each machine.
//
//   fig09_msgsize [--cluster cori|stampede2|both] [--iters N] [--ranks N]
//                 [--nodes N] [--csv] [--json [FILE]]
#include <iostream>

#include "src/bench/cli.hpp"
#include "src/bench/imb.hpp"
#include "src/bench/report.hpp"
#include "src/coll/library.hpp"
#include "src/runtime/sim_engine.hpp"
#include "src/support/table.hpp"

namespace {

using namespace adapt;

void run_cluster(const std::string& cluster, int nodes, int ranks, int iters,
                 bool csv, bench::JsonReport& report) {
  const auto setup = bench::make_cluster(cluster, nodes, ranks);
  const mpi::Comm world = mpi::Comm::world(setup.ranks);
  const std::vector<Bytes> sizes = {kib(64),  kib(128), kib(256), kib(512),
                                    mib(1),   mib(2),   mib(4)};
  std::vector<std::string> header = {"library"};
  for (Bytes s : sizes) header.push_back(format_bytes(s));

  for (const char* op : {"Broadcast", "Reduce"}) {
    const bool is_bcast = std::string(op) == "Broadcast";
    std::cout << "Performance of " << op << " varies by MSG size on "
              << setup.ranks << " cores (" << cluster << "), time in ms\n";
    Table table(header);
    for (const std::string& name : coll::end_to_end_libraries(cluster)) {
      auto lib = coll::make_library(name, setup.machine);
      std::vector<double> row;
      for (Bytes msg : sizes) {
        runtime::SimEngine engine(setup.machine);
        mpi::MutView buffer{nullptr, msg};  // synthetic at paper scale
        auto fn = [&](runtime::Context& ctx, int) -> sim::Task<> {
          if (is_bcast) {
            co_await lib->bcast(ctx, world, buffer, 0);
          } else {
            co_await lib->reduce(ctx, world, buffer, mpi::ReduceOp::kSum,
                                 mpi::Datatype::kFloat, 0);
          }
        };
        const auto result =
            bench::measure(engine, world, fn, {.warmup = 1, .iterations = iters});
        row.push_back(result.avg_ms());
      }
      table.add_row_numeric(name, row);
    }
    if (csv) {
      table.print_csv(std::cout);
    } else {
      table.print(std::cout);
    }
    std::cout << "\n";
    report.add_table(std::string(op) + " time (ms) on " + cluster, table);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::Cli cli(argc, argv);
  const std::string which = cli.get("cluster", "both");
  const int iters = static_cast<int>(cli.get_int("iters", 3));
  const bool csv = cli.has("csv");
  std::cout << "== Figure 9: performance of broadcast/reduce vs message size "
               "==\n\n";
  bench::JsonReport report("fig09_msgsize");
  report.set_meta("cluster", which);
  report.set_meta("iters", iters);
  if (which == "cori" || which == "both") {
    run_cluster("cori", static_cast<int>(cli.get_int("nodes", 32)),
                static_cast<int>(cli.get_int("ranks", 1024)), iters, csv,
                report);
  }
  if (which == "stampede2" || which == "both") {
    run_cluster("stampede2", static_cast<int>(cli.get_int("nodes", 32)),
                static_cast<int>(cli.get_int("ranks", 1536)), iters, csv,
                report);
  }
  return bench::emit_json(cli, report) ? 0 : 1;
}
