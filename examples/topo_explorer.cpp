// Topology explorer: prints the topology-aware communication tree ADAPT
// builds for a machine (paper §3.2, Fig. 5) and contrasts its edge-lane
// profile with a rank-order binomial tree.
//
//   ./topo_explorer [--spec "nodes=3,sockets=2,cores=4"] [--ranks N]
//                   [--root R]
#include <iostream>
#include <map>
#include <string>

#include "src/coll/topo_tree.hpp"
#include "src/coll/tree.hpp"
#include "src/topo/presets.hpp"

using namespace adapt;

namespace {

void print_tree(const coll::Tree& tree, const topo::Machine& m, Rank rank,
                int depth) {
  const topo::Loc& loc = m.loc(rank);
  std::cout << std::string(static_cast<std::size_t>(depth) * 2, ' ') << "rank "
            << rank << "  (node " << loc.node << ", socket " << loc.socket
            << ", core " << loc.core << ")";
  if (depth > 0) {
    std::cout << "  <- " << topo::level_name(m.level_between(tree.up(rank), rank))
              << " edge";
  }
  std::cout << "\n";
  for (Rank c : tree.kids(rank)) print_tree(tree, m, c, depth + 1);
}

void lane_profile(const char* name, const coll::Tree& tree,
                  const topo::Machine& m) {
  std::map<std::string, int> lanes;
  for (Rank r = 0; r < tree.size(); ++r) {
    if (tree.up(r) == -1) continue;
    lanes[topo::level_name(m.level_between(tree.up(r), r))]++;
  }
  std::cout << name << ": ";
  for (const auto& [lane, count] : lanes) std::cout << count << " " << lane << " edges  ";
  std::cout << "(height " << tree.height() << ")\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string spec_text = "nodes=3,sockets=2,cores=4";
  int ranks = -1;
  Rank root = 0;
  for (int i = 1; i + 1 < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--spec") spec_text = argv[i + 1];
    if (arg == "--ranks") ranks = std::atoi(argv[i + 1]);
    if (arg == "--root") root = std::atoi(argv[i + 1]);
  }
  const topo::MachineSpec spec = topo::parse_spec(spec_text);
  if (ranks < 0) ranks = spec.nodes * spec.sockets_per_node * spec.cores_per_socket;
  topo::Machine machine(spec, ranks);
  const mpi::Comm world = mpi::Comm::world(ranks);

  std::cout << "Machine: " << spec.nodes << " nodes x "
            << spec.sockets_per_node << " sockets x " << spec.cores_per_socket
            << " cores, " << ranks << " ranks\n\n";
  const coll::Tree topo_tree = coll::build_topo_tree(machine, world, root);
  std::cout << "Topology-aware tree (chains per level, leaders glue them):\n";
  print_tree(topo_tree, machine, root, 0);

  std::cout << "\nEdge lanes used:\n";
  lane_profile("  topo-aware tree   ", topo_tree, machine);
  lane_profile("  rank-order binomial", coll::binomial_tree(ranks, root),
               machine);
  std::cout << "\nFewer inter-node/inter-socket edges means less traffic on "
               "the slow lanes,\nand per-level chains pipeline at each "
               "lane's full bandwidth (§3.2.2).\n";
  return 0;
}
