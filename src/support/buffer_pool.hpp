// Size-classed buffer pool with intrusive refcounted buffers.
//
// The simulator's data plane recycles three kinds of byte buffers at high
// rate: ADAPT segment staging scratch (one per in-flight segment), eager
// send copies (one per message), and unexpected-queue staging. Each used to
// be a fresh vector<byte> (or make_shared<vector<byte>> — two allocations),
// so a 1k-rank collective paid millions of malloc/free round trips for
// buffers of a handful of recurring sizes. The pool holds freed blocks on
// per-size-class free lists (capacities are powers of two, 64 B minimum) and
// hands them back on the next acquire: steady state allocates nothing.
//
// BufferRef is the owner handle: a pointer to a header co-allocated ahead of
// the data bytes, carrying an intrusive atomic refcount and the home pool.
// Copies share the block (the eager path copies Envelopes through lambda
// captures and the unexpected queue); the last drop returns the block to its
// pool — or plain-deletes it for pool-less blocks (BufferRef::heap), which
// keeps Payload usable in unit tests with no engine around.
//
// Thread safety: the free lists are mutex-guarded and the refcount is
// atomic, so ThreadEngine ranks may acquire/release concurrently. The
// SimEngine is single-threaded and pays only an uncontended lock.
//
// Lifetime contract: a pool-backed BufferRef must not outlive its pool
// (release returns the block to a raw pool pointer). Engines own the pool
// and declare it before every component that holds buffers, so it is
// destroyed last — the same by-construction discipline as EventHandle/slab.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "src/support/units.hpp"

namespace adapt::support {

class BufferPool;

namespace detail {

/// Block header; the data bytes follow immediately.
struct alignas(std::max_align_t) BufHeader {
  BufferPool* pool;                 ///< null for pool-less heap blocks
  std::uint32_t size_class;
  std::atomic<std::uint32_t> refs;
};

}  // namespace detail

/// Shared owner of one pooled (or heap) byte block.
class BufferRef {
 public:
  BufferRef() = default;
  BufferRef(const BufferRef& other) : h_(other.h_) {
    if (h_) h_->refs.fetch_add(1, std::memory_order_relaxed);
  }
  BufferRef(BufferRef&& other) noexcept : h_(other.h_) { other.h_ = nullptr; }
  BufferRef& operator=(const BufferRef& other) {
    if (this != &other) {
      release();
      h_ = other.h_;
      if (h_) h_->refs.fetch_add(1, std::memory_order_relaxed);
    }
    return *this;
  }
  BufferRef& operator=(BufferRef&& other) noexcept {
    if (this != &other) {
      release();
      h_ = other.h_;
      other.h_ = nullptr;
    }
    return *this;
  }
  ~BufferRef() { release(); }

  explicit operator bool() const { return h_ != nullptr; }
  std::byte* data() { return reinterpret_cast<std::byte*>(h_ + 1); }
  const std::byte* data() const {
    return reinterpret_cast<const std::byte*>(h_ + 1);
  }
  Bytes capacity() const;

  void reset() { release(); }

  /// Pool-less zero-filled block (unit tests, engine-free Payloads).
  static BufferRef heap(Bytes n);
  /// Pool-less block, contents unspecified (callers that overwrite fully).
  static BufferRef heap_raw(Bytes n);

 private:
  friend class BufferPool;
  explicit BufferRef(detail::BufHeader* h) : h_(h) {}
  void release();

  detail::BufHeader* h_ = nullptr;
};

/// The per-engine pool: size-class free lists of refcounted blocks.
class BufferPool {
 public:
  BufferPool() = default;
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;
  ~BufferPool();

  /// A block of capacity >= n with the first n bytes zeroed (fresh-buffer
  /// semantics, matching what vector-backed payloads guaranteed).
  BufferRef acquire(Bytes n);
  /// A block of capacity >= n, contents unspecified — for callers that
  /// overwrite every byte (eager send copies).
  BufferRef acquire_raw(Bytes n);

  /// Warm-up: guarantees at least `count` free blocks of capacity >= n, so a
  /// later burst of `count` acquires is all free-list hits. Persistent init
  /// calls this with the round's worst-case staging footprint — the mechanism
  /// behind the zero-allocations-per-start contract.
  void reserve(Bytes n, int count);

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  /// Bytes currently parked on the free lists.
  std::uint64_t cached_bytes() const { return cached_bytes_; }
  /// Cumulative block capacity handed out by acquire/acquire_raw. Unlike
  /// hits/misses/cached_bytes (which depend on cross-thread interleaving of
  /// a shared pool), every acquire happens exactly once with a deterministic
  /// size class, so this figure is identical for any --shards value — the
  /// pool component of the sim.rank_state_bytes gauge.
  std::uint64_t acquired_bytes() const { return acquired_bytes_; }

  static constexpr int kClasses = 32;       // 64 B .. 64 B << 31
  static constexpr Bytes kMinCapacity = 64;
  static int class_of(Bytes n) {
    if (n <= kMinCapacity) return 0;
    return std::bit_width(static_cast<std::uint64_t>(n - 1)) - 6;
  }
  static Bytes capacity_of(int size_class) {
    return kMinCapacity << size_class;
  }

 private:
  friend class BufferRef;
  void put_back(detail::BufHeader* h);

  std::mutex mu_;
  std::vector<detail::BufHeader*> free_[kClasses];
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t cached_bytes_ = 0;
  std::uint64_t acquired_bytes_ = 0;
};

inline Bytes BufferRef::capacity() const {
  return h_ ? BufferPool::capacity_of(static_cast<int>(h_->size_class)) : 0;
}

}  // namespace adapt::support
