// Real-execution engine: every rank is an OS thread with its own mailbox
// event loop; messages are actual byte copies between address spaces;
// time is the steady clock. The same rank programs that run at paper scale on
// the SimEngine run here for real — this is the engine the examples default
// to, and it doubles as a stress test of the framework's concurrency
// assumptions (endpoints are rank-confined; cross-rank hand-off happens only
// through mailboxes).
//
// Protocol notes: the transport is eager-only (payloads are captured at post
// time and handed to the receiver's mailbox), `compute` burns real CPU, and
// cost parameters of the machine model are ignored — real costs are real.
#pragma once

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/mpi/endpoint.hpp"
#include "src/runtime/context.hpp"
#include "src/support/buffer_pool.hpp"
#include "src/topo/hardware.hpp"

namespace adapt::tune {
class PlanCache;  // defined in src/tune/plan_cache.hpp
}

namespace adapt::runtime {

class ThreadEngine final : public Engine {
 public:
  /// The machine is used for rank count and topology queries (topo-aware
  /// trees still work); its timing parameters are ignored.
  explicit ThreadEngine(const topo::Machine& machine);
  ~ThreadEngine() override;

  int nranks() const override { return machine_.nranks(); }
  RunResult run(const RankProgram& program) override;
  const topo::Machine& machine() const { return machine_; }
  /// The engine's persistent-collective plan cache (never null).
  tune::PlanCache& plan_cache() { return *plan_cache_; }

 private:
  class Mailbox;
  class ThreadContext;
  class ThreadTransport;

  const topo::Machine& machine_;
  /// Declared before the endpoints/mailboxes that hold BufferRefs so it is
  /// destroyed after them (pool-lifetime contract). Mutex-guarded: rank
  /// threads acquire and release concurrently.
  support::BufferPool pool_;
  std::unique_ptr<ThreadTransport> transport_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<std::unique_ptr<mpi::Endpoint>> endpoints_;
  std::vector<std::unique_ptr<ThreadContext>> contexts_;
  std::chrono::steady_clock::time_point epoch_;
  std::unique_ptr<tune::PlanCache> plan_cache_;
};

}  // namespace adapt::runtime
