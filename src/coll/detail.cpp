#include "src/coll/detail.hpp"

#include "src/support/error.hpp"

namespace adapt::coll::detail {

Edges resolve(const runtime::Context& ctx, const mpi::Comm& comm,
              const Tree& tree) {
  ADAPT_CHECK(tree.size() == comm.size())
      << "tree over " << tree.size() << " ranks, comm of " << comm.size();
  Edges e;
  e.me_local = comm.local_of(ctx.rank());
  ADAPT_CHECK(e.me_local != kAnyRank)
      << "rank " << ctx.rank() << " is not a member of the communicator";
  e.is_root = e.me_local == tree.root;
  const Rank p = tree.up(e.me_local);
  e.parent_global = p == -1 ? -1 : comm.global(p);
  for (Rank c : tree.kids(e.me_local)) e.kids_global.push_back(comm.global(c));
  return e;
}

TimeNs reduce_cost(const runtime::Context& ctx, const CollOpts& opts,
                   Bytes len) {
  const double gamma = ctx.machine().spec().reduce_gamma * opts.gamma_scale;
  return static_cast<TimeNs>(gamma * static_cast<double>(len));
}

void apply_if_real(mpi::MutView dst, mpi::ConstView src, mpi::ReduceOp op,
                   mpi::Datatype dtype, Bytes len) {
  if (len == 0 || dst.synthetic() || src.synthetic()) return;
  mpi::apply(op, dtype, dst.data, src.data, len);
}

CollSpan::CollSpan(runtime::Context& ctx, const char* op, const char* style,
                   Bytes bytes)
    : rec_(ctx.recorder()) {
  if (!rec_) return;
  pid_ = obs::rank_pid(ctx.rank());
  name_ = op;
  if (style) {
    name_ += '/';
    name_ += style;
  }
  t0_ = rec_->now();
  bytes_ = bytes;
}

CollSpan::~CollSpan() {
  if (!rec_) return;
  rec_->span(pid_, obs::kTidMain, obs::Cat::kColl, std::move(name_), t0_,
             rec_->now(), bytes_);
}

}  // namespace adapt::coll::detail
