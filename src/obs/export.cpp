#include "src/obs/export.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <set>
#include <sstream>

#include "src/support/json.hpp"

namespace adapt::obs {

namespace {

/// Exact µs decimal from integer ns: no floating point, no locale — the
/// determinism contract depends on this formatting.
std::string fmt_us(TimeNs t) {
  const TimeNs us = t / 1000;
  const TimeNs frac = t % 1000;
  std::ostringstream ss;
  ss << us << '.';
  ss << static_cast<char>('0' + frac / 100)
     << static_cast<char>('0' + (frac / 10) % 10)
     << static_cast<char>('0' + frac % 10);
  return ss.str();
}

class EventWriter {
 public:
  explicit EventWriter(std::ostream& os) : os_(os) {
    os_ << "{\"traceEvents\":[";
  }
  ~EventWriter() { os_ << "\n],\"displayTimeUnit\":\"ms\"}\n"; }

  std::ostream& next() {
    os_ << (first_ ? "\n" : ",\n");
    first_ = false;
    return os_;
  }

 private:
  std::ostream& os_;
  bool first_ = true;
};

}  // namespace

void write_trace_json(const Recorder& rec, std::ostream& os) {
  EventWriter w(os);

  // Track metadata: which rank pids appear anywhere in the trace.
  std::set<int> rank_pids;
  const int nranks = static_cast<int>(rec.metrics().ranks().size());
  for (int r = 0; r < nranks; ++r) rank_pids.insert(rank_pid(r));
  for (const SpanRec& s : rec.spans())
    if (s.pid != kNetPid) rank_pids.insert(s.pid);
  for (const InstantRec& i : rec.instants())
    if (i.pid != kNetPid) rank_pids.insert(i.pid);
  for (const CpuRec& c : rec.cpu_tasks()) rank_pids.insert(rank_pid(c.rank));

  w.next() << "{\"ph\":\"M\",\"pid\":" << kNetPid
           << ",\"name\":\"process_name\",\"args\":{\"name\":\"net\"}}";
  for (const int pid : rank_pids) {
    w.next() << "{\"ph\":\"M\",\"pid\":" << pid
             << ",\"name\":\"process_name\",\"args\":{\"name\":\"rank "
             << (pid - 1) << "\"}}";
    w.next() << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << kTidMain
             << ",\"name\":\"thread_name\",\"args\":{\"name\":\"main\"}}";
    w.next() << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << kTidProgress
             << ",\"name\":\"thread_name\",\"args\":{\"name\":\"progress\"}}";
  }

  for (const SpanRec& s : rec.spans()) {
    w.next() << "{\"ph\":\"X\",\"pid\":" << s.pid << ",\"tid\":" << s.tid
             << ",\"cat\":\"" << cat_name(s.cat)
             << "\",\"name\":" << json_quote(s.name) << ",\"ts\":"
             << fmt_us(s.t0) << ",\"dur\":" << fmt_us(s.t1 - s.t0)
             << ",\"args\":{\"arg\":" << s.arg << "}}";
  }

  for (const CpuRec& c : rec.cpu_tasks()) {
    const int pid = rank_pid(c.rank);
    const int tid = c.progress ? kTidProgress : kTidMain;
    if (c.t_start > c.t_ready) {
      w.next() << "{\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":" << tid
               << ",\"cat\":\"noise\",\"name\":\"noise-stall\",\"ts\":"
               << fmt_us(c.t_ready) << ",\"dur\":"
               << fmt_us(c.t_start - c.t_ready) << "}";
    }
    if (c.t_end > c.t_start) {
      w.next() << "{\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":" << tid
               << ",\"cat\":\"cpu\",\"name\":\""
               << (c.progress ? "progress" : "cpu") << "\",\"ts\":"
               << fmt_us(c.t_start) << ",\"dur\":" << fmt_us(c.t_end - c.t_start)
               << ",\"args\":{\"queued_ns\":" << (c.t_ready - c.t_request)
               << "}}";
    }
  }

  for (const InstantRec& i : rec.instants()) {
    w.next() << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":" << i.pid
             << ",\"tid\":" << i.tid << ",\"cat\":\"" << cat_name(i.cat)
             << "\",\"name\":" << json_quote(i.name) << ",\"ts\":"
             << fmt_us(i.t) << ",\"args\":{\"arg\":" << i.arg << "}}";
  }

  // Transfers: legacy async begin/end pairs on the "net" process, one track
  // per message, so overlapping flows render without fake nesting.
  const auto& xfers = rec.transfers();
  for (std::size_t idx = 0; idx < xfers.size(); ++idx) {
    const TransferRec& x = xfers[idx];
    if (!x.done) continue;
    const std::uint64_t id = idx + 1;
    std::ostringstream name;
    name << transfer_kind_name(x.kind) << ' ' << x.src << "->" << x.dst;
    const TimeNs stream = x.t_end - x.t_active;
    w.next() << "{\"ph\":\"b\",\"cat\":\"p2p\",\"id\":" << id
             << ",\"pid\":" << kNetPid << ",\"tid\":0,\"name\":"
             << json_quote(name.str()) << ",\"ts\":" << fmt_us(x.t_post)
             << ",\"args\":{\"bytes\":" << x.bytes
             << ",\"alpha_ns\":" << (x.t_active - x.t_post)
             << ",\"ideal_ns\":" << x.ideal
             << ",\"stretch_ns\":" << std::max<TimeNs>(0, stream - x.ideal)
             << ",\"delivered\":" << (x.delivered ? "true" : "false") << "}}";
    w.next() << "{\"ph\":\"e\",\"cat\":\"p2p\",\"id\":" << id
             << ",\"pid\":" << kNetPid << ",\"tid\":0,\"name\":"
             << json_quote(name.str()) << ",\"ts\":" << fmt_us(x.t_end)
             << "}";
  }

  for (const LinkSampleRec& s : rec.link_samples()) {
    w.next() << "{\"ph\":\"C\",\"pid\":" << kNetPid
             << ",\"name\":\"link" << s.link << " flows\",\"ts\":"
             << fmt_us(s.t) << ",\"args\":{\"flows\":" << s.flows << "}}";
  }
}

void write_metrics_csv(const Recorder& rec, std::ostream& os) {
  rec.metrics().write_csv(os);
  os << "queue,events_scheduled," << rec.queue_stats().scheduled << ",\n";
  os << "queue,max_depth," << rec.queue_stats().max_depth << ",\n";
}

bool write_trace_file(const Recorder& rec, const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  write_trace_json(rec, os);
  return static_cast<bool>(os);
}

bool write_metrics_file(const Recorder& rec, const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  write_metrics_csv(rec, os);
  return static_cast<bool>(os);
}

}  // namespace adapt::obs
