// Receiver-side message matching: the posted-receive queue and the
// unexpected-message queue.
//
// Matching is by (source, tag) with MPI-style wildcards; among equally
// matching entries the earliest posted/arrived wins (FIFO). The unexpected
// path is what the paper's M > N discussion (§2.2.1) is about: an unexpected
// message costs an extra buffer allocation and copy when it is finally
// matched, so ADAPT posts more receives (M) than each sender keeps in
// flight (N).
//
// Both queues are bucketed by the concrete (source, tag) pair, so the
// common case — a fully specified receive meeting a fully specified
// envelope — is an O(1) bucket-front hit instead of a linear scan across
// every pending entry (the scan is what made deep posted queues, M large in
// the M > N scheme, quadratic). Wildcard receives take a fallback path:
// posted wildcards live on a separate FIFO list that arrivals scan
// linearly, and a wildcard post scans the bucket fronts of the unexpected
// table. Every entry carries a monotone arrival stamp, and a match always
// takes the lowest stamp among the bucket candidate and the wildcard
// candidate — exactly the earliest-wins order of the original single-queue
// scan, which the interleaving unit test pins down.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/mpi/payload.hpp"
#include "src/mpi/request.hpp"
#include "src/support/buffer_pool.hpp"
#include "src/support/units.hpp"

namespace adapt::mpi {

/// A receive that has been posted and not yet matched.
struct PostedRecv {
  RequestPtr request;
  MutView buffer;
  Rank src = kAnyRank;  ///< kAnyRank = wildcard
  Tag tag = kAnyTag;    ///< kAnyTag = wildcard
};

/// In-flight message (eager: data travels with it) or rendezvous
/// ready-to-send notice (grant set: data moves only once a receive matched).
struct Envelope {
  Rank src = kAnyRank;
  Rank dst = kAnyRank;
  Tag tag = kAnyTag;
  Bytes size = 0;
  /// Copy of the sender's bytes (`size` of them, in a pooled block); null
  /// for synthetic payloads and RTS notices.
  support::BufferRef data;
  /// Rendezvous grant: invoked exactly once with the matched receive; the
  /// transport then runs CTS + data transfer and finalises both requests.
  std::function<void(PostedRecv)> grant;

  bool rendezvous() const { return static_cast<bool>(grant); }
};

class Matcher {
 public:
  /// Tries to match a newly posted receive against the unexpected queue.
  /// On a hit the envelope is removed and returned; otherwise the receive is
  /// enqueued on the posted list.
  std::optional<Envelope> post(PostedRecv recv);

  /// Tries to match an arriving envelope against the posted list. On a hit
  /// the posted receive is removed and returned and `env` is left untouched;
  /// only on a miss is `env` moved into the unexpected list (copying it
  /// would re-box the rendezvous grant's std::function on every unexpected
  /// arrival — the per-round allocation the steady-state bench pins at 0).
  std::optional<PostedRecv> arrive(Envelope&& env);

  std::size_t posted_count() const { return posted_count_; }
  std::size_t unexpected_count() const { return unexpected_count_; }
  std::uint64_t total_unexpected() const { return total_unexpected_; }

  /// Approximate resident bytes of the matching structures: bucket-table
  /// slots, per-bucket node overhead, and every Fifo's retained capacity.
  /// Deterministic for a given rank's matching history (capacities grow by
  /// the same doubling sequence whatever the shard count), which lets the
  /// rank-state gauge sum it across ranks and stay byte-comparable across
  /// --shards values.
  std::size_t footprint_bytes() const {
    // unordered_map node: key + value + next pointer (libstdc++ layout).
    constexpr std::size_t kNode = sizeof(std::uint64_t) + sizeof(void*);
    std::size_t total = sizeof(Matcher);
    total += posted_buckets_.bucket_count() * sizeof(void*);
    for (const auto& [key, fifo] : posted_buckets_) {
      total += kNode + sizeof(fifo) +
               fifo.items.capacity() * sizeof(Stamped<PostedRecv>);
    }
    total += unexpected_buckets_.bucket_count() * sizeof(void*);
    for (const auto& [key, fifo] : unexpected_buckets_) {
      total += kNode + sizeof(fifo) +
               fifo.items.capacity() * sizeof(Stamped<Envelope>);
    }
    total += posted_wild_.size() * sizeof(Stamped<PostedRecv>);
    return total;
  }

 private:
  static bool matches(const PostedRecv& recv, const Envelope& env) {
    return (recv.src == kAnyRank || recv.src == env.src) &&
           (recv.tag == kAnyTag || recv.tag == env.tag);
  }
  /// Envelopes always carry a concrete (src, tag): the bucket key.
  static std::uint64_t key_of(Rank src, Tag tag) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src))
            << 32) |
           static_cast<std::uint32_t>(tag);
  }

  template <typename T>
  struct Stamped {
    std::uint64_t stamp;
    T value;
  };

  /// Vector-backed FIFO: pop_front advances a head index and storage resets
  /// (capacity kept) once drained — one allocation per bucket lifetime
  /// instead of a deque's chunk map, and contiguous for the scans.
  template <typename T>
  struct Fifo {
    std::vector<Stamped<T>> items;
    std::size_t head = 0;

    bool empty() const { return head == items.size(); }
    Stamped<T>& front() { return items[head]; }
    const Stamped<T>& front() const { return items[head]; }
    void push_back(Stamped<T> v) {
      // A bucket that never fully drains (steady-state traffic keeps an
      // entry in flight across every push) never hits the drained reset, so
      // the consumed prefix would grow `items` without bound. When a push is
      // about to reallocate and at least half the storage is consumed
      // prefix, slide the live suffix down instead: erase() keeps capacity
      // and reclaims >= capacity/2 slots (amortised O(1)), so a warmed-up
      // bucket pushes with no allocation.
      if (items.size() == items.capacity() && head * 2 >= items.size() &&
          head > 0) {
        items.erase(items.begin(),
                    items.begin() + static_cast<std::ptrdiff_t>(head));
        head = 0;
      }
      items.push_back(std::move(v));
    }
    void pop_front() {
      if (++head == items.size()) {
        items.clear();
        head = 0;
      }
    }
  };

  /// Fully specified receives, bucketed by (src, tag); FIFO within a bucket.
  std::unordered_map<std::uint64_t, Fifo<PostedRecv>> posted_buckets_;
  /// Receives with a kAnyRank/kAnyTag wildcard, in posting order.
  std::deque<Stamped<PostedRecv>> posted_wild_;
  /// Unexpected envelopes, bucketed by their concrete (src, tag).
  std::unordered_map<std::uint64_t, Fifo<Envelope>> unexpected_buckets_;

  std::uint64_t next_stamp_ = 0;
  std::size_t posted_count_ = 0;
  std::size_t unexpected_count_ = 0;
  std::uint64_t total_unexpected_ = 0;
};

}  // namespace adapt::mpi
