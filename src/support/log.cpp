#include "src/support/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <utility>

namespace adapt {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kOff};
std::mutex g_mutex;
LogSink g_sink;  // guarded by g_mutex; null = stderr

/// Thread-local runtime context (see ScopedLogContext); engines stack them.
struct LogContext {
  int rank = -1;
  std::int64_t (*now)(const void*) = nullptr;
  const void* arg = nullptr;
};
thread_local LogContext t_ctx;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kOff: break;
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_sink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_sink = std::move(sink);
}

ScopedLogContext::ScopedLogContext(int rank, std::int64_t (*now)(const void*),
                                   const void* arg) {
  t_ctx = LogContext{rank, now, arg};
}

ScopedLogContext::~ScopedLogContext() { t_ctx = LogContext{}; }

namespace detail {

void log_line(LogLevel level, const std::string& line) {
  // Read the context (and its clock) before taking the mutex: the clock
  // belongs to the calling thread's engine, not to the logger.
  char prefix[64];
  prefix[0] = '\0';
  if (t_ctx.now != nullptr) {
    std::snprintf(prefix, sizeof(prefix), " t=%lldns r=%d",
                  static_cast<long long>(t_ctx.now(t_ctx.arg)), t_ctx.rank);
  }
  std::lock_guard<std::mutex> lock(g_mutex);
  if (g_sink) {
    std::string full = "[adapt ";
    full += level_name(level);
    full += prefix;
    full += "] ";
    full += line;
    g_sink(full);
    return;
  }
  std::fprintf(stderr, "[adapt %s%s] %s\n", level_name(level), prefix,
               line.c_str());
}

}  // namespace detail
}  // namespace adapt
