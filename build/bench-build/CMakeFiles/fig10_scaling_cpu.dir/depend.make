# Empty dependencies file for fig10_scaling_cpu.
# This may be replaced when dependencies are built.
