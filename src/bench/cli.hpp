// Tiny flag parser + shared setup for the figure-reproduction binaries.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "src/topo/hardware.hpp"

namespace adapt::bench {

/// Parses "--key value" and "--flag" style arguments; anything unknown to the
/// caller is rejected via the accessors' `known` bookkeeping.
class Cli {
 public:
  Cli(int argc, char** argv);

  std::string get(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  bool has(const std::string& key) const;

 private:
  std::map<std::string, std::string> args_;
};

/// Builds the paper's machine for a cluster name at a node count, with the
/// rank count the paper used unless overridden.
struct ClusterSetup {
  topo::Machine machine;
  std::string cluster;
  int ranks;
};

ClusterSetup make_cluster(const std::string& cluster, int nodes, int ranks);

}  // namespace adapt::bench
