#include "src/coll/moreops.hpp"

#include <cstring>

#include "src/coll/detail.hpp"
#include "src/support/error.hpp"

namespace adapt::coll {

namespace {

/// Binomial-subtree size under label v in a tree over [0, n) rooted at 0:
/// the half-open label range [v, v + span(v)) with span = lowest set bit
/// (clamped by n). Label 0 spans everything.
int subtree_span(int v, int n) {
  if (v == 0) return n;
  const int low = v & -v;
  return std::min(low, n - v);
}

/// Copies between real views (no-op when either side is synthetic).
void copy_if_real(mpi::MutView dst, mpi::ConstView src, Bytes len) {
  if (len > 0 && !dst.synthetic() && !src.synthetic()) {
    std::memcpy(dst.data, src.data, static_cast<std::size_t>(len));
  }
}

}  // namespace

sim::Task<> scatter(runtime::Context& ctx, const mpi::Comm& comm,
                    mpi::ConstView sendbuf, mpi::MutView recvblock,
                    Bytes block, Rank root) {
  const int n = comm.size();
  const Rank me = comm.local_of(ctx.rank());
  ADAPT_CHECK(me != kAnyRank);
  ADAPT_CHECK(block >= 0);
  const Tag base_tag = ctx.alloc_tags(n);
  if (n == 1) {
    copy_if_real(recvblock, sendbuf.slice(0, block), block);
    co_return;
  }

  // Work in root-relative labels; label v's block is local rank (v+root)%n's.
  const int v = (me - root + n) % n;
  const int span = subtree_span(v, n);
  auto global_of_label = [&](int label) {
    return comm.global((label + root) % n);
  };

  // Staging buffer in label order covering [v, v+span).
  const bool synthetic = recvblock.synthetic() ||
                         (me == root && sendbuf.synthetic());
  mpi::Payload stage = mpi::Payload::scratch(ctx.pool(), span * block,
                                             synthetic);
  if (me == root) {
    ADAPT_CHECK(sendbuf.size >= block * n) << "scatter sendbuf too small";
    for (int l = 0; l < n; ++l) {
      copy_if_real(stage.view().slice(l * block, block),
                   sendbuf.slice(((l + root) % n) * block, block), block);
    }
  } else {
    // Receive my whole label range from my binomial parent.
    const int parent_label = v - (v & -v);
    co_await ctx.recv(global_of_label(parent_label), base_tag + v,
                      stage.view());
  }

  // Forward child ranges: children of label v are v + bit for powers of two
  // bit below v's low bit (all powers for the root), within [0, n).
  std::vector<mpi::RequestPtr> sends;
  for (int bit = 1; bit < span; bit *= 2) {
    const int child = v + bit;
    const int child_span = subtree_span(child, n);
    sends.push_back(ctx.isend(
        global_of_label(child), base_tag + child,
        stage.cview().slice((child - v) * block, child_span * block)));
  }
  copy_if_real(recvblock, stage.cview().slice(0, block), block);
  co_await mpi::wait_all(sends);
}

sim::Task<> gather(runtime::Context& ctx, const mpi::Comm& comm,
                   mpi::ConstView sendblock, mpi::MutView recvbuf, Bytes block,
                   Rank root) {
  const int n = comm.size();
  const Rank me = comm.local_of(ctx.rank());
  ADAPT_CHECK(me != kAnyRank);
  const Tag base_tag = ctx.alloc_tags(n);
  if (n == 1) {
    copy_if_real(recvbuf.slice(0, block), sendblock, block);
    co_return;
  }

  const int v = (me - root + n) % n;
  const int span = subtree_span(v, n);
  auto global_of_label = [&](int label) {
    return comm.global((label + root) % n);
  };

  const bool synthetic = sendblock.synthetic() ||
                         (me == root && recvbuf.synthetic());
  mpi::Payload stage = mpi::Payload::scratch(ctx.pool(), span * block,
                                             synthetic);
  copy_if_real(stage.view().slice(0, block), sendblock, block);

  // Collect child ranges (reverse of scatter).
  std::vector<mpi::RequestPtr> recvs;
  for (int bit = 1; bit < span; bit *= 2) {
    const int child = v + bit;
    if (child < n && (v == 0 || bit < (v & -v))) {
      const int child_span = subtree_span(child, n);
      recvs.push_back(ctx.irecv(
          global_of_label(child), base_tag + child,
          stage.view().slice((child - v) * block, child_span * block)));
    }
  }
  co_await mpi::wait_all(recvs);

  if (me == root) {
    ADAPT_CHECK(recvbuf.size >= block * n) << "gather recvbuf too small";
    for (int l = 0; l < n; ++l) {
      copy_if_real(recvbuf.slice(((l + root) % n) * block, block),
                   stage.cview().slice(l * block, block), block);
    }
  } else {
    const int parent_label = v - (v & -v);
    co_await ctx.send(global_of_label(parent_label), base_tag + v,
                      stage.cview());
  }
}

sim::Task<> allgather(runtime::Context& ctx, const mpi::Comm& comm,
                      mpi::MutView buf, Bytes block, AllgatherAlgo algo) {
  const int n = comm.size();
  const Rank me = comm.local_of(ctx.rank());
  ADAPT_CHECK(me != kAnyRank);
  ADAPT_CHECK(buf.size >= block * n) << "allgather buffer too small";
  if (n == 1) co_return;

  const bool pow2 = (n & (n - 1)) == 0;
  if (algo == AllgatherAlgo::kRecursiveDoubling && pow2) {
    const Tag base_tag = ctx.alloc_tags(32);
    int held_base = me;  // start of my held block range (power-of-two sized)
    int held = 1;
    int step = 0;
    for (int d = 1; d < n; d *= 2, ++step) {
      const Rank partner = me ^ d;
      held_base = (me / held) * held;  // normalise to my group
      auto send = ctx.isend(comm.global(partner), base_tag + step,
                            buf.slice(held_base * block, held * block)
                                .as_const());
      const int partner_base = (partner / held) * held;
      auto recv = ctx.irecv(comm.global(partner), base_tag + step,
                            buf.slice(partner_base * block, held * block));
      co_await mpi::wait(recv);
      co_await mpi::wait(send);
      held *= 2;
    }
    co_return;
  }

  // Ring: P-1 steps; at step t forward the block received at step t-1.
  const Tag base_tag = ctx.alloc_tags(n);
  const Rank right = comm.global((me + 1) % n);
  const Rank left = comm.global((me - 1 + n) % n);
  for (int t = 0; t < n - 1; ++t) {
    const int send_block = (me - t + n) % n;
    const int recv_block = (me - t - 1 + n) % n;
    auto send = ctx.isend(right, base_tag + t,
                          buf.slice(send_block * block, block).as_const());
    auto recv =
        ctx.irecv(left, base_tag + t, buf.slice(recv_block * block, block));
    co_await mpi::wait(recv);
    co_await mpi::wait(send);
  }
}

sim::Task<> bcast_scatter_allgather(runtime::Context& ctx,
                                    const mpi::Comm& comm, mpi::MutView buffer,
                                    Rank root, AllgatherAlgo algo) {
  const int n = comm.size();
  const Rank me = comm.local_of(ctx.rank());
  ADAPT_CHECK(me != kAnyRank);
  if (n == 1) co_return;

  // Virtual padded layout: n equal blocks; message lengths are clamped to the
  // real buffer, so trailing ranks may move fewer (or zero) bytes. The
  // collectives still run their full hand-shake pattern, as MPI ones do.
  const Bytes block = (buffer.size + n - 1) / n;
  if (block == 0) {
    // Zero-byte broadcast: fall back to a binomial tree notification.
    co_await bcast(ctx, comm, buffer, root, binomial_tree(n, root),
                   Style::kNonblocking, CollOpts{.segment_size = 1});
    co_return;
  }
  // Scatter phase over a padded staging area so ranges stay uniform, then
  // allgather over the same layout and unpack.
  const bool synthetic = buffer.synthetic();
  mpi::Payload padded =
      mpi::Payload::scratch(ctx.pool(), block * n, synthetic);
  if (me == root && !synthetic) {
    std::memcpy(padded.data(), buffer.data,
                static_cast<std::size_t>(buffer.size));
  }
  mpi::Payload myblock = mpi::Payload::scratch(ctx.pool(), block, synthetic);
  co_await scatter(ctx, comm, padded.cview(), myblock.view(), block, root);
  copy_if_real(padded.view().slice(me * block, block), myblock.cview(), block);
  co_await allgather(ctx, comm, padded.view(), block, algo);
  if (!synthetic && me != root) {
    std::memcpy(buffer.data, padded.data(),
                static_cast<std::size_t>(buffer.size));
  }
}

sim::Task<> reduce_rabenseifner(runtime::Context& ctx, const mpi::Comm& comm,
                                mpi::MutView accum, mpi::ReduceOp op,
                                mpi::Datatype dtype, Rank root,
                                const CollOpts& opts) {
  const int n = comm.size();
  const Rank me = comm.local_of(ctx.rank());
  ADAPT_CHECK(me != kAnyRank);
  if (n == 1) co_return;

  int p2 = 1;
  while (p2 * 2 <= n) p2 *= 2;
  const int surplus = n - p2;
  const Tag base_tag = ctx.alloc_tags(64 + n);
  const Bytes elem = size_of(dtype);
  const bool synthetic = accum.synthetic();
  mpi::Payload scratch =
      mpi::Payload::scratch(ctx.pool(), accum.size, synthetic);

  auto fold = [&](mpi::MutView dst, mpi::ConstView src,
                  Bytes len) -> sim::Task<> {
    detail::apply_if_real(dst, src, op, dtype, len);
    co_await ctx.compute(detail::reduce_cost(ctx, opts, len));
  };

  // Phase 0: fold the surplus ranks pairwise so p2 active ranks remain.
  // Pair (2i, 2i+1) for i < surplus; the receiver is the even rank unless the
  // root is the odd one (keeping the root active).
  bool active = true;
  int idx = -1;  // my index in the active [0, p2) space
  if (me < 2 * surplus) {
    const Rank even = me & ~1;
    const Rank odd = even + 1;
    const Rank receiver = (root == odd) ? odd : even;
    const Rank sender = receiver == even ? odd : even;
    if (me == sender) {
      co_await ctx.send(comm.global(receiver), base_tag, accum.as_const(),
                        opts.send);
      active = false;
    } else {
      co_await ctx.recv(comm.global(sender), base_tag, scratch.view());
      co_await fold(accum, scratch.cview(), accum.size);
      idx = me / 2;
    }
  } else {
    idx = me - surplus;
  }

  // Map active index -> local rank (inverse of the assignment above).
  auto rank_of_idx = [&](int i) -> Rank {
    if (i < surplus) {
      const Rank even = static_cast<Rank>(2 * i);
      return (root == even + 1) ? even + 1 : even;
    }
    return static_cast<Rank>(i + surplus);
  };

  // Phase 1: recursive-halving reduce-scatter over p2 blocks.
  const Bytes block = (accum.size + p2 - 1) / p2;
  auto range_bytes = [&](int blo, int bhi) {  // clamped [blo, bhi) in bytes
    Bytes lo = std::min<Bytes>(accum.size, static_cast<Bytes>(blo) * block);
    Bytes hi = std::min<Bytes>(accum.size, static_cast<Bytes>(bhi) * block);
    lo -= lo % elem;
    hi -= hi % elem;
    return std::pair<Bytes, Bytes>{lo, hi};
  };

  if (active) {
    int lo = 0, hi = p2, step = 1;
    for (int d = p2 / 2; d >= 1; d /= 2, ++step) {
      const int partner_idx = idx ^ d;
      const Rank partner = comm.global(rank_of_idx(partner_idx));
      const int mid = lo + (hi - lo) / 2;
      const bool keep_low = (idx & d) == 0;
      const auto [keep_lo, keep_hi] =
          keep_low ? range_bytes(lo, mid) : range_bytes(mid, hi);
      const auto [send_lo, send_hi] =
          keep_low ? range_bytes(mid, hi) : range_bytes(lo, mid);
      auto send = ctx.isend(partner, base_tag + step,
                            accum.slice(send_lo, send_hi - send_lo).as_const(),
                            opts.send);
      auto recv = ctx.irecv(partner, base_tag + step,
                            scratch.view().slice(keep_lo, keep_hi - keep_lo));
      co_await mpi::wait(recv);
      co_await fold(accum.slice(keep_lo, keep_hi - keep_lo),
                    scratch.cview().slice(keep_lo, keep_hi - keep_lo),
                    keep_hi - keep_lo);
      co_await mpi::wait(send);
      if (keep_low) {
        hi = mid;
      } else {
        lo = mid;
      }
    }

    // Phase 2: gather the p2 reduced blocks to the root.
    const auto [mine_lo, mine_hi] = range_bytes(lo, lo + 1);
    const Rank root_idx_rank = comm.local_of(comm.global(root));
    (void)root_idx_rank;
    if (me == root) {
      std::vector<mpi::RequestPtr> recvs;
      for (int i = 0; i < p2; ++i) {
        if (rank_of_idx(i) == me) continue;
        const auto [blo, bhi] = range_bytes(i, i + 1);
        if (bhi <= blo) continue;
        recvs.push_back(ctx.irecv(comm.global(rank_of_idx(i)),
                                  base_tag + 40 + i,
                                  accum.slice(blo, bhi - blo)));
      }
      co_await mpi::wait_all(recvs);
    } else if (mine_hi > mine_lo) {
      co_await ctx.send(comm.global(root), base_tag + 40 + lo,
                        accum.slice(mine_lo, mine_hi - mine_lo).as_const(),
                        opts.send);
    }
  }
}

sim::Task<> allreduce(runtime::Context& ctx, const mpi::Comm& comm,
                      mpi::MutView accum, mpi::ReduceOp op,
                      mpi::Datatype dtype, const Tree& reduce_tree,
                      const Tree& bcast_tree, Style style,
                      const CollOpts& opts) {
  co_await reduce(ctx, comm, accum, op, dtype, reduce_tree.root, reduce_tree,
                  style, opts);
  co_await bcast(ctx, comm, accum, bcast_tree.root, bcast_tree, style, opts);
}

sim::Task<> allreduce_ring(runtime::Context& ctx, const mpi::Comm& comm,
                           mpi::MutView accum, mpi::ReduceOp op,
                           mpi::Datatype dtype, const CollOpts& opts) {
  const int n = comm.size();
  const Rank me = comm.local_of(ctx.rank());
  ADAPT_CHECK(me != kAnyRank);
  if (n == 1) co_return;
  const Bytes elem = size_of(dtype);

  // Elem-aligned virtual blocks [bound(i), bound(i+1)).
  const Bytes raw_block = (accum.size + n - 1) / n;
  auto bound = [&](int i) {
    Bytes b = std::min<Bytes>(accum.size, static_cast<Bytes>(i) * raw_block);
    return b - b % elem;
  };
  const Tag base_tag = ctx.alloc_tags(2 * n);
  const Rank right = comm.global((me + 1) % n);
  const Rank left = comm.global((me - 1 + n) % n);
  const bool synthetic = accum.synthetic();
  mpi::Payload scratch =
      mpi::Payload::scratch(ctx.pool(), raw_block + elem, synthetic);

  // Phase 1 — reduce-scatter ring: after P-1 steps, rank me holds the fully
  // reduced block (me+1) mod n.
  for (int t = 0; t < n - 1; ++t) {
    const int send_block = (me - t + n) % n;
    const int recv_block = (me - t - 1 + n) % n;
    const auto [slo, shi] = std::pair(bound(send_block), bound(send_block + 1));
    const auto [rlo, rhi] = std::pair(bound(recv_block), bound(recv_block + 1));
    auto send = ctx.isend(right, base_tag + t,
                          accum.slice(slo, shi - slo).as_const(), opts.send);
    auto recv = ctx.irecv(left, base_tag + t,
                          scratch.view().slice(0, rhi - rlo));
    co_await mpi::wait(recv);
    detail::apply_if_real(accum.slice(rlo, rhi - rlo),
                          scratch.cview().slice(0, rhi - rlo), op, dtype,
                          rhi - rlo);
    co_await ctx.compute(detail::reduce_cost(ctx, opts, rhi - rlo));
    co_await mpi::wait(send);
  }

  // Phase 2 — allgather ring over the reduced blocks.
  for (int t = 0; t < n - 1; ++t) {
    const int send_block = (me + 1 - t + n) % n;
    const int recv_block = (me - t + n) % n;
    const auto [slo, shi] = std::pair(bound(send_block), bound(send_block + 1));
    const auto [rlo, rhi] = std::pair(bound(recv_block), bound(recv_block + 1));
    auto send = ctx.isend(right, base_tag + n + t,
                          accum.slice(slo, shi - slo).as_const(), opts.send);
    auto recv =
        ctx.irecv(left, base_tag + n + t, accum.slice(rlo, rhi - rlo));
    co_await mpi::wait(recv);
    co_await mpi::wait(send);
  }
}

sim::Task<> alltoall(runtime::Context& ctx, const mpi::Comm& comm,
                     mpi::ConstView sendbuf, mpi::MutView recvbuf,
                     Bytes block) {
  const int n = comm.size();
  const Rank me = comm.local_of(ctx.rank());
  ADAPT_CHECK(me != kAnyRank);
  ADAPT_CHECK(sendbuf.size >= block * n && recvbuf.size >= block * n);
  const Tag base_tag = ctx.alloc_tags(n);
  // Own block moves locally.
  copy_if_real(recvbuf.slice(me * block, block),
               sendbuf.slice(me * block, block), block);
  // Pairwise exchange: in round t, exchange with partner me ^ t when the
  // size is a power of two, else the (me +/- t) rotation.
  const bool pow2 = (n & (n - 1)) == 0;
  for (int t = 1; t < n; ++t) {
    const Rank partner = pow2 ? (me ^ t) : (me + t) % n;
    const Rank source = pow2 ? partner : (me - t + n) % n;
    auto send = ctx.isend(comm.global(partner), base_tag + t,
                          sendbuf.slice(partner * block, block));
    auto recv = ctx.irecv(comm.global(source), base_tag + t,
                          recvbuf.slice(source * block, block));
    co_await mpi::wait(recv);
    co_await mpi::wait(send);
  }
}

}  // namespace adapt::coll
