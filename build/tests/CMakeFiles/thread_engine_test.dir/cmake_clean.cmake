file(REMOVE_RECURSE
  "CMakeFiles/thread_engine_test.dir/thread_engine_test.cpp.o"
  "CMakeFiles/thread_engine_test.dir/thread_engine_test.cpp.o.d"
  "thread_engine_test"
  "thread_engine_test.pdb"
  "thread_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thread_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
