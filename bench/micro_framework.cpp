// Micro-benchmarks of the framework's hot internals (google-benchmark):
// event-queue throughput, fluid-flow rebalancing, matching, tree builders and
// the end-to-end simulated-message rate. These guard the simulator's own
// performance, which bounds how large a cluster the figure benches can model.
//
// The binary also replaces the global allocator with a counting one, so the
// *SteadyState benchmarks can report an `allocs_per_item` counter — the
// allocation-free contract of the slab event queue and the buffer pool as a
// perf-CI guard (a regression shows up as a non-zero counter, not just a
// slowdown).
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "src/coll/coll.hpp"
#include "src/coll/topo_tree.hpp"
#include "src/mpi/match.hpp"
#include "src/net/fabric.hpp"
#include "src/obs/flight.hpp"
#include "src/obs/trace.hpp"
#include "src/runtime/sim_engine.hpp"
#include "src/sim/simulator.hpp"
#include "src/support/buffer_pool.hpp"
#include "src/support/rng.hpp"
#include "src/topo/presets.hpp"

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align), n ? n : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t n, std::align_val_t align) {
  return ::operator new(n, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace adapt;

void BM_EventQueuePushPop(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  for (auto _ : state) {
    sim::EventQueue q;
    for (int i = 0; i < n; ++i) {
      q.push(static_cast<TimeNs>(rng.next_below(1 << 20)), [] {});
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop().second);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1024)->Arg(16384);

// Steady-state churn on a warm queue: constant depth, recycled slots, warm
// radix buckets. `allocs_per_item` must stay 0.00 — the allocation-free
// contract as a perf-CI counter.
void BM_EventQueueSteadyState(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  sim::EventQueue q;
  Rng rng(1);
  TimeNs t = 0;
  const auto round = [&] {
    for (int i = 0; i < depth; ++i) {
      q.push(t + 1 + static_cast<TimeNs>(rng.next_below(1 << 12)), [] {});
    }
    while (!q.empty()) {
      auto [time, fn] = q.pop();
      t = time;
      benchmark::DoNotOptimize(fn);
    }
  };
  // Warm every radix level reachable by an advancing clock, then the loop's
  // own shape, so the measured region starts with all capacity in place.
  for (int b = 5; b <= 45; ++b) {
    for (int j = 0; j < depth; ++j) {
      q.push((static_cast<TimeNs>(1) << b) + j, [] {});
    }
  }
  while (!q.empty()) t = q.pop().first;
  round();
  const std::uint64_t before = g_alloc_count.load();
  std::uint64_t items = 0;
  for (auto _ : state) {
    round();
    items += static_cast<std::uint64_t>(depth);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(items));
  state.counters["allocs_per_item"] = benchmark::Counter(
      static_cast<double>(g_alloc_count.load() - before) /
      static_cast<double>(items ? items : 1));
}
BENCHMARK(BM_EventQueueSteadyState)->Arg(64)->Arg(1024);

// Steady-state acquire/release churn on a warm pool — same contract.
void BM_BufferPoolSteadyState(benchmark::State& state) {
  support::BufferPool pool;
  const auto round = [&] {
    support::BufferRef a = pool.acquire(kib(32));
    support::BufferRef b = pool.acquire_raw(4096);
    support::BufferRef c = pool.acquire(256);
    support::BufferRef shared = a;
    benchmark::DoNotOptimize(shared.data());
  };
  round();  // warm the free lists
  const std::uint64_t before = g_alloc_count.load();
  std::uint64_t items = 0;
  for (auto _ : state) {
    round();
    items += 3;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(items));
  state.counters["allocs_per_item"] = benchmark::Counter(
      static_cast<double>(g_alloc_count.load() - before) /
      static_cast<double>(items ? items : 1));
}
BENCHMARK(BM_BufferPoolSteadyState);

void BM_FabricContendedFlows(benchmark::State& state) {
  const int flows = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    net::Fabric fabric(sim);
    const net::LinkId link = fabric.add_link(8.0);
    for (int i = 0; i < flows; ++i) {
      fabric.transfer(net::Route{{link}, 1.0, 100}, 100000, [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(fabric.flows_completed());
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_FabricContendedFlows)->Arg(16)->Arg(256);

void BM_MatcherThroughput(benchmark::State& state) {
  const int msgs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    mpi::Matcher matcher;
    for (int i = 0; i < msgs; ++i) {
      mpi::PostedRecv recv{nullptr, mpi::MutView{}, 0, i};
      matcher.post(std::move(recv));
    }
    for (int i = msgs - 1; i >= 0; --i) {
      mpi::Envelope env;
      env.src = 0;
      env.tag = i;
      benchmark::DoNotOptimize(matcher.arrive(std::move(env)));
    }
  }
  state.SetItemsProcessed(state.iterations() * msgs);
}
BENCHMARK(BM_MatcherThroughput)->Arg(64)->Arg(512);

void BM_TopoTreeBuild(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  topo::Machine machine(topo::cori((ranks + 31) / 32), ranks);
  const mpi::Comm world = mpi::Comm::world(ranks);
  for (auto _ : state) {
    benchmark::DoNotOptimize(coll::build_topo_tree(machine, world, 0));
  }
}
BENCHMARK(BM_TopoTreeBuild)->Arg(128)->Arg(1024);

void BM_SimulatedBcast(benchmark::State& state) {
  // End-to-end simulator rate: one ADAPT broadcast per iteration.
  const int ranks = static_cast<int>(state.range(0));
  topo::Machine machine(topo::cori((ranks + 31) / 32), ranks);
  const mpi::Comm world = mpi::Comm::world(ranks);
  const coll::Tree tree = coll::build_topo_tree(machine, world, 0);
  for (auto _ : state) {
    runtime::SimEngine engine(machine);
    auto program = [&](runtime::Context& ctx) -> sim::Task<> {
      co_await coll::bcast(ctx, world, mpi::MutView{nullptr, mib(1)}, 0, tree,
                           coll::Style::kAdapt,
                           coll::CollOpts{.segment_size = kib(128)});
    };
    engine.run(program);
    benchmark::DoNotOptimize(engine.simulator().events_processed());
  }
}
BENCHMARK(BM_SimulatedBcast)->Arg(64)->Arg(512)->Unit(benchmark::kMillisecond);

// Zero-overhead guard for the fault-injection layer: the same end-to-end
// broadcast with fault injection DISABLED (the default-constructed plan) and
// with a lossless-but-enabled injector. Compare against BM_SimulatedBcast —
// the disabled variant must be indistinguishable from it (the hot path is
// one null-pointer branch in Fabric::transfer_tagged), while the enabled
// variant bounds the price of turning chaos on.
void BM_SimulatedBcastFaultsDisabled(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  topo::Machine machine(topo::cori((ranks + 31) / 32), ranks);
  const mpi::Comm world = mpi::Comm::world(ranks);
  const coll::Tree tree = coll::build_topo_tree(machine, world, 0);
  for (auto _ : state) {
    runtime::SimEngineOptions options;  // options.faults stays disabled
    runtime::SimEngine engine(machine, options);
    auto program = [&](runtime::Context& ctx) -> sim::Task<> {
      co_await coll::bcast(ctx, world, mpi::MutView{nullptr, mib(1)}, 0, tree,
                           coll::Style::kAdapt,
                           coll::CollOpts{.segment_size = kib(128)});
    };
    engine.run(program);
    benchmark::DoNotOptimize(engine.simulator().events_processed());
  }
}
BENCHMARK(BM_SimulatedBcastFaultsDisabled)
    ->Arg(64)
    ->Arg(512)
    ->Unit(benchmark::kMillisecond);

void BM_SimulatedBcastFaultsLossless(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  topo::Machine machine(topo::cori((ranks + 31) / 32), ranks);
  const mpi::Comm world = mpi::Comm::world(ranks);
  const coll::Tree tree = coll::build_topo_tree(machine, world, 0);
  for (auto _ : state) {
    runtime::SimEngineOptions options;
    // Enabled injector (an outage in the far future) that never actually
    // drops anything: measures the per-transmission decision cost alone.
    options.faults.outages.push_back(
        {0, 1, -1, seconds(1e6), seconds(1e6) + 1});
    runtime::SimEngine engine(machine, options);
    auto program = [&](runtime::Context& ctx) -> sim::Task<> {
      co_await coll::bcast(ctx, world, mpi::MutView{nullptr, mib(1)}, 0, tree,
                           coll::Style::kAdapt,
                           coll::CollOpts{.segment_size = kib(128)});
    };
    engine.run(program);
    benchmark::DoNotOptimize(engine.simulator().events_processed());
  }
}
BENCHMARK(BM_SimulatedBcastFaultsLossless)
    ->Arg(64)
    ->Arg(512)
    ->Unit(benchmark::kMillisecond);

// Zero-overhead guard for the observability layer, mirroring the fault
// guards above: with a DISABLED recorder attached the engine installs no
// hooks at all, so the run must be indistinguishable from BM_SimulatedBcast
// (each hot path pays exactly one null-pointer test). The enabled variant
// bounds the full price of tracing everything.
void BM_SimulatedBcastTraceDisabled(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  topo::Machine machine(topo::cori((ranks + 31) / 32), ranks);
  const mpi::Comm world = mpi::Comm::world(ranks);
  const coll::Tree tree = coll::build_topo_tree(machine, world, 0);
  for (auto _ : state) {
    runtime::SimEngineOptions options;
    options.recorder = std::make_shared<obs::Recorder>(/*enabled=*/false);
    runtime::SimEngine engine(machine, options);
    auto program = [&](runtime::Context& ctx) -> sim::Task<> {
      co_await coll::bcast(ctx, world, mpi::MutView{nullptr, mib(1)}, 0, tree,
                           coll::Style::kAdapt,
                           coll::CollOpts{.segment_size = kib(128)});
    };
    engine.run(program);
    benchmark::DoNotOptimize(engine.simulator().events_processed());
  }
}
BENCHMARK(BM_SimulatedBcastTraceDisabled)
    ->Arg(64)
    ->Arg(512)
    ->Unit(benchmark::kMillisecond);

void BM_SimulatedBcastTraceEnabled(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  topo::Machine machine(topo::cori((ranks + 31) / 32), ranks);
  const mpi::Comm world = mpi::Comm::world(ranks);
  const coll::Tree tree = coll::build_topo_tree(machine, world, 0);
  for (auto _ : state) {
    runtime::SimEngineOptions options;
    options.recorder = std::make_shared<obs::Recorder>();
    runtime::SimEngine engine(machine, options);
    auto program = [&](runtime::Context& ctx) -> sim::Task<> {
      co_await coll::bcast(ctx, world, mpi::MutView{nullptr, mib(1)}, 0, tree,
                           coll::Style::kAdapt,
                           coll::CollOpts{.segment_size = kib(128)});
    };
    engine.run(program);
    benchmark::DoNotOptimize(options.recorder->event_count());
  }
}
BENCHMARK(BM_SimulatedBcastTraceEnabled)
    ->Arg(64)
    ->Arg(512)
    ->Unit(benchmark::kMillisecond);

// Always-on flight recorder: bounded windows + event-class sampling keep the
// recorder resident for the whole run at a fraction of full tracing's price.
// check_perf.py holds this within the same intra-run ratio bound as the
// disabled/enabled trace pair, so "leave the flight recorder on" stays a
// guaranteed-cheap default.
void BM_SimulatedBcastFlightRecorder(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  topo::Machine machine(topo::cori((ranks + 31) / 32), ranks);
  const mpi::Comm world = mpi::Comm::world(ranks);
  const coll::Tree tree = coll::build_topo_tree(machine, world, 0);
  for (auto _ : state) {
    runtime::SimEngineOptions options;
    options.recorder = std::make_shared<obs::FlightRecorder>();
    runtime::SimEngine engine(machine, options);
    auto program = [&](runtime::Context& ctx) -> sim::Task<> {
      co_await coll::bcast(ctx, world, mpi::MutView{nullptr, mib(1)}, 0, tree,
                           coll::Style::kAdapt,
                           coll::CollOpts{.segment_size = kib(128)});
    };
    engine.run(program);
    benchmark::DoNotOptimize(options.recorder->event_count());
  }
}
BENCHMARK(BM_SimulatedBcastFlightRecorder)
    ->Arg(64)
    ->Arg(512)
    ->Unit(benchmark::kMillisecond);

// Zero-overhead guard for the recovery layer (PR 7), mirroring the fault and
// trace guards above: with SimEngineOptions::recovery unset the engine
// creates no RecoveryService, wires no give-up hooks, and the frame dispatch
// never sees a recovery kind — the run must be indistinguishable from
// BM_SimulatedBcast. The enabled variant (reliability + recovery, fault-free
// fabric) bounds the full price of arming self-healing without any failure.
void BM_SimulatedBcastRecoveryDisabled(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  topo::Machine machine(topo::cori((ranks + 31) / 32), ranks);
  const mpi::Comm world = mpi::Comm::world(ranks);
  const coll::Tree tree = coll::build_topo_tree(machine, world, 0);
  for (auto _ : state) {
    runtime::SimEngineOptions options;  // options.recovery stays unset
    runtime::SimEngine engine(machine, options);
    auto program = [&](runtime::Context& ctx) -> sim::Task<> {
      co_await coll::bcast(ctx, world, mpi::MutView{nullptr, mib(1)}, 0, tree,
                           coll::Style::kAdapt,
                           coll::CollOpts{.segment_size = kib(128)});
    };
    engine.run(program);
    benchmark::DoNotOptimize(engine.simulator().events_processed());
  }
}
BENCHMARK(BM_SimulatedBcastRecoveryDisabled)
    ->Arg(64)
    ->Arg(512)
    ->Unit(benchmark::kMillisecond);

void BM_SimulatedBcastRecoveryEnabled(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  topo::Machine machine(topo::cori((ranks + 31) / 32), ranks);
  const mpi::Comm world = mpi::Comm::world(ranks);
  const coll::Tree tree = coll::build_topo_tree(machine, world, 0);
  for (auto _ : state) {
    runtime::SimEngineOptions options;
    options.reliability = mpi::ReliabilityConfig{};  // lossless fabric
    options.recovery = runtime::RecoveryOptions{};
    runtime::SimEngine engine(machine, options);
    auto program = [&](runtime::Context& ctx) -> sim::Task<> {
      co_await coll::bcast(ctx, world, mpi::MutView{nullptr, mib(1)}, 0, tree,
                           coll::Style::kAdapt,
                           coll::CollOpts{.segment_size = kib(128)});
    };
    engine.run(program);
    benchmark::DoNotOptimize(engine.simulator().events_processed());
  }
}
// Recovery tracks membership in 64-bit masks, so the enabled variant tops
// out at 64 ranks (the disabled variant has no such cap — nothing is armed).
BENCHMARK(BM_SimulatedBcastRecoveryEnabled)
    ->Arg(16)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
