// Trace query/diff engine tests: the loader round-trips critical-path
// attribution exactly, summarize/query/diff behave deterministically, an
// injected +20% link-beta regression is attributed to the beta term, and
// parallel sweeps export byte-identical traces at any --jobs value.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/coll/coll.hpp"
#include "src/coll/topo_tree.hpp"
#include "src/obs/critical_path.hpp"
#include "src/obs/export.hpp"
#include "src/obs/query.hpp"
#include "src/obs/trace.hpp"
#include "src/runtime/sim_engine.hpp"
#include "src/support/parallel.hpp"
#include "src/topo/presets.hpp"

namespace {

using namespace adapt;

/// One traced ADAPT broadcast; the fig10 point shape (Cori, topo-chain
/// pipeline) scaled down to a node so the test stays fast.
std::shared_ptr<obs::Recorder> run_traced(const topo::MachineSpec& spec,
                                          int ranks, Bytes msg, Bytes segment,
                                          int noise_duty, int perturb_seed) {
  topo::Machine machine(spec, ranks);
  const mpi::Comm world = mpi::Comm::world(ranks);
  const coll::Tree tree = coll::build_topo_tree(machine, world, 0);
  runtime::SimEngineOptions options;
  if (noise_duty > 0) options.noise = noise::paper_noise(noise_duty, 0x5EED);
  if (perturb_seed >= 0) {
    options.perturb =
        sim::PerturbConfig{static_cast<std::uint64_t>(perturb_seed),
                           /*shuffle_ties=*/true, microseconds(2)};
  }
  options.recorder = std::make_shared<obs::Recorder>();
  runtime::SimEngine engine(machine, options);
  auto program = [&](runtime::Context& ctx) -> sim::Task<> {
    co_await coll::bcast(ctx, world, mpi::MutView{nullptr, msg}, 0, tree,
                         coll::Style::kAdapt,
                         coll::CollOpts{.segment_size = segment});
  };
  engine.run(program);
  return options.recorder;
}

std::string export_json(const obs::Recorder& rec) {
  std::ostringstream os;
  obs::write_trace_json(rec, os);
  return os.str();
}

/// Cori with every fabric lane's beta (inverse bandwidth) inflated by
/// `scale` — the injected regression the diff must attribute to beta.
topo::MachineSpec beta_scaled_cori(double scale) {
  topo::MachineSpec spec = topo::cori(1);
  spec.intra_socket.beta_ns_per_byte *= scale;
  spec.inter_socket.beta_ns_per_byte *= scale;
  spec.inter_node.beta_ns_per_byte *= scale;
  return spec;
}

/// The slowest collective span: (rank, end) seed for the critical-path walk.
std::pair<Rank, TimeNs> slowest_coll(const obs::Recorder& rec) {
  Rank slowest = 0;
  TimeNs latest = 0;
  for (const auto& s : rec.spans()) {
    if (s.cat == obs::Cat::kColl && s.t1 > latest) {
      latest = s.t1;
      slowest = s.pid - 1;
    }
  }
  return {slowest, latest};
}

// The loader is the exact inverse of the exporter: attribution of the
// loaded trace equals attribution of the live recorder, nanosecond for
// nanosecond, on a noisy contended schedule.
TEST(TraceQuery, LoadedTraceRoundTripsCriticalPathExactly) {
  const auto rec = run_traced(topo::cori(1), 32, mib(1), kib(128),
                              /*noise_duty=*/10, /*perturb_seed=*/7);
  const obs::LoadedTrace loaded = obs::load_trace_json(export_json(*rec));
  EXPECT_EQ(loaded.nranks, 32);

  const auto [slowest, end] = slowest_coll(*rec);
  ASSERT_GT(end, 0);
  const obs::Attribution live = obs::critical_path(*rec, slowest, end);
  const obs::Attribution replayed =
      obs::critical_path(loaded.recorder, slowest, end);
  EXPECT_EQ(live.alpha, replayed.alpha);
  EXPECT_EQ(live.beta, replayed.beta);
  EXPECT_EQ(live.compute, replayed.compute);
  EXPECT_EQ(live.contention, replayed.contention);
  EXPECT_EQ(live.noise, replayed.noise);
  EXPECT_EQ(live.other, replayed.other);
  EXPECT_EQ(live.hops, replayed.hops);
  EXPECT_EQ(live.end, replayed.end);
  EXPECT_EQ(replayed.total(), replayed.end);
}

TEST(TraceQuery, SummarizeRollsUpCollectivesLinksAndInstants) {
  const auto rec = run_traced(topo::cori(1), 32, mib(1), kib(128), 10, 7);
  const obs::LoadedTrace loaded = obs::load_trace_json(export_json(*rec));
  const obs::Summary s = obs::summarize(loaded);

  EXPECT_EQ(s.nranks, 32);
  EXPECT_GT(s.end_time, 0);
  ASSERT_EQ(s.collectives.size(), 1u);
  const obs::CollStats& c = s.collectives[0];
  EXPECT_EQ(c.name, "bcast/adapt");
  EXPECT_EQ(c.count, 32);  // one span per rank
  EXPECT_LE(c.p50, c.p90);
  EXPECT_LE(c.p90, c.p99);
  EXPECT_LE(c.p99, c.max);
  EXPECT_EQ(c.end, s.end_time);
  EXPECT_EQ(c.attr.total(), c.attr.end);  // attribution invariant survives
  EXPECT_FALSE(s.links.empty());
  for (const auto& l : s.links) {
    EXPECT_GE(l.busy, 0);
    EXPECT_LE(l.busy, s.end_time);
  }
  EXPECT_FALSE(s.instant_counts.empty());  // task seg events at minimum

  // print_summary is deterministic text.
  std::ostringstream p1, p2;
  obs::print_summary(s, p1);
  obs::print_summary(s, p2);
  EXPECT_EQ(p1.str(), p2.str());
  EXPECT_NE(p1.str().find("bcast/adapt"), std::string::npos);
}

TEST(TraceQuery, QueryFiltersByRankCategoryNameAndWindow) {
  const auto rec = run_traced(topo::cori(1), 32, mib(1), kib(128), 10, 7);
  const obs::LoadedTrace loaded = obs::load_trace_json(export_json(*rec));

  obs::EventFilter by_rank;
  by_rank.rank = 5;
  const auto rank_hits = obs::query_events(loaded, by_rank);
  ASSERT_FALSE(rank_hits.empty());
  for (const auto& h : rank_hits) EXPECT_EQ(h.rec.pid, obs::rank_pid(5));

  obs::EventFilter by_coll;
  by_coll.cat = obs::Cat::kColl;
  const auto coll_hits = obs::query_events(loaded, by_coll);
  EXPECT_EQ(coll_hits.size(), 32u);
  for (const auto& h : coll_hits) {
    EXPECT_TRUE(h.is_span);
    EXPECT_EQ(h.rec.cat, obs::Cat::kColl);
  }

  obs::EventFilter by_name;
  by_name.name = "seg_";
  const auto name_hits = obs::query_events(loaded, by_name);
  ASSERT_FALSE(name_hits.empty());
  for (const auto& h : name_hits) {
    EXPECT_NE(h.rec.name.find("seg_"), std::string::npos);
  }

  // Window: spans overlapping [end/2, end]; results ordered by start time
  // and capped by limit.
  const auto [slowest, end] = slowest_coll(*rec);
  obs::EventFilter window;
  window.from = end / 2;
  window.to = end;
  const auto window_hits = obs::query_events(loaded, window, /*limit=*/50);
  ASSERT_FALSE(window_hits.empty());
  EXPECT_LE(window_hits.size(), 50u);
  for (std::size_t i = 1; i < window_hits.size(); ++i) {
    EXPECT_LE(window_hits[i - 1].rec.t0, window_hits[i].rec.t0);
  }
  for (const auto& h : window_hits) {
    EXPECT_LE(h.rec.t0, end);
    EXPECT_GE(h.rec.t1, end / 2);
  }
}

// diff(x, x) must be a perfect null report: identical rollups, no
// unmatched spans, zero duration deltas.
TEST(TraceQuery, DiffOfIdenticalRunsIsZero) {
  const std::string doc = export_json(
      *run_traced(topo::cori(1), 32, mib(1), kib(128), 10, 7));
  const obs::LoadedTrace a = obs::load_trace_json(doc);
  const obs::LoadedTrace b = obs::load_trace_json(doc);
  const obs::DiffReport d = obs::diff_traces(a, b);
  EXPECT_EQ(d.end_a, d.end_b);
  EXPECT_EQ(d.rollup_a.end, d.rollup_b.end);
  EXPECT_EQ(d.rollup_a.beta, d.rollup_b.beta);
  EXPECT_EQ(d.only_a, 0);
  EXPECT_EQ(d.only_b, 0);
  EXPECT_GT(d.matched_spans, 0);
  for (const auto& s : d.top_spans) EXPECT_EQ(s.dur_a, s.dur_b);
}

// The acceptance pin: two same-seed fig10-style runs, one with every link's
// beta inflated 20%. The diff must attribute at least 90% of the end-to-end
// completion delta to the beta term — that is the whole point of the
// attribution rollup.
TEST(TraceQuery, DiffAttributesInjectedBetaRegressionToBeta) {
  const Bytes msg = mib(4);
  const obs::LoadedTrace base = obs::load_trace_json(export_json(
      *run_traced(beta_scaled_cori(1.0), 32, msg, mib(1), 0, -1)));
  const obs::LoadedTrace slow = obs::load_trace_json(export_json(
      *run_traced(beta_scaled_cori(1.2), 32, msg, mib(1), 0, -1)));

  const obs::DiffReport d = obs::diff_traces(base, slow);
  const TimeNs delta = d.rollup_b.end - d.rollup_a.end;
  ASSERT_GT(delta, 0);  // +20% beta must slow a 4 MiB bcast down
  const double beta_share =
      static_cast<double>(d.rollup_b.beta - d.rollup_a.beta) /
      static_cast<double>(delta);
  EXPECT_GE(beta_share, 0.9)
      << "beta delta " << (d.rollup_b.beta - d.rollup_a.beta) << " of "
      << delta << " total; alpha delta "
      << (d.rollup_b.alpha - d.rollup_a.alpha) << ", contention delta "
      << (d.rollup_b.contention - d.rollup_a.contention);

  // And the regressed spans the report surfaces really regressed.
  ASSERT_FALSE(d.top_spans.empty());
  EXPECT_GT(d.top_spans[0].dur_b, d.top_spans[0].dur_a);

  std::ostringstream out;
  obs::print_diff(d, out);
  EXPECT_NE(out.str().find("beta"), std::string::npos);
}

// --jobs determinism: the same seeded points swept with 1 worker and with 4
// produce byte-identical per-point exports. Recorders are per-engine and
// virtual-time only, so host-thread interleaving must never leak in.
TEST(TraceQuery, ParallelSweepExportsAreByteIdenticalAcrossJobs) {
  constexpr int kPoints = 4;
  const auto sweep = [&](int jobs) {
    std::vector<std::string> out(kPoints);
    support::parallel_for(jobs, kPoints, [&](int i) {
      out[static_cast<std::size_t>(i)] = export_json(
          *run_traced(topo::cori(1), 16, kib(512), kib(64),
                      /*noise_duty=*/10, /*perturb_seed=*/i));
    });
    return out;
  };
  const auto serial = sweep(1);
  const auto parallel = sweep(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (int i = 0; i < kPoints; ++i) {
    EXPECT_EQ(serial[static_cast<std::size_t>(i)],
              parallel[static_cast<std::size_t>(i)])
        << "point " << i;
  }
  // Distinct seeds genuinely differ (the equality above is not vacuous).
  EXPECT_NE(serial[0], serial[1]);
}

}  // namespace
