#include "src/support/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "src/support/error.hpp"
#include "src/support/json.hpp"

namespace adapt {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  ADAPT_CHECK(!header_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  ADAPT_CHECK(cells.size() == header_.size())
      << "row has " << cells.size() << " cells, header has " << header_.size();
  rows_.push_back(std::move(cells));
}

void Table::add_row_numeric(const std::string& label,
                            const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  char buf[64];
  for (double v : values) {
    std::snprintf(buf, sizeof buf, "%.*f", precision, v);
    cells.emplace_back(buf);
  }
  add_row(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << row[c];
      for (std::size_t pad = row[c].size(); pad < width[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  emit(header_);
  std::string rule;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c) rule += "  ";
    rule.append(width[c], '-');
  }
  os << rule << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

void Table::print_json(std::ostream& os) const {
  auto emit_list = [&](const std::vector<std::string>& cells) {
    os << '[';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << json_quote(cells[c]);
    }
    os << ']';
  };
  os << "{\"header\":";
  emit_list(header_);
  os << ",\"rows\":[";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (r) os << ',';
    emit_list(rows_[r]);
  }
  os << "]}";
}

}  // namespace adapt
