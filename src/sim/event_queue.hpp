// Pending-event priority queue for the discrete-event kernel.
//
// Ordering is (time, insertion sequence): events at equal times fire in the
// order they were scheduled, which makes whole-simulation traces reproducible
// bit-for-bit — a property the determinism tests pin down.
//
// Schedule perturbation (verification mode): a seeded PerturbConfig replaces
// the same-time tie-break with a random draw and may add bounded delivery
// jitter to every event's firing time. Causality is preserved — an event
// never fires before its scheduled time, so anything scheduled from inside a
// callback still runs after it — but the interleaving of *concurrently
// pending* events becomes one of the many legal schedules instead of always
// the same one. Two queues with the same seed replay the same schedule.
//
// Storage is allocation-free in steady state: event records live in a
// chunked slab (fixed 512-record chunks recycled through a LIFO free list,
// so records never relocate and recently-freed slots are cache-hot), and
// callbacks are small-buffer-optimised EventFns stored inside the record.
//
// The queue itself is a two-level monotone radix structure rather than a
// comparison heap. Simulated time only moves forward — Simulator::at checks
// t >= now — so the queue may assume every push is at or after the last
// popped time (checked). That admits the classic radix-heap layout: an entry
// whose time differs from the current time at highest bit b sits in bucket
// b, appended in O(1) with no comparisons; when the current-time cohort
// drains, the lowest non-empty bucket is scanned once for its minimum and
// redistributed into strictly lower buckets (amortised O(word bits) per
// event, sequential memory traffic). Only the cohort of events at exactly
// the current time lives in a comparison heap, ordered by (tie, seq) — which
// is where same-time FIFO stability and perturbed tie-shuffling are decided.
// The pop sequence is the unique ascending (time, tie, seq) order either
// way, so swapping the comparison heap for the radix layout cannot change a
// schedule, and the perturbation RNG draw order is exactly that of the
// original shared_ptr<State> queue: same-seed traces stay byte-identical.
//
// Lifetime contract: an EventHandle may not outlive its EventQueue (handles
// hold an unowned pointer to the queue's slab; cancel() on a handle whose
// queue is gone is undefined). Every holder in the tree satisfies this by
// construction — e.g. SimEngine declares the Simulator before the Fabric
// whose flows hold completion handles.
//
// Cancellation is lazy — a cancelled entry stays buried until it surfaces in
// the current-time cohort — but bounded: a live count tracks cancelled
// entries, and when they outnumber the live ones every level is compacted in
// O(n), so mass cancellation (e.g. fabric rebalances rescheduling every
// completion) can no longer grow the queue without bound.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "src/obs/trace.hpp"
#include "src/support/inline_fn.hpp"
#include "src/support/rng.hpp"
#include "src/support/units.hpp"

namespace adapt::sim {

/// The kernel's callable: inline storage covers the runtime's scheduling
/// lambdas (capturing this + an envelope + a completion), heap fallback for
/// anything bigger. 112 bytes of storage makes the pooled event record an
/// exact 128-byte pair of cache lines.
using EventFn = InlineFunction<void(), 112>;

/// Seeded schedule perturbation for conformance testing (off by default).
struct PerturbConfig {
  std::uint64_t seed = 1;
  /// Replace FIFO ordering of same-time events with a seeded random order.
  bool shuffle_ties = true;
  /// Uniform random delay in [0, max_jitter] added to every event's firing
  /// time, so events scheduled within `max_jitter` of each other may fire in
  /// either order. 0 = tie-shuffling only.
  TimeNs max_jitter = 0;
};

namespace detail {

/// One pooled event record. `gen` stamps the slot's current incarnation;
/// handles carry the stamp they were issued with. Field order puts the
/// metadata and the callable's dispatch pointer (plus the first 48 capture
/// bytes) on the record's first cache line.
struct EventRecord {
  std::uint32_t gen = 0;
  bool cancelled = false;
  EventFn fn;
};
static_assert(sizeof(EventRecord) == 128);

/// Record storage in fixed chunks: slot addresses stay stable for the
/// queue's lifetime (no vector-growth relocation of live callables).
struct EventSlab {
  static constexpr std::uint32_t kChunkShift = 9;  // 512 records per chunk
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;

  std::vector<std::unique_ptr<EventRecord[]>> chunks;
  std::vector<std::uint32_t> free_slots;
  std::uint32_t next_slot = 0;
  std::uint64_t cancelled_in_heap = 0;

  EventRecord& record(std::uint32_t slot) {
    return chunks[slot >> kChunkShift][slot & (kChunkSize - 1)];
  }

  void cancel(std::uint32_t slot, std::uint32_t gen) {
    if (slot >= next_slot) return;
    EventRecord& rec = record(slot);
    if (rec.gen != gen || rec.cancelled) return;
    rec.cancelled = true;
    rec.fn.reset();  // release captures eagerly; the entry is dead weight
    ++cancelled_in_heap;
  }
};

}  // namespace detail

/// Cancellable handle to a scheduled event. Generation-stamped: cancelling
/// after the event fired (or after its slot was recycled) is a no-op. Must
/// not outlive the queue that issued it (see the header comment).
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevents the event's callback from running. Idempotent; safe after fire.
  void cancel() {
    if (slab_) slab_->cancel(slot_, gen_);
  }
  bool valid() const { return slab_ != nullptr; }

 private:
  friend class EventQueue;
  EventHandle(detail::EventSlab* slab, std::uint32_t slot, std::uint32_t gen)
      : slab_(slab), slot_(slot), gen_(gen) {}

  detail::EventSlab* slab_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

/// Monotone priority queue of timed callbacks with stable same-time
/// ordering. Pushes must not be earlier than the last popped event's time
/// (the discrete-event invariant; Simulator::at enforces it upstream).
class EventQueue {
 public:
  /// `expected_cohort` sizes the up-front reservation of the cohort heap and
  /// radix levels (entries, not bytes). The default matches the historical
  /// constant; sharded engines pass their shard-local steady-state bound so
  /// per-shard queues never reallocate mid-run (see the ctor comment).
  explicit EventQueue(std::size_t expected_cohort = kDefaultReserve);
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  EventHandle push(TimeNs time, EventFn fn);

  /// Push with a caller-supplied tie key instead of the insertion sequence.
  /// The sharded engine derives the key from (producer rank, per-producer
  /// sequence), which is invariant to how ranks are partitioned across
  /// shards — the foundation of byte-identical traces for any --shards
  /// value. Keys must be unique per (time, tie) or ordering falls back to
  /// the shard-local insertion sequence (which IS shard-dependent), so the
  /// caller owns uniqueness. Incompatible with perturbation (checked).
  EventHandle push_keyed(TimeNs time, std::uint64_t tie, EventFn fn);

  /// Enables (or, with nullopt, disables) schedule perturbation for all
  /// subsequently pushed events. Typically set before any push.
  void set_perturbation(std::optional<PerturbConfig> config);
  bool perturbed() const { return perturb_.has_value(); }

  /// True when no live (non-cancelled) events remain.
  bool empty() const { return count_ == slab_->cancelled_in_heap; }

  /// Count of live (non-cancelled) events.
  std::size_t size() const {
    return count_ - static_cast<std::size_t>(slab_->cancelled_in_heap);
  }

  /// Raw entry count including cancelled entries awaiting collection.
  std::size_t depth() const { return count_; }

  /// Time of the earliest live event; precondition: !empty().
  /// ADVANCES the monotone cursor: after this call, pushes below the
  /// returned time are rejected (the radix refill commits `last_` to the
  /// minimum it found). Use peek_min_time() to query without committing.
  TimeNs next_time() const;

  /// Time of the earliest live event WITHOUT advancing the monotone cursor:
  /// later pushes at or after the current cursor remain legal even below the
  /// returned time. The sharded engine's window barrier peeks every shard's
  /// queue between rounds; a cursor committed to a far-future local event
  /// would reject legitimate cross-shard messages that land nearer. Exact
  /// (not a bound): with the cohort empty, the lowest non-empty radix bucket
  /// contains the queue minimum. Sweeps cancelled entries it scans over so a
  /// dead entry cannot pin a stale minimum. Precondition: !empty().
  TimeNs peek_min_time() const;

  /// Pops the earliest live event and returns (time, callback).
  /// Precondition: !empty().
  std::pair<TimeNs, EventFn> pop();

  std::uint64_t total_scheduled() const { return seq_; }

  /// Installs (or clears, with nullptr) observability counters: scheduled
  /// events and peak queue depth. One branch per push when installed; nothing
  /// on the path otherwise — the zero-overhead contract.
  void set_stats(obs::QueueStats* stats) { stats_ = stats; }

  /// Historical per-level reservation (PR 6): 64 entries per radix level.
  static constexpr std::size_t kDefaultReserve = 64;
  /// Reservation ceiling per radix level: a single level briefly holding the
  /// whole in-flight set is possible but rare, and reserving expected_cohort
  /// on all 64 levels would cost 64x the steady-state need. Levels get
  /// min(expected_cohort, kLevelReserveCap); the cohort heap (which genuinely
  /// can hold every same-time event of a shard) gets the full expectation.
  static constexpr std::size_t kLevelReserveCap = 4096;

 private:
  /// 32-byte POD entry; the callback lives in the slab record.
  struct Entry {
    TimeNs time;
    std::uint64_t tie;  ///< seq normally; a seeded random draw when perturbed
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };
  /// Strict total order (seq is unique): a fires before b.
  static bool earlier(const Entry& a, const Entry& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.tie != b.tie) return a.tie < b.tie;
    return a.seq < b.seq;
  }

  /// Shared tail of push/push_keyed: slot acquisition, radix placement,
  /// stats, bounded compaction.
  EventHandle emplace(TimeNs fire_time, std::uint64_t tie, EventFn fn);

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot) const;
  /// Highest set bit of a non-zero time difference: the bucket level.
  static int level_of(std::uint64_t diff);
  /// Refills the cohort heap from the lowest non-empty bucket, advancing
  /// `last_` to the queue's minimum remaining time. Pre: cohort empty,
  /// count_ > 0.
  void refill() const;
  /// Drops cancelled entries off the cohort top (refilling as needed) until
  /// a live entry surfaces. Pre: !empty().
  void settle() const;
  /// Removes every cancelled entry from every level in one O(n) pass.
  void compact();

  // Binary-heap primitives over the current-time cohort; pop_top uses
  // bottom-up replacement.
  void sift_up(std::size_t i) const;
  void sift_down(std::size_t i) const;
  void pop_top() const;  ///< removes cohort_[0]

  std::unique_ptr<detail::EventSlab> slab_;
  /// Events at exactly time `last_`, heap-ordered by (tie, seq).
  mutable std::vector<Entry> cohort_;
  /// Future events, bucketed by the highest bit of (time XOR last_).
  mutable std::array<std::vector<Entry>, 64> buckets_;
  mutable std::uint64_t bucket_mask_ = 0;  ///< bit b set ⇔ buckets_[b] non-empty
  mutable TimeNs last_ = 0;                ///< current cohort time
  mutable std::size_t count_ = 0;          ///< entries across all levels
  obs::QueueStats* stats_ = nullptr;
  std::uint64_t seq_ = 0;
  std::optional<PerturbConfig> perturb_;
  Rng perturb_rng_{0};
};

}  // namespace adapt::sim
