#include <gtest/gtest.h>

#include "src/gpu/device.hpp"
#include "src/gpu/gpu_coll.hpp"
#include "src/runtime/sim_engine.hpp"
#include "src/support/rng.hpp"
#include "src/topo/presets.hpp"

namespace adapt::gpu {
namespace {

using runtime::Context;
using runtime::SimEngine;

topo::Machine gpu_machine(int nodes) {
  return topo::Machine(topo::psg(nodes), nodes * 4,
                       topo::PlacementPolicy::kByGpu);
}

TEST(GpuRuntime, DevicesOnlyOnGpuRanks) {
  topo::Machine m = gpu_machine(1);
  SimEngine engine(m);
  for (Rank r = 0; r < m.nranks(); ++r) {
    EXPECT_NE(engine.context(r).gpu(), nullptr) << "rank " << r;
  }
  topo::Machine cpu_machine(topo::cori(1), 4);
  SimEngine cpu_engine(cpu_machine);
  EXPECT_EQ(cpu_engine.context(0).gpu(), nullptr);
}

TEST(Stream, KernelsSerialiseOnDeviceEngine) {
  topo::Machine m = gpu_machine(1);
  SimEngine engine(m);
  std::vector<TimeNs> done;
  auto program = [&](Context& ctx) -> sim::Task<> {
    if (ctx.rank() != 0) co_return;
    Device* dev = ctx.gpu();
    auto trigger = std::make_shared<sim::Trigger>();
    auto remaining = std::make_shared<int>(2);
    auto on_done = [&, trigger, remaining] {
      done.push_back(ctx.now());
      if (--*remaining == 0) trigger->fire();
    };
    // Two kernels on different streams still share the device engine.
    dev->stream(0).launch(microseconds(100), on_done);
    dev->stream(1).launch(microseconds(100), on_done);
    co_await *trigger;
  };
  engine.run(program);
  ASSERT_EQ(done.size(), 2u);
  EXPECT_GE(done[1] - done[0], microseconds(100));
}

TEST(Stream, OpsWithinOneStreamAreOrdered) {
  topo::Machine m = gpu_machine(1);
  SimEngine engine(m);
  std::vector<int> order;
  auto program = [&](Context& ctx) -> sim::Task<> {
    if (ctx.rank() != 0) co_return;
    Stream& s = ctx.gpu()->stream(0);
    s.memcpy_async(MemSpace::kDevice, MemSpace::kHost, kib(256),
                   [&] { order.push_back(1); });
    s.launch(microseconds(10), [&] { order.push_back(2); });
    s.memcpy_async(MemSpace::kHost, MemSpace::kDevice, kib(256),
                   [&] { order.push_back(3); });
    co_await s.synchronize();
    order.push_back(4);
  };
  engine.run(program);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(Stream, SynchronizeOnIdleStreamReturnsImmediately) {
  topo::Machine m = gpu_machine(1);
  SimEngine engine(m);
  auto program = [&](Context& ctx) -> sim::Task<> {
    if (ctx.rank() != 0) co_return;
    const TimeNs t0 = ctx.now();
    co_await ctx.gpu()->stream(2).synchronize();
    EXPECT_EQ(ctx.now(), t0);
  };
  engine.run(program);
}

TEST(Stream, MemcpyCrossesPcie) {
  topo::Machine m = gpu_machine(1);
  SimEngine engine(m);
  TimeNs elapsed = 0;
  const Bytes bytes = mib(8);
  auto program = [&](Context& ctx) -> sim::Task<> {
    if (ctx.rank() != 0) co_return;
    const TimeNs t0 = ctx.now();
    Stream& s = ctx.gpu()->stream(0);
    s.memcpy_async(MemSpace::kDevice, MemSpace::kHost, bytes);
    co_await s.synchronize();
    elapsed = ctx.now() - t0;
  };
  engine.run(program);
  // At least the PCIe wire time for 8 MB.
  EXPECT_GE(elapsed, m.spec().pcie.time(bytes));
}

TEST(Device, ReduceCostModel) {
  topo::Machine m = gpu_machine(1);
  SimEngine engine(m);
  Device* dev = engine.context(0).gpu();
  ASSERT_NE(dev, nullptr);
  EXPECT_EQ(dev->reduce_cost(0), m.spec().gpu_kernel_launch);
  EXPECT_GT(dev->reduce_cost(mib(1)), dev->reduce_cost(kib(1)));
}

// ----------------------------------------------------------- collectives ---

class GpuLibraryCorrectness : public testing::TestWithParam<std::string> {};

TEST_P(GpuLibraryCorrectness, BcastAndReduceRealData) {
  const std::string name = GetParam();
  topo::Machine m = gpu_machine(2);  // 8 GPUs over 2 nodes
  const int n = m.nranks();
  const mpi::Comm world = mpi::Comm::world(n);
  auto lib = make_gpu_library(name, m);

  {
    runtime::SimEngineOptions options;
    options.gpu = lib->gpu_config();
    SimEngine engine(m, options);
    const Bytes bytes = 4096;
    Rng rng(5);
    std::vector<std::vector<std::byte>> bufs(
        static_cast<std::size_t>(n),
        std::vector<std::byte>(static_cast<std::size_t>(bytes)));
    for (auto& b : bufs[0]) b = std::byte(rng.next_below(256));
    auto program = [&](Context& ctx) -> sim::Task<> {
      auto& mine = bufs[static_cast<std::size_t>(ctx.rank())];
      co_await lib->bcast(ctx, world, mpi::MutView{mine.data(), bytes}, 0);
    };
    engine.run(program);
    for (int r = 0; r < n; ++r) {
      ASSERT_EQ(bufs[static_cast<std::size_t>(r)], bufs[0])
          << name << " bcast rank " << r;
    }
  }
  {
    runtime::SimEngineOptions options;
    options.gpu = lib->gpu_config();
    SimEngine engine(m, options);
    std::vector<std::vector<float>> contrib(static_cast<std::size_t>(n));
    std::vector<float> expected(256, 0.f);
    for (int r = 0; r < n; ++r) {
      auto& v = contrib[static_cast<std::size_t>(r)];
      v.resize(256);
      for (std::size_t i = 0; i < 256; ++i) {
        v[i] = static_cast<float>(r + 1);
        expected[i] += v[i];
      }
    }
    auto program = [&](Context& ctx) -> sim::Task<> {
      auto& mine = contrib[static_cast<std::size_t>(ctx.rank())];
      co_await lib->reduce(
          ctx, world,
          mpi::MutView{reinterpret_cast<std::byte*>(mine.data()), 1024},
          mpi::ReduceOp::kSum, mpi::Datatype::kFloat, 0);
    };
    engine.run(program);
    EXPECT_EQ(contrib[0], expected) << name << " reduce";
  }
}

INSTANTIATE_TEST_SUITE_P(AllGpuPersonalities, GpuLibraryCorrectness,
                         testing::Values("mvapich-gpu", "ompi-default-gpu",
                                         "ompi-adapt-gpu"),
                         [](const auto& param_info) {
                           std::string s = param_info.param;
                           for (char& c : s)
                             if (c == '-') c = '_';
                           return s;
                         });

TEST(GpuColl, AdaptBeatsNaiveBaselines) {
  // The §4 optimisations must show: adapt-gpu faster than both baselines for
  // a large broadcast AND reduce on 2 nodes.
  topo::Machine m = gpu_machine(2);
  const mpi::Comm world = mpi::Comm::world(m.nranks());
  const Bytes msg = mib(16);
  std::map<std::string, double> bcast_ms, reduce_ms;
  for (const std::string& name : gpu_libraries()) {
    auto lib = make_gpu_library(name, m);
    for (int which = 0; which < 2; ++which) {
      runtime::SimEngineOptions options;
      options.gpu = lib->gpu_config();
      SimEngine engine(m, options);
      TimeNs worst = 0;
      auto program = [&](Context& ctx) -> sim::Task<> {
        const TimeNs t0 = ctx.now();
        mpi::MutView buffer{nullptr, msg};
        if (which == 0) {
          co_await lib->bcast(ctx, world, buffer, 0);
        } else {
          co_await lib->reduce(ctx, world, buffer, mpi::ReduceOp::kSum,
                               mpi::Datatype::kFloat, 0);
        }
        worst = std::max(worst, ctx.now() - t0);
      };
      engine.run(program);
      (which == 0 ? bcast_ms : reduce_ms)[name] = to_ms(worst);
    }
  }
  EXPECT_LT(bcast_ms["ompi-adapt-gpu"], bcast_ms["mvapich-gpu"]);
  EXPECT_LT(bcast_ms["ompi-adapt-gpu"], bcast_ms["ompi-default-gpu"]);
  // §4.2's offload is worth several x on reduce.
  EXPECT_LT(reduce_ms["ompi-adapt-gpu"] * 2, reduce_ms["mvapich-gpu"]);
  EXPECT_LT(reduce_ms["ompi-adapt-gpu"] * 2, reduce_ms["ompi-default-gpu"]);
}

TEST(GpuColl, RejectsCpuOnlyMachine) {
  topo::Machine m(topo::cori(1), 8);
  EXPECT_THROW(make_gpu_library("ompi-adapt-gpu", m), Error);
}

}  // namespace
}  // namespace adapt::gpu
