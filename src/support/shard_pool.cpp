#include "src/support/shard_pool.hpp"

#include "src/support/error.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace adapt::support {

namespace {

inline void cpu_pause() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#endif
}

int default_spin() {
  // On a single hardware thread, spinning only delays the scheduler from
  // running the thread we are waiting on.
  return std::thread::hardware_concurrency() > 1 ? (1 << 12) : 0;
}

}  // namespace

ShardPool::ShardPool(int workers) : workers_(workers), spin_(default_spin()) {
  ADAPT_CHECK(workers_ >= 1) << "ShardPool needs at least one worker";
  threads_.reserve(static_cast<std::size_t>(workers_ - 1));
  for (int i = 1; i < workers_; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ShardPool::~ShardPool() {
  {
    std::lock_guard<std::mutex> lock(start_mu_);
    stop_.store(true, std::memory_order_release);
  }
  start_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ShardPool::run_round(const std::function<void(int)>& fn) {
  if (workers_ == 1) {
    fn(0);
    return;
  }
  fn_ = &fn;
  remaining_.store(workers_ - 1, std::memory_order_relaxed);
  {
    // The bump happens under the mutex so a worker that checked the round
    // number and is about to sleep cannot miss the wakeup.
    std::lock_guard<std::mutex> lock(start_mu_);
    round_.fetch_add(1, std::memory_order_release);
  }
  start_cv_.notify_all();

  fn(0);

  for (int i = 0; i < spin_; ++i) {
    if (remaining_.load(std::memory_order_acquire) == 0) return;
    cpu_pause();
  }
  std::unique_lock<std::mutex> lock(done_mu_);
  done_cv_.wait(lock, [this] {
    return remaining_.load(std::memory_order_acquire) == 0;
  });
}

void ShardPool::wait_for_round(std::uint64_t expect) {
  for (int i = 0; i < spin_; ++i) {
    if (round_.load(std::memory_order_acquire) >= expect ||
        stop_.load(std::memory_order_acquire)) {
      return;
    }
    cpu_pause();
  }
  std::unique_lock<std::mutex> lock(start_mu_);
  start_cv_.wait(lock, [this, expect] {
    return round_.load(std::memory_order_acquire) >= expect ||
           stop_.load(std::memory_order_acquire);
  });
}

void ShardPool::worker_loop(int index) {
  std::uint64_t expect = 1;
  while (true) {
    wait_for_round(expect);
    if (stop_.load(std::memory_order_acquire)) return;
    ++expect;
    (*fn_)(index);
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Empty critical section pairs with the caller's predicate check under
      // done_mu_, so the notify cannot slot in between check and wait.
      { std::lock_guard<std::mutex> lock(done_mu_); }
      done_cv_.notify_one();
    }
  }
}

}  // namespace adapt::support
