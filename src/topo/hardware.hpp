// Hardware topology model — the hwloc/PMIx substitute (paper §3.2.1).
//
// A Machine describes a cluster as node × socket × core (optionally with GPUs
// hanging off each socket's PCIe switch), the Hockney parameters (α latency,
// β inverse bandwidth) of every communication lane, and where each MPI rank is
// placed. All topology-aware logic (tree building, path routing, level
// classification) reads from this one structure, exactly as ADAPT reads
// hwloc data inside Open MPI.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/support/units.hpp"

namespace adapt::topo {

/// Hockney model parameters of one lane: transfer time = alpha + beta * bytes.
struct LinkParams {
  TimeNs alpha = 0;           ///< per-message startup latency
  double beta_ns_per_byte = 0.0;  ///< inverse bandwidth

  /// Point-to-point time for `bytes` over this lane, uncontended.
  TimeNs time(Bytes bytes) const {
    return alpha + static_cast<TimeNs>(beta_ns_per_byte *
                                       static_cast<double>(bytes));
  }
  double bandwidth_gbs() const {
    return beta_ns_per_byte > 0 ? 1.0 / beta_ns_per_byte : 0.0;
  }
};

/// Static description of the cluster hardware.
struct MachineSpec {
  std::string name = "generic";

  int nodes = 1;
  int sockets_per_node = 2;
  int cores_per_socket = 16;
  int gpus_per_socket = 0;

  // Communication lanes between CPU ranks.
  LinkParams intra_socket;  ///< shared-memory within one socket
  LinkParams inter_socket;  ///< QPI / HyperTransport between sockets
  LinkParams inter_node;    ///< NIC + switch fabric between nodes

  // GPU lanes (only meaningful when gpus_per_socket > 0).
  LinkParams pcie;     ///< host<->GPU and GPU<->GPU (IPC) over one PCIe switch
  LinkParams nic_bus;  ///< NIC's own PCIe attachment (GPUDirect path)

  /// Aggregate intra-socket shared-memory capacity, as a multiple of the
  /// single-pair bandwidth: several core pairs can stream concurrently before
  /// the socket's memory system saturates.
  double shm_parallel = 4.0;

  /// First-class per-node shared-memory channel (the HAN transport). When
  /// enabled (beta > 0) every same-node pair — regardless of socket — talks
  /// over one node-local SHM link with these Hockney parameters instead of
  /// the intra/inter-socket wires, and the contention pass treats the node's
  /// memory bandwidth as its own resource (capacity = shm_node_parallel ×
  /// the single-pair bandwidth). Disabled by default so every existing
  /// machine keeps its lane model, fingerprint and golden hashes.
  LinkParams shm_node{0, 0.0};
  double shm_node_parallel = 4.0;

  bool has_shm_channel() const { return shm_node.beta_ns_per_byte > 0.0; }

  // Local memory-system costs.
  double memcpy_beta = 0.1;        ///< ns/B for host buffer copies
  TimeNs unexpected_overhead = 0;  ///< alloc+bookkeeping per unexpected msg
  /// Messages at or below this size use the eager protocol (buffered at the
  /// receiver, sender never waits for a match); larger ones use rendezvous
  /// (an RTS/CTS handshake gates the data, so an unresponsive receiver
  /// stalls the sender — the coupling the paper's §2 noise analysis rests
  /// on). Pre-posted receives are matched by the NIC (Aries/Portals-style
  /// hardware matching), without the receiver's CPU.
  Bytes eager_threshold = kib(64);
  double reduce_gamma = 0.25;      ///< ns/B CPU reduction (γ in Hockney+γ)
  double gpu_reduce_gamma = 0.02;  ///< ns/B GPU reduction
  TimeNs gpu_kernel_launch = 0;    ///< per-kernel launch latency
  TimeNs cpu_overhead = 0;         ///< rank-side cost to post/progress one P2P

  int cores_per_node() const { return sockets_per_node * cores_per_socket; }
  int gpus_per_node() const { return sockets_per_node * gpus_per_socket; }
};

/// Physical placement of one rank.
struct Loc {
  int node = 0;
  int socket = 0;  ///< socket index within the node
  int core = 0;    ///< core index within the socket
  int gpu = -1;    ///< GPU index within the socket; -1 = CPU rank

  bool operator==(const Loc&) const = default;
};

/// Relationship between two ranks' placements, ordered nearest to farthest.
enum class Level { kSelf = 0, kIntraSocket = 1, kInterSocket = 2, kInterNode = 3 };

const char* level_name(Level level);

/// How ranks are laid out on the machine.
enum class PlacementPolicy {
  kByCore,  ///< dense: fill cores of socket 0, then socket 1, then next node
  kByGpu,   ///< one rank per GPU, dense across sockets then nodes
};

/// A machine plus a concrete rank placement. Immutable after construction.
class Machine {
 public:
  Machine(MachineSpec spec, int nranks,
          PlacementPolicy policy = PlacementPolicy::kByCore);
  /// Permuted placement: rank r occupies the dense kByCore slot `slots[r]`.
  /// `slots` must be a permutation of a subset of [0, nodes*cores_per_node).
  /// Models launchers that scatter ranks across nodes (cyclic, reversed,
  /// random bindings) — the layouts two-level collectives must stay correct
  /// under.
  Machine(MachineSpec spec, std::vector<int> slots);

  const MachineSpec& spec() const { return spec_; }
  int nranks() const { return static_cast<int>(locs_.size()); }
  PlacementPolicy policy() const { return policy_; }

  const Loc& loc(Rank r) const;
  Level level_between(Rank a, Rank b) const;
  /// Hockney parameters of the lane used by a CPU-rank pair at this level.
  const LinkParams& lane(Level level) const;

  int node_of(Rank r) const { return loc(r).node; }
  /// Globally unique socket id: node * sockets_per_node + socket.
  int socket_id(Rank r) const;

  /// Ranks grouped by node (index = node id; empty groups removed).
  std::vector<std::vector<Rank>> ranks_by_node() const;
  /// Ranks grouped by global socket id (empty groups removed).
  std::vector<std::vector<Rank>> ranks_by_socket() const;

  /// Stable one-line signature of everything the analytical cost model reads:
  /// shape, placement, the α/β of every lane, γ costs, protocol thresholds and
  /// per-message overheads. Two machines with equal fingerprints are
  /// interchangeable for tuning; a persisted decision table records the
  /// fingerprint and is rejected on a machine whose parameters differ.
  std::string fingerprint() const;

 private:
  MachineSpec spec_;
  PlacementPolicy policy_;
  std::vector<Loc> locs_;
  std::uint64_t placement_hash_ = 0;  ///< 0 = dense kByCore placement
};

}  // namespace adapt::topo
