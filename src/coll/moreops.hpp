// Further collectives built from the same basic building block (paper
// §2.2.3): scatter, gather, allgather, the scatter+allgather big-message
// broadcast, Rabenseifner's reduce (reduce-scatter + gather) and allreduce.
// These also serve as the algorithm families behind the Intel-MPI comparison
// variants in Fig. 8 (recursive doubling, ring, Rabenseifner's).
#pragma once

#include "src/coll/coll.hpp"

namespace adapt::coll {

/// Scatter: the root's `sendbuf` (comm.size() equal blocks of `block` bytes)
/// is distributed so local rank i receives block i into `recvblock`.
/// Binomial-tree scatter: intermediate ranks forward their subtree's range.
sim::Task<> scatter(runtime::Context& ctx, const mpi::Comm& comm,
                    mpi::ConstView sendbuf, mpi::MutView recvblock,
                    Bytes block, Rank root);

/// Gather: local rank i's `sendblock` lands in block i of the root's
/// `recvbuf`. Binomial-tree gather (inverse of scatter).
sim::Task<> gather(runtime::Context& ctx, const mpi::Comm& comm,
                   mpi::ConstView sendblock, mpi::MutView recvbuf, Bytes block,
                   Rank root);

enum class AllgatherAlgo { kRing, kRecursiveDoubling };

/// Allgather: on entry block `me` of `buf` holds this rank's contribution; on
/// exit all comm.size() blocks are filled on every rank. Recursive doubling
/// requires a power-of-two communicator (callers fall back to ring).
sim::Task<> allgather(runtime::Context& ctx, const mpi::Comm& comm,
                      mpi::MutView buf, Bytes block, AllgatherAlgo algo);

/// Big-message broadcast as scatter + allgather (the paper's §2.2.3 example
/// of extending the framework beyond trees; also Intel's "recursive doubling"
/// and "ring" broadcast variants, selected by `algo`).
sim::Task<> bcast_scatter_allgather(runtime::Context& ctx,
                                    const mpi::Comm& comm, mpi::MutView buffer,
                                    Rank root, AllgatherAlgo algo);

/// Rabenseifner's reduce: recursive-halving reduce-scatter, then gather to
/// the root. Non-power-of-two sizes pre-fold the surplus ranks into their
/// even neighbours. Same in/out contract as coll::reduce.
sim::Task<> reduce_rabenseifner(runtime::Context& ctx, const mpi::Comm& comm,
                                mpi::MutView accum, mpi::ReduceOp op,
                                mpi::Datatype dtype, Rank root,
                                const CollOpts& opts = {});

/// Allreduce as reduce-to-0 followed by broadcast (tree-based composition).
sim::Task<> allreduce(runtime::Context& ctx, const mpi::Comm& comm,
                      mpi::MutView accum, mpi::ReduceOp op,
                      mpi::Datatype dtype, const Tree& reduce_tree,
                      const Tree& bcast_tree, Style style,
                      const CollOpts& opts = {});

/// Bandwidth-optimal ring allreduce (reduce-scatter ring + allgather ring):
/// 2(P-1) steps moving ~2·size/P each. The large-message workhorse of data-
/// parallel training; included as the natural extension target the paper's
/// future work points to.
sim::Task<> allreduce_ring(runtime::Context& ctx, const mpi::Comm& comm,
                           mpi::MutView accum, mpi::ReduceOp op,
                           mpi::Datatype dtype, const CollOpts& opts = {});

/// Alltoall (personalised exchange): block i*P+j of rank i's `sendbuf` lands
/// in block j*P+i... conventionally: rank i sends its block j to rank j,
/// which stores it at block i. Pairwise-exchange algorithm, P-1 rounds.
sim::Task<> alltoall(runtime::Context& ctx, const mpi::Comm& comm,
                     mpi::ConstView sendbuf, mpi::MutView recvbuf,
                     Bytes block);

}  // namespace adapt::coll
