#include "src/runtime/sim_engine.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "src/gpu/device.hpp"
#include "src/support/error.hpp"
#include "src/support/log.hpp"
#include "src/tune/plan_cache.hpp"

namespace adapt::runtime {

// ------------------------------------------------------- SimRankExecutor ---

class SimEngine::SimRankExecutor final : public mpi::RankExecutor {
 public:
  SimRankExecutor(SimEngine& engine, Rank rank)
      : engine_(engine), rank_(rank) {}

  TimeNs now() const override { return engine_.sim_.now(); }
  void post(std::function<void()> fn, TimeNs cpu_cost) override {
    engine_.run_on(rank_, std::move(fn), cpu_cost);
  }
  void post_progress(std::function<void()> fn, TimeNs cpu_cost) override {
    engine_.run_progress(rank_, std::move(fn), cpu_cost);
  }
  void charge(TimeNs cpu_cost) override { engine_.charge(rank_, cpu_cost); }

 private:
  SimEngine& engine_;
  Rank rank_;
};

// ---------------------------------------------------------- SimTransport ---

namespace {

/// Fault-key kind tags: frame kinds 0..4 (Frame::Kind order), acks distinct.
constexpr int kWireKindAck = 100;

int wire_kind(const mpi::WireFrame& wire) {
  return wire.is_ack ? kWireKindAck : static_cast<int>(wire.frame.kind);
}

/// Deterministic in-place payload corruption (raw/unreliable mode only: with
/// the reliability layer on, corruption is a checksum discard instead and the
/// payload is never touched).
void corrupt_in_place(mpi::Envelope& env, std::uint64_t salt) {
  if (!env.data || env.size == 0) return;
  env.data.data()[static_cast<std::size_t>(
      salt % static_cast<std::uint64_t>(env.size))] ^= std::byte{0x2a};
}

}  // namespace

class SimEngine::SimTransport final : public mpi::Transport {
 public:
  explicit SimTransport(SimEngine& engine) : engine_(engine) {}

  void submit(mpi::Envelope env, MemSpace src_space, MemSpace dst_space,
              std::function<void()> on_sent,
              std::function<void(mpi::ErrCode)> on_failed) override {
    if (!engine_.channels_.empty()) {
      submit_reliable(std::move(env), src_space, dst_space,
                      std::move(on_sent), std::move(on_failed));
      return;
    }
    net::Route& route = cached_route(env.src, src_space, env.dst, dst_space);
    if (env.size <= engine_.machine_.spec().eager_threshold) {
      if (obs::Recorder* rec = engine_.obs_) {
        route.trace = rec->transfer_begin(
            env.src, env.dst, env.size,
            static_cast<int>(mpi::Frame::Kind::kEager), engine_.sim_.now());
      }
      submit_eager(route, std::move(env), std::move(on_sent));
    } else {
      submit_rendezvous(route, std::move(env), std::move(on_sent));
    }
  }

  /// Channel downcall: puts one wire frame (data or ack) on the fabric.
  /// Data frames occupy bandwidth; control frames and acks are alpha-only.
  /// The fault injector decides each transmission's fate either way.
  void send_wire(const mpi::WireFrame& wire) {
    const net::FaultKey key{wire.src, wire.dst, wire.seq, wire.attempt,
                            wire_kind(wire)};
    const bool data_frame = !wire.is_ack && wire.frame.wire_bytes > 0;
    if (data_frame) {
      net::Route& route = cached_route(wire.src, wire.frame.src_space,
                                       wire.dst, wire.frame.dst_space);
      if (obs::Recorder* rec = engine_.obs_) {
        route.trace = rec->transfer_begin(
            wire.src, wire.dst, wire.frame.wire_bytes,
            static_cast<int>(wire.frame.kind), engine_.sim_.now());
      }
      engine_.net_.fabric().transfer_tagged(
          route, wire.frame.wire_bytes, key,
          [this, wire = wire,
           trace = route.trace](const net::TransferFate& fate) mutable {
            if (!fate.delivered) {
              if (trace) engine_.obs_->transfer_undelivered(trace);
              return;
            }
            wire.corrupted = fate.corrupted;
            engine_.channels_[static_cast<std::size_t>(wire.dst)]->on_wire(
                wire);
          });
      return;
    }
    const net::Route& route =
        cached_route(wire.src, MemSpace::kHost, wire.dst, MemSpace::kHost);
    net::TransferFate fate;
    if (const net::FaultInjector* inj = engine_.injector_.get()) {
      fate = inj->decide(key, route.links, engine_.sim_.now());
      if (!fate.delivered) return;
    }
    if (obs::Recorder* rec = engine_.obs_) {
      rec->transfer_alpha_only(
          wire.src, wire.dst,
          wire.is_ack ? obs::kXferAck : static_cast<int>(wire.frame.kind),
          engine_.sim_.now(), engine_.sim_.now() + route.alpha + fate.delay);
    }
    engine_.sim_.after(
        route.alpha + fate.delay,
        [this, wire = wire, corrupted = fate.corrupted]() mutable {
          wire.corrupted = corrupted;
          engine_.channels_[static_cast<std::size_t>(wire.dst)]->on_wire(wire);
        });
  }

  /// Channel upcall: a deduplicated frame arrived at rank `self`.
  void on_frame(Rank self, Rank from, const mpi::Frame& frame) {
    using Kind = mpi::Frame::Kind;
    switch (frame.kind) {
      case Kind::kEager:
        endpoint(self).deliver(frame.env);
        break;
      case Kind::kRts: {
        // Re-arm the grant: when a receive matches, remember it and send CTS
        // back over the reliable channel.
        mpi::Envelope env = frame.env;
        const RdvzKey key{pair_key(from, self), frame.rdvz};
        env.grant = [this, self, from, key](mpi::PostedRecv recv) {
          rdvz_recv_[key] = recv;
          mpi::Frame cts;
          cts.kind = Kind::kCts;
          cts.rdvz = key.second;
          channel(self).submit(
              from, std::move(cts), nullptr,
              [this, self, key](mpi::ErrCode code) {
                // The sender is unreachable: fail the receive on this side
                // too — retry exhaustion must surface on both endpoints.
                auto it = rdvz_recv_.find(key);
                if (it == rdvz_recv_.end()) return;
                mpi::PostedRecv pending = it->second;
                rdvz_recv_.erase(it);
                pending.request->mark_failed(code);
                if (engine_.recovery_) return;  // the give-up hook reported it
                engine_.initiate_abort(self, mpi::ErrCode::kErrProcFailed);
              });
        };
        endpoint(self).deliver(std::move(env));
        break;
      }
      case Kind::kCts: {
        const RdvzKey key{pair_key(self, from), frame.rdvz};
        auto it = rdvz_send_.find(key);
        if (it == rdvz_send_.end()) break;  // rendezvous already failed
        PendingSend pending = std::move(it->second);
        rdvz_send_.erase(it);
        mpi::Frame bulk;
        bulk.kind = Kind::kBulk;
        bulk.rdvz = key.second;
        bulk.wire_bytes = pending.env.size;
        bulk.src_space = pending.src_space;
        bulk.dst_space = pending.dst_space;
        bulk.env = std::move(pending.env);
        channel(self).submit(
            from, std::move(bulk),
            [this, self, on_sent = std::move(pending.on_sent)] {
              engine_.run_progress(self, on_sent, 0);
            },
            [this, self, on_failed = std::move(pending.on_failed)](
                mpi::ErrCode code) { fail_op(self, code, on_failed); });
        break;
      }
      case Kind::kBulk: {
        const RdvzKey key{pair_key(from, self), frame.rdvz};
        auto it = rdvz_recv_.find(key);
        if (it == rdvz_recv_.end()) break;  // receive already failed
        const mpi::PostedRecv recv = it->second;
        rdvz_recv_.erase(it);
        const mpi::Envelope env = frame.env;  // shares the payload pointer
        engine_.run_progress(
            self, [this, self, recv, env] { endpoint(self).finalize_recv(recv, env); },
            engine_.machine_.spec().cpu_overhead);
        break;
      }
      case Kind::kAbort:
        engine_.poison_rank(self, frame.code);
        break;
      // Recovery-protocol frames (only ever submitted when the recovery
      // service exists; the null checks are belt-and-braces).
      case Kind::kPing:
        break;  // liveness probe: the channel-level ack is the answer
      case Kind::kFailNotice:
        if (engine_.recovery_) engine_.recovery_->on_notice(self, frame.rec.about);
        break;
      case Kind::kRevoke:
        if (engine_.recovery_) {
          engine_.recovery_->on_revoke(self, frame.rec.fingerprint);
        }
        break;
      case Kind::kAgree:
        if (engine_.recovery_) {
          engine_.recovery_->on_agree(self, from, frame.rec);
        }
        break;
    }
  }

 private:
  using RdvzKey = std::pair<std::int64_t, std::uint64_t>;

  struct PendingSend {
    mpi::Envelope env;
    MemSpace src_space = MemSpace::kHost;
    MemSpace dst_space = MemSpace::kHost;
    std::function<void()> on_sent;
    std::function<void(mpi::ErrCode)> on_failed;
  };

  /// In-flight raw eager message, parked while the fabric models the
  /// transfer. Slot-pooled: see submit_eager.
  struct EagerPending {
    mpi::Envelope env;
    std::function<void()> on_sent;
    Rank src = 0;
    Rank dst = 0;
    std::uint64_t trace = 0;
  };

  mpi::Endpoint& endpoint(Rank r) {
    return *engine_.endpoints_[static_cast<std::size_t>(r)];
  }
  mpi::ReliableChannel& channel(Rank r) {
    return *engine_.channels_[static_cast<std::size_t>(r)];
  }
  std::int64_t pair_key(Rank src, Rank dst) const {
    return static_cast<std::int64_t>(src) * engine_.machine_.nranks() + dst;
  }
  std::uint64_t next_raw_seq(Rank src, Rank dst) {
    return ++raw_seq_[pair_key(src, dst)];
  }

  /// Route between fixed endpoints, cached: building a Route allocates its
  /// link vector, and routes never change for the life of the engine, so the
  /// per-message send paths reuse one entry per (pair, memory spaces). The
  /// serial key is part of the route (FIFO per (src, dst): segments between
  /// one pair leave back to back — NIC transmit queue — instead of
  /// fair-sharing against each other); the trace id is per-message state and
  /// is reset here, stamped by the caller only when a recorder is attached.
  net::Route& cached_route(Rank src, MemSpace src_space, Rank dst,
                           MemSpace dst_space) {
    const RouteKey key{pair_key(src, dst),
                       (src_space == MemSpace::kDevice ? 2 : 0) |
                           (dst_space == MemSpace::kDevice ? 1 : 0)};
    auto it = route_cache_.find(key);
    if (it == route_cache_.end()) {
      net::Route route = engine_.net_.route_mem(src, src_space, dst, dst_space);
      route.serial_key = pair_key(src, dst);
      it = route_cache_.emplace(key, std::move(route)).first;
    }
    it->second.trace = 0;
    return it->second;
  }

  /// Local failure of one operation: fail its request with the specific
  /// code, then escalate to a job-wide abort (every surviving rank must see
  /// the same outcome, not a one-sided error). Under recovery the escalation
  /// is skipped: the channel give-up hook already reported the suspect, and
  /// the failure-notification gossip replaces the abort flood.
  void fail_op(Rank origin, mpi::ErrCode code,
               const std::function<void(mpi::ErrCode)>& on_failed) {
    if (on_failed) on_failed(code);
    if (engine_.recovery_) return;
    engine_.initiate_abort(origin, mpi::ErrCode::kErrProcFailed);
  }

  /// Fault-tolerant path: every protocol message is a frame on the per-rank
  /// ReliableChannel. Eager sends complete on ack; rendezvous decomposes
  /// into RTS → CTS → BULK frames, each independently retransmitted.
  void submit_reliable(mpi::Envelope env, MemSpace src_space,
                       MemSpace dst_space, std::function<void()> on_sent,
                       std::function<void(mpi::ErrCode)> on_failed) {
    const Rank src = env.src;
    const Rank dst = env.dst;
    if (env.size <= engine_.machine_.spec().eager_threshold) {
      mpi::Frame frame;
      frame.kind = mpi::Frame::Kind::kEager;
      frame.wire_bytes = env.size;
      frame.src_space = src_space;
      frame.dst_space = dst_space;
      frame.env = std::move(env);
      channel(src).submit(
          dst, std::move(frame),
          [this, src, on_sent = std::move(on_sent)] {
            engine_.run_progress(src, on_sent, 0);
          },
          [this, src, on_failed = std::move(on_failed)](mpi::ErrCode code) {
            fail_op(src, code, on_failed);
          });
      return;
    }
    const RdvzKey key{pair_key(src, dst), ++rdvz_counter_};
    mpi::Frame rts;
    rts.kind = mpi::Frame::Kind::kRts;
    rts.rdvz = key.second;
    rts.env = env;
    rts.env.data.reset();  // metadata only; the payload ships with kBulk
    rts.env.grant = nullptr;
    rts.src_space = src_space;
    rts.dst_space = dst_space;
    rdvz_send_[key] = PendingSend{std::move(env), src_space, dst_space,
                                  std::move(on_sent), std::move(on_failed)};
    channel(src).submit(dst, std::move(rts), nullptr,
                        [this, src, key](mpi::ErrCode code) {
                          auto it = rdvz_send_.find(key);
                          if (it == rdvz_send_.end()) return;
                          PendingSend pending = std::move(it->second);
                          rdvz_send_.erase(it);
                          fail_op(src, code, pending.on_failed);
                        });
  }

  /// Eager: the data travels immediately and is buffered at the receiver if
  /// nothing matches; the sender never waits on the receiver's CPU. Under an
  /// active fault plan (raw mode, no reliability) a dropped message simply
  /// never arrives and a corrupted one is delivered with damaged bytes —
  /// exactly the behaviour the chaos self-test exists to catch.
  ///
  /// The in-flight envelope is parked in a recycled slot so the fabric
  /// completion captures only {this, slot} — inside std::function's inline
  /// storage. This is the last per-segment heap allocation on the raw eager
  /// path, which persistent collectives require to be allocation-free in
  /// steady state.
  void submit_eager(const net::Route& route, mpi::Envelope env,
                    std::function<void()> on_sent) {
    const Rank src = env.src;
    const Rank dst = env.dst;
    const net::FaultKey key{src, dst, next_raw_seq(src, dst), 0,
                            static_cast<int>(mpi::Frame::Kind::kEager)};
    const std::uint32_t slot = acquire_eager_slot(
        {std::move(env), std::move(on_sent), src, dst, route.trace});
    engine_.net_.fabric().transfer_tagged(
        route, eager_slots_[slot].env.size, key,
        [this, slot](const net::TransferFate& fate) {
          finish_eager(slot, fate);
        });
  }

  std::uint32_t acquire_eager_slot(EagerPending pending) {
    std::uint32_t slot;
    if (eager_free_.empty()) {
      eager_slots_.emplace_back();
      slot = static_cast<std::uint32_t>(eager_slots_.size() - 1);
    } else {
      slot = eager_free_.back();
      eager_free_.pop_back();
    }
    eager_slots_[slot] = std::move(pending);
    return slot;
  }

  void finish_eager(std::uint32_t slot, const net::TransferFate& fate) {
    EagerPending p = std::move(eager_slots_[slot]);
    eager_slots_[slot] = {};  // drop payload refs before recycling the slot
    eager_free_.push_back(slot);
    engine_.run_progress(p.src, std::move(p.on_sent), 0);
    if (!fate.delivered) {
      if (p.trace) engine_.obs_->transfer_undelivered(p.trace);
      return;
    }
    if (fate.corrupted) corrupt_in_place(p.env, fate.salt);
    // NIC-side matching: no receiver-CPU gate here (deliver defers any
    // CPU-bound follow-up itself).
    endpoint(p.dst).deliver(std::move(p.env));
  }

  /// Rendezvous: an RTS races ahead; the bulk data moves only once a receive
  /// matched (instantly when pre-posted — hardware matching — or whenever
  /// the receiver gets around to posting one). This is the coupling that
  /// lets a noisy receiver stall its parent in blocking/Waitall designs.
  /// Control legs (RTS/CTS) consult the fault injector directly: a lost
  /// notice stalls the rendezvous forever in raw mode.
  void submit_rendezvous(const net::Route& route, mpi::Envelope env,
                         std::function<void()> on_sent) {
    const Rank dst = env.dst;
    const net::FaultInjector* inj = engine_.injector_.get();
    const std::uint64_t rseq = next_raw_seq(env.src, env.dst);
    mpi::Envelope rts = env;  // shares the payload pointer
    rts.grant = [this, route, inj, rseq, env = std::move(env),
                 on_sent = std::move(on_sent)](mpi::PostedRecv recv) {
      // CTS back to the sender, then the bulk transfer.
      TimeNs cts_delay = route.alpha;
      if (inj) {
        const net::TransferFate fate =
            inj->decide({env.dst, env.src, rseq, 0,
                         static_cast<int>(mpi::Frame::Kind::kCts)},
                        route.links, engine_.sim_.now());
        if (!fate.delivered || fate.corrupted) return;  // CTS lost
        cts_delay += fate.delay;
      }
      if (obs::Recorder* rec = engine_.obs_) {
        rec->transfer_alpha_only(env.dst, env.src,
                                 static_cast<int>(mpi::Frame::Kind::kCts),
                                 engine_.sim_.now(),
                                 engine_.sim_.now() + cts_delay);
      }
      engine_.sim_.after(cts_delay, [this, route, rseq, env, on_sent, recv] {
        const Rank src = env.src;
        const Rank rdst = env.dst;
        net::Route bulk_route = route;
        if (obs::Recorder* rec = engine_.obs_) {
          bulk_route.trace = rec->transfer_begin(
              src, rdst, env.size, static_cast<int>(mpi::Frame::Kind::kBulk),
              engine_.sim_.now());
        }
        engine_.net_.fabric().transfer_tagged(
            bulk_route, env.size,
            {src, rdst, rseq, 0, static_cast<int>(mpi::Frame::Kind::kBulk)},
            [this, src, rdst, trace = bulk_route.trace, env, on_sent,
             recv](const net::TransferFate& fate) mutable {
              engine_.run_progress(src, on_sent, 0);
              if (!fate.delivered) {
                if (trace) engine_.obs_->transfer_undelivered(trace);
                return;
              }
              if (fate.corrupted) corrupt_in_place(env, fate.salt);
              engine_.run_progress(
                  rdst,
                  [this, rdst, recv, env] { endpoint(rdst).finalize_recv(recv, env); },
                  engine_.machine_.spec().cpu_overhead);
            });
      });
    };
    TimeNs rts_delay = route.alpha;
    if (inj) {
      const net::TransferFate fate =
          inj->decide({rts.src, rts.dst, rseq, 0,
                       static_cast<int>(mpi::Frame::Kind::kRts)},
                      route.links, engine_.sim_.now());
      if (!fate.delivered || fate.corrupted) return;  // RTS lost
      rts_delay += fate.delay;
    }
    if (obs::Recorder* rec = engine_.obs_) {
      rec->transfer_alpha_only(rts.src, rts.dst,
                               static_cast<int>(mpi::Frame::Kind::kRts),
                               engine_.sim_.now(),
                               engine_.sim_.now() + rts_delay);
    }
    engine_.sim_.after(rts_delay, [this, dst, rts = std::move(rts)]() mutable {
      endpoint(dst).deliver(std::move(rts));
    });
  }

  SimEngine& engine_;
  std::map<RdvzKey, PendingSend> rdvz_send_;
  std::map<RdvzKey, mpi::PostedRecv> rdvz_recv_;
  using RouteKey = std::pair<std::int64_t, int>;  ///< (pair, space bits)
  std::map<RouteKey, net::Route> route_cache_;
  std::map<std::int64_t, std::uint64_t> raw_seq_;
  std::uint64_t rdvz_counter_ = 0;
  std::vector<EagerPending> eager_slots_;
  std::vector<std::uint32_t> eager_free_;
};

// ------------------------------------------------------------- SimContext ---

class SimEngine::SimContext final : public Context {
 public:
  SimContext(SimEngine& engine, Rank rank) : engine_(engine), rank_(rank) {}

  Rank rank() const override { return rank_; }
  int nranks() const override { return engine_.machine_.nranks(); }
  TimeNs now() const override { return engine_.sim_.now(); }
  mpi::Endpoint& endpoint() override {
    return *engine_.endpoints_[static_cast<std::size_t>(rank_)];
  }
  const topo::Machine& machine() const override { return engine_.machine_; }

  sim::Task<> compute(TimeNs cost) override {
    ADAPT_CHECK(cost >= 0);
    co_await sim::Suspend([this, cost](std::coroutine_handle<> h) {
      engine_.run_on(rank_, [h] { h.resume(); }, cost);
    });
  }

  void defer(TimeNs cpu_cost, std::function<void()> fn) override {
    engine_.run_on(rank_, std::move(fn), cpu_cost);
  }

  void defer_progress(TimeNs cpu_cost, std::function<void()> fn) override {
    engine_.run_progress(rank_, std::move(fn), cpu_cost);
  }

  sim::Task<> sleep_for(TimeNs duration) override {
    ADAPT_CHECK(duration >= 0);
    co_await sim::Suspend([this, duration](std::coroutine_handle<> h) {
      engine_.sim_.after(duration, [h] { h.resume(); });
    });
  }

  gpu::Device* gpu() override {
    return engine_.gpu_ ? engine_.gpu_->device_for(rank_) : nullptr;
  }

  obs::Recorder* recorder() override { return engine_.obs_; }
  support::BufferPool* pool() override { return &engine_.pool_; }
  tune::Tuner* tuner() override { return engine_.options_.tuning.get(); }
  tune::PlanCache* plan_cache() override { return engine_.plan_cache_.get(); }
  Recovery* recovery() override {
    return engine_.recovery_ ? &engine_.recovery_->rank_facade(rank_)
                             : nullptr;
  }

 private:
  SimEngine& engine_;
  Rank rank_;
};

// -------------------------------------------------------------- SimEngine ---

SimEngine::SimEngine(const topo::Machine& machine, SimEngineOptions options)
    : machine_(machine),
      options_(options),
      net_(sim_, machine, options.sharing, options.gpu),
      noise_(options.noise ? options.noise
                           : std::make_shared<noise::NoNoise>()) {
  if (options_.perturb) sim_.set_perturbation(options_.perturb);
  log_ctx_ = log_level() != LogLevel::kOff;
  const int n = machine_.nranks();
  transport_ = std::make_unique<SimTransport>(*this);
  plan_cache_ = std::make_unique<tune::PlanCache>();
  busy_until_.assign(static_cast<std::size_t>(n), 0);
  progress_busy_until_.assign(static_cast<std::size_t>(n), 0);

  if (options_.faults.enabled()) {
    injector_ = std::make_unique<net::FaultInjector>(options_.faults);
    net_.fabric().set_fault_injector(injector_.get());
  }
  if (options_.reliability) {
    channels_.reserve(static_cast<std::size_t>(n));
    for (Rank r = 0; r < n; ++r) {
      channels_.push_back(std::make_unique<mpi::ReliableChannel>(
          r, *options_.reliability,
          [this](const mpi::WireFrame& wire) { transport_->send_wire(wire); },
          [this](TimeNs delay, std::function<void()> fn) {
            sim_.after(delay, std::move(fn));
          },
          [this, r](Rank from, const mpi::Frame& frame) {
            transport_->on_frame(r, from, frame);
          },
          // With recovery on, every give-up — collective traffic, protocol
          // frames, heartbeats — reports the unreachable peer as a suspect.
          // The per-frame on_failed (passed at submit) still fails the
          // specific operation; this hook is the *detector*.
          options_.recovery
              ? mpi::ReliableChannel::GiveUp(
                    [this, r](Rank peer, const mpi::Frame&, mpi::ErrCode) {
                      if (recovery_) recovery_->on_give_up(r, peer);
                    })
              : mpi::ReliableChannel::GiveUp(nullptr)));
    }
  }
  if (options_.recovery) {
    ADAPT_CHECK(options_.reliability)
        << "SimEngineOptions::recovery requires the reliability layer (the "
           "recovery protocol rides on reliable frames)";
    recovery_ = std::make_unique<RecoveryService>(*this, *options_.recovery);
  }
  abort_flooded_.assign(static_cast<std::size_t>(n), 0);

  const mpi::EndpointCosts costs{machine_.spec().cpu_overhead,
                                 machine_.spec().unexpected_overhead,
                                 machine_.spec().memcpy_beta};
  executors_.reserve(static_cast<std::size_t>(n));
  endpoints_.reserve(static_cast<std::size_t>(n));
  contexts_.reserve(static_cast<std::size_t>(n));
  for (Rank r = 0; r < n; ++r) {
    executors_.push_back(std::make_unique<SimRankExecutor>(*this, r));
    endpoints_.push_back(std::make_unique<mpi::Endpoint>(
        r, n, *executors_.back(), *transport_, costs));
    endpoints_.back()->set_pool(&pool_);
    contexts_.push_back(std::make_unique<SimContext>(*this, r));
  }
  if (machine_.spec().gpus_per_socket > 0) {
    gpu_ = std::make_unique<gpu::GpuRuntime>(sim_, net_, machine_);
  }

  // Observability: install hook pointers only for an enabled recorder, so a
  // disabled one is indistinguishable from none (the zero-event guarantee).
  if (options_.recorder && options_.recorder->enabled()) {
    obs_ = options_.recorder.get();
    obs_->set_clock([this] { return sim_.now(); });
    obs_->init_ranks(n);
    sim_.set_queue_stats(&obs_->queue_stats());
    net_.fabric().set_recorder(obs_);
    for (auto& ch : channels_) ch->set_recorder(obs_);
    for (auto& ep : endpoints_) ep->set_recorder(obs_);
    plan_cache_->set_recorder(obs_);
    if (options_.tuning) {
      // Pre-register the decision-engine counters so exports always carry
      // the full schema, even when a run never hits the tuner memo.
      obs_->metrics().counter("tuner.hits");
      obs_->metrics().counter("tuner.misses");
    }
  }
}

SimEngine::~SimEngine() = default;

TimeNs SimEngine::death_time(Rank r) const {
  for (const net::FaultPlan::Death& d : options_.faults.deaths) {
    if (d.rank == r) return d.at;
  }
  return -1;
}

Context& SimEngine::context(Rank r) {
  ADAPT_CHECK(r >= 0 && r < machine_.nranks());
  return *contexts_[static_cast<std::size_t>(r)];
}

mpi::Endpoint& SimEngine::endpoint(Rank r) {
  ADAPT_CHECK(r >= 0 && r < machine_.nranks());
  return *endpoints_[static_cast<std::size_t>(r)];
}

mpi::ReliableChannel* SimEngine::channel(Rank r) {
  if (channels_.empty()) return nullptr;
  ADAPT_CHECK(r >= 0 && r < machine_.nranks());
  return channels_[static_cast<std::size_t>(r)].get();
}

void SimEngine::poison_rank(Rank r, mpi::ErrCode code) {
  if (obs_ && !endpoint(r).poisoned()) {
    obs_->instant(obs::rank_pid(r), obs::kTidProgress, obs::Cat::kProto,
                  "poisoned", sim_.now(), static_cast<std::int64_t>(code));
  }
  endpoint(r).poison(code);
}

void SimEngine::initiate_abort(Rank origin, mpi::ErrCode code) {
  if (endpoint(origin).poisoned()) return;  // the first failure cause wins
  if (obs_) {
    obs_->instant(obs::rank_pid(origin), obs::kTidProgress, obs::Cat::kProto,
                  "abort", sim_.now(), static_cast<std::int64_t>(code));
  }
  // Notify peers over the reliable channel *before* poisoning the origin
  // (poison drops incoming traffic, not outgoing frames). Without channels
  // there is no way to notify anyone — the failure stays local and the
  // watchdog picks up the survivors. The flood runs at most once per origin:
  // the poison test above covers repeat calls in fail-stop mode, but once
  // recovery can clear poison the explicit guard keeps a rank that observes
  // two failures from re-flooding and inflating retransmit counters.
  if (!channels_.empty() && !abort_flooded_[static_cast<std::size_t>(origin)]) {
    abort_flooded_[static_cast<std::size_t>(origin)] = 1;
    for (Rank r = 0; r < machine_.nranks(); ++r) {
      if (r == origin) continue;
      mpi::Frame abort_frame;
      abort_frame.kind = mpi::Frame::Kind::kAbort;
      abort_frame.code = code;
      channels_[static_cast<std::size_t>(origin)]->submit(
          r, std::move(abort_frame));
    }
  }
  poison_rank(origin, code);
}

std::int64_t SimEngine::log_now(const void* arg) {
  return static_cast<const SimEngine*>(arg)->sim_.now();
}

void SimEngine::run_on(Rank r, std::function<void()> fn, TimeNs cpu_cost) {
  ADAPT_CHECK(cpu_cost >= 0);
  auto& busy = busy_until_[static_cast<std::size_t>(r)];
  const TimeNs ready = std::max(sim_.now(), busy);
  const TimeNs start = noise_->next_free(r, ready);
  busy = start + cpu_cost;
  if (obs_) obs_->cpu_task(r, /*progress=*/false, sim_.now(), ready, start,
                           busy);
  if (log_ctx_) {
    sim_.at(busy, [this, r, fn = std::move(fn)] {
      ScopedLogContext lc(r, &SimEngine::log_now, this);
      fn();
    });
    return;
  }
  sim_.at(busy, std::move(fn));
}

void SimEngine::run_progress(Rank r, std::function<void()> fn,
                             TimeNs cpu_cost) {
  ADAPT_CHECK(cpu_cost >= 0);
  auto& busy = progress_busy_until_[static_cast<std::size_t>(r)];
  const TimeNs ready = std::max(sim_.now(), busy);
  busy = ready + cpu_cost;
  if (obs_) obs_->cpu_task(r, /*progress=*/true, sim_.now(), ready, ready,
                           busy);
  if (log_ctx_) {
    sim_.at(busy, [this, r, fn = std::move(fn)] {
      ScopedLogContext lc(r, &SimEngine::log_now, this);
      fn();
    });
    return;
  }
  sim_.at(busy, std::move(fn));
}

void SimEngine::charge(Rank r, TimeNs cpu_cost) {
  ADAPT_CHECK(cpu_cost >= 0);
  auto& busy = busy_until_[static_cast<std::size_t>(r)];
  const TimeNs ready = std::max(sim_.now(), busy);
  busy = ready + cpu_cost;
  if (obs_) obs_->cpu_task(r, /*progress=*/false, sim_.now(), ready, ready,
                           busy);
}

RunResult SimEngine::run(const RankProgram& program) {
  const int n = machine_.nranks();
  RunResult result;
  result.rank_finish.assign(static_cast<std::size_t>(n), -1);
  int remaining = n;
  std::exception_ptr failure;

  for (Rank r = 0; r < n; ++r) {
    run_on(
        r,
        [this, r, &program, &result, &remaining, &failure] {
          sim::run_detached(
              program(*contexts_[static_cast<std::size_t>(r)]),
              [this, r, &result, &remaining, &failure](std::exception_ptr ep) {
                result.rank_finish[static_cast<std::size_t>(r)] = sim_.now();
                --remaining;
                if (ep && !failure) failure = ep;
              });
        },
        0);
  }

  {
    support::FrameArena::Scope frames(&frame_arena_);
    sim_.run();
  }

  if (obs_) {
    // Rank-state gauge (assigned, not accumulated — frame/pool totals are
    // cumulative across runs already). Deterministic: cumulative allocation
    // totals plus matcher footprint, never live peaks.
    obs::MetricsRegistry& m = obs_->metrics();
    std::uint64_t matcher = 0;
    for (auto& ep : endpoints_) {
      matcher += static_cast<std::uint64_t>(ep->matcher().footprint_bytes());
    }
    m.counter("sim.frame_bytes") =
        static_cast<std::int64_t>(frame_arena_.total_bytes());
    m.counter("sim.matcher_bytes") = static_cast<std::int64_t>(matcher);
    m.counter("sim.pool_bytes") =
        static_cast<std::int64_t>(pool_.acquired_bytes());
    m.counter("sim.rank_state_bytes") = static_cast<std::int64_t>(
        frame_arena_.total_bytes() + matcher + pool_.acquired_bytes());
  }

  if (failure) std::rethrow_exception(failure);
  ADAPT_CHECK(remaining == 0)
      << remaining << " of " << n
      << " ranks never finished: deadlock (blocked on a message that is "
         "never sent)";
  result.total_time =
      *std::max_element(result.rank_finish.begin(), result.rank_finish.end());
  return result;
}

}  // namespace adapt::runtime
