// Persistent worker pool for round-based shard execution.
//
// The sharded engine synchronizes its shards with a conservative time-window
// barrier: every window is one "round" in which worker i drains its inbound
// mailboxes and executes its shard's events, and no shard may start round
// k+1 before every shard finished round k. A window can be as small as a few
// dozen events, so the barrier must cost well under a microsecond on
// multi-core hosts — far below what spawning threads per round
// (support::parallel_for) or an uncontended kernel futex round-trip per
// worker could deliver.
//
// ShardPool keeps workers parked between rounds and releases them with a
// generation counter: run_round publishes the round's callback, bumps the
// atomic round number, and runs slice 0 on the calling thread while workers
// 1..N-1 run theirs. Waiters spin briefly on the atomic (staying in user
// space when rounds are dense) and then fall back to a condvar — and the
// spin is skipped entirely on single-core hosts, where burning the quantum
// would stall the very thread being waited on.
//
// Memory ordering contract: everything written before run_round() is visible
// to every worker's callback, and everything workers write in round k is
// visible to the caller when run_round() returns (release/acquire on the
// round and completion counters). The caller may therefore read and write
// all shard state between rounds without locks.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace adapt::support {

class ShardPool {
 public:
  /// Spawns `workers - 1` persistent threads (worker 0 is the caller).
  explicit ShardPool(int workers);
  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;
  ~ShardPool();

  int workers() const { return workers_; }

  /// Runs fn(0..workers-1), fn(0) on the calling thread, and returns once
  /// every invocation finished. Not reentrant; exceptions from fn must be
  /// captured by the callback itself (a throw out of a worker terminates).
  void run_round(const std::function<void(int)>& fn);

 private:
  void worker_loop(int index);
  void wait_for_round(std::uint64_t expect);

  const int workers_;
  const int spin_;  ///< spin iterations before sleeping; 0 on 1-core hosts
  std::atomic<std::uint64_t> round_{0};
  std::atomic<int> remaining_{0};
  std::atomic<bool> stop_{false};
  const std::function<void(int)>* fn_ = nullptr;
  std::mutex start_mu_;
  std::condition_variable start_cv_;
  std::mutex done_mu_;
  std::condition_variable done_cv_;
  std::vector<std::thread> threads_;
};

}  // namespace adapt::support
