// The discrete-event simulation kernel: a virtual clock plus an event queue.
//
// The kernel knows nothing about ranks, networks or MPI — higher layers
// (net::Fabric, runtime::SimEngine) schedule closures on it. Strictly
// single-threaded; determinism follows from EventQueue's stable ordering.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

#include "src/sim/event_queue.hpp"
#include "src/support/units.hpp"

namespace adapt::sim {

class Simulator {
 public:
  /// Current virtual time. Starts at 0.
  TimeNs now() const { return now_; }

  /// Seeded schedule perturbation (see sim::PerturbConfig): randomizes the
  /// order of concurrently pending events while preserving causality. Used by
  /// the conformance harness; leave unset for bit-reproducible traces.
  void set_perturbation(std::optional<PerturbConfig> config) {
    queue_.set_perturbation(std::move(config));
  }
  bool perturbed() const { return queue_.perturbed(); }

  /// Schedules `fn` at absolute virtual time `t` (must be >= now()).
  EventHandle at(TimeNs t, EventFn fn);

  /// Schedules `fn` after a relative delay (must be >= 0).
  EventHandle after(TimeNs delay, EventFn fn);

  /// Runs until the event queue drains or `until` is passed; returns the
  /// final virtual time. Events exactly at `until` still fire.
  TimeNs run(TimeNs until = std::numeric_limits<TimeNs>::max());

  /// Executes at most one event; returns false when none are pending.
  bool step();

  /// Observability pass-through (see EventQueue::set_stats).
  void set_queue_stats(obs::QueueStats* stats) { queue_.set_stats(stats); }

  std::uint64_t events_processed() const { return processed_; }
  std::uint64_t events_scheduled() const { return queue_.total_scheduled(); }
  bool idle() const { return queue_.empty(); }

 private:
  EventQueue queue_;
  TimeNs now_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace adapt::sim
