// Discrete-event execution engine: every rank is a coroutine scheduled on one
// virtual clock; messages move through the contention-aware ClusterNet;
// rank CPUs are serialised resources that noise can occupy.
//
// This is the engine all paper-scale experiments run on.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "src/mpi/endpoint.hpp"
#include "src/mpi/errors.hpp"
#include "src/mpi/reliable.hpp"
#include "src/net/fault.hpp"
#include "src/net/routes.hpp"
#include "src/noise/noise.hpp"
#include "src/obs/trace.hpp"
#include "src/runtime/context.hpp"
#include "src/runtime/recovery.hpp"
#include "src/sim/simulator.hpp"
#include "src/support/buffer_pool.hpp"
#include "src/support/frame_arena.hpp"
#include "src/topo/hardware.hpp"

namespace adapt::gpu {
class GpuRuntime;
}

namespace adapt::tune {
class Tuner;      // defined in src/tune/tuner.hpp
class PlanCache;  // defined in src/tune/plan_cache.hpp
}

namespace adapt::runtime {

struct SimEngineOptions {
  net::SharingPolicy sharing = net::SharingPolicy::kFairShare;
  net::GpuConfig gpu;
  std::shared_ptr<noise::NoiseModel> noise;  ///< null = no noise
  /// Seeded schedule perturbation (conformance testing): randomizes the
  /// delivery order of concurrently pending events. Unset = the default
  /// bit-reproducible stable schedule.
  std::optional<sim::PerturbConfig> perturb;
  /// Deterministic fault schedule for the fabric (chaos testing). The
  /// default-constructed plan is disabled and leaves the hot path untouched.
  net::FaultPlan faults;
  /// Enables the frame-level reliability protocol (sequence-numbered acks,
  /// timeout + exponential-backoff retransmit, duplicate suppression) on
  /// every P2P message. Unset = the seed's perfect-delivery protocols.
  std::optional<mpi::ReliabilityConfig> reliability;
  /// Enables the ULFM-style recovery layer (requires `reliability`, and at
  /// most 64 ranks): local failures become gossiped notifications instead of
  /// an unconditional job-wide abort, Context::recovery() exposes the
  /// failure views / agreement / revocation facade, and self-healing
  /// collective wrappers can retry on survivor communicators. Unset (the
  /// default) keeps PR 2 fail-stop semantics byte-identical — no extra
  /// frames, timers, or branches on the hot path.
  std::optional<RecoveryOptions> recovery;
  /// Trace/metrics recorder observing this run (see src/obs). Hooks are
  /// installed only when set AND enabled(); otherwise every instrumented
  /// hot path pays exactly one null-pointer test. The engine shares
  /// ownership so the recorder outlives in-flight events.
  std::shared_ptr<obs::Recorder> recorder;
  /// Adaptive decision engine (src/tune) exposed through Context::tuner():
  /// tunable personalities (ompi-adapt) then derive topology / segment size /
  /// radix from the analytical model instead of their built-in heuristics.
  /// Unset (default) keeps the seed's heuristics — golden traces and BENCH
  /// baselines are byte-identical. Share one Tuner across engines to reuse
  /// its decision table.
  std::shared_ptr<tune::Tuner> tuning;
};

class SimEngine final : public Engine {
 public:
  SimEngine(const topo::Machine& machine, SimEngineOptions options = {});
  ~SimEngine() override;

  int nranks() const override { return machine_.nranks(); }
  RunResult run(const RankProgram& program) override;

  sim::Simulator& simulator() { return sim_; }
  net::ClusterNet& net() { return net_; }
  const topo::Machine& machine() const { return machine_; }
  Context& context(Rank r);
  TimeNs now() const { return sim_.now(); }

  mpi::Endpoint& endpoint(Rank r);
  /// The engine's buffer pool (eager copies, segment staging scratch).
  support::BufferPool& pool() { return pool_; }
  /// Reliability-channel introspection; null when reliability is off.
  mpi::ReliableChannel* channel(Rank r);
  const net::FaultInjector* fault_injector() const { return injector_.get(); }
  /// The active recorder, or null when observability is off.
  obs::Recorder* recorder() { return obs_; }
  /// The engine's persistent-collective plan cache (never null).
  tune::PlanCache& plan_cache() { return *plan_cache_; }
  /// The recovery service; null unless SimEngineOptions::recovery is set.
  RecoveryService* recovery() { return recovery_.get(); }

  /// The scheduled death time of `r` from the fault plan, or -1 when the
  /// plan never kills it. Recovery uses this to measure detection latency
  /// (death to first kFailNotice) without peeking at the injector's state.
  TimeNs death_time(Rank r) const;

  /// Declares rank `origin`'s current operation failed: reliably floods an
  /// abort notice to every other rank (each poisons itself on receipt), then
  /// poisons `origin`. This is the runtime's agreement mechanism — local
  /// failure detection (retry exhaustion, watchdog) becomes a job-wide,
  /// uniform error instead of a hang or a one-sided error.
  void initiate_abort(Rank origin, mpi::ErrCode code);
  /// Fails every pending and future request on rank r (see Endpoint::poison).
  void poison_rank(Rank r, mpi::ErrCode code);

  /// Main-thread scheduling: runs `fn` once rank r's application thread is
  /// free (noise applies), after occupying it for `cpu_cost`.
  void run_on(Rank r, std::function<void()> fn, TimeNs cpu_cost);
  /// Progress-context scheduling: the communication engine's timeline, which
  /// noise never touches (async progress thread + NIC offload).
  void run_progress(Rank r, std::function<void()> fn, TimeNs cpu_cost);
  /// Synchronously extends rank r's main-thread busy window.
  void charge(Rank r, TimeNs cpu_cost);

 private:
  class SimContext;
  class SimRankExecutor;
  class SimTransport;

  static std::int64_t log_now(const void* arg);

  const topo::Machine& machine_;
  SimEngineOptions options_;
  /// Declared before every component that can hold BufferRefs (endpoints'
  /// unexpected queues, in-flight simulator events), so it is destroyed
  /// after all of them — the pool-lifetime contract.
  support::BufferPool pool_;
  /// Recycles coroutine frames while run() executes; also the frame half of
  /// the sim.rank_state_bytes gauge. Declared before sim_ so it outlives
  /// any frame still parked in a pending event at teardown.
  support::FrameArena frame_arena_;
  obs::Recorder* obs_ = nullptr;  ///< null unless options_.recorder enabled
  /// Sampled at construction: when logging is on, rank callbacks run under a
  /// ScopedLogContext so lines carry virtual time + rank. When off, callbacks
  /// are scheduled unwrapped — no extra capture on the hot path.
  bool log_ctx_ = false;
  sim::Simulator sim_;
  net::ClusterNet net_;
  std::shared_ptr<noise::NoiseModel> noise_;
  std::unique_ptr<net::FaultInjector> injector_;
  std::vector<std::unique_ptr<mpi::ReliableChannel>> channels_;
  std::unique_ptr<SimTransport> transport_;
  std::vector<std::unique_ptr<SimRankExecutor>> executors_;
  std::vector<std::unique_ptr<mpi::Endpoint>> endpoints_;
  std::vector<std::unique_ptr<SimContext>> contexts_;
  std::vector<TimeNs> busy_until_;           // main thread, noise applies
  std::vector<TimeNs> progress_busy_until_;  // progress context
  std::unique_ptr<gpu::GpuRuntime> gpu_;
  std::unique_ptr<tune::PlanCache> plan_cache_;
  std::unique_ptr<RecoveryService> recovery_;
  /// Per-origin abort-flood guard: initiate_abort floods kAbort at most once
  /// per origin, however many poisoned endpoints it later observes.
  std::vector<char> abort_flooded_;
};

}  // namespace adapt::runtime
