// Sequential oracle for the conformance harness: computes, without any
// engine, the byte-exact buffers every rank must end up with.
//
// Input payloads are derived deterministically from CaseConfig::data_seed.
// Reduction inputs are drawn so results are exact in every datatype — sums
// use small integers (exactly representable in float/double, so the fold is
// associative in practice, matching ADAPT's combine-in-arrival-order), and
// products use {1, 2} to stay far from overflow/rounding.
#pragma once

#include <optional>
#include <vector>

#include "src/verify/conformance.hpp"

namespace adapt::verify {

/// Initial and expected buffer contents for one case, indexed by LOCAL rank.
struct CaseIo {
  /// What each rank starts with (the collective's input buffer; empty when
  /// the rank contributes nothing, e.g. non-root scatter senders).
  std::vector<std::vector<std::byte>> inputs;
  /// Expected final contents of each rank's observable output buffer;
  /// nullopt where the collective leaves the buffer unspecified (e.g.
  /// non-root buffers after a reduce are clobbered scratch).
  std::vector<std::optional<std::vector<std::byte>>> expected;
};

/// Builds inputs and expected outputs for `config`. The fold for
/// reduce/allreduce applies mpi::apply sequentially in rank order — the
/// reference any schedule must reproduce bit-for-bit.
CaseIo make_io(const CaseConfig& config);

/// Fills `buf` with values valid for (dtype, op) reductions, drawn from
/// `rng` (see file comment for the exactness rules).
void fill_reduce_operand(std::vector<std::byte>& buf, mpi::Datatype dtype,
                         mpi::ReduceOp op, Rng& rng);

}  // namespace adapt::verify
