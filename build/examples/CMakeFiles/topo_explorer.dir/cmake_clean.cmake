file(REMOVE_RECURSE
  "CMakeFiles/topo_explorer.dir/topo_explorer.cpp.o"
  "CMakeFiles/topo_explorer.dir/topo_explorer.cpp.o.d"
  "topo_explorer"
  "topo_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topo_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
