#include "src/support/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace adapt {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kOff};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kOff: break;
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

namespace detail {

void log_line(LogLevel level, const std::string& line) {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[adapt %s] %s\n", level_name(level), line.c_str());
}

}  // namespace detail
}  // namespace adapt
