file(REMOVE_RECURSE
  "CMakeFiles/asp.dir/asp.cpp.o"
  "CMakeFiles/asp.dir/asp.cpp.o.d"
  "asp"
  "asp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
