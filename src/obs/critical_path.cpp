#include "src/obs/critical_path.hpp"

#include <algorithm>
#include <vector>

#include "src/support/error.hpp"

namespace adapt::obs {

namespace {

/// One candidate explanation: a record that ends at `t_end` on some rank.
struct Candidate {
  TimeNs t_end = 0;
  bool is_cpu = false;
  std::size_t index = 0;  ///< into cpu_tasks() or transfers()
};

}  // namespace

Attribution critical_path(const Recorder& recorder, Rank final_rank,
                          TimeNs end_time) {
  const auto& cpu = recorder.cpu_tasks();
  const auto& xfers = recorder.transfers();

  // Per-rank candidate lists, sorted by t_end so the walk can binary-search
  // "latest record ending at or before t". CPU records sort after transfers
  // at equal times: the downstream effect (a completion callback, a recv
  // finalisation) is explained before the transfer that caused it.
  Rank max_rank = final_rank;
  for (const CpuRec& c : cpu) max_rank = std::max(max_rank, c.rank);
  for (const TransferRec& x : xfers) max_rank = std::max(max_rank, x.dst);
  ADAPT_CHECK(final_rank >= 0);

  std::vector<std::vector<Candidate>> by_rank(
      static_cast<std::size_t>(max_rank) + 1);
  for (std::size_t i = 0; i < cpu.size(); ++i) {
    by_rank[static_cast<std::size_t>(cpu[i].rank)].push_back(
        Candidate{cpu[i].t_end, true, i});
  }
  for (std::size_t i = 0; i < xfers.size(); ++i) {
    const TransferRec& x = xfers[i];
    if (!x.done || !x.delivered || x.dst < 0) continue;
    by_rank[static_cast<std::size_t>(x.dst)].push_back(
        Candidate{x.t_end, false, i});
  }
  for (auto& lst : by_rank) {
    std::stable_sort(lst.begin(), lst.end(),
                     [](const Candidate& a, const Candidate& b) {
                       if (a.t_end != b.t_end) return a.t_end < b.t_end;
                       return !a.is_cpu && b.is_cpu;
                     });
  }

  // Merged per-source streaming intervals. A transfer's post->active wait
  // that overlaps an earlier same-source stream is serial-transmit queueing:
  // the sender is pushing bytes ahead of ours at link rate, so that slice of
  // the wait is bandwidth-bound (beta), not startup latency (alpha).
  Rank max_src = 0;
  for (const TransferRec& x : xfers) max_src = std::max(max_src, x.src);
  std::vector<std::vector<std::pair<TimeNs, TimeNs>>> streaming(
      static_cast<std::size_t>(max_src) + 1);
  for (const TransferRec& x : xfers) {
    if (x.src < 0 || x.t_active < 0 || x.t_end <= x.t_active) continue;
    streaming[static_cast<std::size_t>(x.src)].emplace_back(x.t_active,
                                                            x.t_end);
  }
  for (auto& ivals : streaming) {
    std::sort(ivals.begin(), ivals.end());
    std::size_t out = 0;
    for (const auto& iv : ivals) {
      if (out > 0 && iv.first <= ivals[out - 1].second) {
        ivals[out - 1].second = std::max(ivals[out - 1].second, iv.second);
      } else {
        ivals[out++] = iv;
      }
    }
    ivals.resize(out);
  }
  const auto queued_in = [&streaming](Rank src, TimeNs a, TimeNs b) {
    TimeNs overlap = 0;
    const auto& ivals = streaming[static_cast<std::size_t>(src)];
    auto it = std::upper_bound(
        ivals.begin(), ivals.end(), a,
        [](TimeNs v, const std::pair<TimeNs, TimeNs>& iv) {
          return v < iv.second;
        });
    for (; it != ivals.end() && it->first < b; ++it) {
      overlap += std::min(b, it->second) - std::max(a, it->first);
    }
    return overlap;
  };
  // Each record explains at most one slice of the path; consuming from the
  // back of the sorted list guarantees the walk terminates.
  std::vector<std::size_t> next_from(by_rank.size());
  for (std::size_t r = 0; r < by_rank.size(); ++r)
    next_from[r] = by_rank[r].size();
  std::vector<char> cpu_used(cpu.size(), 0);
  std::vector<char> xfer_used(xfers.size(), 0);

  Attribution attr;
  attr.end = end_time;
  attr.end_rank = final_rank;

  Rank rank = final_rank;
  TimeNs t = end_time;
  const std::size_t step_limit = cpu.size() + xfers.size() + 1;
  for (std::size_t step = 0; step < step_limit && t > 0; ++step) {
    auto& lst = by_rank[static_cast<std::size_t>(rank)];
    auto& cursor = next_from[static_cast<std::size_t>(rank)];
    // Latest unused candidate with t_end <= t.
    const Candidate* best = nullptr;
    std::size_t pos = std::min(
        cursor, static_cast<std::size_t>(
                    std::upper_bound(lst.begin(), lst.end(), t,
                                     [](TimeNs v, const Candidate& c) {
                                       return v < c.t_end;
                                     }) -
                    lst.begin()));
    while (pos > 0) {
      const Candidate& c = lst[pos - 1];
      const bool used =
          c.is_cpu ? cpu_used[c.index] != 0 : xfer_used[c.index] != 0;
      if (!used) {
        best = &c;
        break;
      }
      --pos;
    }
    if (best == nullptr) {
      attr.other += t;  // nothing left to explain: program start
      t = 0;
      break;
    }
    cursor = pos - 1;
    if (best->t_end < t) {
      attr.other += t - best->t_end;
      t = best->t_end;
    }
    if (best->is_cpu) {
      const CpuRec& c = cpu[best->index];
      cpu_used[best->index] = 1;
      attr.compute += c.t_end - c.t_start;
      attr.noise += c.t_start - c.t_ready;
      t = c.t_ready;
    } else {
      const TransferRec& x = xfers[best->index];
      xfer_used[best->index] = 1;
      const TimeNs stream = x.t_end - x.t_active;
      const TimeNs ideal = std::min(x.ideal, stream);
      attr.beta += ideal;
      attr.contention += stream - ideal;
      const TimeNs wait = x.t_active - x.t_post;
      const TimeNs queued =
          (x.src >= 0 && wait > 0) ? queued_in(x.src, x.t_post, x.t_active)
                                   : 0;
      attr.beta += queued;
      attr.alpha += wait - queued;
      ++attr.hops;
      rank = x.src;
      t = x.t_post;
    }
  }
  attr.other += t;  // walk exhausted with time left (shouldn't happen)
  return attr;
}

}  // namespace adapt::obs
