// Minimal fork-join parallelism for independent deterministic runs.
//
// The conformance/chaos matrices and the figure-bench sweeps execute many
// fully independent SimEngine runs: every run owns its engine, its RNGs, and
// its buffers, and produces a bit-reproducible result regardless of when or
// where it executes. parallel_for fans such runs across worker threads —
// wall clock drops by roughly the core count, while every per-run result
// stays identical to the sequential run by construction. Callers keep
// determinism of the *aggregate* by writing results into per-index slots and
// merging in index order afterwards (never in completion order).
#pragma once

#include <functional>

namespace adapt::support {

/// std::thread::hardware_concurrency with a floor of 1.
int hardware_jobs();

/// Invokes fn(0) .. fn(n-1), each exactly once, across up to `jobs` threads
/// (the caller participates as one of them). jobs <= 1 runs inline in index
/// order. fn must be safe to call concurrently for distinct indices. If any
/// invocation throws, all indices still get claimed-or-finished, and the
/// exception from the lowest-indexed failing invocation is rethrown — the
/// same one a sequential loop that kept going would surface first.
void parallel_for(int jobs, int n, const std::function<void(int)>& fn);

}  // namespace adapt::support
