// Standalone guideline-verification driver (registered with ctest as
// `verify_guidelines`).
//
// Default run, in order:
//   1. the guideline sweep — every (machine × ranks × op × message size)
//      case checked against the five performance guidelines in
//      src/verify/guidelines.hpp, each verified on SIMULATED times (the
//      tuner's analytical model never certifies itself);
//   2. a harness self-test — one check re-run with an impossible tolerance
//      MUST produce a violation whose repro line parses and replays,
//      proving the reporting/shrinking/replay machinery is live.
//
// A wall-clock watchdog guards every run, in the verify_conformance style:
// a hung simulation prints the exact repro line of the stuck check and
// exits 3 instead of hanging CI.
//
// A reported failure line is replayable:  verify_guidelines --repro '<line>'.
// --artifacts=DIR writes the sweep's decision tables (JSON) and any failure
// reproducers into DIR for CI upload.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>

#include "src/support/parallel.hpp"
#include "src/verify/guidelines.hpp"

namespace {

using namespace adapt;
using namespace adapt::verify;

int usage() {
  std::cerr
      << "usage: verify_guidelines [--model-tol=X] [--tol=X] [--no-shrink]\n"
         "                         [--no-selftest]\n"
         "                         [--watchdog=SECONDS]  (0 disables)\n"
         "                         [--jobs=N]  (0 = all hardware threads)\n"
         "                         [--artifacts=DIR]\n"
         "                         [--repro '<failure line>']\n"
         "--jobs: fan cases across N worker threads. Every check is an\n"
         "independent deterministic simulation, so the report is identical\n"
         "for any N; only wall clock changes.\n"
         "--artifacts: write decision-tables.json and failures.txt into DIR\n"
         "(created by the caller) for CI artifact upload.\n";
  return 2;
}

/// Wall-clock deadman switch (see verify_conformance.cpp): every check
/// publishes its repro line before it starts; if no check finishes for
/// `limit` seconds the watchdog prints that line and hard-exits 3.
class Watchdog {
 public:
  explicit Watchdog(long limit_seconds) : limit_(limit_seconds) {
    if (limit_ > 0) thread_ = std::thread([this] { loop(); });
  }
  ~Watchdog() {
    stop_.store(true);
    if (thread_.joinable()) thread_.join();
  }

  void tick(const std::string& repro) {
    std::lock_guard<std::mutex> lock(mutex_);
    current_ = repro;
    last_ = std::chrono::steady_clock::now();
  }

 private:
  void loop() {
    while (!stop_.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
      std::lock_guard<std::mutex> lock(mutex_);
      const auto stuck = std::chrono::steady_clock::now() - last_;
      if (stuck > std::chrono::seconds(limit_)) {
        std::cerr << "WATCHDOG: a check exceeded " << limit_
                  << "s of wall clock; likely deadlocked.\n  repro: "
                  << (current_.empty() ? "<none started>" : current_) << "\n";
        std::_Exit(3);
      }
    }
  }

  const long limit_;
  std::atomic<bool> stop_{false};
  std::mutex mutex_;
  std::string current_;
  std::chrono::steady_clock::time_point last_ =
      std::chrono::steady_clock::now();
  std::thread thread_;
};

int replay(const std::string& line, const GuidelineOptions& options) {
  GuidelineCase config;
  Guideline g = Guideline::kModelSim;
  if (!parse_guideline_repro(line, &config, &g)) {
    std::cerr << "unparseable repro line: " << line << "\n";
    return 2;
  }
  std::cout << "replaying: " << guideline_repro(config, g) << "\n";
  long sim_runs = 0;
  if (auto detail = check_guideline(config, g, options, &sim_runs)) {
    std::cout << "REPRODUCED (" << sim_runs << " sim runs): " << *detail
              << "\n";
    return 1;
  }
  std::cout << "guideline holds (" << sim_runs
            << " sim runs; violation not reproduced)\n";
  return 0;
}

/// Self-test: an impossible model tolerance must yield a violation whose
/// repro line round-trips through the parser and replays to the same
/// verdict. A harness that cannot fail cannot certify anything.
bool selftest(Watchdog& watchdog) {
  GuidelineCase config;
  config.cluster = "cori";
  config.nodes = 1;
  config.ranks = 8;
  config.op = tune::Op::kBcast;
  config.bytes = kib(128);

  GuidelineOptions impossible;
  impossible.model_tolerance = -1.0;  // err >= 0 can never satisfy this
  impossible.shrink = false;
  watchdog.tick("selftest: " + guideline_repro(config, Guideline::kModelSim));

  GuidelineReport report =
      run_guidelines({config}, [&] {
        GuidelineOptions o = impossible;
        o.on_run = [&](const std::string& r) { watchdog.tick(r); };
        return o;
      }());
  const auto it = std::find_if(
      report.failures.begin(), report.failures.end(),
      [](const GuidelineFailure& f) {
        return f.guideline == Guideline::kModelSim;
      });
  if (it == report.failures.end()) {
    std::cout << "SELF-TEST FAILED: impossible tolerance produced no "
                 "model-sim violation\n";
    return false;
  }
  GuidelineCase parsed;
  Guideline parsed_g = Guideline::kTunedBest;
  if (!parse_guideline_repro(it->repro, &parsed, &parsed_g) ||
      parsed_g != Guideline::kModelSim) {
    std::cout << "SELF-TEST FAILED: repro line does not round-trip: "
              << it->repro << "\n";
    return false;
  }
  if (!check_guideline(parsed, parsed_g, impossible)) {
    std::cout << "SELF-TEST FAILED: replayed repro did not reproduce: "
              << it->repro << "\n";
    return false;
  }
  std::cout << "self-test: harness reported, round-tripped and replayed a "
               "forced violation\n  repro: "
            << it->repro << "\n";
  return true;
}

bool write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  out << text;
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  GuidelineOptions options;
  bool run_selftest = true;
  long watchdog_seconds = 120;
  std::string artifacts;
  std::string repro_line;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--model-tol=", 0) == 0) {
      options.model_tolerance = std::stod(arg.substr(12));
    } else if (arg.rfind("--tol=", 0) == 0) {
      options.sim_tolerance = std::stod(arg.substr(6));
    } else if (arg == "--no-shrink") {
      options.shrink = false;
    } else if (arg == "--no-selftest") {
      run_selftest = false;
    } else if (arg.rfind("--watchdog=", 0) == 0) {
      watchdog_seconds = std::stol(arg.substr(11));
    } else if (arg.rfind("--jobs=", 0) == 0) {
      options.jobs = std::stoi(arg.substr(7));
      if (options.jobs <= 0) options.jobs = support::hardware_jobs();
    } else if (arg.rfind("--artifacts=", 0) == 0) {
      artifacts = arg.substr(12);
    } else if (arg == "--repro" && i + 1 < argc) {
      repro_line = argv[++i];
    } else {
      return usage();
    }
  }
  if (!repro_line.empty()) return replay(repro_line, options);

  Watchdog watchdog(watchdog_seconds);
  options.log = [](const std::string& line) { std::cerr << line << "\n"; };
  options.on_run = [&](const std::string& repro) { watchdog.tick(repro); };

  const std::vector<GuidelineCase> cases = guideline_sweep();
  std::cout << "guideline sweep: " << cases.size()
            << " cases, model tolerance " << options.model_tolerance
            << ", sim tolerance " << options.sim_tolerance << "\n";
  const GuidelineReport report = run_guidelines(cases, options);
  std::cout << report.summary() << "\n";

  if (!artifacts.empty()) {
    const std::string tables = dump_decision_tables(cases);
    if (!write_file(artifacts + "/decision-tables.json", tables))
      std::cerr << "warning: could not write " << artifacts
                << "/decision-tables.json\n";
    std::string lines;
    for (const GuidelineFailure& f : report.failures)
      lines += f.repro + "\n  " + f.detail + "\n";
    if (!report.failures.empty() &&
        !write_file(artifacts + "/failures.txt", lines))
      std::cerr << "warning: could not write " << artifacts
                << "/failures.txt\n";
  }

  if (!report.ok()) {
    std::cout << "replay any line with: verify_guidelines --repro '<line>'\n";
    return 1;
  }
  if (run_selftest && !selftest(watchdog)) return 1;

  std::cout << "OK\n";
  return 0;
}
