// Post-hoc trace analysis: load a written trace export back into typed
// records, then summarize one run, filter its events, or diff two runs.
//
// The loader is the exact inverse of write_trace_json for this repo's own
// exporter output (it is not a general Perfetto reader). Everything the
// critical-path walk consumes round-trips: collective/task/protocol spans
// and instants, CPU occupations (a "noise-stall" span ending where a "cpu"
// span starts on the same track is folded back into one CpuRec), transfer
// begin/end pairs with their alpha/ideal/stretch args, and link flow
// counters. Per-type record order follows file order, which the exporter
// writes in append order — so critical_path() over a loaded trace returns
// exactly the attribution of the original run (pinned in trace_query_test).
//
// The analyses behind the adapt-trace CLI:
//   * summarize — per-collective latency percentiles and critical-path
//     attribution, per-link utilization, tuner model-vs-simulated rollups,
//     instant counts by kind;
//   * query — filter spans/instants by rank, category, name substring and
//     time window;
//   * diff — align two same-seed (or cross-build) runs by collective name
//     and span occurrence, attribute the end-to-end delta to
//     alpha/beta/compute/contention/noise per collective, and report the
//     top regressed spans.
//
// All output is deterministic: integer virtual-time arithmetic only, sorted
// containers, no floating-point accumulation in anything that is compared.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "src/obs/critical_path.hpp"
#include "src/obs/trace.hpp"

namespace adapt::obs {

/// A trace export loaded back into Recorder records.
struct LoadedTrace {
  Recorder recorder;     ///< plain (unbounded) recorder holding the records
  TimeNs end_time = 0;   ///< latest record end in the trace
  int nranks = 0;        ///< ranks with a process_name metadata row
};

/// Parses one exported trace document. Throws adapt::Error on malformed
/// input or a document this exporter did not write.
LoadedTrace load_trace_json(const std::string& text);
LoadedTrace load_trace_file(const std::string& path);

/// Inverse of cat_name(); nullopt for an unknown category string.
std::optional<Cat> cat_from_name(const std::string& name);

// -- summarize -------------------------------------------------------------

struct CollStats {
  std::string name;  ///< collective span name, e.g. "bcast/ompi-adapt"
  int count = 0;     ///< spans aggregated (all ranks, all instances)
  TimeNs p50 = 0;
  TimeNs p90 = 0;
  TimeNs p99 = 0;
  TimeNs max = 0;
  Rank slowest = -1;  ///< rank owning the latest-finishing span
  TimeNs end = 0;     ///< latest span end across ranks
  Attribution attr;   ///< critical path from (slowest, end)
};

struct LinkStats {
  int link = 0;
  TimeNs busy = 0;        ///< time with at least one active flow
  std::int64_t peak = 0;  ///< max concurrent flows
};

/// One tuner decision site, grouped by winner (topology + segment). The
/// call sites emit a "tune <winner>" instant carrying the model-predicted
/// time and a matching "tuned <winner>" instant carrying the simulated
/// time, so the model error is measurable from the trace alone.
struct TuneStats {
  std::string winner;
  int decisions = 0;
  std::int64_t predicted_ns = 0;  ///< summed model predictions
  int measured = 0;               ///< completed collectives paired
  std::int64_t actual_ns = 0;     ///< summed simulated times
};

struct Summary {
  TimeNs end_time = 0;
  int nranks = 0;
  std::uint64_t events = 0;
  std::vector<CollStats> collectives;  ///< sorted by name
  std::vector<LinkStats> links;        ///< sorted by link id
  std::vector<TuneStats> tuner;        ///< sorted by winner
  /// Count of instants per "cat/name" label (plan-cache hits, retransmits,
  /// recovery protocol steps, ...), sorted by label.
  std::vector<std::pair<std::string, std::int64_t>> instant_counts;
};

Summary summarize(const LoadedTrace& trace);
void print_summary(const Summary& s, std::ostream& os);

// -- query -----------------------------------------------------------------

struct EventFilter {
  Rank rank = -1;  ///< -1 = any process (including the net fabric)
  std::optional<Cat> cat;
  std::string name;  ///< substring match; empty = any
  TimeNs from = 0;
  TimeNs to = std::numeric_limits<TimeNs>::max();
};

struct QueryHit {
  bool is_span = false;  ///< false = instant (t1 == t0)
  SpanRec rec;
};

/// Spans overlapping and instants inside [from, to], matching every set
/// filter field, ordered by (start time, pid, tid, name). limit 0 = all.
std::vector<QueryHit> query_events(const LoadedTrace& trace,
                                   const EventFilter& filter, int limit = 0);
void print_query(const std::vector<QueryHit>& hits, std::ostream& os);

// -- diff ------------------------------------------------------------------

struct CollDelta {
  std::string name;
  bool in_a = false;
  bool in_b = false;
  TimeNs end_a = 0;
  TimeNs end_b = 0;
  Attribution attr_a;  ///< zero when !in_a
  Attribution attr_b;
};

struct SpanDelta {
  int pid = 0;
  std::string name;
  int occurrence = 0;  ///< n-th span with this (pid, tid, cat, name)
  TimeNs dur_a = 0;
  TimeNs dur_b = 0;
};

struct DiffReport {
  TimeNs end_a = 0;
  TimeNs end_b = 0;
  /// Attribution terms summed over collectives present in both runs; the
  /// `end` field sums the groups' completion times, so for example
  /// (rollup_b.beta - rollup_a.beta) / (rollup_b.end - rollup_a.end) is the
  /// share of the end-to-end delta explained by the β term.
  Attribution rollup_a;
  Attribution rollup_b;
  std::vector<CollDelta> collectives;  ///< sorted by name
  std::vector<SpanDelta> top_spans;    ///< by |dur_b - dur_a|, descending
  int matched_spans = 0;
  int only_a = 0;  ///< spans with no aligned partner in b
  int only_b = 0;
};

DiffReport diff_traces(const LoadedTrace& a, const LoadedTrace& b,
                       int top = 10);
void print_diff(const DiffReport& r, std::ostream& os);

}  // namespace adapt::obs
