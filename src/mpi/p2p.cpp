#include "src/mpi/p2p.hpp"

#include <memory>

namespace adapt::mpi {

sim::Task<std::size_t> wait_any(std::vector<RequestPtr> requests) {
  ADAPT_CHECK(!requests.empty());
  auto first_done = [&]() -> std::size_t {
    for (std::size_t i = 0; i < requests.size(); ++i)
      if (requests[i] && requests[i]->complete()) return i;
    return requests.size();
  };
  if (const std::size_t i = first_done(); i < requests.size()) co_return i;

  // One-shot wake: the first completion schedules the resume on the main
  // thread; later completions find the trigger fired and do nothing.
  auto any = std::make_shared<sim::Trigger>();
  co_await sim::Suspend([&](std::coroutine_handle<> h) {
    for (auto& request : requests) {
      if (!request) continue;
      request->done().subscribe([any, request, h] {
        if (any->fired()) return;
        any->fire();
        detail::wake_on_main(request, h);
      });
    }
  });
  const std::size_t i = first_done();
  ADAPT_CHECK(i < requests.size()) << "wait_any woke with nothing complete";
  detail::throw_if_failed(requests[i]);
  co_return i;
}

}  // namespace adapt::mpi
