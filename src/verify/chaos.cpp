#include "src/verify/chaos.hpp"

#include <sstream>

#include "src/support/error.hpp"
#include "src/support/rng.hpp"

namespace adapt::verify {

net::FaultPlan make_chaos_plan(ChaosClass chaos, std::uint64_t seed,
                               const std::vector<Rank>& members, int world) {
  net::FaultPlan plan;
  if (chaos == ChaosClass::kOff) return plan;
  // Distinct streams per class so soft/kill with the same seed draw
  // different schedules; `world` keeps plans distinct when a shrink pass
  // changes the engine size without changing the member count.
  Rng rng(SplitMix64(seed * 4 + static_cast<std::uint64_t>(chaos) +
                     static_cast<std::uint64_t>(world) * 0x10001ULL)
              .next());
  plan.seed = rng.next_u64() | 1;
  plan.drop = 0.05 + 0.20 * rng.next_double();
  plan.corrupt = 0.10 * rng.next_double();
  plan.max_delay = rng.next_time(0, microseconds(20));

  const std::size_t n = members.size();
  net::FaultPlan::Outage outage;
  const std::size_t a = rng.next_below(n);
  std::size_t b = rng.next_below(n - 1);
  if (b >= a) ++b;  // distinct pair, uniform over ordered pairs
  outage.a = members[a];
  outage.b = members[b];
  outage.from = rng.next_time(0, milliseconds(2));
  outage.until =
      outage.from + rng.next_time(microseconds(100), milliseconds(10));
  plan.outages.push_back(outage);

  if (chaos == ChaosClass::kKill) {
    net::FaultPlan::Death death;
    death.rank = members[rng.next_below(n)];
    death.at = rng.next_time(0, milliseconds(1));
    plan.deaths.push_back(death);
  }
  return plan;
}

mpi::ReliabilityConfig chaos_reliability() {
  mpi::ReliabilityConfig config;
  config.ack_timeout = microseconds(100);
  config.per_byte = 2;
  config.backoff = 2.0;
  // Full backoff over 6 retries gives up after ~13ms for control frames and
  // ~38ms for the largest rendezvous bulk — well inside the 200ms
  // local-detection deadline, so a true partition always escalates to the
  // job-wide abort before the watchdog has to guess.
  config.max_retries = 6;
  return config;
}

std::vector<CaseConfig> chaos_matrix() {
  std::vector<CaseConfig> cases;
  std::uint64_t seed = 1000;  // disjoint from full_matrix's payload seeds
  const auto add = [&](CaseConfig c) {
    c.world = 8;
    c.data_seed = seed++;
    cases.push_back(std::move(c));
  };
  const coll::Style styles[] = {coll::Style::kBlocking,
                                coll::Style::kNonblocking,
                                coll::Style::kAdapt};
  for (const auto style : styles) {
    CaseConfig b;
    b.collective = Collective::kBcast;
    b.style = style;
    b.root = 1;
    b.bytes = 3000;
    b.segment = 256;
    add(b);
    CaseConfig r;
    r.collective = Collective::kReduce;
    r.style = style;
    r.dtype = mpi::Datatype::kInt32;
    r.op = mpi::ReduceOp::kSum;
    r.root = 0;
    r.bytes = 2048;
    r.segment = 256;
    add(r);
  }
  {
    CaseConfig c;  // rendezvous-sized ADAPT pipeline: bulk-frame retransmits
    c.collective = Collective::kBcast;
    c.style = coll::Style::kAdapt;
    c.root = 0;
    c.bytes = kib(192);
    c.segment = kib(96);
    add(c);
  }
  {
    CaseConfig c;
    c.collective = Collective::kAllreduce;
    c.style = coll::Style::kAdapt;
    c.dtype = mpi::Datatype::kInt32;
    c.op = mpi::ReduceOp::kSum;
    c.root = 0;
    c.bytes = 2048;
    c.segment = 256;
    add(c);
  }
  for (const auto collective : {Collective::kScatter, Collective::kGather,
                                Collective::kAllgather, Collective::kBarrier}) {
    CaseConfig c;
    c.collective = collective;
    c.root = 2;
    c.bytes = 512;
    add(c);
  }
  {
    CaseConfig c;  // a library personality end to end under faults
    c.collective = Collective::kLibBcast;
    c.library = "ompi-adapt";
    c.root = 1;
    c.bytes = kib(160);
    add(c);
  }
  // HAN two-level rows on the han_cluster machine (world 8 × ppn 2 =
  // 4 nodes). On the kEven comm every member is alone on its node, so every
  // member is a node leader — ANY kKill death is a leader killed
  // mid-collective, exactly the hole two-level designs historically leak
  // through (a dead leader orphans its whole node's subtree). The
  // world-comm rows mix leader and non-leader deaths, on a scrambled
  // placement so the orphaned subtree is not rank-contiguous. The uniform-
  // error-or-byte-exact contract must hold either way.
  {
    CaseConfig c;
    c.collective = Collective::kBcast;
    c.style = coll::Style::kAdapt;
    c.ppn = 2;
    c.tree = TreeChoice::kHan;
    c.comm = CommKind::kEven;
    c.root = 1;
    c.bytes = 3000;
    c.segment = 256;
    add(c);
  }
  {
    CaseConfig c;
    c.collective = Collective::kReduce;
    c.style = coll::Style::kAdapt;
    c.dtype = mpi::Datatype::kInt32;
    c.op = mpi::ReduceOp::kSum;
    c.ppn = 2;
    c.tree = TreeChoice::kHan;
    c.comm = CommKind::kEven;
    c.root = 0;
    c.bytes = 2048;
    c.segment = 256;
    add(c);
  }
  {
    CaseConfig c;
    c.collective = Collective::kBcast;
    c.style = coll::Style::kAdapt;
    c.ppn = 2;
    c.rankmap = RankMap::kStrided;
    c.tree = TreeChoice::kHan;
    c.root = 1;
    c.bytes = 3000;
    c.segment = 256;
    add(c);
  }
  {
    CaseConfig c;
    c.collective = Collective::kAllreduce;
    c.style = coll::Style::kAdapt;
    c.dtype = mpi::Datatype::kInt32;
    c.op = mpi::ReduceOp::kSum;
    c.ppn = 2;
    c.rankmap = RankMap::kReversed;
    c.tree = TreeChoice::kHan;
    c.root = 0;
    c.bytes = 2048;
    c.segment = 256;
    add(c);
  }
  {
    CaseConfig c;  // the ompi-han personality end to end under faults
    c.collective = Collective::kLibBcast;
    c.library = "ompi-han";
    c.ppn = 2;
    c.rankmap = RankMap::kRandom;
    c.root = 1;
    c.bytes = kib(160);
    add(c);
  }

  // Persistent handles through the fault fabric: retransmits and rank
  // deaths must hit mid-start, and every start must individually satisfy
  // the uniform-error-or-byte-exact contract (rounds the whole job finished
  // before the failure stay byte-exact; the failing round reports one code
  // on every live rank — see run_case's persistent chaos classification).
  {
    CaseConfig c;
    c.collective = Collective::kBcast;
    c.persistent = true;
    c.root = 1;
    c.bytes = 3000;
    c.segment = 256;
    add(c);
  }
  {
    CaseConfig c;
    c.collective = Collective::kReduce;
    c.persistent = true;
    c.dtype = mpi::Datatype::kInt32;
    c.op = mpi::ReduceOp::kSum;
    c.root = 0;
    c.bytes = 2048;
    c.segment = 256;
    add(c);
  }
  {
    CaseConfig c;
    c.collective = Collective::kAllreduce;
    c.persistent = true;
    c.dtype = mpi::Datatype::kInt32;
    c.op = mpi::ReduceOp::kSum;
    c.root = 0;
    c.bytes = 2048;
    c.segment = 256;
    add(c);
  }
  {
    CaseConfig c;
    c.collective = Collective::kBarrier;
    c.persistent = true;
    c.root = 2;
    add(c);
  }
  {
    CaseConfig c;  // partitioned persistent bcast under faults
    c.collective = Collective::kBcast;
    c.persistent = true;
    c.partitions = 4;
    c.root = 0;
    c.bytes = 4096;
    c.segment = 256;
    add(c);
  }
  return cases;
}

Report run_chaos_matrix(const std::vector<CaseConfig>& cases,
                        const ChaosOptions& options) {
  ADAPT_CHECK(options.wd_detect > 0 && options.wd_detect < options.wd_quiesce &&
              options.wd_quiesce < options.wd_bomb)
      << "chaos watchdog cascade must be strictly increasing";
  detail::MatrixDriver driver;
  driver.jobs = options.jobs;
  driver.fault = options.fault;
  driver.shrink = options.shrink;
  driver.trace_dir = options.trace_dir;
  driver.log = options.log;
  driver.on_run = options.on_run;
  driver.progress_label = "chaos";
  driver.progress_every = 4;
  return detail::run_case_matrix(
      cases,
      [&](const CaseConfig&) {
        std::vector<RunSpec> specs;
        const auto add_specs = [&](ChaosClass cls, int count) {
          for (int s = 1; s <= count; ++s) {
            RunSpec spec;
            spec.engine = EngineKind::kSim;
            spec.chaos = cls;
            spec.chaos_seed = static_cast<std::uint64_t>(s);
            spec.wd_detect = options.wd_detect;
            spec.wd_quiesce = options.wd_quiesce;
            spec.wd_bomb = options.wd_bomb;
            specs.push_back(spec);
            if (options.perturb) {
              // Fault fates are schedule-independent by construction, so the
              // same plan must classify identically under event-queue jitter.
              spec.perturb_seed = static_cast<std::uint64_t>(s);
              spec.jitter = microseconds(2);
              specs.push_back(spec);
            }
          }
        };
        add_specs(ChaosClass::kSoft, options.soft_seeds);
        add_specs(ChaosClass::kKill, options.kill_seeds);
        return specs;
      },
      driver);
}

}  // namespace adapt::verify
