# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/topo_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/mpi_test[1]_include.cmake")
include("/root/repo/build/tests/tree_test[1]_include.cmake")
include("/root/repo/build/tests/coll_test[1]_include.cmake")
include("/root/repo/build/tests/moreops_test[1]_include.cmake")
include("/root/repo/build/tests/thread_engine_test[1]_include.cmake")
include("/root/repo/build/tests/noise_test[1]_include.cmake")
include("/root/repo/build/tests/gpu_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/adapt_invariants_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/protocol_test[1]_include.cmake")
