// Tiny JSON helpers shared by the trace exporter, the bench --json reports,
// and the tuner's decision-table persistence. Emission is string-based;
// parsing returns a small DOM (JsonValue) — enough for the repo's own
// machine-readable artifacts, not a general-purpose JSON library.
#pragma once

#include <map>
#include <string>
#include <variant>
#include <vector>

namespace adapt {

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included). Control characters become \u00XX.
std::string json_escape(const std::string& s);

/// `"escaped"` with the quotes.
std::string json_quote(const std::string& s);

/// Parsed JSON document node. Numbers are kept as double (the repo's own
/// artifacts stay well inside the 2^53 exact-integer range).
class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue>;

  JsonValue() : value_(nullptr) {}
  JsonValue(std::nullptr_t) : value_(nullptr) {}
  JsonValue(bool b) : value_(b) {}
  JsonValue(double d) : value_(d) {}
  JsonValue(std::string s) : value_(std::move(s)) {}
  JsonValue(Array a) : value_(std::move(a)) {}
  JsonValue(Object o) : value_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_number() const { return std::holds_alternative<double>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<Array>(value_); }
  bool is_object() const { return std::holds_alternative<Object>(value_); }

  // Typed accessors; throw adapt::Error on a type mismatch.
  bool as_bool() const;
  double as_number() const;
  std::int64_t as_int() const;  ///< as_number, checked integral
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Object member access; throws when not an object or the key is absent.
  const JsonValue& at(const std::string& key) const;
  bool has(const std::string& key) const;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> value_;
};

/// Parses one complete JSON document (trailing whitespace allowed, trailing
/// garbage is an error). Throws adapt::Error with a byte offset on malformed
/// input.
JsonValue parse_json(const std::string& text);

}  // namespace adapt
