// HAN-style two-level collectives (Open MPI coll/han; ROADMAP's "biggest
// lever for realistic large-node topologies").
//
// Each collective is split into an intra-node stage over the first-class SHM
// channel and an inter-node stage over elected node leaders — but unlike the
// sequential multi-communicator baseline (hierarchical.hpp, paper §3.1), both
// stages live in ONE spanning tree over ONE communicator and run under the
// event-driven kAdapt style. A leader's arrival callback forwards segment k
// intra-node while segment k+1 is still in flight inter-node, so the levels
// overlap at segment granularity (the paper's §3.2 contrast).
//
// The grouping is by the machine's rank→node mapping, NOT by rank index, so
// the schedule stays correct under arbitrary reordered placements (reversed,
// cyclic, random bindings) — the regression two-level designs historically
// get wrong. Leader election: the root leads its own node; every other node
// is led by its first member in communicator order.
#pragma once

#include "src/coll/coll.hpp"
#include "src/coll/tree.hpp"
#include "src/mpi/comm.hpp"
#include "src/topo/hardware.hpp"

namespace adapt::coll {

struct HanSpec {
  TreeKind inter_node = TreeKind::kBinomial;  ///< shape over node leaders
  TreeKind intra_node = TreeKind::kKNomial;   ///< shape within each node
  int radix = 4;
  /// kAdapt is what realises the segment-level overlap between levels; the
  /// other styles are accepted for differential testing.
  Style style = Style::kAdapt;
  CollOpts opts;
};

/// The node decomposition of a communicator: per-node sub-communicators (via
/// mpi::Comm::split_by on the machine's node mapping) and the leader
/// communicator. Deterministic on every rank.
struct HanGroups {
  std::vector<mpi::Comm> nodes;  ///< one comm per occupied node, node order
  mpi::Comm leaders{std::vector<Rank>{0}};  ///< elected leaders (global)
};

HanGroups han_groups(const mpi::Comm& comm, const topo::Machine& machine,
                     Rank root);

/// Builds the fused two-level spanning tree over the local ranks of `comm`:
/// an `inter_node` shape over the node leaders merged with one `intra_node`
/// shape per node, leaders gluing the levels. Upper-level edges come first in
/// each leader's child list so inter-node transfers start earliest.
Tree build_han_tree(const topo::Machine& machine, const mpi::Comm& comm,
                    Rank root, const HanSpec& spec = {});

/// Two-level broadcast with segment-level overlap between the levels.
sim::Task<> han_bcast(runtime::Context& ctx, const mpi::Comm& comm,
                      mpi::MutView buffer, Rank root,
                      const topo::Machine& machine, const HanSpec& spec = {});

/// Two-level reduce: intra-node partials flow to leaders while the leaders'
/// inter-node edges already forward earlier segments.
sim::Task<> han_reduce(runtime::Context& ctx, const mpi::Comm& comm,
                       mpi::MutView accum, mpi::ReduceOp op,
                       mpi::Datatype dtype, Rank root,
                       const topo::Machine& machine, const HanSpec& spec = {});

/// Two-level allreduce: han_reduce to `root` 0 chained into han_bcast.
sim::Task<> han_allreduce(runtime::Context& ctx, const mpi::Comm& comm,
                          mpi::MutView accum, mpi::ReduceOp op,
                          mpi::Datatype dtype, const topo::Machine& machine,
                          const HanSpec& spec = {});

}  // namespace adapt::coll
