// Noise study: watch the paper's central claim happen.
//
// Runs the same 4 MB broadcast on a simulated 256-rank cluster with the three
// implementation styles (blocking / nonblocking+Waitall / ADAPT event-driven)
// over the SAME topology-aware tree, sweeping injected noise, and prints how
// much each design amplifies it (§2's analysis, Fig. 7's experiment at
// example scale).
//
// A second table breaks the 10%-duty injection down per style: of all the
// CPU time the noise stole, how much was ABSORBED (fired while the main
// thread was idle anyway, waiting on the network) versus PROPAGATED (held up
// work the main thread wanted to run — the part that synchronisation
// dependencies then amplify). The split comes from the obs metrics layer's
// per-rank noise_wait_ns counter.
//
//   ./noise_study [--ranks 256] [--msg BYTES] [--iters 12]
#include <iostream>
#include <memory>
#include <string>

#include "src/bench/imb.hpp"
#include "src/coll/coll.hpp"
#include "src/coll/topo_tree.hpp"
#include "src/obs/trace.hpp"
#include "src/runtime/sim_engine.hpp"
#include "src/support/table.hpp"
#include "src/topo/presets.hpp"

using namespace adapt;

int main(int argc, char** argv) {
  int ranks = 256;
  Bytes msg = mib(4);
  int iters = 64;  // the loop must span several 100 ms noise periods
  for (int i = 1; i + 1 < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--ranks") ranks = std::atoi(argv[i + 1]);
    if (arg == "--msg") msg = std::atoll(argv[i + 1]);
    if (arg == "--iters") iters = std::atoi(argv[i + 1]);
  }

  topo::Machine machine(topo::cori((ranks + 31) / 32), ranks);
  const mpi::Comm world = mpi::Comm::world(ranks);
  const coll::Tree tree = coll::build_topo_tree(machine, world, 0);

  std::cout << "Same tree, same message (" << format_bytes(msg) << ", "
            << ranks << " ranks) — only the synchronisation style differs.\n"
            << "Noise: uniform bursts at 10 Hz on every rank's application "
               "thread.\n\n";

  Table table({"style", "no-noise(ms)", "5%-noise(ms)", "10%-noise(ms)",
               "amplification@10%"});
  Table absorption({"style", "injected(ms)", "propagated(ms)", "absorbed(ms)",
                    "absorbed-share"});
  for (coll::Style style : {coll::Style::kBlocking, coll::Style::kNonblocking,
                            coll::Style::kAdapt}) {
    double results[3];
    int idx = 0;
    for (int duty : {0, 5, 10}) {
      runtime::SimEngineOptions options;
      options.noise = noise::paper_noise(duty, 0xBEEF + duty);
      // Observe the 10% pass: the per-rank noise_wait_ns counter separates
      // noise that stalled pending work from noise the design absorbed.
      std::shared_ptr<obs::Recorder> recorder;
      if (duty == 10) {
        recorder = std::make_shared<obs::Recorder>();
        options.recorder = recorder;
      }
      runtime::SimEngine engine(machine, options);
      mpi::MutView buffer{nullptr, msg};
      auto fn = [&](runtime::Context& ctx, int) -> sim::Task<> {
        co_await coll::bcast(ctx, world, buffer, 0, tree, style,
                             coll::CollOpts{.segment_size = kib(128)});
      };
      results[idx++] =
          bench::measure_throughput(engine, world, fn,
                                    {.warmup = 1, .iterations = iters})
              .avg_ms();
      if (recorder) {
        // Injected CPU time: duty share of every rank's virtual elapsed
        // time (the burst model's expectation). Propagated: time the MAIN
        // thread actually stalled behind a burst; the rest fired while the
        // rank was waiting on the network anyway and cost nothing.
        const double elapsed_ms = static_cast<double>(recorder->now()) * 1e-6;
        const double injected = 0.10 * elapsed_ms * ranks;
        double propagated = 0;
        for (const auto& rc : recorder->metrics().ranks()) {
          propagated += static_cast<double>(rc.noise_wait_ns) * 1e-6;
        }
        const double absorbed = injected - propagated;
        char in[32], prop[32], abs_s[32], share[32];
        std::snprintf(in, sizeof in, "%.1f", injected);
        std::snprintf(prop, sizeof prop, "%.1f", propagated);
        std::snprintf(abs_s, sizeof abs_s, "%.1f", absorbed);
        std::snprintf(share, sizeof share, "%.0f%%",
                      100.0 * absorbed / injected);
        absorption.add_row({coll::style_name(style), in, prop, abs_s, share});
      }
    }
    char c0[32], c1[32], c2[32], amp[32];
    std::snprintf(c0, sizeof c0, "%.3f", results[0]);
    std::snprintf(c1, sizeof c1, "%.3f", results[1]);
    std::snprintf(c2, sizeof c2, "%.3f", results[2]);
    // Amplification: extra time relative to the injected duty itself.
    std::snprintf(amp, sizeof amp, "%.1fx",
                  (results[2] / results[0] - 1.0) / 0.10);
    table.add_row({coll::style_name(style), c0, c1, c2, amp});
  }
  table.print(std::cout);
  std::cout << "\nAn amplification of 1x means the design only loses the CPU "
               "time the noise actually stole;\nlarger values mean "
               "synchronisation dependencies propagated the delays (§2.1).\n";
  std::cout << "\nWhere the 10%-duty noise went (totals across all ranks):\n";
  absorption.print(std::cout);
  std::cout << "\nAbsorbed bursts landed while the rank's main thread had "
               "nothing to run;\npropagated bursts delayed runnable work. "
               "Note the inversion against the\namplification column: the "
               "event-driven design keeps its CPU busy draining\nsmall "
               "tasks, so more bursts hit runnable work — but each delayed "
               "task is\ntiny and overlapped with communication, so little "
               "of it reaches the\ncritical path. The blocking design "
               "absorbs more locally, yet every burst\nthat does land "
               "cascades through the synchronisation chain (§2.1).\n";
  return 0;
}
