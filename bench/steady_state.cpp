// Steady-state issue-rate benchmark: the ROADMAP's "same collective issued
// millions of times" workload. Two arms drive the identical 64-rank / 64 KiB
// broadcast through the SimEngine for R rounds and report host-side issue
// rate (collectives started+completed per wall-clock second) plus heap
// allocations per start:
//
//   * percall    — what a per-call adaptive library pays every invocation:
//                  consult the tuner, rebuild the decision tree, re-run the
//                  coroutine pipeline with freshly allocated round state.
//   * persistent — bcast_init once (plan pinned in the engine's PlanCache),
//                  then start()/wait() replaying the cached schedule.
//
// The simulated byte movement is identical in both arms; the difference is
// exactly the schedule-rebuild work the persistent path hoists out of the
// hot loop, so the ratio is the paper-facing "issue-rate speedup" number the
// perf gate pins (scripts/check_perf.py --steady, threshold 5x).
//
//   steady_state [--cluster cori] [--nodes N] [--ranks N] [--bytes B]
//                [--warm W] [--rounds R] [--json FILE]
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

// Counting global allocator (the PR 4 harness scheme): every path into the
// heap bumps one counter; each arm brackets its measured rounds with counter
// snapshots to report allocs_per_start. Machine-independent, so the perf
// gate can pin it at zero for the persistent arm on any hardware.
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align), n ? n : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t n, std::align_val_t align) {
  return ::operator new(n, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#include <chrono>
#include <limits>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <vector>

#include "src/bench/cli.hpp"
#include "src/coll/coll.hpp"
#include "src/coll/persistent.hpp"
#include "src/runtime/sim_engine.hpp"
#include "src/support/error.hpp"
#include "src/tune/tuner.hpp"

namespace {

using namespace adapt;
using Clock = std::chrono::steady_clock;

/// Re-sync cadence. Eager sends complete locally, so the broadcast root's
/// wait() returns without any round trip and it would otherwise run
/// arbitrarily far ahead of the leaves — unexpected queues and in-flight
/// payload blocks then grow with the skew instead of reaching a steady
/// state. Issue-rate benchmarks conventionally bound the skew with a
/// periodic barrier; both arms pay it, so the speedup stays a fair ratio.
constexpr int kSyncEvery = 8;

struct ArmResult {
  double elapsed_ms = 0.0;
  double collectives_per_sec = 0.0;
  double allocs_per_start = 0.0;
};

struct BenchConfig {
  topo::Machine machine;
  int ranks;
  Bytes bytes;
  int warm;
  int rounds;
};

/// Runs one arm: `body(ctx, round)` issues round `round` of the collective.
/// Rank 0 opens the measurement window at the first post-warm-up round; the
/// window closes when the whole run drains, so every measured round's work
/// (including stragglers past rank 0's last wait) is inside the bracket.
template <typename MakeProgram>
ArmResult run_arm(const BenchConfig& cfg, MakeProgram make_program) {
  runtime::SimEngineOptions options;
  options.tuning = std::make_shared<tune::Tuner>(cfg.machine);
  runtime::SimEngine engine(cfg.machine, options);

  Clock::time_point t0;
  std::uint64_t a0 = 0;
  auto program = make_program(engine, [&](int round, int rank) {
    if (round == cfg.warm && rank == 0) {
      t0 = Clock::now();
      a0 = g_alloc_count.load(std::memory_order_relaxed);
    }
  });
  engine.run(program);
  const Clock::time_point t1 = Clock::now();
  const std::uint64_t a1 = g_alloc_count.load(std::memory_order_relaxed);

  ArmResult r;
  r.elapsed_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          t1 - t0)
          .count();
  r.collectives_per_sec = cfg.rounds / (r.elapsed_ms / 1000.0);
  r.allocs_per_start = static_cast<double>(a1 - a0) / cfg.rounds;
  return r;
}

/// Per-call arm: every round re-does the planning a one-shot adaptive call
/// pays before any byte moves — price the tuner's candidate grid for this
/// (op, ranks, size), rebuild the decision tree, re-size the segment
/// pipeline — then runs the ordinary pipelined broadcast. This is the
/// from-scratch flow the ROADMAP motivation describes; the persistent
/// subsystem's whole point is pinning decision + tree + round state once at
/// init so none of it recurs per start.
ArmResult run_percall(const BenchConfig& cfg,
                      std::vector<std::vector<std::byte>>& bufs) {
  return run_arm(cfg, [&](runtime::SimEngine&, auto mark) {
    return [&cfg, &bufs, mark](runtime::Context& ctx) -> sim::Task<> {
      const mpi::Comm world = mpi::Comm::world(cfg.ranks);
      auto& mine = bufs[static_cast<std::size_t>(ctx.rank())];
      for (int r = 0; r < cfg.warm + cfg.rounds; ++r) {
        mark(r, ctx.rank());
        tune::Tuner* tuner = ctx.tuner();
        ADAPT_CHECK(tuner != nullptr);
        // From-scratch decision: price every candidate in the grid and keep
        // the cheapest — the same work choose() does on a table miss. The
        // persistent path pays this exactly once, at init, and pins the
        // result in the plan cache.
        tune::Decision best{};
        best.predicted = std::numeric_limits<TimeNs>::max();
        for (const tune::Decision& d :
             tuner->candidates(tune::Op::kBcast, world.size(), cfg.bytes)) {
          if (d.predicted < best.predicted) best = d;
        }
        const coll::Tree tree =
            tune::decision_tree(ctx.machine(), world, /*root=*/0, best);
        coll::CollOpts opts;
        opts.segment_size = tune::decision_segment(best, cfg.bytes);
        co_await coll::bcast(ctx, world, mpi::MutView{mine.data(), cfg.bytes},
                             /*root=*/0, tree, coll::Style::kAdapt, opts);
        if ((r + 1) % kSyncEvery == 0) co_await coll::barrier(ctx, world);
      }
    };
  });
}

/// Persistent arm: plan built once at init, rounds replay it.
ArmResult run_persistent(const BenchConfig& cfg,
                         std::vector<std::vector<std::byte>>& bufs) {
  return run_arm(cfg, [&](runtime::SimEngine&, auto mark) {
    return [&cfg, &bufs, mark](runtime::Context& ctx) -> sim::Task<> {
      const mpi::Comm world = mpi::Comm::world(cfg.ranks);
      auto& mine = bufs[static_cast<std::size_t>(ctx.rank())];
      auto op = coll::bcast_init(ctx, world,
                                 mpi::MutView{mine.data(), cfg.bytes},
                                 /*root=*/0, coll::PersistentOpts{});
      auto sync = coll::barrier_init(ctx, world, coll::PersistentOpts{});
      for (int r = 0; r < cfg.warm + cfg.rounds; ++r) {
        mark(r, ctx.rank());
        ADAPT_CHECK(op->start() == mpi::ErrCode::kOk);
        co_await op->wait();
        if ((r + 1) % kSyncEvery == 0) {
          ADAPT_CHECK(sync->start() == mpi::ErrCode::kOk);
          co_await sync->wait();
        }
      }
    };
  });
}

void write_json(const std::string& path, const BenchConfig& cfg,
                const std::string& cluster, const ArmResult& percall,
                const ArmResult& persistent, double speedup) {
  std::ofstream out(path);
  ADAPT_CHECK(out.good()) << "cannot write " << path;
  char buf[1024];
  std::snprintf(
      buf, sizeof buf,
      "{\n"
      "  \"benchmark\": \"steady_state\",\n"
      "  \"cluster\": \"%s\",\n"
      "  \"ranks\": %d,\n"
      "  \"bytes\": %lld,\n"
      "  \"warm\": %d,\n"
      "  \"rounds\": %d,\n"
      "  \"arms\": {\n"
      "    \"percall\": {\"collectives_per_sec\": %.1f, "
      "\"allocs_per_start\": %.3f, \"elapsed_ms\": %.3f},\n"
      "    \"persistent\": {\"collectives_per_sec\": %.1f, "
      "\"allocs_per_start\": %.3f, \"elapsed_ms\": %.3f}\n"
      "  },\n"
      "  \"speedup\": %.3f\n"
      "}\n",
      cluster.c_str(), cfg.ranks, static_cast<long long>(cfg.bytes), cfg.warm,
      cfg.rounds, percall.collectives_per_sec, percall.allocs_per_start,
      percall.elapsed_ms, persistent.collectives_per_sec,
      persistent.allocs_per_start, persistent.elapsed_ms, speedup);
  out << buf;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Cli cli(argc, argv);
  const std::string cluster = cli.get("cluster", "cori");
  const int nodes = static_cast<int>(cli.get_int("nodes", 2));
  const int ranks = static_cast<int>(cli.get_int("ranks", 64));
  const Bytes bytes = cli.get_int("bytes", 65536);
  // 80 warm-up rounds cover ten barrier periods: every (src, tag) matcher
  // bucket and pool size class reaches its high-water mark before the
  // measurement window opens, so the persistent arm's allocs/start is a real
  // steady-state number rather than first-touch noise.
  const int warm = static_cast<int>(cli.get_int("warm", 80));
  const int rounds = static_cast<int>(cli.get_int("rounds", 300));

  const auto setup = bench::make_cluster(cluster, nodes, ranks);
  BenchConfig cfg{setup.machine, setup.ranks, bytes, warm, rounds};

  std::cout << "== Steady-state issue rate: persistent vs per-call broadcast "
               "==\n"
            << cluster << ", " << cfg.ranks << " ranks, " << bytes
            << " bytes, " << rounds << " measured rounds (+" << warm
            << " warm-up)\n\n";

  std::vector<std::vector<std::byte>> bufs(
      static_cast<std::size_t>(cfg.ranks),
      std::vector<std::byte>(static_cast<std::size_t>(bytes)));

  const std::string arm = cli.get("arm", "both");
  const ArmResult percall =
      arm != "persistent" ? run_percall(cfg, bufs) : ArmResult{};
  const ArmResult persistent =
      arm != "percall" ? run_persistent(cfg, bufs) : ArmResult{};
  const double speedup =
      persistent.collectives_per_sec / percall.collectives_per_sec;

  std::printf("%-12s %18s %18s %14s\n", "arm", "collectives/s", "allocs/start",
              "elapsed ms");
  std::printf("%-12s %18.1f %18.3f %14.3f\n", "percall",
              percall.collectives_per_sec, percall.allocs_per_start,
              percall.elapsed_ms);
  std::printf("%-12s %18.1f %18.3f %14.3f\n", "persistent",
              persistent.collectives_per_sec, persistent.allocs_per_start,
              persistent.elapsed_ms);
  std::printf("\nspeedup (persistent / percall): %.2fx\n", speedup);

  if (cli.has("json")) {
    const std::string path = cli.get("json", "steady.json");
    write_json(path, cfg, cluster, percall, persistent, speedup);
    std::cout << "json written to " << path << "\n";
  }
  return 0;
}
