#include "src/verify/faulty.hpp"

#include <cstring>
#include <vector>

#include "src/mpi/p2p.hpp"
#include "src/mpi/payload.hpp"
#include "src/support/error.hpp"

namespace adapt::verify {

sim::Task<> faulty_gather_arrival_order(runtime::Context& ctx,
                                        const mpi::Comm& comm,
                                        mpi::ConstView sendblock,
                                        mpi::MutView recvbuf, Bytes block,
                                        Rank root) {
  const int n = comm.size();
  const Rank me = comm.local_of(ctx.rank());
  ADAPT_CHECK(me != kAnyRank);
  const Tag tag = ctx.alloc_tags(1);

  if (me != root) {
    co_await ctx.send(comm.global(root), tag, sendblock);
    co_return;
  }

  ADAPT_CHECK(recvbuf.size >= block * n) << "gather recvbuf too small";
  if (!recvbuf.synthetic() && !sendblock.synthetic()) {
    std::memcpy(recvbuf.data + static_cast<std::size_t>(root * block),
                sendblock.data, static_cast<std::size_t>(block));
  }

  // Wildcard-source receives into arrival-order staging slots.
  std::vector<mpi::Payload> stage;
  std::vector<mpi::RequestPtr> recvs;
  for (int k = 0; k + 1 < n; ++k) {
    stage.push_back(
        mpi::Payload::scratch(ctx.pool(), block, recvbuf.synthetic()));
    recvs.push_back(ctx.irecv(kAnyRank, tag, stage.back().view()));
  }
  co_await mpi::wait_all(recvs);

  // THE BUG: slot k is assumed to hold the k-th non-root rank's block. The
  // completed requests know the actual source (recvs[k]->actual_src()), but
  // this code ignores it — correct only while arrivals land in rank order.
  int slot = 0;
  for (Rank r = 0; r < n; ++r) {
    if (r == root) continue;
    if (!recvbuf.synthetic()) {
      std::memcpy(recvbuf.data + static_cast<std::size_t>(r * block),
                  stage[static_cast<std::size_t>(slot)].data(),
                  static_cast<std::size_t>(block));
    }
    ++slot;
  }
}

}  // namespace adapt::verify
