// HAN two-level collectives (src/coll/han): the fused tree's structure under
// arbitrary rank→node placements, byte-exactness over the SHM transport, and
// the headline performance pin — segment-overlapped two-level broadcast beats
// the sequential multi-communicator hierarchy it replaces.
#include <gtest/gtest.h>

#include <cstring>

#include "src/coll/han.hpp"
#include "src/coll/hierarchical.hpp"
#include "src/runtime/sim_engine.hpp"
#include "src/support/rng.hpp"
#include "src/topo/presets.hpp"

namespace adapt::coll {
namespace {

using runtime::Context;
using runtime::SimEngine;

std::vector<std::byte> pattern(Bytes n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::byte> v(static_cast<std::size_t>(n));
  for (auto& b : v) b = std::byte(rng.next_below(256));
  return v;
}

/// Core slots for the placements two-level designs historically break on.
std::vector<int> reversed_slots(int n) {
  std::vector<int> s(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) s[static_cast<std::size_t>(r)] = n - 1 - r;
  return s;
}

std::vector<int> strided_slots(int n, int nodes, int ppn) {
  std::vector<int> s(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r)
    s[static_cast<std::size_t>(r)] = (r % nodes) * ppn + r / nodes;
  return s;
}

std::vector<int> random_slots(int n, std::uint64_t seed) {
  std::vector<int> s(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) s[static_cast<std::size_t>(r)] = r;
  Rng rng(seed);
  for (std::size_t i = s.size(); i > 1; --i)
    std::swap(s[i - 1], s[rng.next_below(i)]);
  return s;
}

TEST(HanGroups, ElectsRootAndFirstMembers) {
  const topo::Machine m(topo::han_cluster(4, 4), 16);
  const mpi::Comm world = mpi::Comm::world(16);
  const HanGroups g = han_groups(world, m, /*root=*/5);
  ASSERT_EQ(g.nodes.size(), 4u);
  for (int node = 0; node < 4; ++node) {
    EXPECT_EQ(g.nodes[static_cast<std::size_t>(node)].size(), 4);
  }
  // The root leads its own node; every other node is led by its first
  // member in communicator order.
  EXPECT_EQ(g.leaders.members(), (std::vector<Rank>{0, 5, 8, 12}));
}

/// The two-level invariant under any placement: a non-leader's parent lives
/// on the SAME node (SHM channel), and a non-root leader's parent is another
/// node's leader (fabric edge). Checked for the dense, reversed, strided and
/// random maps.
void check_two_level_edges(const topo::Machine& m) {
  const int n = m.nranks();
  const mpi::Comm world = mpi::Comm::world(n);
  for (const Rank root : {Rank{0}, Rank{n - 1}, Rank{n / 2}}) {
    const Tree tree = build_han_tree(m, world, root);
    const HanGroups g = han_groups(world, m, root);
    const auto is_leader = [&](Rank r) { return g.leaders.contains(r); };
    for (Rank r = 0; r < n; ++r) {
      const Rank parent = tree.up(r);
      if (r == root) {
        EXPECT_EQ(parent, -1);
        continue;
      }
      ASSERT_GE(parent, 0) << "rank " << r << " disconnected";
      if (is_leader(r)) {
        EXPECT_TRUE(is_leader(parent))
            << "leader " << r << " hangs under non-leader " << parent;
        EXPECT_NE(m.node_of(parent), m.node_of(r))
            << "leader edge " << parent << "->" << r << " stays on-node";
      } else {
        EXPECT_EQ(m.node_of(parent), m.node_of(r))
            << "non-leader " << r << " crosses nodes to " << parent;
      }
    }
  }
}

TEST(HanTree, TwoLevelUnderDensePlacement) {
  check_two_level_edges(topo::Machine(topo::han_cluster(4, 4), 16));
}

TEST(HanTree, TwoLevelUnderReversedPlacement) {
  check_two_level_edges(
      topo::Machine(topo::han_cluster(4, 4), reversed_slots(16)));
}

TEST(HanTree, TwoLevelUnderStridedPlacement) {
  check_two_level_edges(
      topo::Machine(topo::han_cluster(4, 4), strided_slots(16, 4, 4)));
}

TEST(HanTree, TwoLevelUnderRandomPlacement) {
  check_two_level_edges(
      topo::Machine(topo::han_cluster(4, 4), random_slots(16, 2024)));
}

TEST(HanBcast, ByteExactUnderScrambledPlacement) {
  const topo::Machine m(topo::han_cluster(4, 4), strided_slots(16, 4, 4));
  SimEngine engine(m);
  const mpi::Comm world = mpi::Comm::world(16);
  const Rank root = 7;
  const Bytes bytes = 6000;
  const auto golden = pattern(bytes, 42);
  std::vector<std::vector<std::byte>> bufs(
      16, std::vector<std::byte>(static_cast<std::size_t>(bytes)));
  bufs[static_cast<std::size_t>(root)] = golden;
  auto program = [&](Context& ctx) -> sim::Task<> {
    auto& mine = bufs[static_cast<std::size_t>(ctx.rank())];
    co_await han_bcast(ctx, world, mpi::MutView{mine.data(), bytes}, root, m);
  };
  engine.run(program);
  for (int r = 0; r < 16; ++r) {
    EXPECT_EQ(std::memcmp(bufs[static_cast<std::size_t>(r)].data(),
                          golden.data(), golden.size()),
              0)
        << "rank " << r;
  }
}

TEST(HanReduce, ByteExactUnderReversedPlacement) {
  const topo::Machine m(topo::han_cluster(4, 4), reversed_slots(16));
  SimEngine engine(m);
  const mpi::Comm world = mpi::Comm::world(16);
  const Rank root = 3;
  const int kInts = 512;
  const Bytes bytes = kInts * 4;
  std::vector<std::vector<std::int32_t>> vals(16,
                                              std::vector<std::int32_t>(kInts));
  std::vector<std::int32_t> want(kInts, 0);
  for (int r = 0; r < 16; ++r) {
    for (int i = 0; i < kInts; ++i) {
      vals[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)] =
          r * 1000 + i;
      want[static_cast<std::size_t>(i)] += r * 1000 + i;
    }
  }
  auto program = [&](Context& ctx) -> sim::Task<> {
    auto& mine = vals[static_cast<std::size_t>(ctx.rank())];
    co_await han_reduce(
        ctx, world,
        mpi::MutView{reinterpret_cast<std::byte*>(mine.data()), bytes},
        mpi::ReduceOp::kSum, mpi::Datatype::kInt32, root, m);
  };
  engine.run(program);
  EXPECT_EQ(vals[static_cast<std::size_t>(root)], want);
}

// The acceptance pin: on a 16-node × 8-rank cluster broadcasting 1 MiB in
// 16 KiB segments, the fused event-driven two-level tree (inter-node and
// intra-node stages overlapping at segment granularity) must beat the
// sequential multi-communicator hierarchy — whose intra-node phase cannot
// start until its leader holds the whole message — by at least 1.3×.
// Measured margin at this segment size is ~1.42×; the gap narrows as
// segments grow (fewer pipeline stages to overlap) and the pin sits on the
// small-segment side of that curve.
TEST(HanPerf, BeatsSequentialHierarchicalBcast) {
  const topo::Machine m(topo::han_cluster(16, 8), 128);
  const mpi::Comm world = mpi::Comm::world(128);
  const Rank root = 0;
  const Bytes bytes = mib(1);
  std::vector<std::byte> payload(static_cast<std::size_t>(bytes),
                                 std::byte(0x5A));

  const auto timed = [&](auto&& collective) {
    SimEngine engine(m);
    std::vector<std::vector<std::byte>> bufs(128, payload);
    auto program = [&](Context& ctx) -> sim::Task<> {
      auto& mine = bufs[static_cast<std::size_t>(ctx.rank())];
      co_await collective(ctx, mpi::MutView{mine.data(), bytes});
    };
    return engine.run(program).total_time;
  };

  HierSpec hier;
  hier.opts.segment_size = kib(16);
  const TimeNs sequential = timed([&](Context& ctx, mpi::MutView buf) {
    return hier_bcast(ctx, world, buf, root, m, hier);
  });
  HanSpec han;
  han.opts.segment_size = kib(16);
  const TimeNs overlapped = timed([&](Context& ctx, mpi::MutView buf) {
    return han_bcast(ctx, world, buf, root, m, han);
  });

  EXPECT_GT(overlapped, 0);
  // overlapped * 1.3 <= sequential, in integer arithmetic.
  EXPECT_LE(overlapped * 13, sequential * 10)
      << "han " << overlapped << " ns vs hier " << sequential
      << " ns — speedup " << (static_cast<double>(sequential) /
                              static_cast<double>(overlapped));
}

}  // namespace
}  // namespace adapt::coll
