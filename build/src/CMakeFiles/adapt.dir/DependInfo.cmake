
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bench/cli.cpp" "src/CMakeFiles/adapt.dir/bench/cli.cpp.o" "gcc" "src/CMakeFiles/adapt.dir/bench/cli.cpp.o.d"
  "/root/repo/src/bench/imb.cpp" "src/CMakeFiles/adapt.dir/bench/imb.cpp.o" "gcc" "src/CMakeFiles/adapt.dir/bench/imb.cpp.o.d"
  "/root/repo/src/coll/barrier.cpp" "src/CMakeFiles/adapt.dir/coll/barrier.cpp.o" "gcc" "src/CMakeFiles/adapt.dir/coll/barrier.cpp.o.d"
  "/root/repo/src/coll/bcast.cpp" "src/CMakeFiles/adapt.dir/coll/bcast.cpp.o" "gcc" "src/CMakeFiles/adapt.dir/coll/bcast.cpp.o.d"
  "/root/repo/src/coll/detail.cpp" "src/CMakeFiles/adapt.dir/coll/detail.cpp.o" "gcc" "src/CMakeFiles/adapt.dir/coll/detail.cpp.o.d"
  "/root/repo/src/coll/hierarchical.cpp" "src/CMakeFiles/adapt.dir/coll/hierarchical.cpp.o" "gcc" "src/CMakeFiles/adapt.dir/coll/hierarchical.cpp.o.d"
  "/root/repo/src/coll/library.cpp" "src/CMakeFiles/adapt.dir/coll/library.cpp.o" "gcc" "src/CMakeFiles/adapt.dir/coll/library.cpp.o.d"
  "/root/repo/src/coll/moreops.cpp" "src/CMakeFiles/adapt.dir/coll/moreops.cpp.o" "gcc" "src/CMakeFiles/adapt.dir/coll/moreops.cpp.o.d"
  "/root/repo/src/coll/nonblocking.cpp" "src/CMakeFiles/adapt.dir/coll/nonblocking.cpp.o" "gcc" "src/CMakeFiles/adapt.dir/coll/nonblocking.cpp.o.d"
  "/root/repo/src/coll/reduce.cpp" "src/CMakeFiles/adapt.dir/coll/reduce.cpp.o" "gcc" "src/CMakeFiles/adapt.dir/coll/reduce.cpp.o.d"
  "/root/repo/src/coll/topo_tree.cpp" "src/CMakeFiles/adapt.dir/coll/topo_tree.cpp.o" "gcc" "src/CMakeFiles/adapt.dir/coll/topo_tree.cpp.o.d"
  "/root/repo/src/coll/tree.cpp" "src/CMakeFiles/adapt.dir/coll/tree.cpp.o" "gcc" "src/CMakeFiles/adapt.dir/coll/tree.cpp.o.d"
  "/root/repo/src/gpu/device.cpp" "src/CMakeFiles/adapt.dir/gpu/device.cpp.o" "gcc" "src/CMakeFiles/adapt.dir/gpu/device.cpp.o.d"
  "/root/repo/src/gpu/gpu_coll.cpp" "src/CMakeFiles/adapt.dir/gpu/gpu_coll.cpp.o" "gcc" "src/CMakeFiles/adapt.dir/gpu/gpu_coll.cpp.o.d"
  "/root/repo/src/mpi/comm.cpp" "src/CMakeFiles/adapt.dir/mpi/comm.cpp.o" "gcc" "src/CMakeFiles/adapt.dir/mpi/comm.cpp.o.d"
  "/root/repo/src/mpi/datatype.cpp" "src/CMakeFiles/adapt.dir/mpi/datatype.cpp.o" "gcc" "src/CMakeFiles/adapt.dir/mpi/datatype.cpp.o.d"
  "/root/repo/src/mpi/endpoint.cpp" "src/CMakeFiles/adapt.dir/mpi/endpoint.cpp.o" "gcc" "src/CMakeFiles/adapt.dir/mpi/endpoint.cpp.o.d"
  "/root/repo/src/mpi/match.cpp" "src/CMakeFiles/adapt.dir/mpi/match.cpp.o" "gcc" "src/CMakeFiles/adapt.dir/mpi/match.cpp.o.d"
  "/root/repo/src/mpi/op.cpp" "src/CMakeFiles/adapt.dir/mpi/op.cpp.o" "gcc" "src/CMakeFiles/adapt.dir/mpi/op.cpp.o.d"
  "/root/repo/src/mpi/p2p.cpp" "src/CMakeFiles/adapt.dir/mpi/p2p.cpp.o" "gcc" "src/CMakeFiles/adapt.dir/mpi/p2p.cpp.o.d"
  "/root/repo/src/net/fabric.cpp" "src/CMakeFiles/adapt.dir/net/fabric.cpp.o" "gcc" "src/CMakeFiles/adapt.dir/net/fabric.cpp.o.d"
  "/root/repo/src/net/routes.cpp" "src/CMakeFiles/adapt.dir/net/routes.cpp.o" "gcc" "src/CMakeFiles/adapt.dir/net/routes.cpp.o.d"
  "/root/repo/src/noise/noise.cpp" "src/CMakeFiles/adapt.dir/noise/noise.cpp.o" "gcc" "src/CMakeFiles/adapt.dir/noise/noise.cpp.o.d"
  "/root/repo/src/runtime/sim_engine.cpp" "src/CMakeFiles/adapt.dir/runtime/sim_engine.cpp.o" "gcc" "src/CMakeFiles/adapt.dir/runtime/sim_engine.cpp.o.d"
  "/root/repo/src/runtime/thread_engine.cpp" "src/CMakeFiles/adapt.dir/runtime/thread_engine.cpp.o" "gcc" "src/CMakeFiles/adapt.dir/runtime/thread_engine.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/adapt.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/adapt.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/adapt.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/adapt.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/support/error.cpp" "src/CMakeFiles/adapt.dir/support/error.cpp.o" "gcc" "src/CMakeFiles/adapt.dir/support/error.cpp.o.d"
  "/root/repo/src/support/log.cpp" "src/CMakeFiles/adapt.dir/support/log.cpp.o" "gcc" "src/CMakeFiles/adapt.dir/support/log.cpp.o.d"
  "/root/repo/src/support/stats.cpp" "src/CMakeFiles/adapt.dir/support/stats.cpp.o" "gcc" "src/CMakeFiles/adapt.dir/support/stats.cpp.o.d"
  "/root/repo/src/support/table.cpp" "src/CMakeFiles/adapt.dir/support/table.cpp.o" "gcc" "src/CMakeFiles/adapt.dir/support/table.cpp.o.d"
  "/root/repo/src/support/units.cpp" "src/CMakeFiles/adapt.dir/support/units.cpp.o" "gcc" "src/CMakeFiles/adapt.dir/support/units.cpp.o.d"
  "/root/repo/src/topo/hardware.cpp" "src/CMakeFiles/adapt.dir/topo/hardware.cpp.o" "gcc" "src/CMakeFiles/adapt.dir/topo/hardware.cpp.o.d"
  "/root/repo/src/topo/presets.cpp" "src/CMakeFiles/adapt.dir/topo/presets.cpp.o" "gcc" "src/CMakeFiles/adapt.dir/topo/presets.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
