# Empty compiler generated dependencies file for table1_asp.
# This may be replaced when dependencies are built.
