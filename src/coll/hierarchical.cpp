#include "src/coll/hierarchical.hpp"

#include <algorithm>
#include <map>

#include "src/support/error.hpp"

namespace adapt::coll {

namespace {

struct HierGroups {
  mpi::Comm leaders{std::vector<Rank>{0}};  ///< global ranks of node leaders
  mpi::Comm my_node{std::vector<Rank>{0}};  ///< global ranks on my node
  Rank my_leader_global = -1;
  Rank root_leader_global = -1;
  bool am_leader = false;
};

/// Splits `comm` by node. The root leads its node; elsewhere the smallest
/// member leads.
HierGroups split(const runtime::Context& ctx, const mpi::Comm& comm,
                 const topo::Machine& machine, Rank root) {
  const Rank root_global = comm.global(root);
  std::map<int, std::vector<Rank>> nodes;  // node id -> global members
  for (Rank local = 0; local < comm.size(); ++local) {
    const Rank g = comm.global(local);
    nodes[machine.node_of(g)].push_back(g);
  }
  std::vector<Rank> leaders;
  leaders.reserve(nodes.size());
  for (auto& [node, members] : nodes) {
    const bool has_root =
        std::find(members.begin(), members.end(), root_global) !=
        members.end();
    leaders.push_back(has_root ? root_global : members.front());
  }

  HierGroups g;
  const int my_node_id = machine.node_of(ctx.rank());
  g.my_node = mpi::Comm(nodes.at(my_node_id));
  const bool my_node_has_root = g.my_node.contains(root_global);
  g.my_leader_global =
      my_node_has_root ? root_global : g.my_node.members().front();
  g.root_leader_global = root_global;
  g.am_leader = g.my_leader_global == ctx.rank();
  g.leaders = mpi::Comm(std::move(leaders));
  return g;
}

}  // namespace

sim::Task<> hier_bcast(runtime::Context& ctx, const mpi::Comm& comm,
                       mpi::MutView buffer, Rank root,
                       const topo::Machine& machine, const HierSpec& spec) {
  const HierGroups g = split(ctx, comm, machine, root);
  const Segmenter segs(buffer.size, spec.opts.segment_size);
  // Both phases' tags are allocated on EVERY rank so counters stay aligned
  // even though only leaders run phase 1.
  const Tag inter_tag = ctx.alloc_tags(segs.count());
  const Tag intra_tag = ctx.alloc_tags(segs.count());

  if (g.am_leader && g.leaders.size() > 1) {
    const Rank leader_root = g.leaders.local_of(g.root_leader_global);
    const Tree tree = build_tree(spec.inter_node, g.leaders.size(),
                                     leader_root, spec.radix);
    co_await bcast_tagged(ctx, g.leaders, buffer, leader_root, tree,
                          spec.style, spec.opts, inter_tag);
  }
  if (g.my_node.size() > 1) {
    const Rank node_root = g.my_node.local_of(g.my_leader_global);
    const Tree tree = build_tree(spec.intra_node, g.my_node.size(),
                                     node_root, spec.radix);
    co_await bcast_tagged(ctx, g.my_node, buffer, node_root, tree, spec.style,
                          spec.opts, intra_tag);
  }
}

sim::Task<> hier_reduce(runtime::Context& ctx, const mpi::Comm& comm,
                        mpi::MutView accum, mpi::ReduceOp op,
                        mpi::Datatype dtype, Rank root,
                        const topo::Machine& machine, const HierSpec& spec) {
  const HierGroups g = split(ctx, comm, machine, root);
  const Segmenter segs(accum.size, spec.opts.segment_size);
  const Tag intra_tag = ctx.alloc_tags(segs.count());
  const Tag inter_tag = ctx.alloc_tags(segs.count());

  if (g.my_node.size() > 1) {
    const Rank node_root = g.my_node.local_of(g.my_leader_global);
    const Tree tree = build_tree(spec.intra_node, g.my_node.size(),
                                     node_root, spec.radix);
    co_await reduce_tagged(ctx, g.my_node, accum, op, dtype, node_root, tree,
                           spec.style, spec.opts, intra_tag);
  }
  if (g.am_leader && g.leaders.size() > 1) {
    const Rank leader_root = g.leaders.local_of(g.root_leader_global);
    const Tree tree = build_tree(spec.inter_node, g.leaders.size(),
                                     leader_root, spec.radix);
    co_await reduce_tagged(ctx, g.leaders, accum, op, dtype, leader_root, tree,
                           spec.style, spec.opts, inter_tag);
  }
}

}  // namespace adapt::coll
