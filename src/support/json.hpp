// Tiny JSON emission helpers shared by the trace exporter and the bench
// --json reports. Writing only — nothing here parses JSON.
#pragma once

#include <string>

namespace adapt {

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included). Control characters become \u00XX.
std::string json_escape(const std::string& s);

/// `"escaped"` with the quotes.
std::string json_quote(const std::string& s);

}  // namespace adapt
