// Simulated CUDA substrate (paper §4).
//
// Each GPU rank owns a Device with a small pool of Streams. Stream semantics
// follow CUDA: operations issued to one stream execute in order; operations
// on different streams may overlap. Two resources are modelled:
//   * the device's execution engine — kernels (reductions) serialise on it,
//     costing launch latency + γ_gpu per byte;
//   * the PCIe lanes — async copies are routed through the ClusterNet fabric
//     (pcie_up / pcie_down links), so they contend with the collective's own
//     message traffic exactly as in Fig. 6.
//
// This gives §4.2's mechanism for free: a reduction offloaded to a stream
// overlaps with communication and leaves the rank's CPU available, whereas a
// CPU reduction occupies the rank and defers every callback behind it.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "src/net/routes.hpp"
#include "src/sim/simulator.hpp"
#include "src/sim/task.hpp"
#include "src/support/units.hpp"
#include "src/topo/hardware.hpp"

namespace adapt::gpu {

class Device;
class GpuRuntime;

/// In-order asynchronous work queue on a device (CUDA-stream semantics).
class Stream {
 public:
  Stream(Device& device, int index) : device_(device), index_(index) {}

  /// Enqueues a kernel occupying the device engine for `cost`.
  void launch(TimeNs cost, std::function<void()> on_done = {});

  /// Enqueues an async host<->device copy local to the owning rank; the copy
  /// crosses the socket's PCIe lane and contends with message traffic.
  void memcpy_async(MemSpace dst_space, MemSpace src_space, Bytes bytes,
                    std::function<void()> on_done = {});

  /// Suspends until every operation enqueued so far has finished.
  sim::Task<> synchronize();

  int index() const { return index_; }
  bool idle() const { return pending_ == 0; }

 private:
  struct Op {
    std::function<void(std::function<void()> done)> start;
    std::function<void()> on_done;
  };
  void enqueue(Op op);
  void run_next();

  Device& device_;
  int index_;
  std::deque<Op> queue_;
  int pending_ = 0;     ///< queued + running ops
  bool running_ = false;
};

/// One simulated GPU, owned by a rank.
class Device {
 public:
  Device(GpuRuntime& runtime, Rank owner, int socket_id, int num_streams = 4);

  Rank owner() const { return owner_; }
  int socket_id() const { return socket_id_; }
  Stream& stream(int i);
  int num_streams() const { return static_cast<int>(streams_.size()); }

  /// Cost of a reduction kernel over `bytes` (launch latency + γ_gpu·bytes).
  TimeNs reduce_cost(Bytes bytes) const;

  GpuRuntime& runtime() { return runtime_; }

  // Stream-internal: serialises kernels on the device engine.
  void execute_kernel(TimeNs cost, std::function<void()> on_done);

 private:
  GpuRuntime& runtime_;
  Rank owner_;
  int socket_id_;
  TimeNs engine_busy_until_ = 0;
  std::vector<std::unique_ptr<Stream>> streams_;
};

/// Engine-wide GPU state: one Device per GPU-placed rank.
class GpuRuntime {
 public:
  GpuRuntime(sim::Simulator& simulator, net::ClusterNet& net,
             const topo::Machine& machine);

  /// The device bound to rank r, or nullptr for CPU-only ranks.
  Device* device_for(Rank r);

  sim::Simulator& simulator() { return sim_; }
  net::ClusterNet& net() { return net_; }
  const topo::MachineSpec& spec() const { return machine_.spec(); }

 private:
  sim::Simulator& sim_;
  net::ClusterNet& net_;
  const topo::Machine& machine_;
  std::vector<std::unique_ptr<Device>> devices_;  // indexed by rank
};

}  // namespace adapt::gpu
