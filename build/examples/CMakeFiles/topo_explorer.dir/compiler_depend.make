# Empty compiler generated dependencies file for topo_explorer.
# This may be replaced when dependencies are built.
