// Standalone conformance driver (registered with ctest as
// `verify_conformance`, chaos mode as `verify_chaos`).
//
// Default run, in order:
//   1. the full matrix — every collective × style × library × datatype/op ×
//      communicator subset, each on the stable SimEngine schedule, on
//      --seeds perturbed schedules, and on the ThreadEngine, diffed against
//      the sequential oracle;
//   2. a harness self-test — the same machinery pointed at a deliberately
//      buggy gather (wildcard-source arrival-order assumption) MUST report a
//      failure with a reproducer seed, proving the perturbation matrix
//      catches what it claims to catch.
//
// --chaos appends (and --chaos-only substitutes) the chaos matrix: every
// case re-run under seeded fault schedules (drops, corruption, delay, link
// outages, rank deaths) with the fault-tolerant runtime enabled, classified
// by run_case's chaos rules (byte-exact OR one consistent error code on
// every live rank). Chaos mode carries its own self-test: the same fault
// schedules pointed at the seed's non-retransmitting protocols MUST be
// caught by the classifier.
//
// A wall-clock watchdog guards every run: if a single case hangs the
// process longer than --watchdog seconds, the driver prints the exact repro
// line of the stuck run and exits 3 instead of hanging CI.
//
// A reported failure line is replayable:  verify_conformance --repro '<line>'.
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>

#include "src/support/parallel.hpp"
#include "src/verify/chaos.hpp"
#include "src/verify/conformance.hpp"

namespace {

using namespace adapt;
using namespace adapt::verify;

int usage() {
  std::cerr
      << "usage: verify_conformance [--seeds=K] [--jitter=NS] [--no-thread]\n"
         "                          [--no-shrink] [--no-selftest]\n"
         "                          [--han-only]\n"
         "                          [--chaos] [--chaos-only]\n"
         "                          [--soft-seeds=K] [--kill-seeds=K]\n"
         "                          [--watchdog=SECONDS]  (0 disables)\n"
         "                          [--jobs=N]  (0 = all hardware threads)\n"
         "                          [--shards=N]\n"
         "                          [--trace-dir=DIR]\n"
         "                          [--repro '<failure line>']\n"
         "--shards: also run every eligible case on the sharded engine, at 1\n"
         "shard and at N shards, under the stable schedule — the sharded\n"
         "rows must report byte-identically for any N and any --jobs.\n"
         "--han-only: restrict the conformance matrix to the HAN two-level\n"
         "rows (ppn > 0) — the CI TSan subset.\n"
         "--jobs: run matrix cases on N worker threads. Every run is an\n"
         "independent deterministic engine, so the report is identical for\n"
         "any N; only wall clock changes.\n"
         "--trace-dir: re-run every shrunken failure (and any --repro that\n"
         "reproduces) with the obs recorder and write a Perfetto trace\n"
         "(failure-N.trace.json) into DIR.\n";
  return 2;
}

/// Wall-clock deadman switch: every run publishes its repro line before it
/// starts; if no run finishes for `limit` seconds the watchdog prints that
/// line and hard-exits. This turns an engine deadlock (a bug this PR's
/// virtual-time watchdogs are supposed to make impossible) into a failed,
/// replayable ctest run instead of a CI timeout with no information.
class Watchdog {
 public:
  explicit Watchdog(long limit_seconds) : limit_(limit_seconds) {
    if (limit_ > 0) thread_ = std::thread([this] { loop(); });
  }
  ~Watchdog() {
    stop_.store(true);
    if (thread_.joinable()) thread_.join();
  }

  void tick(const std::string& repro) {
    std::lock_guard<std::mutex> lock(mutex_);
    current_ = repro;
    last_ = std::chrono::steady_clock::now();
  }

 private:
  void loop() {
    while (!stop_.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
      std::lock_guard<std::mutex> lock(mutex_);
      const auto stuck = std::chrono::steady_clock::now() - last_;
      if (stuck > std::chrono::seconds(limit_)) {
        std::cerr << "WATCHDOG: a run exceeded " << limit_
                  << "s of wall clock; likely deadlocked.\n  repro: "
                  << (current_.empty() ? "<none started>" : current_) << "\n";
        std::_Exit(3);
      }
    }
  }

  const long limit_;
  std::atomic<bool> stop_{false};
  std::mutex mutex_;
  std::string current_;
  std::chrono::steady_clock::time_point last_ =
      std::chrono::steady_clock::now();
  std::thread thread_;
};

int replay(const std::string& line, const std::string& trace_dir) {
  CaseConfig config;
  RunSpec spec;
  Fault fault = Fault::kNone;
  if (!parse_repro(line, &config, &spec, &fault)) {
    std::cerr << "unparseable repro line: " << line << "\n";
    return 2;
  }
  std::cout << "replaying: " << repro_string(config, spec, fault) << "\n";
  if (auto mismatch = run_case(config, spec, fault)) {
    std::cout << "REPRODUCED: " << *mismatch << "\n";
    if (!trace_dir.empty()) {
      const std::string path =
          write_failure_trace(config, spec, fault, trace_dir, 0);
      if (!path.empty()) std::cout << "trace: " << path << "\n";
    }
    return 1;
  }
  std::cout << "case passed (bug not reproduced)\n";
  return 0;
}

/// The seeded-fault self-test: the faulty gather must slip through the stable
/// schedule's rank-order arrivals but be caught by some perturbation seed.
bool selftest(int seeds, TimeNs jitter, Watchdog& watchdog) {
  CaseConfig config;
  config.collective = Collective::kGather;
  config.world = 12;
  config.comm = CommKind::kWorld;
  config.root = 1;
  config.bytes = 1000;

  MatrixOptions options;
  options.sim_seeds = seeds;
  options.max_jitter = jitter;
  options.thread_engine = false;  // keep the self-test deterministic
  options.fault = Fault::kGatherArrivalOrder;
  options.on_run = [&](const std::string& repro) { watchdog.tick(repro); };
  Report report = run_matrix({config}, options);
  if (report.ok()) {
    std::cout << "SELF-TEST FAILED: no perturbation seed caught the seeded "
                 "arrival-order fault ("
              << report.runs << " runs)\n";
    return false;
  }
  const Failure& failure = report.failures.front();
  std::cout << "self-test: harness caught the seeded fault under "
               "perturbation seed "
            << failure.spec.perturb_seed << "\n  repro: " << failure.repro
            << "\n  " << failure.detail << "\n";
  return true;
}

/// The chaos self-test: the same fault schedules, but with the reliability
/// protocol disabled (Fault::kNoRetransmit) — the seed's perfect-delivery
/// protocols meet a lossy fabric. The chaos classifier must report at least
/// one failure (hung ranks, one-sided errors, or corrupted payloads
/// delivered as success); if it stays green it cannot be trusted to certify
/// the fault-tolerant runtime either.
bool chaos_selftest(int soft_seeds, Watchdog& watchdog) {
  CaseConfig config;
  config.collective = Collective::kBcast;
  config.style = coll::Style::kAdapt;
  config.world = 8;
  config.comm = CommKind::kWorld;
  config.root = 1;
  config.bytes = 3000;
  config.segment = 256;
  config.data_seed = 77;

  ChaosOptions options;
  options.soft_seeds = std::max(3, soft_seeds);
  options.kill_seeds = 0;
  options.perturb = false;
  options.shrink = false;
  options.fault = Fault::kNoRetransmit;
  options.on_run = [&](const std::string& repro) { watchdog.tick(repro); };
  Report report = run_chaos_matrix({config}, options);
  if (report.ok()) {
    std::cout << "CHAOS SELF-TEST FAILED: no fault schedule caught the "
                 "non-retransmitting protocol ("
              << report.runs << " runs)\n";
    return false;
  }
  const Failure& failure = report.failures.front();
  std::cout << "chaos self-test: classifier caught the non-retransmitting "
               "protocol under fault seed "
            << failure.spec.chaos_seed << "\n  repro: " << failure.repro
            << "\n  " << failure.detail << "\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  int seeds = 20;
  TimeNs jitter = microseconds(5);
  bool thread_engine = true;
  bool shrink = true;
  bool run_selftest = true;
  bool chaos = false;
  bool chaos_only = false;
  bool han_only = false;
  int soft_seeds = 6;
  int kill_seeds = 4;
  long watchdog_seconds = 120;
  int jobs = 1;
  int sharded_shards = 0;
  std::string trace_dir;
  std::string repro_line;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--seeds=", 0) == 0) {
      seeds = std::stoi(arg.substr(8));
    } else if (arg.rfind("--jitter=", 0) == 0) {
      jitter = std::stoll(arg.substr(9));
    } else if (arg == "--no-thread") {
      thread_engine = false;
    } else if (arg == "--no-shrink") {
      shrink = false;
    } else if (arg == "--no-selftest") {
      run_selftest = false;
    } else if (arg == "--han-only") {
      han_only = true;
    } else if (arg == "--chaos") {
      chaos = true;
    } else if (arg == "--chaos-only") {
      chaos = chaos_only = true;
    } else if (arg.rfind("--soft-seeds=", 0) == 0) {
      soft_seeds = std::stoi(arg.substr(13));
    } else if (arg.rfind("--kill-seeds=", 0) == 0) {
      kill_seeds = std::stoi(arg.substr(13));
    } else if (arg.rfind("--watchdog=", 0) == 0) {
      watchdog_seconds = std::stol(arg.substr(11));
    } else if (arg.rfind("--jobs=", 0) == 0) {
      jobs = std::stoi(arg.substr(7));
      if (jobs <= 0) jobs = support::hardware_jobs();
    } else if (arg.rfind("--shards=", 0) == 0) {
      sharded_shards = std::stoi(arg.substr(9));
    } else if (arg.rfind("--trace-dir=", 0) == 0) {
      trace_dir = arg.substr(12);
    } else if (arg == "--repro" && i + 1 < argc) {
      repro_line = argv[++i];
    } else {
      return usage();
    }
  }
  if (!repro_line.empty()) return replay(repro_line, trace_dir);

  Watchdog watchdog(watchdog_seconds);
  const auto log = [](const std::string& line) { std::cerr << line << "\n"; };
  const auto on_run = [&](const std::string& repro) { watchdog.tick(repro); };

  if (!chaos_only) {
    MatrixOptions options;
    options.sim_seeds = seeds;
    options.max_jitter = jitter;
    options.thread_engine = thread_engine;
    options.shrink = shrink;
    options.jobs = jobs;
    options.log = log;
    options.on_run = on_run;
    options.trace_dir = trace_dir;
    options.sharded_shards = sharded_shards;

    std::vector<CaseConfig> cases = full_matrix();
    if (han_only) {
      std::erase_if(cases, [](const CaseConfig& c) { return c.ppn == 0; });
    }
    std::cout << "conformance matrix: " << cases.size()
              << " cases × (1 stable + " << seeds << " perturbed"
              << (thread_engine ? " + 1 thread" : "");
    if (sharded_shards > 0) {
      std::cout << " + sharded@{1," << sharded_shards << "}";
    }
    std::cout << ") runs\n";
    const Report report = run_matrix(cases, options);
    std::cout << report.summary() << "\n";
    if (!report.ok()) {
      std::cout << "replay any line with: verify_conformance --repro '<line>'\n";
      return 1;
    }
    if (run_selftest && !selftest(seeds, jitter, watchdog)) return 1;
  }

  if (chaos) {
    ChaosOptions options;
    options.soft_seeds = soft_seeds;
    options.kill_seeds = kill_seeds;
    options.shrink = shrink;
    options.jobs = jobs;
    options.log = log;
    options.on_run = on_run;
    options.trace_dir = trace_dir;

    const std::vector<CaseConfig> cases = chaos_matrix();
    std::cout << "chaos matrix: " << cases.size() << " cases × (" << soft_seeds
              << " soft + " << kill_seeds << " kill) fault schedules × "
              << "(stable + perturbed) runs\n";
    const Report report = run_chaos_matrix(cases, options);
    std::cout << report.summary() << "\n";
    if (!report.ok()) {
      std::cout << "replay any line with: verify_conformance --repro '<line>'\n";
      return 1;
    }
    if (run_selftest && !chaos_selftest(soft_seeds, watchdog)) return 1;
  }

  std::cout << "OK\n";
  return 0;
}

// The self-tests' faults live in src/verify/faulty.cpp (arrival order) and
// in run_case's kNoRetransmit branch (reliability disabled under chaos);
// this deliberate wiring keeps the ctest targets self-certifying: a green
// run proves both "all collectives conform" and "the harness can actually
// see a bug".
