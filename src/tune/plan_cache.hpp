// The persistent-collective plan cache (PR 6; MPI Advance's init-time
// schedule caching, paper §5.2.1 taken one step further).
//
// A *plan* is everything a collective decides before it moves a byte: the
// resolved topology tree, the pipeline segment size, and the pinned tuner
// Decision that produced both. Persistent handles (coll::PersistentOp) build
// the plan once at init and replay it on every start; the cache makes that
// build itself a lookup when several handles — or several init calls over
// the same communicator — agree on (op, membership, size bucket, root).
//
// Keying and invalidation are the whole game:
//   * The key carries the communicator's membership FINGERPRINT, not its
//     size. Two communicators over the same ordered ranks share plans; a
//     re-split communicator with different members cannot collide.
//   * Every entry holds a weak_ptr to the mpi::CommState it was built for.
//     find() revalidates lazily: a freed or destroyed communicator turns its
//     entries into misses and erases them — a stale plan is never served.
//   * The cache lives on the engine (one per SimEngine/ThreadEngine), so
//     engine-level options that change schedules (faults, perturbation,
//     reliability, tuning) can never alias: different options = different
//     engine = different cache.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "src/coll/tree.hpp"
#include "src/tune/tuner.hpp"

namespace adapt::mpi {
struct CommState;  // src/mpi/comm.hpp
}

namespace adapt::obs {
class Recorder;  // src/obs/trace.hpp
}

namespace adapt::tune {

/// Persistent-collective operations. Wider than tune::Op (the cost model
/// prices bcast/reduce only): allreduce and barrier plans are cached too.
enum class PlanOp : int { kBcast = 0, kReduce, kAllreduce, kBarrier };

const char* plan_op_name(PlanOp op);

struct PlanKey {
  PlanOp op = PlanOp::kBcast;
  std::uint64_t comm_fingerprint = 0;  ///< mpi::Comm::fingerprint()
  int bucket = 0;  ///< Tuner::bucket(bytes); 0 for barrier
  Rank root = 0;   ///< tree root (local rank); 0 for barrier
  auto operator<=>(const PlanKey&) const = default;
};

/// One cached schedule. Immutable after insert (handles share it by
/// shared_ptr, so an invalidated entry stays valid for handles already
/// holding it — they fail on their own CommState guard instead).
struct CachedPlan {
  coll::Tree tree;          ///< resolved over the communicator's local ranks
  Bytes segment = 0;        ///< pipeline granularity; 0 = unsegmented
  Decision decision;        ///< pinned tuner decision (default if untuned)
  bool tuned = false;       ///< decision came from a Tuner (vs. heuristics)
  /// Liveness guard: the communicator state this plan was resolved against.
  std::weak_ptr<const mpi::CommState> comm;
};

/// Thread-safe (ThreadEngine ranks init concurrently), eviction-free except
/// for lazy invalidation of dead communicators.
class PlanCache {
 public:
  /// Wires the cache into the engine's metrics: find/insert/invalidate bump
  /// plan_cache.{hits,misses,evictions,invalidations} counters from then
  /// on. Pass null to detach. The engine installs this alongside its other
  /// observability hooks, so a disabled recorder costs nothing.
  void set_recorder(obs::Recorder* recorder);

  /// Counted lookup. Returns null — and erases the entry — when the guard
  /// communicator has been freed or destroyed.
  std::shared_ptr<const CachedPlan> find(const PlanKey& key);

  /// Inserts (first writer wins) and returns the cached entry.
  std::shared_ptr<const CachedPlan> insert(const PlanKey& key,
                                           CachedPlan plan);

  /// Drops every entry keyed by `comm_fingerprint` (eager invalidation on
  /// MPI_Comm_free; the weak guard would catch it lazily anyway).
  void invalidate_comm(std::uint64_t comm_fingerprint);

  void clear();
  int size() const;
  std::uint64_t hits() const;
  std::uint64_t misses() const;

 private:
  mutable std::mutex mutex_;
  std::map<PlanKey, std::shared_ptr<const CachedPlan>> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  // Cached metric addresses (stable for the registry's life); null = no
  // recorder attached. Updated under mutex_ like everything else here.
  std::int64_t* m_hits_ = nullptr;
  std::int64_t* m_misses_ = nullptr;
  std::int64_t* m_evictions_ = nullptr;
  std::int64_t* m_invalidations_ = nullptr;
};

}  // namespace adapt::tune
