#include "src/net/fault.hpp"

#include <algorithm>

#include "src/support/rng.hpp"

namespace adapt::net {

namespace {

/// Hashes the plan seed and the transmission identity into one 64-bit state;
/// a SplitMix64 seeded with it supplies as many independent draws as decide()
/// needs. Stateless by construction — see the determinism contract.
std::uint64_t mix_key(std::uint64_t seed, const FaultKey& key) {
  SplitMix64 sm(seed);
  std::uint64_t h = sm.next();
  h ^= 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(key.src) + 0x51);
  h = SplitMix64(h).next();
  h ^= 0xbf58476d1ce4e5b9ULL * (static_cast<std::uint64_t>(key.dst) + 0x17);
  h = SplitMix64(h).next();
  h ^= key.seq;
  h = SplitMix64(h).next();
  h ^= 0x94d049bb133111ebULL * (static_cast<std::uint64_t>(key.attempt) + 1);
  h ^= static_cast<std::uint64_t>(key.kind) << 56;
  return SplitMix64(h).next();
}

double to_unit(std::uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

}  // namespace

bool FaultInjector::dead(Rank rank, TimeNs now) const {
  for (const auto& death : plan_.deaths) {
    if (death.rank == rank && now >= death.at) return true;
  }
  return false;
}

TransferFate FaultInjector::decide(const FaultKey& key,
                                   const std::vector<LinkId>& links,
                                   TimeNs now) const {
  ++decisions_;
  TransferFate fate;

  // Hard partitions first: deaths and outage windows defeat retransmission
  // by design (the chaos harness expects an error, not absorption, when a
  // partition outlasts the retry budget).
  if (dead(key.src, now) || dead(key.dst, now)) {
    fate.delivered = false;
    ++drops_;
    return fate;
  }
  for (const auto& outage : plan_.outages) {
    if (now < outage.from || now >= outage.until) continue;
    const bool pair_hit =
        outage.a >= 0 && ((outage.a == key.src && outage.b == key.dst) ||
                          (outage.a == key.dst && outage.b == key.src));
    const bool link_hit =
        outage.a < 0 && outage.link >= 0 &&
        std::find(links.begin(), links.end(), outage.link) != links.end();
    if (pair_hit || link_hit) {
      fate.delivered = false;
      ++drops_;
      return fate;
    }
  }

  // Probabilistic faults, each from its own deterministic draw.
  SplitMix64 draws(mix_key(plan_.seed, key));
  if (plan_.drop > 0 && to_unit(draws.next()) < plan_.drop) {
    fate.delivered = false;
    ++drops_;
    return fate;
  }
  if (plan_.corrupt > 0 && to_unit(draws.next()) < plan_.corrupt) {
    fate.corrupted = true;
    ++corruptions_;
  }
  if (plan_.max_delay > 0) {
    fate.delay = static_cast<TimeNs>(
        draws.next() % static_cast<std::uint64_t>(plan_.max_delay + 1));
  }
  fate.salt = draws.next();
  return fate;
}

}  // namespace adapt::net
