# Empty compiler generated dependencies file for moreops_test.
# This may be replaced when dependencies are built.
