// Sharded conservative-lookahead discrete-event engine.
//
// Partitions the ranks across worker threads along topology-block boundaries
// (node / dragonfly group / fat-tree pod): each shard owns a private radix
// EventQueue, FrameArena and Recorder, executes its ranks' events with no
// locks, and exchanges cross-shard messages through per-pair epoch-switched
// mailboxes. Shards advance in conservative time windows [T, T + L): L is
// the minimum route alpha between ranks of different blocks, so an event
// executing at t < T + L can only make another shard runnable at t + L >=
// T + L — strictly outside the current window. The window barrier is a
// persistent spin-then-sleep ShardPool round; T is recomputed between rounds
// as the global minimum pending time, so idle stretches are skipped in one
// hop rather than window by window.
//
// Determinism contract (the non-negotiable): every event is keyed by
// (producer rank, per-producer sequence) via EventQueue::push_keyed. A
// rank's execution order is the ascending (time, key) order of its events,
// which is independent of how ranks are partitioned; per-shard records are
// merged in canonical order (obs/merge.hpp). Traces, metrics, conformance
// results and golden hashes are byte-identical for ANY shards value,
// including 1 — the single-shard fast path goes through the same keys and
// the same merge.
//
// Cost model: point-to-point transfers follow Hockney alpha/beta of the
// route with per-source serial transmit (segments from one sender leave
// back to back), and the eager/rendezvous protocol split of the SimEngine.
// The fluid max-min fair-sharing fabric is deliberately not modelled —
// cross-shard bandwidth sharing would need global state on the hot path.
// Fault injection, schedule perturbation, reliability, recovery, GPUs and
// the tuner are likewise out of scope here and gated off; use the SimEngine
// for those studies. This engine's job is scale: compact per-rank state and
// intra-run parallelism toward million-rank simulations.
#pragma once

#include <array>
#include <cstdint>
#include <exception>
#include <memory>
#include <utility>
#include <vector>

#include "src/mpi/endpoint.hpp"
#include "src/noise/noise.hpp"
#include "src/obs/trace.hpp"
#include "src/runtime/context.hpp"
#include "src/sim/event_queue.hpp"
#include "src/support/buffer_pool.hpp"
#include "src/support/frame_arena.hpp"
#include "src/support/shard_pool.hpp"
#include "src/topo/hardware.hpp"
#include "src/topo/procedural.hpp"

namespace adapt::runtime {

struct ShardedEngineOptions {
  /// Requested worker shards; clamped to the topology's block count (and to
  /// nranks). 1 runs the whole simulation on the calling thread.
  int shards = 1;
  /// Merged-output recorder: per-shard recorders are merged into it after
  /// every run. Byte-identical for any `shards` value.
  std::shared_ptr<obs::Recorder> recorder;
  /// Noise model; must be pure (next_free is const) — it is consulted from
  /// every shard thread. Null = no noise.
  std::shared_ptr<noise::NoiseModel> noise;
  /// Locality oracle and route-cost model. Null = a MachineTopology adapter
  /// over `machine` (blocks are nodes, routes are the machine's lanes).
  /// Must outlive the engine and describe exactly machine.nranks() ranks.
  const topo::ProcTopology* topology = nullptr;
};

class ShardedEngine final : public Engine {
 public:
  ShardedEngine(const topo::Machine& machine,
                ShardedEngineOptions options = {});
  ~ShardedEngine() override;

  int nranks() const override { return machine_.nranks(); }
  RunResult run(const RankProgram& program) override;

  /// Effective shard count after clamping to the block count.
  int shards() const { return static_cast<int>(shards_.size()); }
  const topo::ShardMap& shard_map() const { return map_; }
  const topo::ProcTopology& topology() const { return *topo_; }
  const topo::Machine& machine() const { return machine_; }
  support::BufferPool& pool() { return pool_; }
  mpi::Endpoint& endpoint(Rank r);
  Context& context(Rank r);

  /// The deterministic rank-state gauge: cumulative coroutine-frame bytes +
  /// matcher footprint + cumulative pool acquisitions. Identical for any
  /// shards value; exported as the sim.rank_state_bytes counter.
  std::uint64_t rank_state_bytes() const;
  /// Peak resident rank state (live frame high-water + matcher footprint +
  /// pool-cached blocks): the memory-budget figure. NOT byte-stable across
  /// shard counts (per-shard peaks don't sum to the global peak) — never
  /// exported, only asserted against budgets.
  std::uint64_t rank_state_peak_bytes() const;

 private:
  class ShardContext;
  class ShardExecutor;
  class ShardTransport;

  /// One cross-shard message: an event to be pushed on the destination
  /// shard's queue at the next window boundary.
  struct Msg {
    TimeNs time;
    std::uint64_t tie;
    sim::EventFn fn;
  };

  struct Shard {
    explicit Shard(std::size_t expected_cohort) : queue(expected_cohort) {}

    sim::EventQueue queue;
    TimeNs now = 0;
    support::FrameArena arena;
    /// Per-run recorder (null when observability is off); merged and
    /// discarded at the end of each run.
    std::unique_ptr<obs::Recorder> rec;
    /// outbox[dst_shard][epoch & 1]: messages appended during this round,
    /// drained by dst at the start of the next round (the off epoch), so
    /// producer and consumer never touch the same vector.
    std::vector<std::array<std::vector<Msg>, 2>> outbox;
    int finished = 0;  ///< rank programs completed on this shard
    std::vector<std::pair<Rank, std::exception_ptr>> failures;
    std::exception_ptr fatal;
  };

  int shard_of(Rank r) const {
    return map_.shard_of[static_cast<std::size_t>(r)];
  }
  Shard& shard_for(Rank r) { return *shards_[static_cast<std::size_t>(shard_of(r))]; }
  /// Shard-invariant event key for rank r's next event: (seq(r) << 20) | r.
  std::uint64_t next_key(Rank r);
  /// Schedules fn at absolute time t on shard `to`, from code running on
  /// shard `from` (same shard: direct push; different: mailbox append).
  void post_at(int from, int to, TimeNs t, std::uint64_t tie, sim::EventFn fn);

  // Executor services (mirror SimEngine's, per owning shard's clock).
  void run_on(Rank r, std::function<void()> fn, TimeNs cpu_cost);
  void run_progress(Rank r, std::function<void()> fn, TimeNs cpu_cost);
  void charge(Rank r, TimeNs cpu_cost);

  // Transport legs (see sharded_engine.cpp).
  void rendezvous_grant(topo::RouteCost rc, mpi::Envelope env,
                        std::function<void()> on_sent, mpi::PostedRecv recv);
  void rendezvous_bulk(topo::RouteCost rc, mpi::Envelope env,
                       std::function<void()> on_sent, mpi::PostedRecv recv);

  /// One conservative window on shard s: drain inbound mailboxes, then
  /// execute local events with time < window.
  void round(int s, TimeNs window);
  /// Minimum pending time across shard s's queue and undrained outboxes.
  TimeNs pending_min(const Shard& sh) const;
  std::uint64_t total_scheduled() const;
  std::uint64_t frame_bytes() const;
  std::uint64_t matcher_bytes() const;

  const topo::Machine& machine_;
  ShardedEngineOptions options_;
  /// Declared before every component that can hold BufferRefs — destroyed
  /// last (the pool-lifetime contract, same as SimEngine).
  support::BufferPool pool_;
  topo::MachineTopology machine_topo_;
  const topo::ProcTopology* topo_;  ///< options_.topology or &machine_topo_
  topo::ShardMap map_;
  TimeNs lookahead_ = 0;  ///< min cross-shard route alpha
  std::shared_ptr<noise::NoiseModel> noise_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<support::ShardPool> workers_;  ///< null when shards() == 1
  std::unique_ptr<ShardTransport> transport_;
  std::vector<std::unique_ptr<ShardExecutor>> executors_;
  std::vector<std::unique_ptr<mpi::Endpoint>> endpoints_;
  std::vector<std::unique_ptr<ShardContext>> contexts_;
  // Per-rank scalar state, globally indexed: each entry is only ever touched
  // by the owning rank's shard.
  std::vector<TimeNs> busy_until_;           // main thread, noise applies
  std::vector<TimeNs> progress_busy_until_;  // progress context
  std::vector<TimeNs> tx_free_;              // per-source serial transmit
  std::vector<std::uint64_t> rank_seq_;      // per-producer event sequence
  std::uint64_t epoch_ = 0;  ///< round counter; selects the mailbox epoch
};

}  // namespace adapt::runtime
