#include "src/verify/guidelines.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/coll/coll.hpp"
#include "src/coll/moreops.hpp"
#include "src/runtime/sim_engine.hpp"
#include "src/support/error.hpp"
#include "src/support/parallel.hpp"
#include "src/topo/presets.hpp"

namespace adapt::verify {

const char* guideline_name(Guideline g) {
  switch (g) {
    case Guideline::kModelSim: return "model-sim";
    case Guideline::kTunedBest: return "tuned-best";
    case Guideline::kSegmentation: return "segmentation";
    case Guideline::kComposition: return "composition";
    case Guideline::kMonotone: return "monotone";
  }
  return "?";
}

bool guideline_from_name(const std::string& name, Guideline* out) {
  for (const Guideline g :
       {Guideline::kModelSim, Guideline::kTunedBest, Guideline::kSegmentation,
        Guideline::kComposition, Guideline::kMonotone}) {
    if (name == guideline_name(g)) {
      *out = g;
      return true;
    }
  }
  return false;
}

topo::Machine guideline_machine(const GuidelineCase& config) {
  if (config.cluster == "uniform") {
    // Every rank on its own single-core node, identical lanes, no local
    // overheads: the regime where Hockney is exact.
    topo::MachineSpec spec;
    spec.name = "uniform";
    spec.nodes = config.ranks;
    spec.sockets_per_node = 1;
    spec.cores_per_socket = 1;
    const topo::LinkParams lane{1000, 1.0 / 8.0};  // 1 us, 8 GB/s
    spec.intra_socket = spec.inter_socket = spec.inter_node = lane;
    spec.shm_parallel = 1.0;
    spec.memcpy_beta = 0.0;
    spec.unexpected_overhead = 0;
    spec.cpu_overhead = 0;
    return topo::Machine(spec, config.ranks);
  }
  return topo::Machine(topo::preset(config.cluster, config.nodes),
                       config.ranks);
}

std::string guideline_repro(const GuidelineCase& config, Guideline g) {
  std::ostringstream out;
  out << "guideline=" << guideline_name(g) << " cluster=" << config.cluster
      << " nodes=" << config.nodes << " ranks=" << config.ranks
      << " op=" << tune::op_name(config.op) << " bytes=" << config.bytes;
  return out.str();
}

bool parse_guideline_repro(const std::string& line, GuidelineCase* config,
                           Guideline* g) {
  GuidelineCase c;
  Guideline parsed_g = Guideline::kModelSim;
  bool have_g = false;
  std::istringstream in(line);
  std::string token;
  while (in >> token) {
    const auto eq = token.find('=');
    if (eq == std::string::npos) return false;
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    try {
      if (key == "guideline") {
        if (!guideline_from_name(value, &parsed_g)) return false;
        have_g = true;
      } else if (key == "cluster") {
        c.cluster = value;
      } else if (key == "nodes") {
        c.nodes = std::stoi(value);
      } else if (key == "ranks") {
        c.ranks = std::stoi(value);
      } else if (key == "op") {
        if (!tune::op_from_name(value, &c.op)) return false;
      } else if (key == "bytes") {
        c.bytes = std::stoll(value);
      } else {
        return false;
      }
    } catch (const std::exception&) {
      return false;
    }
  }
  if (!have_g) return false;
  *config = c;
  *g = parsed_g;
  return true;
}

namespace {

/// One engine run of (op, decision) over a world communicator on `machine`.
TimeNs run_sim(const topo::Machine& machine, tune::Op op,
               const coll::Tree& tree, coll::Style style,
               const coll::CollOpts& opts, Bytes bytes, long* sim_runs) {
  const mpi::Comm comm = mpi::Comm::world(machine.nranks());
  runtime::SimEngine engine(machine, {});
  mpi::MutView buffer{nullptr, bytes};  // synthetic payload: times, no data
  const auto program = [&](runtime::Context& ctx) -> sim::Task<> {
    if (op == tune::Op::kBcast) {
      co_await coll::bcast(ctx, comm, buffer, 0, tree, style, opts);
    } else {
      co_await coll::reduce(ctx, comm, buffer, mpi::ReduceOp::kSum,
                            mpi::Datatype::kFloat, 0, tree, style, opts);
    }
  };
  if (sim_runs) ++*sim_runs;
  return engine.run(program).total_time;
}

TimeNs simulate_sag(const topo::Machine& machine, Bytes bytes,
                    coll::AllgatherAlgo algo, long* sim_runs) {
  const mpi::Comm comm = mpi::Comm::world(machine.nranks());
  runtime::SimEngine engine(machine, {});
  mpi::MutView buffer{nullptr, bytes};
  const auto program = [&](runtime::Context& ctx) -> sim::Task<> {
    co_await coll::bcast_scatter_allgather(ctx, comm, buffer, 0, algo);
  };
  if (sim_runs) ++*sim_runs;
  return engine.run(program).total_time;
}

std::string show_decision(const tune::Decision& d) {
  std::ostringstream out;
  out << tune::topology_name(d.topology);
  if (d.topology == tune::Topology::kTopoKnomial) out << "/r" << d.radix;
  if (d.segment == 0)
    out << " seg=whole";
  else
    out << " seg=" << d.segment;
  return out.str();
}

double ms(TimeNs t) { return static_cast<double>(t) * 1e-6; }

std::string times_detail(const char* what, TimeNs tuned, TimeNs bound,
                         double tol, const std::string& extra) {
  std::ostringstream out;
  out.precision(4);
  out << what << ": tuned " << ms(tuned) << "ms > " << ms(bound)
      << "ms * (1 + " << tol << ")" << extra;
  return out.str();
}

bool within(TimeNs tuned, TimeNs bound, double tol) {
  return static_cast<double>(tuned) <=
         (1.0 + tol) * static_cast<double>(bound);
}

std::optional<std::string> check_one(const GuidelineCase& config, Guideline g,
                                     const GuidelineOptions& options,
                                     long* sim_runs) {
  const topo::Machine machine = guideline_machine(config);
  tune::Tuner tuner(machine);
  const int ranks = config.ranks;
  const tune::Op op = config.op;
  const Bytes bytes = config.bytes;

  const tune::Decision tuned = tuner.choose(op, ranks, bytes);
  const TimeNs t_tuned = simulate_decision(machine, op, ranks, tuned, bytes);
  if (sim_runs) ++*sim_runs;

  switch (g) {
    case Guideline::kModelSim: {
      const TimeNs predicted = tuner.predict(op, ranks, tuned, bytes);
      const double err =
          std::abs(static_cast<double>(predicted) -
                   static_cast<double>(t_tuned)) /
          std::max(1.0, static_cast<double>(t_tuned));
      if (err <= options.model_tolerance) return std::nullopt;
      std::ostringstream out;
      out.precision(4);
      out << "model-sim: predicted " << ms(predicted) << "ms vs simulated "
          << ms(t_tuned) << "ms, error " << err << " > tolerance "
          << options.model_tolerance << " [" << show_decision(tuned) << "]";
      return out.str();
    }

    case Guideline::kTunedBest: {
      for (const tune::Decision& cand : tuner.candidates(op, ranks, bytes)) {
        const TimeNs t =
            simulate_decision(machine, op, ranks, cand, bytes);
        if (sim_runs) ++*sim_runs;
        if (!within(t_tuned, t, options.sim_tolerance))
          return times_detail("tuned-best", t_tuned, t, options.sim_tolerance,
                              " [tuned " + show_decision(tuned) +
                                  " vs candidate " + show_decision(cand) +
                                  "]");
      }
      return std::nullopt;
    }

    case Guideline::kSegmentation: {
      // Above the pipeline threshold the tuned (possibly segmented) choice
      // must not lose to forcing one whole-message segment.
      if (bytes <= kib(64)) return std::nullopt;  // below the threshold
      tune::Decision whole = tuned;
      whole.segment = 0;
      const TimeNs t_whole =
          simulate_decision(machine, op, ranks, whole, bytes);
      if (sim_runs) ++*sim_runs;
      if (within(t_tuned, t_whole, options.sim_tolerance)) return std::nullopt;
      return times_detail("segmentation", t_tuned, t_whole,
                          options.sim_tolerance,
                          " [tuned " + show_decision(tuned) +
                              " vs whole-message]");
    }

    case Guideline::kComposition: {
      if (op != tune::Op::kBcast) return std::nullopt;
      TimeNs bound = simulate_sag(machine, bytes, coll::AllgatherAlgo::kRing,
                                  sim_runs);
      if ((ranks & (ranks - 1)) == 0)
        bound = std::min(
            bound, simulate_sag(machine, bytes,
                                coll::AllgatherAlgo::kRecursiveDoubling,
                                sim_runs));
      if (within(t_tuned, bound, options.sim_tolerance)) return std::nullopt;
      return times_detail("composition", t_tuned, bound, options.sim_tolerance,
                          " [bcast must not lose to scatter+allgather]");
    }

    case Guideline::kMonotone: {
      const Bytes half = bytes / 2;
      if (half < 1) return std::nullopt;
      const tune::Decision small = tuner.choose(op, ranks, half);
      const TimeNs t_half =
          simulate_decision(machine, op, ranks, small, half);
      if (sim_runs) ++*sim_runs;
      if (within(t_half, t_tuned, options.sim_tolerance)) return std::nullopt;
      return times_detail("monotone", t_half, t_tuned, options.sim_tolerance,
                          " [T(m/2) exceeds T(m), m=" +
                              std::to_string(bytes) + "]");
    }
  }
  ADAPT_UNREACHABLE("bad guideline");
}

/// Greedy shrink: halve bytes, then ranks (and nodes with them), while the
/// check still fails; bounded re-runs keep replay cheap.
GuidelineCase shrink_guideline(const GuidelineCase& config, Guideline g,
                               const GuidelineOptions& options,
                               long* sim_runs) {
  GuidelineCase best = config;
  int budget = 10;
  bool progress = true;
  while (progress && budget > 0) {
    progress = false;
    std::vector<GuidelineCase> smaller;
    if (best.bytes > 4096) {
      GuidelineCase c = best;
      c.bytes /= 2;
      smaller.push_back(c);
    }
    if (best.ranks > 4) {
      GuidelineCase c = best;
      c.ranks = std::max(4, best.ranks / 2);
      smaller.push_back(c);
    }
    if (best.nodes > 1 && best.cluster != "uniform") {
      GuidelineCase c = best;
      c.nodes = best.nodes / 2;
      c.ranks = std::min(c.ranks, c.nodes * 64);  // keep within capacity
      smaller.push_back(c);
    }
    for (const GuidelineCase& c : smaller) {
      if (budget <= 0) break;
      --budget;
      if (check_one(c, g, options, sim_runs)) {
        best = c;
        progress = true;
        break;
      }
    }
  }
  return best;
}

std::vector<Guideline> applicable(const GuidelineCase& config) {
  std::vector<Guideline> out{Guideline::kModelSim, Guideline::kTunedBest,
                             Guideline::kSegmentation, Guideline::kMonotone};
  if (config.op == tune::Op::kBcast) out.push_back(Guideline::kComposition);
  return out;
}

}  // namespace

TimeNs simulate_decision(const topo::Machine& machine, tune::Op op, int ranks,
                         const tune::Decision& decision, Bytes bytes) {
  ADAPT_CHECK(ranks == machine.nranks())
      << "guideline sims run on a machine sized to the communicator";
  const mpi::Comm comm = mpi::Comm::world(ranks);
  const coll::Tree tree = tune::decision_tree(machine, comm, 0, decision);
  coll::CollOpts opts;
  opts.segment_size = tune::decision_segment(decision, bytes);
  return run_sim(machine, op, tree, coll::Style::kAdapt, opts, bytes, nullptr);
}

std::optional<std::string> check_guideline(const GuidelineCase& config,
                                           Guideline g,
                                           const GuidelineOptions& options,
                                           long* sim_runs) {
  return check_one(config, g, options, sim_runs);
}

std::vector<GuidelineCase> guideline_sweep() {
  std::vector<GuidelineCase> cases;
  struct ClusterPick {
    const char* cluster;
    int nodes;
  };
  for (const ClusterPick pick : {ClusterPick{"cori", 2},
                                 ClusterPick{"stampede2", 2},
                                 ClusterPick{"uniform", 0}}) {
    for (const int ranks : {8, 24}) {
      for (const tune::Op op : {tune::Op::kBcast, tune::Op::kReduce}) {
        for (const Bytes bytes : {kib(64), kib(512), mib(2)}) {
          GuidelineCase c;
          c.cluster = pick.cluster;
          c.nodes = pick.cluster == std::string("uniform") ? ranks : pick.nodes;
          c.ranks = ranks;
          c.op = op;
          c.bytes = bytes;
          cases.push_back(c);
        }
      }
    }
  }
  return cases;
}

std::string GuidelineReport::summary() const {
  std::ostringstream out;
  out << cases << " cases, " << checks << " guideline checks, " << sim_runs
      << " sim runs: ";
  if (failures.empty()) {
    out << "all guidelines hold";
  } else {
    out << failures.size() << " VIOLATION(S)";
    for (const GuidelineFailure& f : failures)
      out << "\n  " << f.repro << "\n    " << f.detail;
  }
  return out.str();
}

GuidelineReport run_guidelines(const std::vector<GuidelineCase>& cases,
                               const GuidelineOptions& options) {
  struct Slot {
    std::vector<GuidelineFailure> failures;
    long sim_runs = 0;
    int checks = 0;
  };
  std::vector<Slot> slots(cases.size());

  support::parallel_for(
      std::max(1, options.jobs), static_cast<int>(cases.size()), [&](int i) {
        const GuidelineCase& config = cases[static_cast<std::size_t>(i)];
        Slot& slot = slots[static_cast<std::size_t>(i)];
        for (const Guideline g : applicable(config)) {
          const std::string repro = guideline_repro(config, g);
          if (options.on_run) options.on_run(repro);
          ++slot.checks;
          auto detail = check_one(config, g, options, &slot.sim_runs);
          if (!detail) continue;
          GuidelineCase shrunk = config;
          if (options.shrink) {
            shrunk = shrink_guideline(config, g, options, &slot.sim_runs);
            // Re-derive the detail for the minimised case.
            if (auto d = check_one(shrunk, g, options, &slot.sim_runs))
              detail = d;
          }
          GuidelineFailure failure;
          failure.config = shrunk;
          failure.guideline = g;
          failure.detail = *detail;
          failure.repro = guideline_repro(shrunk, g);
          slot.failures.push_back(failure);
          if (options.log)
            options.log("GUIDELINE VIOLATION: " + failure.repro + "\n  " +
                        failure.detail);
        }
      });

  GuidelineReport report;
  report.cases = static_cast<int>(cases.size());
  for (const Slot& slot : slots) {  // index order: jobs-invariant report
    report.checks += slot.checks;
    report.sim_runs += slot.sim_runs;
    report.failures.insert(report.failures.end(), slot.failures.begin(),
                           slot.failures.end());
  }
  return report;
}

std::string dump_decision_tables(const std::vector<GuidelineCase>& cases) {
  // One tuner per distinct machine, filled with the sweep's decisions.
  std::vector<std::string> seen;
  std::ostringstream out;
  out << "{\n\"schema\": \"adapt-decision-tables-v1\",\n\"tables\": [\n";
  bool first_table = true;
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const GuidelineCase& c = cases[i];
    const std::string machine_key =
        c.cluster + "/" + std::to_string(c.nodes) + "/" +
        std::to_string(c.ranks);
    if (std::find(seen.begin(), seen.end(), machine_key) != seen.end())
      continue;
    seen.push_back(machine_key);
    const topo::Machine machine = guideline_machine(c);
    tune::Tuner tuner(machine);
    for (const GuidelineCase& other : cases) {
      if (other.cluster != c.cluster || other.nodes != c.nodes ||
          other.ranks != c.ranks)
        continue;
      tuner.choose(other.op, other.ranks, other.bytes);
    }
    if (!first_table) out << ",\n";
    first_table = false;
    out << tuner.dump_json();
  }
  out << "\n]\n}\n";
  return out.str();
}

}  // namespace adapt::verify
