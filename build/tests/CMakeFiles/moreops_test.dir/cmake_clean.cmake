file(REMOVE_RECURSE
  "CMakeFiles/moreops_test.dir/moreops_test.cpp.o"
  "CMakeFiles/moreops_test.dir/moreops_test.cpp.o.d"
  "moreops_test"
  "moreops_test.pdb"
  "moreops_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moreops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
