#include "src/bench/cli.hpp"

#include <cstdlib>

#include "src/support/error.hpp"
#include "src/topo/presets.hpp"

namespace adapt::bench {

Cli::Cli(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    ADAPT_CHECK(arg.rfind("--", 0) == 0) << "expected --flag, got " << arg;
    arg = arg.substr(2);
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      args_[arg] = argv[++i];
    } else {
      args_[arg] = "1";
    }
  }
}

std::string Cli::get(const std::string& key, const std::string& fallback)
    const {
  const auto it = args_.find(key);
  return it == args_.end() ? fallback : it->second;
}

std::int64_t Cli::get_int(const std::string& key, std::int64_t fallback)
    const {
  const auto it = args_.find(key);
  return it == args_.end() ? fallback
                           : std::strtoll(it->second.c_str(), nullptr, 10);
}

bool Cli::has(const std::string& key) const { return args_.count(key) > 0; }

ClusterSetup make_cluster(const std::string& cluster, int nodes, int ranks) {
  topo::MachineSpec spec = topo::preset(cluster, nodes);
  const auto policy = spec.gpus_per_socket > 0
                          ? topo::PlacementPolicy::kByGpu
                          : topo::PlacementPolicy::kByCore;
  return ClusterSetup{topo::Machine(spec, ranks, policy), cluster, ranks};
}

}  // namespace adapt::bench
